// Package chaos is the fault-injection proving ground for the serving
// stack. Its tests drive seeded faultinject schedules — injected I/O
// errors, torn writes, corrupt payloads, transport resets, handler
// panics — through every serving path (direct service, in-process
// dispatcher, HTTP, gateway-fronted fleet) and assert the robustness
// invariants the stack promises:
//
//   - every refusal is typed: a client-visible error always satisfies
//     errors.Is against exactly one api sentinel, never an untyped 500;
//   - no corrupt artifact is ever decoded or re-served: the checksum
//     gates catch injected corruption and the sweep quarantines it;
//   - successful reports are bit-identical to a fault-free run — faults
//     may cost latency and failovers, never answers;
//   - the fleet reconverges once a schedule drains: breakers close,
//     probes re-admit, degraded worlds heal to clean rebuilds.
//
// This file holds the non-test helpers the suites share; the invariants
// themselves live in the *_test.go files next to it.
package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"twophase/internal/api"
	"twophase/internal/artifact"
	"twophase/internal/store"
)

// Typed reports whether a client-visible refusal honors the typed-error
// contract: it maps to a wire code whose sentinel it actually wraps.
// api.Code returns CodeInternal for *any* unrecognized error, so an
// internal code only counts as typed when the error really unwraps to
// api.ErrInternal — the shape the server's error envelope (and the
// client's reconstruction of it) guarantees, and a raw untyped failure
// lacks.
func Typed(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, api.ErrInternal) {
		return true
	}
	return api.Code(err) != api.CodeInternal
}

// ScanReport is what a post-chaos store scan found.
type ScanReport struct {
	// Orphans are temp files lingering outside quarantine/ — evidence a
	// torn write escaped the startup sweep.
	Orphans []string
	// Corrupt are artifact files outside quarantine/ whose checksums (or
	// JSON shape) no longer hold — evidence corruption escaped the gates.
	Corrupt []string
	// Quarantined counts files parked under quarantine/.
	Quarantined int
}

// Clean reports whether the scan found no escapes.
func (r ScanReport) Clean() bool { return len(r.Orphans) == 0 && len(r.Corrupt) == 0 }

// ScanStore walks one backend's store directory after a chaos run and
// verifies the persistence invariants: no orphaned temp files outside
// quarantine/, and every artifact outside quarantine/ still passes its
// integrity check (codec checksum for .bin, well-formed JSON for .json).
// Files inside quarantine/ are counted, not verified — quarantine is
// exactly where broken bytes are supposed to be.
func ScanStore(dir string) (ScanReport, error) {
	var rep ScanReport
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		inQuarantine := rel == store.QuarantineDir || strings.HasPrefix(rel, store.QuarantineDir+string(filepath.Separator))
		if d.IsDir() {
			return nil
		}
		if inQuarantine {
			rep.Quarantined++
			return nil
		}
		name := d.Name()
		switch {
		case strings.Contains(name, ".tmp"):
			rep.Orphans = append(rep.Orphans, rel)
		case strings.HasSuffix(name, ".bin"):
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			if _, verr := artifact.Verify(data); verr != nil {
				rep.Corrupt = append(rep.Corrupt, rel)
			}
		case strings.HasSuffix(name, ".json"):
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			if !json.Valid(data) {
				rep.Corrupt = append(rep.Corrupt, rel)
			}
		}
		return nil
	})
	return rep, err
}

// Log appends timestamped chaos events to the file named by the
// CHAOS_LOG environment variable, so a CI run can upload the storm's
// story as an artifact. With the variable unset every call is a no-op —
// the suites log unconditionally and stay quiet locally.
type Log struct {
	mu sync.Mutex
	f  *os.File
}

// OpenLog opens (appending) the CHAOS_LOG file, or returns a no-op
// logger when the variable is unset. The only error surfaced is an
// unusable explicit path — a misconfigured CI job should fail loudly.
func OpenLog() (*Log, error) {
	path := os.Getenv("CHAOS_LOG")
	if path == "" {
		return &Log{}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("chaos: open CHAOS_LOG %q: %w", path, err)
	}
	return &Log{f: f}, nil
}

// Event records one formatted chaos event.
func (l *Log) Event(format string, args ...any) {
	if l == nil || l.f == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.f, "%s %s\n", time.Now().UTC().Format(time.RFC3339Nano), fmt.Sprintf(format, args...))
}

// Close flushes and closes the underlying file, if any.
func (l *Log) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	return l.f.Close()
}
