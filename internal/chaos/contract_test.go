package chaos_test

// The typed-error contract under injected faults: every fault class the
// schedule grammar can arm must surface to callers as a *typed* refusal
// on every serving path — the direct service call, the in-process
// dispatcher, a single-node HTTP server, and the gateway router. The
// table pins, per class and path, both that the call fails and *how* it
// fails: in process an injected fault keeps its wire code (and its
// faultinject.ErrInjected ancestry); across the HTTP boundary the
// reconstructed error additionally satisfies errors.Is against the
// code's sentinel, because the client rebuilds the sentinel from the
// envelope. The gateway deliberately reshapes retryable backend
// failures: after exhausting the owner set, the terminal refusal wraps
// api.ErrUnavailable — still typed, still retryable.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"twophase/internal/api"
	"twophase/internal/chaos"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/faultinject"
	"twophase/internal/service"
	"twophase/internal/shard"
)

var chaosSizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

const (
	chaosTask   = "nlp"
	chaosTarget = "tweet_eval"
	chaosSeed   = uint64(42)
)

func chaosReq() *api.SelectRequest {
	return &api.SelectRequest{Task: chaosTask, Targets: []string{chaosTarget}}
}

// newService boots a fresh service (empty caches, empty snapshots) over
// the given store directory — or fully in-memory when dir is empty.
func newService(t *testing.T, dir string) *service.Service {
	t.Helper()
	svc, err := service.New(service.Options{
		Base:     core.Options{Seed: chaosSeed, Sizes: chaosSizes},
		StoreDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// prebuiltStore builds the test world once and returns the store
// directory holding its artifacts. Shared read-only by the cases that
// need an artifact on disk to inject a read fault against.
func prebuiltStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	svc := newService(t, dir)
	if _, err := svc.Do(context.Background(), service.Request{Task: chaosTask, Targets: []string{chaosTarget}}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// The four serving paths, each returning the request's error.
const (
	pathDirect     = "direct"
	pathDispatcher = "dispatcher"
	pathHTTP       = "http"
	pathGateway    = "gateway"
)

// servePath runs one request for svc through the named path. The fault
// schedule must already be armed: construction (httptest servers, the
// router) performs no requests, so the first schedule hit is the
// request under test.
func servePath(t *testing.T, path string, svc *service.Service) error {
	t.Helper()
	ctx := context.Background()
	switch path {
	case pathDirect:
		results, err := svc.Do(ctx, service.Request{Task: chaosTask, Targets: []string{chaosTarget}})
		if err != nil {
			return err
		}
		return results[0].Err
	case pathDispatcher:
		_, err := api.NewDispatcher(svc, chaosSeed).Select(ctx, chaosReq())
		return err
	case pathHTTP:
		srv := httptest.NewServer(api.NewHandlerWith(api.NewDispatcher(svc, chaosSeed), api.HandlerOptions{Instance: "chaos-node"}))
		defer srv.Close()
		_, err := api.NewClient(srv.URL, nil).Select(ctx, chaosReq())
		return err
	case pathGateway:
		srv := httptest.NewServer(api.NewHandlerWith(api.NewDispatcher(svc, chaosSeed), api.HandlerOptions{Instance: "chaos-backend"}))
		defer srv.Close()
		r, err := shard.NewRouter(shard.RouterOptions{
			Backends: []string{srv.URL},
			Replicas: 1,
			Seed:     chaosSeed,
			// The gateway's transport is the "transport" fault site, exactly
			// as cmd/gateway wires it.
			HTTPClient: &http.Client{Transport: faultinject.Transport(nil)},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		_, err = r.Select(ctx, chaosReq())
		return err
	default:
		t.Fatalf("unknown path %q", path)
		return nil
	}
}

// TestInjectedFaultsStayTyped is the contract table: one row per
// injectable fault class, asserting on every applicable serving path
// that the refusal is typed — and which type it carries.
func TestInjectedFaultsStayTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real world for the store-read rows")
	}
	shared := prebuiltStore(t)

	cases := []struct {
		name     string
		schedule string
		// store selects the service's backing store: "" for an empty
		// in-memory service (build faults must actually reach a build),
		// "prebuilt" for the shared artifact store (read faults need a
		// file to fail reading).
		store string
		paths []string
		// wantCode is the wire code the error must map to on in-process
		// paths (direct, dispatcher).
		wantCode string
		// wantWire is the sentinel errors.Is must satisfy on the HTTP
		// path, where the client reconstructs it from the envelope.
		wantWire error
		// wantGateway is the sentinel on the gateway path; retryable
		// backend failures surface as ErrUnavailable once the owner set
		// is exhausted.
		wantGateway error
	}{
		{
			name:        "build-err",
			schedule:    "seed=1;build:err#1",
			paths:       []string{pathDirect, pathDispatcher, pathHTTP, pathGateway},
			wantCode:    api.CodeInternal,
			wantWire:    api.ErrInternal,
			wantGateway: api.ErrUnavailable,
		},
		{
			name:        "store-read-err",
			schedule:    "seed=1;store.read:err#1",
			store:       "prebuilt",
			paths:       []string{pathDirect, pathDispatcher, pathHTTP, pathGateway},
			wantCode:    api.CodeInternal,
			wantWire:    api.ErrInternal,
			wantGateway: api.ErrUnavailable,
		},
		{
			// The handler site lives in the HTTP select handler, so only
			// the wire paths traverse it. The panic is recovered by the
			// middleware and rendered as a typed internal 500 — the
			// process (here: the test binary's handler goroutine) lives on.
			name:        "handler-panic",
			schedule:    "seed=1;handler:panic#1",
			paths:       []string{pathHTTP, pathGateway},
			wantWire:    api.ErrInternal,
			wantGateway: api.ErrUnavailable,
		},
		{
			// A reset connection never even reaches the backend; the
			// gateway pays a failed attempt and, with the single owner
			// exhausted, refuses retryably.
			name:        "transport-reset",
			schedule:    "seed=1;transport:reset#1",
			paths:       []string{pathGateway},
			wantGateway: api.ErrUnavailable,
		},
		{
			// A synthetic raw 500 (text/plain, no JSON envelope) must not
			// escape untyped: the client wraps non-contract bodies in a
			// typed internal error, and the gateway retries it like any
			// backend failure.
			name:        "transport-http500",
			schedule:    "seed=1;transport:http500#1",
			paths:       []string{pathGateway},
			wantGateway: api.ErrUnavailable,
		},
	}

	for _, tc := range cases {
		for _, path := range tc.paths {
			t.Run(tc.name+"/"+path, func(t *testing.T) {
				dir := ""
				if tc.store == "prebuilt" {
					dir = shared
				}
				svc := newService(t, dir)
				if err := faultinject.Enable(tc.schedule); err != nil {
					t.Fatal(err)
				}
				defer faultinject.Reset()

				err := servePath(t, path, svc)
				if err == nil {
					t.Fatal("request under injected fault succeeded")
				}
				switch path {
				case pathDirect, pathDispatcher:
					// In process the raw cause is still attached (and coded);
					// the errors.Is guarantee is the *wire* contract, minted
					// where writeError renders the envelope.
					if got := api.Code(err); got != tc.wantCode {
						t.Fatalf("in-process code = %q, want %q (err: %v)", got, tc.wantCode, err)
					}
					if path == pathDirect && !errors.Is(err, faultinject.ErrInjected) {
						t.Fatalf("direct error lost its injected ancestry: %v", err)
					}
				case pathHTTP:
					if !chaos.Typed(err) {
						t.Fatalf("wire refusal is untyped: %v", err)
					}
					if !errors.Is(err, tc.wantWire) {
						t.Fatalf("wire error = %v, want errors.Is(%v)", err, tc.wantWire)
					}
				case pathGateway:
					if !chaos.Typed(err) {
						t.Fatalf("gateway refusal is untyped: %v", err)
					}
					if !errors.Is(err, tc.wantGateway) {
						t.Fatalf("gateway error = %v, want errors.Is(%v)", err, tc.wantGateway)
					}
					if !api.Retryable(err) {
						t.Fatalf("gateway refusal is not retryable: %v", err)
					}
				}
			})
		}
	}
}

// TestDegradedServingHealsAfterDrain drives the degraded-serving loop in
// process: a world whose rebuild fails while a last-known-good snapshot
// exists is served degraded (flagged on the result, counted on stats)
// instead of refused — and because the lifecycle never caches a degraded
// framework, the first clean request after the schedule drains rebuilds
// and clears the mark.
func TestDegradedServingHealsAfterDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two real worlds")
	}
	ctx := context.Background()
	svc, err := service.New(service.Options{
		Base:     core.Options{Seed: chaosSeed, Sizes: chaosSizes},
		StoreDir: t.TempDir(),
		// One cache slot: serving the cv world below evicts the nlp
		// framework, so the next nlp request must reload through the
		// store — where the fault is waiting.
		CacheSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	disp := api.NewDispatcher(svc, chaosSeed)

	// Serve nlp cleanly (snapshotting it as last known good), then evict
	// it from the single cache slot by serving cv.
	if _, err := disp.Select(ctx, chaosReq()); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.Select(ctx, &api.SelectRequest{Task: "cv", Targets: []string{"food101"}}); err != nil {
		t.Fatal(err)
	}

	// Arm a read fault: the evicted nlp world's reload dies in the store,
	// and the snapshot steps in.
	if err := faultinject.Enable("seed=9;store.read:err#2"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	resp, err := disp.Select(ctx, chaosReq())
	if err != nil {
		t.Fatalf("degraded serving refused instead of serving the snapshot: %v", err)
	}
	if !resp.Results[0].Degraded || resp.Degraded != 1 {
		t.Fatalf("degraded serve not flagged on the wire: %+v", resp)
	}
	st, err := disp.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DegradedWorlds != 1 || st.DegradedServes < 1 {
		t.Fatalf("degraded gauges = worlds %d serves %d, want 1 / ≥1", st.DegradedWorlds, st.DegradedServes)
	}

	// Drain: with the fault gone the next request rebuilds cleanly —
	// degraded was never cached, so nothing sticky survives.
	faultinject.Reset()
	resp, err = disp.Select(ctx, chaosReq())
	if err != nil {
		t.Fatalf("post-drain request failed: %v", err)
	}
	if resp.Results[0].Degraded || resp.Degraded != 0 {
		t.Fatalf("post-drain serve still degraded: %+v", resp)
	}
	if st, err = disp.Stats(ctx); err != nil {
		t.Fatal(err)
	} else if st.DegradedWorlds != 0 {
		t.Fatalf("degraded world gauge did not heal: %d", st.DegradedWorlds)
	}
}
