package chaos_test

// The chaos proving ground: a real multi-process fleet (3 apiserver
// backends + 1 gateway, separate OS processes on ephemeral ports) driven
// through seeded fault schedules, asserting the four invariants from the
// package doc. Three distinct schedules run against pre-seeded per-
// backend stores — one with a planted orphan temp file and a planted
// corrupt artifact, all with one world's artifacts deleted so builds and
// writes happen mid-storm — plus a SIGKILL/restart of backend-0 in the
// middle, which is how the startup sweep's quarantine work gets proven
// end to end. TestChaosSmoke is the CI-sized cut of the same storm: two
// backends, short capped schedules, the same assertions.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"twophase/internal/api"
	"twophase/internal/chaos"
)

// binDir holds the compiled binaries' temp directory so TestMain can
// reclaim it — sync.OnceValues outlives any per-test cleanup scope.
var binDir string

func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

// buildBinaries compiles the real server binaries once per test run.
var buildBinaries = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "twophase-chaos-bin-*")
	if err != nil {
		return nil, err
	}
	binDir = dir
	bins := make(map[string]string, 2)
	for _, cmd := range []string{"apiserver", "gateway"} {
		out := filepath.Join(dir, cmd)
		build := exec.Command("go", "build", "-o", out, "./cmd/"+cmd)
		build.Dir = repoRoot()
		if msg, err := build.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("go build ./cmd/%s: %v\n%s", cmd, err, msg)
		}
		bins[cmd] = out
	}
	return bins, nil
})

// repoRoot finds the module root from this package's directory.
func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/chaos -> repo root
}

// freePort reserves an ephemeral port and releases it for the child
// process to bind. The classic race is acceptable in a test harness.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// proc is one spawned server process.
type proc struct {
	name string
	url  string
	bin  string
	args []string
	cmd  *exec.Cmd
	logf *os.File
}

// spawn starts a binary and registers cleanup; logs go to the test log on
// failure via the per-process log file.
func spawn(t *testing.T, name, bin string, logDir string, args ...string) *proc {
	t.Helper()
	logf, err := os.OpenFile(filepath.Join(logDir, name+".log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	p := &proc{name: name, bin: bin, args: args, logf: logf}
	p.start(t)
	t.Cleanup(func() {
		p.kill()
		logf.Close()
		if t.Failed() {
			if data, err := os.ReadFile(logf.Name()); err == nil {
				t.Logf("---- %s log ----\n%s", name, data)
			}
		}
	})
	return p
}

// start launches (or relaunches, after kill) the process.
func (p *proc) start(t *testing.T) {
	t.Helper()
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout = p.logf
	cmd.Stderr = p.logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", p.name, err)
	}
	p.cmd = cmd
}

// stripFlag removes a "-name value" pair from an argument list.
func stripFlag(args []string, name string) []string {
	out := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		if args[i] == name {
			i++ // skip the value too
			continue
		}
		out = append(out, args[i])
	}
	return out
}

// kill SIGKILLs the process and reaps it; idempotent.
func (p *proc) kill() {
	if p.cmd != nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

// waitHealthy polls a server's healthz until ok or the deadline.
func waitHealthy(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	c := api.NewClient(url, nil)
	deadline := time.After(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := c.Healthz(ctx)
		cancel()
		if err == nil {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("%s never became healthy: %v", url, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// worldKey identifies one (seed, target) selection in the storm matrix.
type worldKey struct {
	seed   uint64
	target string
}

func (k worldKey) String() string { return fmt.Sprintf("seed%d/%s", k.seed, k.target) }

// stormMatrix is the request matrix every fleet serves: three worlds,
// two targets each.
var stormMatrix = []worldKey{
	{0, "tweet_eval"}, {0, "glue/sst2"},
	{1, "tweet_eval"}, {1, "glue/sst2"},
	{5, "tweet_eval"}, {5, "glue/sst2"},
}

// trySelect issues one single-target request and returns the response or
// the request error (never both).
func trySelect(c *api.Client, k worldKey) (*api.SelectResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	s := k.seed
	return c.Select(ctx, &api.SelectRequest{
		Task:          "nlp",
		Targets:       []string{k.target},
		SelectOptions: api.SelectOptions{Seed: &s},
	})
}

// strip clears the fields that legitimately vary across backends and
// across degraded/clean serves of the same world (who served, wall time,
// lifetime counters, degradation flags), leaving the selection outcome
// that must be bit-identical.
func strip(resp *api.SelectResponse) api.SelectResponse {
	out := *resp
	out.Results = append([]api.TargetResult(nil), resp.Results...)
	for i := range out.Results {
		out.Results[i].Backend = ""
		out.Results[i].Degraded = false
	}
	out.WallMillis = 0
	out.OfflineBuilds = 0
	out.Degraded = 0
	return out
}

// fleet is one booted backend set plus its gateway.
type fleet struct {
	backends []*proc
	urls     []string
	gw       *proc
	client   *api.Client
}

// fleetSpec configures bootFleet.
type fleetSpec struct {
	stores           []string // one store dir per backend; len = fleet size
	backendSchedules []string // per-backend -fault-schedule ("" = none)
	gwSchedule       string   // gateway -fault-schedule ("" = none)
}

var sizeFlags = []string{"-train", "60", "-val", "40", "-test", "48"}

// bootFleet spawns len(spec.stores) backends (fleet-aware: each knows the
// full URL list, so the artifact fetcher is live) and a gateway fronting
// them, waits for health, and returns the handles.
func bootFleet(t *testing.T, logDir string, spec fleetSpec) *fleet {
	t.Helper()
	n := len(spec.stores)
	urls := make([]string, n)
	ports := make([]int, n)
	for i := range urls {
		ports[i] = freePort(t)
		urls[i] = "http://127.0.0.1:" + strconv.Itoa(ports[i])
	}
	f := &fleet{urls: urls, backends: make([]*proc, n)}
	for i := range f.backends {
		name := fmt.Sprintf("backend-%d", i)
		args := append([]string{
			"-addr", "127.0.0.1:" + strconv.Itoa(ports[i]),
			"-instance", name,
			"-store", spec.stores[i],
			"-backends", strings.Join(urls, ","),
			"-self", urls[i],
			"-replicas", "2",
		}, sizeFlags...)
		if spec.backendSchedules[i] != "" {
			args = append(args, "-fault-schedule", spec.backendSchedules[i])
		}
		f.backends[i] = spawn(t, name, bins(t)["apiserver"], logDir, args...)
		f.backends[i].url = urls[i]
	}
	for _, b := range f.backends {
		waitHealthy(t, b.url, 30*time.Second)
	}
	gwPort := freePort(t)
	gwArgs := []string{
		"-addr", "127.0.0.1:" + strconv.Itoa(gwPort),
		"-backends", strings.Join(urls, ","),
		"-replicas", "2",
		"-probe-interval", "100ms",
		"-probe-failures", "2",
		"-attempt-timeout", "5s",
		"-instance", "gw-chaos",
	}
	if spec.gwSchedule != "" {
		gwArgs = append(gwArgs, "-fault-schedule", spec.gwSchedule)
	}
	f.gw = spawn(t, "gateway", bins(t)["gateway"], logDir, gwArgs...)
	f.gw.url = "http://127.0.0.1:" + strconv.Itoa(gwPort)
	waitHealthy(t, f.gw.url, 30*time.Second)
	f.client = api.NewClient(f.gw.url, nil)
	return f
}

// bins unwraps buildBinaries for use inside helpers.
func bins(t *testing.T) map[string]string {
	t.Helper()
	b, err := buildBinaries()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// shutdown kills every process in the fleet (reverse order: gateway
// first, so no probe noise lands on dying backends).
func (f *fleet) shutdown() {
	f.gw.kill()
	for _, b := range f.backends {
		b.kill()
	}
}

// requireChaosPrereqs skips the multi-process suites where they cannot run.
func requireChaosPrereqs(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process chaos harness (builds binaries, spawns fleets)")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
}

// buildBaseline boots a fault-free fleet over one shared store, serves
// the whole storm matrix through the gateway, and returns the store dir
// (now holding every world's artifacts) plus the stripped fault-free
// responses every later success must be bit-identical to.
func buildBaseline(t *testing.T, logDir string) (string, map[worldKey]api.SelectResponse) {
	t.Helper()
	shared := t.TempDir()
	f := bootFleet(t, logDir, fleetSpec{
		stores:           []string{shared, shared, shared},
		backendSchedules: []string{"", "", ""},
	})
	defer f.shutdown()
	baseline := make(map[worldKey]api.SelectResponse, len(stormMatrix))
	for _, k := range stormMatrix {
		resp, err := trySelect(f.client, k)
		if err != nil {
			t.Fatalf("baseline %s: %v", k, err)
		}
		if resp.Failed != 0 {
			t.Fatalf("baseline %s failed in-body: %+v", k, resp.Results[0])
		}
		baseline[k] = strip(resp)
	}
	return shared, baseline
}

// seedStores copies the baseline store into one fresh directory per
// backend, plants a crash scene in backend-0's copy (an orphaned temp
// file and a bit-flipped artifact), and deletes the seed-5 world's stage
// artifacts everywhere so the storm forces real builds, writes and peer
// fetches while faults are armed.
func seedStores(t *testing.T, baseline string, n int) []string {
	t.Helper()
	stores := make([]string, n)
	for i := range stores {
		dir := t.TempDir()
		if err := os.CopyFS(dir, os.DirFS(baseline)); err != nil {
			t.Fatal(err)
		}
		for _, kind := range []string{"matrices", "recalls"} {
			os.Remove(filepath.Join(dir, kind, "nlp-seed5.bin"))
			os.Remove(filepath.Join(dir, kind, "nlp-seed5.json"))
		}
		stores[i] = dir
	}
	// Backend-0 "crashed mid-write" before this boot: an orphaned temp
	// file that must never be served, and a corrupt artifact whose
	// checksum no longer holds. The startup sweep must quarantine both.
	if err := os.WriteFile(filepath.Join(stores[0], "matrices", "nlp-seed1.json.tmp999"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(stores[0], "matrices", "nlp-seed1.bin")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatalf("baseline store is missing %s: %v", victim, err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return stores
}

// provePanicRecovery hits each backend directly: the armed
// handler:panic#1 must surface as a typed internal 500 on the first
// select, and the process must keep serving — later selects succeed (a
// few typed refusals from other armed rules are tolerated while the
// schedule drains).
func provePanicRecovery(t *testing.T, f *fleet, clog *chaos.Log) {
	t.Helper()
	k := stormMatrix[0]
	for _, b := range f.backends {
		c := api.NewClient(b.url, nil)
		_, err := trySelect(c, k)
		if !errors.Is(err, api.ErrInternal) {
			t.Fatalf("%s: first select under handler:panic = %v, want typed ErrInternal", b.name, err)
		}
		clog.Event("%s: injected panic surfaced typed: %v", b.name, err)
		ok := false
		for attempt := 0; attempt < 8 && !ok; attempt++ {
			resp, err := trySelect(c, k)
			switch {
			case err == nil && resp.Failed == 0:
				ok = true
			case err != nil && !chaos.Typed(err):
				t.Fatalf("%s: post-panic refusal untyped: %v", b.name, err)
			}
		}
		if !ok {
			t.Fatalf("%s: never served again after recovered panic", b.name)
		}
		clog.Event("%s: serving again after recovered panic", b.name)
	}
}

// stormPass drives the whole matrix through the gateway once. Errors
// must be typed; successes must be bit-identical to baseline. Returns
// how many requests failed (typed).
func stormPass(t *testing.T, f *fleet, baseline map[worldKey]api.SelectResponse, clog *chaos.Log) int {
	t.Helper()
	failed := 0
	for _, k := range stormMatrix {
		resp, err := trySelect(f.client, k)
		if err != nil {
			if !chaos.Typed(err) {
				t.Fatalf("storm %s: untyped refusal: %v", k, err)
			}
			clog.Event("storm %s: typed refusal: %v", k, err)
			failed++
			continue
		}
		if resp.Failed != 0 {
			// Single-target requests surface failures as request errors;
			// an in-body failure here would be a contract break.
			t.Fatalf("storm %s: single-target failure leaked in-body: %+v", k, resp.Results[0])
		}
		if got := strip(resp); !reflect.DeepEqual(got, baseline[k]) {
			t.Fatalf("storm %s: success diverged from fault-free baseline:\n%+v\nvs\n%+v", k, got, baseline[k])
		}
		if resp.Results[0].Degraded {
			clog.Event("storm %s: served degraded (bit-identical)", k)
		}
	}
	return failed
}

// awaitReconvergence polls the gateway's stats until every backend is
// alive with a closed breaker — the fleet has healed.
func awaitReconvergence(t *testing.T, f *fleet, timeout time.Duration, clog *chaos.Log) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		st, err := f.client.Stats(ctx)
		cancel()
		if err == nil && st.Gateway != nil && st.Gateway.Alive == len(f.backends) {
			closed := 0
			for _, bs := range st.Gateway.BackendStats {
				if bs.Breaker == "closed" {
					closed++
				}
			}
			if closed == len(f.backends) {
				clog.Event("fleet reconverged: %d alive, all breakers closed", st.Gateway.Alive)
				return
			}
		}
		select {
		case <-deadline:
			t.Fatalf("fleet never reconverged (last stats err: %v)", err)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// cleanPass re-serves the matrix after the schedules drained: every key
// must succeed (a handful of typed refusals are tolerated while the
// restarted backend's re-armed one-shot rules drain) with a clean,
// non-degraded, bit-identical response.
func cleanPass(t *testing.T, f *fleet, baseline map[worldKey]api.SelectResponse, clog *chaos.Log) {
	t.Helper()
	for _, k := range stormMatrix {
		var resp *api.SelectResponse
		for attempt := 0; attempt < 6; attempt++ {
			r, err := trySelect(f.client, k)
			if err != nil {
				if !chaos.Typed(err) {
					t.Fatalf("clean pass %s: untyped refusal: %v", k, err)
				}
				continue
			}
			if r.Results[0].Degraded {
				// Degraded worlds heal on the first clean rebuild; give
				// the backend another pass.
				continue
			}
			resp = r
			break
		}
		if resp == nil {
			t.Fatalf("clean pass %s: no clean success after drain", k)
		}
		if got := strip(resp); !reflect.DeepEqual(got, baseline[k]) {
			t.Fatalf("clean pass %s diverged from baseline:\n%+v\nvs\n%+v", k, got, baseline[k])
		}
		if resp.Degraded != 0 {
			t.Fatalf("clean pass %s still flagged degraded: %+v", k, resp)
		}
	}
	clog.Event("clean pass: all %d keys bit-identical and non-degraded", len(stormMatrix))
}

// scanStores asserts the persistence invariants on every backend's store
// after the fleet is down: no orphans or corrupt artifacts outside
// quarantine anywhere, and backend-0 (which booted over the planted
// crash scene) actually quarantined something.
func scanStores(t *testing.T, stores []string, clog *chaos.Log) {
	t.Helper()
	for i, dir := range stores {
		rep, err := chaos.ScanStore(dir)
		if err != nil {
			t.Fatalf("scan backend-%d store: %v", i, err)
		}
		if !rep.Clean() {
			t.Fatalf("backend-%d store dirty after chaos: orphans %v, corrupt %v", i, rep.Orphans, rep.Corrupt)
		}
		clog.Event("backend-%d store clean (%d quarantined)", i, rep.Quarantined)
	}
	if rep, _ := chaos.ScanStore(stores[0]); rep.Quarantined == 0 {
		t.Fatal("backend-0 quarantined nothing despite the planted orphan and corrupt artifact")
	}
}

// chaosSchedule is one named storm configuration.
type chaosSchedule struct {
	name     string
	backends []string // per-backend schedule
	gateway  string
}

// TestChaosStorms is the full harness: three distinct seeded schedules,
// each against a fresh 3-backend fleet with pre-seeded stores, a mid-
// storm SIGKILL/restart of backend-0, and the four invariants asserted
// end to end.
func TestChaosStorms(t *testing.T) {
	requireChaosPrereqs(t)
	clog, err := chaos.OpenLog()
	if err != nil {
		t.Fatal(err)
	}
	defer clog.Close()
	logDir := t.TempDir()
	baselineStore, baseline := buildBaseline(t, logDir)

	schedules := []chaosSchedule{
		{
			// Every error class at once: handler panics, store read
			// faults, slow builds behind a flaky transport.
			name: "error-storm",
			backends: []string{
				"seed=101;handler:panic#1;store.read:err@0.4#4;build:hang:200ms@0.5#2",
				"seed=102;handler:panic#1;store.read:err@0.4#4;build:hang:200ms@0.5#2",
				"seed=103;handler:panic#1;store.read:err@0.4#4",
			},
			gateway: "seed=101;transport:reset@0.3#6",
		},
		{
			// Crash-safety: backend-0 tears a write and loses an fsync
			// before being SIGKILLed; its restart must sweep the debris.
			name: "crash-and-sweep",
			backends: []string{
				"seed=202;handler:panic#1;store.write:torn#1;store.fsync:err#1",
				"seed=202;handler:panic#1",
				"seed=202;handler:panic#1",
			},
			gateway: "seed=202;transport:hang:300ms@0.5#4;transport:http500@0.25#3",
		},
		{
			// Distribution under fire: peer fetches and builds failing
			// while the gateway's transport throws raw 500s and resets.
			name: "fetch-storm",
			backends: []string{
				"seed=303;handler:panic#1;fetch.request:err@0.5#3;build:err@0.4#2",
				"seed=304;handler:panic#1;fetch.request:err@0.5#3;build:err@0.4#2",
				"seed=305;handler:panic#1;fetch.request:err@0.5#3",
			},
			gateway: "seed=303;transport:http500@0.4#4;transport:reset@0.2#3",
		},
	}

	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			clog.Event("=== schedule %s ===", sched.name)
			stores := seedStores(t, baselineStore, 3)
			f := bootFleet(t, t.TempDir(), fleetSpec{
				stores:           stores,
				backendSchedules: sched.backends,
				gwSchedule:       sched.gateway,
			})
			defer f.shutdown()

			// 1. Injected handler panics surface typed and the processes
			// keep serving.
			provePanicRecovery(t, f, clog)

			// 2. Storm pass one: typed errors only, successes identical
			// to the fault-free baseline.
			stormPass(t, f, baseline, clog)

			// 3. Build a world unique to backend-0 so its write-path
			// rules (crash-and-sweep's torn write) fire before the
			// crash; the request itself must survive — persistence is
			// best-effort, serving is not.
			b0 := api.NewClient(f.backends[0].url, nil)
			nine := worldKey{9, "tweet_eval"}
			for attempt := 0; ; attempt++ {
				if _, err := trySelect(b0, nine); err == nil {
					break
				} else if !chaos.Typed(err) {
					t.Fatalf("backend-0 seed-9 build refusal untyped: %v", err)
				}
				if attempt >= 5 {
					t.Fatal("backend-0 never built the seed-9 world")
				}
			}

			// 4. SIGKILL backend-0 mid-storm and restart it on the same
			// port over the same store: the startup sweep quarantines the
			// planted debris plus whatever the torn write left behind.
			clog.Event("SIGKILL backend-0")
			f.backends[0].kill()
			stormPass(t, f, baseline, clog) // fleet of two keeps serving
			// The restart comes back with no schedule armed — the crash
			// consumed it. Re-arming one-shot write faults on every boot
			// would leave a final torn write with no later sweep to clean
			// it, and the storm would never terminate.
			f.backends[0].args = stripFlag(f.backends[0].args, "-fault-schedule")
			f.backends[0].start(t)
			waitHealthy(t, f.backends[0].url, 30*time.Second)
			clog.Event("backend-0 restarted")

			// 5. Storm pass two with the full fleet back.
			stormPass(t, f, baseline, clog)

			// 6. The schedules drain; the fleet reconverges: probes
			// re-admit backend-0, every breaker closes, and a full clean
			// pass serves bit-identical, non-degraded answers.
			awaitReconvergence(t, f, 30*time.Second, clog)
			cleanPass(t, f, baseline, clog)

			// 7. Persistence invariants on the stores the storm touched.
			f.shutdown()
			scanStores(t, stores, clog)
		})
	}
}

// TestChaosSmoke is the CI-sized storm: a 2-backend fleet under one
// short capped schedule, proving the same invariants in under a minute —
// typed refusals, panic recovery, reconvergence, bit-identical answers
// (storm successes vs the post-drain clean run), and clean stores.
func TestChaosSmoke(t *testing.T) {
	requireChaosPrereqs(t)
	clog, err := chaos.OpenLog()
	if err != nil {
		t.Fatal(err)
	}
	defer clog.Close()
	clog.Event("=== chaos smoke ===")
	stores := []string{t.TempDir(), t.TempDir()}
	f := bootFleet(t, t.TempDir(), fleetSpec{
		stores: stores,
		backendSchedules: []string{
			"seed=7;handler:panic#1;store.read:err#2",
			"seed=8;handler:panic#1",
		},
		gwSchedule: "seed=7;transport:http500#2;transport:reset#1",
	})
	defer f.shutdown()

	smoke := []worldKey{{0, "tweet_eval"}, {0, "glue/sst2"}, {1, "tweet_eval"}}
	provePanicRecovery(t, f, clog)

	// Storm: capped rules fire across these requests; refusals must be
	// typed, and whatever succeeds is recorded for the identity check.
	successes := make(map[worldKey]api.SelectResponse)
	for round := 0; round < 3; round++ {
		for _, k := range smoke {
			resp, err := trySelect(f.client, k)
			if err != nil {
				if !chaos.Typed(err) {
					t.Fatalf("smoke %s: untyped refusal: %v", k, err)
				}
				clog.Event("smoke %s: typed refusal: %v", k, err)
				continue
			}
			if prev, ok := successes[k]; ok && !reflect.DeepEqual(strip(resp), prev) {
				t.Fatalf("smoke %s: answers diverged across the storm", k)
			}
			successes[k] = strip(resp)
		}
	}

	// Drain: the fleet reconverges and the clean run reproduces every
	// storm success bit-identically.
	awaitReconvergence(t, f, 30*time.Second, clog)
	for _, k := range smoke {
		var resp *api.SelectResponse
		for attempt := 0; attempt < 6 && resp == nil; attempt++ {
			if r, err := trySelect(f.client, k); err == nil && !r.Results[0].Degraded {
				resp = r
			} else if err != nil && !chaos.Typed(err) {
				t.Fatalf("smoke clean pass %s: untyped refusal: %v", k, err)
			}
		}
		if resp == nil {
			t.Fatalf("smoke clean pass %s: no clean success after drain", k)
		}
		if prev, ok := successes[k]; ok && !reflect.DeepEqual(strip(resp), prev) {
			t.Fatalf("smoke %s: post-drain answer differs from storm answer", k)
		}
	}
	f.shutdown()
	for i, dir := range stores {
		rep, err := chaos.ScanStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("backend-%d store dirty after smoke: %+v", i, rep)
		}
	}
	clog.Event("smoke complete: %d distinct keys verified", len(smoke))
}
