package admission

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Typed refusals of the admission tier. The serving layer maps them onto
// the wire's rate_limited (429) and overloaded (503) errors.
var (
	// ErrRateLimited marks a request refused by its client's token bucket.
	ErrRateLimited = errors.New("admission: rate limited")
	// ErrShed marks a request dropped because the concurrency limit was
	// reached and the wait queue was full (or the waiter was evicted by a
	// higher-priority arrival).
	ErrShed = errors.New("admission: overloaded, request shed")
)

// DefaultShedRetryAfter is the Retry-After hint attached to shed requests
// when Options.ShedRetryAfter is unset: long enough for a burst to drain,
// short enough to keep well-behaved clients responsive.
const DefaultShedRetryAfter = 250 * time.Millisecond

// Options configures a Controller. The zero value disables every limit —
// Admit then always succeeds immediately.
type Options struct {
	// Rate is the per-client token refill rate in requests per second
	// (0 = no rate limiting). Burst is the bucket capacity (0 = max(Rate, 1)).
	Rate  float64
	Burst float64
	// MaxInflight bounds concurrently admitted requests (0 = unlimited).
	MaxInflight int
	// MaxQueue bounds requests waiting for an inflight slot. 0 means no
	// queue: a request arriving at the concurrency limit is shed on the
	// spot. When the queue is full, the lowest-priority waiter is shed
	// first (the newest among equals); an arrival that outranks no waiter
	// is shed itself.
	MaxQueue int
	// ShedRetryAfter is the Retry-After hint for shed requests
	// (0 = DefaultShedRetryAfter).
	ShedRetryAfter time.Duration
	// MaxClients bounds tracked per-client buckets; at the bound, the
	// least recently used idle bucket is dropped (a dropped client starts
	// over with a full bucket). 0 means 4096.
	MaxClients int
	// Now is the clock (tests override it; nil means time.Now).
	Now func() time.Time
}

// Stats is the controller's observability snapshot.
type Stats struct {
	Admitted    int64 // requests admitted (immediately or after queueing)
	RateLimited int64 // requests refused by a token bucket
	Shed        int64 // requests dropped at the queue bound
	Queued      int64 // requests that waited for a slot before admission
	Inflight    int   // currently admitted requests
	QueueLen    int   // currently waiting requests
	Clients     int   // tracked client buckets
}

// waiter is one queued request. state transitions under the controller
// lock: waiting → granted (slot handed over) or waiting → shed (evicted);
// the ready channel closes on either.
type waiter struct {
	priority int
	seq      uint64
	ready    chan struct{}
	granted  bool
	shed     bool
}

// Controller is the admission gate: per-client token buckets in front of
// a bounded-concurrency slot pool with a priority wait queue.
type Controller struct {
	opts Options

	mu       sync.Mutex
	buckets  map[string]*TokenBucket
	lru      map[string]int64 // client → last-use tick for bucket eviction
	tick     int64
	inflight int
	queue    []*waiter
	seq      uint64
	stats    Stats
}

// NewController creates a Controller for the given options.
func NewController(opts Options) *Controller {
	if opts.Burst <= 0 {
		opts.Burst = opts.Rate
	}
	if opts.ShedRetryAfter <= 0 {
		opts.ShedRetryAfter = DefaultShedRetryAfter
	}
	if opts.MaxClients <= 0 {
		opts.MaxClients = 4096
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Controller{
		opts:    opts,
		buckets: make(map[string]*TokenBucket),
		lru:     make(map[string]int64),
	}
}

// Admit gates one request for the given client at the given priority
// (higher outranks lower). On success it returns a release func the
// caller MUST invoke when the request finishes — releasing hands the slot
// to the best waiter. On refusal it returns the typed error plus a
// Retry-After hint; a context canceled while waiting returns ctx.Err().
func (c *Controller) Admit(ctx context.Context, client string, priority int) (func(), time.Duration, error) {
	if c.opts.Rate > 0 {
		if ok, retry := c.bucket(client).Allow(c.opts.Now()); !ok {
			c.mu.Lock()
			c.stats.RateLimited++
			c.mu.Unlock()
			return nil, retry, fmt.Errorf("%w: client %q over %g req/s", ErrRateLimited, client, c.opts.Rate)
		}
	}

	c.mu.Lock()
	if c.opts.MaxInflight <= 0 || c.inflight < c.opts.MaxInflight {
		c.inflight++
		c.stats.Admitted++
		c.mu.Unlock()
		return c.release, 0, nil
	}

	// The slot pool is saturated: queue, or shed at the queue bound.
	if len(c.queue) >= c.opts.MaxQueue {
		v := c.victim()
		if v == nil || v.priority >= priority {
			// Nobody waiting ranks below the arrival — the arrival itself
			// is the lowest priority, so it is the one shed.
			c.stats.Shed++
			c.mu.Unlock()
			return nil, c.opts.ShedRetryAfter, fmt.Errorf("%w: %d inflight, queue full", ErrShed, c.opts.MaxInflight)
		}
		v.shed = true
		c.remove(v)
		c.stats.Shed++
		close(v.ready)
	}
	w := &waiter{priority: priority, seq: c.seq, ready: make(chan struct{})}
	c.seq++
	c.queue = append(c.queue, w)
	c.stats.Queued++
	c.mu.Unlock()

	select {
	case <-w.ready:
		c.mu.Lock()
		defer c.mu.Unlock()
		if w.shed {
			return nil, c.opts.ShedRetryAfter, fmt.Errorf("%w: evicted by a higher-priority request", ErrShed)
		}
		c.stats.Admitted++
		return c.release, 0, nil
	case <-ctx.Done():
		c.mu.Lock()
		defer c.mu.Unlock()
		select {
		case <-w.ready:
			// Lost the race: the slot was already handed to us (or we were
			// shed) before the lock. Give a granted slot straight back.
			if w.granted {
				c.releaseLocked()
			}
		default:
			c.remove(w)
		}
		return nil, 0, ctx.Err()
	}
}

// release returns an admitted request's slot, handing it directly to the
// best waiter when one exists (the inflight count then never dips, so a
// release/admit race cannot overshoot the bound).
func (c *Controller) release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.releaseLocked()
}

func (c *Controller) releaseLocked() {
	if w := c.popBest(); w != nil {
		w.granted = true
		close(w.ready)
		return
	}
	c.inflight--
}

// popBest removes and returns the highest-priority waiter, FIFO within a
// priority level; nil when the queue is empty.
func (c *Controller) popBest() *waiter {
	best := -1
	for i, w := range c.queue {
		if best < 0 || w.priority > c.queue[best].priority ||
			(w.priority == c.queue[best].priority && w.seq < c.queue[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	w := c.queue[best]
	c.queue = append(c.queue[:best], c.queue[best+1:]...)
	return w
}

// victim returns the waiter to evict at the queue bound: the lowest
// priority, newest arrival among equals — older waiters of the same rank
// keep their place in line. nil when the queue is empty.
func (c *Controller) victim() *waiter {
	var v *waiter
	for _, w := range c.queue {
		if v == nil || w.priority < v.priority ||
			(w.priority == v.priority && w.seq > v.seq) {
			v = w
		}
	}
	return v
}

// remove deletes a waiter from the queue if it is still queued.
func (c *Controller) remove(target *waiter) {
	for i, w := range c.queue {
		if w == target {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// bucket returns the client's token bucket, creating it full on first
// sight and evicting the least recently used bucket beyond MaxClients.
func (c *Controller) bucket(client string) *TokenBucket {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if b, ok := c.buckets[client]; ok {
		c.lru[client] = c.tick
		return b
	}
	if len(c.buckets) >= c.opts.MaxClients {
		oldest, oldestTick := "", int64(0)
		for cl, tk := range c.lru {
			if oldest == "" || tk < oldestTick {
				oldest, oldestTick = cl, tk
			}
		}
		delete(c.buckets, oldest)
		delete(c.lru, oldest)
	}
	b := NewTokenBucket(c.opts.Rate, c.opts.Burst)
	c.buckets[client] = b
	c.lru[client] = c.tick
	return b
}

// Stats snapshots the controller's counters and gauges.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Inflight = c.inflight
	st.QueueLen = len(c.queue)
	st.Clients = len(c.buckets)
	return st
}

// Window is a fixed-size sliding window of latency observations with
// percentile queries — the gateway's hedging trigger reads its p-th
// percentile to decide when a sub-request is "slow".
type Window struct {
	mu  sync.Mutex
	buf []time.Duration
	idx int
	n   int
}

// NewWindow creates a window over the last `size` observations (minimum 1).
func NewWindow(size int) *Window {
	if size < 1 {
		size = 1
	}
	return &Window{buf: make([]time.Duration, size)}
}

// Observe records one latency sample.
func (w *Window) Observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.idx] = d
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// Len reports how many samples the window currently holds.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Percentile returns the p-th percentile (0 < p <= 100) of the window's
// samples, or false while the window is empty. Nearest-rank method.
func (w *Window) Percentile(p float64) (time.Duration, bool) {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return 0, false
	}
	samples := make([]time.Duration, w.n)
	copy(samples, w.buf[:w.n])
	w.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := int(p/100*float64(len(samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(samples) {
		rank = len(samples) - 1
	}
	return samples[rank], true
}
