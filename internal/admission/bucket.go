// Package admission is the serving tier's backpressure layer: per-client
// token-bucket rate limiting, a bounded priority queue with load-shedding
// over a concurrency limit, and a sliding latency window for hedging
// decisions. It is transport-free — the API handler and the gateway mount
// it and map its refusals onto the wire's rate_limited/overloaded errors.
package admission

import (
	"sync"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter: capacity `burst`
// tokens, refilled at `rate` tokens per second. It is robust to clock
// skew: time moving backwards neither refills the bucket nor drives the
// token count negative — the bucket adopts the new clock and resumes
// refilling from there.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time // last refill instant (zero until first Allow)
}

// NewTokenBucket creates a full bucket. rate must be positive; a burst
// below 1 is raised to 1 so a full bucket always admits at least one
// request.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow takes one token at the given instant. When the bucket is empty it
// refuses and reports how long until one token accumulates — the
// Retry-After hint.
func (b *TokenBucket) Allow(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		if elapsed := now.Sub(b.last); elapsed > 0 {
			b.tokens += elapsed.Seconds() * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
		// elapsed <= 0 means the clock jumped backwards (or stood still):
		// no refill, and below we adopt `now` so a later forward-moving
		// clock refills from the new timeline instead of waiting to catch
		// up with the old one.
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	missing := 1 - b.tokens
	return false, time.Duration(missing / b.rate * float64(time.Second))
}

// Tokens reports the current token count (diagnostics only).
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
