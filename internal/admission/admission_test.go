package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTokenBucketRefill(t *testing.T) {
	b := NewTokenBucket(10, 2) // 10 tok/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(now); !ok {
			t.Fatalf("request %d refused with a full bucket", i)
		}
	}
	ok, retry := b.Allow(now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms] for 10 tok/s", retry)
	}
	// 100ms refills exactly one token.
	if ok, _ := b.Allow(now.Add(100 * time.Millisecond)); !ok {
		t.Fatal("bucket did not refill after 100ms")
	}
}

// TestTokenBucketClockSkew: time moving backwards must neither refill the
// bucket nor drive tokens negative, and the bucket must resume refilling
// on the new timeline.
func TestTokenBucketClockSkew(t *testing.T) {
	b := NewTokenBucket(10, 1)
	now := time.Unix(1000, 0)
	if ok, _ := b.Allow(now); !ok {
		t.Fatal("full bucket refused")
	}
	// Clock jumps an hour back: no refill may happen.
	past := now.Add(-time.Hour)
	if ok, _ := b.Allow(past); ok {
		t.Fatal("backwards clock refilled the bucket")
	}
	if tok := b.Tokens(); tok < 0 {
		t.Fatalf("tokens went negative: %v", tok)
	}
	// The bucket adopted the new clock: 100ms forward from `past` refills
	// one token — it must NOT wait to catch up with the old timeline.
	if ok, _ := b.Allow(past.Add(100 * time.Millisecond)); !ok {
		t.Fatal("bucket stuck after clock skew")
	}
	// Repeated identical timestamps (a stopped clock) never refill.
	b2 := NewTokenBucket(1000, 1)
	b2.Allow(now)
	for i := 0; i < 100; i++ {
		if ok, _ := b2.Allow(now); ok {
			t.Fatal("stopped clock refilled the bucket")
		}
	}
}

func TestRateLimitPerClient(t *testing.T) {
	c := NewController(Options{Rate: 1, Burst: 1})
	rel, _, err := c.Admit(context.Background(), "alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	_, retry, err := c.Admit(context.Background(), "alice", 0)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if retry <= 0 {
		t.Fatalf("rate-limited refusal carries no retry hint: %v", retry)
	}
	// Another client has its own bucket.
	if rel, _, err := c.Admit(context.Background(), "bob", 0); err != nil {
		t.Fatalf("bob limited by alice's bucket: %v", err)
	} else {
		rel()
	}
	st := c.Stats()
	if st.RateLimited != 1 || st.Admitted != 2 || st.Clients != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestShedOrder: at the queue bound the lowest-priority waiter is shed
// first; an arrival that outranks nobody is shed itself.
func TestShedOrder(t *testing.T) {
	c := NewController(Options{MaxInflight: 1, MaxQueue: 2})
	ctx := context.Background()
	rel, _, err := c.Admit(ctx, "a", 0) // takes the slot
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		err error
		rel func()
	}
	enqueue := func(priority int) chan outcome {
		ch := make(chan outcome, 1)
		go func() {
			rel, _, err := c.Admit(ctx, "a", priority)
			ch <- outcome{err, rel}
		}()
		// Wait for the waiter to actually be queued.
		for i := 0; i < 1000; i++ {
			if c.Stats().QueueLen > 0 && len(ch) == 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		return ch
	}

	low := enqueue(1)
	waitQueueLen(t, c, 1)
	high := enqueue(5)
	waitQueueLen(t, c, 2)

	// Queue full. A mid-priority arrival outranks the low waiter: the low
	// waiter is evicted, the arrival takes its place.
	mid := enqueue(3)
	out := <-low
	if !errors.Is(out.err, ErrShed) {
		t.Fatalf("low-priority waiter: %v, want ErrShed", out.err)
	}
	waitQueueLen(t, c, 2)

	// A zero-priority arrival outranks nobody: shed on the spot.
	_, retry, err := c.Admit(ctx, "a", 0)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("lowest arrival: %v, want ErrShed", err)
	}
	if retry <= 0 {
		t.Fatal("shed refusal carries no retry hint")
	}

	// Releasing the slot admits the HIGHEST-priority waiter first.
	rel()
	out = <-high
	if out.err != nil {
		t.Fatalf("high-priority waiter: %v", out.err)
	}
	select {
	case o := <-mid:
		t.Fatalf("mid admitted before high released: %+v", o)
	default:
	}
	out.rel()
	out = <-mid
	if out.err != nil {
		t.Fatalf("mid-priority waiter: %v", out.err)
	}
	out.rel()

	st := c.Stats()
	if st.Shed != 2 || st.Inflight != 0 || st.QueueLen != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestQueueFIFOWithinPriority: equal-priority waiters are admitted in
// arrival order.
func TestQueueFIFOWithinPriority(t *testing.T) {
	c := NewController(Options{MaxInflight: 1, MaxQueue: 4})
	ctx := context.Background()
	rel, _, err := c.Admit(ctx, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, _, err := c.Admit(ctx, "a", 7)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			rel()
		}(i)
		waitQueueLen(t, c, i+1)
	}
	rel()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want FIFO", order)
		}
	}
}

// TestAdmitContextCanceled: a waiter abandoning the queue returns
// ctx.Err() and leaves the queue clean.
func TestAdmitContextCanceled(t *testing.T) {
	c := NewController(Options{MaxInflight: 1, MaxQueue: 4})
	rel, _, err := c.Admit(context.Background(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Admit(ctx, "a", 0)
		done <- err
	}()
	waitQueueLen(t, c, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitQueueLen(t, c, 0)
	rel()
	if st := c.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight leaked: %+v", st)
	}
}

// TestAdmissionHammer: many goroutines racing admit/release/cancel at a
// tiny bound must never overshoot MaxInflight and must leave zero
// inflight at the end. Run with -race.
func TestAdmissionHammer(t *testing.T) {
	const bound = 4
	c := NewController(Options{MaxInflight: bound, MaxQueue: 8})
	var cur, peak int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(j%5)*time.Millisecond)
				rel, _, err := c.Admit(ctx, "hammer", i%3)
				if err == nil {
					n := atomic.AddInt64(&cur, 1)
					for {
						p := atomic.LoadInt64(&peak)
						if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
							break
						}
					}
					atomic.AddInt64(&cur, -1)
					rel()
				} else if !errors.Is(err, ErrShed) && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Errorf("unexpected admit error: %v", err)
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if p := atomic.LoadInt64(&peak); p > bound {
		t.Fatalf("concurrency peaked at %d, bound %d", p, bound)
	}
	if st := c.Stats(); st.Inflight != 0 || st.QueueLen != 0 {
		t.Fatalf("leaked state after hammer: %+v", st)
	}
}

func TestWindowPercentile(t *testing.T) {
	w := NewWindow(100)
	if _, ok := w.Percentile(99); ok {
		t.Fatal("empty window reported a percentile")
	}
	for i := 1; i <= 100; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	if p50, _ := w.Percentile(50); p50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99, _ := w.Percentile(99); p99 != 99*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	// The window slides: 50 more large samples shift the percentiles up.
	for i := 0; i < 50; i++ {
		w.Observe(time.Second)
	}
	if p99, _ := w.Percentile(99); p99 != time.Second {
		t.Fatalf("p99 after slide = %v", p99)
	}
	if w.Len() != 100 {
		t.Fatalf("window len %d", w.Len())
	}
}

func waitQueueLen(t *testing.T, c *Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().QueueLen == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue length never reached %d (stats %+v)", want, c.Stats())
}
