package numeric

import (
	"math"
	"testing"
)

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 7 {
		t.Fatalf("Row = %v", row)
	}
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row is not a view")
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	out := make([]float64, 2)
	m.MulVec([]float64{5, 6}, out)
	if out[0] != 17 || out[1] != 39 {
		t.Fatalf("MulVec = %v", out)
	}
}

func TestMulVecDimensionPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.MulVec([]float64{1}, make([]float64, 2))
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
}

func TestRandomMatrixStats(t *testing.T) {
	r := NewRNG(3)
	m := RandomMatrix(r, 100, 100, 2)
	var sum, sumSq float64
	for _, x := range m.Data {
		sum += x
		sumSq += x * x
	}
	n := float64(len(m.Data))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("random matrix mean %v std %v", mean, std)
	}
}

func TestGramSchmidtOrthonormal(t *testing.T) {
	r := NewRNG(4)
	m := RandomMatrix(r, 6, 16, 1)
	GramSchmidt(m, r)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j <= i; j++ {
			d := Dot(m.Row(i), m.Row(j))
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(d-want) > 1e-9 {
				t.Fatalf("rows %d,%d dot %v (want %v)", i, j, d, want)
			}
		}
	}
}

func TestGramSchmidtRecoversFromDependentRows(t *testing.T) {
	r := NewRNG(5)
	m := NewMatrix(3, 8)
	// rows 0 and 1 identical: Gram-Schmidt must re-randomize row 1
	for j := 0; j < 8; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, float64(j+1))
		m.Set(2, j, r.Norm())
	}
	GramSchmidt(m, r)
	if math.Abs(Dot(m.Row(0), m.Row(1))) > 1e-9 {
		t.Fatal("dependent rows not orthogonalized")
	}
	if math.Abs(Norm2(m.Row(1))-1) > 1e-9 {
		t.Fatal("re-randomized row not unit norm")
	}
}
