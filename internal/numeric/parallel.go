package numeric

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Row-block parallelism for the batched kernels.
//
// MulFrame-family kernels partition the *output frame's rows* across a
// bounded set of goroutines: each worker runs the ordinary serial kernel
// on a contiguous row slice, so every output element keeps its
// single-accumulator ascending-index reduction and the result is
// bit-identical to the serial pass — parallelism only reorders work
// across *independent* output elements, which the determinism rule (see
// Frame) explicitly permits.
//
// Dispatch is throttled two ways so small frames and already-saturated
// callers never pay for it:
//
//   - a size threshold: frames below parallelMinFlops multiply-adds run
//     serially — goroutine handoff costs more than it saves there;
//   - a process-wide helper budget: at most maxKernelWorkers-1 helper
//     goroutines exist across all concurrent kernels. A kernel invoked
//     from an already-parallel stage (perf-matrix cells, per-round
//     candidate training) finds no spare helpers and degrades to the
//     serial path instead of oversubscribing the scheduler.
//
// Results never depend on how many helpers were granted.

// parallelMinFlops is the kernel size (N*Rows*Cols multiply-adds) below
// which row-block dispatch is not attempted: ~256k FMAs is roughly 100µs
// of serial work, an order of magnitude above goroutine handoff cost.
const parallelMinFlops = 1 << 18

// minParallelRows is the smallest row block one helper is worth: blocks
// smaller than half an L1 tile would spend their time on dispatch.
const minParallelRows = 32

// maxKernelWorkers bounds the total number of goroutines (the caller
// plus helpers) computing frame kernels at any instant, process-wide.
// Tests may lower or raise it; production leaves it at GOMAXPROCS.
var maxKernelWorkers int64 = int64(runtime.GOMAXPROCS(0))

// kernelHelpers counts currently-running helper goroutines across all
// in-flight kernels (the callers themselves are not counted).
var kernelHelpers atomic.Int64

// reserveKernelHelpers grabs up to want helper slots from the global
// budget without blocking and returns how many it got (possibly 0). The
// caller must release exactly that many afterwards.
func reserveKernelHelpers(want int) int {
	if want <= 0 {
		return 0
	}
	for {
		cur := kernelHelpers.Load()
		avail := maxKernelWorkers - 1 - cur
		if avail <= 0 {
			return 0
		}
		take := int64(want)
		if take > avail {
			take = avail
		}
		if kernelHelpers.CompareAndSwap(cur, cur+take) {
			return int(take)
		}
	}
}

func releaseKernelHelpers(n int) {
	if n > 0 {
		kernelHelpers.Add(-int64(n))
	}
}

// mulFrameAuto picks serial vs row-block parallel execution for one
// batched multiply. The choice affects wall clock only, never bits.
func mulFrameAuto(m *Matrix, x *Frame, bias []float64, out *Frame) {
	want := frameKernelWorkers(x.N, m.Rows, m.Cols)
	if want <= 1 {
		mulFrame(m, x, bias, out)
		return
	}
	helpers := reserveKernelHelpers(want - 1)
	if helpers == 0 {
		mulFrame(m, x, bias, out)
		return
	}
	defer releaseKernelHelpers(helpers)
	mulFrameParallel(m, x, bias, out, helpers+1)
}

// frameKernelWorkers sizes the ideal worker count for an N-row kernel
// before consulting the global budget: 1 below the flops threshold, else
// bounded by the row count (each worker needs a meaningful block) and
// the process-wide cap.
func frameKernelWorkers(n, rows, cols int) int {
	flops := n * rows * cols
	if flops < parallelMinFlops || n < 2*minParallelRows {
		return 1
	}
	w := n / minParallelRows
	if max := int(maxKernelWorkers); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mulFrameParallel runs the serial kernel on `workers` contiguous row
// blocks of x/out concurrently. Each block is an independent sub-frame:
// no two goroutines touch the same output element, and within a block
// the element-level reduction is exactly the serial kernel's, so the
// result is bit-identical to mulFrame for every worker count.
func mulFrameParallel(m *Matrix, x *Frame, bias []float64, out *Frame, workers int) {
	if workers > x.N {
		workers = x.N
	}
	if workers <= 1 {
		mulFrame(m, x, bias, out)
		return
	}
	// Even split with the remainder spread over the first blocks, so
	// block sizes differ by at most one row.
	base, rem := x.N/workers, x.N%workers
	var wg sync.WaitGroup
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + base
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			mulFrame(m, x.Slice(lo, hi), bias, out.Slice(lo, hi))
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}
