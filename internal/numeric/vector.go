package numeric

import "math"

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: Dot length mismatch")
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit Euclidean norm and returns v.
// A zero vector is left unchanged.
func Normalize(v []float64) []float64 {
	n := Norm2(v)
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}

// AddScaled computes dst += alpha*src in place. It panics on length mismatch.
func AddScaled(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic("numeric: AddScaled length mismatch")
	}
	for i, x := range src {
		dst[i] += alpha * x
	}
}

// Scale multiplies v by alpha in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// CosineSimilarity returns the cosine of the angle between a and b,
// or 0 if either vector is zero.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// EuclideanDistance returns the L2 distance between a and b.
func EuclideanDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: EuclideanDistance length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Clone returns a fresh copy of v.
func Clone(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

// ArgMax returns the index of the largest element (first on ties).
// It panics on an empty slice.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		panic("numeric: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element (first on ties).
// It panics on an empty slice.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		panic("numeric: ArgMin of empty slice")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

// Softmax writes the softmax of logits into out (which may alias logits)
// using the max-shift trick for numerical stability.
func Softmax(logits, out []float64) {
	if len(logits) != len(out) {
		panic("numeric: Softmax length mismatch")
	}
	if len(logits) == 0 {
		return
	}
	max := logits[0]
	for _, x := range logits[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range logits {
		e := math.Exp(x - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// LogSumExp returns log(sum(exp(v))) computed stably.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for _, x := range v {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}
