package numeric

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("mean = %v", Mean(v))
	}
	if got := StdDev(v); !almostEq(got, 2, 1e-12) {
		t.Fatalf("std = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("single-element std should be 0")
	}
}

func TestMaxMin(t *testing.T) {
	v := []float64{3, -1, 7, 2}
	if Max(v) != 7 || Min(v) != -1 {
		t.Fatalf("Max/Min = %v/%v", Max(v), Min(v))
	}
}

func TestArgSortDesc(t *testing.T) {
	v := []float64{0.3, 0.9, 0.1, 0.9}
	idx := ArgSortDesc(v)
	if idx[0] != 1 || idx[1] != 3 { // stable: first 0.9 first
		t.Fatalf("ArgSortDesc = %v", idx)
	}
	for i := 1; i < len(idx); i++ {
		if v[idx[i-1]] < v[idx[i]] {
			t.Fatalf("not descending: %v", idx)
		}
	}
}

func TestArgSortAscProperty(t *testing.T) {
	f := func(raw [9]float64) bool {
		a := sanitize(raw[:])
		idx := ArgSortAsc(a)
		for i := 1; i < len(idx); i++ {
			if a[idx[i-1]] > a[idx[i]] {
				return false
			}
		}
		// idx must be a permutation
		seen := make([]bool, len(idx))
		for _, j := range idx {
			if j < 0 || j >= len(idx) || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKMean(t *testing.T) {
	v := []float64{1, 5, 3, 2}
	if got := TopKMean(v, 2); got != 4 {
		t.Fatalf("TopKMean(2) = %v", got)
	}
	if got := TopKMean(v, 99); !almostEq(got, Mean(v), 1e-12) {
		t.Fatalf("oversized k = %v", got)
	}
	if TopKMean(v, 0) != 0 {
		t.Fatal("k=0 should be 0")
	}
	// must not mutate input
	if !sort.Float64sAreSorted([]float64{1, 2, 3}) || v[0] != 1 || v[1] != 5 {
		t.Fatal("TopKMean mutated input")
	}
}

func TestTopKMeanBoundsProperty(t *testing.T) {
	f := func(raw [7]float64, k uint8) bool {
		a := sanitize(raw[:])
		kk := int(k%7) + 1
		m := TopKMean(a, kk)
		return m >= Min(a)-1e-9 && m <= Max(a)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestSigmoid(t *testing.T) {
	if !almostEq(Sigmoid(0), 0.5, 1e-12) {
		t.Fatal("sigmoid(0)")
	}
	if Sigmoid(100) <= 0.999 || Sigmoid(-100) >= 0.001 {
		t.Fatal("sigmoid saturation")
	}
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := PearsonCorrelation(x, []float64{2, 4, 6, 8}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := PearsonCorrelation(x, []float64{8, 6, 4, 2}); !almostEq(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if got := PearsonCorrelation(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant side should give 0, got %v", got)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		c := PearsonCorrelation(sanitize(a[:]), sanitize(b[:]))
		return !math.IsNaN(c) && c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
