package numeric

import (
	"math"
	"testing"
)

func TestFrameRowAliasesBacking(t *testing.T) {
	f := NewFrame(3, 4)
	f.Row(1)[2] = 42
	if f.Data[1*4+2] != 42 {
		t.Fatal("Row view write did not reach the backing slice")
	}
	f.Data[2*4+3] = 7
	if f.Row(2)[3] != 7 {
		t.Fatal("backing slice write not visible through Row view")
	}
	if got := len(f.Row(0)); got != 4 {
		t.Fatalf("row length %d, want 4", got)
	}
	// Full-capacity slicing: appending to a row view must never spill
	// into the next row.
	r := f.Row(0)
	r = append(r, 99)
	if f.Row(1)[0] == 99 {
		t.Fatal("append through a row view clobbered the next row")
	}
}

func TestFrameSliceSharesBacking(t *testing.T) {
	f := NewFrame(5, 3)
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	s := f.Slice(1, 4)
	if s.N != 3 || s.D != 3 {
		t.Fatalf("slice shape %dx%d, want 3x3", s.N, s.D)
	}
	if s.Row(0)[0] != f.Row(1)[0] {
		t.Fatal("slice does not view the parent rows")
	}
	s.Row(0)[0] = -1
	if f.Row(1)[0] != -1 {
		t.Fatal("slice write not visible in parent")
	}
}

func TestFrameFromRowsCopies(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	f := FrameFromRows(rows)
	rows[0][0] = 9
	if f.At(0, 0) != 1 {
		t.Fatal("FrameFromRows aliased its input")
	}
	if f.N != 2 || f.D != 2 || f.At(1, 1) != 4 {
		t.Fatalf("unexpected frame contents %+v", f)
	}
}

func TestRows2DAliases(t *testing.T) {
	f := NewFrame(2, 2)
	rows := f.Rows2D()
	rows[1][1] = 5
	if f.At(1, 1) != 5 {
		t.Fatal("Rows2D rows must alias the backing slice")
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	a, b := NewRNG(1234), NewRNG(1234)
	buf := make([]int, 17)
	for iter := 0; iter < 5; iter++ {
		want := a.Perm(17)
		got := b.PermInto(buf)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("iter %d index %d: PermInto %d, Perm %d", iter, i, got[i], want[i])
			}
		}
	}
}

// mulFrameMatchesMulVec is the core bit-identity property: for every row,
// every batched kernel must equal the per-row MulVec reference exactly —
// not approximately.
func mulFrameMatchesMulVec(t *testing.T, rows, cols, n int, seed uint64) {
	t.Helper()
	rng := NewRNG(seed)
	m := RandomMatrix(rng, rows, cols, 1.3)
	x := NewFrame(n, cols)
	for i := range x.Data {
		x.Data[i] = rng.Norm()
	}
	bias := rng.NormVec(rows)

	out := NewFrame(n, rows)
	m.MulFrame(x, out)
	outB := NewFrame(n, rows)
	m.MulFrameBias(x, bias, outB)
	outS := NewFrame(n, rows)
	m.MulFrameBiasSoftmax(x, bias, outS)

	ref := make([]float64, rows)
	refSoft := make([]float64, rows)
	for i := 0; i < n; i++ {
		m.MulVec(x.Row(i), ref)
		for r := 0; r < rows; r++ {
			if out.At(i, r) != ref[r] {
				t.Fatalf("%dx%d n=%d: MulFrame[%d][%d] = %x, MulVec = %x",
					rows, cols, n, i, r, out.At(i, r), ref[r])
			}
			want := ref[r] + bias[r]
			if outB.At(i, r) != want {
				t.Fatalf("MulFrameBias[%d][%d] = %x, want %x", i, r, outB.At(i, r), want)
			}
			refSoft[r] = want
		}
		Softmax(refSoft, refSoft)
		for r := 0; r < rows; r++ {
			if outS.At(i, r) != refSoft[r] {
				t.Fatalf("MulFrameBiasSoftmax[%d][%d] = %x, want %x", i, r, outS.At(i, r), refSoft[r])
			}
		}
	}
}

func TestMulFrameMatchesMulVecRandomShapes(t *testing.T) {
	rng := NewRNG(99)
	for iter := 0; iter < 40; iter++ {
		rows := 1 + rng.Intn(17)
		cols := 1 + rng.Intn(65)
		n := 1 + rng.Intn(200) // crosses the frameBlock tile boundary
		mulFrameMatchesMulVec(t, rows, cols, n, rng.Uint64())
	}
	// Degenerate shapes.
	mulFrameMatchesMulVec(t, 1, 1, 1, 5)
	mulFrameMatchesMulVec(t, 3, 2, frameBlock, 6)
	mulFrameMatchesMulVec(t, 3, 2, frameBlock+1, 7)
}

func FuzzMulFrameMatchesMulVec(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(5), uint8(10))
	f.Add(uint64(2), uint8(16), uint8(48), uint8(70))
	f.Add(uint64(3), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, rows, cols, n uint8) {
		r := int(rows%24) + 1
		c := int(cols%72) + 1
		nn := int(n)%150 + 1
		mulFrameMatchesMulVec(t, r, c, nn, seed)
	})
}

func TestSoftmaxRowsMatchesSoftmax(t *testing.T) {
	rng := NewRNG(4)
	f := NewFrame(9, 6)
	for i := range f.Data {
		f.Data[i] = rng.Norm() * 3
	}
	want := f.Clone()
	for i := 0; i < want.N; i++ {
		row := want.Row(i)
		Softmax(row, row)
	}
	SoftmaxRows(f)
	for i := range f.Data {
		if f.Data[i] != want.Data[i] {
			t.Fatalf("SoftmaxRows element %d = %x, want %x", i, f.Data[i], want.Data[i])
		}
	}
}

func TestMulFramePanicsOnMismatch(t *testing.T) {
	m := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension-mismatch panic")
		}
	}()
	m.MulFrame(NewFrame(4, 2), NewFrame(4, 2))
}

func TestFrameNaNPropagation(t *testing.T) {
	// Kernels must not mask NaNs via clever summation.
	m := NewMatrix(1, 2)
	m.Data[0], m.Data[1] = 1, 1
	x := NewFrame(1, 2)
	x.Data[0] = math.NaN()
	out := NewFrame(1, 1)
	m.MulFrame(x, out)
	if !math.IsNaN(out.At(0, 0)) {
		t.Fatal("NaN input did not propagate")
	}
}
