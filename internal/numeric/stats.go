package numeric

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Max returns the largest element of v; it panics on an empty slice.
func Max(v []float64) float64 { return v[ArgMax(v)] }

// Min returns the smallest element of v; it panics on an empty slice.
func Min(v []float64) float64 { return v[ArgMin(v)] }

// ArgSortDesc returns the indices of v ordered by descending value.
// Ties break by ascending index so the order is deterministic.
func ArgSortDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx
}

// ArgSortAsc returns the indices of v ordered by ascending value.
// Ties break by ascending index so the order is deterministic.
func ArgSortAsc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	return idx
}

// TopKMean returns the mean of the k largest elements of v. If k exceeds
// len(v), the whole slice is averaged; k <= 0 returns 0.
func TopKMean(v []float64, k int) float64 {
	if k <= 0 || len(v) == 0 {
		return 0
	}
	if k > len(v) {
		k = len(v)
	}
	sorted := Clone(v)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	return Mean(sorted[:k])
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Sigmoid returns the logistic function 1/(1+exp(-x)).
func Sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// PearsonCorrelation returns the correlation coefficient of paired samples
// x and y, or 0 when either side has no variance. It panics on length
// mismatch.
func PearsonCorrelation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("numeric: PearsonCorrelation length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
