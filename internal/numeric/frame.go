package numeric

// Frame is a contiguous row-major collection of N fixed-width rows — the
// flat-buffer representation of a batch of examples (or their features,
// logits or probabilities). Unlike a [][]float64, every row lives in one
// backing slice, so batched kernels stream it linearly instead of chasing
// per-row pointers, and a whole frame is a single allocation.
//
// Row returns views that alias Data: writing through a row view mutates
// the frame, and vice versa. Frames handed out by caches are shared
// read-only; callers must not write through their rows.
//
// Determinism rule for kernel writers: every kernel that produces a
// float64 from a reduction MUST accumulate that element in ascending
// index order with a single accumulator, exactly like Matrix.MulVec.
// Blocking, tiling and loop interchange over *independent* output
// elements are fair game; reassociating one element's sum is not. This is
// what keeps frame kernels bit-identical to the historical per-example
// path (see the golden suite in internal/core). Row-block parallelism
// (parallel.go) is the same rule applied across goroutines: each worker
// owns a contiguous block of output rows and runs the serial kernel on
// it, so worker count changes wall clock, never bits.
type Frame struct {
	N, D int
	Data []float64 // len == N*D, row-major
}

// NewFrame returns a zeroed N x D frame backed by one allocation.
func NewFrame(n, d int) *Frame {
	if n < 0 || d < 0 {
		panic("numeric: NewFrame with negative dimension")
	}
	return &Frame{N: n, D: d, Data: make([]float64, n*d)}
}

// FrameFromRows copies a slice-of-slices into a fresh contiguous frame.
// All rows must share the same length.
func FrameFromRows(rows [][]float64) *Frame {
	if len(rows) == 0 {
		return &Frame{}
	}
	f := NewFrame(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != f.D {
			panic("numeric: FrameFromRows with ragged rows")
		}
		copy(f.Row(i), r)
	}
	return f
}

// Row returns a mutable view of row i, aliasing the backing slice.
func (f *Frame) Row(i int) []float64 {
	return f.Data[i*f.D : (i+1)*f.D : (i+1)*f.D]
}

// At returns the element at (i, j).
func (f *Frame) At(i, j int) float64 { return f.Data[i*f.D+j] }

// Slice returns a view of rows [lo, hi) sharing the backing slice.
func (f *Frame) Slice(lo, hi int) *Frame {
	if lo < 0 || hi < lo || hi > f.N {
		panic("numeric: Frame.Slice out of range")
	}
	return &Frame{N: hi - lo, D: f.D, Data: f.Data[lo*f.D : hi*f.D : hi*f.D]}
}

// Rows2D returns all rows as views over the backing slice — an adapter
// for APIs that still consume [][]float64 (e.g. package cluster). The
// views alias Data; no element is copied.
func (f *Frame) Rows2D() [][]float64 {
	out := make([][]float64, f.N)
	for i := range out {
		out[i] = f.Row(i)
	}
	return out
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := &Frame{N: f.N, D: f.D, Data: make([]float64, len(f.Data))}
	copy(c.Data, f.Data)
	return c
}

// frameBlock is the row-tile size of the batched kernels: one tile of x
// rows (up to frameBlock * D floats) is reused against every matrix row
// before the kernel moves on, keeping the tile L1/L2-resident.
const frameBlock = 64

// MulFrame computes out.Row(i) = M * x.Row(i) for every row of x — the
// batched form of MulVec (out = x * Mᵀ). x must be N x Cols and out
// N x Rows. Each output element accumulates in ascending j order with a
// single accumulator, so every element is bit-identical to a per-row
// MulVec; the kernel only tiles and register-blocks over *independent*
// output elements. Large frames are row-block parallelized when spare
// workers exist (see parallel.go); the result is the same either way.
func (m *Matrix) MulFrame(x, out *Frame) {
	if x.D != m.Cols || out.D != m.Rows || x.N != out.N {
		panic("numeric: MulFrame dimension mismatch")
	}
	mulFrameAuto(m, x, nil, out)
}

// MulFrameBias is MulFrame with a fused bias add:
// out.Row(i)[r] = (M.Row(r) · x.Row(i)) + bias[r]. The dot product is
// rounded to float64 before the bias is added, exactly as the historical
// two-step (store, then +=) computed it.
func (m *Matrix) MulFrameBias(x *Frame, bias []float64, out *Frame) {
	if x.D != m.Cols || out.D != m.Rows || x.N != out.N || len(bias) != m.Rows {
		panic("numeric: MulFrameBias dimension mismatch")
	}
	mulFrameAuto(m, x, bias, out)
}

// MulFrameBiasSoftmax fuses the full prediction head: logits = M*x.Row(i)
// + bias per row, normalized in place by a row softmax.
func (m *Matrix) MulFrameBiasSoftmax(x *Frame, bias []float64, out *Frame) {
	m.MulFrameBias(x, bias, out)
	SoftmaxRows(out)
}

// mulFrame is the shared batched kernel: an L1-sized tile over x rows and,
// inside it, a 2x2 register block — two matrix rows against two x rows,
// four independent accumulators in flight — which hides FMA latency that
// a single serial accumulator chain cannot. Every accumulator still sums
// its own element in ascending j order, which is the determinism rule
// that keeps this bit-identical to per-row MulVec. bias may be nil.
func mulFrame(m *Matrix, x *Frame, bias []float64, out *Frame) {
	d := m.Cols
	for i0 := 0; i0 < x.N; i0 += frameBlock {
		i1 := i0 + frameBlock
		if i1 > x.N {
			i1 = x.N
		}
		r := 0
		for ; r+2 <= m.Rows; r += 2 {
			w0 := m.Data[r*d : (r+1)*d]
			w1 := m.Data[(r+1)*d : (r+2)*d]
			w1 = w1[:len(w0)]
			var b0, b1 float64
			if bias != nil {
				b0, b1 = bias[r], bias[r+1]
			}
			i := i0
			for ; i+2 <= i1; i += 2 {
				xa := x.Data[i*d : i*d+d]
				xb := x.Data[(i+1)*d : (i+1)*d+d]
				xa, xb = xa[:len(w0)], xb[:len(w0)]
				var s00, s01, s10, s11 float64
				for j, wa := range w0 {
					wb := w1[j]
					va, vb := xa[j], xb[j]
					s00 += wa * va
					s01 += wa * vb
					s10 += wb * va
					s11 += wb * vb
				}
				if bias != nil {
					s00, s01, s10, s11 = s00+b0, s01+b0, s10+b1, s11+b1
				}
				out.Data[i*out.D+r] = s00
				out.Data[(i+1)*out.D+r] = s01
				out.Data[i*out.D+r+1] = s10
				out.Data[(i+1)*out.D+r+1] = s11
			}
			for ; i < i1; i++ {
				xa := x.Data[i*d : i*d+d]
				xa = xa[:len(w0)]
				var s0, s1 float64
				for j, wa := range w0 {
					va := xa[j]
					s0 += wa * va
					s1 += w1[j] * va
				}
				if bias != nil {
					s0, s1 = s0+b0, s1+b1
				}
				out.Data[i*out.D+r] = s0
				out.Data[i*out.D+r+1] = s1
			}
		}
		if r < m.Rows {
			w0 := m.Data[r*d : (r+1)*d]
			var b0 float64
			if bias != nil {
				b0 = bias[r]
			}
			i := i0
			for ; i+2 <= i1; i += 2 {
				xa := x.Data[i*d : i*d+d]
				xb := x.Data[(i+1)*d : (i+1)*d+d]
				xa, xb = xa[:len(w0)], xb[:len(w0)]
				var s0, s1 float64
				for j, wa := range w0 {
					s0 += wa * xa[j]
					s1 += wa * xb[j]
				}
				if bias != nil {
					s0, s1 = s0+b0, s1+b0
				}
				out.Data[i*out.D+r] = s0
				out.Data[(i+1)*out.D+r] = s1
			}
			for ; i < i1; i++ {
				xa := x.Data[i*d : i*d+d]
				xa = xa[:len(w0)]
				var s float64
				for j, wa := range w0 {
					s += wa * xa[j]
				}
				if bias != nil {
					s += b0
				}
				out.Data[i*out.D+r] = s
			}
		}
	}
}

// SoftmaxRows applies Softmax to every row of f in place.
func SoftmaxRows(f *Frame) {
	for i := 0; i < f.N; i++ {
		row := f.Row(i)
		Softmax(row, row)
	}
}
