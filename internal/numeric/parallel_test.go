package numeric

import (
	"math"
	"testing"
)

// forceKernelBudget temporarily overrides the process-wide worker cap so
// tests exercise the parallel path even on single-core CI boxes (and the
// serial fallback even on wide ones).
func forceKernelBudget(t *testing.T, n int64) {
	t.Helper()
	old := maxKernelWorkers
	maxKernelWorkers = n
	t.Cleanup(func() { maxKernelWorkers = old })
}

func randomFrame(rng *RNG, n, d int) *Frame {
	f := NewFrame(n, d)
	for i := range f.Data {
		f.Data[i] = rng.Norm()
	}
	return f
}

func frameBitsEqual(t *testing.T, want, got *Frame, context string) {
	t.Helper()
	if want.N != got.N || want.D != got.D {
		t.Fatalf("%s: shape %dx%d, want %dx%d", context, got.N, got.D, want.N, want.D)
	}
	for i, w := range want.Data {
		if math.Float64bits(w) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				context, i, got.Data[i], math.Float64bits(got.Data[i]), w, math.Float64bits(w))
		}
	}
}

// TestMulFrameParallelMatchesSerial drives the row-block kernel directly
// with a range of worker counts — including degenerate ones larger than
// the row count — and demands per-bit equality with the serial kernel.
func TestMulFrameParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(11)
	shapes := []struct{ n, rows, cols int }{
		{1, 1, 1},
		{3, 5, 7},
		{64, 8, 16},
		{65, 3, 48},
		{128, 12, 31},
		{200, 7, 24},
	}
	for _, s := range shapes {
		m := RandomMatrix(rng, s.rows, s.cols, 1.0)
		x := randomFrame(rng, s.n, s.cols)
		bias := NewRNG(99).NormVec(s.rows)
		want := NewFrame(s.n, s.rows)
		mulFrame(m, x, bias, want)
		for _, workers := range []int{1, 2, 3, 4, 7, s.n, s.n + 5} {
			got := NewFrame(s.n, s.rows)
			mulFrameParallel(m, x, bias, got, workers)
			frameBitsEqual(t, want, got, "with bias")
			got2 := NewFrame(s.n, s.rows)
			mulFrameParallel(m, x, nil, got2, workers)
			wantNB := NewFrame(s.n, s.rows)
			mulFrame(m, x, nil, wantNB)
			frameBitsEqual(t, wantNB, got2, "no bias")
		}
	}
}

// TestMulFrameAutoParallelPath forces a budget wide enough that the auto
// dispatcher takes the parallel branch on a big frame, and checks the
// public API output is bit-identical to the serial kernel.
func TestMulFrameAutoParallelPath(t *testing.T) {
	forceKernelBudget(t, 8)
	rng := NewRNG(42)
	const n, rows, cols = 256, 40, 64 // 256*40*64 = 655360 > parallelMinFlops
	if n*rows*cols < parallelMinFlops {
		t.Fatalf("test shape below parallel threshold")
	}
	if w := frameKernelWorkers(n, rows, cols); w <= 1 {
		t.Fatalf("frameKernelWorkers(%d,%d,%d) = %d, want > 1", n, rows, cols, w)
	}
	m := RandomMatrix(rng, rows, cols, 1.0)
	x := randomFrame(rng, n, cols)
	bias := NewRNG(7).NormVec(rows)

	want := NewFrame(n, rows)
	mulFrame(m, x, bias, want)
	got := NewFrame(n, rows)
	m.MulFrameBias(x, bias, got)
	frameBitsEqual(t, want, got, "auto parallel MulFrameBias")

	wantNB := NewFrame(n, rows)
	mulFrame(m, x, nil, wantNB)
	gotNB := NewFrame(n, rows)
	m.MulFrame(x, gotNB)
	frameBitsEqual(t, wantNB, gotNB, "auto parallel MulFrame")
}

// TestFrameKernelWorkersThreshold pins the dispatch policy: small frames
// must never attempt parallel dispatch (the steady-state training shapes
// stay on the zero-overhead serial path).
func TestFrameKernelWorkersThreshold(t *testing.T) {
	forceKernelBudget(t, 16)
	small := []struct{ n, rows, cols int }{
		{60, 5, 48},   // benchkit candidate-run shape
		{40, 5, 48},   // val-split eval shape
		{1, 512, 512}, // one row can't be split no matter how wide
		{63, 64, 64},  // below 2*minParallelRows
	}
	for _, s := range small {
		if s.n >= 2*minParallelRows && s.n*s.rows*s.cols >= parallelMinFlops {
			continue // not actually small; skip misconfigured cases
		}
		if w := frameKernelWorkers(s.n, s.rows, s.cols); w != 1 {
			t.Errorf("frameKernelWorkers(%d,%d,%d) = %d, want 1", s.n, s.rows, s.cols, w)
		}
	}
	if w := frameKernelWorkers(1024, 64, 64); w < 2 {
		t.Errorf("frameKernelWorkers(1024,64,64) = %d, want >= 2", w)
	}
}

// TestKernelHelperBudget pins the reservation accounting: the budget
// never hands out more helpers than maxKernelWorkers-1, nested requests
// degrade to serial instead of oversubscribing, and releases restore the
// full budget.
func TestKernelHelperBudget(t *testing.T) {
	forceKernelBudget(t, 4)
	if kernelHelpers.Load() != 0 {
		t.Fatalf("helper counter dirty at test start: %d", kernelHelpers.Load())
	}
	got := reserveKernelHelpers(10)
	if got != 3 {
		t.Fatalf("reserveKernelHelpers(10) with budget 4 = %d, want 3", got)
	}
	if again := reserveKernelHelpers(1); again != 0 {
		t.Fatalf("nested reserve with exhausted budget = %d, want 0", again)
	}
	releaseKernelHelpers(got)
	if kernelHelpers.Load() != 0 {
		t.Fatalf("helper counter not restored: %d", kernelHelpers.Load())
	}
	if reserveKernelHelpers(0) != 0 || reserveKernelHelpers(-1) != 0 {
		t.Fatal("non-positive want must reserve nothing")
	}
	forceKernelBudget(t, 1)
	if got := reserveKernelHelpers(4); got != 0 {
		t.Fatalf("single-worker budget handed out %d helpers, want 0", got)
	}
}

// FuzzMulFrameParallelMatchesSerial fuzzes random shapes, contents and
// worker counts, requiring per-bit Float64bits equality between the
// serial kernel and the row-block parallel kernel.
func FuzzMulFrameParallelMatchesSerial(f *testing.F) {
	f.Add(uint64(1), 8, 4, 8, 2, true)
	f.Add(uint64(2), 1, 1, 1, 9, false)
	f.Add(uint64(3), 129, 7, 33, 5, true)
	f.Add(uint64(4), 200, 12, 48, 64, false)
	f.Fuzz(func(t *testing.T, seed uint64, n, rows, cols, workers int, withBias bool) {
		n = 1 + abs(n)%257
		rows = 1 + abs(rows)%33
		cols = 1 + abs(cols)%65
		workers = 1 + abs(workers)%(n+4)
		rng := NewRNG(seed)
		m := RandomMatrix(rng, rows, cols, 1.0)
		x := randomFrame(rng, n, cols)
		var bias []float64
		if withBias {
			bias = rng.NormVec(rows)
		}
		want := NewFrame(n, rows)
		mulFrame(m, x, bias, want)
		got := NewFrame(n, rows)
		mulFrameParallel(m, x, bias, got, workers)
		for i, w := range want.Data {
			if math.Float64bits(w) != math.Float64bits(got.Data[i]) {
				t.Fatalf("seed=%d shape=%dx%dx%d workers=%d: element %d = %x, want %x",
					seed, n, rows, cols, workers, i,
					math.Float64bits(got.Data[i]), math.Float64bits(w))
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == math.MinInt {
			return math.MaxInt
		}
		return -v
	}
	return v
}

// TestNamedRNGMatchesNewNamedRNG pins the value-returning constructor to
// the heap-allocating one: identical streams for identical inputs.
func TestNamedRNGMatchesNewNamedRNG(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"model-3"},
		{"model-3", "bench-1", "offline-matrix"},
		{"ab", "c"},
		{"a", "bc"},
	}
	for _, parts := range cases {
		a := NewNamedRNG(1234, parts...)
		b := NamedRNG(1234, parts...)
		for i := 0; i < 16; i++ {
			if av, bv := a.Uint64(), b.Uint64(); av != bv {
				t.Fatalf("parts %q draw %d: NamedRNG %x, NewNamedRNG %x", parts, i, bv, av)
			}
		}
	}
	if x, y := NamedRNG(5, "ab", "c"), NamedRNG(5, "a", "bc"); x.Uint64() == y.Uint64() {
		t.Fatal("separator failed: (ab,c) and (a,bc) collide")
	}
}
