package numeric

// Matrix is a dense row-major float64 matrix. The zero value is an empty
// matrix; use NewMatrix for a sized one.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("numeric: NewMatrix with negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec computes out = M * x. out must have length Rows and x length
// Cols. Row pairs run with two independent accumulators to hide FMA
// latency; each output element still accumulates its own dot product in
// ascending j order (the bit-identity rule — see Frame).
func (m *Matrix) MulVec(x, out []float64) {
	if len(x) != m.Cols || len(out) != m.Rows {
		panic("numeric: MulVec dimension mismatch")
	}
	d := m.Cols
	i := 0
	for ; i+2 <= m.Rows; i += 2 {
		r0 := m.Data[i*d : (i+1)*d]
		r1 := m.Data[(i+1)*d : (i+2)*d]
		r1 = r1[:len(r0)]
		xx := x[:len(r0)]
		var s0, s1 float64
		for j, w0 := range r0 {
			v := xx[j]
			s0 += w0 * v
			s1 += r1[j] * v
		}
		out[i], out[i+1] = s0, s1
	}
	if i < m.Rows {
		row := m.Data[i*d : (i+1)*d]
		xx := x[:len(row)]
		var s float64
		for j, w := range row {
			s += w * xx[j]
		}
		out[i] = s
	}
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// RandomMatrix fills a rows x cols matrix with N(0, sigma^2) entries drawn
// from r.
func RandomMatrix(r *RNG, rows, cols int, sigma float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Norm() * sigma
	}
	return m
}

// GramSchmidt orthonormalizes the rows of m in place (modified
// Gram-Schmidt). Rows that become numerically zero are re-randomized from
// r and the pass restarted for that row, which keeps the result full rank
// for rows <= cols.
func GramSchmidt(m *Matrix, r *RNG) {
	const eps = 1e-12
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for attempt := 0; ; attempt++ {
			for j := 0; j < i; j++ {
				prev := m.Row(j)
				proj := Dot(row, prev)
				AddScaled(row, -proj, prev)
			}
			if Norm2(row) > eps {
				break
			}
			if attempt > 4 {
				panic("numeric: GramSchmidt failed to find independent row")
			}
			for k := range row {
				row[k] = r.Norm()
			}
		}
		Normalize(row)
	}
}
