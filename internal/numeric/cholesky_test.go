package numeric

import (
	"math"
	"testing"
)

// spdFixture builds a deterministic SPD matrix A = GᵀG + I.
func spdFixture(n int) *Matrix {
	rng := NewRNG(13)
	g := RandomMatrix(rng, n, n, 1.0)
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += g.At(k, i) * g.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Set(i, i, a.At(i, i)+1)
	}
	return a
}

func TestCholeskyFactorReconstructs(t *testing.T) {
	a := spdFixture(12)
	l := a.Clone()
	if err := CholeskyFactor(l); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if j > i && l.At(i, j) != 0 {
				t.Fatalf("upper triangle (%d,%d) = %v, want 0", i, j, l.At(i, j))
			}
			var s float64
			for k := 0; k <= i && k <= j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if diff := math.Abs(s - a.At(i, j)); diff > 1e-9 {
				t.Fatalf("L·Lᵀ diverges from A at (%d,%d) by %g", i, j, diff)
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	a := spdFixture(9)
	rng := NewRNG(29)
	want := rng.NormVec(a.Rows)
	b := make([]float64, a.Rows)
	a.MulVec(want, b)

	l := a.Clone()
	if err := CholeskyFactor(l); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, a.Rows)
	CholeskySolve(l, b, got)
	for i := range want {
		if diff := math.Abs(got[i] - want[i]); diff > 1e-8 {
			t.Fatalf("solution diverges at %d by %g", i, diff)
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	if err := CholeskyFactor(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square matrix factored without error")
	}
	neg := NewMatrix(2, 2)
	neg.Set(0, 0, -1)
	neg.Set(1, 1, 1)
	if err := CholeskyFactor(neg); err == nil {
		t.Fatal("negative-definite matrix factored without error")
	}
	zero := NewMatrix(3, 3) // all-zero: first pivot is 0
	if err := CholeskyFactor(zero); err == nil {
		t.Fatal("singular matrix factored without error")
	}
}

// TestCholeskyBitReproducible pins the determinism contract: repeated
// factor+solve over identical inputs produces identical bits.
func TestCholeskyBitReproducible(t *testing.T) {
	a := spdFixture(16)
	rng := NewRNG(31)
	b := rng.NormVec(a.Rows)
	run := func() []float64 {
		l := a.Clone()
		if err := CholeskyFactor(l); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, a.Rows)
		CholeskySolve(l, b, out)
		return out
	}
	first := run()
	for rep := 0; rep < 3; rep++ {
		again := run()
		for i := range first {
			if math.Float64bits(first[i]) != math.Float64bits(again[i]) {
				t.Fatalf("solution bit-diverged at %d on repeat %d", i, rep)
			}
		}
	}
}
