package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDotSymmetricProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := sanitize(a[:]), sanitize(b[:])
		return almostEq(Dot(x, y), Dot(y, x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2AndNormalize(t *testing.T) {
	v := []float64{3, 4}
	if Norm2(v) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(v))
	}
	Normalize(v)
	if !almostEq(Norm2(v), 1, 1e-12) {
		t.Fatalf("normalized norm %v", Norm2(v))
	}
	zero := []float64{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("Normalize mutated zero vector")
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(a [6]float64) bool {
		v := sanitize(a[:])
		Normalize(v)
		n := Norm2(v)
		return n == 0 || almostEq(n, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddScaledAndScale(t *testing.T) {
	dst := []float64{1, 1}
	AddScaled(dst, 2, []float64{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("AddScaled = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 3.5 || dst[1] != 4.5 {
		t.Fatalf("Scale = %v", dst)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("parallel = %v", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 0, 1e-12) {
		t.Fatalf("orthogonal = %v", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 0}); got != 0 {
		t.Fatalf("zero vector = %v", got)
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	f := func(a, b [5]float64) bool {
		c := CosineSimilarity(sanitize(a[:]), sanitize(b[:]))
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEuclideanDistance(t *testing.T) {
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("distance = %v", got)
	}
}

func TestEuclideanTriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		x, y, z := sanitize(a[:]), sanitize(b[:]), sanitize(c[:])
		ab := EuclideanDistance(x, y)
		bc := EuclideanDistance(y, z)
		ac := EuclideanDistance(x, z)
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := []float64{1, 2}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases source")
	}
}

func TestArgMaxArgMin(t *testing.T) {
	v := []float64{1, 5, 5, 0}
	if ArgMax(v) != 1 {
		t.Fatalf("ArgMax = %d (want first of ties)", ArgMax(v))
	}
	if ArgMin(v) != 3 {
		t.Fatalf("ArgMin = %d", ArgMin(v))
	}
}

func TestArgMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ArgMax(nil)
}

func TestSoftmaxSumsToOne(t *testing.T) {
	logits := []float64{1, 2, 3, 1000} // extreme value exercises stability
	out := make([]float64, 4)
	Softmax(logits, out)
	var sum float64
	for _, p := range out {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("invalid probability %v", p)
		}
		sum += p
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("softmax sum = %v", sum)
	}
	if ArgMax(out) != 3 {
		t.Fatal("softmax changed argmax")
	}
}

func TestSoftmaxProperty(t *testing.T) {
	f := func(a [6]float64) bool {
		in := sanitize(a[:])
		out := make([]float64, 6)
		Softmax(in, out)
		var sum float64
		for _, p := range out {
			if p < 0 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return almostEq(sum, 1, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxInPlace(t *testing.T) {
	v := []float64{0, 0}
	Softmax(v, v)
	if !almostEq(v[0], 0.5, 1e-12) || !almostEq(v[1], 0.5, 1e-12) {
		t.Fatalf("in-place softmax = %v", v)
	}
}

func TestLogSumExp(t *testing.T) {
	v := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(v); !almostEq(got, math.Log(6), 1e-9) {
		t.Fatalf("LogSumExp = %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("empty LogSumExp should be -inf")
	}
	// stability under large shifts
	big := []float64{1000, 1001}
	if got := LogSumExp(big); math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("unstable LogSumExp = %v", got)
	}
}

// sanitize maps arbitrary generated floats into a well-behaved range so
// property tests exercise logic, not IEEE overflow.
func sanitize(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		switch {
		case math.IsNaN(x) || math.IsInf(x, 0):
			out[i] = 0
		default:
			out[i] = math.Mod(x, 10)
		}
	}
	return out
}
