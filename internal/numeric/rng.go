// Package numeric provides the small dense linear-algebra kernel, the
// deterministic random-number generator, and the descriptive statistics
// used throughout the two-phase model-selection framework.
//
// Everything in this package is allocation-conscious and dependency-free;
// all randomness flows through RNG, a SplitMix64 generator that can be
// seeded from strings so that every entity in the synthetic world (models,
// datasets, training runs) owns an independent, reproducible stream.
package numeric

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator.
//
// SplitMix64 passes BigCrush, is trivially seedable, and — unlike the
// stdlib math/rand global source — gives the framework bit-for-bit
// reproducible experiments across platforms. The zero value is a valid
// generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// NewNamedRNG derives an independent stream from a base seed and a list of
// name parts. Identical (seed, parts) pairs always produce identical
// streams; distinct parts produce statistically independent streams.
func NewNamedRNG(seed uint64, parts ...string) *RNG {
	r := NamedRNG(seed, parts...)
	return &r
}

// NamedRNG is NewNamedRNG returning the generator by value, for callers
// that embed the RNG in a larger struct and cannot afford the heap
// allocation per run. The streams are identical to NewNamedRNG's.
func NamedRNG(seed uint64, parts ...string) RNG {
	// Inlined FNV-1a (same constants and byte order as hash/fnv.New64a),
	// kept hand-rolled so deriving a stream never heap-allocates a hasher
	// or byte-slice conversions on the hot candidate-run path.
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	h := uint64(fnvOffset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime64
		}
		h ^= 0x1f // separator so ("ab","c") != ("a","bc")
		h *= fnvPrime64
	}
	return RNG{state: seed ^ h}
}

// Uint64 returns the next raw 64-bit value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("numeric: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal deviate using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	// Rejection-free polar-less Box-Muller; u1 in (0,1] avoids log(0).
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormVec fills a fresh vector of length n with standard normal deviates.
func (r *RNG) NormVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm()
	}
	return v
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	return r.PermInto(make([]int, n))
}

// PermInto fills p with a uniformly random permutation of [0, len(p)),
// drawing exactly the same stream values as Perm of the same length — it
// exists so hot loops can reuse one buffer across epochs without
// perturbing reproducibility.
func (r *RNG) PermInto(p []int) []int {
	n := len(p)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
