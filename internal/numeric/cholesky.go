package numeric

import (
	"fmt"
	"math"
)

// CholeskyFactor factors a symmetric positive-definite matrix in place
// into its lower-triangular Cholesky factor L (a = L·Lᵀ), zeroing the
// strict upper triangle. It follows the determinism rule of this package:
// every output element is produced from a single accumulator summing in
// ascending index order, so the factor is bit-identical on every serving
// path and at every worker count. A non-square or non-positive-definite
// input (a pivot that is zero, negative, or not finite) returns an error
// with the matrix untouched beyond the rows already factored.
func CholeskyFactor(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("numeric: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		ri := a.Row(i)
		for j := 0; j <= i; j++ {
			rj := a.Row(j)
			// One accumulator, ascending k: the dot product of the two
			// already-factored row prefixes, subtracted once at the end.
			var s float64
			for k := 0; k < j; k++ {
				s += ri[k] * rj[k]
			}
			v := ri[j] - s
			if i == j {
				if !(v > 0) || math.IsInf(v, 0) {
					return fmt.Errorf("numeric: Cholesky pivot %d is %v; matrix not positive definite", i, v)
				}
				ri[j] = math.Sqrt(v)
			} else {
				ri[j] = v / rj[j]
			}
		}
		for j := i + 1; j < n; j++ {
			ri[j] = 0
		}
	}
	return nil
}

// CholeskySolve solves L·Lᵀ·x = b given the factor produced by
// CholeskyFactor, writing the solution into out (which may alias b).
// Forward and back substitution both accumulate each element's sum in
// ascending index order with a single accumulator, keeping the solution
// bit-reproducible.
func CholeskySolve(l *Matrix, b, out []float64) {
	n := l.Rows
	if len(b) != n || len(out) != n {
		panic("numeric: CholeskySolve dimension mismatch")
	}
	// Forward substitution: L·y = b, y stored in out.
	for i := 0; i < n; i++ {
		row := l.Row(i)
		var s float64
		for k := 0; k < i; k++ {
			s += row[k] * out[k]
		}
		out[i] = (b[i] - s) / row[i]
	}
	// Back substitution: Lᵀ·x = y, in place. The column walk below reads
	// L[k][i] for k > i in ascending k — still ascending index order for
	// this element's single accumulator.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for k := i + 1; k < n; k++ {
			s += l.At(k, i) * out[k]
		}
		out[i] = (out[i] - s) / l.At(i, i)
	}
}
