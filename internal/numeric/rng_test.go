package numeric

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values", same)
	}
}

func TestNamedRNGSeparatesStreams(t *testing.T) {
	a := NewNamedRNG(42, "model", "bert")
	b := NewNamedRNG(42, "model", "roberta")
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams for distinct names collided")
	}
	// ("ab","c") must differ from ("a","bc")
	x := NewNamedRNG(42, "ab", "c")
	y := NewNamedRNG(42, "a", "bc")
	if x.Uint64() == y.Uint64() {
		t.Fatal("part-boundary ambiguity: (ab,c) == (a,bc)")
	}
}

func TestNamedRNGReproducible(t *testing.T) {
	a := NewNamedRNG(42, "dataset", "mnli")
	b := NewNamedRNG(42, "dataset", "mnli")
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("named streams not reproducible")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 returned %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v deviates from 0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestNormVecLength(t *testing.T) {
	r := NewRNG(1)
	if v := r.NormVec(17); len(v) != 17 {
		t.Fatalf("NormVec length %d", len(v))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := NewRNG(21)
	counts := make([]int, 5)
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[r.Perm(5)[0]]++
	}
	for i, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.2) > 0.02 {
			t.Fatalf("position %d frequency %v far from 0.2", i, frac)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(2)
	data := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), data...)
	r.Shuffle(len(data), func(i, j int) { data[i], data[j] = data[j], data[i] })
	// multiset preserved
	counts := map[int]int{}
	for _, v := range data {
		counts[v]++
	}
	for _, v := range orig {
		counts[v]--
	}
	for _, c := range counts {
		if c != 0 {
			t.Fatalf("shuffle changed multiset: %v", data)
		}
	}
}
