// Package lsq implements the closed-form least-squares proxy stage: a
// ridge-regression head fit on each candidate model's cached feature
// frame. One GEMM assembles the normal equations, one small Cholesky
// factorization solves them — zero training epochs per candidate, which
// is the whole point: the ROADMAP's "closed-form least-squares proxy
// stage" answers latency-critical requests without spending an epoch and
// prunes the candidate set before SH/two-phase spend any.
//
// Every reduction follows numeric's determinism rule (single accumulator,
// ascending index order): the normal equations are assembled with the
// existing MulFrame kernels and solved by numeric.CholeskyFactor/Solve,
// so scores are bit-reproducible across worker counts and serving paths.
package lsq

import (
	"context"
	"fmt"
	"sync"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/trainer"
)

// DefaultLambda is the ridge strength when Options leaves it unset. It is
// scaled by the training-split size at fit time, so the effective
// regularizer tracks the Gram matrix's magnitude across split sizes.
const DefaultLambda = 1e-2

// Options tunes a ranking pass.
type Options struct {
	// Lambda is the ridge strength (0 means DefaultLambda). The bias
	// column is regularized like every other column — simpler, and the
	// head is a proxy score, not a served predictor.
	Lambda float64
	// Workers bounds how many candidates fit concurrently: 0 or 1 is
	// sequential, negative means one per CPU (selection.Config semantics).
	// Results are bit-identical across settings — each model's fit is
	// independent and writes a preassigned slot.
	Workers int
}

// Result is a ranking of a candidate pool by closed-form head quality, in
// pool order.
type Result struct {
	// Names are the candidate model names, in input pool order.
	Names []string
	// Val and Test are each candidate head's validation and held-out test
	// accuracy, aligned with Names. Selection reads Val; Test is reported
	// for the finished choice only, like every other strategy.
	Val  []float64
	Test []float64
}

// Best returns the index of the highest validation accuracy; ties keep
// the earlier pool position, mirroring the training strategies.
func (r *Result) Best() int {
	best, bestVal := 0, -1.0
	for i, v := range r.Val {
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// TopK returns the names of the k best candidates by validation accuracy
// (ties keep the earlier pool position), reordered to input pool order so
// downstream stage plans see the same deterministic pool they would have
// seen unfiltered. k >= len returns every name.
func (r *Result) TopK(k int) []string {
	if k >= len(r.Names) {
		return append([]string(nil), r.Names...)
	}
	order := numeric.ArgSortDesc(r.Val)
	keep := make(map[int]bool, k)
	for _, i := range order[:k] {
		keep[i] = true
	}
	out := make([]string, 0, k)
	for i, n := range r.Names {
		if keep[i] {
			out = append(out, n)
		}
	}
	return out
}

// Rank fits the ridge head for every candidate and charges the ledger one
// proxy-inference unit (0.5 epoch) per scored model — the same rate the
// coarse-recall proxies pay, and the only cost this stage ever incurs:
// no training epochs are charged, ever. A canceled context aborts between
// candidates with ctx.Err().
func Rank(ctx context.Context, models []*modelhub.Model, d *datahub.Dataset, opts Options, ledger *trainer.Ledger) (*Result, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("lsq: empty model pool")
	}
	res := &Result{
		Names: make([]string, len(models)),
		Val:   make([]float64, len(models)),
		Test:  make([]float64, len(models)),
	}
	for i, m := range models {
		res.Names[i] = m.Name
	}
	workers := opts.Workers
	if workers < 0 {
		workers = len(models)
	}
	if workers > len(models) {
		workers = len(models)
	}
	var firstErr error
	if workers <= 1 {
		for i, m := range models {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			val, test, err := Fit(m, d, opts.Lambda)
			if err != nil {
				return nil, err
			}
			res.Val[i], res.Test[i] = val, test
		}
	} else {
		idx := make(chan int)
		errs := make([]error, len(models))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					val, test, err := Fit(models[i], d, opts.Lambda)
					if err != nil {
						errs[i] = err
						continue
					}
					res.Val[i], res.Test[i] = val, test
				}
			}()
		}
	feed:
		for i := range models {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	// Charged once, after the barrier, like trainStage: ledger contents
	// never depend on goroutine scheduling.
	if ledger != nil {
		ledger.ChargeInference(len(models))
	}
	return res, nil
}

// Fit solves the ridge head for one candidate on the target's training
// split and reports the head's validation and test accuracy. The feature
// frames come out of the model's shared extraction cache (the same frames
// every trainer.Run and proxy scorer of this (model, dataset) reuses), so
// a fit after any other strategy touches the target extracts nothing.
func Fit(m *modelhub.Model, d *datahub.Dataset, lambda float64) (val, test float64, err error) {
	if m.Task != d.Task {
		return 0, 0, fmt.Errorf("lsq: model %q task %q does not match dataset %q task %q", m.Name, m.Task, d.Name, d.Task)
	}
	n := d.Train.Len()
	if n == 0 {
		return 0, 0, fmt.Errorf("lsq: dataset %q has empty training split", d.Name)
	}
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	feats := m.FeatureFrame(d.Train.X)
	dim := feats.D + 1 // +1 bias column

	// Assemble the normal equations with the existing MulFrame kernel.
	// MulFrame computes out[i][r] = M.Row(r) · x.Row(i); feeding it the
	// transposed augmented design T (dim × n) as both the matrix and the
	// frame yields out[i][r] = Σ_j T[r][j]·T[i][j] = (XᵀX)[r][i] — the
	// Gram matrix, every element a single ascending-order accumulation.
	tdata := make([]float64, dim*n)
	for j := 0; j < n; j++ {
		row := feats.Row(j)
		for i, v := range row {
			tdata[i*n+j] = v
		}
		tdata[feats.D*n+j] = 1
	}
	tm := &numeric.Matrix{Rows: dim, Cols: n, Data: tdata}
	tf := &numeric.Frame{N: dim, D: n, Data: tdata}
	gram := numeric.NewFrame(dim, dim)
	tm.MulFrame(tf, gram)

	// Right-hand side XᵀY for one-hot targets, via the same kernel: the
	// label matrix Yᵀ (classes × n) against the transposed design.
	classes := d.Classes
	yt := numeric.NewMatrix(classes, n)
	for j, y := range d.Train.Y {
		yt.Set(y, j, 1)
	}
	rhs := numeric.NewFrame(dim, classes)
	yt.MulFrame(tf, rhs)

	// Ridge shift and factorization. λ·n keeps the conditioning of the
	// shifted Gram stable across split sizes; with λ > 0 the matrix is
	// positive definite, so the factorization cannot fail on real input.
	a := &numeric.Matrix{Rows: dim, Cols: dim, Data: gram.Data}
	shift := lambda * float64(n)
	for i := 0; i < dim; i++ {
		a.Set(i, i, a.At(i, i)+shift)
	}
	if err := numeric.CholeskyFactor(a); err != nil {
		return 0, 0, fmt.Errorf("lsq: %s on %s: %w", m.Name, d.Name, err)
	}

	// One solve per class; the head is stored classes × feats.D plus a
	// bias vector so evaluation rides the fused MulFrameBias kernel.
	head := numeric.NewMatrix(classes, feats.D)
	bias := make([]float64, classes)
	b := make([]float64, dim)
	w := make([]float64, dim)
	for c := 0; c < classes; c++ {
		for i := 0; i < dim; i++ {
			b[i] = rhs.At(i, c)
		}
		numeric.CholeskySolve(a, b, w)
		copy(head.Row(c), w[:feats.D])
		bias[c] = w[feats.D]
	}

	return accuracy(m, head, bias, d.Val), accuracy(m, head, bias, d.Test), nil
}

// accuracy scores the closed-form head on one split: fraction of rows
// whose argmax matches the label. Ties resolve to the lower class index
// (numeric.ArgMax), deterministically.
func accuracy(m *modelhub.Model, head *numeric.Matrix, bias []float64, split datahub.Split) float64 {
	n := split.Len()
	if n == 0 {
		return 0
	}
	feats := m.FeatureFrame(split.X)
	logits := numeric.NewFrame(n, head.Rows)
	head.MulFrameBias(feats, bias, logits)
	correct := 0
	for i := 0; i < n; i++ {
		if numeric.ArgMax(logits.Row(i)) == split.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
