package lsq

import (
	"context"
	"math"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// fixture builds a small candidate pool around one NLP target: one model
// aligned with the target domain, one foreign, one weaker aligned.
func fixture(t *testing.T) ([]*modelhub.Model, *datahub.Dataset) {
	t.Helper()
	w := synth.NewWorld(42)
	specs := []modelhub.Spec{
		{Name: "lsq/aligned", Task: datahub.TaskNLP, Arch: "bert", Params: 110,
			Domains:    map[string]float64{datahub.DomainSentiment: 1},
			Capability: 0.95, SourceClasses: 3},
		{Name: "lsq/foreign", Task: datahub.TaskNLP, Arch: "bert", Params: 110,
			Domains:    map[string]float64{datahub.DomainMultilingual: 1},
			Capability: 0.5, SourceClasses: 3},
		{Name: "lsq/weak", Task: datahub.TaskNLP, Arch: "bert", Params: 30,
			Domains:    map[string]float64{datahub.DomainSentiment: 1},
			Capability: 0.05, SourceClasses: 3},
	}
	models := make([]*modelhub.Model, len(specs))
	for i, s := range specs {
		m, err := modelhub.Materialize(w, s)
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}
	d, err := datahub.Generate(w, datahub.Spec{
		Name: "lsq/ds", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainSentiment: 1},
		Classes: 3, Separability: 2, Noise: 1.8,
	}, datahub.Sizes{Train: 160, Val: 60, Test: 60})
	if err != nil {
		t.Fatal(err)
	}
	return models, d
}

func TestFitBeatsChance(t *testing.T) {
	models, d := fixture(t)
	val, test, err := Fit(models[0], d, 0)
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(d.Classes)
	if val <= chance || test <= chance {
		t.Fatalf("aligned head val=%v test=%v, want above chance %v", val, test, chance)
	}
	if val < 0 || val > 1 || test < 0 || test > 1 {
		t.Fatalf("accuracy out of [0,1]: val=%v test=%v", val, test)
	}
}

func TestFitRejectsTaskMismatch(t *testing.T) {
	models, _ := fixture(t)
	w := synth.NewWorld(7)
	d, err := datahub.Generate(w, datahub.Spec{
		Name: "lsq/vision", Task: datahub.TaskCV,
		Domains: map[string]float64{datahub.DomainNatural: 1},
		Classes: 3, Separability: 2, Noise: 1.8,
	}, datahub.Sizes{Train: 40, Val: 20, Test: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Fit(models[0], d, 0); err == nil {
		t.Fatal("cross-task fit succeeded, want error")
	}
}

func TestRankChargesInferenceOnly(t *testing.T) {
	models, d := fixture(t)
	var ledger trainer.Ledger
	res, err := Rank(context.Background(), models, d, Options{}, &ledger)
	if err != nil {
		t.Fatal(err)
	}
	if ledger.TrainEpochs() != 0 {
		t.Fatalf("lsq charged %d training epochs, want 0", ledger.TrainEpochs())
	}
	if want := 0.5 * float64(len(models)); ledger.Total() != want {
		t.Fatalf("ledger total = %v, want %v (0.5 per scored model)", ledger.Total(), want)
	}
	if len(res.Names) != len(models) || res.Names[0] != "lsq/aligned" {
		t.Fatalf("result names %v out of pool order", res.Names)
	}
}

func TestRankPrefersAligned(t *testing.T) {
	models, d := fixture(t)
	res, err := Rank(context.Background(), models, d, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Names[res.Best()]; got != "lsq/aligned" {
		t.Fatalf("best = %q (val %v), want lsq/aligned", got, res.Val)
	}
}

// TestRankBitIdenticalAcrossWorkers pins the determinism contract the
// serving paths rely on: worker count must never change a single bit.
func TestRankBitIdenticalAcrossWorkers(t *testing.T) {
	models, d := fixture(t)
	base, err := Rank(context.Background(), models, d, Options{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, -1} {
		got, err := Rank(context.Background(), models, d, Options{Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Val {
			if math.Float64bits(base.Val[i]) != math.Float64bits(got.Val[i]) ||
				math.Float64bits(base.Test[i]) != math.Float64bits(got.Test[i]) {
				t.Fatalf("workers=%d diverged at %s", workers, base.Names[i])
			}
		}
	}
}

func TestRankCanceledContext(t *testing.T) {
	models, d := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Rank(ctx, models, d, Options{}, nil); err == nil {
		t.Fatal("canceled rank succeeded, want error")
	}
}

func TestTopKKeepsPoolOrder(t *testing.T) {
	models, d := fixture(t)
	res, err := Rank(context.Background(), models, d, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TopK(len(models) + 1); len(got) != len(models) {
		t.Fatalf("TopK over pool size returned %d names", len(got))
	}
	two := res.TopK(2)
	if len(two) != 2 {
		t.Fatalf("TopK(2) returned %d names", len(two))
	}
	// Whatever two survive, they must appear in original pool order.
	pos := map[string]int{}
	for i, m := range models {
		pos[m.Name] = i
	}
	if pos[two[0]] >= pos[two[1]] {
		t.Fatalf("TopK(2) = %v not in pool order", two)
	}
}
