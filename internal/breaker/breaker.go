// Package breaker implements a per-peer circuit breaker shared by the
// shard Router and the artifact fetcher, so a hanging or flapping peer is
// cut off before its per-attempt timeouts burn the whole request deadline.
//
// Each breaker walks the classic three-state machine:
//
//	Closed    — traffic flows; FailureThreshold consecutive failures open it.
//	Open      — all traffic is skipped until Cooldown elapses.
//	Half-open — after cooldown, a seeded coin admits a fraction of probes
//	            (HalfOpenProb); one success closes the breaker, one failure
//	            re-opens it and restarts the cooldown.
//
// Half-open admission is probabilistic rather than single-token so several
// concurrent callers sharing one breaker don't all pile onto a barely-
// recovered peer at once, and seeded so chaos runs are reproducible.
package breaker

import (
	"sync"
	"time"
)

// State is a breaker's position in the closed/open/half-open machine.
type State uint8

const (
	Closed State = iota
	Open
	HalfOpen
)

// String renders the state for stats documents.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Options tunes a breaker Set. The zero value selects the defaults.
type Options struct {
	// FailureThreshold is how many consecutive failures open a closed
	// breaker. Default 5.
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before going
	// half-open. Default 2s.
	Cooldown time.Duration
	// HalfOpenProb is the probability a half-open breaker admits a
	// request. Default 0.5.
	HalfOpenProb float64
	// Seed drives the half-open admission coin, so a seeded chaos run
	// admits the same probe sequence every time.
	Seed uint64
	// now overrides the clock in tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * time.Second
	}
	if o.HalfOpenProb <= 0 || o.HalfOpenProb > 1 {
		o.HalfOpenProb = 0.5
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Breaker is one peer's circuit. All methods are safe for concurrent use.
type Breaker struct {
	opts Options

	mu       sync.Mutex
	state    State
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	rng      uint64    // xorshift state for half-open admits
	trips    int64     // closed→open transitions, for stats
}

func newBreaker(key string, opts Options) *Breaker {
	// Per-key RNG stream: the same (seed, peer) admits the same probe
	// sequence run after run.
	s := opts.Seed ^ fnv64(key)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &Breaker{opts: opts, rng: s}
}

// Allow reports whether a request may proceed, advancing open→half-open
// when the cooldown has elapsed.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.opts.now().Sub(b.openedAt) < b.opts.Cooldown {
			return false
		}
		b.state = HalfOpen
		fallthrough
	case HalfOpen:
		// xorshift64: cheap, deterministic per breaker.
		x := b.rng
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b.rng = x
		return float64(x>>11)/(1<<53) < b.opts.HalfOpenProb
	default:
		return true
	}
}

// Success records a successful call: any state closes and resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
}

// Failure records a failed call. While closed it counts toward the
// threshold; in half-open a single failure re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.opts.FailureThreshold {
			b.open()
		}
	case HalfOpen:
		b.open()
	case Open:
		// A straggler from before the trip; restart the cooldown so a
		// still-failing peer doesn't flap straight through half-open.
		b.openedAt = b.opts.now()
	}
}

func (b *Breaker) open() {
	b.state = Open
	b.fails = 0
	b.openedAt = b.opts.now()
	b.trips++
}

// State reports the breaker's current state without advancing it.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Set is a keyed collection of breakers (one per peer URL), created
// lazily on first use.
type Set struct {
	opts Options

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewSet builds a breaker set with shared options.
func NewSet(opts Options) *Set {
	return &Set{opts: opts.withDefaults(), m: make(map[string]*Breaker)}
}

// For returns the breaker for key, creating it closed on first use.
func (s *Set) For(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = newBreaker(key, s.opts)
		s.m[key] = b
	}
	return b
}

// Allow is shorthand for For(key).Allow().
func (s *Set) Allow(key string) bool { return s.For(key).Allow() }

// Success is shorthand for For(key).Success().
func (s *Set) Success(key string) { s.For(key).Success() }

// Failure is shorthand for For(key).Failure().
func (s *Set) Failure(key string) { s.For(key).Failure() }

// Snapshot reports each known key's state string, for stats documents.
func (s *Set) Snapshot() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.m))
	for k, b := range s.m {
		out[k] = b.State().String()
	}
	return out
}

// AllClosed reports whether every known breaker is closed — the
// reconvergence condition the chaos harness polls for after a schedule
// drains.
func (s *Set) AllClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.m {
		if b.State() != Closed {
			return false
		}
	}
	return true
}

func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
