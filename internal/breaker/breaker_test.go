package breaker

import (
	"sync"
	"testing"
	"time"
)

// testClock is a manual clock shared by a test's breakers.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestSet(opts Options) (*Set, *testClock) {
	clk := &testClock{now: time.Unix(1000, 0)}
	opts.now = clk.Now
	return NewSet(opts), clk
}

func TestClosedUntilThreshold(t *testing.T) {
	s, _ := newTestSet(Options{FailureThreshold: 3})
	b := s.For("peer")
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() || b.State() != Closed {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatalf("breaker not open after threshold: state=%v", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestSuccessResetsFailureStreak(t *testing.T) {
	s, _ := newTestSet(Options{FailureThreshold: 3})
	b := s.For("peer")
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestOpenHalfOpenLifecycle(t *testing.T) {
	s, clk := newTestSet(Options{FailureThreshold: 1, Cooldown: time.Second, HalfOpenProb: 1})
	b := s.For("peer")
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
	clk.Advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("cooldown not yet elapsed")
	}
	clk.Advance(600 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open with prob 1 must admit")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// A half-open failure re-opens and restarts the cooldown.
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatal("half-open failure did not re-open")
	}
	clk.Advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second cooldown did not elapse")
	}
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("half-open success did not close")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

func TestOpenFailureRestartsCooldown(t *testing.T) {
	s, clk := newTestSet(Options{FailureThreshold: 1, Cooldown: time.Second, HalfOpenProb: 1})
	b := s.For("peer")
	b.Failure()
	clk.Advance(900 * time.Millisecond)
	b.Failure() // straggler while open
	clk.Advance(200 * time.Millisecond)
	if b.Allow() {
		t.Fatal("straggler failure should have restarted the cooldown")
	}
	clk.Advance(900 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("restarted cooldown never elapsed")
	}
}

func TestHalfOpenProbabilisticAndSeeded(t *testing.T) {
	admitSeq := func(seed uint64) []bool {
		s, clk := newTestSet(Options{FailureThreshold: 1, Cooldown: time.Second, HalfOpenProb: 0.5, Seed: seed})
		b := s.For("peer")
		b.Failure()
		clk.Advance(2 * time.Second)
		out := make([]bool, 64)
		for i := range out {
			out[i] = b.Allow()
		}
		return out
	}
	a := admitSeq(7)
	admits := 0
	for _, ok := range a {
		if ok {
			admits++
		}
	}
	if admits == 0 || admits == len(a) {
		t.Fatalf("half-open prob 0.5 admitted %d/%d — not probabilistic", admits, len(a))
	}
	b := admitSeq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at admit %d", i)
		}
	}
	c := admitSeq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical admit sequences")
	}
}

func TestSetSnapshotAndAllClosed(t *testing.T) {
	s, clk := newTestSet(Options{FailureThreshold: 1, Cooldown: time.Second, HalfOpenProb: 1})
	if !s.AllClosed() {
		t.Fatal("empty set must be all-closed")
	}
	s.Success("a")
	s.Failure("b")
	snap := s.Snapshot()
	if snap["a"] != "closed" || snap["b"] != "open" {
		t.Fatalf("snapshot = %v", snap)
	}
	if s.AllClosed() {
		t.Fatal("set with an open breaker reported all-closed")
	}
	clk.Advance(2 * time.Second)
	if !s.Allow("b") {
		t.Fatal("half-open prob 1 must admit")
	}
	if s.AllClosed() {
		t.Fatal("half-open is not closed")
	}
	s.Success("b")
	if !s.AllClosed() {
		t.Fatal("all breakers closed but AllClosed is false")
	}
	if !s.Allow("never-seen") {
		t.Fatal("fresh breaker must start closed")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open", State(9): "unknown",
	} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	s := NewSet(Options{FailureThreshold: 3, Cooldown: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := []string{"a", "b"}[i%2]
				if s.Allow(key) {
					if i%3 == 0 {
						s.Failure(key)
					} else {
						s.Success(key)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s.Snapshot()
}
