package synth

import (
	"math"
	"testing"

	"twophase/internal/numeric"
)

func TestDomainBasisOrthonormal(t *testing.T) {
	w := NewWorld(42)
	b := w.DomainBasis("nli")
	if b.Rows != DomainRank || b.Cols != InputDim {
		t.Fatalf("basis shape %dx%d", b.Rows, b.Cols)
	}
	for i := 0; i < b.Rows; i++ {
		for j := 0; j <= i; j++ {
			d := numeric.Dot(b.Row(i), b.Row(j))
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(d-want) > 1e-9 {
				t.Fatalf("basis rows %d,%d dot %v", i, j, d)
			}
		}
	}
}

func TestDomainBasisCachedAndDeterministic(t *testing.T) {
	w := NewWorld(42)
	a, b := w.DomainBasis("sentiment"), w.DomainBasis("sentiment")
	if a != b {
		t.Fatal("basis not cached (pointer changed)")
	}
	w2 := NewWorld(42)
	c := w2.DomainBasis("sentiment")
	for i, v := range a.Data {
		if c.Data[i] != v {
			t.Fatal("same seed produced different basis")
		}
	}
	w3 := NewWorld(43)
	d := w3.DomainBasis("sentiment")
	same := true
	for i, v := range a.Data {
		if d.Data[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical basis")
	}
}

func TestDistinctDomainsNearOrthogonal(t *testing.T) {
	w := NewWorld(42)
	a, b := w.DomainBasis("nli"), w.DomainBasis("food")
	// random low-dim subspaces of R^32 should have small mutual coherence
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			if d := math.Abs(numeric.Dot(a.Row(i), b.Row(j))); d > 0.75 {
				t.Fatalf("distinct domains share direction (|dot|=%v)", d)
			}
		}
	}
}

func TestMixtureDirectionsUnitNorm(t *testing.T) {
	w := NewWorld(42)
	rng := numeric.NewNamedRNG(42, "test-mix")
	dirs := w.MixtureDirections(map[string]float64{"nli": 1}, 5, rng)
	for i := 0; i < dirs.Rows; i++ {
		if n := numeric.Norm2(dirs.Row(i)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("direction %d norm %v", i, n)
		}
	}
}

func TestMixtureDirectionsInSpan(t *testing.T) {
	w := NewWorld(42)
	rng := numeric.NewNamedRNG(42, "test-span")
	dirs := w.MixtureDirections(map[string]float64{"nli": 1}, 4, rng)
	basis := w.DomainBasis("nli")
	// each direction must lie (almost) entirely inside the basis span
	for i := 0; i < dirs.Rows; i++ {
		var captured float64
		for j := 0; j < basis.Rows; j++ {
			p := numeric.Dot(dirs.Row(i), basis.Row(j))
			captured += p * p
		}
		if captured < 0.999 {
			t.Fatalf("direction %d only %.3f inside domain span", i, captured)
		}
	}
}

func TestMixtureDirectionsEmptyMixture(t *testing.T) {
	w := NewWorld(42)
	rng := numeric.NewNamedRNG(42, "test-empty")
	dirs := w.MixtureDirections(nil, 3, rng)
	for i := 0; i < dirs.Rows; i++ {
		if numeric.Norm2(dirs.Row(i)) != 0 {
			t.Fatal("empty mixture should give zero directions")
		}
	}
}

func TestNormalizeMixture(t *testing.T) {
	m := NormalizeMixture(map[string]float64{"a": 2, "b": 6, "c": -1})
	if math.Abs(m["a"]-0.25) > 1e-12 || math.Abs(m["b"]-0.75) > 1e-12 {
		t.Fatalf("normalized = %v", m)
	}
	if _, ok := m["c"]; ok {
		t.Fatal("negative weight kept")
	}
	if len(NormalizeMixture(nil)) != 0 {
		t.Fatal("nil mixture should be empty")
	}
}

func TestWithCore(t *testing.T) {
	m := WithCore(map[string]float64{"nli": 0.75}, "nlp", 0.25)
	var total float64
	for _, v := range m {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("mixture sums to %v", total)
	}
	if m[CoreDomain("nlp")] <= 0 {
		t.Fatal("core domain missing")
	}
	// input must not be mutated
	orig := map[string]float64{"nli": 0.75}
	_ = WithCore(orig, "nlp", 0.25)
	if len(orig) != 1 {
		t.Fatal("WithCore mutated input")
	}
}

func TestCoreDomainNames(t *testing.T) {
	if CoreDomain("nlp") == CoreDomain("cv") {
		t.Fatal("task cores must differ")
	}
}

func TestWorldConcurrentBasisAccess(t *testing.T) {
	w := NewWorld(1)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				w.DomainBasis("shared")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
