// Package synth implements the synthetic transfer-learning world that
// substitutes for the paper's HuggingFace substrate (see DESIGN.md §2).
//
// The world assigns every semantic domain ("nli", "sentiment",
// "natural-img", ...) a low-dimensional basis inside the shared input
// space. Datasets place their class structure inside the span of their
// domain mixture; simulated pre-trained models attend preferentially to the
// span of theirs. Transfer quality is therefore an emergent function of
// domain overlap, exactly the causal mechanism the paper's framework
// exploits.
package synth

import (
	"sort"
	"sync"

	"twophase/internal/numeric"
)

const (
	// InputDim is the dimensionality of raw example vectors.
	InputDim = 32
	// DomainRank is the number of basis directions spanned by one domain.
	DomainRank = 6
)

// CoreDomain returns the name of the always-present generic domain for a
// task family ("nlp" or "cv"). It models the generic linguistic / visual
// features that every pre-trained model shares, which keeps all models
// above chance and lets strong generic models transfer broadly.
func CoreDomain(task string) string { return "_core_" + task }

// World owns the domain bases. It is safe for concurrent use.
type World struct {
	Seed uint64

	mu    sync.RWMutex
	basis map[string]*numeric.Matrix
}

// NewWorld returns a world whose every stochastic choice derives from seed.
func NewWorld(seed uint64) *World {
	return &World{Seed: seed, basis: make(map[string]*numeric.Matrix)}
}

// DomainBasis returns the DomainRank x InputDim orthonormal basis of the
// named domain. The basis is derived deterministically from the world seed
// and the domain name, and cached.
func (w *World) DomainBasis(name string) *numeric.Matrix {
	// Bases are immutable once built and the map is read-mostly (every
	// model/dataset materialization hits it), so reads take the shared
	// lock and only a miss upgrades to the exclusive one.
	w.mu.RLock()
	b, ok := w.basis[name]
	w.mu.RUnlock()
	if ok {
		return b
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if b, ok := w.basis[name]; ok {
		return b
	}
	rng := numeric.NewNamedRNG(w.Seed, "domain-basis", name)
	b = numeric.RandomMatrix(rng, DomainRank, InputDim, 1)
	numeric.GramSchmidt(b, rng)
	w.basis[name] = b
	return b
}

// MixtureDirections draws n unit directions from the span of the weighted
// domain mixture. Each direction is a weighted random combination of the
// mixture's domain basis vectors; rng controls the draw so that two
// entities with the same mixture still own distinct (but overlapping-span)
// directions.
func (w *World) MixtureDirections(mix map[string]float64, n int, rng *numeric.RNG) *numeric.Matrix {
	names := make([]string, 0, len(mix))
	for name := range mix {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic iteration order

	dirs := numeric.NewMatrix(n, InputDim)
	for i := 0; i < n; i++ {
		row := dirs.Row(i)
		for _, name := range names {
			weight := mix[name]
			if weight <= 0 {
				continue
			}
			b := w.DomainBasis(name)
			for j := 0; j < b.Rows; j++ {
				numeric.AddScaled(row, weight*rng.Norm(), b.Row(j))
			}
		}
		numeric.Normalize(row)
	}
	return dirs
}

// NormalizeMixture returns a copy of mix scaled so the weights sum to 1.
// An empty or all-zero mixture returns an empty map. The total accumulates
// in sorted key order: float sums are order-sensitive in the last ULP, and
// map iteration order would otherwise leak into every derived weight,
// breaking bit-reproducibility across processes.
func NormalizeMixture(mix map[string]float64) map[string]float64 {
	names := make([]string, 0, len(mix))
	for k := range mix {
		names = append(names, k)
	}
	sort.Strings(names)
	var total float64
	for _, k := range names {
		if v := mix[k]; v > 0 {
			total += v
		}
	}
	out := make(map[string]float64, len(mix))
	if total == 0 {
		return out
	}
	for k, v := range mix {
		if v > 0 {
			out[k] = v / total
		}
	}
	return out
}

// WithCore returns the mixture augmented with the task's core domain at
// the given weight, renormalized. The input map is not modified.
func WithCore(mix map[string]float64, task string, coreWeight float64) map[string]float64 {
	out := make(map[string]float64, len(mix)+1)
	for k, v := range mix {
		out[k] = v
	}
	out[CoreDomain(task)] += coreWeight
	return NormalizeMixture(out)
}
