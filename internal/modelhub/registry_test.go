package modelhub

import (
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/synth"
)

func TestSpecCounts(t *testing.T) {
	if n := len(NLPSpecs()); n != 40 {
		t.Fatalf("NLP models = %d, paper uses 40", n)
	}
	if n := len(CVSpecs()); n != 30 {
		t.Fatalf("CV models = %d, paper uses 30", n)
	}
}

func TestSpecsValid(t *testing.T) {
	for _, group := range [][]Spec{NLPSpecs(), CVSpecs()} {
		seen := map[string]bool{}
		for _, s := range group {
			if seen[s.Name] {
				t.Fatalf("duplicate model %q", s.Name)
			}
			seen[s.Name] = true
			if s.Capability <= 0 || s.Capability > 1 {
				t.Fatalf("model %q capability %v", s.Name, s.Capability)
			}
			if s.SourceClasses < 2 {
				t.Fatalf("model %q source classes %d", s.Name, s.SourceClasses)
			}
			if s.Arch == "" || s.Params <= 0 {
				t.Fatalf("model %q missing arch/params", s.Name)
			}
		}
	}
}

func TestPaperModelNamesPresent(t *testing.T) {
	want := []string{
		"bert-base-uncased", "roberta-base", "albert-base-v2", "distilbert-base-uncased",
		"ishan/bert-base-uncased-mnli", "Jeevesh8/feather_berts_46",
		"connectivity/bert_ft_qqp-1", "Jeevesh8/init_bert_ft_qqp-33",
		"google/vit-base-patch16-224", "microsoft/beit-base-patch16-384",
		"facebook/deit-base-patch16-224", "shi-labs/dinat-large-in22k-in1k-384",
		"sail/poolformer_m36", "Visual-Attention-Network/van-large",
		"nateraw/vit-age-classifier", "oschamp/vit-artworkclassifier",
	}
	have := map[string]bool{}
	for _, g := range [][]Spec{NLPSpecs(), CVSpecs()} {
		for _, s := range g {
			have[s.Name] = true
		}
	}
	for _, n := range want {
		if !have[n] {
			t.Fatalf("paper model %q missing", n)
		}
	}
}

func TestNewTaskRepository(t *testing.T) {
	w := synth.NewWorld(42)
	nlp, err := NewTaskRepository(w, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	if nlp.Len() != 40 {
		t.Fatalf("NLP repo len %d", nlp.Len())
	}
	cv, err := NewTaskRepository(w, datahub.TaskCV)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Len() != 30 {
		t.Fatalf("CV repo len %d", cv.Len())
	}
	if _, err := NewTaskRepository(w, "audio"); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestRepositoryAccessors(t *testing.T) {
	w := synth.NewWorld(42)
	repo, err := NewTaskRepository(w, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Get("roberta-base"); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Get("no/such-model"); err == nil {
		t.Fatal("unknown model accepted")
	}
	names := repo.Names()
	if len(names) != 40 {
		t.Fatalf("names len %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
	models := repo.Models()
	if len(models) != 40 || models[0].Name != NLPSpecs()[0].Name {
		t.Fatal("Models() order must match registration order")
	}
}

func TestRepositorySubset(t *testing.T) {
	w := synth.NewWorld(42)
	repo, err := NewTaskRepository(w, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := repo.Subset([]string{"roberta-base", "bert-base-uncased"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Models()[0].Name != "roberta-base" {
		t.Fatal("subset order/contents wrong")
	}
	if _, err := repo.Subset([]string{"roberta-base", "roberta-base"}); err == nil {
		t.Fatal("duplicate subset accepted")
	}
	if _, err := repo.Subset([]string{"missing"}); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestNewRepositoryTaskMismatch(t *testing.T) {
	w := synth.NewWorld(42)
	if _, err := NewRepository(w, datahub.TaskCV, NLPSpecs()); err == nil {
		t.Fatal("task mismatch accepted")
	}
}

func TestRepositoryModelsIndependentSlice(t *testing.T) {
	w := synth.NewWorld(42)
	repo, err := NewTaskRepository(w, datahub.TaskCV)
	if err != nil {
		t.Fatal(err)
	}
	ms := repo.Models()
	ms[0] = nil
	if repo.Models()[0] == nil {
		t.Fatal("Models() exposes internal slice")
	}
}
