package modelhub

import (
	"fmt"
	"sort"

	"twophase/internal/datahub"
	"twophase/internal/synth"
)

func mix(pairs ...interface{}) map[string]float64 {
	m := make(map[string]float64, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return m
}

// in1k and in21k are the upstream domain mixtures of ImageNet-1k and
// ImageNet-21k pre-training: 21k covers a broader slice of the visual
// world (fine-grained categories, food), which is what makes the paper's
// C3 cluster of 21k models hang together.
func in1k() map[string]float64 {
	return mix(datahub.DomainNatural, 0.6, datahub.DomainObjects, 0.6)
}
func in21k() map[string]float64 {
	return mix(datahub.DomainNatural, 0.5, datahub.DomainObjects, 0.5, datahub.DomainFineGrained, 0.4, datahub.DomainFood, 0.25)
}

// NLPSpecs returns the 40 NLP model specs of appendix Table VIII.
// Capability and domain mixtures are inferred from each model's name and
// card the same way the paper's own discussion does (e.g. "feather berts
// are BERT models fine-tuned on MNLI").
func NLPSpecs() []Spec {
	n := datahub.TaskNLP
	return []Spec{
		{Name: "18811449050/bert_finetuning_test", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainSentiment, 0.4), Capability: 0.47, SourceClasses: 2, Upstream: []string{"sst2 (test run)"}},
		{Name: "aditeyabaral/finetuned-sail2017-xlm-roberta-base", Task: n, Arch: "xlm-roberta", Params: 270, Domains: mix(datahub.DomainMultilingual, 0.5, datahub.DomainSentiment, 0.5), Capability: 0.56, SourceClasses: 3, Upstream: []string{"sail2017"}},
		{Name: "albert-base-v2", Task: n, Arch: "albert", Params: 12, Domains: mix(), Capability: 0.72, SourceClasses: 30, Upstream: nil},
		{Name: "aliosm/sha3bor-metre-detector-arabertv2-base", Task: n, Arch: "arabert", Params: 135, Domains: mix(datahub.DomainMultilingual, 0.7, datahub.DomainGrammar, 0.3), Capability: 0.42, SourceClasses: 16, Upstream: []string{"arabic poetry metres"}},
		{Name: "Alireza1044/albert-base-v2-qnli", Task: n, Arch: "albert", Params: 12, Domains: mix(datahub.DomainQA, 0.6, datahub.DomainNLI, 0.5), Capability: 0.68, SourceClasses: 2, Upstream: []string{"qnli"}},
		{Name: "anirudh21/bert-base-uncased-finetuned-qnli", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainQA, 0.5, datahub.DomainNLI, 0.4, datahub.DomainGrammar, 0.2), Capability: 0.57, SourceClasses: 2, Upstream: []string{"qnli"}},
		{Name: "aviator-neural/bert-base-uncased-sst2", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainSentiment, 0.7), Capability: 0.58, SourceClasses: 2, Upstream: []string{"sst2"}},
		{Name: "aychang/bert-base-cased-trec-coarse", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainQA, 0.6, datahub.DomainTopic, 0.4), Capability: 0.56, SourceClasses: 6, Upstream: []string{"trec"}},
		{Name: "bert-base-uncased", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainGrammar, 0.2), Capability: 0.70, SourceClasses: 30, Upstream: nil},
		{Name: "bondi/bert-semaphore-prediction-w4", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainSocial, 0.3), Capability: 0.35, SourceClasses: 2, Upstream: []string{"semaphore prediction"}},
		{Name: "CAMeL-Lab/bert-base-arabic-camelbert-da-sentiment", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainMultilingual, 0.6, datahub.DomainSentiment, 0.5), Capability: 0.46, SourceClasses: 3, Upstream: []string{"arabic sentiment"}},
		{Name: "CAMeL-Lab/bert-base-arabic-camelbert-mix-did-nadi", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainMultilingual, 0.8), Capability: 0.40, SourceClasses: 21, Upstream: []string{"nadi dialect id"}},
		{Name: "classla/bcms-bertic-parlasent-bcs-ter", Task: n, Arch: "bertic", Params: 110, Domains: mix(datahub.DomainMultilingual, 0.6, datahub.DomainSentiment, 0.4), Capability: 0.43, SourceClasses: 3, Upstream: []string{"parlasent"}},
		{Name: "connectivity/bert_ft_qqp-1", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.62, SourceClasses: 2, Upstream: []string{"qqp"}},
		{Name: "connectivity/bert_ft_qqp-17", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.45, SourceClasses: 2, Upstream: []string{"qqp (unstable run)"}},
		{Name: "connectivity/bert_ft_qqp-7", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.61, SourceClasses: 2, Upstream: []string{"qqp"}},
		{Name: "connectivity/bert_ft_qqp-96", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.46, SourceClasses: 2, Upstream: []string{"qqp (unstable run)"}},
		{Name: "dhimskyy/wiki-bert", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainTopic, 0.4), Capability: 0.40, SourceClasses: 10, Upstream: []string{"wikipedia"}},
		{Name: "distilbert-base-uncased", Task: n, Arch: "distilbert", Params: 66, Domains: mix(datahub.DomainSentiment, 0.15), Capability: 0.62, SourceClasses: 30, Upstream: nil},
		{Name: "DoyyingFace/bert-asian-hate-tweets-asian-unclean-freeze-4", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainSocial, 0.5, datahub.DomainSentiment, 0.4, datahub.DomainGrammar, 0.15), Capability: 0.55, SourceClasses: 2, Upstream: []string{"asian hate tweets"}},
		{Name: "emrecan/bert-base-multilingual-cased-snli_tr", Task: n, Arch: "bert", Params: 178, Domains: mix(datahub.DomainMultilingual, 0.5, datahub.DomainNLI, 0.5), Capability: 0.52, SourceClasses: 3, Upstream: []string{"snli-tr"}},
		{Name: "gchhablani/bert-base-cased-finetuned-rte", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainNLI, 0.7), Capability: 0.56, SourceClasses: 2, Upstream: []string{"rte"}},
		{Name: "gchhablani/bert-base-cased-finetuned-wnli", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainNLI, 0.6, datahub.DomainQA, 0.2), Capability: 0.50, SourceClasses: 2, Upstream: []string{"wnli"}},
		{Name: "Guscode/DKbert-hatespeech-detection", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainMultilingual, 0.5, datahub.DomainSocial, 0.5), Capability: 0.44, SourceClasses: 2, Upstream: []string{"danish hatespeech"}},
		{Name: "ishan/bert-base-uncased-mnli", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainNLI, 0.8, datahub.DomainQA, 0.2), Capability: 0.68, SourceClasses: 3, Upstream: []string{"mnli"}},
		{Name: "jb2k/bert-base-multilingual-cased-language-detection", Task: n, Arch: "bert", Params: 178, Domains: mix(datahub.DomainMultilingual, 0.8), Capability: 0.47, SourceClasses: 20, Upstream: []string{"language detection"}},
		{Name: "Jeevesh8/512seq_len_6ep_bert_ft_cola-91", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainGrammar, 0.7), Capability: 0.55, SourceClasses: 2, Upstream: []string{"cola"}},
		{Name: "Jeevesh8/6ep_bert_ft_cola-47", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainGrammar, 0.7), Capability: 0.52, SourceClasses: 2, Upstream: []string{"cola"}},
		{Name: "Jeevesh8/bert_ft_cola-88", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainGrammar, 0.7), Capability: 0.54, SourceClasses: 2, Upstream: []string{"cola"}},
		{Name: "Jeevesh8/bert_ft_qqp-40", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.62, SourceClasses: 2, Upstream: []string{"qqp"}},
		{Name: "Jeevesh8/bert_ft_qqp-68", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.63, SourceClasses: 2, Upstream: []string{"qqp"}},
		{Name: "Jeevesh8/bert_ft_qqp-9", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.62, SourceClasses: 2, Upstream: []string{"qqp"}},
		{Name: "Jeevesh8/feather_berts_46", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainNLI, 0.8), Capability: 0.66, SourceClasses: 3, Upstream: []string{"mnli (feather bert)"}},
		{Name: "Jeevesh8/init_bert_ft_qqp-24", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.44, SourceClasses: 2, Upstream: []string{"qqp (re-init run)"}},
		{Name: "Jeevesh8/init_bert_ft_qqp-33", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainParaphrase, 0.8), Capability: 0.45, SourceClasses: 2, Upstream: []string{"qqp (re-init run)"}},
		{Name: "manueltonneau/bert-twitter-en-is-hired", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainSocial, 0.5, datahub.DomainGrammar, 0.2), Capability: 0.52, SourceClasses: 2, Upstream: []string{"twitter employment"}},
		{Name: "roberta-base", Task: n, Arch: "roberta", Params: 125, Domains: mix(datahub.DomainNLI, 0.15, datahub.DomainSentiment, 0.1), Capability: 0.78, SourceClasses: 30, Upstream: nil},
		{Name: "socialmediaie/TRAC2020_IBEN_B_bert-base-multilingual-uncased", Task: n, Arch: "bert", Params: 168, Domains: mix(datahub.DomainMultilingual, 0.6, datahub.DomainSocial, 0.5), Capability: 0.44, SourceClasses: 3, Upstream: []string{"trac2020"}},
		{Name: "Splend1dchan/bert-base-uncased-slue-goldtrascription-e3-lr1e-4", Task: n, Arch: "bert", Params: 110, Domains: mix(datahub.DomainSocial, 0.3, datahub.DomainTopic, 0.3), Capability: 0.48, SourceClasses: 2, Upstream: []string{"slue transcription"}},
		{Name: "XSY/albert-base-v2-imdb-calssification", Task: n, Arch: "albert", Params: 12, Domains: mix(datahub.DomainSentiment, 0.7), Capability: 0.60, SourceClasses: 2, Upstream: []string{"imdb"}},
	}
}

// CVSpecs returns the 30 CV model specs of appendix Table VIII.
func CVSpecs() []Spec {
	c := datahub.TaskCV
	return []Spec{
		{Name: "facebook/deit-base-patch16-224", Task: c, Arch: "deit", Params: 86, Domains: in1k(), Capability: 0.72, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "facebook/deit-base-patch16-384", Task: c, Arch: "deit", Params: 86, Domains: in1k(), Capability: 0.74, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "facebook/deit-small-patch16-224", Task: c, Arch: "deit", Params: 22, Domains: in1k(), Capability: 0.62, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "facebook/dino-vitb16", Task: c, Arch: "vit-dino", Params: 86, Domains: in21k(), Capability: 0.75, SourceClasses: 50, Upstream: []string{"imagenet-1k (self-supervised)"}},
		{Name: "facebook/dino-vitb8", Task: c, Arch: "vit-dino", Params: 86, Domains: in21k(), Capability: 0.76, SourceClasses: 50, Upstream: []string{"imagenet-1k (self-supervised)"}},
		{Name: "facebook/dino-vits16", Task: c, Arch: "vit-dino", Params: 22, Domains: in1k(), Capability: 0.64, SourceClasses: 50, Upstream: []string{"imagenet-1k (self-supervised)"}},
		{Name: "facebook/vit-msn-base", Task: c, Arch: "vit-msn", Params: 86, Domains: in1k(), Capability: 0.70, SourceClasses: 50, Upstream: []string{"imagenet-1k (msn)"}},
		{Name: "facebook/vit-msn-small", Task: c, Arch: "vit-msn", Params: 22, Domains: in1k(), Capability: 0.63, SourceClasses: 50, Upstream: []string{"imagenet-1k (msn)"}},
		{Name: "google/vit-base-patch16-224", Task: c, Arch: "vit", Params: 86, Domains: in21k(), Capability: 0.76, SourceClasses: 50, Upstream: []string{"imagenet-21k", "imagenet-1k"}},
		{Name: "google/vit-base-patch16-384", Task: c, Arch: "vit", Params: 86, Domains: in21k(), Capability: 0.78, SourceClasses: 50, Upstream: []string{"imagenet-21k", "imagenet-1k"}},
		{Name: "google/vit-base-patch32-224-in21k", Task: c, Arch: "vit", Params: 88, Domains: in21k(), Capability: 0.66, SourceClasses: 50, Upstream: []string{"imagenet-21k"}},
		{Name: "lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER2013-6e-05", Task: c, Arch: "beit", Params: 86, Domains: mix(datahub.DomainFaces, 0.7, datahub.DomainNatural, 0.25, datahub.DomainObjects, 0.25), Capability: 0.60, SourceClasses: 7, Upstream: []string{"imagenet-22k", "fer2013"}},
		{Name: "lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER2013-7e-05", Task: c, Arch: "beit", Params: 86, Domains: mix(datahub.DomainFaces, 0.7, datahub.DomainNatural, 0.25, datahub.DomainObjects, 0.25), Capability: 0.61, SourceClasses: 7, Upstream: []string{"imagenet-22k", "fer2013"}},
		{Name: "lixiqi/beit-base-patch16-224-pt22k-ft22k-finetuned-FER-5e-05-3", Task: c, Arch: "beit", Params: 86, Domains: mix(datahub.DomainFaces, 0.7, datahub.DomainNatural, 0.25, datahub.DomainObjects, 0.25), Capability: 0.58, SourceClasses: 7, Upstream: []string{"imagenet-22k", "fer2013"}},
		{Name: "microsoft/beit-base-patch16-224", Task: c, Arch: "beit", Params: 86, Domains: in21k(), Capability: 0.74, SourceClasses: 50, Upstream: []string{"imagenet-22k", "imagenet-1k"}},
		{Name: "microsoft/beit-base-patch16-224-pt22k", Task: c, Arch: "beit", Params: 86, Domains: mix(datahub.DomainObjects, 0.4, datahub.DomainNatural, 0.3), Capability: 0.58, SourceClasses: 50, Upstream: []string{"imagenet-22k (pre-train only)"}},
		{Name: "microsoft/beit-base-patch16-224-pt22k-ft22k", Task: c, Arch: "beit", Params: 86, Domains: in21k(), Capability: 0.72, SourceClasses: 50, Upstream: []string{"imagenet-22k"}},
		{Name: "microsoft/beit-base-patch16-384", Task: c, Arch: "beit", Params: 86, Domains: in21k(), Capability: 0.76, SourceClasses: 50, Upstream: []string{"imagenet-22k", "imagenet-1k"}},
		{Name: "microsoft/beit-large-patch16-224-pt22k", Task: c, Arch: "beit", Params: 304, Domains: mix(datahub.DomainObjects, 0.4, datahub.DomainNatural, 0.3), Capability: 0.61, SourceClasses: 50, Upstream: []string{"imagenet-22k (pre-train only)"}},
		{Name: "mrgiraffe/vit-large-dataset-model-v3", Task: c, Arch: "vit", Params: 304, Domains: mix(datahub.DomainObjects, 0.4), Capability: 0.50, SourceClasses: 20, Upstream: []string{"unspecified large dataset"}},
		{Name: "sail/poolformer_m36", Task: c, Arch: "poolformer", Params: 56, Domains: in1k(), Capability: 0.58, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "sail/poolformer_m48", Task: c, Arch: "poolformer", Params: 73, Domains: in1k(), Capability: 0.60, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "sail/poolformer_s36", Task: c, Arch: "poolformer", Params: 31, Domains: in1k(), Capability: 0.52, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "shi-labs/dinat-base-in1k-224", Task: c, Arch: "dinat", Params: 90, Domains: in1k(), Capability: 0.68, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "shi-labs/dinat-large-in22k-in1k-224", Task: c, Arch: "dinat", Params: 200, Domains: in21k(), Capability: 0.78, SourceClasses: 50, Upstream: []string{"imagenet-22k", "imagenet-1k"}},
		{Name: "shi-labs/dinat-large-in22k-in1k-384", Task: c, Arch: "dinat", Params: 200, Domains: in21k(), Capability: 0.80, SourceClasses: 50, Upstream: []string{"imagenet-22k", "imagenet-1k"}},
		{Name: "Visual-Attention-Network/van-base", Task: c, Arch: "van", Params: 27, Domains: in1k(), Capability: 0.64, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "Visual-Attention-Network/van-large", Task: c, Arch: "van", Params: 45, Domains: in1k(), Capability: 0.70, SourceClasses: 50, Upstream: []string{"imagenet-1k"}},
		{Name: "oschamp/vit-artworkclassifier", Task: c, Arch: "vit", Params: 86, Domains: mix(datahub.DomainArtworks, 0.8, datahub.DomainNatural, 0.2), Capability: 0.55, SourceClasses: 8, Upstream: []string{"wikiart"}},
		{Name: "nateraw/vit-age-classifier", Task: c, Arch: "vit", Params: 86, Domains: mix(datahub.DomainFaces, 0.7, datahub.DomainNatural, 0.2), Capability: 0.60, SourceClasses: 8, Upstream: []string{"fairface"}},
	}
}

// Repository is a materialized model repository (the paper's M).
type Repository struct {
	Task   string
	models []*Model
	byName map[string]*Model
}

// NewRepository materializes every spec inside the world.
func NewRepository(w *synth.World, task string, specs []Spec) (*Repository, error) {
	r := &Repository{Task: task, byName: make(map[string]*Model, len(specs))}
	for _, spec := range specs {
		if spec.Task != task {
			return nil, fmt.Errorf("modelhub: model %q has task %q, repository wants %q", spec.Name, spec.Task, task)
		}
		if _, dup := r.byName[spec.Name]; dup {
			return nil, fmt.Errorf("modelhub: duplicate model %q", spec.Name)
		}
		m, err := Materialize(w, spec)
		if err != nil {
			return nil, err
		}
		r.models = append(r.models, m)
		r.byName[spec.Name] = m
	}
	return r, nil
}

// NewTaskRepository materializes the paper's full repository for a task
// family: 40 models for "nlp", 30 for "cv".
func NewTaskRepository(w *synth.World, task string) (*Repository, error) {
	switch task {
	case datahub.TaskNLP:
		return NewRepository(w, task, NLPSpecs())
	case datahub.TaskCV:
		return NewRepository(w, task, CVSpecs())
	default:
		return nil, fmt.Errorf("modelhub: unknown task %q", task)
	}
}

// Models returns the repository contents in registration order.
func (r *Repository) Models() []*Model {
	out := make([]*Model, len(r.models))
	copy(out, r.models)
	return out
}

// Len returns the number of models.
func (r *Repository) Len() int { return len(r.models) }

// Get returns a model by name, or an error if absent.
func (r *Repository) Get(name string) (*Model, error) {
	m, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("modelhub: model %q not in repository", name)
	}
	return m, nil
}

// Names returns the sorted model names.
func (r *Repository) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Subset returns a new repository restricted to the named models, in the
// given order.
func (r *Repository) Subset(names []string) (*Repository, error) {
	sub := &Repository{Task: r.Task, byName: make(map[string]*Model, len(names))}
	for _, n := range names {
		m, err := r.Get(n)
		if err != nil {
			return nil, err
		}
		if _, dup := sub.byName[n]; dup {
			return nil, fmt.Errorf("modelhub: duplicate model %q in subset", n)
		}
		sub.models = append(sub.models, m)
		sub.byName[n] = m
	}
	return sub, nil
}
