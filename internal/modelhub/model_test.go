package modelhub

import (
	"math"
	"strings"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/numeric"
	"twophase/internal/synth"
)

func testModelSpec(name string, domains map[string]float64, capability float64) Spec {
	return Spec{
		Name: name, Task: datahub.TaskNLP, Arch: "bert", Params: 110,
		Domains: domains, Capability: capability, SourceClasses: 4,
	}
}

func TestMaterializeValidation(t *testing.T) {
	w := synth.NewWorld(42)
	cases := []Spec{
		{},                            // empty name
		testModelSpec("a", nil, -0.1), // capability < 0
		testModelSpec("b", nil, 1.1),  // capability > 1
		{Name: "c", Task: datahub.TaskNLP, Capability: 0.5, SourceClasses: 1}, // 1 source class
	}
	for i, spec := range cases {
		if _, err := Materialize(w, spec); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	spec := testModelSpec("det", map[string]float64{datahub.DomainNLI: 1}, 0.6)
	a, err := Materialize(synth.NewWorld(42), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(synth.NewWorld(42), spec)
	if err != nil {
		t.Fatal(err)
	}
	x := numeric.NewNamedRNG(1, "probe").NormVec(synth.InputDim)
	fa, fb := a.Features(x), b.Features(x)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same world+spec produced different models")
		}
	}
}

func TestFeaturesBounded(t *testing.T) {
	w := synth.NewWorld(42)
	m, err := Materialize(w, testModelSpec("bounded", map[string]float64{datahub.DomainNLI: 1}, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	rng := numeric.NewNamedRNG(7, "inputs")
	for trial := 0; trial < 20; trial++ {
		x := rng.NormVec(synth.InputDim)
		numeric.Scale(x, 5)
		f := m.Features(x)
		if len(f) != FeatureDim {
			t.Fatalf("feature dim %d", len(f))
		}
		for _, v := range f {
			if v < -1 || v > 1 || math.IsNaN(v) {
				t.Fatalf("feature %v outside tanh range", v)
			}
		}
	}
}

func TestSourceProbsDistribution(t *testing.T) {
	w := synth.NewWorld(42)
	m, err := Materialize(w, testModelSpec("probs", map[string]float64{datahub.DomainNLI: 1}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	x := numeric.NewNamedRNG(3, "x").NormVec(synth.InputDim)
	p := m.SourceProbs(m.Features(x))
	if len(p) != m.SourceClasses {
		t.Fatalf("probs len %d", len(p))
	}
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Fatalf("negative prob %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum %v", sum)
	}
}

func TestFeatureBatch(t *testing.T) {
	w := synth.NewWorld(42)
	m, err := Materialize(w, testModelSpec("batch", nil, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{
		numeric.NewNamedRNG(1, "a").NormVec(synth.InputDim),
		numeric.NewNamedRNG(1, "b").NormVec(synth.InputDim),
	}
	fs := m.FeatureBatch(xs)
	if len(fs) != 2 || len(fs[0]) != FeatureDim {
		t.Fatalf("batch shape %d x %d", len(fs), len(fs[0]))
	}
}

// TestAlignmentDrivesSeparability is the central property of the synthetic
// substrate: a model whose domains match a dataset's separates its classes
// in feature space better than an equally capable model from a foreign
// domain — the causal mechanism behind every experiment.
func TestAlignmentDrivesSeparability(t *testing.T) {
	w := synth.NewWorld(42)
	d, err := datahub.Generate(w, datahub.Spec{
		Name: "align/ds", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainNLI: 1},
		Classes: 2, Separability: 2, Noise: 2,
	}, datahub.Sizes{Train: 300, Val: 10, Test: 10})
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := Materialize(w, testModelSpec("align/in-domain", map[string]float64{datahub.DomainNLI: 1}, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := Materialize(w, testModelSpec("align/foreign", map[string]float64{datahub.DomainFinance: 1}, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if sa, sf := fisherScore(aligned, d), fisherScore(foreign, d); sa <= sf*1.3 {
		t.Fatalf("aligned separability %v not clearly above foreign %v", sa, sf)
	}
}

// fisherScore is the ratio of between-class to within-class scatter of the
// model's features on the dataset's training split.
func fisherScore(m *Model, d *datahub.Dataset) float64 {
	feats := m.FeatureFrame(d.Train.X).Rows2D()
	mean := make([]float64, FeatureDim)
	classMean := map[int][]float64{}
	classN := map[int]int{}
	for i, f := range feats {
		numeric.AddScaled(mean, 1, f)
		y := d.Train.Y[i]
		if classMean[y] == nil {
			classMean[y] = make([]float64, FeatureDim)
		}
		numeric.AddScaled(classMean[y], 1, f)
		classN[y]++
	}
	numeric.Scale(mean, 1/float64(len(feats)))
	var between float64
	for y, cm := range classMean {
		numeric.Scale(cm, 1/float64(classN[y]))
		between += float64(classN[y]) * sq(numeric.EuclideanDistance(cm, mean))
	}
	var within float64
	for i, f := range feats {
		within += sq(numeric.EuclideanDistance(f, classMean[d.Train.Y[i]]))
	}
	if within == 0 {
		return math.Inf(1)
	}
	return between / within
}

func sq(x float64) float64 { return x * x }

// TestCapabilityHelpsInDomain: higher capability should raise in-domain
// feature quality (via the uncorrupted preferred subspace).
func TestCapabilityHelpsInDomain(t *testing.T) {
	w := synth.NewWorld(42)
	d, err := datahub.Generate(w, datahub.Spec{
		Name: "cap/ds", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainTopic: 1},
		Classes: 2, Separability: 2, Noise: 2,
	}, datahub.Sizes{Train: 300, Val: 10, Test: 10})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Materialize(w, testModelSpec("cap/weak", map[string]float64{datahub.DomainTopic: 1}, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Materialize(w, testModelSpec("cap/strong", map[string]float64{datahub.DomainTopic: 1}, 0.95))
	if err != nil {
		t.Fatal(err)
	}
	if sw, ss := fisherScore(weak, d), fisherScore(strong, d); ss <= sw {
		t.Fatalf("strong capability %v not above weak %v", ss, sw)
	}
}

func TestCardContents(t *testing.T) {
	spec := testModelSpec("org/my-model", map[string]float64{datahub.DomainNLI: 1}, 0.5)
	spec.Upstream = []string{"mnli"}
	card := spec.Card()
	for _, want := range []string{"org/my-model", "bert", "mnli"} {
		if !strings.Contains(card, want) {
			t.Fatalf("card missing %q:\n%s", want, card)
		}
	}
}
