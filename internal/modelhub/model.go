// Package modelhub defines the model side of the synthetic world: the
// registry of pre-trained models (the paper's 40 NLP + 30 CV HuggingFace
// model names with their architecture/upstream metadata) and the simulated
// pre-trained model itself — a frozen nonlinear feature extractor plus a
// fixed source-label head, which together stand in for a transformer
// checkpoint (DESIGN.md §2).
package modelhub

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"twophase/internal/numeric"
	"twophase/internal/synth"
)

const (
	// FeatureDim is the width of the frozen feature extractor's output,
	// the space in which target heads are trained.
	FeatureDim = 48
	// PrefRank is the dimensionality of the subspace a model attends to
	// preferentially (its "knowledge"). Inputs outside this span only
	// reach the features through the weak generic pathway.
	PrefRank = 8
)

// Spec is the static metadata of a pre-trained model.
type Spec struct {
	// Name is the HuggingFace identifier from the paper's Table VIII.
	Name string
	// Task is "nlp" or "cv".
	Task string
	// Arch is the architecture family (bert, roberta, vit, beit, ...).
	Arch string
	// Params is the approximate parameter count in millions (for cards).
	Params int
	// Domains is the upstream-training domain mixture inferred from the
	// model's name and card, the latent driver of transferability.
	Domains map[string]float64
	// Capability in [0,1] captures generic feature quality: it raises
	// both the aligned gain and the generic pathway, so strong models
	// transfer broadly while weak ones only work near their domains.
	Capability float64
	// SourceClasses is the size of the upstream label space, over which
	// the source head predicts (used by LEEP).
	SourceClasses int
	// Upstream names the upstream/fine-tuning datasets (for cards).
	Upstream []string
}

// Model is a materialized simulated pre-trained model. Its extractor and
// source head are frozen; only target-task heads are trained online.
type Model struct {
	Spec

	prefDirs *numeric.Matrix // PrefRank x InputDim: the attended subspace
	wPref    *numeric.Matrix // FeatureDim x PrefRank: aligned pathway
	wGeneric *numeric.Matrix // FeatureDim x InputDim: generic pathway
	bias     []float64       // FeatureDim
	head     *numeric.Matrix // SourceClasses x FeatureDim: frozen source head

	gain, leak float64

	// Feature-extraction cache: input frame identity -> extracted
	// features. The extractor is frozen, so a given input frame always
	// maps to the same features; every selection strategy, candidate run
	// and round in a framework build shares one read-only extraction per
	// (model, split) instead of re-extracting it per trainer.Run. Keys
	// are the *numeric.Frame pointers a Dataset holds for its splits,
	// which are stable for the dataset's lifetime.
	featMu    sync.Mutex
	featCache map[*numeric.Frame]*featEntry
	featTick  uint64
}

// featEntry is one cached extraction with its LRU recency stamp. The
// frame materializes through once, outside the cache mutex, so a cache
// hit on one split never waits behind another split's in-flight
// extraction.
type featEntry struct {
	once  sync.Once
	frame *numeric.Frame
	tick  uint64
}

// featureCacheCap bounds how many split extractions one model retains —
// enough for two datasets' train/val/test plus headroom, which covers a
// full multi-strategy selection on a target while keeping the worst-case
// resident footprint per model at a few hundred KB.
const featureCacheCap = 8

// extractions counts full-split feature-extraction passes (cache misses)
// in this process, mirroring cluster.Passes: tests use it to prove that a
// framework build extracts each (model, split) exactly once no matter how
// many strategies and rounds consume it.
var extractions atomic.Int64

// Extractions reports how many split feature-extraction passes this
// process has executed so far.
func Extractions() int64 { return extractions.Load() }

// Materialize builds the frozen weights of a model inside the world.
// All randomness derives from (world seed, model name), so repeated calls
// return an identical model.
func Materialize(w *synth.World, spec Spec) (*Model, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("modelhub: model spec has empty name")
	}
	if spec.Capability < 0 || spec.Capability > 1 {
		return nil, fmt.Errorf("modelhub: model %q capability %v outside [0,1]", spec.Name, spec.Capability)
	}
	if spec.SourceClasses < 2 {
		return nil, fmt.Errorf("modelhub: model %q needs >= 2 source classes, got %d", spec.Name, spec.SourceClasses)
	}
	rng := numeric.NewNamedRNG(w.Seed, "model", spec.Name)
	mix := synth.WithCore(spec.Domains, spec.Task, 0.30)

	m := &Model{Spec: spec}
	m.prefDirs = w.MixtureDirections(mix, PrefRank, rng)
	// Low-capability models attend to a corrupted version of their domain
	// subspace: even on in-domain tasks their features capture less of the
	// discriminative structure. q is the retained alignment fraction.
	q := 0.45 + 0.55*spec.Capability
	for i := 0; i < m.prefDirs.Rows; i++ {
		row := m.prefDirs.Row(i)
		noise := rng.NormVec(synth.InputDim)
		numeric.Normalize(noise)
		for j := range row {
			row[j] = q*row[j] + (1-q)*noise[j]
		}
		numeric.Normalize(row)
	}
	m.wPref = numeric.RandomMatrix(rng, FeatureDim, PrefRank, 1.0/2.5)
	m.wGeneric = numeric.RandomMatrix(rng, FeatureDim, synth.InputDim, 1.0/5.0)
	m.bias = make([]float64, FeatureDim)
	for i := range m.bias {
		m.bias[i] = rng.Norm() * 0.1
	}
	m.gain = 0.9 + 0.9*spec.Capability
	m.leak = 0.10 + 0.35*spec.Capability

	// Source head: template matching against the model's upstream task.
	// A real checkpoint's classification head was trained on its upstream
	// dataset, so its predictions are informative about where an input
	// lies in the model's domain span — the property LEEP exploits. We
	// synthesize upstream class centers inside the model's (corrupted)
	// preferred subspace and use their feature embeddings as head rows.
	const upstreamSep = 2.2
	const headTemp = 1.5
	m.head = numeric.NewMatrix(spec.SourceClasses, FeatureDim)
	for z := 0; z < spec.SourceClasses; z++ {
		center := make([]float64, synth.InputDim)
		for j := 0; j < PrefRank; j++ {
			numeric.AddScaled(center, rng.Norm()*upstreamSep, m.prefDirs.Row(j))
		}
		feat := m.Features(center)
		row := m.head.Row(z)
		for i, f := range feat {
			row[i] = headTemp * f
		}
	}
	return m, nil
}

// Features computes the frozen representation phi(x) = tanh(gain*Wp(Px) +
// leak*Wg(x) + b). The caller owns the returned slice.
func (m *Model) Features(x []float64) []float64 {
	proj := make([]float64, PrefRank)
	m.prefDirs.MulVec(x, proj)

	aligned := make([]float64, FeatureDim)
	m.wPref.MulVec(proj, aligned)
	generic := make([]float64, FeatureDim)
	m.wGeneric.MulVec(x, generic)

	out := make([]float64, FeatureDim)
	for i := range out {
		out[i] = tanh(m.gain*aligned[i] + m.leak*generic[i] + m.bias[i])
	}
	return out
}

// FeatureBatch extracts features example by example through the
// single-vector path. It is the historical reference implementation —
// kept alive so bit-identity tests can compare the batched frame kernels
// against it — and allocates one row per example; hot paths use
// FeatureFrame instead.
func (m *Model) FeatureBatch(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Features(x)
	}
	return out
}

// FeatureFrame extracts features for every row of x through the batched
// frame kernels, caching the result by input-frame identity. The returned
// frame is shared and read-only: callers must not write through its rows.
// Every element is bit-identical to Features of the same row.
func (m *Model) FeatureFrame(x *numeric.Frame) *numeric.Frame {
	m.featMu.Lock()
	m.featTick++
	e, ok := m.featCache[x]
	if ok {
		e.tick = m.featTick
	} else {
		if m.featCache == nil {
			m.featCache = make(map[*numeric.Frame]*featEntry, featureCacheCap)
		}
		if len(m.featCache) >= featureCacheCap {
			var oldest *numeric.Frame
			var oldestTick uint64
			for k, prev := range m.featCache {
				if oldest == nil || prev.tick < oldestTick {
					oldest, oldestTick = k, prev.tick
				}
			}
			delete(m.featCache, oldest) // holders of the evicted frame keep it alive
		}
		e = &featEntry{tick: m.featTick}
		m.featCache[x] = e
	}
	m.featMu.Unlock()
	// Extraction runs outside the mutex: hits on other splits proceed
	// while this one materializes, and concurrent requesters of the same
	// split coalesce on the entry's once.
	e.once.Do(func() {
		extractions.Add(1)
		e.frame = m.extractFrame(x)
	})
	return e.frame
}

// extractFrame is the batched extractor: phi(X) = tanh(gain*Wp(P·X) +
// leak*Wg(X) + b) computed with contiguous matrix-matrix kernels. Each
// output element follows exactly the accumulation order of Features, so
// the two paths agree bit for bit.
func (m *Model) extractFrame(x *numeric.Frame) *numeric.Frame {
	n := x.N
	proj := numeric.NewFrame(n, PrefRank)
	m.prefDirs.MulFrame(x, proj)
	out := numeric.NewFrame(n, FeatureDim) // aligned pathway, fused in place below
	m.wPref.MulFrame(proj, out)
	generic := numeric.NewFrame(n, FeatureDim)
	m.wGeneric.MulFrame(x, generic)
	for i := 0; i < n; i++ {
		a, g := out.Row(i), generic.Row(i)
		for k, b := range m.bias {
			a[k] = tanh(m.gain*a[k] + m.leak*g[k] + b)
		}
	}
	return out
}

// SourceProbs returns the frozen source head's softmax distribution over
// the model's upstream label space, given already-extracted features.
// The caller owns the returned slice; hot loops should use
// SourceProbsInto or SourceProbsFrame to reuse buffers.
func (m *Model) SourceProbs(features []float64) []float64 {
	return m.SourceProbsInto(features, make([]float64, m.SourceClasses))
}

// SourceProbsInto writes the source head's softmax distribution into out
// (which must have length SourceClasses) and returns it.
func (m *Model) SourceProbsInto(features, out []float64) []float64 {
	m.head.MulVec(features, out)
	numeric.Softmax(out, out)
	return out
}

// SourceProbsFrame runs the source head over every feature row at once:
// out.Row(i) = softmax(head · feats.Row(i)). out must be feats.N x
// SourceClasses.
func (m *Model) SourceProbsFrame(feats, out *numeric.Frame) {
	m.head.MulFrame(feats, out)
	numeric.SoftmaxRows(out)
}

// Card renders a synthetic model card: the text stand-in for the
// HuggingFace card used by the Table I text-similarity baseline.
func (m *Model) Card() string { return m.Spec.Card() }

// Card renders the model card from spec metadata alone. Like a real
// HuggingFace card it mixes the informative parts (name, architecture,
// upstream datasets) with uploader-specific boilerplate — licenses,
// hyperparameter tables, disclaimers — whose wording varies per model.
// Crucially, the latent domain mixture is NOT written out: cards only
// carry the indirect evidence (names) that the Table I text baseline has
// access to in reality.
func (s Spec) Card() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", s.Name)
	fmt.Fprintf(&b, "Architecture: %s with approximately %dM parameters for %s tasks.\n", s.Arch, s.Params, s.Task)
	if len(s.Upstream) > 0 {
		fmt.Fprintf(&b, "This model was trained or fine-tuned on: %s.\n", strings.Join(s.Upstream, ", "))
	} else {
		b.WriteString("This is a general-purpose pre-trained checkpoint.\n")
	}
	fmt.Fprintf(&b, "Label space size: %d.\n", s.SourceClasses)

	// Deterministic per-model boilerplate: uploaders describe training
	// setups, licenses and caveats in their own words.
	rng := numeric.NewNamedRNG(0x6361726473, "card", s.Name) // "cards"
	licenses := []string{
		"Released under the apache 2.0 license.",
		"Licensed under mit terms, no warranty provided.",
		"Distributed under cc by sa 4.0, cite when reusing.",
		"License unspecified, contact the uploader before commercial use.",
	}
	setups := []string{
		"Trained with adamw optimizer, linear warmup schedule and gradient clipping.",
		"Fine tuning used batch size 32, sequence length 128 and early stopping on dev loss.",
		"Hyperparameters follow the original publication with minor learning rate adjustments.",
		"Training ran on a single gpu for several hours with mixed precision enabled.",
		"We used the default trainer settings from the transformers library.",
	}
	caveats := []string{
		"The model may reflect biases present in its training corpus.",
		"Evaluation numbers are reported on the hidden test split.",
		"Results can vary with random seed and tokenization choices.",
		"This checkpoint is provided for research purposes only.",
		"Further details and training logs are available in the repository.",
	}
	b.WriteString(licenses[rng.Intn(len(licenses))] + "\n")
	b.WriteString(setups[rng.Intn(len(setups))] + "\n")
	b.WriteString(caveats[rng.Intn(len(caveats))] + "\n")
	b.WriteString(caveats[rng.Intn(len(caveats))] + "\n")
	return b.String()
}

func tanh(x float64) float64 { return math.Tanh(x) }
