package modelhub

import (
	"sync"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/numeric"
	"twophase/internal/synth"
)

func cacheFixture(t *testing.T) (*Model, *datahub.Dataset) {
	t.Helper()
	w := synth.NewWorld(42)
	m, err := Materialize(w, testModelSpec("cache/model", map[string]float64{datahub.DomainNLI: 1}, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	d, err := datahub.Generate(w, datahub.Spec{
		Name: "cache/ds", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainNLI: 1},
		Classes: 3, Separability: 2, Noise: 1,
	}, datahub.Sizes{Train: 40, Val: 20, Test: 20})
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

// TestFeatureFrameMatchesFeaturesBitwise pins the tentpole invariant: the
// batched frame extractor must agree with the historical per-example
// path exactly — not approximately — on every element.
func TestFeatureFrameMatchesFeaturesBitwise(t *testing.T) {
	m, d := cacheFixture(t)
	for _, split := range []datahub.Split{d.Train, d.Val, d.Test} {
		frame := m.FeatureFrame(split.X)
		legacy := m.FeatureBatch(split.X.Rows2D())
		if frame.N != len(legacy) || frame.D != FeatureDim {
			t.Fatalf("frame shape %dx%d, legacy %dx%d", frame.N, frame.D, len(legacy), FeatureDim)
		}
		for i, row := range legacy {
			for j, want := range row {
				if got := frame.At(i, j); got != want {
					t.Fatalf("feature[%d][%d] = %x, legacy path %x", i, j, got, want)
				}
			}
		}
	}
}

// TestFeatureFrameCachedOnce: repeated extraction of the same split frame
// must hit the cache — same pointer back, exactly one extraction pass.
func TestFeatureFrameCachedOnce(t *testing.T) {
	m, d := cacheFixture(t)
	before := Extractions()
	first := m.FeatureFrame(d.Train.X)
	for i := 0; i < 5; i++ {
		if got := m.FeatureFrame(d.Train.X); got != first {
			t.Fatal("cache returned a different frame for the same split")
		}
	}
	if got := Extractions() - before; got != 1 {
		t.Fatalf("%d extraction passes for 6 lookups, want 1", got)
	}
}

// TestFeatureFrameLRUEviction: overflowing the per-model cache evicts the
// least recently used entry but never invalidates frames already handed
// out.
func TestFeatureFrameLRUEviction(t *testing.T) {
	m, _ := cacheFixture(t)
	frames := make([]*numeric.Frame, featureCacheCap+1)
	for i := range frames {
		frames[i] = numeric.NewFrame(3, synth.InputDim)
		frames[i].Data[0] = float64(i + 1)
	}
	out := make([]*numeric.Frame, len(frames))
	for i, f := range frames {
		out[i] = m.FeatureFrame(f)
	}
	// frames[0] is the LRU victim: re-requesting it must re-extract ...
	before := Extractions()
	again := m.FeatureFrame(frames[0])
	if got := Extractions() - before; got != 1 {
		t.Fatalf("evicted entry re-extraction passes = %d, want 1", got)
	}
	// ... to bit-identical contents, while the old handle stays usable.
	for j := range out[0].Data {
		if out[0].Data[j] != again.Data[j] {
			t.Fatal("re-extracted frame differs from the evicted one")
		}
	}
	// The most recent entries are still cached.
	before = Extractions()
	m.FeatureFrame(frames[len(frames)-1])
	if got := Extractions() - before; got != 0 {
		t.Fatalf("fresh entry missed the cache (%d passes)", got)
	}
}

// TestFeatureFrameConcurrent hammers one model's cache from many
// goroutines (the serving layer's pattern: parallel candidate training
// against shared models). Run with -race.
func TestFeatureFrameConcurrent(t *testing.T) {
	m, d := cacheFixture(t)
	want := m.FeatureFrame(d.Train.X)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := m.FeatureFrame(d.Train.X); got != want {
					panic("concurrent lookup returned a different frame")
				}
			}
		}()
	}
	wg.Wait()
}
