package modelhub

import (
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/synth"
)

func benchFixture(b *testing.B) (*Model, *datahub.Dataset) {
	b.Helper()
	w := synth.NewWorld(7)
	m, err := Materialize(w, Spec{
		Name: "bench/model", Task: datahub.TaskNLP, Arch: "bert", Params: 110,
		Domains:    map[string]float64{datahub.DomainNLI: 1},
		Capability: 0.7, SourceClasses: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	d, err := datahub.Generate(w, datahub.Spec{
		Name: "bench/ds", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainNLI: 1},
		Classes: 4, Separability: 2, Noise: 1,
	}, datahub.Sizes{})
	if err != nil {
		b.Fatal(err)
	}
	return m, d
}

// BenchmarkFeatureExtract measures one cold full-split extraction through
// the batched frame kernels (the per-build cost the cache amortizes away).
func BenchmarkFeatureExtract(b *testing.B) {
	m, d := benchFixture(b)
	b.SetBytes(int64(d.Train.Len() * FeatureDim * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.extractFrame(d.Train.X)
	}
}

// BenchmarkFeatureExtractLegacy is the historical per-example reference
// path, kept for before/after comparison in perf reports.
func BenchmarkFeatureExtractLegacy(b *testing.B) {
	m, d := benchFixture(b)
	rows := d.Train.X.Rows2D()
	b.SetBytes(int64(d.Train.Len() * FeatureDim * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FeatureBatch(rows)
	}
}

// BenchmarkFeatureFrameCached measures the steady-state cache hit — what
// every trainer.Run after the first actually pays.
func BenchmarkFeatureFrameCached(b *testing.B) {
	m, d := benchFixture(b)
	m.FeatureFrame(d.Train.X)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FeatureFrame(d.Train.X)
	}
}
