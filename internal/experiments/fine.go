package experiments

import (
	"context"

	"fmt"
	"math"
	"sort"

	"twophase/internal/cluster"
	"twophase/internal/datahub"
	"twophase/internal/numeric"
	"twophase/internal/recall"
	"twophase/internal/selection"
	"twophase/internal/trainer"
)

const mnliName = "LysandreJik/glue-mnli-train"

// fig4Model is the model whose per-benchmark convergence Fig. 4 plots.
const fig4Model = "DoyyingFace/bert-asian-hate-tweets-asian-unclean-freeze-4"

// recalledTop returns the coarse-recalled top-K models for a target.
func recalledTop(e *Env, task, dataset string, k int) ([]string, error) {
	fw, err := e.Framework(task)
	if err != nil {
		return nil, err
	}
	d, err := fw.Catalog.Get(dataset)
	if err != nil {
		return nil, err
	}
	opts := fw.Recall
	if k > 0 {
		opts.K = k
	}
	rr, err := recall.CoarseRecall(fw.Matrix, fw.Repo, d, opts, nil)
	if err != nil {
		return nil, err
	}
	return rr.Recalled, nil
}

// curvesTable renders per-epoch validation curves plus final test accuracy
// for a set of models on a dataset under the given hyperparameters.
func curvesTable(e *Env, title string, models []string, dataset string, hp trainer.Hyperparams) (*Table, error) {
	fw, err := e.Framework(datahub.TaskNLP)
	if err != nil {
		return nil, err
	}
	d, err := fw.Catalog.Get(dataset)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: title}
	t.Header = []string{"model"}
	for i := 0; i < hp.Epochs; i++ {
		t.Header = append(t.Header, fmt.Sprintf("val@%d", i+1))
	}
	t.Header = append(t.Header, "final test")

	type rec struct {
		name  string
		curve trainer.Curve
	}
	var recs []rec
	for _, name := range models {
		m, err := fw.Repo.Get(name)
		if err != nil {
			return nil, err
		}
		curve, err := trainer.FineTune(m, d, hp, e.Seed, "curves")
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec{name, curve})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].curve.FinalTest() > recs[j].curve.FinalTest() })

	// Correlation between epoch-1 validation and final test accuracy —
	// the early-stopping premise of §IV.A.
	var early, final []float64
	for _, r := range recs {
		cells := []interface{}{r.name}
		for _, v := range r.curve.Val {
			cells = append(cells, v)
		}
		cells = append(cells, r.curve.FinalTest())
		t.AddRow(cells...)
		early = append(early, r.curve.Val[0])
		final = append(final, r.curve.FinalTest())
	}
	t.Note("pearson(val@1, final test) = %.3f — early validation predicts final quality", numeric.PearsonCorrelation(early, final))
	return t, nil
}

// Fig3 reproduces Fig. 3: validation/test curves of the top-10 recalled
// models on MNLI at the default learning rate.
func Fig3(e *Env) (*Table, error) {
	top, err := recalledTop(e, datahub.TaskNLP, mnliName, 10)
	if err != nil {
		return nil, err
	}
	return curvesTable(e, "Fig. 3 — top-10 curves on MNLI (default lr)", top, mnliName, trainer.Default(datahub.TaskNLP))
}

// Fig8 reproduces appendix Fig. 8: the same models trained under the low
// learning rate, checking robustness to hyperparameters.
func Fig8(e *Env) (*Table, error) {
	top, err := recalledTop(e, datahub.TaskNLP, mnliName, 10)
	if err != nil {
		return nil, err
	}
	t, err := curvesTable(e, "Fig. 8 — top-10 curves on MNLI (low lr)", top, mnliName, trainer.LowLR(datahub.TaskNLP))
	if err != nil {
		return nil, err
	}
	// The appendix claims the method's outcome is consistent across the
	// two settings; verify by running fine-selection under both.
	fw, err := e.Framework(datahub.TaskNLP)
	if err != nil {
		return nil, err
	}
	d, err := fw.Catalog.Get(mnliName)
	if err != nil {
		return nil, err
	}
	cand, err := fw.Repo.Subset(top)
	if err != nil {
		return nil, err
	}
	for _, hp := range []struct {
		name string
		hp   trainer.Hyperparams
	}{
		{"default lr", trainer.Default(datahub.TaskNLP)},
		{"low lr", trainer.LowLR(datahub.TaskNLP)},
	} {
		out, err := selection.FineSelect(context.Background(), cand.Models(), d, selection.FineSelectOptions{
			Config: selection.Config{HP: hp.hp, Seed: e.Seed, Salt: "fig8-" + hp.name},
			Matrix: fw.Matrix,
		})
		if err != nil {
			return nil, err
		}
		t.Note("fine-selection under %s: winner %s, acc %.3f, %d epochs", hp.name, out.Winner, out.WinnerTest, out.Ledger.TrainEpochs())
	}
	return t, nil
}

// Fig4 reproduces Fig. 4: one model's validation/test accuracies over all
// benchmark datasets fall into a small number of convergence groups.
func Fig4(e *Env) (*Table, error) {
	fw, err := e.Framework(datahub.TaskNLP)
	if err != nil {
		return nil, err
	}
	lastStage := fw.HP.Epochs - 1
	trends, err := selection.TrendsAtStage(fw.Matrix, fig4Model, lastStage, selection.DefaultTrendClusters)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig. 4 — convergence groups of " + fig4Model,
		Header: []string{"group", "datasets", "mean val", "mean final test", "members"},
	}
	for i, tr := range trends {
		members := make([]string, len(tr.Members))
		for j, d := range tr.Members {
			members[j] = fw.Matrix.Datasets[d]
		}
		t.AddRow(fmt.Sprintf("G%d", i+1), len(tr.Members), tr.Val, tr.Test, joinTrunc(members, 3))
	}
	t.Note("the paper observes ~4 distinct convergence groups per model; groups here are mined by 1-D clustering of validation accuracy")
	return t, nil
}

// Fig6 reproduces Fig. 6: (blue) silhouette of first-validation trend
// clustering vs random clustering, and (red) leave-one-out relative error
// of trend-based final-test prediction vs predicting the global mean.
func Fig6(e *Env) (*Table, error) {
	fw, err := e.Framework(datahub.TaskNLP)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Fig. 6 — trend clustering quality and prediction error (NLP models)",
		Header: []string{"model", "sil(val)", "sil(random)", "relerr(trend)", "relerr(mean)"},
	}
	var silWins, errWins int
	for _, model := range fw.Matrix.Models {
		vals, finals, err := fw.Matrix.ValCurves(model)
		if err != nil {
			return nil, err
		}
		stage0 := make([]float64, len(vals))
		for i, c := range vals {
			stage0[i] = c[0]
		}
		// Silhouette of the 1-D validation clustering vs a random one.
		trends, err := selection.TrendsAtStage(fw.Matrix, model, 0, selection.DefaultTrendClusters)
		if err != nil {
			return nil, err
		}
		assign := make([]int, len(stage0))
		for g, tr := range trends {
			for _, i := range tr.Members {
				assign[i] = g
			}
		}
		points := make([][]float64, len(stage0))
		for i, v := range stage0 {
			points[i] = []float64{v}
		}
		valCl := cluster.Clustering{Assign: assign, K: len(trends)}
		silVal := cluster.Silhouette(points, valCl, cluster.Euclidean)
		rng := numeric.NewNamedRNG(e.Seed, "fig6-random", model)
		silRand := cluster.Silhouette(points, cluster.RandomClustering(len(stage0), len(trends), rng), cluster.Euclidean)

		// Leave-one-out prediction error: for each benchmark as pseudo-
		// target, predict its final test accuracy from the trend its
		// first validation matches (computed without it), vs predicting
		// the mean of the other benchmarks' finals.
		var errTrend, errMean []float64
		for hold := range stage0 {
			var trainVal, trainFinal []float64
			for i := range stage0 {
				if i != hold {
					trainVal = append(trainVal, stage0[i])
					trainFinal = append(trainFinal, finals[i])
				}
			}
			pred := looTrendPredict(trainVal, trainFinal, stage0[hold], selection.DefaultTrendClusters)
			actual := finals[hold]
			if actual == 0 {
				continue
			}
			errTrend = append(errTrend, math.Abs(pred-actual)/actual)
			errMean = append(errMean, math.Abs(numeric.Mean(trainFinal)-actual)/actual)
		}
		et, em := numeric.Mean(errTrend), numeric.Mean(errMean)
		t.AddRow(model, silVal, silRand, et, em)
		if silVal > silRand {
			silWins++
		}
		if et < em {
			errWins++
		}
	}
	n := len(fw.Matrix.Models)
	t.Note("validation clustering beats random clustering for %d/%d models", silWins, n)
	t.Note("trend prediction beats mean prediction for %d/%d models", errWins, n)
	return t, nil
}

// looTrendPredict clusters (val, final) training pairs by val and predicts
// the final of the cluster nearest to targetVal.
func looTrendPredict(vals, finals []float64, targetVal float64, c int) float64 {
	type vf struct{ v, f float64 }
	// Reuse selection's 1-D clustering through a tiny local shim: cluster
	// scalars by simple quantile k-means (same algorithm as TrendsAtStage).
	idx := numeric.ArgSortAsc(vals)
	if c > len(vals) {
		c = len(vals)
	}
	// quantile-partition into c groups as a deterministic approximation
	groups := make([][]vf, c)
	for rank, i := range idx {
		g := rank * c / len(idx)
		groups[g] = append(groups[g], vf{vals[i], finals[i]})
	}
	best, bestD := 0.0, math.Inf(1)
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		var mv, mf float64
		for _, p := range g {
			mv += p.v
			mf += p.f
		}
		mv /= float64(len(g))
		mf /= float64(len(g))
		if d := math.Abs(mv - targetVal); d < bestD {
			best, bestD = mf, d
		}
	}
	return best
}

// thresholdTargets are Table IV's four datasets.
var thresholdTargets = []struct{ task, dataset, label string }{
	{datahub.TaskNLP, mnliName, "MNLI"},
	{datahub.TaskNLP, "super_glue/multirc", "MultiRC"},
	{datahub.TaskCV, "nelorth/oxford-flowers", "Flowers"},
	{datahub.TaskCV, "trpakov/chest-xray-classification", "X-Ray"},
}

// Table4 reproduces Table IV: fine-selection accuracy and runtime under
// filtering thresholds 0%, 1%, 5%, 10%.
func Table4(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Table IV — filtering threshold sweep",
		Header: []string{"dataset", "metric", "0%", "1%", "5%", "10%"},
	}
	thresholds := []float64{0, 0.01, 0.05, 0.10}
	for _, tgt := range thresholdTargets {
		fw, err := e.Framework(tgt.task)
		if err != nil {
			return nil, err
		}
		d, err := fw.Catalog.Get(tgt.dataset)
		if err != nil {
			return nil, err
		}
		top, err := recalledTop(e, tgt.task, tgt.dataset, 10)
		if err != nil {
			return nil, err
		}
		cand, err := fw.Repo.Subset(top)
		if err != nil {
			return nil, err
		}
		accRow := []interface{}{tgt.label, "accuracy"}
		timeRow := []interface{}{tgt.label, "runtime"}
		for _, th := range thresholds {
			out, err := selection.FineSelect(context.Background(), cand.Models(), d, selection.FineSelectOptions{
				Config:    selection.Config{HP: fw.HP, Seed: e.Seed, Salt: "two-phase"},
				Matrix:    fw.Matrix,
				Threshold: th,
			})
			if err != nil {
				return nil, err
			}
			accRow = append(accRow, out.WinnerTest)
			timeRow = append(timeRow, out.Ledger.TrainEpochs())
		}
		t.AddRow(accRow...)
		t.AddRow(timeRow...)
	}
	t.Note("the paper's shape: larger thresholds never hurt accuracy but cost extra epochs")
	return t, nil
}

// allTargets enumerates the 8 evaluation targets with display labels.
var allTargets = []struct{ task, dataset, label string }{
	{datahub.TaskNLP, "tweet_eval", "Tweet"},
	{datahub.TaskNLP, mnliName, "MNLI"},
	{datahub.TaskNLP, "super_glue/multirc", "MultiRC"},
	{datahub.TaskNLP, "super_glue/boolq", "Boolq"},
	{datahub.TaskCV, "trpakov/chest-xray-classification", "X-Ray"},
	{datahub.TaskCV, "albertvillanova/medmnist-v2", "MedMNIST"},
	{datahub.TaskCV, "nelorth/oxford-flowers", "Flowers"},
	{datahub.TaskCV, "beans", "Beans"},
}

// Fig7 reproduces Fig. 7: the accuracy of the model selected by SH vs FS
// over the recalled top-10 and over the full repository, with the best and
// worst accuracies among the top-10 for context.
func Fig7(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Fig. 7 — selected-model accuracy, SH vs FS",
		Header: []string{"dataset", "pool", "SH acc", "FS acc", "best@10", "worst@10"},
	}
	var fsAtLeast int
	var cells int
	for _, tgt := range allTargets {
		fw, err := e.Framework(tgt.task)
		if err != nil {
			return nil, err
		}
		d, err := fw.Catalog.Get(tgt.dataset)
		if err != nil {
			return nil, err
		}
		oracle, err := e.Oracle(tgt.task, tgt.dataset)
		if err != nil {
			return nil, err
		}
		top, err := recalledTop(e, tgt.task, tgt.dataset, 10)
		if err != nil {
			return nil, err
		}
		var topAcc []float64
		for _, n := range top {
			topAcc = append(topAcc, oracle[n])
		}
		best10, worst10 := numeric.Max(topAcc), numeric.Min(topAcc)

		pools := []struct {
			label  string
			models []string
		}{
			{"top-10", top},
			{fmt.Sprintf("all-%d", fw.Repo.Len()), fw.Matrix.Models},
		}
		for _, pool := range pools {
			cand, err := fw.Repo.Subset(pool.models)
			if err != nil {
				return nil, err
			}
			sh, err := selection.SuccessiveHalving(context.Background(), cand.Models(), d, selection.Config{HP: fw.HP, Seed: e.Seed, Salt: "successive-halving"})
			if err != nil {
				return nil, err
			}
			fs, err := selection.FineSelect(context.Background(), cand.Models(), d, selection.FineSelectOptions{
				Config: selection.Config{HP: fw.HP, Seed: e.Seed, Salt: "two-phase"},
				Matrix: fw.Matrix,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(tgt.label, pool.label, sh.WinnerTest, fs.WinnerTest, best10, worst10)
			cells++
			if fs.WinnerTest >= sh.WinnerTest-0.01 {
				fsAtLeast++
			}
		}
	}
	t.Note("FS matches or beats SH (within 0.01) in %d/%d cells; both sit near best@10", fsAtLeast, cells)
	return t, nil
}

// Table5 reproduces Table V: runtime in epochs for BF, SH and FS over the
// recalled top-10 and the full repository, with speedups vs BF.
func Table5(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Table V — selection runtime (training epochs)",
		Header: []string{"dataset", "pool", "BF", "SH", "SH speedup", "FS", "FS speedup"},
	}
	for _, tgt := range allTargets {
		fw, err := e.Framework(tgt.task)
		if err != nil {
			return nil, err
		}
		d, err := fw.Catalog.Get(tgt.dataset)
		if err != nil {
			return nil, err
		}
		top, err := recalledTop(e, tgt.task, tgt.dataset, 10)
		if err != nil {
			return nil, err
		}
		pools := []struct {
			label  string
			models []string
		}{
			{"10", top},
			{fmt.Sprintf("%d", fw.Repo.Len()), fw.Matrix.Models},
		}
		for _, pool := range pools {
			cand, err := fw.Repo.Subset(pool.models)
			if err != nil {
				return nil, err
			}
			bfEpochs := len(pool.models) * fw.HP.Epochs
			sh, err := selection.SuccessiveHalving(context.Background(), cand.Models(), d, selection.Config{HP: fw.HP, Seed: e.Seed, Salt: "successive-halving"})
			if err != nil {
				return nil, err
			}
			fs, err := selection.FineSelect(context.Background(), cand.Models(), d, selection.FineSelectOptions{
				Config: selection.Config{HP: fw.HP, Seed: e.Seed, Salt: "two-phase"},
				Matrix: fw.Matrix,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(tgt.label, pool.label,
				bfEpochs,
				sh.Ledger.TrainEpochs(), fmt.Sprintf("%.2fx", float64(bfEpochs)/float64(sh.Ledger.TrainEpochs())),
				fs.Ledger.TrainEpochs(), fmt.Sprintf("%.2fx", float64(bfEpochs)/float64(fs.Ledger.TrainEpochs())))
		}
	}
	t.Note("the paper's shape: FS < SH < BF at both pool sizes, with FS's margin growing at larger pools")
	return t, nil
}
