package experiments

import (
	"fmt"
	"sort"

	"twophase/internal/cluster"
	"twophase/internal/datahub"
	"twophase/internal/numeric"
	"twophase/internal/recall"
	"twophase/internal/textsim"
)

// fig1Datasets mirrors the paper's Fig. 1 pair: the MNLI target for NLP
// and the CUB dataset for CV.
var fig1Datasets = map[string]string{
	datahub.TaskNLP: "LysandreJik/glue-mnli-train",
	datahub.TaskCV:  "alkzar90/CC6204-Hackaton-Cub-Dataset",
}

// Fig1 reproduces Fig. 1: fine-tuning accuracy of every repository model
// on one NLP and one CV dataset, sorted descending — demonstrating that
// well-suited models are markedly outnumbered by poor ones.
func Fig1(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Fig. 1 — accuracy of all models, sorted desc",
		Header: []string{"task", "dataset", "rank", "model", "accuracy"},
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		dsName := fig1Datasets[task]
		oracle, err := e.Oracle(task, dsName)
		if err != nil {
			return nil, err
		}
		type mv struct {
			name string
			acc  float64
		}
		var all []mv
		for n, a := range oracle {
			all = append(all, mv{n, a})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].acc != all[j].acc {
				return all[i].acc > all[j].acc
			}
			return all[i].name < all[j].name
		})
		for i, m := range all {
			t.AddRow(task, dsName, i, m.name, m.acc)
		}
		spread := all[0].acc - all[len(all)-1].acc
		median := all[len(all)/2].acc
		t.Note("%s: best %.3f, median %.3f, worst %.3f (spread %.3f) — few strong models, long weak tail",
			task, all[0].acc, median, all[len(all)-1].acc, spread)
	}
	return t, nil
}

// perfVectors extracts the performance vectors of a task's matrix into
// one contiguous frame and returns its row views.
func perfVectors(e *Env, task string) ([]string, [][]float64, error) {
	fw, err := e.Framework(task)
	if err != nil {
		return nil, nil, err
	}
	names := fw.Matrix.Models
	vecs := numeric.NewFrame(len(names), len(fw.Matrix.Datasets))
	for i, n := range names {
		v, err := fw.Matrix.Vector(n)
		if err != nil {
			return nil, nil, err
		}
		copy(vecs.Row(i), v)
	}
	return names, vecs.Rows2D(), nil
}

// cardVectors embeds every model card into one frame and returns its row
// views.
func cardVectors(e *Env, task string) ([][]float64, error) {
	fw, err := e.Framework(task)
	if err != nil {
		return nil, err
	}
	cards := make([]string, 0, len(fw.Matrix.Models))
	for _, name := range fw.Matrix.Models {
		m, err := fw.Repo.Get(name)
		if err != nil {
			return nil, err
		}
		cards = append(cards, m.Card())
	}
	return textsim.EmbedAll(cards).Rows2D(), nil
}

// Table1 reproduces Table I: performance-based vs text-based similarity
// under hierarchical clustering and k-means. All four clusterings are
// scored with the *behavioural* silhouette — Eq. 1 distance over
// performance vectors — because the question Table I answers is which
// similarity groups models that actually train alike (the paper's own
// reading: "models with similar model names may also vary").
func Table1(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Table I — clustering methods comparison (behavioural silhouette)",
		Header: []string{"similarity", "algorithm", "NLP", "CV"},
	}
	type cell struct{ sim, alg string }
	results := map[cell]map[string]float64{}
	add := func(sim, alg, task string, v float64) {
		c := cell{sim, alg}
		if results[c] == nil {
			results[c] = map[string]float64{}
		}
		results[c][task] = v
	}

	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		_, perf, err := perfVectors(e, task)
		if err != nil {
			return nil, err
		}
		cards, err := cardVectors(e, task)
		if err != nil {
			return nil, err
		}
		dist := cluster.TopKDistance(fw.Recall.SimilarityK)

		// Reference clustering fixes K so all four cells cluster at the
		// same granularity.
		ref := cluster.Agglomerative(perf, dist, fw.Recall.Threshold, 0)
		k := ref.K

		add("performance-based", "hierarchical", task,
			cluster.Silhouette(perf, ref, dist))
		km := cluster.KMeans(perf, k, numeric.NewNamedRNG(e.Seed, "tab1-kmeans-perf", task), 100)
		add("performance-based", "k-means", task,
			cluster.Silhouette(perf, km, dist))

		textHier := cluster.Agglomerative(cards, cluster.Cosine, 0, k)
		add("text-based", "hierarchical", task,
			cluster.Silhouette(perf, textHier, dist))
		textKM := cluster.KMeans(cards, k, numeric.NewNamedRNG(e.Seed, "tab1-kmeans-text", task), 100)
		add("text-based", "k-means", task,
			cluster.Silhouette(perf, textKM, dist))
	}

	for _, c := range []cell{
		{"performance-based", "hierarchical"},
		{"performance-based", "k-means"},
		{"text-based", "hierarchical"},
		{"text-based", "k-means"},
	} {
		t.AddRow(c.sim, c.alg, results[c][datahub.TaskNLP], results[c][datahub.TaskCV])
	}
	t.Note("paper's shape: performance-based beats text-based; hierarchical beats k-means on performance similarity")
	return t, nil
}

// Table2 reproduces Table II: the membership of every non-singleton model
// cluster under hierarchical clustering with Eq. 1 similarity.
func Table2(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Table II — non-singleton model clusters",
		Header: []string{"task", "cluster", "size", "members"},
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		names, vecs, err := perfVectors(e, task)
		if err != nil {
			return nil, err
		}
		dist := cluster.TopKDistance(fw.Recall.SimilarityK)
		cl := cluster.Agglomerative(vecs, dist, fw.Recall.Threshold, 0)
		id := 0
		covered := 0
		for _, g := range cl.NonSingletons() {
			id++
			members := make([]string, len(g))
			for i, idx := range g {
				members[i] = names[idx]
			}
			covered += len(g)
			t.AddRow(task, fmt.Sprintf("C%d", id), len(g), joinTrunc(members, 4))
		}
		t.Note("%s: %d non-singleton clusters covering %d/%d models", task, id, covered, len(names))
	}
	return t, nil
}

func joinTrunc(items []string, max int) string {
	if len(items) <= max {
		return join(items)
	}
	return join(items[:max]) + fmt.Sprintf(", ... (+%d)", len(items)-max)
}

func join(items []string) string {
	out := ""
	for i, s := range items {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// Table3 reproduces Table III: models in non-singleton clusters have
// higher average benchmark accuracy and contribute nearly all per-dataset
// best models.
func Table3(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Table III — singleton vs non-singleton cluster performance",
		Header: []string{"task", "cluster type", "avg(acc)", "no. maximum(acc)"},
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		names, vecs, err := perfVectors(e, task)
		if err != nil {
			return nil, err
		}
		dist := cluster.TopKDistance(fw.Recall.SimilarityK)
		cl := cluster.Agglomerative(vecs, dist, fw.Recall.Threshold, 0)

		inNonSingleton := make([]bool, len(names))
		for _, g := range cl.NonSingletons() {
			for _, i := range g {
				inNonSingleton[i] = true
			}
		}

		var nsAcc, sAcc []float64
		for i := range names {
			avg := numeric.Mean(vecs[i])
			if inNonSingleton[i] {
				nsAcc = append(nsAcc, avg)
			} else {
				sAcc = append(sAcc, avg)
			}
		}
		// count of per-benchmark best models per cluster type
		nsBest, sBest := 0, 0
		for d := range fw.Matrix.Datasets {
			best, bestAcc := -1, -1.0
			for i := range names {
				if vecs[i][d] > bestAcc {
					best, bestAcc = i, vecs[i][d]
				}
			}
			if inNonSingleton[best] {
				nsBest++
			} else {
				sBest++
			}
		}
		t.AddRow(task, "non-singleton", numeric.Mean(nsAcc), nsBest)
		t.AddRow(task, "singleton", numeric.Mean(sAcc), sBest)
	}
	t.Note("paper's shape: non-singleton clusters hold the stronger models and almost all per-benchmark maxima")
	return t, nil
}

// Fig5 reproduces Fig. 5: the average ground-truth accuracy of the top-K
// recalled models under coarse recall vs random recall, for each target.
func Fig5(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Fig. 5 — avg accuracy of recalled models (coarse vs random)",
		Header: []string{"task", "dataset", "K", "coarse-recall", "random-recall"},
	}
	const randomDraws = 20
	wins, cells := 0, 0
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		targets, err := e.Targets(task)
		if err != nil {
			return nil, err
		}
		for _, d := range targets {
			oracle, err := e.Oracle(task, d.Name)
			if err != nil {
				return nil, err
			}
			opts := fw.Recall
			opts.K = fw.Repo.Len() // rank everything once, slice per K
			rr, err := recall.CoarseRecall(fw.Matrix, fw.Repo, d, opts, nil)
			if err != nil {
				return nil, err
			}
			for _, k := range []int{3, 5, 10, 15, 20} {
				var coarse []float64
				for _, n := range rr.Recalled[:k] {
					coarse = append(coarse, oracle[n])
				}
				var random []float64
				for r := 0; r < randomDraws; r++ {
					rng := numeric.NewNamedRNG(e.Seed, "fig5-random", d.Name, fmt.Sprint(r))
					for _, n := range recall.RandomRecall(fw.Matrix, k, rng) {
						random = append(random, oracle[n])
					}
				}
				c, rd := numeric.Mean(coarse), numeric.Mean(random)
				t.AddRow(task, d.Name, k, c, rd)
				cells++
				if c > rd {
					wins++
				}
			}
		}
	}
	t.Note("coarse-recall beats random-recall in %d/%d (dataset, K) cells", wins, cells)
	return t, nil
}

// TableX reproduces appendix Table X: the silhouette coefficient of
// hierarchical clustering as Eq. 1's parameter k varies.
func TableX(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Appendix Table X — Eq. 1 parameter k selection",
		Header: []string{"task", "k", "silhouette"},
	}
	ks := map[string][]int{
		datahub.TaskNLP: {5, 10, 15},
		datahub.TaskCV:  {3, 4, 5},
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		_, vecs, err := perfVectors(e, task)
		if err != nil {
			return nil, err
		}
		for _, k := range ks[task] {
			dist := cluster.TopKDistance(k)
			cl := cluster.Agglomerative(vecs, dist, fw.Recall.Threshold, 0)
			t.AddRow(task, k, cluster.Silhouette(vecs, cl, dist))
		}
	}
	t.Note("the paper finds the silhouette fluctuates within an acceptable range and fixes k=5")
	return t, nil
}
