package experiments

import (
	"context"

	"twophase/internal/cluster"
	"twophase/internal/datahub"
	"twophase/internal/numeric"
	"twophase/internal/proxy"
	"twophase/internal/recall"
	"twophase/internal/selection"
)

// recallQuality computes the mean ground-truth accuracy of the recalled
// top-10 averaged over a task's four targets, for a recall options preset.
func recallQuality(e *Env, task string, opts recall.Options) (avgAcc float64, scored int, err error) {
	fw, err := e.Framework(task)
	if err != nil {
		return 0, 0, err
	}
	targets, err := e.Targets(task)
	if err != nil {
		return 0, 0, err
	}
	var accs []float64
	for _, d := range targets {
		oracle, err := e.Oracle(task, d.Name)
		if err != nil {
			return 0, 0, err
		}
		rr, err := recall.CoarseRecall(fw.Matrix, fw.Repo, d, opts, nil)
		if err != nil {
			return 0, 0, err
		}
		for _, n := range rr.Recalled {
			accs = append(accs, oracle[n])
		}
		scored += rr.ScoredModels
	}
	return numeric.Mean(accs), scored / len(targets), nil
}

// AblationTopK compares Eq. 1's top-k distance against plain Euclidean
// distance inside the recall clustering.
func AblationTopK(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Ablation — Eq. 1 top-k distance vs Euclidean",
		Header: []string{"task", "distance", "silhouette", "avg recalled acc"},
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		_, vecs, err := perfVectors(e, task)
		if err != nil {
			return nil, err
		}
		// Top-k (the paper's choice).
		topk := cluster.TopKDistance(fw.Recall.SimilarityK)
		clTopK := cluster.Agglomerative(vecs, topk, fw.Recall.Threshold, 0)
		accTopK, _, err := recallQuality(e, task, fw.Recall)
		if err != nil {
			return nil, err
		}
		t.AddRow(task, "top-k", cluster.Silhouette(vecs, clTopK, topk), accTopK)

		// Euclidean at matched granularity: cut to the same cluster count.
		clEuc := cluster.Agglomerative(vecs, cluster.Euclidean, 0, clTopK.K)
		// Recall with Euclidean requires a distance swap; approximate by
		// scaling the threshold so granularity matches (we reuse the
		// matched-K clustering's silhouette as the comparable number).
		t.AddRow(task, "euclidean", cluster.Silhouette(vecs, clEuc, cluster.Euclidean), "-")
	}
	t.Note("top-k filters benchmarks where all models perform alike; Euclidean dilutes the discriminative benchmarks")
	return t, nil
}

// AblationRepresentative compares representative-only proxy scoring
// against scoring every repository model directly: quality vs inference
// cost.
func AblationRepresentative(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Ablation — representative scoring vs scoring all models",
		Header: []string{"task", "strategy", "avg recalled acc", "proxy inferences"},
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		// Representative-only (the framework's strategy).
		repAcc, repScored, err := recallQuality(e, task, fw.Recall)
		if err != nil {
			return nil, err
		}
		t.AddRow(task, "cluster representatives", repAcc, repScored)

		// Score-everything baseline.
		targets, err := e.Targets(task)
		if err != nil {
			return nil, err
		}
		var accs []float64
		for _, d := range targets {
			oracle, err := e.Oracle(task, d.Name)
			if err != nil {
				return nil, err
			}
			scores, err := recall.BruteForceScores(fw.Repo, d, fw.Recall.Scorer, nil)
			if err != nil {
				return nil, err
			}
			// recall score = avgAcc * proxy, as Eq. 2, over every model
			names := fw.Matrix.Models
			vals := make([]float64, len(names))
			for i, n := range names {
				avg, err := fw.Matrix.AvgAcc(n)
				if err != nil {
					return nil, err
				}
				vals[i] = avg * scores[n]
			}
			for _, i := range numeric.ArgSortDesc(vals)[:10] {
				accs = append(accs, oracle[names[i]])
			}
		}
		t.AddRow(task, "score all models", numeric.Mean(accs), fw.Repo.Len())
	}
	t.Note("representative scoring costs a fraction of the inference passes at comparable recall quality — the O(|MC|) vs O(|M|) claim of §III.A")
	return t, nil
}

// AblationTrendFilter measures what the convergence-trend filter adds over
// plain halving inside fine-selection.
func AblationTrendFilter(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Ablation — convergence-trend filter on/off",
		Header: []string{"dataset", "variant", "epochs", "accuracy"},
	}
	for _, tgt := range allTargets {
		fw, err := e.Framework(tgt.task)
		if err != nil {
			return nil, err
		}
		d, err := fw.Catalog.Get(tgt.dataset)
		if err != nil {
			return nil, err
		}
		top, err := recalledTop(e, tgt.task, tgt.dataset, 10)
		if err != nil {
			return nil, err
		}
		cand, err := fw.Repo.Subset(top)
		if err != nil {
			return nil, err
		}
		for _, variant := range []struct {
			label   string
			disable bool
		}{
			{"with trend filter", false},
			{"halving only", true},
		} {
			out, err := selection.FineSelect(context.Background(), cand.Models(), d, selection.FineSelectOptions{
				Config:             selection.Config{HP: fw.HP, Seed: e.Seed, Salt: "two-phase"},
				Matrix:             fw.Matrix,
				DisableTrendFilter: variant.disable,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(tgt.label, variant.label, out.Ledger.TrainEpochs(), out.WinnerTest)
		}
	}
	t.Note("the trend filter saves epochs at equal (or better) selected accuracy — the source of FS's gain over SH")
	return t, nil
}

// AblationProxy compares proxy scorers inside coarse recall.
func AblationProxy(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Ablation — proxy scorer choice in coarse recall",
		Header: []string{"task", "scorer", "avg recalled acc"},
	}
	scorers := []proxy.Scorer{
		proxy.CalibratedLEEP{},
		proxy.LEEP{},
		proxy.NCE{},
		proxy.KNN{},
		proxy.Ensemble{Scorers: []proxy.Scorer{proxy.CalibratedLEEP{}, proxy.KNN{}}},
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		for _, s := range scorers {
			opts := fw.Recall
			opts.Scorer = s
			acc, _, err := recallQuality(e, task, opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(task, s.Name(), acc)
		}
	}
	t.Note("calibrated LEEP is the default; the ensemble implements §VII's multi-proxy future-work direction")
	return t, nil
}
