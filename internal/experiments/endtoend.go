package experiments

import (
	"context"

	"fmt"
	"sort"

	"twophase/internal/numeric"
	"twophase/internal/recall"
)

// Table6 reproduces Table VI: end-to-end runtime (including the proxy
// inference charge) and selected-model accuracy of the two-phase pipeline
// vs brute force and successive halving over the full repository.
func Table6(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Table VI — end-to-end comparison",
		Header: []string{"dataset", "2PH epochs", "vs BF", "vs SH", "BF acc", "SH acc", "2PH acc"},
	}
	var worstGap float64
	for _, tgt := range allTargets {
		fw, err := e.Framework(tgt.task)
		if err != nil {
			return nil, err
		}
		d, err := fw.Catalog.Get(tgt.dataset)
		if err != nil {
			return nil, err
		}
		report, err := fw.Select(context.Background(), d)
		if err != nil {
			return nil, err
		}
		bf, err := fw.BruteForce(context.Background(), d)
		if err != nil {
			return nil, err
		}
		sh, err := fw.SuccessiveHalving(context.Background(), d)
		if err != nil {
			return nil, err
		}
		twoPhase := report.TotalEpochs()
		t.AddRow(tgt.label,
			fmt.Sprintf("%.1f", twoPhase),
			fmt.Sprintf("%.2fx", float64(bf.Ledger.TrainEpochs())/twoPhase),
			fmt.Sprintf("%.2fx", float64(sh.Ledger.TrainEpochs())/twoPhase),
			bf.WinnerTest, sh.WinnerTest, report.Outcome.WinnerTest)
		if gap := bf.WinnerTest - report.Outcome.WinnerTest; gap > worstGap {
			worstGap = gap
		}
	}
	t.Note("two-phase selection runs several-fold faster than SH and BF while staying near BF accuracy (worst gap %.3f)", worstGap)
	return t, nil
}

// Table7 reproduces Table VII: for each target, the ground-truth best
// model, its accuracy, its rank within the recalled set when sorted by
// proxy score, and the average accuracy of the recalled models.
func Table7(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Table VII — case study of recalled best models",
		Header: []string{"dataset", "best model", "acc", "R@CR", "avg acc (recalled)"},
	}
	for _, tgt := range allTargets {
		fw, err := e.Framework(tgt.task)
		if err != nil {
			return nil, err
		}
		d, err := fw.Catalog.Get(tgt.dataset)
		if err != nil {
			return nil, err
		}
		oracle, err := e.Oracle(tgt.task, tgt.dataset)
		if err != nil {
			return nil, err
		}
		rr, err := recall.CoarseRecall(fw.Matrix, fw.Repo, d, fw.Recall, nil)
		if err != nil {
			return nil, err
		}

		// Ground-truth best among the *recalled* models (the model the
		// fine-selection phase could at best pick), mirroring the paper's
		// "best selected model" per target.
		best, bestAcc := "", -1.0
		var recAcc []float64
		for _, n := range rr.Recalled {
			recAcc = append(recAcc, oracle[n])
			if oracle[n] > bestAcc {
				best, bestAcc = n, oracle[n]
			}
		}
		// Rank of the best model when recalled models sort by proxy score.
		type ps struct {
			name  string
			proxy float64
		}
		var byProxy []ps
		for _, n := range rr.Recalled {
			byProxy = append(byProxy, ps{n, rr.ProxyScores[n]})
		}
		sort.SliceStable(byProxy, func(i, j int) bool { return byProxy[i].proxy > byProxy[j].proxy })
		rank := -1
		for i, p := range byProxy {
			if p.name == best {
				rank = i
				break
			}
		}
		t.AddRow(tgt.label, best, bestAcc, rank, numeric.Mean(recAcc))
	}
	t.Note("best recalled models rank high by proxy score and beat the recalled average, including on out-of-domain targets (medical imaging)")
	return t, nil
}
