package experiments

import (
	"context"

	"fmt"

	"twophase/internal/cluster"
	"twophase/internal/datahub"
	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
	"twophase/internal/selection"
	"twophase/internal/synth"
)

// ExtEnsemble evaluates §VII's multi-model extension: ensemble the top-3
// fine-selection survivors by soft voting and compare against the single
// selected model on every target.
func ExtEnsemble(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Extension — ensemble selection (k=3 soft voting)",
		Header: []string{"dataset", "single acc", "ensemble acc", "best member", "epochs single", "epochs ensemble"},
	}
	const k = 3
	var lifted int
	for _, tgt := range allTargets {
		fw, err := e.Framework(tgt.task)
		if err != nil {
			return nil, err
		}
		d, err := fw.Catalog.Get(tgt.dataset)
		if err != nil {
			return nil, err
		}
		top, err := recalledTop(e, tgt.task, tgt.dataset, 10)
		if err != nil {
			return nil, err
		}
		cand, err := fw.Repo.Subset(top)
		if err != nil {
			return nil, err
		}
		opts := selection.FineSelectOptions{
			Config: selection.Config{HP: fw.HP, Seed: e.Seed, Salt: "two-phase"},
			Matrix: fw.Matrix,
		}
		single, err := selection.FineSelect(context.Background(), cand.Models(), d, opts)
		if err != nil {
			return nil, err
		}
		ens, err := selection.EnsembleSelect(context.Background(), cand.Models(), d, opts, k)
		if err != nil {
			return nil, err
		}
		t.AddRow(tgt.label, single.WinnerTest, ens.EnsembleTest, ens.BestSingleTest,
			single.Ledger.TrainEpochs(), ens.Ledger.TrainEpochs())
		if ens.EnsembleTest >= single.WinnerTest {
			lifted++
		}
	}
	t.Note("ensemble matches or lifts the single selection on %d/%d targets at the cost of training %d survivors to budget", lifted, len(allTargets), k)
	return t, nil
}

// ExtRobustness repeats the end-to-end comparison across three world
// seeds and reports mean and spread — checking that the headline speedups
// and near-BF accuracy are not artifacts of one random world.
func ExtRobustness(*Env) (*Table, error) {
	t := &Table{
		Title:  "Extension — end-to-end robustness across world seeds",
		Header: []string{"dataset", "2PH epochs (mean±sd)", "speedup vs BF (mean)", "acc gap vs BF (mean)"},
	}
	seeds := []uint64{42, 43, 44}
	type agg struct {
		epochs, speedup, gap []float64
	}
	byTarget := map[string]*agg{}
	var order []string

	for _, seed := range seeds {
		env := NewEnv(seed)
		for _, tgt := range allTargets {
			fw, err := env.Framework(tgt.task)
			if err != nil {
				return nil, err
			}
			d, err := fw.Catalog.Get(tgt.dataset)
			if err != nil {
				return nil, err
			}
			report, err := fw.Select(context.Background(), d)
			if err != nil {
				return nil, err
			}
			bf, err := fw.BruteForce(context.Background(), d)
			if err != nil {
				return nil, err
			}
			a := byTarget[tgt.label]
			if a == nil {
				a = &agg{}
				byTarget[tgt.label] = a
				order = append(order, tgt.label)
			}
			a.epochs = append(a.epochs, report.TotalEpochs())
			a.speedup = append(a.speedup, float64(bf.Ledger.TrainEpochs())/report.TotalEpochs())
			a.gap = append(a.gap, bf.WinnerTest-report.Outcome.WinnerTest)
		}
	}

	var worstGap float64
	for _, label := range order {
		a := byTarget[label]
		t.AddRow(label,
			fmt.Sprintf("%.1f±%.1f", numeric.Mean(a.epochs), numeric.StdDev(a.epochs)),
			fmt.Sprintf("%.2fx", numeric.Mean(a.speedup)),
			fmt.Sprintf("%+.3f", numeric.Mean(a.gap)))
		if g := numeric.Mean(a.gap); g > worstGap {
			worstGap = g
		}
	}
	t.Note("across seeds %v the speedup stays several-fold and the worst mean accuracy gap vs BF is %.3f", seeds, worstGap)
	return t, nil
}

// AblationSubsetMatrix verifies §III.A's claim that "the training
// performance on a subset of training data with relative small size could
// be enough": rebuild the offline matrix with half and a quarter of the
// training examples and measure how stable the model clustering stays
// (adjusted Rand index against the full-data clustering).
func AblationSubsetMatrix(e *Env) (*Table, error) {
	t := &Table{
		Title:  "Ablation — offline matrix from reduced training data",
		Header: []string{"task", "train fraction", "ARI vs full", "non-singleton clusters"},
	}
	fractions := []float64{1.0, 0.5, 0.25}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		fw, err := e.Framework(task)
		if err != nil {
			return nil, err
		}
		dist := cluster.TopKDistance(fw.Recall.SimilarityK)
		clusterOf := func(m *perfmatrix.Matrix) (cluster.Clustering, error) {
			vecs := make([][]float64, len(m.Models))
			for i, n := range m.Models {
				v, err := m.Vector(n)
				if err != nil {
					return cluster.Clustering{}, err
				}
				vecs[i] = v
			}
			return cluster.Agglomerative(vecs, dist, fw.Recall.Threshold, 0), nil
		}
		full, err := clusterOf(fw.Matrix)
		if err != nil {
			return nil, err
		}
		for _, frac := range fractions {
			var cl cluster.Clustering
			if frac == 1.0 {
				cl = full
			} else {
				sizes := datahub.DefaultSizes
				sizes.Train = int(float64(sizes.Train) * frac)
				w := synth.NewWorld(e.Seed)
				cat, err := datahub.NewTaskCatalog(w, task, sizes)
				if err != nil {
					return nil, err
				}
				m, err := perfmatrix.Build(fw.Repo, cat.Benchmarks(), fw.HP, e.Seed, 0)
				if err != nil {
					return nil, err
				}
				cl, err = clusterOf(m)
				if err != nil {
					return nil, err
				}
			}
			t.AddRow(task, frac, cluster.AdjustedRandIndex(full, cl), len(cl.NonSingletons()))
		}
	}
	t.Note("§III.A claims a small training subset suffices; here half the data retains partial cluster structure (ARI ~0.15-0.45) and a quarter degrades it — the synthetic probe curves are noisier than real fine-tuning, so this bound is conservative")
	return t, nil
}
