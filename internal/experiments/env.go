// Package experiments regenerates every table and figure of the paper's
// evaluation (§V and the appendix) on top of the synthetic substrate. Each
// experiment is a pure function of a shared Env fixture and returns a
// Table whose rows mirror the paper's artifact; EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
package experiments

import (
	"context"

	"fmt"
	"sync"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

// DefaultSeed is the world seed used across the evaluation.
const DefaultSeed = 42

// Env is the shared fixture: one built framework per task family plus a
// cache of oracle (brute-force ground truth) accuracies per target.
type Env struct {
	Seed uint64

	mu     sync.Mutex
	fw     map[string]*core.Framework
	oracle map[string]map[string]float64 // task+"\x00"+dataset -> model -> acc
}

// NewEnv returns a lazy environment; frameworks build on first use.
func NewEnv(seed uint64) *Env {
	return &Env{
		Seed:   seed,
		fw:     make(map[string]*core.Framework),
		oracle: make(map[string]map[string]float64),
	}
}

// Framework returns (building if necessary) the framework for a task.
func (e *Env) Framework(task string) (*core.Framework, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if fw, ok := e.fw[task]; ok {
		return fw, nil
	}
	fw, err := core.Build(core.Options{Task: task, Seed: e.Seed})
	if err != nil {
		return nil, err
	}
	e.fw[task] = fw
	return fw, nil
}

// Oracle returns the cached brute-force ground-truth accuracy of every
// repository model on the named dataset (which may be a target or a
// benchmark).
func (e *Env) Oracle(task, dataset string) (map[string]float64, error) {
	fw, err := e.Framework(task)
	if err != nil {
		return nil, err
	}
	key := task + "\x00" + dataset
	e.mu.Lock()
	if o, ok := e.oracle[key]; ok {
		e.mu.Unlock()
		return o, nil
	}
	e.mu.Unlock()

	d, err := fw.Catalog.Get(dataset)
	if err != nil {
		return nil, err
	}
	o, err := fw.OracleAccuracies(context.Background(), d)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.oracle[key] = o
	e.mu.Unlock()
	return o, nil
}

// Targets returns the four evaluation targets of a task family.
func (e *Env) Targets(task string) ([]*datahub.Dataset, error) {
	fw, err := e.Framework(task)
	if err != nil {
		return nil, err
	}
	return fw.Catalog.Targets(), nil
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	// ID matches DESIGN.md's experiment index (fig1, tab5, ...).
	ID string
	// Paper names the reproduced artifact.
	Paper string
	// Run regenerates the artifact.
	Run func(*Env) (*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Fig. 1: fine-tuning accuracy spread across the repository", Fig1},
		{"tab1", "Table I: clustering methods comparison (silhouette)", Table1},
		{"tab2", "Table II: model clustering memberships", Table2},
		{"tab3", "Table III: singleton vs non-singleton performance", Table3},
		{"fig3", "Fig. 3: top-10 validation/test curves on MNLI", Fig3},
		{"fig4", "Fig. 4: one model's convergence groups over benchmarks", Fig4},
		{"fig5", "Fig. 5: recalled-model accuracy, coarse vs random recall", Fig5},
		{"fig6", "Fig. 6: trend clustering quality and prediction error", Fig6},
		{"tab4", "Table IV: fine-selection filtering threshold sweep", Table4},
		{"fig7", "Fig. 7: selected-model accuracy, SH vs FS", Fig7},
		{"tab5", "Table V: selection runtime, BF vs SH vs FS", Table5},
		{"tab6", "Table VI: end-to-end comparison (2PH vs BF vs SH)", Table6},
		{"tab7", "Table VII: case study of recalled best models", Table7},
		{"fig8", "Fig. 8: MNLI curves under the low learning rate", Fig8},
		{"tabX", "Appendix Table X: Eq. 1 parameter k selection", TableX},
		{"ablTopK", "Ablation: Eq. 1 top-k distance vs Euclidean", AblationTopK},
		{"ablRep", "Ablation: representative scoring vs scoring all models", AblationRepresentative},
		{"ablTrend", "Ablation: convergence-trend filter on/off", AblationTrendFilter},
		{"ablProxy", "Ablation: proxy scorer choice in coarse recall", AblationProxy},
		{"ablSubset", "Ablation: offline matrix from reduced training data (§III.A)", AblationSubsetMatrix},
		{"extEnsemble", "Extension: top-3 soft-voting ensemble selection (§VII)", ExtEnsemble},
		{"extRobust", "Extension: end-to-end robustness across world seeds", ExtRobustness},
		{"extLSQ", "Extension: zero-epoch lsq proxy stage + recall pre-filter", ExtLSQ},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, ex := range All() {
		if ex.ID == id {
			return ex, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
