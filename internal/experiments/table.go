package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a rendered experiment artifact: a title, a header row, data
// rows, and free-form notes (the qualitative claims to check against the
// paper).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
		sep := make([]string, len(t.Header))
		for i, h := range t.Header {
			sep[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(tw, strings.Join(sep, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
