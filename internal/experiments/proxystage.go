package experiments

// The zero-epoch lsq extension: how often does the closed-form
// least-squares proxy stage — alone, or as a pre-filter in front of the
// epoch-trained strategies — land on the same winner the full two-phase
// pipeline trains its way to, and at what fraction of the epoch cost?

import (
	"context"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

// extPrefilterK is the pre-filter width the experiment measures at —
// the same top-4 cut the bench smoke gates.
const extPrefilterK = 4

// ExtLSQ builds the winner-agreement-vs-epochs table across both task
// families: the epoch-trained two-phase baseline against the zero-epoch
// lsq strategy, prefiltered two-phase, and prefiltered SH. Strategy names
// go through core.ParseStrategy — the same single parser every serving
// layer validates against — so the harness can never accept a wire name
// the API would reject.
func ExtLSQ(e *Env) (*Table, error) {
	t := &Table{
		Title: "Extension — zero-epoch lsq proxy stage and recall pre-filter",
		Header: []string{"dataset", "2PH winner", "2PH ep",
			"lsq", "lsq ep", "pre-2PH", "pre-2PH ep", "pre-SH", "pre-SH ep"},
	}
	ctx := context.Background()
	variants := []struct {
		key  string // agreement-counter key and display name
		wire string // strategy wire name, parsed by core.ParseStrategy
		topK int
	}{
		{"lsq", "lsq", 0},
		{"pre-2PH", "two-phase", extPrefilterK},
		{"pre-SH", "sh", extPrefilterK},
	}
	agree := map[string]map[string]int{} // task -> variant key -> count
	totals := map[string]int{}           // task -> targets
	for _, tgt := range allTargets {
		fw, err := e.Framework(tgt.task)
		if err != nil {
			return nil, err
		}
		d, err := fw.Catalog.Get(tgt.dataset)
		if err != nil {
			return nil, err
		}
		baseline, err := fw.Select(ctx, d)
		if err != nil {
			return nil, err
		}
		if agree[tgt.task] == nil {
			agree[tgt.task] = map[string]int{}
		}
		totals[tgt.task]++
		row := []interface{}{tgt.label, baseline.Outcome.Winner, baseline.Ledger.TrainEpochs()}
		for _, v := range variants {
			strat, err := core.ParseStrategy(v.wire)
			if err != nil {
				return nil, err
			}
			report, err := fw.SelectWith(ctx, d, core.SelectOptions{Strategy: strat, PrefilterTopK: v.topK})
			if err != nil {
				return nil, err
			}
			mark := "diff"
			if report.Outcome.Winner == baseline.Outcome.Winner {
				mark = "same"
				agree[tgt.task][v.key]++
			}
			row = append(row, mark, report.Ledger.TrainEpochs())
		}
		t.AddRow(row...)
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		n := totals[task]
		if n == 0 {
			continue
		}
		t.Note("%s winner agreement vs two-phase: lsq %d/%d, prefiltered two-phase %d/%d, prefiltered SH %d/%d (top-%d)",
			task, agree[task]["lsq"], n, agree[task]["pre-2PH"], n, agree[task]["pre-SH"], n, extPrefilterK)
	}
	t.Note("lsq answers with zero training epochs (proxy-inference cost only); the pre-filter caps the pool the epoch strategies must train")
	return t, nil
}
