package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	sharedE *Env
)

// sharedEnv builds one environment per test binary; experiments only read
// from it (plus append to its oracle cache, which is mutex-guarded).
func sharedEnv() *Env {
	envOnce.Do(func() { sharedE = NewEnv(DefaultSeed) })
	return sharedE
}

func TestAllIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, ex := range All() {
		if ex.ID == "" || seen[ex.ID] {
			t.Fatalf("bad or duplicate id %q", ex.ID)
		}
		seen[ex.ID] = true
		got, err := ByID(ex.ID)
		if err != nil || got.Paper != ex.Paper {
			t.Fatalf("ByID(%q) broken", ex.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow("x", 0.5)
	tbl.AddRow(1, "y")
	tbl.Note("n=%d", 2)
	out := tbl.String()
	for _, want := range []string{"== demo ==", "a", "0.500", "note: n=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// runExperiment executes one experiment against the shared env and applies
// generic sanity checks.
func runExperiment(t *testing.T, id string) *Table {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment runs full frameworks; skipped in -short")
	}
	ex, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := ex.Run(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Title == "" || len(tbl.Rows) == 0 {
		t.Fatalf("experiment %s produced empty table", id)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("experiment %s row width %d != header %d", id, len(row), len(tbl.Header))
		}
	}
	return tbl
}

func TestFig1Shape(t *testing.T) {
	tbl := runExperiment(t, "fig1")
	// 40 NLP + 30 CV rows
	if len(tbl.Rows) != 70 {
		t.Fatalf("fig1 rows %d", len(tbl.Rows))
	}
}

func TestTable1PerformanceBeatsText(t *testing.T) {
	tbl := runExperiment(t, "tab1")
	if len(tbl.Rows) != 4 {
		t.Fatalf("tab1 rows %d", len(tbl.Rows))
	}
	// row 0: performance-based hierarchical; row 2: text-based hierarchical
	var perfNLP, textNLP float64
	if _, err := sscan(tbl.Rows[0][2], &perfNLP); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[2][2], &textNLP); err != nil {
		t.Fatal(err)
	}
	if perfNLP <= textNLP {
		t.Fatalf("paper shape violated: performance-based NLP silhouette %v <= text-based %v", perfNLP, textNLP)
	}
}

func TestTable2Clusters(t *testing.T) {
	tbl := runExperiment(t, "tab2")
	if len(tbl.Rows) < 6 {
		t.Fatalf("tab2 found only %d non-singleton clusters", len(tbl.Rows))
	}
}

func TestTable3NonSingletonStronger(t *testing.T) {
	tbl := runExperiment(t, "tab3")
	if len(tbl.Rows) != 4 {
		t.Fatalf("tab3 rows %d", len(tbl.Rows))
	}
	// per task: non-singleton avg acc > singleton avg acc
	for i := 0; i < 4; i += 2 {
		var ns, s float64
		if _, err := sscan(tbl.Rows[i][2], &ns); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(tbl.Rows[i+1][2], &s); err != nil {
			t.Fatal(err)
		}
		if ns <= s {
			t.Fatalf("non-singleton avg %v not above singleton %v", ns, s)
		}
	}
}

func TestFig5CoarseBeatsRandomOverall(t *testing.T) {
	tbl := runExperiment(t, "fig5")
	var coarseSum, randomSum float64
	for _, row := range tbl.Rows {
		var c, r float64
		if _, err := sscan(row[3], &c); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[4], &r); err != nil {
			t.Fatal(err)
		}
		coarseSum += c
		randomSum += r
	}
	if coarseSum <= randomSum {
		t.Fatalf("coarse recall %v not above random %v in aggregate", coarseSum, randomSum)
	}
}

func TestTable5FSFasterThanSH(t *testing.T) {
	tbl := runExperiment(t, "tab5")
	for _, row := range tbl.Rows {
		var bf, sh, fs int
		if _, err := sscan(row[2], &bf); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[3], &sh); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[5], &fs); err != nil {
			t.Fatal(err)
		}
		if !(fs <= sh && sh < bf) {
			t.Fatalf("runtime order violated: FS=%d SH=%d BF=%d (%v)", fs, sh, bf, row)
		}
	}
}

func TestTable6SpeedupsPositive(t *testing.T) {
	tbl := runExperiment(t, "tab6")
	if len(tbl.Rows) != 8 {
		t.Fatalf("tab6 rows %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		var epochs float64
		if _, err := sscan(row[1], &epochs); err != nil {
			t.Fatal(err)
		}
		if epochs <= 0 || epochs > 60 {
			t.Fatalf("2PH epochs %v implausible", epochs)
		}
		if !strings.HasSuffix(row[2], "x") || !strings.HasSuffix(row[3], "x") {
			t.Fatalf("speedups malformed: %v", row)
		}
	}
}

func TestTable7RanksValid(t *testing.T) {
	tbl := runExperiment(t, "tab7")
	for _, row := range tbl.Rows {
		var rank int
		if _, err := sscan(row[3], &rank); err != nil {
			t.Fatal(err)
		}
		if rank < 0 || rank >= 10 {
			t.Fatalf("R@CR %d outside recalled set", rank)
		}
	}
}

func TestTable4ThresholdRows(t *testing.T) {
	tbl := runExperiment(t, "tab4")
	if len(tbl.Rows) != 8 { // 4 datasets x {accuracy, runtime}
		t.Fatalf("tab4 rows %d", len(tbl.Rows))
	}
}

func TestTableXRows(t *testing.T) {
	tbl := runExperiment(t, "tabX")
	if len(tbl.Rows) != 6 {
		t.Fatalf("tabX rows %d", len(tbl.Rows))
	}
}

func TestFigExperimentsRun(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig6", "fig7", "fig8"} {
		id := id
		t.Run(id, func(t *testing.T) { runExperiment(t, id) })
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{"ablTopK", "ablRep", "ablTrend", "ablProxy"} {
		id := id
		t.Run(id, func(t *testing.T) { runExperiment(t, id) })
	}
}

// sscan parses a single value out of a table cell.
func sscan(cell string, v interface{}) (int, error) {
	return fmt.Sscan(cell, v)
}

func TestExtensionEnsembleLifts(t *testing.T) {
	tbl := runExperiment(t, "extEnsemble")
	if len(tbl.Rows) != 8 {
		t.Fatalf("extEnsemble rows %d", len(tbl.Rows))
	}
	lifted := 0
	for _, row := range tbl.Rows {
		var single, ens float64
		if _, err := sscan(row[1], &single); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[2], &ens); err != nil {
			t.Fatal(err)
		}
		if ens >= single {
			lifted++
		}
	}
	if lifted < 5 {
		t.Fatalf("ensemble lifted only %d/8 targets", lifted)
	}
}

func TestExtensionLSQAgreement(t *testing.T) {
	tbl := runExperiment(t, "extLSQ")
	if len(tbl.Rows) != 8 {
		t.Fatalf("extLSQ rows %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// lsq must answer with zero training epochs on every target.
		var lsqEp int
		if _, err := sscan(row[4], &lsqEp); err != nil {
			t.Fatal(err)
		}
		if lsqEp != 0 {
			t.Fatalf("lsq spent %d epochs on %s", lsqEp, row[0])
		}
		// The prefiltered strategies must not cost more epochs than the
		// unfiltered two-phase baseline they agree against.
		var baseEp, preEp int
		if _, err := sscan(row[2], &baseEp); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[6], &preEp); err != nil {
			t.Fatal(err)
		}
		if preEp > baseEp {
			t.Fatalf("prefiltered two-phase cost %d epochs > baseline %d on %s", preEp, baseEp, row[0])
		}
	}
	// One agreement note per task family plus the closing cost note.
	if len(tbl.Notes) != 3 {
		t.Fatalf("extLSQ notes %d: %q", len(tbl.Notes), tbl.Notes)
	}
	for _, note := range tbl.Notes[:2] {
		if !strings.Contains(note, "winner agreement vs two-phase") {
			t.Fatalf("agreement note missing: %q", note)
		}
	}
}

func TestAblationSubsetRows(t *testing.T) {
	tbl := runExperiment(t, "ablSubset")
	if len(tbl.Rows) != 6 {
		t.Fatalf("ablSubset rows %d", len(tbl.Rows))
	}
	// full-data rows must have ARI exactly 1
	for _, row := range tbl.Rows {
		var frac, ari float64
		if _, err := sscan(row[1], &frac); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[2], &ari); err != nil {
			t.Fatal(err)
		}
		if frac == 1 && ari != 1 {
			t.Fatalf("full-data ARI %v != 1", ari)
		}
		if ari < -0.5 || ari > 1 {
			t.Fatalf("ARI %v out of range", ari)
		}
	}
}
