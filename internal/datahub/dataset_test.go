package datahub

import (
	"math"
	"testing"
	"testing/quick"

	"twophase/internal/synth"
)

func testSpec() Spec {
	return Spec{
		Name:         "test/dataset",
		Task:         TaskNLP,
		Domains:      map[string]float64{DomainNLI: 1},
		Classes:      3,
		Separability: 2,
		Noise:        1,
	}
}

func TestGenerateShapes(t *testing.T) {
	w := synth.NewWorld(42)
	d, err := Generate(w, testSpec(), Sizes{Train: 50, Val: 20, Test: 30})
	if err != nil {
		t.Fatal(err)
	}
	if d.Train.Len() != 50 || d.Val.Len() != 20 || d.Test.Len() != 30 {
		t.Fatalf("split sizes %d/%d/%d", d.Train.Len(), d.Val.Len(), d.Test.Len())
	}
	if d.Train.X.D != synth.InputDim {
		t.Fatalf("example dim %d", d.Train.X.D)
	}
	if d.Train.X.N != d.Train.Len() {
		t.Fatalf("frame rows %d, labels %d", d.Train.X.N, d.Train.Len())
	}
	for _, y := range d.Train.Y {
		if y < 0 || y >= 3 {
			t.Fatalf("label %d outside range", y)
		}
	}
	if d.Centers.Rows != 3 || d.Centers.Cols != synth.InputDim {
		t.Fatalf("centers shape %dx%d", d.Centers.Rows, d.Centers.Cols)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1, w2 := synth.NewWorld(42), synth.NewWorld(42)
	a, err := Generate(w1, testSpec(), Sizes{Train: 10, Val: 5, Test: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(w2, testSpec(), Sizes{Train: 10, Val: 5, Test: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Train.X.N; i++ {
		if a.Train.Y[i] != b.Train.Y[i] {
			t.Fatal("labels differ across identical worlds")
		}
		for j := range a.Train.X.Row(i) {
			if a.Train.X.At(i, j) != b.Train.X.At(i, j) {
				t.Fatal("examples differ across identical worlds")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	w := synth.NewWorld(42)
	bad := testSpec()
	bad.Classes = 1
	if _, err := Generate(w, bad, Sizes{}); err == nil {
		t.Fatal("expected error for 1 class")
	}
	if _, err := Generate(w, testSpec(), Sizes{Train: -1, Val: 1, Test: 1}); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestGenerateDefaultSizes(t *testing.T) {
	w := synth.NewWorld(42)
	d, err := Generate(w, testSpec(), Sizes{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Train.Len() != DefaultSizes.Train {
		t.Fatalf("default train size %d", d.Train.Len())
	}
}

func TestImbalanceSkewsLabels(t *testing.T) {
	w := synth.NewWorld(42)
	balanced := testSpec()
	skewed := testSpec()
	skewed.Name = "test/skewed"
	skewed.Imbalance = 1.2
	db, err := Generate(w, balanced, Sizes{Train: 2000, Val: 10, Test: 10})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(w, skewed, Sizes{Train: 2000, Val: 10, Test: 10})
	if err != nil {
		t.Fatal(err)
	}
	if mb, ms := MajorityBaseline(db.Train), MajorityBaseline(ds.Train); ms <= mb {
		t.Fatalf("imbalanced majority %v not above balanced %v", ms, mb)
	}
}

func TestLabelProbsProperty(t *testing.T) {
	f := func(classes uint8, imb uint8) bool {
		c := int(classes%20) + 2
		p := labelProbs(c, float64(imb%3))
		var sum float64
		prev := math.Inf(1)
		for _, v := range p {
			if v <= 0 || v > prev+1e-12 {
				return false // must be positive and non-increasing
			}
			prev = v
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityBaseline(t *testing.T) {
	s := Split{Y: []int{0, 0, 0, 1, 2}}
	if got := MajorityBaseline(s); got != 0.6 {
		t.Fatalf("majority = %v", got)
	}
	if MajorityBaseline(Split{}) != 0 {
		t.Fatal("empty split should be 0")
	}
}

func TestCrowdingWidensManyClassDatasets(t *testing.T) {
	w := synth.NewWorld(42)
	few := testSpec()
	many := testSpec()
	many.Name = "test/many"
	many.Classes = 20
	df, err := Generate(w, few, Sizes{Train: 10, Val: 5, Test: 5})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := Generate(w, many, Sizes{Train: 10, Val: 5, Test: 5})
	if err != nil {
		t.Fatal(err)
	}
	// mean center norm should grow with class count at equal separability
	norm := func(d *Dataset) float64 {
		var s float64
		for c := 0; c < d.Centers.Rows; c++ {
			var n float64
			for _, v := range d.Centers.Row(c) {
				n += v * v
			}
			s += math.Sqrt(n)
		}
		return s / float64(d.Centers.Rows)
	}
	if norm(dm) <= norm(df) {
		t.Fatalf("crowding factor missing: 20-class %v <= 3-class %v", norm(dm), norm(df))
	}
}
