package datahub

import (
	"testing"

	"twophase/internal/synth"
)

func TestRegistryCounts(t *testing.T) {
	if n := len(NLPBenchmarks()); n != 24 {
		t.Fatalf("NLP benchmarks = %d, paper uses 24", n)
	}
	if n := len(NLPTargets()); n != 4 {
		t.Fatalf("NLP targets = %d, paper uses 4", n)
	}
	if n := len(CVBenchmarks()); n != 10 {
		t.Fatalf("CV benchmarks = %d, matrix is 30x10", n)
	}
	if n := len(CVTargets()); n != 4 {
		t.Fatalf("CV targets = %d, paper uses 4", n)
	}
}

func TestRegistrySpecsValid(t *testing.T) {
	for _, group := range [][]Spec{NLPBenchmarks(), NLPTargets(), CVBenchmarks(), CVTargets()} {
		for _, s := range group {
			if s.Name == "" || s.Classes < 2 || s.Separability <= 0 || s.Noise <= 0 {
				t.Fatalf("invalid spec %+v", s)
			}
			if s.Task != TaskNLP && s.Task != TaskCV {
				t.Fatalf("spec %q has task %q", s.Name, s.Task)
			}
			if len(s.Domains) == 0 {
				t.Fatalf("spec %q has no domains", s.Name)
			}
		}
	}
}

func TestRegistryBenchmarkFlags(t *testing.T) {
	for _, s := range append(NLPBenchmarks(), CVBenchmarks()...) {
		if !s.Benchmark {
			t.Fatalf("benchmark spec %q not flagged", s.Name)
		}
	}
	for _, s := range append(NLPTargets(), CVTargets()...) {
		if s.Benchmark {
			t.Fatalf("target spec %q flagged as benchmark", s.Name)
		}
	}
}

func TestPaperDatasetNamesPresent(t *testing.T) {
	want := []string{
		"glue/cola", "glue/qqp", "super_glue/cb", "imdb", "financial_phrasebank",
		"tweet_eval", "LysandreJik/glue-mnli-train", "super_glue/boolq",
		"food101", "cifar10", "mnist", "cats_vs_dogs",
		"beans", "nelorth/oxford-flowers", "trpakov/chest-xray-classification",
		"albertvillanova/medmnist-v2", "alkzar90/CC6204-Hackaton-Cub-Dataset",
	}
	have := map[string]bool{}
	for _, g := range [][]Spec{NLPBenchmarks(), NLPTargets(), CVBenchmarks(), CVTargets()} {
		for _, s := range g {
			have[s.Name] = true
		}
	}
	for _, n := range want {
		if !have[n] {
			t.Fatalf("paper dataset %q missing from registry", n)
		}
	}
}

func TestNewCatalog(t *testing.T) {
	w := synth.NewWorld(42)
	c, err := NewTaskCatalog(w, TaskNLP, Sizes{Train: 10, Val: 5, Test: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Benchmarks()) != 24 || len(c.Targets()) != 4 || len(c.All()) != 28 {
		t.Fatalf("catalog sizes %d/%d/%d", len(c.Benchmarks()), len(c.Targets()), len(c.All()))
	}
	if _, err := c.Get("glue/cola"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("no-such-dataset"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	names := c.Names()
	if len(names) != 28 {
		t.Fatalf("names = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}

func TestNewCatalogDuplicateRejected(t *testing.T) {
	w := synth.NewWorld(42)
	s := testSpec()
	if _, err := NewCatalog(w, Sizes{Train: 5, Val: 5, Test: 5}, []Spec{s}, []Spec{s}); err == nil {
		t.Fatal("duplicate dataset accepted")
	}
}

func TestNewTaskCatalogUnknownTask(t *testing.T) {
	w := synth.NewWorld(42)
	if _, err := NewTaskCatalog(w, "audio", Sizes{}); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestCatalogOrderStable(t *testing.T) {
	w := synth.NewWorld(42)
	c, err := NewTaskCatalog(w, TaskCV, Sizes{Train: 5, Val: 5, Test: 5})
	if err != nil {
		t.Fatal(err)
	}
	bm := c.Benchmarks()
	if bm[0].Name != "food101" {
		t.Fatalf("benchmark order changed: first = %q", bm[0].Name)
	}
}
