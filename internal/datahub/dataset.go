// Package datahub defines the dataset side of the synthetic world: the
// registry of benchmark and target datasets (carrying the paper's dataset
// names and appendix metadata) and the generator that materializes each
// dataset as a labelled Gaussian-mixture classification task inside its
// domain subspace.
package datahub

import (
	"fmt"
	"math"

	"twophase/internal/numeric"
	"twophase/internal/synth"
)

// Spec describes a dataset before materialization.
type Spec struct {
	// Name is the dataset identifier (the paper's HuggingFace name).
	Name string
	// Task is "nlp" or "cv".
	Task string
	// Domains is the semantic domain mixture of the dataset.
	Domains map[string]float64
	// Classes is the size of the label space.
	Classes int
	// Separability scales the spread of class means; larger is easier.
	Separability float64
	// Noise is the per-example isotropic noise standard deviation.
	Noise float64
	// Imbalance is the Zipf exponent of the label distribution
	// (0 = balanced, larger = more skewed).
	Imbalance float64
	// Benchmark marks datasets used to build the offline performance
	// matrix; the rest are evaluation targets.
	Benchmark bool
	// Description is a short human-readable summary (from the appendix).
	Description string
}

// Sizes fixes the number of examples per split.
type Sizes struct {
	Train, Val, Test int
}

// DefaultSizes are used when the caller passes a zero Sizes value. They are
// deliberately small: the trainer is a linear probe, so a few hundred
// examples per split already yield stable accuracies while keeping the
// full 40x24 + 30x10 offline matrix cheap to rebuild.
var DefaultSizes = Sizes{Train: 240, Val: 200, Test: 320}

// Split is a labelled set of examples. X is a contiguous row-major frame
// (one example per row), so training and feature-extraction kernels
// stream it linearly; X.Row(i) is example i.
type Split struct {
	X *numeric.Frame
	Y []int
}

// Len returns the number of examples in the split.
func (s Split) Len() int { return len(s.Y) }

// Dataset is a materialized dataset: spec plus train/val/test splits and
// the true class means (kept for diagnostics and property tests).
type Dataset struct {
	Spec
	Train, Val, Test Split
	Centers          *numeric.Matrix // Classes x InputDim
}

// Generate materializes the spec inside the world. All randomness derives
// from (world seed, dataset name), so repeated calls return identical data.
func Generate(w *synth.World, spec Spec, sizes Sizes) (*Dataset, error) {
	if spec.Classes < 2 {
		return nil, fmt.Errorf("datahub: dataset %q needs >= 2 classes, got %d", spec.Name, spec.Classes)
	}
	if sizes == (Sizes{}) {
		sizes = DefaultSizes
	}
	if sizes.Train <= 0 || sizes.Val <= 0 || sizes.Test <= 0 {
		return nil, fmt.Errorf("datahub: dataset %q has non-positive split size %+v", spec.Name, sizes)
	}

	rng := numeric.NewNamedRNG(w.Seed, "dataset", spec.Name)
	mix := synth.WithCore(spec.Domains, spec.Task, 0.25)

	// Class means live in the span of the dataset's domain mixture. The
	// crowding factor widens many-class datasets: packing 20 classes into
	// a rank-6 subspace needs proportionally larger spread for the same
	// per-pair separability as a binary task.
	rank := synth.DomainRank
	crowding := 1 + 0.28*math.Log2(float64(spec.Classes)/2)
	sep := spec.Separability * crowding
	dirs := w.MixtureDirections(mix, rank, rng)
	centers := numeric.NewMatrix(spec.Classes, synth.InputDim)
	for c := 0; c < spec.Classes; c++ {
		row := centers.Row(c)
		for j := 0; j < rank; j++ {
			numeric.AddScaled(row, rng.Norm()*sep, dirs.Row(j))
		}
	}

	probs := labelProbs(spec.Classes, spec.Imbalance)
	d := &Dataset{Spec: spec, Centers: centers}
	d.Train = sampleSplit(rng, centers, probs, spec.Noise, sizes.Train)
	d.Val = sampleSplit(rng, centers, probs, spec.Noise, sizes.Val)
	d.Test = sampleSplit(rng, centers, probs, spec.Noise, sizes.Test)
	return d, nil
}

// labelProbs returns the label distribution: uniform for imbalance 0,
// otherwise Zipf-like with the given exponent.
func labelProbs(classes int, imbalance float64) []float64 {
	p := make([]float64, classes)
	var sum float64
	for c := range p {
		p[c] = math.Pow(float64(c+1), -imbalance)
		sum += p[c]
	}
	for c := range p {
		p[c] /= sum
	}
	return p
}

func sampleSplit(rng *numeric.RNG, centers *numeric.Matrix, probs []float64, noise float64, n int) Split {
	s := Split{X: numeric.NewFrame(n, synth.InputDim), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		y := sampleLabel(rng, probs)
		x := s.X.Row(i)
		copy(x, centers.Row(y))
		for j := range x {
			x[j] += rng.Norm() * noise
		}
		s.Y[i] = y
	}
	return s
}

func sampleLabel(rng *numeric.RNG, probs []float64) int {
	u := rng.Float64()
	var acc float64
	for c, p := range probs {
		acc += p
		if u < acc {
			return c
		}
	}
	return len(probs) - 1
}

// MajorityBaseline returns the accuracy of always predicting the most
// frequent label of the split — the floor every trained model must beat.
func MajorityBaseline(s Split) float64 {
	if s.Len() == 0 {
		return 0
	}
	counts := map[int]int{}
	best := 0
	for _, y := range s.Y {
		counts[y]++
		if counts[y] > best {
			best = counts[y]
		}
	}
	return float64(best) / float64(s.Len())
}
