package datahub

import (
	"errors"
	"fmt"
	"sort"

	"twophase/internal/synth"
)

// ErrUnknownDataset is the sentinel wrapped by catalog lookups for names
// that are not in the catalog, so serving layers can map "no such target"
// to a not-found response without string matching.
var ErrUnknownDataset = errors.New("datahub: unknown dataset")

// ErrUnknownTask is the sentinel wrapped for task families outside
// {"nlp", "cv"}.
var ErrUnknownTask = errors.New("datahub: unknown task")

// Semantic domains of the synthetic world. NLP and CV domains are disjoint
// except for the per-task core domain added automatically by Generate.
const (
	// NLP domains.
	DomainNLI          = "nli"
	DomainSentiment    = "sentiment"
	DomainParaphrase   = "paraphrase"
	DomainQA           = "qa"
	DomainTopic        = "topic"
	DomainGrammar      = "grammar"
	DomainSimilarity   = "similarity"
	DomainMultilingual = "multilingual"
	DomainFinance      = "finance"
	DomainSocial       = "social"
	// CV domains.
	DomainNatural     = "natural-img"
	DomainObjects     = "objects"
	DomainDigits      = "digits"
	DomainMedicalImg  = "medical-img"
	DomainFood        = "food"
	DomainFineGrained = "fine-grained"
	DomainFaces       = "faces"
	DomainArtworks    = "artworks"
)

// TaskNLP and TaskCV are the two task families of the paper's evaluation.
const (
	TaskNLP = "nlp"
	TaskCV  = "cv"
)

func mix(pairs ...interface{}) map[string]float64 {
	m := make(map[string]float64, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return m
}

// NLPBenchmarks returns the 24 NLP benchmark dataset specs used to build
// the performance matrix (GLUE, SuperGLUE and the domain-specific tasks of
// the paper's §V.A / appendix Table IX).
func NLPBenchmarks() []Spec {
	return []Spec{
		// GLUE.
		{Name: "glue/cola", Task: TaskNLP, Domains: mix(DomainGrammar, 1.0), Classes: 2, Separability: 1.7, Noise: 2.1, Benchmark: true, Description: "linguistic acceptability"},
		{Name: "glue/mrpc", Task: TaskNLP, Domains: mix(DomainParaphrase, 0.9, DomainSimilarity, 0.3), Classes: 2, Separability: 1.9, Noise: 2, Benchmark: true, Description: "paraphrase detection"},
		{Name: "glue/qnli", Task: TaskNLP, Domains: mix(DomainQA, 0.7, DomainNLI, 0.5), Classes: 2, Separability: 2.0, Noise: 2, Benchmark: true, Description: "question-answer entailment"},
		{Name: "glue/qqp", Task: TaskNLP, Domains: mix(DomainParaphrase, 1.0), Classes: 2, Separability: 2.1, Noise: 1.9, Benchmark: true, Description: "Quora duplicate questions"},
		{Name: "glue/rte", Task: TaskNLP, Domains: mix(DomainNLI, 1.0), Classes: 2, Separability: 1.5, Noise: 2.2, Benchmark: true, Description: "textual entailment"},
		{Name: "glue/sst2", Task: TaskNLP, Domains: mix(DomainSentiment, 1.0), Classes: 2, Separability: 2.2, Noise: 1.8, Benchmark: true, Description: "movie review sentiment"},
		{Name: "glue/stsb", Task: TaskNLP, Domains: mix(DomainSimilarity, 1.0), Classes: 5, Separability: 1.8, Noise: 2.1, Imbalance: 0.4, Benchmark: true, Description: "semantic similarity (binned)"},
		{Name: "glue/wnli", Task: TaskNLP, Domains: mix(DomainNLI, 0.8, DomainQA, 0.2), Classes: 2, Separability: 1.2, Noise: 2.5, Benchmark: true, Description: "Winograd entailment"},
		// SuperGLUE.
		{Name: "super_glue/cb", Task: TaskNLP, Domains: mix(DomainNLI, 1.0), Classes: 3, Separability: 1.6, Noise: 2.2, Imbalance: 0.5, Benchmark: true, Description: "CommitmentBank entailment"},
		{Name: "super_glue/copa", Task: TaskNLP, Domains: mix(DomainQA, 1.0), Classes: 2, Separability: 1.4, Noise: 2.3, Benchmark: true, Description: "choice of plausible alternatives"},
		{Name: "super_glue/wic", Task: TaskNLP, Domains: mix(DomainSimilarity, 0.8, DomainGrammar, 0.3), Classes: 2, Separability: 1.5, Noise: 2.2, Benchmark: true, Description: "word in context"},
		// Domain-specific HuggingFace tasks.
		{Name: "imdb", Task: TaskNLP, Domains: mix(DomainSentiment, 1.0), Classes: 2, Separability: 2.3, Noise: 1.8, Benchmark: true, Description: "movie review sentiment"},
		{Name: "yelp_review_full", Task: TaskNLP, Domains: mix(DomainSentiment, 0.9, DomainSocial, 0.3), Classes: 5, Separability: 1.8, Noise: 2, Imbalance: 0.2, Benchmark: true, Description: "Yelp review stars"},
		{Name: "yahoo_answers_topics", Task: TaskNLP, Domains: mix(DomainTopic, 1.0), Classes: 10, Separability: 2.0, Noise: 2, Benchmark: true, Description: "Yahoo answers topic"},
		{Name: "dbpedia_14", Task: TaskNLP, Domains: mix(DomainTopic, 1.0), Classes: 14, Separability: 2.2, Noise: 1.9, Benchmark: true, Description: "DBpedia ontology topic"},
		{Name: "xnli", Task: TaskNLP, Domains: mix(DomainNLI, 0.8, DomainMultilingual, 0.5), Classes: 3, Separability: 1.7, Noise: 2.1, Benchmark: true, Description: "cross-lingual NLI"},
		{Name: "anli", Task: TaskNLP, Domains: mix(DomainNLI, 1.0), Classes: 3, Separability: 1.3, Noise: 2.5, Imbalance: 0.3, Benchmark: true, Description: "adversarial NLI"},
		{Name: "app_reviews", Task: TaskNLP, Domains: mix(DomainSentiment, 0.7, DomainSocial, 0.5), Classes: 5, Separability: 1.7, Noise: 2.1, Imbalance: 0.5, Benchmark: true, Description: "software review ratings"},
		{Name: "trec", Task: TaskNLP, Domains: mix(DomainQA, 0.8, DomainTopic, 0.4), Classes: 6, Separability: 1.9, Noise: 2, Benchmark: true, Description: "question classification"},
		{Name: "sick", Task: TaskNLP, Domains: mix(DomainNLI, 0.7, DomainSimilarity, 0.5), Classes: 3, Separability: 1.8, Noise: 2, Benchmark: true, Description: "compositional entailment"},
		{Name: "financial_phrasebank", Task: TaskNLP, Domains: mix(DomainFinance, 0.9, DomainSentiment, 0.5), Classes: 3, Separability: 1.8, Noise: 2, Imbalance: 0.6, Benchmark: true, Description: "financial news sentiment"},
		{Name: "paws", Task: TaskNLP, Domains: mix(DomainParaphrase, 1.0), Classes: 2, Separability: 1.7, Noise: 2.1, Imbalance: 0.3, Benchmark: true, Description: "adversarial paraphrase"},
		{Name: "stsb_multi_mt", Task: TaskNLP, Domains: mix(DomainSimilarity, 0.8, DomainMultilingual, 0.4), Classes: 5, Separability: 1.6, Noise: 2.2, Imbalance: 0.4, Benchmark: true, Description: "multilingual similarity (binned)"},
		{Name: "SetFit/qnli", Task: TaskNLP, Domains: mix(DomainQA, 0.6, DomainNLI, 0.6), Classes: 2, Separability: 1.9, Noise: 2, Benchmark: true, Description: "labelled QNLI"},
	}
}

// NLPTargets returns the four NLP evaluation targets of §V.A.
func NLPTargets() []Spec {
	return []Spec{
		{Name: "tweet_eval", Task: TaskNLP, Domains: mix(DomainSentiment, 0.8, DomainSocial, 0.6), Classes: 3, Separability: 1.6, Noise: 2.2, Imbalance: 0.4, Description: "Twitter sentiment"},
		{Name: "LysandreJik/glue-mnli-train", Task: TaskNLP, Domains: mix(DomainNLI, 1.0), Classes: 3, Separability: 1.9, Noise: 2, Description: "labelled MNLI"},
		{Name: "super_glue/multirc", Task: TaskNLP, Domains: mix(DomainQA, 1.0), Classes: 2, Separability: 1.4, Noise: 2.4, Description: "multi-sentence reading comprehension"},
		{Name: "super_glue/boolq", Task: TaskNLP, Domains: mix(DomainQA, 0.8, DomainNLI, 0.4), Classes: 2, Separability: 1.6, Noise: 2.2, Imbalance: 0.3, Description: "yes/no questions"},
	}
}

// CVBenchmarks returns the 10 CV benchmark dataset specs. The six names of
// appendix Table IX are kept verbatim; four more (FER-2013, Imagenette,
// artworks, age-faces) are added so the matrix has the 30x10 shape reported
// in §V.A — they correspond to the upstream tasks of the paper's CV models
// (lixiqi FER models, nateraw age classifier, oschamp artwork classifier).
func CVBenchmarks() []Spec {
	return []Spec{
		{Name: "food101", Task: TaskCV, Domains: mix(DomainFood, 1.0), Classes: 20, Separability: 2.3, Noise: 2, Benchmark: true, Description: "food photos (class-subsampled)"},
		{Name: "alkzar90/CC6204-Hackaton-Cub-Dataset", Task: TaskCV, Domains: mix(DomainFineGrained, 0.9, DomainNatural, 0.4), Classes: 20, Separability: 1.9, Noise: 2.2, Imbalance: 0.3, Benchmark: true, Description: "CUB birds (class-subsampled)"},
		{Name: "cats_vs_dogs", Task: TaskCV, Domains: mix(DomainNatural, 1.0), Classes: 2, Separability: 2.6, Noise: 1.7, Benchmark: true, Description: "Asirra cats vs dogs"},
		{Name: "cifar10", Task: TaskCV, Domains: mix(DomainObjects, 0.9, DomainNatural, 0.4), Classes: 10, Separability: 2.2, Noise: 2, Benchmark: true, Description: "tiny object photos"},
		{Name: "mnist", Task: TaskCV, Domains: mix(DomainDigits, 1.0), Classes: 10, Separability: 2.8, Noise: 1.6, Benchmark: true, Description: "handwritten digits"},
		{Name: "Matthijs/snacks", Task: TaskCV, Domains: mix(DomainFood, 0.9, DomainObjects, 0.3), Classes: 20, Separability: 2.0, Noise: 2.1, Imbalance: 0.2, Benchmark: true, Description: "snack photos"},
		{Name: "fer2013", Task: TaskCV, Domains: mix(DomainFaces, 1.0), Classes: 7, Separability: 1.7, Noise: 2.3, Imbalance: 0.4, Benchmark: true, Description: "facial expressions"},
		{Name: "imagenette", Task: TaskCV, Domains: mix(DomainNatural, 0.7, DomainObjects, 0.6), Classes: 10, Separability: 2.4, Noise: 1.8, Benchmark: true, Description: "ImageNet subset"},
		{Name: "huggan/wikiart-sample", Task: TaskCV, Domains: mix(DomainArtworks, 1.0), Classes: 8, Separability: 1.8, Noise: 2.2, Benchmark: true, Description: "artwork styles"},
		{Name: "nateraw/fairface-age", Task: TaskCV, Domains: mix(DomainFaces, 0.8, DomainNatural, 0.2), Classes: 8, Separability: 1.6, Noise: 2.3, Imbalance: 0.3, Benchmark: true, Description: "face age buckets"},
	}
}

// CVTargets returns the four CV evaluation targets of §V.A.
func CVTargets() []Spec {
	return []Spec{
		{Name: "trpakov/chest-xray-classification", Task: TaskCV, Domains: mix(DomainMedicalImg, 1.0), Classes: 2, Separability: 1.9, Noise: 2, Imbalance: 0.5, Description: "chest X-ray pneumonia"},
		{Name: "albertvillanova/medmnist-v2", Task: TaskCV, Domains: mix(DomainMedicalImg, 0.9, DomainObjects, 0.2), Classes: 9, Separability: 1.5, Noise: 2.3, Imbalance: 0.4, Description: "biomedical images"},
		{Name: "nelorth/oxford-flowers", Task: TaskCV, Domains: mix(DomainFineGrained, 0.9, DomainNatural, 0.4), Classes: 20, Separability: 2.1, Noise: 2, Imbalance: 0.3, Description: "flowers (class-subsampled)"},
		{Name: "beans", Task: TaskCV, Domains: mix(DomainNatural, 0.7, DomainFineGrained, 0.5), Classes: 3, Separability: 2.0, Noise: 2, Description: "bean leaf disease"},
	}
}

// Catalog is a materialized collection of datasets indexed by name.
type Catalog struct {
	World    *synth.World
	Sizes    Sizes
	byName   map[string]*Dataset
	ordered  []*Dataset
	specsErr error
}

// NewCatalog materializes all given specs in the world.
func NewCatalog(w *synth.World, sizes Sizes, specs ...[]Spec) (*Catalog, error) {
	c := &Catalog{World: w, Sizes: sizes, byName: make(map[string]*Dataset)}
	for _, group := range specs {
		for _, spec := range group {
			if _, dup := c.byName[spec.Name]; dup {
				return nil, fmt.Errorf("datahub: duplicate dataset %q", spec.Name)
			}
			d, err := Generate(w, spec, sizes)
			if err != nil {
				return nil, err
			}
			c.byName[spec.Name] = d
			c.ordered = append(c.ordered, d)
		}
	}
	return c, nil
}

// NewTaskCatalog materializes the full benchmark+target catalog for a task
// family ("nlp" or "cv").
func NewTaskCatalog(w *synth.World, task string, sizes Sizes) (*Catalog, error) {
	switch task {
	case TaskNLP:
		return NewCatalog(w, sizes, NLPBenchmarks(), NLPTargets())
	case TaskCV:
		return NewCatalog(w, sizes, CVBenchmarks(), CVTargets())
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownTask, task)
	}
}

// Get returns the dataset by name, or an error if it is not in the catalog.
func (c *Catalog) Get(name string) (*Dataset, error) {
	d, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: dataset %q not in catalog", ErrUnknownDataset, name)
	}
	return d, nil
}

// Benchmarks returns the benchmark datasets in registration order.
func (c *Catalog) Benchmarks() []*Dataset {
	var out []*Dataset
	for _, d := range c.ordered {
		if d.Spec.Benchmark {
			out = append(out, d)
		}
	}
	return out
}

// Targets returns the non-benchmark (evaluation) datasets in registration
// order.
func (c *Catalog) Targets() []*Dataset {
	var out []*Dataset
	for _, d := range c.ordered {
		if !d.Spec.Benchmark {
			out = append(out, d)
		}
	}
	return out
}

// All returns every dataset in registration order.
func (c *Catalog) All() []*Dataset {
	out := make([]*Dataset, len(c.ordered))
	copy(out, c.ordered)
	return out
}

// Names returns the sorted names of all datasets in the catalog.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.byName))
	for n := range c.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
