// Package store implements the paper's §VII future-work direction: a small
// data-management layer that persists and serves the framework's artifacts
// — model specs, dataset specs, performance matrices and clusterings — so
// that the offline phase is computed once and reused across processes
// ("build data management system which stores and maintains the
// pre-trained models and datasets").
//
// The store is a directory of JSON documents with an in-memory index; it
// is safe for concurrent readers and single-writer use.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
)

// Store is a directory-backed artifact store.
type Store struct {
	dir string
	mu  sync.RWMutex
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"models", "datasets", "matrices", "recalls"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: create %s: %w", sub, err)
		}
	}
	return &Store{dir: dir}, nil
}

// slug converts an artifact name (possibly containing "/") into a file
// name. The encoding is injective, so distinct names can never collide on
// one file: "%", "_" and " " are percent-escaped before "/" maps to "__",
// which means every underscore in the output comes from a slash pair —
// "a/b" vs "a__b" and "a b" vs "a_b" all get distinct files.
func slug(name string) string {
	r := strings.NewReplacer("%", "%25", "_", "%5F", " ", "%20")
	return strings.ReplaceAll(r.Replace(name), "/", "__") + ".json"
}

// unslug inverts slug (minus the ".json" suffix, which the caller strips).
func unslug(base string) string {
	n := strings.ReplaceAll(base, "__", "/")
	r := strings.NewReplacer("%20", " ", "%5F", "_", "%25", "%")
	return r.Replace(n)
}

// legacySlug is the pre-escaping encoding ("/"→"__", " "→"_"), kept so
// stores written by older binaries stay readable: read falls back to it
// on a miss, and write removes the legacy file once the artifact exists
// under its collision-safe name.
func legacySlug(name string) string {
	r := strings.NewReplacer("/", "__", " ", "_")
	return r.Replace(name) + ".json"
}

// legacyOnly reports whether a file name could only have been written by
// the legacy encoding. New-format file names round-trip unslug→slug
// exactly; a name that doesn't (a bare "_" outside a "__" pair, an
// unescaped "%") must be a legacy artifact. Files that are valid under
// both encodings (e.g. "a__b.json" is legacy "a__b" and new-format
// "a/b") are treated as new-format, matching how list decodes them.
func legacyOnly(file string) bool {
	base := strings.TrimSuffix(file, ".json")
	return slug(unslug(base)) != file
}

func (s *Store) write(kind, name string, v interface{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("store: marshal %s/%s: %w", kind, name, err)
	}
	path := filepath.Join(s.dir, kind, slug(name))
	// The temp file must be unique per writer: serving processes may share
	// a store directory, and a fixed name would let two concurrent writers
	// interleave into (and then rename) a corrupted artifact.
	tmp, err := os.CreateTemp(filepath.Dir(path), slug(name)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: temp for %s/%s: %w", kind, name, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close %s: %w", tmp.Name(), err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Migrate away from the ambiguous legacy encoding: with the artifact
	// safely under its collision-safe name, a leftover legacy file would
	// only shadow stale data and duplicate list entries. Only delete
	// files the new encoding could never produce — otherwise the
	// "legacy" path is some other name's current artifact, e.g.
	// legacySlug("a__b") == slug("a/b").
	if legacy := legacySlug(name); legacy != slug(name) && legacyOnly(legacy) {
		os.Remove(filepath.Join(s.dir, kind, legacy))
	}
	return nil
}

func (s *Store) read(kind, name string, v interface{}) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := os.ReadFile(filepath.Join(s.dir, kind, slug(name)))
	if os.IsNotExist(err) {
		// Stores written by older binaries used the legacy encoding; fall
		// back only when that file couldn't be another name's current
		// artifact under the new encoding.
		if legacy := legacySlug(name); legacy != slug(name) && legacyOnly(legacy) {
			data, err = os.ReadFile(filepath.Join(s.dir, kind, legacy))
		}
	}
	if err != nil {
		return fmt.Errorf("store: read %s/%s: %w", kind, name, err)
	}
	return json.Unmarshal(data, v)
}

func (s *Store) list(kind string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(filepath.Join(s.dir, kind))
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", kind, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !strings.HasSuffix(n, ".json") {
			continue
		}
		names = append(names, unslug(strings.TrimSuffix(n, ".json")))
	}
	sort.Strings(names)
	return names, nil
}

// PutModel persists a model spec.
func (s *Store) PutModel(spec modelhub.Spec) error { return s.write("models", spec.Name, spec) }

// GetModel retrieves a model spec by name.
func (s *Store) GetModel(name string) (modelhub.Spec, error) {
	var spec modelhub.Spec
	err := s.read("models", name, &spec)
	return spec, err
}

// ListModels returns all stored model names, sorted.
func (s *Store) ListModels() ([]string, error) { return s.list("models") }

// QueryModels returns the stored model specs matching all non-zero filter
// fields: task, architecture and a minimum capability.
func (s *Store) QueryModels(task, arch string, minCapability float64) ([]modelhub.Spec, error) {
	names, err := s.ListModels()
	if err != nil {
		return nil, err
	}
	var out []modelhub.Spec
	for _, n := range names {
		spec, err := s.GetModel(n)
		if err != nil {
			return nil, err
		}
		if task != "" && spec.Task != task {
			continue
		}
		if arch != "" && spec.Arch != arch {
			continue
		}
		if spec.Capability < minCapability {
			continue
		}
		out = append(out, spec)
	}
	return out, nil
}

// PutDataset persists a dataset spec.
func (s *Store) PutDataset(spec datahub.Spec) error { return s.write("datasets", spec.Name, spec) }

// GetDataset retrieves a dataset spec by name.
func (s *Store) GetDataset(name string) (datahub.Spec, error) {
	var spec datahub.Spec
	err := s.read("datasets", name, &spec)
	return spec, err
}

// ListDatasets returns all stored dataset names, sorted.
func (s *Store) ListDatasets() ([]string, error) { return s.list("datasets") }

// PutMatrix persists a performance matrix under a name (e.g. "nlp").
func (s *Store) PutMatrix(name string, m *perfmatrix.Matrix) error {
	return s.write("matrices", name, m)
}

// GetMatrix retrieves a performance matrix by name.
func (s *Store) GetMatrix(name string) (*perfmatrix.Matrix, error) {
	var m perfmatrix.Matrix
	if err := s.read("matrices", name, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ListMatrices returns all stored matrix names, sorted.
func (s *Store) ListMatrices() ([]string, error) { return s.list("matrices") }

// PutRecall persists the clustering-stage artifact of the offline pipeline
// under a name (conventionally the same key as the matrix it derives from).
func (s *Store) PutRecall(name string, a *recall.Artifact) error {
	return s.write("recalls", name, a)
}

// GetRecall retrieves a clustering-stage artifact by name.
func (s *Store) GetRecall(name string) (*recall.Artifact, error) {
	var a recall.Artifact
	if err := s.read("recalls", name, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// ListRecalls returns all stored recall-artifact names, sorted.
func (s *Store) ListRecalls() ([]string, error) { return s.list("recalls") }

// SaveRepository persists every spec of a repository.
func (s *Store) SaveRepository(specs []modelhub.Spec) error {
	for _, spec := range specs {
		if err := s.PutModel(spec); err != nil {
			return err
		}
	}
	return nil
}

// SaveCatalogSpecs persists every dataset spec group.
func (s *Store) SaveCatalogSpecs(groups ...[]datahub.Spec) error {
	for _, g := range groups {
		for _, spec := range g {
			if err := s.PutDataset(spec); err != nil {
				return err
			}
		}
	}
	return nil
}
