// Package store implements the paper's §VII future-work direction: a small
// data-management layer that persists and serves the framework's artifacts
// — model specs, dataset specs, performance matrices and clusterings — so
// that the offline phase is computed once and reused across processes
// ("build data management system which stores and maintains the
// pre-trained models and datasets").
//
// Specs (models, datasets) are small JSON documents. The heavy world
// artifacts — performance matrices, recall artifacts and feature frames —
// persist in the binary internal/artifact format (checksummed headers,
// raw float64 payloads) with transparent JSON fallback: a store written
// by an older binary still reads, and the first read migrates the
// artifact to its binary form. The store is a directory with an in-memory
// index; it is safe for concurrent readers and single-writer use.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"twophase/internal/artifact"
	"twophase/internal/datahub"
	"twophase/internal/faultinject"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
)

// ErrNotFound marks an artifact that is truly absent from the store — no
// binary file, no JSON fallback. Callers rebuild (or fetch from a ring
// peer) only on this error; transient read failures (permissions, I/O)
// propagate unwrapped so they never silently trigger an expensive
// rebuild.
var ErrNotFound = errors.New("store: artifact not found")

// ErrCorrupt marks an artifact that exists but cannot be decoded — a
// failed checksum, a truncated file, unparsable JSON. The wrapped message
// names the offending file path. Callers rebuild on it: the rewrite heals
// the store.
var ErrCorrupt = errors.New("store: corrupt artifact")

// Store is a directory-backed artifact store.
type Store struct {
	dir string
	mu  sync.RWMutex
}

// Open creates (if needed) and opens a store rooted at dir, then runs the
// recovery sweep: orphaned temp files from a writer killed mid-write and
// checksum-failing artifacts are quarantined before anything is served.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"models", "datasets", "matrices", "recalls", "frames"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: create %s: %w", sub, err)
		}
	}
	s := &Store{dir: dir}
	rep, err := s.Sweep()
	if err != nil {
		return nil, err
	}
	if rep.Orphans > 0 || rep.Corrupt > 0 {
		log.Printf("store: recovery sweep quarantined %d orphaned temp files, %d corrupt artifacts in %s",
			rep.Orphans, rep.Corrupt, dir)
	}
	return s, nil
}

// slug converts an artifact name (possibly containing "/") into a file
// name. The encoding is injective, so distinct names can never collide on
// one file: "%", "_" and " " are percent-escaped before "/" maps to "__",
// which means every underscore in the output comes from a slash pair —
// "a/b" vs "a__b" and "a b" vs "a_b" all get distinct files.
func slug(name string) string {
	r := strings.NewReplacer("%", "%25", "_", "%5F", " ", "%20")
	return strings.ReplaceAll(r.Replace(name), "/", "__") + ".json"
}

// unslug inverts slug (minus the ".json" suffix, which the caller strips).
func unslug(base string) string {
	n := strings.ReplaceAll(base, "__", "/")
	r := strings.NewReplacer("%20", " ", "%5F", "_", "%25", "%")
	return r.Replace(n)
}

// legacySlug is the pre-escaping encoding ("/"→"__", " "→"_"), kept so
// stores written by older binaries stay readable: read falls back to it
// on a miss, and write removes the legacy file once the artifact exists
// under its collision-safe name.
func legacySlug(name string) string {
	r := strings.NewReplacer("/", "__", " ", "_")
	return r.Replace(name) + ".json"
}

// legacyOnly reports whether a file name could only have been written by
// the legacy encoding. New-format file names round-trip unslug→slug
// exactly; a name that doesn't (a bare "_" outside a "__" pair, an
// unescaped "%") must be a legacy artifact. Files that are valid under
// both encodings (e.g. "a__b.json" is legacy "a__b" and new-format
// "a/b") are treated as new-format, matching how list decodes them.
func legacyOnly(file string) bool {
	base := strings.TrimSuffix(file, ".json")
	return slug(unslug(base)) != file
}

// isNotExist reports that a path truly has no file behind it: ENOENT, or
// ENOTDIR (a parent path component is not a directory — e.g. a broken
// store volume), as opposed to transient failures like permission or I/O
// errors, which must not masquerade as "absent".
func isNotExist(err error) bool {
	return os.IsNotExist(err) || errors.Is(err, syscall.ENOTDIR)
}

// binSlug is the binary counterpart of slug: same injective name
// encoding, ".bin" extension.
func binSlug(name string) string {
	return strings.TrimSuffix(slug(name), ".json") + ".bin"
}

// writeFile atomically and durably installs data at path: unique temp
// file (serving processes may share a store directory, and a fixed name
// would let two concurrent writers interleave into a corrupted artifact),
// write, fsync, chmod, rename, then a best-effort fsync of the directory
// so the rename itself survives a power cut. A crash at any point leaves
// either the old artifact or an orphaned temp file — never a torn
// artifact under the real name — and the startup sweep quarantines the
// orphans.
func writeFile(path string, data []byte) error {
	if f := faultinject.On(faultinject.SiteStoreWrite); f != nil {
		if f.Action == faultinject.ActTorn {
			// Manufacture the on-disk shape of a writer killed mid-write:
			// a partial temp file, never fsynced, never renamed.
			if tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*"); err == nil {
				tmp.Write(data[:f.Prefix(len(data))])
				tmp.Close()
			}
		}
		return fmt.Errorf("store: write %s: %w", path, f.Err())
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: temp for %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", tmp.Name(), err)
	}
	if err := syncFile(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close %s: %w", tmp.Name(), err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncFile flushes the temp file's data to stable storage before the
// rename makes it visible. Filesystems that cannot fsync (some tmpfs and
// network mounts) are tolerated — atomicity still holds there, only
// power-cut durability degrades to the filesystem's own guarantee.
func syncFile(tmp *os.File) error {
	if f := faultinject.On(faultinject.SiteStoreFsync); f != nil {
		return f.Err()
	}
	if err := tmp.Sync(); err != nil &&
		!errors.Is(err, syscall.ENOTSUP) && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives a power
// cut. Best-effort: the artifact itself is already durable and
// re-creatable, so a directory that cannot fsync is not an error.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func (s *Store) write(kind, name string, v interface{}) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("store: marshal %s/%s: %w", kind, name, err)
	}
	if err := writeFile(filepath.Join(s.dir, kind, slug(name)), data); err != nil {
		return err
	}
	// Migrate away from the ambiguous legacy encoding: with the artifact
	// safely under its collision-safe name, a leftover legacy file would
	// only shadow stale data and duplicate list entries. Only delete
	// files the new encoding could never produce — otherwise the
	// "legacy" path is some other name's current artifact, e.g.
	// legacySlug("a__b") == slug("a/b").
	if legacy := legacySlug(name); legacy != slug(name) && legacyOnly(legacy) {
		os.Remove(filepath.Join(s.dir, kind, legacy))
	}
	// A stale binary sibling would shadow this JSON document on the next
	// read; JSON writes only happen when the binary encoder refused the
	// value, so the sibling is the older artifact.
	os.Remove(filepath.Join(s.dir, kind, binSlug(name)))
	return nil
}

// writeBinary atomically installs an already-encoded binary artifact and
// migrates away from its JSON (and legacy-JSON) siblings, which would
// otherwise go stale silently.
func (s *Store) writeBinary(kind, name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeFile(filepath.Join(s.dir, kind, binSlug(name)), data); err != nil {
		return err
	}
	os.Remove(filepath.Join(s.dir, kind, slug(name)))
	if legacy := legacySlug(name); legacy != slug(name) && legacyOnly(legacy) {
		os.Remove(filepath.Join(s.dir, kind, legacy))
	}
	return nil
}

func (s *Store) read(kind, name string, v interface{}) error {
	file := slug(name)
	err := func() error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if f := faultinject.On(faultinject.SiteStoreRead); f != nil {
			return fmt.Errorf("store: read %s/%s: %w", kind, name, f.Err())
		}
		path := filepath.Join(s.dir, kind, file)
		data, err := os.ReadFile(path)
		if isNotExist(err) {
			// Stores written by older binaries used the legacy encoding; fall
			// back only when that file couldn't be another name's current
			// artifact under the new encoding.
			if legacy := legacySlug(name); legacy != slug(name) && legacyOnly(legacy) {
				file = legacy
				path = filepath.Join(s.dir, kind, legacy)
				data, err = os.ReadFile(path)
			}
		}
		switch {
		case err == nil:
		case isNotExist(err):
			return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, name)
		default:
			return fmt.Errorf("store: read %s/%s: %w", kind, name, err)
		}
		if err := json.Unmarshal(data, v); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		return nil
	}()
	if errors.Is(err, ErrCorrupt) {
		// Never decode (or let a rebuild be shadowed by) this file again.
		s.quarantineCorrupt(kind, file)
	}
	return err
}

// withBinary maps the binary encoding of kind/name and runs fn over it
// while the mapping is held; fn must copy anything it keeps. A missing
// file is ErrNotFound; a file fn rejects is ErrCorrupt and is quarantined
// so it can never be decoded again or shadow the healing rewrite.
func (s *Store) withBinary(kind, name string, fn func(data []byte) error) error {
	err := func() error {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if f := faultinject.On(faultinject.SiteStoreRead); f != nil {
			return fmt.Errorf("store: read %s/%s: %w", kind, name, f.Err())
		}
		path := filepath.Join(s.dir, kind, binSlug(name))
		data, release, err := artifact.MapFile(path)
		if isNotExist(err) {
			return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, name)
		}
		if err != nil {
			return fmt.Errorf("store: map %s: %w", path, err)
		}
		defer release()
		if err := fn(data); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
		}
		return nil
	}()
	if errors.Is(err, ErrCorrupt) {
		s.quarantineCorrupt(kind, binSlug(name))
	}
	return err
}

func (s *Store) list(kind string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(filepath.Join(s.dir, kind))
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", kind, err)
	}
	seen := make(map[string]bool)
	var names []string
	for _, e := range entries {
		n := e.Name()
		var base string
		switch {
		case strings.HasSuffix(n, ".json"):
			base = strings.TrimSuffix(n, ".json")
		case strings.HasSuffix(n, ".bin"):
			base = strings.TrimSuffix(n, ".bin")
		default:
			continue
		}
		name := unslug(base)
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// PutModel persists a model spec.
func (s *Store) PutModel(spec modelhub.Spec) error { return s.write("models", spec.Name, spec) }

// GetModel retrieves a model spec by name.
func (s *Store) GetModel(name string) (modelhub.Spec, error) {
	var spec modelhub.Spec
	err := s.read("models", name, &spec)
	return spec, err
}

// ListModels returns all stored model names, sorted.
func (s *Store) ListModels() ([]string, error) { return s.list("models") }

// QueryModels returns the stored model specs matching all non-zero filter
// fields: task, architecture and a minimum capability.
func (s *Store) QueryModels(task, arch string, minCapability float64) ([]modelhub.Spec, error) {
	names, err := s.ListModels()
	if err != nil {
		return nil, err
	}
	var out []modelhub.Spec
	for _, n := range names {
		spec, err := s.GetModel(n)
		if err != nil {
			return nil, err
		}
		if task != "" && spec.Task != task {
			continue
		}
		if arch != "" && spec.Arch != arch {
			continue
		}
		if spec.Capability < minCapability {
			continue
		}
		out = append(out, spec)
	}
	return out, nil
}

// PutDataset persists a dataset spec.
func (s *Store) PutDataset(spec datahub.Spec) error { return s.write("datasets", spec.Name, spec) }

// GetDataset retrieves a dataset spec by name.
func (s *Store) GetDataset(name string) (datahub.Spec, error) {
	var spec datahub.Spec
	err := s.read("datasets", name, &spec)
	return spec, err
}

// ListDatasets returns all stored dataset names, sorted.
func (s *Store) ListDatasets() ([]string, error) { return s.list("datasets") }

// PutMatrix persists a performance matrix under a name (e.g. "nlp") in
// the binary artifact format. A matrix the binary encoder refuses (ragged
// entries) falls back to JSON, so nothing is ever unpersistable.
func (s *Store) PutMatrix(name string, m *perfmatrix.Matrix) error {
	data, err := artifact.EncodeMatrix(m)
	if err != nil {
		return s.write("matrices", name, m)
	}
	return s.writeBinary("matrices", name, data)
}

// GetMatrix retrieves a performance matrix by name: binary first, JSON
// fallback for stores written by older binaries (the read migrates the
// artifact to binary, best-effort). A missing matrix is ErrNotFound; an
// undecodable one is ErrCorrupt naming the file.
func (s *Store) GetMatrix(name string) (*perfmatrix.Matrix, error) {
	var m *perfmatrix.Matrix
	err := s.withBinary("matrices", name, func(data []byte) error {
		var derr error
		m, derr = artifact.DecodeMatrix(data)
		return derr
	})
	if err == nil {
		return m, nil
	}
	if !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	var jm perfmatrix.Matrix
	if jerr := s.read("matrices", name, &jm); jerr != nil {
		return nil, jerr
	}
	if data, eerr := artifact.EncodeMatrix(&jm); eerr == nil {
		_ = s.writeBinary("matrices", name, data)
	}
	return &jm, nil
}

// ListMatrices returns all stored matrix names, sorted.
func (s *Store) ListMatrices() ([]string, error) { return s.list("matrices") }

// PutRecall persists the clustering-stage artifact of the offline pipeline
// under a name (conventionally the same key as the matrix it derives
// from), in the binary artifact format with JSON fallback.
func (s *Store) PutRecall(name string, a *recall.Artifact) error {
	data, err := artifact.EncodeRecall(a)
	if err != nil {
		return s.write("recalls", name, a)
	}
	return s.writeBinary("recalls", name, data)
}

// GetRecall retrieves a clustering-stage artifact by name (binary first,
// JSON fallback with best-effort migration, like GetMatrix).
func (s *Store) GetRecall(name string) (*recall.Artifact, error) {
	var a *recall.Artifact
	err := s.withBinary("recalls", name, func(data []byte) error {
		var derr error
		a, derr = artifact.DecodeRecall(data)
		return derr
	})
	if err == nil {
		return a, nil
	}
	if !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	var ja recall.Artifact
	if jerr := s.read("recalls", name, &ja); jerr != nil {
		return nil, jerr
	}
	if data, eerr := artifact.EncodeRecall(&ja); eerr == nil {
		_ = s.writeBinary("recalls", name, data)
	}
	return &ja, nil
}

// ListRecalls returns all stored recall-artifact names, sorted.
func (s *Store) ListRecalls() ([]string, error) { return s.list("recalls") }

// PutFrame persists a numeric feature frame. Frames are binary-only —
// they never had a JSON schema to stay compatible with.
func (s *Store) PutFrame(name string, f *numeric.Frame) error {
	data, err := artifact.EncodeFrame(f)
	if err != nil {
		return err
	}
	return s.writeBinary("frames", name, data)
}

// GetFrame retrieves a numeric feature frame by name.
func (s *Store) GetFrame(name string) (*numeric.Frame, error) {
	var f *numeric.Frame
	err := s.withBinary("frames", name, func(data []byte) error {
		var derr error
		f, derr = artifact.DecodeFrame(data)
		return derr
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ListFrames returns all stored frame names, sorted.
func (s *Store) ListFrames() ([]string, error) { return s.list("frames") }

// artifactKinds maps a wire/store kind directory to the binary format's
// kind tag. These are the only kinds OpenArtifact and PutVerified serve.
var artifactKinds = map[string]artifact.Kind{
	"matrices": artifact.KindMatrix,
	"recalls":  artifact.KindRecall,
	"frames":   artifact.KindFrame,
}

// OpenArtifact returns the verified binary encoding of an artifact plus
// its input fingerprint — the payload of GET /v1/artifacts/{kind}/{name}.
// An artifact that only exists as JSON (older store) is migrated to
// binary on the way out, so a fleet peer can always fetch it. Unknown
// kinds and missing artifacts are ErrNotFound; a failed checksum is
// ErrCorrupt.
func (s *Store) OpenArtifact(kind, name string) ([]byte, uint64, error) {
	k, ok := artifactKinds[kind]
	if !ok {
		return nil, 0, fmt.Errorf("%w: kind %q", ErrNotFound, kind)
	}
	open := func() (data []byte, fp uint64, err error) {
		err = s.withBinary(kind, name, func(mapped []byte) error {
			h, verr := artifact.Verify(mapped)
			if verr != nil {
				return verr
			}
			if h.Kind != k {
				return fmt.Errorf("kind %s under %s/", h.Kind, kind)
			}
			data = append([]byte(nil), mapped...)
			fp = h.Fingerprint
			return nil
		})
		return data, fp, err
	}
	data, fp, err := open()
	if errors.Is(err, ErrNotFound) {
		// Trigger the JSON-fallback migration, then retry the binary path.
		var merr error
		switch kind {
		case "matrices":
			_, merr = s.GetMatrix(name)
		case "recalls":
			_, merr = s.GetRecall(name)
		default:
			merr = err
		}
		if merr != nil {
			return nil, 0, err
		}
		data, fp, err = open()
	}
	return data, fp, err
}

// PutVerified stores fetched artifact bytes after verifying the checksum
// and that the encoding's kind matches the directory it is filed under —
// a corrupted or mislabeled fetch never lands on disk.
func (s *Store) PutVerified(kind, name string, data []byte) error {
	k, ok := artifactKinds[kind]
	if !ok {
		return fmt.Errorf("store: unknown artifact kind %q", kind)
	}
	h, err := artifact.Verify(data)
	if err != nil {
		return fmt.Errorf("store: put %s/%s: %w", kind, name, err)
	}
	if h.Kind != k {
		return fmt.Errorf("store: put %s/%s: encoding is kind %s", kind, name, h.Kind)
	}
	return s.writeBinary(kind, name, data)
}

// SaveRepository persists every spec of a repository.
func (s *Store) SaveRepository(specs []modelhub.Spec) error {
	for _, spec := range specs {
		if err := s.PutModel(spec); err != nil {
			return err
		}
	}
	return nil
}

// SaveCatalogSpecs persists every dataset spec group.
func (s *Store) SaveCatalogSpecs(groups ...[]datahub.Spec) error {
	for _, g := range groups {
		for _, spec := range g {
			if err := s.PutDataset(spec); err != nil {
				return err
			}
		}
	}
	return nil
}
