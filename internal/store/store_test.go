package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestModelRoundtrip(t *testing.T) {
	s := openTemp(t)
	spec := modelhub.NLPSpecs()[0]
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetModel(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != spec.Name || got.Capability != spec.Capability || got.Arch != spec.Arch {
		t.Fatalf("roundtrip lost fields: %+v", got)
	}
}

func TestSlashNamesSurvive(t *testing.T) {
	s := openTemp(t)
	spec := modelhub.Spec{Name: "org/sub/model-v2", Task: "nlp", Arch: "bert",
		Params: 1, Capability: 0.5, SourceClasses: 2}
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	names, err := s.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "org/sub/model-v2" {
		t.Fatalf("names = %v", names)
	}
	if _, err := s.GetModel("org/sub/model-v2"); err != nil {
		t.Fatal(err)
	}
}

// TestSlugCollisionSafe: names that the old slugging collapsed onto one
// file ("a/b" vs "a__b", "a b" vs "a_b") must each round-trip to their own
// artifact, and listing must invert the encoding exactly.
func TestSlugCollisionSafe(t *testing.T) {
	s := openTemp(t)
	names := []string{"a/b", "a__b", "a b", "a_b", "a%5Fb", "pct%name", "tri___ple"}
	for i, name := range names {
		spec := modelhub.Spec{Name: name, Task: "nlp", Arch: "bert",
			Params: i + 1, Capability: 0.5, SourceClasses: 2}
		if err := s.PutModel(spec); err != nil {
			t.Fatalf("put %q: %v", name, err)
		}
	}
	got, err := s.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(names) {
		t.Fatalf("stored %d names, listed %d: %v", len(names), len(got), got)
	}
	for i, name := range names {
		spec, err := s.GetModel(name)
		if err != nil {
			t.Fatalf("get %q: %v", name, err)
		}
		if spec.Name != name || spec.Params != i+1 {
			t.Fatalf("name %q read back as %+v — collision overwrote it", name, spec)
		}
	}
}

func TestSlugRoundTrip(t *testing.T) {
	for _, name := range []string{"plain", "a/b/c", "a b c", "under_score", "%", "%25", "__", "mix_ %/x"} {
		file := slug(name)
		if got := unslug(strings.TrimSuffix(file, ".json")); got != name {
			t.Errorf("slug(%q) = %q decodes to %q", name, file, got)
		}
		if strings.ContainsAny(file, "/ ") {
			t.Errorf("slug(%q) = %q contains a path or space character", name, file)
		}
	}
	// Injectivity over a brute-force alphabet of tricky short names.
	alphabet := []rune{'a', '_', '/', ' ', '%'}
	seen := map[string]string{}
	var walk func(prefix string, depth int)
	walk = func(prefix string, depth int) {
		if prev, ok := seen[slug(prefix)]; ok && prev != prefix {
			t.Fatalf("slug collision: %q and %q -> %q", prev, prefix, slug(prefix))
		} else if !ok {
			seen[slug(prefix)] = prefix
		}
		if depth == 0 {
			return
		}
		for _, r := range alphabet {
			walk(prefix+string(r), depth-1)
		}
	}
	walk("", 4)
}

// TestLegacyStoreMigration: artifacts written by older binaries under the
// ambiguous legacy encoding stay readable by exact name, and the next
// write migrates them to the collision-safe name without duplicating
// list entries.
func TestLegacyStoreMigration(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a pre-upgrade store: a spec with "_" in its name filed
	// under the legacy encoding (underscore kept literal).
	spec := modelhub.Spec{Name: "Jeevesh8/bert_ft_qqp-40", Task: "nlp", Arch: "bert",
		Params: 1, Capability: 0.5, SourceClasses: 2}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	legacyPath := filepath.Join(dir, "models", "Jeevesh8__bert_ft_qqp-40.json")
	if err := os.WriteFile(legacyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := s.GetModel(spec.Name)
	if err != nil {
		t.Fatalf("legacy artifact unreadable after upgrade: %v", err)
	}
	if got.Name != spec.Name {
		t.Fatalf("legacy read returned %+v", got)
	}
	// QueryModels walks list + get; it must survive a legacy store.
	if specs, err := s.QueryModels("nlp", "", 0); err != nil || len(specs) != 1 {
		t.Fatalf("QueryModels over legacy store: %v, %+v", err, specs)
	}

	// A rewrite migrates the file: new name present, legacy gone, one
	// list entry, still readable.
	spec.Capability = 0.9
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacyPath); !os.IsNotExist(err) {
		t.Fatalf("legacy file not migrated away: %v", err)
	}
	names, err := s.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != spec.Name {
		t.Fatalf("post-migration names = %v", names)
	}
	if got, err := s.GetModel(spec.Name); err != nil || got.Capability != 0.9 {
		t.Fatalf("post-migration read: %v, %+v", err, got)
	}
}

func TestGetMissing(t *testing.T) {
	s := openTemp(t)
	if _, err := s.GetModel("nope"); err == nil {
		t.Fatal("missing model accepted")
	}
	if _, err := s.GetDataset("nope"); err == nil {
		t.Fatal("missing dataset accepted")
	}
	if _, err := s.GetMatrix("nope"); err == nil {
		t.Fatal("missing matrix accepted")
	}
}

func TestQueryModels(t *testing.T) {
	s := openTemp(t)
	if err := s.SaveRepository(modelhub.NLPSpecs()); err != nil {
		t.Fatal(err)
	}
	berts, err := s.QueryModels("nlp", "bert", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(berts) == 0 {
		t.Fatal("no berts found")
	}
	for _, m := range berts {
		if m.Arch != "bert" {
			t.Fatalf("query leaked arch %q", m.Arch)
		}
	}
	strong, err := s.QueryModels("nlp", "", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range strong {
		if m.Capability < 0.7 {
			t.Fatalf("query leaked capability %v", m.Capability)
		}
	}
	cv, err := s.QueryModels("cv", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv) != 0 {
		t.Fatal("cv query should be empty")
	}
}

func TestDatasetRoundtrip(t *testing.T) {
	s := openTemp(t)
	if err := s.SaveCatalogSpecs(datahub.NLPBenchmarks(), datahub.NLPTargets()); err != nil {
		t.Fatal(err)
	}
	names, err := s.ListDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 28 {
		t.Fatalf("stored %d datasets", len(names))
	}
	spec, err := s.GetDataset("glue/cola")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Classes != 2 || !spec.Benchmark {
		t.Fatalf("roundtrip spec %+v", spec)
	}
}

func TestMatrixRoundtrip(t *testing.T) {
	s := openTemp(t)
	w := synth.NewWorld(42)
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, modelhub.NLPSpecs()[:2])
	if err != nil {
		t.Fatal(err)
	}
	var benches []*datahub.Dataset
	for _, spec := range datahub.NLPBenchmarks()[:2] {
		d, err := datahub.Generate(w, spec, datahub.Sizes{Train: 30, Val: 20, Test: 30})
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, d)
	}
	m, err := perfmatrix.Build(repo, benches, trainer.Default(datahub.TaskNLP), 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutMatrix("nlp", m); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetMatrix("nlp")
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Perf(m.Models[0], m.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Perf(m.Models[0], m.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("matrix changed across store roundtrip")
	}
	mats, err := s.ListMatrices()
	if err != nil {
		t.Fatal(err)
	}
	if len(mats) != 1 || mats[0] != "nlp" {
		t.Fatalf("matrices = %v", mats)
	}
}

// TestRecallArtifactRoundtrip: the clustering-stage artifact persists and
// reloads losslessly, and GetMissing-style lookups fail cleanly.
func TestRecallArtifactRoundtrip(t *testing.T) {
	s := openTemp(t)
	art := &recall.Artifact{
		Task: "nlp", Seed: 42, SimilarityK: 5, Threshold: 0.08, Scorer: "leep-calibrated",
		Models: []string{"m0", "m1", "m2"}, Assign: []int{0, 1, 0}, Clusters: 2,
	}
	if err := s.PutRecall("nlp-seed42", art); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRecall("nlp-seed42")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, art) {
		t.Fatalf("recall artifact changed across roundtrip: %+v vs %+v", got, art)
	}
	names, err := s.ListRecalls()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "nlp-seed42" {
		t.Fatalf("recalls = %v", names)
	}
	if _, err := s.GetRecall("nope"); err == nil {
		t.Fatal("missing recall artifact accepted")
	}
}

func TestOverwrite(t *testing.T) {
	s := openTemp(t)
	spec := modelhub.NLPSpecs()[0]
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	spec.Capability = 0.99
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetModel(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Capability != 0.99 {
		t.Fatal("overwrite did not take")
	}
	names, err := s.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatal("overwrite duplicated entry")
	}
}
