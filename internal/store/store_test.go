package store

import (
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestModelRoundtrip(t *testing.T) {
	s := openTemp(t)
	spec := modelhub.NLPSpecs()[0]
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetModel(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != spec.Name || got.Capability != spec.Capability || got.Arch != spec.Arch {
		t.Fatalf("roundtrip lost fields: %+v", got)
	}
}

func TestSlashNamesSurvive(t *testing.T) {
	s := openTemp(t)
	spec := modelhub.Spec{Name: "org/sub/model-v2", Task: "nlp", Arch: "bert",
		Params: 1, Capability: 0.5, SourceClasses: 2}
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	names, err := s.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "org/sub/model-v2" {
		t.Fatalf("names = %v", names)
	}
	if _, err := s.GetModel("org/sub/model-v2"); err != nil {
		t.Fatal(err)
	}
}

func TestGetMissing(t *testing.T) {
	s := openTemp(t)
	if _, err := s.GetModel("nope"); err == nil {
		t.Fatal("missing model accepted")
	}
	if _, err := s.GetDataset("nope"); err == nil {
		t.Fatal("missing dataset accepted")
	}
	if _, err := s.GetMatrix("nope"); err == nil {
		t.Fatal("missing matrix accepted")
	}
}

func TestQueryModels(t *testing.T) {
	s := openTemp(t)
	if err := s.SaveRepository(modelhub.NLPSpecs()); err != nil {
		t.Fatal(err)
	}
	berts, err := s.QueryModels("nlp", "bert", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(berts) == 0 {
		t.Fatal("no berts found")
	}
	for _, m := range berts {
		if m.Arch != "bert" {
			t.Fatalf("query leaked arch %q", m.Arch)
		}
	}
	strong, err := s.QueryModels("nlp", "", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range strong {
		if m.Capability < 0.7 {
			t.Fatalf("query leaked capability %v", m.Capability)
		}
	}
	cv, err := s.QueryModels("cv", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv) != 0 {
		t.Fatal("cv query should be empty")
	}
}

func TestDatasetRoundtrip(t *testing.T) {
	s := openTemp(t)
	if err := s.SaveCatalogSpecs(datahub.NLPBenchmarks(), datahub.NLPTargets()); err != nil {
		t.Fatal(err)
	}
	names, err := s.ListDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 28 {
		t.Fatalf("stored %d datasets", len(names))
	}
	spec, err := s.GetDataset("glue/cola")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Classes != 2 || !spec.Benchmark {
		t.Fatalf("roundtrip spec %+v", spec)
	}
}

func TestMatrixRoundtrip(t *testing.T) {
	s := openTemp(t)
	w := synth.NewWorld(42)
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, modelhub.NLPSpecs()[:2])
	if err != nil {
		t.Fatal(err)
	}
	var benches []*datahub.Dataset
	for _, spec := range datahub.NLPBenchmarks()[:2] {
		d, err := datahub.Generate(w, spec, datahub.Sizes{Train: 30, Val: 20, Test: 30})
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, d)
	}
	m, err := perfmatrix.Build(repo, benches, trainer.Default(datahub.TaskNLP), 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutMatrix("nlp", m); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetMatrix("nlp")
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Perf(m.Models[0], m.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Perf(m.Models[0], m.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("matrix changed across store roundtrip")
	}
	mats, err := s.ListMatrices()
	if err != nil {
		t.Fatal(err)
	}
	if len(mats) != 1 || mats[0] != "nlp" {
		t.Fatalf("matrices = %v", mats)
	}
}

func TestOverwrite(t *testing.T) {
	s := openTemp(t)
	spec := modelhub.NLPSpecs()[0]
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	spec.Capability = 0.99
	if err := s.PutModel(spec); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetModel(spec.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Capability != 0.99 {
		t.Fatal("overwrite did not take")
	}
	names, err := s.ListModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatal("overwrite duplicated entry")
	}
}
