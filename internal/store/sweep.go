package store

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"twophase/internal/artifact"
)

// QuarantineDir is the store subdirectory (mirroring the kind layout:
// quarantine/<kind>/<file>) that the recovery sweep and the corrupt-read
// path move bad files into. Nothing under it is ever listed, decoded or
// served; it exists so operators can inspect what went wrong instead of
// the store silently deleting evidence.
const QuarantineDir = "quarantine"

// SweepReport summarizes one startup recovery sweep.
type SweepReport struct {
	// Orphans counts temp files left by a writer killed mid-write.
	Orphans int
	// Corrupt counts artifacts whose checksum or encoding failed.
	Corrupt int
	// Moved lists the quarantined paths, relative to the store root.
	Moved []string
}

// Sweep is the startup recovery pass: it quarantines orphaned temp files
// (a writer killed between CreateTemp and rename leaves `*.tmp*` litter
// that would otherwise accumulate forever) and artifacts that fail their
// checksum or encoding, so a crashed or fault-injected predecessor can
// never make this process serve, shadow, or re-serve bad bytes. Open runs
// it before the store serves; it is also safe to call on a live store.
func (s *Store) Sweep() (SweepReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep SweepReport
	for kind := range kindDirs() {
		entries, err := os.ReadDir(filepath.Join(s.dir, kind))
		if err != nil {
			return rep, fmt.Errorf("store: sweep %s: %w", kind, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			switch {
			case isOrphanTemp(name):
				if s.quarantineLocked(kind, name) {
					rep.Orphans++
					rep.Moved = append(rep.Moved, filepath.Join(QuarantineDir, kind, name))
				}
			case !fileHealthyLocked(filepath.Join(s.dir, kind, name), name):
				if s.quarantineLocked(kind, name) {
					rep.Corrupt++
					rep.Moved = append(rep.Moved, filepath.Join(QuarantineDir, kind, name))
				}
			}
		}
	}
	return rep, nil
}

// kindDirs returns the set of artifact kind directories a store owns.
func kindDirs() map[string]bool {
	return map[string]bool{
		"models": true, "datasets": true, "matrices": true, "recalls": true, "frames": true,
	}
}

// isOrphanTemp recognizes the litter of a writer killed mid-writeFile:
// CreateTemp names carry a ".tmp" infix and a random suffix, so they can
// never end in ".json" or ".bin" — and every real artifact does.
func isOrphanTemp(name string) bool {
	return strings.Contains(name, ".tmp") &&
		!strings.HasSuffix(name, ".json") && !strings.HasSuffix(name, ".bin")
}

// fileHealthyLocked reports whether an artifact file decodes: .bin must
// pass the checksummed artifact.Verify, .json must at least be valid
// JSON. Unknown extensions are left alone (healthy) — the sweep only
// judges files the store itself would serve.
func fileHealthyLocked(path, name string) bool {
	switch {
	case strings.HasSuffix(name, ".bin"):
		data, release, err := artifact.MapFile(path)
		if err != nil {
			return false
		}
		_, verr := artifact.Verify(data)
		release()
		return verr == nil
	case strings.HasSuffix(name, ".json"):
		data, err := os.ReadFile(path)
		return err == nil && json.Valid(data)
	default:
		return true
	}
}

// quarantineLocked moves kind/name into quarantine/<kind>/, uniquifying
// on collision. Callers hold s.mu. Returns false (and logs) if the move
// failed; the file is left in place and the next sweep retries.
func (s *Store) quarantineLocked(kind, name string) bool {
	dstDir := filepath.Join(s.dir, QuarantineDir, kind)
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		log.Printf("store: quarantine mkdir %s: %v", dstDir, err)
		return false
	}
	src := filepath.Join(s.dir, kind, name)
	dst := filepath.Join(dstDir, name)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(dstDir, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.Rename(src, dst); err != nil {
		log.Printf("store: quarantine %s: %v", src, err)
		return false
	}
	log.Printf("store: quarantined %s -> %s", src, dst)
	return true
}

// quarantineCorrupt handles corruption detected on the read path: it
// re-verifies the file under the write lock (a concurrent Put may have
// already healed it with a good rewrite — quarantining that would throw
// away fresh data) and moves it into quarantine only if it is still bad.
func (s *Store) quarantineCorrupt(kind, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, kind, name)
	if _, err := os.Lstat(path); err != nil {
		return
	}
	if fileHealthyLocked(path, name) {
		return
	}
	s.quarantineLocked(kind, name)
}
