package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/faultinject"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/trainer"
)

// sweepMatrix builds a tiny encodable matrix for sweep tests.
func sweepMatrix() *perfmatrix.Matrix {
	m := &perfmatrix.Matrix{
		Task:     "nlp",
		Epochs:   2,
		Seed:     42,
		HP:       trainer.Hyperparams{LearningRate: 0.1, BatchSize: 8, Epochs: 2, L2: 1e-4},
		Sizes:    datahub.Sizes{Train: 60, Val: 40, Test: 48},
		Models:   []string{"m0"},
		Datasets: []string{"d0"},
		Entries: map[string]*perfmatrix.Entry{
			"m0\x00d0": {Model: "m0", Dataset: "d0", Val: []float64{0.1, 0.2}, Test: []float64{0.3, 0.4}},
		},
	}
	return m
}

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestOpenSweepsOrphansAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.PutMatrix("nlp", sweepMatrix()); err != nil {
		t.Fatal(err)
	}
	// Litter the store like a crashed writer and a corrupting disk would.
	orphan := filepath.Join(dir, "matrices", "nlp.bin.tmp123456")
	if err := os.WriteFile(orphan, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "matrices", "bad.bin"), []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "recalls", "broken.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The good artifact survived the sweep and still reads.
	if _, err := s2.GetMatrix("nlp"); err != nil {
		t.Fatalf("good matrix swept away: %v", err)
	}
	// Every planted bad file left its kind directory...
	for _, name := range listDir(t, filepath.Join(dir, "matrices")) {
		if strings.Contains(name, ".tmp") || name == "bad.bin" {
			t.Fatalf("sweep left %s in matrices/", name)
		}
	}
	if got := listDir(t, filepath.Join(dir, "recalls")); len(got) != 0 {
		t.Fatalf("sweep left %v in recalls/", got)
	}
	// ...and landed in quarantine.
	q := listDir(t, filepath.Join(dir, QuarantineDir, "matrices"))
	if len(q) != 2 {
		t.Fatalf("quarantine/matrices = %v, want the orphan and bad.bin", q)
	}
	if got := listDir(t, filepath.Join(dir, QuarantineDir, "recalls")); len(got) != 1 || got[0] != "broken.json" {
		t.Fatalf("quarantine/recalls = %v", got)
	}
}

func TestSweepUniquifiesQuarantineCollisions(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(filepath.Join(dir, "frames", "bad.bin"), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corrupt != 1 {
			t.Fatalf("sweep %d: report %+v", i, rep)
		}
	}
	q := listDir(t, filepath.Join(dir, QuarantineDir, "frames"))
	if len(q) != 2 {
		t.Fatalf("quarantine/frames = %v, want two uniquified entries", q)
	}
}

func TestCorruptReadQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutMatrix("nlp", sweepMatrix()); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the binary artifact's body: the checksum must catch
	// it, and the read must quarantine the file so it is never decoded
	// again or allowed to shadow a healing rewrite.
	path := filepath.Join(dir, "matrices", "nlp.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetMatrix("nlp"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetMatrix on corrupt artifact = %v, want ErrCorrupt", err)
	}
	if _, err := os.Lstat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt artifact still in place after read")
	}
	if got := listDir(t, filepath.Join(dir, QuarantineDir, "matrices")); len(got) != 1 {
		t.Fatalf("quarantine/matrices = %v", got)
	}
	// With the corrupt file quarantined the artifact is now simply
	// absent: the caller rebuilds, and the rewrite heals the store.
	if _, err := s.GetMatrix("nlp"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine: %v, want ErrNotFound", err)
	}
	if err := s.PutMatrix("nlp", sweepMatrix()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetMatrix("nlp"); err != nil {
		t.Fatalf("healing rewrite failed to serve: %v", err)
	}
}

func TestWriteFaultSitesAndTornOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := modelhub.Spec{Name: "m", Task: "nlp", Arch: "bert", Params: 1, Capability: 0.5, SourceClasses: 2}

	// A torn write fails the Put and leaves an orphaned temp file — the
	// exact litter the sweep exists to clean.
	inj, err := faultinject.Parse("store.write:torn:0.5#1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(inj)
	if err := s.PutModel(spec); !errors.Is(err, faultinject.ErrInjected) {
		faultinject.Reset()
		t.Fatalf("torn write = %v, want ErrInjected", err)
	}
	faultinject.Reset()
	orphans := 0
	for _, name := range listDir(t, filepath.Join(dir, "models")) {
		if isOrphanTemp(name) {
			orphans++
		}
	}
	if orphans != 1 {
		t.Fatalf("torn write left %d orphans, want 1", orphans)
	}
	rep, err := s.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans != 1 {
		t.Fatalf("sweep report %+v, want 1 orphan", rep)
	}

	// A failed fsync aborts before rename: no artifact lands, and the
	// next write (fault drained) succeeds.
	inj, err = faultinject.Parse("store.fsync:err#1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(inj)
	defer faultinject.Reset()
	if err := s.PutModel(spec); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("fsync fault = %v, want ErrInjected", err)
	}
	if _, err := s.GetModel("m"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("artifact landed despite failed fsync: %v", err)
	}
	if err := s.PutModel(spec); err != nil {
		t.Fatalf("write after drained schedule: %v", err)
	}
	if _, err := s.GetModel("m"); err != nil {
		t.Fatal(err)
	}
}

func TestReadFaultIsTransientNotMissing(t *testing.T) {
	s := openTemp(t)
	if err := s.PutMatrix("nlp", sweepMatrix()); err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.Parse("store.read:err#1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Activate(inj)
	defer faultinject.Reset()
	_, err = s.GetMatrix("nlp")
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected read fault = %v", err)
	}
	// Crucially NOT a miss and NOT corruption: a transient I/O error must
	// never silently trigger a rebuild or a quarantine.
	if errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) {
		t.Fatalf("read fault mapped to %v", err)
	}
	if _, err := s.GetMatrix("nlp"); err != nil {
		t.Fatalf("read after drained schedule: %v", err)
	}
}
