package store

import (
	"strings"
	"testing"
)

// FuzzSlugInjective upgrades the brute-force injectivity walk in
// TestSlugRoundTrip to native fuzzing: for arbitrary artifact names the
// encoding must round-trip exactly (which implies injectivity — two
// names colliding on one file could not both decode back), produce a
// file name safe for a flat store directory, and never be mistaken for
// a legacy-encoded file (the migration logic deletes those on rewrite).
//
// CI runs this as a short -fuzztime smoke on every push; the seed corpus
// below always runs under plain `go test`.
func FuzzSlugInjective(f *testing.F) {
	for _, name := range []string{
		"", "plain", "a/b", "a__b", "a b", "a_b", "a%5Fb", "pct%name",
		"tri___ple", "glue/cola", "nlp-seed42", "%25", "__", "%", "_", "/",
		" ", "a/b/c", "mix_ %/x", "Jeevesh8/bert_ft_qqp-40",
	} {
		f.Add(name)
	}
	f.Fuzz(func(t *testing.T, name string) {
		file := slug(name)
		base, ok := strings.CutSuffix(file, ".json")
		if !ok {
			t.Fatalf("slug(%q) = %q lost its .json suffix", name, file)
		}
		// Round-trip exactness: the file name alone recovers the name.
		if got := unslug(base); got != name {
			t.Fatalf("slug(%q) = %q decodes to %q", name, file, got)
		}
		// Flat-directory safety: no separators, no spaces.
		if strings.ContainsAny(base, "/ ") {
			t.Fatalf("slug(%q) = %q contains a path or space character", name, file)
		}
		// New-format files must never look legacy-only, or the write-path
		// migration could delete a current artifact.
		if legacyOnly(file) {
			t.Fatalf("slug(%q) = %q classified as legacy-only", name, file)
		}
	})
}

// FuzzSlugPairwise feeds the fuzzer explicit name pairs so it can hunt
// for collisions directly instead of relying on round-trip reasoning.
func FuzzSlugPairwise(f *testing.F) {
	f.Add("a/b", "a__b")
	f.Add("a b", "a_b")
	f.Add("a%5Fb", "a_b")
	f.Add("x", "y")
	f.Fuzz(func(t *testing.T, a, b string) {
		if a != b && slug(a) == slug(b) {
			t.Fatalf("slug collision: %q and %q -> %q", a, b, slug(a))
		}
	})
}
