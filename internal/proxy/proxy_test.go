package proxy

import (
	"math"
	"testing"
	"testing/quick"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/synth"
)

// fixture builds one in-domain and one foreign model plus a target dataset.
func fixture(t *testing.T) (aligned, foreign *modelhub.Model, d *datahub.Dataset) {
	t.Helper()
	w := synth.NewWorld(42)
	var err error
	aligned, err = modelhub.Materialize(w, modelhub.Spec{
		Name: "proxy/aligned", Task: datahub.TaskNLP, Arch: "bert", Params: 110,
		Domains:    map[string]float64{datahub.DomainSentiment: 1},
		Capability: 0.6, SourceClasses: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	foreign, err = modelhub.Materialize(w, modelhub.Spec{
		Name: "proxy/foreign", Task: datahub.TaskNLP, Arch: "bert", Params: 110,
		Domains:    map[string]float64{datahub.DomainMultilingual: 1},
		Capability: 0.6, SourceClasses: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err = datahub.Generate(w, datahub.Spec{
		Name: "proxy/ds", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainSentiment: 1},
		Classes: 3, Separability: 2, Noise: 1.8,
	}, datahub.Sizes{Train: 200, Val: 50, Test: 50})
	if err != nil {
		t.Fatal(err)
	}
	return aligned, foreign, d
}

func TestLEEPNonPositive(t *testing.T) {
	aligned, _, d := fixture(t)
	s, err := LEEP{}.Score(aligned, d)
	if err != nil {
		t.Fatal(err)
	}
	if s > 1e-9 || math.IsNaN(s) {
		t.Fatalf("LEEP = %v, must be a log-likelihood <= 0", s)
	}
}

func TestLEEPPrefersAligned(t *testing.T) {
	aligned, foreign, d := fixture(t)
	sa, err := LEEP{}.Score(aligned, d)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := LEEP{}.Score(foreign, d)
	if err != nil {
		t.Fatal(err)
	}
	if sa <= sf {
		t.Fatalf("aligned LEEP %v not above foreign %v", sa, sf)
	}
}

func TestCalibratedLEEPPrefersAligned(t *testing.T) {
	aligned, foreign, d := fixture(t)
	sa, err := CalibratedLEEP{}.Score(aligned, d)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := CalibratedLEEP{}.Score(foreign, d)
	if err != nil {
		t.Fatal(err)
	}
	if sa <= sf {
		t.Fatalf("aligned calibrated LEEP %v not above foreign %v", sa, sf)
	}
	// The aligned model's predictions carry label information, so its
	// calibrated score must be clearly positive.
	if sa <= 0 {
		t.Fatalf("aligned calibrated LEEP %v should be positive", sa)
	}
}

func TestCalibratedLEEPDeterministic(t *testing.T) {
	aligned, _, d := fixture(t)
	a, err := CalibratedLEEP{}.Score(aligned, d)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CalibratedLEEP{}.Score(aligned, d)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("calibrated LEEP not deterministic")
	}
}

func TestNCEPrefersAligned(t *testing.T) {
	aligned, foreign, d := fixture(t)
	sa, err := NCE{}.Score(aligned, d)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NCE{}.Score(foreign, d)
	if err != nil {
		t.Fatal(err)
	}
	if sa <= sf {
		t.Fatalf("aligned NCE %v not above foreign %v", sa, sf)
	}
}

func TestKNNRangeAndOrdering(t *testing.T) {
	aligned, foreign, d := fixture(t)
	sa, err := KNN{}.Score(aligned, d)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := KNN{}.Score(foreign, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{sa, sf} {
		if s < 0 || s > 1 {
			t.Fatalf("kNN accuracy %v outside [0,1]", s)
		}
	}
	if sa <= sf {
		t.Fatalf("aligned kNN %v not above foreign %v", sa, sf)
	}
}

func TestKNNName(t *testing.T) {
	if (KNN{}).Name() != "knn5" {
		t.Fatalf("default kNN name %q", KNN{}.Name())
	}
	if (KNN{K: 3}).Name() != "knn3" {
		t.Fatal("kNN name ignores K")
	}
}

func TestTaskMismatchRejected(t *testing.T) {
	aligned, _, _ := fixture(t)
	w := synth.NewWorld(42)
	cvDS, err := datahub.Generate(w, datahub.CVTargets()[0], datahub.Sizes{Train: 20, Val: 10, Test: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scorer{LEEP{}, CalibratedLEEP{}, NCE{}, KNN{}} {
		if _, err := s.Score(aligned, cvDS); err == nil {
			t.Fatalf("%s accepted task mismatch", s.Name())
		}
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{-2, 0, 2})
	if out[0] != 0 || out[1] != 0.5 || out[2] != 1 {
		t.Fatalf("normalize = %v", out)
	}
	for _, v := range Normalize([]float64{3, 3, 3}) {
		if v != 0.5 {
			t.Fatal("constant scores should map to 0.5")
		}
	}
	if len(Normalize(nil)) != 0 {
		t.Fatal("nil input")
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(raw [9]float64) bool {
		in := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			in[i] = math.Mod(x, 100)
		}
		out := Normalize(in)
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnsemble(t *testing.T) {
	aligned, foreign, d := fixture(t)
	e := Ensemble{Scorers: []Scorer{CalibratedLEEP{}, KNN{}}}
	scores, err := e.ScoreAll([]*modelhub.Model{aligned, foreign}, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores %v", scores)
	}
	if scores[0] <= scores[1] {
		t.Fatalf("ensemble should prefer aligned: %v", scores)
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("normalized ensemble score %v", s)
		}
	}
	if _, err := (Ensemble{}).ScoreAll(nil, d); err == nil {
		t.Fatal("empty ensemble accepted")
	}
	if _, err := (Ensemble{}).Score(aligned, d); err == nil {
		t.Fatal("empty ensemble Score accepted")
	}
}

func TestScorerNames(t *testing.T) {
	names := map[string]bool{}
	for _, s := range []Scorer{LEEP{}, CalibratedLEEP{}, NCE{}, KNN{}, Ensemble{}} {
		n := s.Name()
		if n == "" || names[n] {
			t.Fatalf("bad or duplicate scorer name %q", n)
		}
		names[n] = true
	}
}
