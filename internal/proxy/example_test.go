package proxy_test

import (
	"fmt"

	"twophase/internal/proxy"
)

// ExampleNormalize shows the Eq. 2 normalization of raw proxy scores into
// [0, 1] across a candidate set.
func ExampleNormalize() {
	scores := proxy.Normalize([]float64{-1.2, -0.9, -0.6})
	fmt.Printf("%.1f %.1f %.1f\n", scores[0], scores[1], scores[2])
	// Output: 0.0 0.5 1.0
}
