// Package proxy implements the lightweight transferability scores of the
// coarse-recall phase. The paper adopts LEEP (Nguyen et al., ICML 2020);
// NCE and a kNN probe are provided as the alternatives discussed in §VI,
// and Ensemble combines several scorers (the §VII future-work extension).
//
// All scorers consume only frozen-model inference on the target training
// split — no gradient steps — which is why the framework charges them half
// a training epoch each (§V.D).
package proxy

import (
	"fmt"
	"math"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
)

// Scorer predicts the post-fine-tuning performance of a model on a target
// dataset without training. Higher is better; scales differ per scorer, so
// callers normalize across the scored set (as Eq. 2 prescribes).
type Scorer interface {
	// Name identifies the scorer in reports and ablations.
	Name() string
	// Score evaluates the model against the dataset's training split.
	Score(m *modelhub.Model, d *datahub.Dataset) (float64, error)
}

// MaxExamples caps how many target examples each scorer consumes; the
// paper notes a few hundred items suffice ("a target dataset with hundreds
// of data items", §III.A).
const MaxExamples = 200

// LEEP is the log expected empirical prediction score. It builds the
// empirical joint distribution P(target label y, source label z) from the
// source head's soft predictions, forms the conditional P(y|z), and
// returns the mean log-likelihood of the resulting "expected empirical
// predictor" on the target data.
type LEEP struct{}

// Name implements Scorer.
func (LEEP) Name() string { return "leep" }

// Score implements Scorer.
func (LEEP) Score(m *modelhub.Model, d *datahub.Dataset) (float64, error) {
	feats, ys, err := sample(m, d)
	if err != nil {
		return 0, err
	}
	theta := sourcePredictions(m, feats)
	return leepFromPredictions(theta, ys, d.Classes, m.SourceClasses), nil
}

// CalibratedLEEP is LEEP minus its permutation-null baseline: the LEEP the
// model would score on the same inputs with target labels shuffled. The
// null term captures how much likelihood the model earns purely from the
// capacity of its source label space (a 30-way head always builds a richer
// empirical predictor than a binary one); subtracting it leaves the label
// information — the transferability signal. This calibration is a
// necessary adaptation of the paper's plain LEEP to a repository whose
// source label spaces span 2-50 classes; DESIGN.md §2 records it.
type CalibratedLEEP struct {
	// Permutations is the number of label shuffles averaged into the
	// null term; 0 means 2.
	Permutations int
}

// Name implements Scorer.
func (CalibratedLEEP) Name() string { return "leep-calibrated" }

// Score implements Scorer.
func (c CalibratedLEEP) Score(m *modelhub.Model, d *datahub.Dataset) (float64, error) {
	feats, ys, err := sample(m, d)
	if err != nil {
		return 0, err
	}
	theta := sourcePredictions(m, feats)
	real := leepFromPredictions(theta, ys, d.Classes, m.SourceClasses)

	perms := c.Permutations
	if perms <= 0 {
		perms = 2
	}
	shuffled := make([]int, len(ys))
	copy(shuffled, ys)
	var null float64
	for p := 0; p < perms; p++ {
		rng := numeric.NewNamedRNG(uint64(p), "leep-null", m.Name, d.Name)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		null += leepFromPredictions(theta, shuffled, d.Classes, m.SourceClasses)
	}
	return real - null/float64(perms), nil
}

// sourcePredictions runs the frozen source head over already-extracted
// feature rows in one batched pass, returning one distribution per row.
func sourcePredictions(m *modelhub.Model, feats *numeric.Frame) *numeric.Frame {
	theta := numeric.NewFrame(feats.N, m.SourceClasses)
	m.SourceProbsFrame(feats, theta)
	return theta
}

// leepFromPredictions computes the LEEP statistic given the source-head
// distributions theta (one row per example) and target labels ys.
func leepFromPredictions(theta *numeric.Frame, ys []int, targetK, sourceK int) float64 {
	n := theta.N
	if n == 0 {
		return math.Inf(-1)
	}
	// joint[y][z] = (1/n) sum_i theta_i[z] * 1{y_i = y}
	joint := numeric.NewMatrix(targetK, sourceK)
	for i := 0; i < n; i++ {
		row := joint.Row(ys[i])
		for z, p := range theta.Row(i) {
			row[z] += p / float64(n)
		}
	}
	// marginal over z and conditional P(y|z)
	marginal := make([]float64, sourceK)
	for y := 0; y < targetK; y++ {
		for z, p := range joint.Row(y) {
			marginal[z] += p
		}
	}
	cond := numeric.NewMatrix(targetK, sourceK) // P(y|z)
	for y := 0; y < targetK; y++ {
		for z := 0; z < sourceK; z++ {
			if marginal[z] > 0 {
				cond.Set(y, z, joint.At(y, z)/marginal[z])
			}
		}
	}
	// LEEP = (1/n) sum_i log( sum_z P(y_i|z) theta_i[z] )
	var total float64
	for i := 0; i < n; i++ {
		var p float64
		row := cond.Row(ys[i])
		for z, t := range theta.Row(i) {
			p += row[z] * t
		}
		if p < 1e-300 {
			p = 1e-300
		}
		total += math.Log(p)
	}
	return total / float64(n)
}

// NCE is the negative conditional entropy score (Tran et al., 2019): it
// hard-assigns each example to its argmax source label z and returns
// -H(Y|Z) of the empirical joint. Less smooth than LEEP but cheaper.
type NCE struct{}

// Name implements Scorer.
func (NCE) Name() string { return "nce" }

// Score implements Scorer.
func (NCE) Score(m *modelhub.Model, d *datahub.Dataset) (float64, error) {
	feats, ys, err := sample(m, d)
	if err != nil {
		return 0, err
	}
	n := feats.N
	theta := sourcePredictions(m, feats)
	joint := numeric.NewMatrix(d.Classes, m.SourceClasses)
	for i := 0; i < n; i++ {
		z := numeric.ArgMax(theta.Row(i))
		joint.Set(ys[i], z, joint.At(ys[i], z)+1/float64(n))
	}
	marginal := make([]float64, m.SourceClasses)
	for y := 0; y < d.Classes; y++ {
		for z, p := range joint.Row(y) {
			marginal[z] += p
		}
	}
	var nce float64
	for y := 0; y < d.Classes; y++ {
		for z, p := range joint.Row(y) {
			if p > 0 && marginal[z] > 0 {
				nce += p * math.Log(p/marginal[z])
			}
		}
	}
	return nce, nil
}

// KNN scores a model by leave-one-out k-nearest-neighbour accuracy in its
// feature space (Renggli et al., 2022's probe, §VI). It approximates the
// accuracy a simple head could reach on the frozen features.
type KNN struct {
	// K is the neighbourhood size; 0 means 5.
	K int
}

// Name implements Scorer.
func (k KNN) Name() string { return fmt.Sprintf("knn%d", k.k()) }

func (k KNN) k() int {
	if k.K <= 0 {
		return 5
	}
	return k.K
}

// Score implements Scorer.
func (k KNN) Score(m *modelhub.Model, d *datahub.Dataset) (float64, error) {
	feats, ys, err := sample(m, d)
	if err != nil {
		return 0, err
	}
	kk := k.k()
	correct := 0
	type nb struct {
		dist  float64
		label int
	}
	for i := 0; i < feats.N; i++ {
		nbs := make([]nb, 0, feats.N-1)
		fi := feats.Row(i)
		for j := 0; j < feats.N; j++ {
			if j == i {
				continue
			}
			nbs = append(nbs, nb{numeric.EuclideanDistance(fi, feats.Row(j)), ys[j]})
		}
		// partial selection of the kk nearest
		for a := 0; a < kk && a < len(nbs); a++ {
			min := a
			for b := a + 1; b < len(nbs); b++ {
				if nbs[b].dist < nbs[min].dist {
					min = b
				}
			}
			nbs[a], nbs[min] = nbs[min], nbs[a]
		}
		votes := make(map[int]int)
		for a := 0; a < kk && a < len(nbs); a++ {
			votes[nbs[a].label]++
		}
		best, bestN := -1, -1
		for label, n := range votes {
			if n > bestN || (n == bestN && label < best) {
				best, bestN = label, n
			}
		}
		if best == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(feats.N), nil
}

// Ensemble averages the min-max-normalized scores of several scorers — the
// paper's §VII plan of combining light-weight tasks for robustness. Since
// normalization needs the whole candidate set, Ensemble scores lazily and
// callers should use ScoreAll.
type Ensemble struct {
	Scorers []Scorer
}

// Name implements Scorer.
func (e Ensemble) Name() string { return "ensemble" }

// Score implements Scorer by averaging raw member scores; prefer ScoreAll
// when a whole candidate set is available so members can be normalized.
func (e Ensemble) Score(m *modelhub.Model, d *datahub.Dataset) (float64, error) {
	if len(e.Scorers) == 0 {
		return 0, fmt.Errorf("proxy: empty ensemble")
	}
	var s float64
	for _, sc := range e.Scorers {
		v, err := sc.Score(m, d)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s / float64(len(e.Scorers)), nil
}

// ScoreAll scores every model and min-max normalizes each member scorer
// across the set before averaging, returning one value per model.
func (e Ensemble) ScoreAll(models []*modelhub.Model, d *datahub.Dataset) ([]float64, error) {
	if len(e.Scorers) == 0 {
		return nil, fmt.Errorf("proxy: empty ensemble")
	}
	out := make([]float64, len(models))
	for _, sc := range e.Scorers {
		raw := make([]float64, len(models))
		for i, m := range models {
			v, err := sc.Score(m, d)
			if err != nil {
				return nil, err
			}
			raw[i] = v
		}
		for i, v := range Normalize(raw) {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(e.Scorers))
	}
	return out, nil
}

// Normalize min-max rescales scores into [0, 1]. A constant slice maps to
// all 0.5 (no information either way).
func Normalize(scores []float64) []float64 {
	out := make([]float64, len(scores))
	if len(scores) == 0 {
		return out
	}
	lo, hi := scores[0], scores[0]
	for _, s := range scores[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, s := range scores {
		out[i] = (s - lo) / (hi - lo)
	}
	return out
}

// sample returns the model's features for up to MaxExamples examples of
// the dataset's training split, plus their labels. Extraction goes
// through the model's shared feature cache over the full split — the
// same frame every trainer.Run of this (model, dataset) reuses — and the
// returned frame is a read-only view of its first rows.
func sample(m *modelhub.Model, d *datahub.Dataset) (*numeric.Frame, []int, error) {
	if m.Task != d.Task {
		return nil, nil, fmt.Errorf("proxy: model %q task %q does not match dataset %q task %q", m.Name, m.Task, d.Name, d.Task)
	}
	n := d.Train.Len()
	if n == 0 {
		return nil, nil, fmt.Errorf("proxy: dataset %q has empty training split", d.Name)
	}
	if n > MaxExamples {
		n = MaxExamples
	}
	return m.FeatureFrame(d.Train.X).Slice(0, n), d.Train.Y[:n], nil
}
