package textsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("BERT-base, fine-tuned on QQP (v2)!")
	want := []string{"bert", "base", "fine", "tuned", "on", "qqp", "v2"}
	if len(got) != len(want) {
		t.Fatalf("tokens %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty text should have no tokens")
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	v := Embed("a model card with some words")
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Fatalf("embedding norm %v", math.Sqrt(norm))
	}
	if len(v) != Dim {
		t.Fatalf("dim %d", len(v))
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	for _, x := range Embed("") {
		if x != 0 {
			t.Fatal("empty text should embed to zero")
		}
	}
}

func TestSimilaritySelf(t *testing.T) {
	card := "bert base uncased fine-tuned on mnli"
	if got := Similarity(card, card); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self similarity %v", got)
	}
}

func TestSimilarityOrdering(t *testing.T) {
	a := "bert base fine-tuned on qqp paraphrase detection"
	b := "bert base fine-tuned on qqp duplicate questions"
	c := "vision transformer trained on imagenet photographs"
	if Similarity(a, b) <= Similarity(a, c) {
		t.Fatalf("shared-vocabulary cards not closer: %v vs %v", Similarity(a, b), Similarity(a, c))
	}
}

func TestSimilarityBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		s := Similarity(a, b)
		return !math.IsNaN(s) && s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	a, b := Embed("same text"), Embed("same text")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}
