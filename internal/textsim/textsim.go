// Package textsim implements the text-based model-similarity baseline of
// Table I: embed each model card into a vector and compare cards by cosine
// similarity. The paper uses SBERT; offline and stdlib-only, we substitute
// a deterministic hashed bag-of-words embedding, which preserves the only
// property the comparison needs — cards with shared vocabulary land close
// together, regardless of whether the models behave alike.
package textsim

import (
	"hash/fnv"
	"math"
	"strings"

	"twophase/internal/numeric"
)

// Dim is the embedding dimensionality.
const Dim = 64

// Embed maps text to a unit-norm hashed bag-of-words vector. Tokens are
// lowercase alphanumeric runs; each token adds a signed hashed one-hot
// (the classic "hashing trick" with a sign hash to reduce collisions' bias).
func Embed(text string) []float64 {
	return EmbedInto(text, make([]float64, Dim))
}

// EmbedAll embeds every text into one contiguous frame, a card per row —
// the flat-buffer form downstream clustering streams without per-card
// pointer chasing. Row i equals Embed(texts[i]) exactly.
func EmbedAll(texts []string) *numeric.Frame {
	f := numeric.NewFrame(len(texts), Dim)
	for i, text := range texts {
		EmbedInto(text, f.Row(i))
	}
	return f
}

// EmbedInto writes the embedding of text into v (length Dim) and
// returns it.
func EmbedInto(text string, v []float64) []float64 {
	for i := range v {
		v[i] = 0
	}
	for _, tok := range Tokenize(text) {
		h := fnv.New64a()
		_, _ = h.Write([]byte(tok))
		sum := h.Sum64()
		idx := int(sum % Dim)
		sign := 1.0
		if (sum>>32)&1 == 1 {
			sign = -1.0
		}
		v[idx] += sign
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// Tokenize splits text into lowercase alphanumeric tokens.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Similarity returns the cosine similarity of two embedded cards.
func Similarity(cardA, cardB string) float64 {
	a, b := Embed(cardA), Embed(cardB)
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}
