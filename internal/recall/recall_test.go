package recall

import (
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
	"twophase/internal/proxy"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// fixture builds a 10-model repository, a 6-benchmark matrix, and a target
// dataset — small enough to run in tens of milliseconds.
func fixture(t *testing.T) (*perfmatrix.Matrix, *modelhub.Repository, *datahub.Dataset) {
	t.Helper()
	w := synth.NewWorld(42)
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, modelhub.NLPSpecs()[:10])
	if err != nil {
		t.Fatal(err)
	}
	var benches []*datahub.Dataset
	for _, spec := range datahub.NLPBenchmarks()[:6] {
		d, err := datahub.Generate(w, spec, datahub.Sizes{Train: 80, Val: 50, Test: 80})
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, d)
	}
	m, err := perfmatrix.Build(repo, benches, trainer.Default(datahub.TaskNLP), w.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	target, err := datahub.Generate(w, datahub.NLPTargets()[0], datahub.Sizes{Train: 80, Val: 50, Test: 80})
	if err != nil {
		t.Fatal(err)
	}
	return m, repo, target
}

func TestCoarseRecallBasics(t *testing.T) {
	m, repo, target := fixture(t)
	var ledger trainer.Ledger
	opts := Options{K: 4}
	res, err := CoarseRecall(m, repo, target, opts, &ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recalled) != 4 {
		t.Fatalf("recalled %d models", len(res.Recalled))
	}
	if len(res.RecallScores) != repo.Len() || len(res.ProxyScores) != repo.Len() {
		t.Fatal("scores must cover every model")
	}
	if res.ScoredModels <= 0 || res.ScoredModels > repo.Len() {
		t.Fatalf("scored %d models", res.ScoredModels)
	}
	if got := ledger.Total(); got != 0.5*float64(res.ScoredModels) {
		t.Fatalf("ledger %v, want %v", got, 0.5*float64(res.ScoredModels))
	}
	// recalled must be ordered by descending recall score
	for i := 1; i < len(res.Recalled); i++ {
		if res.RecallScores[res.Recalled[i-1]] < res.RecallScores[res.Recalled[i]] {
			t.Fatal("recalled not sorted by score")
		}
	}
}

func TestCoarseRecallDeterministic(t *testing.T) {
	m, repo, target := fixture(t)
	a, err := CoarseRecall(m, repo, target, Options{K: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoarseRecall(m, repo, target, Options{K: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Recalled {
		if a.Recalled[i] != b.Recalled[i] {
			t.Fatal("recall not deterministic")
		}
	}
}

func TestCoarseRecallScoresInRange(t *testing.T) {
	m, repo, target := fixture(t)
	res, err := CoarseRecall(m, repo, target, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range res.ProxyScores {
		if p < 0 || p > 1 {
			t.Fatalf("proxy score %v for %s outside [0,1]", p, name)
		}
	}
	for name, s := range res.RecallScores {
		if s < 0 || s > 1 {
			t.Fatalf("recall score %v for %s outside [0,1]", s, name)
		}
	}
}

func TestRepresentativeHasBestAverage(t *testing.T) {
	m, repo, target := fixture(t)
	res, err := CoarseRecall(m, repo, target, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Clustering.Groups()
	for cid, rep := range res.Representatives {
		if len(groups[cid]) < 2 {
			continue
		}
		repAvg, err := m.AvgAcc(rep)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range groups[cid] {
			avg, err := m.AvgAcc(m.Models[i])
			if err != nil {
				t.Fatal(err)
			}
			if avg > repAvg+1e-12 {
				t.Fatalf("representative %s (%.3f) not the best of its cluster (%s has %.3f)",
					rep, repAvg, m.Models[i], avg)
			}
		}
	}
}

func TestSingletonPropagation(t *testing.T) {
	m, repo, target := fixture(t)
	res, err := CoarseRecall(m, repo, target, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Clustering.Groups()
	if len(res.Clustering.Singletons()) == 0 {
		t.Skip("fixture produced no singleton clusters")
	}
	// singleton proxy scores must lie within the span of representative
	// scores (they are similarity-weighted averages)
	var lo, hi float64 = 1, 0
	for cid := range res.Representatives {
		if len(groups[cid]) < 2 {
			continue
		}
		p := res.ProxyScores[res.Representatives[cid]]
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	for _, i := range res.Clustering.Singletons() {
		p := res.ProxyScores[m.Models[i]]
		if p > hi+1e-9 {
			t.Fatalf("singleton %s proxy %v above max representative %v", m.Models[i], p, hi)
		}
	}
}

func TestCoarseRecallKOversized(t *testing.T) {
	m, repo, target := fixture(t)
	res, err := CoarseRecall(m, repo, target, Options{K: 999}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recalled) != repo.Len() {
		t.Fatalf("oversized K recalled %d", len(res.Recalled))
	}
}

func TestCoarseRecallEmptyMatrix(t *testing.T) {
	_, repo, target := fixture(t)
	empty := &perfmatrix.Matrix{}
	if _, err := CoarseRecall(empty, repo, target, Options{}, nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestCoarseRecallAlternativeScorer(t *testing.T) {
	m, repo, target := fixture(t)
	res, err := CoarseRecall(m, repo, target, Options{K: 3, Scorer: proxy.KNN{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recalled) != 3 {
		t.Fatal("kNN-scored recall failed")
	}
}

func TestRandomRecall(t *testing.T) {
	m, _, _ := fixture(t)
	rng := numeric.NewNamedRNG(1, "rr")
	got := RandomRecall(m, 5, rng)
	if len(got) != 5 {
		t.Fatalf("random recall returned %d", len(got))
	}
	seen := map[string]bool{}
	for _, n := range got {
		if seen[n] {
			t.Fatal("random recall repeated a model")
		}
		seen[n] = true
	}
	if len(RandomRecall(m, 999, rng)) != len(m.Models) {
		t.Fatal("oversized random recall")
	}
}

func TestBruteForceScores(t *testing.T) {
	m, repo, target := fixture(t)
	var ledger trainer.Ledger
	scores, err := BruteForceScores(repo, target, nil, &ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != repo.Len() {
		t.Fatalf("scores %d", len(scores))
	}
	if ledger.Total() != 0.5*float64(repo.Len()) {
		t.Fatalf("ledger %v", ledger.Total())
	}
	for n, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score %v for %s", s, n)
		}
	}
	_ = m
}
