package recall

import (
	"math"
	"testing"

	"twophase/internal/cluster"
	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
	"twophase/internal/proxy"
	"twophase/internal/synth"
)

// stubScorer returns fixed proxy scores keyed by model name, so Eq. 2-4
// can be verified by exact arithmetic.
type stubScorer struct{ scores map[string]float64 }

func (stubScorer) Name() string { return "stub" }

func (s stubScorer) Score(m *modelhub.Model, _ *datahub.Dataset) (float64, error) {
	return s.scores[m.Name], nil
}

// handMatrix builds a matrix with exact performance vectors (single-epoch
// curves whose final test IS the vector entry), no training involved.
func handMatrix(t *testing.T, names []string, vecs [][]float64, datasets []string) *perfmatrix.Matrix {
	t.Helper()
	m := &perfmatrix.Matrix{
		Task:     datahub.TaskNLP,
		Models:   names,
		Datasets: datasets,
		Epochs:   1,
		Entries:  map[string]*perfmatrix.Entry{},
	}
	for i, name := range names {
		for j, ds := range datasets {
			m.Entries[name+"\x00"+ds] = &perfmatrix.Entry{
				Model: name, Dataset: ds,
				Val:  []float64{vecs[i][j]},
				Test: []float64{vecs[i][j]},
			}
		}
	}
	return m
}

func TestRecallEquationsExact(t *testing.T) {
	w := synth.NewWorld(42)
	// Six models: {A,B} identical vectors, {C,D} identical, E and F
	// distinct singletons.
	names := []string{"A", "B", "C", "D", "E", "F"}
	vecs := [][]float64{
		{0.90, 0.80, 0.70, 0.60},
		{0.90, 0.80, 0.70, 0.60},
		{0.50, 0.55, 0.60, 0.65},
		{0.50, 0.55, 0.60, 0.65},
		{0.20, 0.90, 0.20, 0.90},
		{0.70, 0.10, 0.80, 0.10},
	}
	datasets := []string{"d1", "d2", "d3", "d4"}
	m := handMatrix(t, names, vecs, datasets)

	// Materialize real model objects (the scorer ignores their weights).
	var specs []modelhub.Spec
	for _, n := range names {
		specs = append(specs, modelhub.Spec{
			Name: n, Task: datahub.TaskNLP, Arch: "bert", Params: 1,
			Capability: 0.5, SourceClasses: 2,
		})
	}
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, specs)
	if err != nil {
		t.Fatal(err)
	}
	target, err := datahub.Generate(w, datahub.Spec{
		Name: "eq/target", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainNLI: 1},
		Classes: 2, Separability: 1, Noise: 1,
	}, datahub.Sizes{Train: 10, Val: 5, Test: 5})
	if err != nil {
		t.Fatal(err)
	}

	scorer := stubScorer{scores: map[string]float64{"A": 0.2, "C": 0.8}}
	opts := Options{K: 6, SimilarityK: 2, Threshold: 0.01, Scorer: scorer}
	res, err := CoarseRecall(m, repo, target, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Clustering: {A,B} and {C,D} non-singleton; E, F singletons.
	if got := len(res.Clustering.NonSingletons()); got != 2 {
		t.Fatalf("non-singleton clusters %d", got)
	}
	if got := len(res.Clustering.Singletons()); got != 2 {
		t.Fatalf("singletons %d", got)
	}
	// Representatives: equal averages inside {A,B} keep the first (A);
	// same for {C,D}.
	if res.ScoredModels != 2 {
		t.Fatalf("scored %d representatives", res.ScoredModels)
	}

	// Normalized proxy: A-cluster raw 0.2 -> 0, C-cluster raw 0.8 -> 1.
	if res.ProxyScores["A"] != 0 || res.ProxyScores["B"] != 0 {
		t.Fatalf("A-cluster proxy %v/%v", res.ProxyScores["A"], res.ProxyScores["B"])
	}
	if res.ProxyScores["C"] != 1 || res.ProxyScores["D"] != 1 {
		t.Fatalf("C-cluster proxy %v/%v", res.ProxyScores["C"], res.ProxyScores["D"])
	}

	// Eq. 3 for members: recall = avgAcc * proxy.
	avgC := numeric.Mean(vecs[2])
	if got := res.RecallScores["C"]; math.Abs(got-avgC*1.0) > 1e-12 {
		t.Fatalf("Eq.3 for C: got %v want %v", got, avgC)
	}
	if res.RecallScores["A"] != 0 {
		t.Fatalf("Eq.3 for A: got %v want 0", res.RecallScores["A"])
	}

	// Eq. 4 for singleton E: avg over representatives of sim * proxy.
	dist := cluster.TopKDistance(2)
	simEA := 1 - dist(vecs[4], vecs[0])
	simEC := 1 - dist(vecs[4], vecs[2])
	if simEA < 0 {
		simEA = 0
	}
	if simEC < 0 {
		simEC = 0
	}
	wantProxyE := (simEA*0 + simEC*1) / 2
	if got := res.ProxyScores["E"]; math.Abs(got-wantProxyE) > 1e-12 {
		t.Fatalf("Eq.4 proxy for E: got %v want %v", got, wantProxyE)
	}
	wantRecallE := numeric.Mean(vecs[4]) * wantProxyE
	if got := res.RecallScores["E"]; math.Abs(got-wantRecallE) > 1e-12 {
		t.Fatalf("Eq.4 recall for E: got %v want %v", got, wantRecallE)
	}
}

// TestRecallScoreMonotoneInPrior: with a constant proxy, the recall order
// must reduce to the benchmark-average prior (Eq. 2's acc term).
func TestRecallScoreMonotoneInPrior(t *testing.T) {
	w := synth.NewWorld(42)
	names := []string{"hi", "mid", "lo", "hi2", "mid2", "lo2"}
	vecs := [][]float64{
		{0.9, 0.9}, {0.6, 0.6}, {0.3, 0.3},
		{0.9, 0.9}, {0.6, 0.6}, {0.3, 0.3},
	}
	m := handMatrix(t, names, vecs, []string{"d1", "d2"})
	var specs []modelhub.Spec
	for _, n := range names {
		specs = append(specs, modelhub.Spec{
			Name: n, Task: datahub.TaskNLP, Arch: "bert", Params: 1,
			Capability: 0.5, SourceClasses: 2,
		})
	}
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, specs)
	if err != nil {
		t.Fatal(err)
	}
	target, err := datahub.Generate(w, datahub.Spec{
		Name: "mono/target", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainNLI: 1},
		Classes: 2, Separability: 1, Noise: 1,
	}, datahub.Sizes{Train: 10, Val: 5, Test: 5})
	if err != nil {
		t.Fatal(err)
	}
	scorer := stubScorer{scores: map[string]float64{"hi": 0.5, "mid": 0.5, "lo": 0.5}}
	res, err := CoarseRecall(m, repo, target, Options{K: 6, SimilarityK: 1, Threshold: 0.01, Scorer: scorer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// constant proxy (normalized to 0.5 everywhere) makes recall order
	// follow avg accuracy: the two "hi" models must lead.
	lead := map[string]bool{res.Recalled[0]: true, res.Recalled[1]: true}
	if !lead["hi"] || !lead["hi2"] {
		t.Fatalf("prior ordering violated: %v", res.Recalled)
	}
}

var _ proxy.Scorer = stubScorer{} // interface conformance
