package recall

import (
	"encoding/json"
	"reflect"
	"testing"

	"twophase/internal/cluster"
	"twophase/internal/trainer"
)

// TestRehydrateBitIdentical: an Offline rehydrated from its own persisted
// artifact must recall exactly what a freshly clustered one does, without
// running another clustering pass.
func TestRehydrateBitIdentical(t *testing.T) {
	m, repo, target := fixture(t)
	opts := Options{K: 4}
	cold, err := PrepareOffline(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	art := cold.Artifact(m.Task, m.Seed)

	// Round-trip through JSON, as the store would.
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Artifact
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}

	before := cluster.Passes()
	warm, err := Rehydrate(m, opts, &loaded)
	if err != nil {
		t.Fatal(err)
	}
	if got := cluster.Passes() - before; got != 0 {
		t.Fatalf("rehydrate ran %d clustering passes, want 0", got)
	}

	var coldLedger, warmLedger trainer.Ledger
	want, err := cold.Recall(repo, target, &coldLedger)
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Recall(repo, target, &warmLedger)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rehydrated recall differs from cold recall:\n%+v\nvs\n%+v", got, want)
	}
	if coldLedger != warmLedger {
		t.Fatalf("ledgers differ: %v vs %v", warmLedger, coldLedger)
	}
}

// TestRehydrateRejectsStale: any changed clustering input must fail
// rehydration so the caller recomputes the stage.
func TestRehydrateRejectsStale(t *testing.T) {
	m, _, _ := fixture(t)
	opts := Options{K: 4}
	off, err := PrepareOffline(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := off.Artifact(m.Task, m.Seed)

	mutate := map[string]func(a *Artifact){
		"similarity k": func(a *Artifact) { a.SimilarityK++ },
		"threshold":    func(a *Artifact) { a.Threshold *= 2 },
		"scorer":       func(a *Artifact) { a.Scorer = "other" },
		"task":         func(a *Artifact) { a.Task = "cv" },
		"seed":         func(a *Artifact) { a.Seed++ },
		"model order": func(a *Artifact) {
			a.Models = append([]string(nil), a.Models...)
			a.Models[0], a.Models[1] = a.Models[1], a.Models[0]
		},
		"assignment range": func(a *Artifact) {
			a.Assign = append([]int(nil), a.Assign...)
			a.Assign[0] = a.Clusters
		},
		"truncated": func(a *Artifact) { a.Assign = a.Assign[:len(a.Assign)-1] },
	}
	for name, mut := range mutate {
		a := *base
		mut(&a)
		if _, err := Rehydrate(m, opts, &a); err == nil {
			t.Errorf("stale artifact (%s) accepted", name)
		}
	}
	if _, err := Rehydrate(m, opts, nil); err == nil {
		t.Error("nil artifact accepted")
	}
	// The unmutated artifact still rehydrates.
	if _, err := Rehydrate(m, opts, base); err != nil {
		t.Fatalf("pristine artifact rejected: %v", err)
	}
}

// TestRehydrateRejectsEmptyCluster: a cluster id with no members would
// break representative derivation, so it must be rejected up front.
func TestRehydrateRejectsEmptyCluster(t *testing.T) {
	m, _, _ := fixture(t)
	off, err := PrepareOffline(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := *off.Artifact(m.Task, m.Seed)
	a.Clusters++ // one id now has no members
	if _, err := Rehydrate(m, Options{}, &a); err == nil {
		t.Fatal("artifact with empty cluster accepted")
	}
}
