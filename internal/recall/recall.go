// Package recall implements the coarse-recall phase (§III): cluster the
// repository by performance vectors, compute the proxy score only for each
// non-singleton cluster's representative, propagate scores to singleton
// clusters by model similarity, and return the top-K candidates by
// recall score (Eq. 2-4).
package recall

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"twophase/internal/cluster"
	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
	"twophase/internal/proxy"
	"twophase/internal/trainer"
)

// Options configures the coarse-recall phase.
type Options struct {
	// K is the number of models to recall; the paper settles on 10
	// (~25-30% of the repository, §V.B).
	K int
	// SimilarityK is the k of Eq. 1's top-k difference similarity;
	// appendix D selects 5.
	SimilarityK int
	// Threshold is the average-linkage cut distance for model clustering.
	Threshold float64
	// Scorer is the proxy task; nil means LEEP (§II.A).
	Scorer proxy.Scorer
}

// DefaultOptions mirrors the paper's settings.
func DefaultOptions() Options {
	return Options{K: 10, SimilarityK: 5, Threshold: 0.08, Scorer: proxy.CalibratedLEEP{}}
}

func (o *Options) fill() {
	if o.K <= 0 {
		o.K = 10
	}
	if o.SimilarityK <= 0 {
		o.SimilarityK = 5
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.08
	}
	if o.Scorer == nil {
		o.Scorer = proxy.CalibratedLEEP{}
	}
}

// Result is the outcome of one coarse-recall invocation.
type Result struct {
	// Recalled lists the top-K model names, best recall score first.
	Recalled []string
	// RecallScores maps every repository model to its Eq. 2/3/4 score.
	RecallScores map[string]float64
	// ProxyScores maps every model to the normalized proxy score used in
	// its recall score (the representative's score for cluster members,
	// the propagated mixture for singletons).
	ProxyScores map[string]float64
	// Clustering is the model clustering over matrix.Models order.
	Clustering cluster.Clustering
	// Representatives maps non-singleton cluster id -> representative
	// model name (the member with the best benchmark average, §III.A).
	Representatives map[int]string
	// ScoredModels counts proxy computations, i.e. model loads +
	// inference passes (charged 0.5 epoch each).
	ScoredModels int
}

// Offline bundles the target-independent artifacts of coarse recall —
// performance vectors, benchmark averages, the model clustering and its
// representatives. The paper computes these once in the offline phase
// (§II.B); preparing them once per framework lets a serving layer answer
// many targets without re-clustering the repository every request.
// An Offline is immutable after PrepareOffline and safe for concurrent use.
type Offline struct {
	opts   Options
	names  []string
	vecs   *numeric.Frame // one performance vector per row, matrix model order
	avgAcc []float64
	dist   func(a, b []float64) float64

	// Clustering is the model clustering over the matrix's model order.
	Clustering cluster.Clustering
	reps       map[int]string
	repIdx     map[int]int
	cids       []int // representative cluster ids, ascending
}

// PrepareOffline computes the target-independent half of coarse recall.
func PrepareOffline(m *perfmatrix.Matrix, opts Options) (*Offline, error) {
	return PrepareOfflineWith(m, opts, 1)
}

// PrepareOfflineWith is PrepareOffline under an explicit worker budget
// (<= 0 means GOMAXPROCS): per-model performance vectors and the O(n²)
// pairwise-distance precompute inside clustering fan out across workers.
// Parallelism never touches the merge order or any per-vector reduction,
// so the Offline — and the Artifact persisted from it — is bit-identical
// for every worker count.
func PrepareOfflineWith(m *perfmatrix.Matrix, opts Options, workers int) (*Offline, error) {
	opts.fill()
	names, vecs, avgAcc, err := matrixVectors(m, workers)
	if err != nil {
		return nil, err
	}
	dist := cluster.TopKDistance(opts.SimilarityK)
	clustering := cluster.AgglomerativeWith(vecs.Rows2D(), dist, opts.Threshold, 0, workers)
	return assembleOffline(opts, names, vecs, avgAcc, dist, clustering), nil
}

// matrixVectors extracts every model's performance vector and benchmark
// average from the matrix, in matrix model order, fanning the rows out
// across the worker budget (each worker owns whole rows of the output
// frame, so contents are order-independent). Vectors land in one
// contiguous frame, a row per model.
func matrixVectors(m *perfmatrix.Matrix, workers int) (names []string, vecs *numeric.Frame, avgAcc []float64, err error) {
	names = m.Models
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("recall: empty performance matrix")
	}
	vecs = numeric.NewFrame(len(names), len(m.Datasets))
	avgAcc = make([]float64, len(names))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	errs := make([]error, len(names))
	fillRow := func(i int) {
		v, err := m.Vector(names[i])
		if err != nil {
			errs[i] = err
			return
		}
		copy(vecs.Row(i), v)
		avgAcc[i] = numeric.Mean(v)
	}
	if workers <= 1 {
		for i := range names {
			fillRow(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(names) {
						return
					}
					fillRow(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return names, vecs, avgAcc, nil
}

// assembleOffline derives representatives and their deterministic order
// from a clustering — the shared tail of PrepareOffline and Rehydrate, so
// a rehydrated Offline is bit-identical to a freshly clustered one.
func assembleOffline(opts Options, names []string, vecs *numeric.Frame, avgAcc []float64, dist func(a, b []float64) float64, clustering cluster.Clustering) *Offline {
	// Representatives of non-singleton clusters: best benchmark average.
	reps := make(map[int]string)
	repIdx := make(map[int]int)
	for cid, members := range clustering.Groups() {
		if len(members) < 2 {
			continue
		}
		best := members[0]
		for _, i := range members[1:] {
			if avgAcc[i] > avgAcc[best] {
				best = i
			}
		}
		reps[cid] = names[best]
		repIdx[cid] = best
	}
	if len(reps) == 0 {
		// Degenerate clustering (all singletons): fall back to scoring
		// every model directly, which is plain proxy-based recall.
		for cid, members := range clustering.Groups() {
			reps[cid] = names[members[0]]
			repIdx[cid] = members[0]
		}
	}

	cids := make([]int, 0, len(reps))
	for cid := range reps {
		cids = append(cids, cid)
	}
	// deterministic order
	for i := 0; i < len(cids); i++ {
		for j := i + 1; j < len(cids); j++ {
			if cids[j] < cids[i] {
				cids[i], cids[j] = cids[j], cids[i]
			}
		}
	}
	return &Offline{
		opts:       opts,
		names:      names,
		vecs:       vecs,
		avgAcc:     avgAcc,
		dist:       dist,
		Clustering: clustering,
		reps:       reps,
		repIdx:     repIdx,
		cids:       cids,
	}
}

// Artifact is the serializable form of the clustering stage of the offline
// pipeline: the agglomerative assignment plus the fingerprint of every
// input that shaped it. Persisting it lets a warm start rehydrate an
// Offline without re-running the O(n³) clustering; the fingerprint lets
// the loader detect that any input changed and rebuild the stage instead.
type Artifact struct {
	Task        string   `json:"task"`
	Seed        uint64   `json:"seed"`
	SimilarityK int      `json:"similarity_k"`
	Threshold   float64  `json:"threshold"`
	Scorer      string   `json:"scorer"`
	Models      []string `json:"models"`
	Assign      []int    `json:"assign"`
	Clusters    int      `json:"clusters"`
}

// Artifact exports the offline clustering stage for persistence. Task and
// seed record the provenance of the matrix it was derived from.
func (o *Offline) Artifact(task string, seed uint64) *Artifact {
	return &Artifact{
		Task:        task,
		Seed:        seed,
		SimilarityK: o.opts.SimilarityK,
		Threshold:   o.opts.Threshold,
		Scorer:      o.opts.Scorer.Name(),
		Models:      o.names,
		Assign:      o.Clustering.Assign,
		Clusters:    o.Clustering.K,
	}
}

// Rehydrate rebuilds an Offline from a persisted clustering artifact,
// skipping the agglomerative pass. The artifact must have been produced by
// exactly the inputs at hand — same model order and the same clustering
// options — or Rehydrate errors so the caller falls back to
// PrepareOffline. Everything derived (vectors, averages, representatives)
// is recomputed from the matrix, so a rehydrated Offline recalls
// bit-identically to a cold-built one.
func Rehydrate(m *perfmatrix.Matrix, opts Options, a *Artifact) (*Offline, error) {
	if a == nil {
		return nil, fmt.Errorf("recall: rehydrate: nil artifact")
	}
	opts.fill()
	if a.SimilarityK != opts.SimilarityK {
		return nil, fmt.Errorf("recall: artifact similarity k %d, want %d", a.SimilarityK, opts.SimilarityK)
	}
	if a.Threshold != opts.Threshold {
		return nil, fmt.Errorf("recall: artifact threshold %v, want %v", a.Threshold, opts.Threshold)
	}
	if a.Scorer != opts.Scorer.Name() {
		return nil, fmt.Errorf("recall: artifact scorer %q, want %q", a.Scorer, opts.Scorer.Name())
	}
	if a.Task != m.Task {
		return nil, fmt.Errorf("recall: artifact task %q, want %q", a.Task, m.Task)
	}
	if a.Seed != m.Seed {
		return nil, fmt.Errorf("recall: artifact seed %d, want %d", a.Seed, m.Seed)
	}
	names, vecs, avgAcc, err := matrixVectors(m, 0)
	if err != nil {
		return nil, err
	}
	if len(a.Models) != len(names) || len(a.Assign) != len(names) {
		return nil, fmt.Errorf("recall: artifact covers %d models (%d assignments), matrix has %d",
			len(a.Models), len(a.Assign), len(names))
	}
	for i, name := range names {
		if a.Models[i] != name {
			return nil, fmt.Errorf("recall: artifact model %d is %q, matrix has %q", i, a.Models[i], name)
		}
	}
	if a.Clusters <= 0 || a.Clusters > len(names) {
		return nil, fmt.Errorf("recall: artifact cluster count %d out of range", a.Clusters)
	}
	sizes := make([]int, a.Clusters)
	for i, c := range a.Assign {
		if c < 0 || c >= a.Clusters {
			return nil, fmt.Errorf("recall: artifact assignment %d is cluster %d, want [0,%d)", i, c, a.Clusters)
		}
		sizes[c]++
	}
	for c, n := range sizes {
		if n == 0 {
			return nil, fmt.Errorf("recall: artifact cluster %d is empty", c)
		}
	}
	assign := make([]int, len(a.Assign))
	copy(assign, a.Assign)
	clustering := cluster.Clustering{Assign: assign, K: a.Clusters}
	dist := cluster.TopKDistance(opts.SimilarityK)
	return assembleOffline(opts, names, vecs, avgAcc, dist, clustering), nil
}

// Recall runs the online half of the phase against one target dataset:
// proxy-score the representatives, normalize, propagate to members and
// singletons, and rank. The ledger, if non-nil, is charged 0.5 epoch per
// proxy computation.
func (o *Offline) Recall(repo *modelhub.Repository, target *datahub.Dataset, ledger *trainer.Ledger) (*Result, error) {
	// Proxy scores for representatives only, then min-max normalization
	// across the scored set (Eq. 2's [0,1] normalization).
	raw := make([]float64, len(o.cids))
	for i, cid := range o.cids {
		model, err := repo.Get(o.reps[cid])
		if err != nil {
			return nil, err
		}
		s, err := o.opts.Scorer.Score(model, target)
		if err != nil {
			return nil, fmt.Errorf("recall: proxy %s on %s: %w", o.opts.Scorer.Name(), model.Name, err)
		}
		raw[i] = s
	}
	norm := proxy.Normalize(raw)
	repProxy := make(map[int]float64, len(o.cids))
	for i, cid := range o.cids {
		repProxy[cid] = norm[i]
	}
	if ledger != nil {
		ledger.ChargeInference(len(o.cids))
	}

	res := &Result{
		RecallScores:    make(map[string]float64, len(o.names)),
		ProxyScores:     make(map[string]float64, len(o.names)),
		Clustering:      o.Clustering,
		Representatives: o.reps,
		ScoredModels:    len(o.cids),
	}

	groups := o.Clustering.Groups()
	scores := make([]float64, len(o.names))
	for i, name := range o.names {
		cid := o.Clustering.Assign[i]
		var p float64
		if len(groups[cid]) > 1 {
			// Eq. 3: member of a non-singleton cluster inherits the
			// representative's proxy score.
			p = repProxy[cid]
		} else if pr, ok := repProxy[cid]; ok {
			// Degenerate all-singleton fallback scored this cluster
			// directly.
			p = pr
		} else {
			// Eq. 4: propagate from non-singleton representatives,
			// decayed by Eq. 1 similarity.
			var sum float64
			for _, rc := range o.cids {
				rep := o.repIdx[rc]
				sim := 1 - o.dist(o.vecs.Row(i), o.vecs.Row(rep))
				if sim < 0 {
					sim = 0
				}
				sum += sim * repProxy[rc]
			}
			p = sum / float64(len(o.cids))
		}
		res.ProxyScores[name] = p
		scores[i] = o.avgAcc[i] * p
		res.RecallScores[name] = scores[i]
	}

	order := numeric.ArgSortDesc(scores)
	k := o.opts.K
	if k > len(order) {
		k = len(order)
	}
	for _, i := range order[:k] {
		res.Recalled = append(res.Recalled, o.names[i])
	}
	return res, nil
}

// CoarseRecall runs the phase against one target dataset. The ledger, if
// non-nil, is charged 0.5 epoch per proxy computation. Callers answering
// many targets over one matrix should PrepareOffline once and call Recall
// per target instead.
func CoarseRecall(m *perfmatrix.Matrix, repo *modelhub.Repository, target *datahub.Dataset, opts Options, ledger *trainer.Ledger) (*Result, error) {
	off, err := PrepareOffline(m, opts)
	if err != nil {
		return nil, err
	}
	return off.Recall(repo, target, ledger)
}

// RandomRecall returns K models drawn uniformly without replacement — the
// baseline of Fig. 5.
func RandomRecall(m *perfmatrix.Matrix, k int, rng *numeric.RNG) []string {
	names := m.Models
	if k > len(names) {
		k = len(names)
	}
	perm := rng.Perm(len(names))
	out := make([]string, 0, k)
	for _, i := range perm[:k] {
		out = append(out, names[i])
	}
	return out
}

// BruteForceScores computes the proxy score for every model directly (no
// clustering) — the ablation baseline for representative-only scoring.
func BruteForceScores(repo *modelhub.Repository, target *datahub.Dataset, scorer proxy.Scorer, ledger *trainer.Ledger) (map[string]float64, error) {
	if scorer == nil {
		scorer = proxy.LEEP{}
	}
	models := repo.Models()
	raw := make([]float64, len(models))
	for i, model := range models {
		s, err := scorer.Score(model, target)
		if err != nil {
			return nil, err
		}
		raw[i] = s
	}
	if ledger != nil {
		ledger.ChargeInference(len(models))
	}
	norm := proxy.Normalize(raw)
	out := make(map[string]float64, len(models))
	for i, model := range models {
		out[model.Name] = norm[i]
	}
	return out, nil
}
