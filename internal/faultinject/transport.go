package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// roundTripper injects transport-site faults in front of a real
// http.RoundTripper: hang delays the request (a latency spike — it still
// proceeds), reset fails it like a closed connection, http500 synthesizes
// an untyped 500 without touching the network.
type roundTripper struct {
	base http.RoundTripper
}

// Transport wraps base (nil = http.DefaultTransport) with the
// SiteTransport injection point. Cheap to install unconditionally: when no
// schedule is armed each round trip costs one atomic load.
func Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{base: base}
}

func (t *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	f := On(SiteTransport)
	if f == nil {
		return t.base.RoundTrip(req)
	}
	switch f.Action {
	case ActHang:
		f.Sleep(req.Context().Done())
		if err := req.Context().Err(); err != nil {
			return nil, err
		}
		return t.base.RoundTrip(req)
	case ActReset:
		return nil, fmt.Errorf("%w: connection reset by peer", f.Err())
	case ActHTTP500:
		// An untyped 500: no JSON error envelope, the shape a crashed
		// reverse proxy or OOM-killed worker produces. The client must
		// still surface it as a typed internal error.
		body := "injected upstream failure\n"
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	default:
		return t.base.RoundTrip(req)
	}
}
