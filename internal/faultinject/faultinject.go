// Package faultinject is the deterministic fault-injection layer of the
// serving stack: a seedable, schedule-driven injector with named injection
// sites threaded through the store (I/O errors, torn writes, fsync
// failure), the artifact fetch path (peer hangs, corrupted bodies), the
// gateway→backend transport (latency spikes, connection resets, 5xx
// bursts), the offline builder (slow and failing builds) and the HTTP
// handlers (panics).
//
// The injector is off by default with zero hot-path cost: every site is a
// single atomic pointer load that short-circuits on nil. A schedule is a
// compact text spec —
//
//	seed=7;store.write:torn:0.5@0.2#3;transport:hang:200ms@0.1;handler:panic#1
//
// semicolon-separated rules of the form site:action[:param][@prob][#max],
// where param is an action-specific duration or fraction, @prob is the
// per-hit fire probability (default 1), and #max caps the total fires so a
// schedule drains after a bounded amount of chaos. Fire decisions are a
// pure function of (schedule seed, rule, hit index), so two processes —
// or two runs of the same process — driven through the same schedule see
// the same fault sequence regardless of goroutine interleaving: the chaos
// harness replays a seed and gets the same storm.
//
// Serving binaries enable a schedule with -fault-schedule (or the
// TWOPHASE_FAULT_SCHEDULE environment variable), which is how the
// multi-process chaos harness drives real binaries through seeded faults.
package faultinject

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected marks every failure the injector manufactures, so tests and
// logs can tell injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Injection sites. Each names one seam of the serving stack; the schedule
// grammar only accepts these, so a typoed site fails at parse time instead
// of silently never firing.
const (
	// SiteStoreWrite covers store artifact writes: action "err" fails the
	// write, "torn" writes a prefix of the payload to the temp file and
	// abandons it un-renamed — the on-disk shape of a writer killed
	// mid-write, which the startup sweep must quarantine.
	SiteStoreWrite = "store.write"
	// SiteStoreFsync fails the pre-rename fsync (action "err").
	SiteStoreFsync = "store.fsync"
	// SiteStoreRead fails store artifact reads with a transient I/O error
	// (action "err") — not a miss and not corruption, so the caller must
	// propagate it rather than rebuild.
	SiteStoreRead = "store.read"
	// SiteFetchRequest covers the start of one peer artifact fetch:
	// "hang" sleeps the param duration (a peer that accepts and stalls),
	// "err" is a connection reset before any byte arrives.
	SiteFetchRequest = "fetch.request"
	// SiteFetchBody covers a fetched artifact body: "corrupt" flips a
	// deterministic bit (the checksum gate must catch it), "err" is a
	// mid-body disconnect after the request succeeded.
	SiteFetchBody = "fetch.body"
	// SiteTransport covers gateway→backend round trips: "hang" delays the
	// request by the param (a latency spike — the request still proceeds),
	// "reset" fails it like a closed connection, "http500" synthesizes an
	// untyped 500 response body.
	SiteTransport = "transport"
	// SiteBuild covers the offline world build: "err" fails it, "hang"
	// stalls it by the param duration before it runs.
	SiteBuild = "build"
	// SiteHandler covers the HTTP select handler: "panic" panics inside
	// the handler, which the recovery middleware must convert into a typed
	// internal 500 while the process keeps serving.
	SiteHandler = "handler"
)

// Action is what a fired fault does at its site.
type Action uint8

const (
	// ActErr fails the operation with an ErrInjected-wrapped error.
	ActErr Action = iota + 1
	// ActTorn abandons a partially-written temp file (store.write only).
	ActTorn
	// ActHang sleeps the rule's duration before the operation proceeds.
	ActHang
	// ActCorrupt flips a deterministic bit in the payload (fetch.body).
	ActCorrupt
	// ActReset fails a transport round trip like a closed connection.
	ActReset
	// ActHTTP500 synthesizes an untyped HTTP 500 response (transport).
	ActHTTP500
	// ActPanic panics at the site (handler).
	ActPanic
)

// String renders the action the way the schedule grammar spells it.
func (a Action) String() string {
	switch a {
	case ActErr:
		return "err"
	case ActTorn:
		return "torn"
	case ActHang:
		return "hang"
	case ActCorrupt:
		return "corrupt"
	case ActReset:
		return "reset"
	case ActHTTP500:
		return "http500"
	case ActPanic:
		return "panic"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// actionsBySite is the grammar's compatibility table: which actions make
// sense at which site.
var actionsBySite = map[string][]Action{
	SiteStoreWrite:   {ActErr, ActTorn},
	SiteStoreFsync:   {ActErr},
	SiteStoreRead:    {ActErr},
	SiteFetchRequest: {ActHang, ActErr},
	SiteFetchBody:    {ActCorrupt, ActErr, ActHang},
	SiteTransport:    {ActHang, ActReset, ActHTTP500},
	SiteBuild:        {ActErr, ActHang},
	SiteHandler:      {ActPanic},
}

// rule is one parsed schedule entry with its live counters.
type rule struct {
	site   string
	action Action
	dur    time.Duration // ActHang delay
	frac   float64       // ActTorn prefix fraction (0,1]
	prob   float64       // per-hit fire probability (0,1]
	max    int64         // fire cap; 0 = unlimited

	hits  atomic.Int64
	fires atomic.Int64
}

// Fault describes one fired fault at a site. The zero value is never
// returned; a nil *Fault means the site did not fire.
type Fault struct {
	Site   string
	Action Action
	// Dur is the hang duration for ActHang.
	Dur time.Duration
	// N is the rule-local hit index that fired, for log correlation
	// across runs of the same schedule.
	N int64

	frac float64
	seed uint64
}

// Err manufactures the fault's error, wrapping ErrInjected.
func (f *Fault) Err() error {
	return fmt.Errorf("%w: %s %s n=%d", ErrInjected, f.Site, f.Action, f.N)
}

// Sleep blocks for the fault's duration or until ctx-like done closes
// (pass nil for an unconditional sleep).
func (f *Fault) Sleep(done <-chan struct{}) {
	if f.Dur <= 0 {
		return
	}
	t := time.NewTimer(f.Dur)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// Prefix reports how many leading bytes of an n-byte payload a torn write
// should land: at least one byte short of complete, so the file can never
// accidentally be whole.
func (f *Fault) Prefix(n int) int {
	frac := f.frac
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	p := int(float64(n) * frac)
	if p >= n {
		p = n - 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// Corrupt returns a copy of data with one deterministically-chosen bit
// flipped (position derived from the schedule seed and hit index, so the
// same schedule corrupts the same way every run). Empty data returns
// as-is.
func (f *Fault) Corrupt(data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	x := splitmix64(f.seed ^ uint64(f.N)*0x9E3779B97F4A7C15 ^ fnv64("corrupt"))
	pos := int(x % uint64(len(out)))
	out[pos] ^= 1 << ((x >> 32) % 8)
	return out
}

// Injector is a parsed, armed schedule. One Injector is active per process
// at most; sites consult it through On.
type Injector struct {
	seed  uint64
	rules []*rule
	bySit map[string][]*rule
}

// active is the process-wide injector; nil means injection is off and
// every On call is one atomic load.
var active atomic.Pointer[Injector]

// Active reports whether a schedule is armed in this process.
func Active() bool { return active.Load() != nil }

// Activate arms an injector process-wide (nil disarms). Tests pair it
// with Reset.
func Activate(inj *Injector) { active.Store(inj) }

// Reset disarms injection; defer it from every test that Activates.
func Reset() { active.Store(nil) }

// Enable parses and arms the given schedule spec; an empty spec falls
// back to the TWOPHASE_FAULT_SCHEDULE environment variable, and an empty
// result leaves injection off. Serving binaries call it once at startup.
func Enable(spec string) error {
	if spec == "" {
		spec = os.Getenv("TWOPHASE_FAULT_SCHEDULE")
	}
	if spec == "" {
		return nil
	}
	inj, err := Parse(spec)
	if err != nil {
		return err
	}
	Activate(inj)
	log.Printf("faultinject: armed schedule %q", spec)
	return nil
}

// On consults the active schedule at a site, returning the fired fault or
// nil. When multiple rules target one site, each advances its own hit
// counter and the first that fires wins, in schedule order.
func On(site string) *Fault {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.eval(site)
}

func (inj *Injector) eval(site string) *Fault {
	var fired *Fault
	for _, r := range inj.bySit[site] {
		n := r.hits.Add(1) - 1
		if fired != nil {
			continue // later rules still count the hit
		}
		if r.max > 0 && r.fires.Load() >= r.max {
			continue
		}
		if r.prob < 1 {
			// The decision is a pure function of (seed, rule, hit index):
			// the same schedule fires on the same indices every run.
			x := splitmix64(inj.seed ^ fnv64(r.site+":"+r.action.String()) ^ uint64(n)*0x9E3779B97F4A7C15)
			if float64(x>>11)/(1<<53) >= r.prob {
				continue
			}
		}
		if r.max > 0 && r.fires.Add(1) > r.max {
			continue // lost a concurrent race to the cap
		} else if r.max == 0 {
			r.fires.Add(1)
		}
		log.Printf("faultinject: fire site=%s action=%s n=%d", r.site, r.action, n)
		fired = &Fault{Site: r.site, Action: r.action, Dur: r.dur, N: n, frac: r.frac, seed: inj.seed}
	}
	return fired
}

// SiteStats is one rule's hit/fire counters in a Snapshot.
type SiteStats struct {
	Hits  int64
	Fires int64
}

// Snapshot reports per-rule counters keyed "site:action", for /v1/stats
// and chaos-harness assertions. Nil when injection is off.
func Snapshot() map[string]SiteStats {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	out := make(map[string]SiteStats, len(inj.rules))
	for _, r := range inj.rules {
		key := r.site + ":" + r.action.String()
		s := out[key]
		s.Hits += r.hits.Load()
		s.Fires += r.fires.Load()
		out[key] = s
	}
	return out
}

// Fires sums fired faults per "site:action" — the compact form stats
// endpoints embed. Nil when injection is off.
func Fires() map[string]int64 {
	snap := Snapshot()
	if snap == nil {
		return nil
	}
	out := make(map[string]int64, len(snap))
	for k, s := range snap {
		out[k] = s.Fires
	}
	return out
}

// Drained reports whether every capped rule has exhausted its fire budget
// — i.e. a schedule built only of #max-capped rules has no chaos left.
// Uncapped rules never drain.
func Drained() bool {
	inj := active.Load()
	if inj == nil {
		return true
	}
	for _, r := range inj.rules {
		if r.max == 0 || r.fires.Load() < r.max {
			return false
		}
	}
	return true
}

// Parse compiles a schedule spec. The grammar:
//
//	spec  = item (";" item)*
//	item  = "seed=" uint | rule
//	rule  = site ":" action [":" param] ["@" prob] ["#" max]
//
// param is a Go duration for hang, a (0,1) fraction for torn. Unknown
// sites, incompatible actions and malformed numbers are errors.
func Parse(spec string) (*Injector, error) {
	inj := &Injector{bySit: make(map[string][]*rule)}
	seenSeed := false
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if after, ok := strings.CutPrefix(item, "seed="); ok {
			n, err := strconv.ParseUint(after, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", after, err)
			}
			inj.seed = n
			seenSeed = true
			continue
		}
		r, err := parseRule(item)
		if err != nil {
			return nil, err
		}
		inj.rules = append(inj.rules, r)
		inj.bySit[r.site] = append(inj.bySit[r.site], r)
	}
	if len(inj.rules) == 0 {
		return nil, fmt.Errorf("faultinject: schedule %q has no rules", spec)
	}
	_ = seenSeed // seed 0 is a valid (and the default) schedule seed
	return inj, nil
}

func parseRule(item string) (*rule, error) {
	r := &rule{prob: 1}
	// Peel the #max and @prob suffixes off the right, then split the
	// remaining site:action[:param] on colons.
	if body, max, ok := cutLast(item, "#"); ok {
		n, err := strconv.ParseInt(max, 10, 64)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("faultinject: bad fire cap in %q", item)
		}
		r.max = n
		item = body
	}
	if body, prob, ok := cutLast(item, "@"); ok {
		p, err := strconv.ParseFloat(prob, 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, fmt.Errorf("faultinject: bad probability in %q (want (0,1])", item)
		}
		r.prob = p
		item = body
	}
	parts := strings.SplitN(item, ":", 3)
	if len(parts) < 2 {
		return nil, fmt.Errorf("faultinject: rule %q is not site:action[:param]", item)
	}
	r.site = parts[0]
	allowed, ok := actionsBySite[r.site]
	if !ok {
		return nil, fmt.Errorf("faultinject: unknown site %q (known: %s)", r.site, strings.Join(knownSites(), ", "))
	}
	act, err := parseAction(parts[1])
	if err != nil {
		return nil, err
	}
	if !containsAction(allowed, act) {
		return nil, fmt.Errorf("faultinject: action %q is not valid at site %q", parts[1], r.site)
	}
	r.action = act
	if len(parts) == 3 {
		switch act {
		case ActHang:
			d, err := time.ParseDuration(parts[2])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("faultinject: bad hang duration in %q", item)
			}
			r.dur = d
		case ActTorn:
			f, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || f <= 0 || f >= 1 {
				return nil, fmt.Errorf("faultinject: bad torn fraction in %q (want (0,1))", item)
			}
			r.frac = f
		default:
			return nil, fmt.Errorf("faultinject: action %q takes no parameter (%q)", parts[1], item)
		}
	}
	if act == ActHang && r.dur <= 0 {
		return nil, fmt.Errorf("faultinject: hang rule %q needs a duration parameter", item)
	}
	return r, nil
}

func parseAction(s string) (Action, error) {
	switch s {
	case "err":
		return ActErr, nil
	case "torn":
		return ActTorn, nil
	case "hang":
		return ActHang, nil
	case "corrupt":
		return ActCorrupt, nil
	case "reset":
		return ActReset, nil
	case "http500":
		return ActHTTP500, nil
	case "panic":
		return ActPanic, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown action %q", s)
	}
}

func containsAction(s []Action, a Action) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

func knownSites() []string {
	out := make([]string, 0, len(actionsBySite))
	for s := range actionsBySite {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// cutLast splits s on the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// splitmix64 is the standard 64-bit finalizer-style mixer; cheap, and its
// output is well-distributed even for sequential inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over a string.
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
