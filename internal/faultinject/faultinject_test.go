package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseRejectsMalformedSchedules(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "no rules"},
		{"seed=7", "no rules"},
		{"seed=x;store.write:err", "bad seed"},
		{"store.write", "site:action"},
		{"bogus.site:err", "unknown site"},
		{"store.write:bogus", "unknown action"},
		{"store.write:hang:10ms", "not valid at site"},
		{"transport:hang", "needs a duration"},
		{"transport:hang:zoom", "bad hang duration"},
		{"store.write:torn:1.5", "bad torn fraction"},
		{"store.write:err:10ms", "takes no parameter"},
		{"store.write:err@0", "bad probability"},
		{"store.write:err@1.5", "bad probability"},
		{"store.write:err#0", "bad fire cap"},
		{"store.write:err#-3", "bad fire cap"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestParseAcceptsFullGrammar(t *testing.T) {
	spec := "seed=42; store.write:torn:0.25@0.5#3 ;transport:hang:150ms@0.1;handler:panic#1;fetch.body:corrupt"
	inj, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	if inj.seed != 42 {
		t.Fatalf("seed = %d, want 42", inj.seed)
	}
	if len(inj.rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(inj.rules))
	}
	r := inj.rules[0]
	if r.site != SiteStoreWrite || r.action != ActTorn || r.frac != 0.25 || r.prob != 0.5 || r.max != 3 {
		t.Fatalf("rule 0 parsed wrong: %+v", r)
	}
	if inj.rules[1].dur != 150*time.Millisecond {
		t.Fatalf("hang duration = %v", inj.rules[1].dur)
	}
}

// The core determinism contract: the same seed fires on the same hit
// indices, run after run, even when hits arrive from many goroutines.
func TestSameSeedSameFireSequence(t *testing.T) {
	const spec = "seed=7;store.read:err@0.3"
	sequence := func(concurrent bool) []int64 {
		inj, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		Activate(inj)
		defer Reset()
		var mu sync.Mutex
		var fired []int64
		drive := func() {
			for i := 0; i < 200; i++ {
				if f := On(SiteStoreRead); f != nil {
					mu.Lock()
					fired = append(fired, f.N)
					mu.Unlock()
				}
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() { defer wg.Done(); drive() }()
			}
			wg.Wait()
		} else {
			for g := 0; g < 4; g++ {
				drive()
			}
		}
		set := map[int64]bool{}
		for _, n := range fired {
			set[n] = true
		}
		out := make([]int64, 0, len(set))
		for n := range set {
			out = append(out, n)
		}
		return out
	}
	a := sequence(false)
	b := sequence(true)
	if len(a) == 0 || len(a) == 800 {
		t.Fatalf("prob 0.3 fired %d/800 times — decision not probabilistic", len(a))
	}
	as, bs := map[int64]bool{}, map[int64]bool{}
	for _, n := range a {
		as[n] = true
	}
	for _, n := range b {
		bs[n] = true
	}
	if len(as) != len(bs) {
		t.Fatalf("fired sets differ: serial %d hits, concurrent %d hits", len(as), len(bs))
	}
	for n := range as {
		if !bs[n] {
			t.Fatalf("hit index %d fired serially but not concurrently", n)
		}
	}
	// A different seed fires a different set.
	inj2, _ := Parse("seed=8;store.read:err@0.3")
	Activate(inj2)
	defer Reset()
	differs := false
	for i := 0; i < 800; i++ {
		f := On(SiteStoreRead)
		if as[int64(i)] != (f != nil) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 produced identical fire sets")
	}
}

func TestFireCapDrainsSchedule(t *testing.T) {
	inj, err := Parse("store.write:err#3")
	if err != nil {
		t.Fatal(err)
	}
	Activate(inj)
	defer Reset()
	if Drained() {
		t.Fatal("schedule drained before any hits")
	}
	fires := 0
	for i := 0; i < 50; i++ {
		if On(SiteStoreWrite) != nil {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("capped rule fired %d times, want 3", fires)
	}
	if !Drained() {
		t.Fatal("schedule with exhausted cap should report drained")
	}
	snap := Snapshot()
	s := snap["store.write:err"]
	if s.Hits != 50 || s.Fires != 3 {
		t.Fatalf("snapshot = %+v, want hits 50 fires 3", s)
	}
	if Fires()["store.write:err"] != 3 {
		t.Fatalf("Fires() = %v", Fires())
	}
}

func TestOffIsOffAndSitesIsolated(t *testing.T) {
	Reset()
	if Active() || On(SiteStoreWrite) != nil || Snapshot() != nil || Fires() != nil {
		t.Fatal("disarmed injector leaked state")
	}
	if !Drained() {
		t.Fatal("disarmed injector should be trivially drained")
	}
	inj, _ := Parse("store.write:err")
	Activate(inj)
	defer Reset()
	if On(SiteStoreRead) != nil {
		t.Fatal("store.read fired from a store.write-only schedule")
	}
	if On(SiteStoreWrite) == nil {
		t.Fatal("store.write rule with prob 1 did not fire")
	}
}

func TestFaultHelpers(t *testing.T) {
	f := &Fault{Site: SiteStoreWrite, Action: ActErr, N: 4}
	if err := f.Err(); !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), "store.write") {
		t.Fatalf("Err() = %v", err)
	}
	torn := &Fault{frac: 0.5}
	if got := torn.Prefix(10); got != 5 {
		t.Fatalf("Prefix(10) = %d, want 5", got)
	}
	if got := torn.Prefix(1); got != 0 {
		t.Fatalf("Prefix(1) = %d, want 0", got)
	}
	whole := &Fault{frac: 0.99}
	if got := whole.Prefix(2); got >= 2 {
		t.Fatalf("Prefix must always be short of complete, got %d of 2", got)
	}
	data := []byte("hello, artifact body")
	c := &Fault{seed: 9, N: 2}
	flipped := c.Corrupt(data)
	if bytes.Equal(flipped, data) {
		t.Fatal("Corrupt did not change the payload")
	}
	if !bytes.Equal(flipped, c.Corrupt(data)) {
		t.Fatal("Corrupt is not deterministic for a fixed fault")
	}
	diff := 0
	for i := range data {
		diff += popcount8(data[i] ^ flipped[i])
	}
	if diff != 1 {
		t.Fatalf("Corrupt flipped %d bits, want exactly 1", diff)
	}
	if got := c.Corrupt(nil); got != nil {
		t.Fatalf("Corrupt(nil) = %v", got)
	}
	start := time.Now()
	h := &Fault{Dur: 5 * time.Millisecond}
	h.Sleep(nil)
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Sleep returned early")
	}
	done := make(chan struct{})
	close(done)
	start = time.Now()
	(&Fault{Dur: time.Minute}).Sleep(done)
	if time.Since(start) > time.Second {
		t.Fatal("Sleep ignored done channel")
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

type fakeRT struct {
	calls int
}

func (f *fakeRT) RoundTrip(req *http.Request) (*http.Response, error) {
	f.calls++
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("ok")),
		Request:    req,
	}, nil
}

func TestTransportFaults(t *testing.T) {
	newReq := func() *http.Request {
		req, err := http.NewRequest(http.MethodGet, "http://backend/v1/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		return req
	}

	// Off: pass-through.
	Reset()
	base := &fakeRT{}
	rt := Transport(base)
	resp, err := rt.RoundTrip(newReq())
	if err != nil || resp.StatusCode != http.StatusOK || base.calls != 1 {
		t.Fatalf("pass-through: resp=%v err=%v calls=%d", resp, err, base.calls)
	}

	// reset: fails like a closed connection, wrapped in ErrInjected.
	inj, _ := Parse("transport:reset#1")
	Activate(inj)
	if _, err := rt.RoundTrip(newReq()); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset fault: err = %v", err)
	}
	// Cap drained: next trip proceeds.
	if _, err := rt.RoundTrip(newReq()); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	Reset()

	// http500: synthetic untyped 500, base never touched.
	inj, _ = Parse("transport:http500#1")
	Activate(inj)
	before := base.calls
	resp, err = rt.RoundTrip(newReq())
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("http500 fault: resp=%v err=%v", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) == 0 || base.calls != before {
		t.Fatalf("http500 body=%q baseCalls=%d want untouched %d", body, base.calls, before)
	}
	Reset()

	// hang: delays, then proceeds.
	inj, _ = Parse("transport:hang:10ms#1")
	Activate(inj)
	start := time.Now()
	resp, err = rt.RoundTrip(newReq())
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("hang fault: resp=%v err=%v", resp, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("hang fault did not delay the round trip")
	}
	Reset()
}

func TestEnableEnvFallback(t *testing.T) {
	Reset()
	t.Setenv("TWOPHASE_FAULT_SCHEDULE", "store.read:err#1")
	if err := Enable(""); err != nil {
		t.Fatal(err)
	}
	defer Reset()
	if !Active() {
		t.Fatal("env schedule did not arm")
	}
	if err := Enable("not a schedule"); err == nil {
		t.Fatal("Enable accepted garbage")
	}
	Reset()
	t.Setenv("TWOPHASE_FAULT_SCHEDULE", "")
	if err := Enable(""); err != nil || Active() {
		t.Fatalf("empty spec should leave injection off: err=%v active=%v", err, Active())
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{
		ActErr: "err", ActTorn: "torn", ActHang: "hang", ActCorrupt: "corrupt",
		ActReset: "reset", ActHTTP500: "http500", ActPanic: "panic", Action(99): "action(99)",
	} {
		if got := a.String(); got != want {
			t.Errorf("Action(%d).String() = %q, want %q", a, got, want)
		}
	}
	_ = fmt.Sprintf("%v", ActErr)
}
