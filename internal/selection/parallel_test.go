package selection

import (
	"context"

	"reflect"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// parallelFixture builds a small pool of models, a target and an offline
// matrix for trend-guided selection.
func parallelFixture(t *testing.T) ([]*modelhub.Model, *datahub.Dataset, *perfmatrix.Matrix, Config) {
	t.Helper()
	w := synth.NewWorld(11)
	cat, err := datahub.NewTaskCatalog(w, datahub.TaskNLP, datahub.Sizes{Train: 60, Val: 40, Test: 48})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := modelhub.NewTaskRepository(w, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	hp := trainer.Default(datahub.TaskNLP)
	m, err := perfmatrix.Build(repo, cat.Benchmarks(), hp, w.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	models := repo.Models()[:8]
	d, err := cat.Get("tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	return models, d, m, Config{HP: hp, Seed: w.Seed, Salt: "parallel-test"}
}

// TestFineSelectParallelGolden locks in the tentpole guarantee: the
// worker-pool path returns an Outcome deeply identical to the sequential
// path — winner, accuracies, stage pools, and ledger.
func TestFineSelectParallelGolden(t *testing.T) {
	models, d, m, cfg := parallelFixture(t)
	for _, workers := range []int{2, 4, -1} {
		seqCfg, parCfg := cfg, cfg
		seqCfg.Workers = 1
		parCfg.Workers = workers
		seq, err := FineSelect(context.Background(), models, d, FineSelectOptions{Config: seqCfg, Matrix: m})
		if err != nil {
			t.Fatal(err)
		}
		par, err := FineSelect(context.Background(), models, d, FineSelectOptions{Config: parCfg, Matrix: m})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d outcome differs from sequential:\n%+v\nvs\n%+v", workers, par, seq)
		}
	}
}

func TestSuccessiveHalvingParallelGolden(t *testing.T) {
	models, d, _, cfg := parallelFixture(t)
	seqCfg, parCfg := cfg, cfg
	seqCfg.Workers = 0
	parCfg.Workers = 4
	seq, err := SuccessiveHalving(context.Background(), models, d, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SuccessiveHalving(context.Background(), models, d, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel SH differs from sequential:\n%+v\nvs\n%+v", par, seq)
	}
}

func TestBruteForceParallelGolden(t *testing.T) {
	models, d, _, cfg := parallelFixture(t)
	seqCfg, parCfg := cfg, cfg
	parCfg.Workers = 4
	seq, err := BruteForce(context.Background(), models, d, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BruteForce(context.Background(), models, d, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel BF differs from sequential:\n%+v\nvs\n%+v", par, seq)
	}
}
