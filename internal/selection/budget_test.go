package selection

import (
	"context"
	"reflect"
	"testing"
	"time"
)

func intPtr(v int) *int { return &v }

// TestZeroBudgetTruncatesAllStrategies: MaxEpochs=0 is a real budget — no
// training happens, every procedure reports Truncated, and the winner falls
// deterministically out of the untrained heads.
func TestZeroBudgetTruncatesAllStrategies(t *testing.T) {
	models, matrix, target, cfg := fixture(t)
	cfg.MaxEpochs = intPtr(0)

	type run func() (*Outcome, error)
	cases := map[string]run{
		"bf": func() (*Outcome, error) { return BruteForce(context.Background(), models, target, cfg) },
		"sh": func() (*Outcome, error) { return SuccessiveHalving(context.Background(), models, target, cfg) },
		"fs": func() (*Outcome, error) {
			return FineSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: matrix})
		},
	}
	for name, fn := range cases {
		out, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.Truncated || out.TruncatedBy != TruncatedByEpochs {
			t.Fatalf("%s: truncated=%v by=%q, want epoch truncation", name, out.Truncated, out.TruncatedBy)
		}
		if got := out.Ledger.TrainEpochs(); got != 0 {
			t.Fatalf("%s: trained %d epochs under a zero budget", name, got)
		}
		if out.Winner == "" {
			t.Fatalf("%s: no best-so-far winner", name)
		}
	}

	ens, err := EnsembleSelect(context.Background(), models, target,
		FineSelectOptions{Config: cfg, Matrix: matrix}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ens.Truncated || ens.TruncatedBy != TruncatedByEpochs {
		t.Fatalf("ensemble: truncated=%v by=%q", ens.Truncated, ens.TruncatedBy)
	}
	if got := ens.Ledger.TrainEpochs(); got != 0 {
		t.Fatalf("ensemble trained %d epochs under a zero budget", got)
	}
	if len(ens.Members) == 0 {
		t.Fatal("ensemble: no best-so-far members")
	}
}

// TestEpochBudgetStopsAtStageBoundary: the cap refuses a stage it cannot
// afford in full, so the spent epochs never exceed the cap and truncation
// lands exactly at a stage boundary.
func TestEpochBudgetStopsAtStageBoundary(t *testing.T) {
	models, _, target, cfg := fixture(t)
	cap := len(models) + 3 // one full first SH stage, not two
	cfg.MaxEpochs = intPtr(cap)

	out, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Truncated || out.TruncatedBy != TruncatedByEpochs {
		t.Fatalf("truncated=%v by=%q, want epoch truncation", out.Truncated, out.TruncatedBy)
	}
	if got := out.Ledger.TrainEpochs(); got != len(models) {
		t.Fatalf("spent %d train epochs, want exactly one stage (%d)", got, len(models))
	}
	if got := len(out.Stages); got != 1 {
		t.Fatalf("ran %d stages, want 1", got)
	}
}

// TestEpochBudgetDeterministic: a fixed epoch budget yields a bit-identical
// outcome on repeated runs — the determinism the serving paths rely on.
func TestEpochBudgetDeterministic(t *testing.T) {
	models, matrix, target, cfg := fixture(t)
	cfg.MaxEpochs = intPtr(len(models) + 1)

	run := func(workers int) *Outcome {
		c := cfg
		c.Workers = workers
		out, err := FineSelect(context.Background(), models, target, FineSelectOptions{Config: c, Matrix: matrix})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b, c := run(0), run(0), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("budgeted outcome not reproducible:\n%+v\nvs\n%+v", a, b)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("budgeted outcome differs across worker counts:\n%+v\nvs\n%+v", a, c)
	}
	if !a.Truncated {
		t.Fatal("budget did not truncate")
	}
}

// TestBudgetedPrefixMatchesUnbudgeted: up to the truncation point a
// budgeted run retrains the exact same stages as the unbudgeted procedure —
// anytime means "stop early", never "train differently".
func TestBudgetedPrefixMatchesUnbudgeted(t *testing.T) {
	models, _, target, cfg := fixture(t)
	full, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxEpochs = intPtr(len(models)) // exactly the first stage
	part, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(part.Stages, full.Stages[:len(part.Stages)]) {
		t.Fatalf("budgeted stages %v are not a prefix of full stages %v", part.Stages, full.Stages)
	}
}

// TestDeadlineTruncates: an already-expired deadline truncates before any
// training; the caller still gets a winner, not an error.
func TestDeadlineTruncates(t *testing.T) {
	models, _, target, cfg := fixture(t)
	cfg.Deadline = time.Now().Add(-time.Second)

	out, err := BruteForce(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Truncated || out.TruncatedBy != TruncatedByDeadline {
		t.Fatalf("truncated=%v by=%q, want deadline truncation", out.Truncated, out.TruncatedBy)
	}
	if out.Winner == "" {
		t.Fatal("no best-so-far winner")
	}
	if got := out.Ledger.TrainEpochs(); got != 0 {
		t.Fatalf("trained %d epochs past an expired deadline", got)
	}
}

// TestEpochCapWinsOverDeadline: when both dimensions are exhausted the
// deterministic epoch cap must be the reported reason, so identical
// budgeted requests agree across replicas regardless of wall-clock jitter.
func TestEpochCapWinsOverDeadline(t *testing.T) {
	cfg := Config{MaxEpochs: intPtr(0), Deadline: time.Now().Add(-time.Hour)}
	by, stop := cfg.budgetStop(0, 1)
	if !stop || by != TruncatedByEpochs {
		t.Fatalf("budgetStop = %q/%v, want epoch cap first", by, stop)
	}
}

// TestNoBudgetNoTruncation: the zero-value config never truncates.
func TestNoBudgetNoTruncation(t *testing.T) {
	models, _, target, cfg := fixture(t)
	out, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Truncated || out.TruncatedBy != "" {
		t.Fatalf("unbudgeted run truncated (%q)", out.TruncatedBy)
	}
}
