package selection

import (
	"context"
	"fmt"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/trainer"
)

// EnsembleOutcome reports a multi-model selection (§VII / the Palette
// line of work the paper cites): instead of a single winner, the top-k
// survivors of fine-selection are trained to the full budget and combined
// by soft voting.
type EnsembleOutcome struct {
	// Members are the ensembled model names, best validation first.
	Members []string
	// EnsembleVal / EnsembleTest are the soft-voting ensemble's
	// accuracies.
	EnsembleVal, EnsembleTest float64
	// BestSingleTest is the best member's individual test accuracy, for
	// judging the ensemble's lift.
	BestSingleTest float64
	// Ledger is the accumulated epoch cost.
	Ledger trainer.Ledger
	// Stages records the surviving pool at each training stage.
	Stages [][]string
	// Truncated / TruncatedBy report an anytime stop at the config's
	// budget: the members are then the best-so-far survivors (still at
	// most k, ranked by their current validation accuracy).
	Truncated   bool
	TruncatedBy string
}

// EnsembleSelect runs Algorithm 1's staged filtering but stops shrinking
// the pool at k models, trains the survivors to the full budget, and
// returns their soft-voting ensemble. With k=1 it degenerates to
// FineSelect. The paper positions multi-model selection as a drop-in
// extension of the fine-selection phase (§VI, §VII). A canceled context
// aborts mid-stage with ctx.Err().
func EnsembleSelect(ctx context.Context, models []*modelhub.Model, d *datahub.Dataset, opts FineSelectOptions, k int) (*EnsembleOutcome, error) {
	if k < 1 {
		return nil, fmt.Errorf("selection: ensemble size %d < 1", k)
	}
	runs, err := newRuns(models, d, opts.Config)
	if err != nil {
		return nil, err
	}
	pool := names(models)
	out := &EnsembleOutcome{}

	completed := 0
	for _, stageLen := range opts.stagePlan() {
		if by, stop := opts.budgetStop(out.Ledger.TrainEpochs(), len(pool)*stageLen); stop {
			out.Truncated, out.TruncatedBy = true, by
			break
		}
		out.Stages = append(out.Stages, append([]string(nil), pool...))
		vals, err := trainStage(ctx, runs, pool, stageLen, opts.workers(), &out.Ledger)
		if err != nil {
			return nil, err
		}
		completed += stageLen
		stage := completed - 1
		if len(pool) <= k {
			continue
		}

		keepMask := make([]bool, len(pool))
		for i := range keepMask {
			keepMask[i] = true
		}
		if !opts.DisableTrendFilter && opts.Matrix != nil {
			preds := make([]float64, len(pool))
			for i, name := range pool {
				p, err := PredictFinal(opts.Matrix, name, stage, vals[i], opts.TrendClusters)
				if err != nil {
					return nil, err
				}
				preds[i] = p
			}
			order := numeric.ArgSortAsc(vals)
			for oi, i := range order {
				dominated := false
				for _, j := range order[oi+1:] {
					if !keepMask[j] || vals[j] <= vals[i] {
						continue
					}
					if preds[j]-preds[i] > opts.Threshold*preds[i] {
						dominated = true
						break
					}
				}
				if dominated && remaining(keepMask) > k {
					keepMask[i] = false
				}
			}
		}
		// Halving backstop, floored at the ensemble size.
		limit := len(pool) / 2
		if limit < k {
			limit = k
		}
		if remaining(keepMask) > limit {
			order := numeric.ArgSortAsc(vals)
			for _, i := range order {
				if remaining(keepMask) <= limit {
					break
				}
				if keepMask[i] {
					keepMask[i] = false
				}
			}
		}
		next := pool[:0:0]
		for i, keep := range keepMask {
			if keep {
				next = append(next, pool[i])
			}
		}
		pool = next
	}

	// Rank survivors by final validation, keep at most k.
	finalVals := make([]float64, len(pool))
	for i, name := range pool {
		finalVals[i] = runs[name].Curve().FinalVal()
	}
	order := numeric.ArgSortDesc(finalVals)
	if len(order) > k {
		order = order[:k]
	}
	for _, i := range order {
		out.Members = append(out.Members, pool[i])
	}

	// Soft-voting ensemble over the members' probability predictions.
	memberRuns := make([]*trainer.Run, len(out.Members))
	for i, name := range out.Members {
		memberRuns[i] = runs[name]
		if t := runs[name].TestAccuracy(); t > out.BestSingleTest {
			out.BestSingleTest = t
		}
	}
	out.EnsembleVal = votingAccuracy(memberRuns, d.Val.Y, (*trainer.Run).ValProbs)
	out.EnsembleTest = votingAccuracy(memberRuns, d.Test.Y, (*trainer.Run).TestProbs)
	return out, nil
}

// votingAccuracy averages member probability predictions and scores the
// argmax against the labels. Each member contributes one probability
// frame (an example per row).
func votingAccuracy(members []*trainer.Run, labels []int, probsOf func(*trainer.Run) *numeric.Frame) float64 {
	if len(members) == 0 || len(labels) == 0 {
		return 0
	}
	all := make([]*numeric.Frame, len(members))
	for i, m := range members {
		all[i] = probsOf(m)
	}
	correct := 0
	avg := make([]float64, all[0].D)
	for ex := range labels {
		for c := range avg {
			avg[c] = 0
		}
		for _, probs := range all {
			for c, p := range probs.Row(ex) {
				avg[c] += p
			}
		}
		if numeric.ArgMax(avg) == labels[ex] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
