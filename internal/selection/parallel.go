package selection

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"sync"

	"twophase/internal/trainer"
)

// trainStage trains every pool member for stageLen epochs and returns each
// member's latest validation accuracy, in pool order. With workers > 1 the
// members train concurrently on a bounded worker pool; results are still
// identical to the sequential pass because each trainer.Run owns its named
// RNG stream (seeded from world seed, model and dataset), members share no
// state, and results merge by fixed pool index. The stage's epoch cost is
// charged to the ledger once, after the barrier, so ledger contents do not
// depend on goroutine scheduling.
//
// The context is observed between pool members (sequentially) or between
// work pickups (in parallel): a canceled context aborts the stage with
// ctx.Err() instead of burning the remaining members' epochs. A canceled
// stage charges nothing — its partial results are discarded by the caller.
func trainStage(ctx context.Context, runs map[string]*trainer.Run, pool []string, stageLen, workers int, ledger *trainer.Ledger) ([]float64, error) {
	vals := make([]float64, len(pool))
	if workers > len(pool) {
		workers = len(pool)
	}
	errs := make([]error, len(pool))
	if workers <= 1 {
		for i, name := range pool {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			vals[i], errs[i] = trainMember(runs[name], pool[i], stageLen)
		}
		if err := firstErr(errs); err != nil {
			return nil, err
		}
		ledger.ChargeEpochs(len(pool) * stageLen)
		return vals, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				vals[i], errs[i] = trainMember(runs[pool[i]], pool[i], stageLen)
			}
		}()
	}
feed:
	for i := range pool {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	ledger.ChargeEpochs(len(pool) * stageLen)
	return vals, nil
}

// trainMember runs one pool member's stage epochs, converting a panic in
// the training kernel into an error: a bare panic on a pool goroutine
// would kill the whole process, taking every other in-flight selection
// with it. The recover keeps the stage's failure local to its request.
func trainMember(run *trainer.Run, name string, stageLen int) (val float64, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("selection: training %q panicked: %v\n%s", name, rec, debug.Stack())
			err = fmt.Errorf("selection: training %q panicked: %v", name, rec)
		}
	}()
	for e := 0; e < stageLen; e++ {
		val = run.TrainEpoch()
	}
	return val, nil
}

// firstErr returns the first error in pool-index order, so the reported
// failure does not depend on which worker lost the race.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// workers resolves Config.Workers: 0 or 1 means sequential, negative means
// one worker per available CPU.
func (c Config) workers() int {
	if c.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}
