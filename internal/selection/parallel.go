package selection

import (
	"runtime"
	"sync"

	"twophase/internal/trainer"
)

// trainStage trains every pool member for stageLen epochs and returns each
// member's latest validation accuracy, in pool order. With workers > 1 the
// members train concurrently on a bounded worker pool; results are still
// identical to the sequential pass because each trainer.Run owns its named
// RNG stream (seeded from world seed, model and dataset), members share no
// state, and results merge by fixed pool index. The stage's epoch cost is
// charged to the ledger once, after the barrier, so ledger contents do not
// depend on goroutine scheduling.
func trainStage(runs map[string]*trainer.Run, pool []string, stageLen, workers int, ledger *trainer.Ledger) []float64 {
	vals := make([]float64, len(pool))
	if workers > len(pool) {
		workers = len(pool)
	}
	if workers <= 1 {
		for i, name := range pool {
			for e := 0; e < stageLen; e++ {
				vals[i] = runs[name].TrainEpoch()
			}
		}
		ledger.ChargeEpochs(len(pool) * stageLen)
		return vals
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				run := runs[pool[i]]
				for e := 0; e < stageLen; e++ {
					vals[i] = run.TrainEpoch()
				}
			}
		}()
	}
	for i := range pool {
		idx <- i
	}
	close(idx)
	wg.Wait()
	ledger.ChargeEpochs(len(pool) * stageLen)
	return vals
}

// workers resolves Config.Workers: 0 or 1 means sequential, negative means
// one worker per available CPU.
func (c Config) workers() int {
	if c.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}
