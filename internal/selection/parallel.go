package selection

import (
	"context"
	"runtime"
	"sync"

	"twophase/internal/trainer"
)

// trainStage trains every pool member for stageLen epochs and returns each
// member's latest validation accuracy, in pool order. With workers > 1 the
// members train concurrently on a bounded worker pool; results are still
// identical to the sequential pass because each trainer.Run owns its named
// RNG stream (seeded from world seed, model and dataset), members share no
// state, and results merge by fixed pool index. The stage's epoch cost is
// charged to the ledger once, after the barrier, so ledger contents do not
// depend on goroutine scheduling.
//
// The context is observed between pool members (sequentially) or between
// work pickups (in parallel): a canceled context aborts the stage with
// ctx.Err() instead of burning the remaining members' epochs. A canceled
// stage charges nothing — its partial results are discarded by the caller.
func trainStage(ctx context.Context, runs map[string]*trainer.Run, pool []string, stageLen, workers int, ledger *trainer.Ledger) ([]float64, error) {
	vals := make([]float64, len(pool))
	if workers > len(pool) {
		workers = len(pool)
	}
	if workers <= 1 {
		for i, name := range pool {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for e := 0; e < stageLen; e++ {
				vals[i] = runs[name].TrainEpoch()
			}
		}
		ledger.ChargeEpochs(len(pool) * stageLen)
		return vals, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				run := runs[pool[i]]
				for e := 0; e < stageLen; e++ {
					vals[i] = run.TrainEpoch()
				}
			}
		}()
	}
feed:
	for i := range pool {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ledger.ChargeEpochs(len(pool) * stageLen)
	return vals, nil
}

// workers resolves Config.Workers: 0 or 1 means sequential, negative means
// one worker per available CPU.
func (c Config) workers() int {
	if c.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}
