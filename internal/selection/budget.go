package selection

import "time"

// Budget dimensions an anytime selection can exhaust. TruncatedBy carries
// one of these through Outcome so the serving tier can tell a client *why*
// it got a best-so-far winner.
const (
	// TruncatedByEpochs marks a selection stopped by Config.MaxEpochs.
	TruncatedByEpochs = "max_epochs"
	// TruncatedByDeadline marks a selection stopped by Config.Deadline.
	TruncatedByDeadline = "deadline"
)

// budgetStop reports whether the next training stage — costing stageCost
// more epochs on top of the spent train epochs — must not run under the
// config's budget, and which dimension stops it.
//
// The epoch cap is checked first: it is deterministic (pure ledger
// arithmetic), so a request that fixes MaxEpochs truncates at exactly the
// same stage on every serving path regardless of wall-clock jitter. The
// deadline check only decides for requests without an exhausted epoch cap.
func (c Config) budgetStop(spent, stageCost int) (string, bool) {
	if c.MaxEpochs != nil && spent+stageCost > *c.MaxEpochs {
		return TruncatedByEpochs, true
	}
	if !c.Deadline.IsZero() && !time.Now().Before(c.Deadline) {
		return TruncatedByDeadline, true
	}
	return "", false
}

// truncate marks an outcome as stopped early by the given budget
// dimension. The pool and ledger stay exactly as the last completed stage
// left them — partial work is kept, never rolled back, so the batch
// ledger still counts a truncated target's spent epochs.
func (o *Outcome) truncate(by string) {
	o.Truncated = true
	o.TruncatedBy = by
}
