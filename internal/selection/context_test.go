package selection

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// stepCtx is a deterministic cancellation fixture: it reports itself
// canceled after a fixed number of Err() observations, which the
// sequential training path makes exactly once per (stage, pool member).
// That pins the cancellation point mid-selection without any timing.
type stepCtx struct {
	context.Context
	calls int
	after int
}

func (c *stepCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func (c *stepCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestCancellationStopsEarly proves an in-flight fine selection aborts at
// the next per-model check instead of burning the remaining epochs.
func TestCancellationStopsEarly(t *testing.T) {
	models, m, target, cfg := fixture(t)

	// Uncancelled baseline: count how many checks a full run makes.
	full := &stepCtx{Context: context.Background(), after: 1 << 30}
	if _, err := FineSelect(full, models, target, FineSelectOptions{Config: cfg, Matrix: m}); err != nil {
		t.Fatal(err)
	}
	if full.calls < 6 {
		t.Fatalf("fixture too small to observe an early stop (%d checks)", full.calls)
	}

	// Cancel two thirds of the way through the full run's check sequence.
	after := full.calls * 2 / 3
	ctx := &stepCtx{Context: context.Background(), after: after}
	out, err := FineSelect(ctx, models, target, FineSelectOptions{Config: cfg, Matrix: m})
	if out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled selection returned (%+v, %v), want (nil, context.Canceled)", out, err)
	}
	// The abort must happen at the first failed check: one more
	// observation than the budget, not a full run's worth.
	if ctx.calls != after+1 {
		t.Fatalf("selection made %d context checks after cancellation at %d (full run: %d)",
			ctx.calls, after, full.calls)
	}
}

// TestPreCanceledContext: every selection procedure refuses to train at
// all under an already-dead context.
func TestPreCanceledContext(t *testing.T) {
	models, m, target, cfg := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if out, err := FineSelect(ctx, models, target, FineSelectOptions{Config: cfg, Matrix: m}); out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("FineSelect: (%+v, %v)", out, err)
	}
	if out, err := SuccessiveHalving(ctx, models, target, cfg); out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("SuccessiveHalving: (%+v, %v)", out, err)
	}
	if out, err := BruteForce(ctx, models, target, cfg); out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("BruteForce: (%+v, %v)", out, err)
	}
	if out, err := EnsembleSelect(ctx, models, target, FineSelectOptions{Config: cfg, Matrix: m}, 3); out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("EnsembleSelect: (%+v, %v)", out, err)
	}

	// The parallel path must also abort (its feeder selects on Done).
	par := cfg
	par.Workers = 4
	if out, err := BruteForce(ctx, models, target, par); out != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel BruteForce: (%+v, %v)", out, err)
	}
}

// TestUncancelledGolden is the bit-identity guarantee of the context
// refactor: threading a live context through a selection changes nothing
// about its outcome — winners, accuracies, stages and ledgers are deeply
// equal to a context.Background() run.
func TestUncancelledGolden(t *testing.T) {
	models, m, target, cfg := fixture(t)
	opts := FineSelectOptions{Config: cfg, Matrix: m}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	a, err := FineSelect(context.Background(), models, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FineSelect(ctx, models, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("live-context outcome differs from Background:\n%+v\nvs\n%+v", a, b)
	}

	sa, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SuccessiveHalving(ctx, models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("SH live-context outcome differs:\n%+v\nvs\n%+v", sa, sb)
	}

	ea, err := EnsembleSelect(context.Background(), models, target, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := EnsembleSelect(ctx, models, target, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("ensemble live-context outcome differs:\n%+v\nvs\n%+v", ea, eb)
	}
}
