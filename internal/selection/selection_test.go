package selection

import (
	"context"

	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// fixture builds a 10-model pool, matrix over 6 benchmarks, and a target.
func fixture(t *testing.T) ([]*modelhub.Model, *perfmatrix.Matrix, *datahub.Dataset, Config) {
	t.Helper()
	w := synth.NewWorld(42)
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, modelhub.NLPSpecs()[:10])
	if err != nil {
		t.Fatal(err)
	}
	var benches []*datahub.Dataset
	for _, spec := range datahub.NLPBenchmarks()[:6] {
		d, err := datahub.Generate(w, spec, datahub.Sizes{Train: 80, Val: 50, Test: 80})
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, d)
	}
	m, err := perfmatrix.Build(repo, benches, trainer.Default(datahub.TaskNLP), w.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	target, err := datahub.Generate(w, datahub.NLPTargets()[1], datahub.Sizes{Train: 80, Val: 50, Test: 80})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{HP: trainer.Default(datahub.TaskNLP), Seed: w.Seed, Salt: "test"}
	return repo.Models(), m, target, cfg
}

func TestBruteForceCost(t *testing.T) {
	models, _, target, cfg := fixture(t)
	out, err := BruteForce(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Ledger.TrainEpochs(), len(models)*cfg.HP.Epochs; got != want {
		t.Fatalf("BF cost %d, want %d", got, want)
	}
	if out.Winner == "" || out.WinnerTest <= 0 {
		t.Fatal("BF produced no winner")
	}
	// winner must have the best final validation accuracy
	for _, m := range models {
		curve, err := trainer.FineTune(pick(models, m.Name), target, cfg.HP, cfg.Seed, cfg.Salt)
		if err != nil {
			t.Fatal(err)
		}
		if curve.FinalVal() > out.WinnerVal+1e-12 {
			t.Fatalf("model %s val %v beats winner %v", m.Name, curve.FinalVal(), out.WinnerVal)
		}
	}
}

func pick(models []*modelhub.Model, name string) *modelhub.Model {
	for _, m := range models {
		if m.Name == name {
			return m
		}
	}
	return nil
}

func TestSuccessiveHalvingSchedule(t *testing.T) {
	models, _, target, cfg := fixture(t)
	out, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 models, 5 epochs: pools 10,5,2,1,1 -> 19 epochs (paper Table V)
	wantPools := []int{10, 5, 2, 1, 1}
	if len(out.Stages) != len(wantPools) {
		t.Fatalf("stages %d", len(out.Stages))
	}
	for i, want := range wantPools {
		if len(out.Stages[i]) != want {
			t.Fatalf("stage %d pool %d, want %d", i, len(out.Stages[i]), want)
		}
	}
	if out.Ledger.TrainEpochs() != 19 {
		t.Fatalf("SH cost %d, want 19", out.Ledger.TrainEpochs())
	}
}

func TestSuccessiveHalvingDeterministic(t *testing.T) {
	models, _, target, cfg := fixture(t)
	a, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Winner != b.Winner || a.WinnerTest != b.WinnerTest {
		t.Fatal("SH not deterministic")
	}
}

func TestFineSelectCheaperThanSH(t *testing.T) {
	models, m, target, cfg := fixture(t)
	sh, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := FineSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Ledger.TrainEpochs() > sh.Ledger.TrainEpochs() {
		t.Fatalf("FS cost %d above SH %d", fs.Ledger.TrainEpochs(), sh.Ledger.TrainEpochs())
	}
	if fs.Winner == "" {
		t.Fatal("no winner")
	}
}

func TestFineSelectWithoutMatrixEqualsSH(t *testing.T) {
	models, _, target, cfg := fixture(t)
	fs, err := FineSelect(context.Background(), models, target, FineSelectOptions{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Ledger.TrainEpochs() != sh.Ledger.TrainEpochs() {
		t.Fatalf("matrix-less FS cost %d differs from SH %d", fs.Ledger.TrainEpochs(), sh.Ledger.TrainEpochs())
	}
	if fs.Winner != sh.Winner {
		t.Fatal("matrix-less FS should reduce to SH")
	}
}

func TestFineSelectHalvingBackstop(t *testing.T) {
	models, m, target, cfg := fixture(t)
	out, err := FineSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out.Stages); i++ {
		limit := len(out.Stages[i-1]) / 2
		if limit < 1 {
			limit = 1
		}
		if len(out.Stages[i]) > limit {
			t.Fatalf("stage %d kept %d models, limit %d", i, len(out.Stages[i]), limit)
		}
	}
}

func TestFineSelectThresholdMonotoneCost(t *testing.T) {
	models, m, target, cfg := fixture(t)
	prev := -1
	for _, th := range []float64{0, 0.05, 0.2} {
		out, err := FineSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: m, Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		if out.Ledger.TrainEpochs() < prev {
			t.Fatalf("threshold %v reduced cost below smaller threshold", th)
		}
		prev = out.Ledger.TrainEpochs()
	}
}

func TestSelectionErrors(t *testing.T) {
	models, m, target, cfg := fixture(t)
	if _, err := BruteForce(context.Background(), nil, target, cfg); err == nil {
		t.Fatal("empty pool accepted")
	}
	dup := []*modelhub.Model{models[0], models[0]}
	if _, err := SuccessiveHalving(context.Background(), dup, target, cfg); err == nil {
		t.Fatal("duplicate models accepted")
	}
	_ = m
}

func TestSingleModelPool(t *testing.T) {
	models, m, target, cfg := fixture(t)
	out, err := FineSelect(context.Background(), models[:1], target, FineSelectOptions{Config: cfg, Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != models[0].Name {
		t.Fatal("single-model pool must select that model")
	}
	if out.Ledger.TrainEpochs() != cfg.HP.Epochs {
		t.Fatalf("single-model cost %d", out.Ledger.TrainEpochs())
	}
}

func TestOutcomeStagesStartWithFullPool(t *testing.T) {
	models, m, target, cfg := fixture(t)
	out, err := FineSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stages[0]) != len(models) {
		t.Fatal("stage 0 must contain the full pool")
	}
}
