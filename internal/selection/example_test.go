package selection_test

import (
	"fmt"

	"twophase/internal/selection"
)

// ExamplePredictSHEpochs reproduces the paper's Table V runtime
// accounting analytically: 10 models halving per epoch over a 5-epoch
// budget cost 10+5+2+1+1 = 19 epochs.
func ExamplePredictSHEpochs() {
	fmt.Println(selection.PredictSHEpochs(10, 5, 1))
	fmt.Println(selection.PredictSHEpochs(40, 5, 1))
	// Output:
	// 19
	// 77
}

func ExampleMatchTrend() {
	trends := []selection.Trend{
		{Val: 0.45, Test: 0.50},
		{Val: 0.70, Test: 0.72},
		{Val: 0.90, Test: 0.88},
	}
	// a model validating at 0.68 after the first epoch matches the
	// middle trend, so its final accuracy is predicted as 0.72
	idx := selection.MatchTrend(trends, 0.68)
	fmt.Printf("%d %.2f\n", idx, trends[idx].Test)
	// Output: 1 0.72
}

func ExampleCheapestStrategy() {
	strategy, epochs := selection.CheapestStrategy(10, 5, 1, true)
	fmt.Println(strategy, epochs)
	// Output: fine-selection 16
}
