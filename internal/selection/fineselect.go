package selection

import (
	"context"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
)

// FineSelectOptions extends Config with the convergence-trend machinery of
// Algorithm 1.
type FineSelectOptions struct {
	Config
	// Matrix supplies the offline convergence records mined into trends.
	Matrix *perfmatrix.Matrix
	// TrendClusters is c of §IV.C (0 means DefaultTrendClusters).
	TrendClusters int
	// Threshold is the filtering threshold of Table IV: a model is only
	// trend-filtered when a better-validation competitor's predicted
	// final performance exceeds the model's own prediction by more than
	// Threshold (as a proportion of the model's prediction). 0 is the
	// paper's default setting.
	Threshold float64
	// DisableTrendFilter turns Algorithm 1's fine-filter step off,
	// reducing the procedure to successive halving; used by the
	// ablation benchmark.
	DisableTrendFilter bool
}

// FineSelect runs Algorithm 1: staged training with convergence-trend
// prediction (Eq. 5/6), trend-based fine-filtering, and a halving
// backstop, returning a single fully trained model. A canceled context
// aborts between epochs-of-one-model with ctx.Err(); with an uncanceled
// context the outcome is bit-identical to the historical signature. A
// budget in Config (MaxEpochs/Deadline) makes the procedure anytime: it
// stops at the last stage boundary that fits and reports Truncated with
// the best-so-far winner instead of erroring.
func FineSelect(ctx context.Context, models []*modelhub.Model, d *datahub.Dataset, opts FineSelectOptions) (*Outcome, error) {
	runs, err := newRuns(models, d, opts.Config)
	if err != nil {
		return nil, err
	}
	pool := names(models)
	out := &Outcome{}

	completed := 0
	for _, stageLen := range opts.stagePlan() {
		if by, stop := opts.budgetStop(out.Ledger.TrainEpochs(), len(pool)*stageLen); stop {
			out.truncate(by)
			break
		}
		out.Stages = append(out.Stages, append([]string(nil), pool...))
		vals, err := trainStage(ctx, runs, pool, stageLen, opts.workers(), &out.Ledger)
		if err != nil {
			return nil, err
		}
		completed += stageLen
		// stage is the offline-curve epoch index matching the validation
		// accuracy just measured, for trend lookup.
		stage := completed - 1
		if len(pool) == 1 {
			continue
		}

		keepMask := make([]bool, len(pool))
		for i := range keepMask {
			keepMask[i] = true
		}

		if !opts.DisableTrendFilter && opts.Matrix != nil {
			// Predict each survivor's final performance by matching its
			// current validation accuracy against the model's mined
			// convergence trends at this stage (Eq. 5/6).
			preds := make([]float64, len(pool))
			for i, name := range pool {
				p, err := PredictFinal(opts.Matrix, name, stage, vals[i], opts.TrendClusters)
				if err != nil {
					return nil, err
				}
				preds[i] = p
			}
			// Fine-filter: walk models from worst validation upward and
			// drop one when some better-validation model's prediction
			// beats its own by more than the threshold proportion.
			order := numeric.ArgSortAsc(vals)
			for oi, i := range order {
				dominated := false
				for _, j := range order[oi+1:] {
					if !keepMask[j] || vals[j] <= vals[i] {
						continue
					}
					margin := opts.Threshold * preds[i]
					if preds[j]-preds[i] > margin {
						dominated = true
						break
					}
				}
				if dominated && remaining(keepMask) > 1 {
					keepMask[i] = false
				}
			}
		}

		// Halving backstop: never keep more than floor(|Mt|/2) models
		// (Algorithm 1 lines 8-10).
		limit := len(pool) / 2
		if limit < 1 {
			limit = 1
		}
		if remaining(keepMask) > limit {
			order := numeric.ArgSortAsc(vals)
			for _, i := range order {
				if remaining(keepMask) <= limit {
					break
				}
				if keepMask[i] {
					keepMask[i] = false
				}
			}
		}

		next := pool[:0:0]
		for i, keep := range keepMask {
			if keep {
				next = append(next, pool[i])
			}
		}
		pool = next
	}
	return finish(out, pool, runs)
}

func remaining(mask []bool) int {
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	return n
}
