package selection

import (
	"context"

	"testing"
	"testing/quick"
)

func TestPredictSHEpochsMatchesPaper(t *testing.T) {
	// The paper's Table V: 10 models x 5 epochs = 19; 40 x 5 = 77;
	// 10 x 4 = 18; 30 x 4 = 55.
	cases := []struct{ pool, budget, want int }{
		{10, 5, 19},
		{40, 5, 77},
		{10, 4, 18},
		{30, 4, 55},
	}
	for _, c := range cases {
		if got := PredictSHEpochs(c.pool, c.budget, 1); got != c.want {
			t.Fatalf("SH(%d,%d) = %d, want %d", c.pool, c.budget, got, c.want)
		}
	}
}

func TestPredictBruteForce(t *testing.T) {
	if PredictBruteForceEpochs(40, 5) != 200 {
		t.Fatal("BF(40,5) != 200")
	}
	if PredictBruteForceEpochs(0, 5) != 0 || PredictBruteForceEpochs(5, 0) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestCostOrderingProperty(t *testing.T) {
	f := func(pool, budget, s uint8) bool {
		p := int(pool%50) + 1
		b := int(budget%8) + 1
		ss := int(s%3) + 1
		bf := PredictBruteForceEpochs(p, b)
		sh := PredictSHEpochs(p, b, ss)
		lo, hi := PredictFSEpochsRange(p, b, ss)
		return lo <= hi && hi <= sh && sh <= bf && lo >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictSHMatchesActual(t *testing.T) {
	// The cost model must agree with the real procedure.
	models, _, target, cfg := fixture(t)
	for _, s := range []int{1, 2} {
		cfg.StageEpochs = s
		out, err := SuccessiveHalving(context.Background(), models, target, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := PredictSHEpochs(len(models), cfg.HP.Epochs, s)
		if out.Ledger.TrainEpochs() != want {
			t.Fatalf("s=%d: actual %d != predicted %d", s, out.Ledger.TrainEpochs(), want)
		}
	}
}

func TestPredictFSBoundsActual(t *testing.T) {
	models, m, target, cfg := fixture(t)
	out, err := FineSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := PredictFSEpochsRange(len(models), cfg.HP.Epochs, 1)
	got := out.Ledger.TrainEpochs()
	if got < lo || got > hi {
		t.Fatalf("actual FS cost %d outside predicted [%d, %d]", got, lo, hi)
	}
}

func TestCheapestStrategy(t *testing.T) {
	// With a matrix, fine-selection should win at any non-trivial pool.
	s, cost := CheapestStrategy(10, 5, 1, true)
	if s != StrategyFineSelection {
		t.Fatalf("chose %s", s)
	}
	if cost <= 0 {
		t.Fatal("non-positive cost")
	}
	// Without a matrix, SH beats BF for pools > 1.
	s, _ = CheapestStrategy(10, 5, 1, false)
	if s != StrategySuccessiveHalving {
		t.Fatalf("chose %s without matrix", s)
	}
	// A single model: everything costs the same; BF is fine.
	_, cost = CheapestStrategy(1, 5, 1, false)
	if cost != 5 {
		t.Fatalf("single-model cost %d", cost)
	}
}
