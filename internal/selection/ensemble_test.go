package selection

import (
	"context"

	"testing"

	"twophase/internal/trainer"
)

func TestEnsembleSelectBasics(t *testing.T) {
	models, m, target, cfg := fixture(t)
	opts := FineSelectOptions{Config: cfg, Matrix: m}
	out, err := EnsembleSelect(context.Background(), models, target, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Members) != 3 {
		t.Fatalf("ensemble has %d members", len(out.Members))
	}
	if out.EnsembleTest <= 0 || out.EnsembleTest > 1 || out.EnsembleVal <= 0 {
		t.Fatalf("ensemble accuracies val=%v test=%v", out.EnsembleVal, out.EnsembleTest)
	}
	if out.BestSingleTest <= 0 {
		t.Fatal("no best member accuracy")
	}
	// members must be unique and drawn from the pool
	seen := map[string]bool{}
	poolSet := map[string]bool{}
	for _, mm := range models {
		poolSet[mm.Name] = true
	}
	for _, name := range out.Members {
		if seen[name] || !poolSet[name] {
			t.Fatalf("bad member %q", name)
		}
		seen[name] = true
	}
}

func TestEnsembleSelectKeepsAtLeastK(t *testing.T) {
	models, m, target, cfg := fixture(t)
	out, err := EnsembleSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: m}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, pool := range out.Stages {
		if len(pool) < 4 && i > 0 {
			t.Fatalf("stage %d shrank below k: %d", i, len(pool))
		}
	}
}

func TestEnsembleSelectInvalidK(t *testing.T) {
	models, m, target, cfg := fixture(t)
	if _, err := EnsembleSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: m}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestEnsembleCostsMoreThanSingle(t *testing.T) {
	models, m, target, cfg := fixture(t)
	opts := FineSelectOptions{Config: cfg, Matrix: m}
	single, err := FineSelect(context.Background(), models, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := EnsembleSelect(context.Background(), models, target, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Ledger.TrainEpochs() < single.Ledger.TrainEpochs() {
		t.Fatalf("ensemble cost %d below single %d", ens.Ledger.TrainEpochs(), single.Ledger.TrainEpochs())
	}
}

func TestEnsembleK1MatchesFineSelectWinnerQuality(t *testing.T) {
	models, m, target, cfg := fixture(t)
	opts := FineSelectOptions{Config: cfg, Matrix: m}
	ens, err := EnsembleSelect(context.Background(), models, target, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ens.Members) != 1 {
		t.Fatalf("k=1 kept %d members", len(ens.Members))
	}
	// a single-member "ensemble" is just that model's prediction
	if ens.EnsembleTest != ens.BestSingleTest {
		t.Fatalf("single-member ensemble %v != member %v", ens.EnsembleTest, ens.BestSingleTest)
	}
}

func TestStageEpochsPlan(t *testing.T) {
	cfg := Config{HP: trainer.Hyperparams{LearningRate: 0.1, BatchSize: 8, Epochs: 5}, StageEpochs: 2}
	plan := cfg.stagePlan()
	if len(plan) != 3 || plan[0] != 2 || plan[1] != 2 || plan[2] != 1 {
		t.Fatalf("plan = %v", plan)
	}
	cfg.StageEpochs = 0
	if got := len(cfg.stagePlan()); got != 5 {
		t.Fatalf("default plan has %d stages", got)
	}
}

func TestStageEpochsReducesStages(t *testing.T) {
	models, m, target, cfg := fixture(t)
	cfg.StageEpochs = 2
	out, err := FineSelect(context.Background(), models, target, FineSelectOptions{Config: cfg, Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	// 5-epoch budget at s=2 -> 3 stages
	if len(out.Stages) != 3 {
		t.Fatalf("stages %d with s=2", len(out.Stages))
	}
	// total trained epochs never exceeds pool-size * budget
	if out.Ledger.TrainEpochs() > len(models)*cfg.HP.Epochs {
		t.Fatal("cost exceeds brute force")
	}
	if out.Winner == "" {
		t.Fatal("no winner")
	}
}

func TestStageEpochsSHConsistency(t *testing.T) {
	models, _, target, cfg := fixture(t)
	cfg.StageEpochs = 5 // one stage: SH degenerates to brute force + argmax
	sh, err := SuccessiveHalving(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Ledger.TrainEpochs() != len(models)*cfg.HP.Epochs {
		t.Fatalf("single-stage SH cost %d", sh.Ledger.TrainEpochs())
	}
	bf, err := BruteForce(context.Background(), models, target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Winner != bf.Winner {
		t.Fatal("single-stage SH should agree with brute force")
	}
}
