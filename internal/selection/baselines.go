// Package selection implements the fine-selection phase (§IV) and its
// baselines: brute-force search, successive halving, convergence-trend
// mining over the offline matrix (Eq. 5/6), and the paper's fine-selection
// refinement (Algorithm 1).
//
// All procedures account their cost in training epochs through a
// trainer.Ledger and select strictly on validation accuracy; held-out test
// accuracy is only read to *report* the quality of the finished choice.
package selection

import (
	"context"
	"fmt"
	"time"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/trainer"
)

// Config fixes the training setup shared by all selection procedures.
type Config struct {
	// HP is the fine-tuning hyperparameter set (epoch budget included).
	HP trainer.Hyperparams
	// Seed is the world seed for run streams.
	Seed uint64
	// Salt separates selection procedures that would otherwise share
	// run streams (e.g. SH vs FS over the same models).
	Salt string
	// StageEpochs is Algorithm 1's validation interval s: how many
	// epochs each surviving model trains between filtering decisions.
	// 0 means 1, the paper's evaluation setting.
	StageEpochs int
	// Workers bounds how many surviving candidates train concurrently
	// within one stage — per-round training is embarrassingly parallel
	// because every run owns its RNG stream. 0 or 1 trains sequentially
	// (the historical behaviour); negative uses one worker per CPU.
	// Outcomes are bit-identical across settings: stage results merge in
	// fixed pool order and the ledger is charged per stage, not per
	// goroutine.
	Workers int
	// MaxEpochs, when non-nil, caps the training epochs this selection
	// may charge: a stage whose full-pool cost would push the ledger past
	// the cap is not started, and the outcome reports Truncated with the
	// best-so-far winner instead of an error. 0 is a real budget (no
	// training at all — the winner falls out of the untrained heads,
	// deterministically); nil runs the full stage plan. Truncation
	// happens only at stage boundaries, so a fixed cap yields a
	// bit-identical outcome on every serving path.
	MaxEpochs *int
	// Deadline, when nonzero, is the wall-clock anytime bound: a stage
	// that would start at or after it is skipped and the outcome reports
	// Truncated. Unlike context cancellation this is not an error — the
	// caller still gets the best-so-far winner. The check happens at
	// stage boundaries, so a selection may overrun the deadline by up to
	// one stage (pool size × stage epochs).
	Deadline time.Time
}

// stageEpochs returns the effective validation interval.
func (c Config) stageEpochs() int {
	if c.StageEpochs <= 0 {
		return 1
	}
	return c.StageEpochs
}

// stagePlan splits the total epoch budget into stages of s epochs (the
// last stage absorbs the remainder).
func (c Config) stagePlan() []int {
	s := c.stageEpochs()
	var plan []int
	for remaining := c.HP.Epochs; remaining > 0; remaining -= s {
		if remaining < s {
			plan = append(plan, remaining)
			break
		}
		plan = append(plan, s)
	}
	return plan
}

// Outcome reports a finished selection.
type Outcome struct {
	// Winner is the selected model's name.
	Winner string
	// WinnerVal is the winner's final validation accuracy.
	WinnerVal float64
	// WinnerTest is the winner's held-out test accuracy after full
	// training (the number the paper's Fig. 7 / Table VI report).
	WinnerTest float64
	// Ledger is the accumulated epoch cost.
	Ledger trainer.Ledger
	// Stages records the model names still in play at the start of each
	// training stage (diagnostics; stage 0 is the initial pool).
	Stages [][]string
	// Truncated reports that the selection stopped before its full stage
	// plan because the config's budget (MaxEpochs or Deadline) ran out;
	// Winner is then the best-so-far survivor, not the full procedure's.
	Truncated bool
	// TruncatedBy names the exhausted budget dimension
	// (TruncatedByEpochs or TruncatedByDeadline); empty when not
	// truncated.
	TruncatedBy string
}

func newRuns(models []*modelhub.Model, d *datahub.Dataset, cfg Config) (map[string]*trainer.Run, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("selection: empty model pool")
	}
	runs := make(map[string]*trainer.Run, len(models))
	for _, m := range models {
		if _, dup := runs[m.Name]; dup {
			return nil, fmt.Errorf("selection: duplicate model %q", m.Name)
		}
		run, err := trainer.NewRun(m, d, cfg.HP, cfg.Seed, cfg.Salt)
		if err != nil {
			return nil, err
		}
		runs[m.Name] = run
	}
	return runs, nil
}

// BruteForce fine-tunes every model for the full epoch budget and selects
// the best final validation accuracy. Cost: |M| * Epochs. A canceled
// context aborts mid-pool with ctx.Err(). Training proceeds one full-pool
// epoch pass at a time so a budget can stop it between passes — every run
// owns its RNG stream, so the per-epoch interleaving is bit-identical to
// the historical train-each-model-to-completion order.
func BruteForce(ctx context.Context, models []*modelhub.Model, d *datahub.Dataset, cfg Config) (*Outcome, error) {
	runs, err := newRuns(models, d, cfg)
	if err != nil {
		return nil, err
	}
	pool := names(models)
	out := &Outcome{Stages: [][]string{pool}}
	for e := 0; e < cfg.HP.Epochs; e++ {
		if by, stop := cfg.budgetStop(out.Ledger.TrainEpochs(), len(pool)); stop {
			out.truncate(by)
			break
		}
		if _, err := trainStage(ctx, runs, pool, 1, cfg.workers(), &out.Ledger); err != nil {
			return nil, err
		}
	}
	return finish(out, pool, runs)
}

// SuccessiveHalving trains every surviving model one epoch per stage and
// keeps the top half by validation accuracy (Jamieson & Talwalkar 2016,
// the paper's SH baseline). Ties keep the earlier model in pool order so
// results are deterministic. A canceled context aborts between stages or
// pool members with ctx.Err().
func SuccessiveHalving(ctx context.Context, models []*modelhub.Model, d *datahub.Dataset, cfg Config) (*Outcome, error) {
	runs, err := newRuns(models, d, cfg)
	if err != nil {
		return nil, err
	}
	pool := names(models)
	out := &Outcome{}
	for _, stageLen := range cfg.stagePlan() {
		if by, stop := cfg.budgetStop(out.Ledger.TrainEpochs(), len(pool)*stageLen); stop {
			out.truncate(by)
			break
		}
		out.Stages = append(out.Stages, append([]string(nil), pool...))
		vals, err := trainStage(ctx, runs, pool, stageLen, cfg.workers(), &out.Ledger)
		if err != nil {
			return nil, err
		}
		if len(pool) > 1 {
			keep := len(pool) / 2
			if keep < 1 {
				keep = 1
			}
			order := numeric.ArgSortDesc(vals)
			next := make([]string, 0, keep)
			for _, i := range order[:keep] {
				next = append(next, pool[i])
			}
			pool = sortByOriginal(next, names(models))
		}
	}
	return finish(out, pool, runs)
}

// finish picks the best-validation survivor and fills the outcome.
func finish(out *Outcome, pool []string, runs map[string]*trainer.Run) (*Outcome, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("selection: no survivors")
	}
	bestVal := -1.0
	for _, name := range pool {
		if v := runs[name].Curve().FinalVal(); v > bestVal {
			bestVal = v
			out.Winner = name
			out.WinnerVal = v
			out.WinnerTest = runs[name].TestAccuracy()
		}
	}
	return out, nil
}

func names(models []*modelhub.Model) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name
	}
	return out
}

// sortByOriginal reorders subset to the order its elements appear in ref.
func sortByOriginal(subset, ref []string) []string {
	pos := make(map[string]int, len(ref))
	for i, n := range ref {
		pos[n] = i
	}
	out := append([]string(nil), subset...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if pos[out[j]] < pos[out[i]] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
