package selection

import (
	"fmt"
	"math"
	"sort"

	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
)

// Trend is one mined convergence trend of a model: the mean validation
// accuracy of a cluster of benchmark datasets at some stage, paired with
// the cluster's mean final test accuracy (CT(m)_t[x] = (val_x, test_x),
// §IV.C).
type Trend struct {
	Val     float64 // mean validation accuracy at the stage
	Test    float64 // mean final test accuracy (the prediction)
	Members []int   // benchmark indices (matrix dataset order)
}

// DefaultTrendClusters is the number of convergence trends mined per
// model; Fig. 4 shows the paper's four groups.
const DefaultTrendClusters = 4

// TrendsAtStage clusters the model's benchmark validation accuracies at
// the given stage (0-based epoch index) into c one-dimensional groups and
// returns one Trend per group, sorted by ascending Val.
//
// The 1-D k-means uses quantile initialization, which makes it
// deterministic without an RNG.
func TrendsAtStage(m *perfmatrix.Matrix, model string, stage, c int) ([]Trend, error) {
	vals, finals, err := m.ValCurves(model)
	if err != nil {
		return nil, err
	}
	if c <= 0 {
		c = DefaultTrendClusters
	}
	points := make([]float64, len(vals))
	for i, curve := range vals {
		if stage >= len(curve) {
			return nil, fmt.Errorf("selection: stage %d outside %d-epoch offline curve for %s", stage, len(curve), model)
		}
		points[i] = curve[stage]
	}
	assign := kmeans1D(points, c)

	k := 0
	for _, a := range assign {
		if a+1 > k {
			k = a + 1
		}
	}
	trends := make([]Trend, 0, k)
	for g := 0; g < k; g++ {
		var t Trend
		for i, a := range assign {
			if a != g {
				continue
			}
			t.Members = append(t.Members, i)
			t.Val += points[i]
			t.Test += finals[i]
		}
		if len(t.Members) == 0 {
			continue
		}
		t.Val /= float64(len(t.Members))
		t.Test /= float64(len(t.Members))
		trends = append(trends, t)
	}
	sort.Slice(trends, func(i, j int) bool { return trends[i].Val < trends[j].Val })
	return trends, nil
}

// MatchTrend returns the index of the trend whose stage validation mean is
// closest to val (Eq. 5); ties take the lower-val trend.
func MatchTrend(trends []Trend, val float64) int {
	if len(trends) == 0 {
		return -1
	}
	best, bestD := 0, math.Abs(trends[0].Val-val)
	for i := 1; i < len(trends); i++ {
		if d := math.Abs(trends[i].Val - val); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// PredictFinal matches val against the model's stage trends and returns
// the matched trend's mean final test accuracy (Eq. 6).
func PredictFinal(m *perfmatrix.Matrix, model string, stage int, val float64, c int) (float64, error) {
	trends, err := TrendsAtStage(m, model, stage, c)
	if err != nil {
		return 0, err
	}
	idx := MatchTrend(trends, val)
	if idx < 0 {
		return 0, fmt.Errorf("selection: no trends for model %s", model)
	}
	return trends[idx].Test, nil
}

// kmeans1D clusters scalar points into at most k groups via Lloyd's
// algorithm with quantile-initialized centers. Returned labels are
// ordered by center value (label 0 = lowest).
func kmeans1D(points []float64, k int) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	sorted := numeric.Clone(points)
	sort.Float64s(sorted)
	centers := make([]float64, k)
	for i := range centers {
		q := (float64(i) + 0.5) / float64(k)
		centers[i] = sorted[int(q*float64(n-1)+0.5)]
	}

	assign := make([]int, n)
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Abs(p-centers[0])
			for c := 1; c < k; c++ {
				if d := math.Abs(p - centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, p := range points {
			sums[assign[i]] += p
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	// Re-label clusters in ascending center order and compact empties.
	type cc struct {
		center float64
		old    int
	}
	var used []cc
	seen := make(map[int]bool)
	for _, a := range assign {
		if !seen[a] {
			seen[a] = true
			used = append(used, cc{centers[a], a})
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i].center < used[j].center })
	remap := make(map[int]int, len(used))
	for newID, u := range used {
		remap[u.old] = newID
	}
	for i, a := range assign {
		assign[i] = remap[a]
	}
	return assign
}
