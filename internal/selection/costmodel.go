package selection

// Cost model for selection strategies, after the Shift system the paper
// cites in §VI ("builds cost model to predict the training cost of
// successive halving and fine-tuning directly"). All predictions are in
// training epochs and depend only on the pool size and epoch budget, so a
// planner can choose a strategy before spending any compute.

// PredictBruteForceEpochs returns the exact cost of fine-tuning every
// model to the full budget.
func PredictBruteForceEpochs(pool, budget int) int {
	if pool <= 0 || budget <= 0 {
		return 0
	}
	return pool * budget
}

// PredictSHEpochs returns the exact cost of successive halving at
// validation interval s (0 means 1): the pool halves after every stage
// until one model remains, which trains out the rest of the budget.
func PredictSHEpochs(pool, budget, s int) int {
	if pool <= 0 || budget <= 0 {
		return 0
	}
	if s <= 0 {
		s = 1
	}
	total := 0
	remaining := budget
	n := pool
	for remaining > 0 {
		stage := s
		if stage > remaining {
			stage = remaining
		}
		total += n * stage
		remaining -= stage
		if n > 1 {
			n = n / 2
			if n < 1 {
				n = 1
			}
		}
	}
	return total
}

// PredictFSEpochsRange bounds the cost of fine-selection: the lower bound
// assumes the trend filter cuts to one model after the first stage; the
// upper bound is plain successive halving (the filter never fires).
func PredictFSEpochsRange(pool, budget, s int) (lo, hi int) {
	if pool <= 0 || budget <= 0 {
		return 0, 0
	}
	if s <= 0 {
		s = 1
	}
	first := s
	if first > budget {
		first = budget
	}
	lo = pool*first + (budget - first)
	hi = PredictSHEpochs(pool, budget, s)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// Strategy identifies a selection procedure for the planner.
type Strategy string

// The planner's strategy space.
const (
	StrategyBruteForce        Strategy = "brute-force"
	StrategySuccessiveHalving Strategy = "successive-halving"
	StrategyFineSelection     Strategy = "fine-selection"
)

// CheapestStrategy returns the strategy with the lowest predicted cost
// for the pool. Fine-selection is costed at the midpoint of its range and
// requires an offline matrix (hasMatrix); without one it is unavailable
// and the choice falls to SH vs BF.
func CheapestStrategy(pool, budget, s int, hasMatrix bool) (Strategy, int) {
	bf := PredictBruteForceEpochs(pool, budget)
	sh := PredictSHEpochs(pool, budget, s)
	best, cost := StrategyBruteForce, bf
	if sh < cost {
		best, cost = StrategySuccessiveHalving, sh
	}
	if hasMatrix {
		lo, hi := PredictFSEpochsRange(pool, budget, s)
		mid := (lo + hi) / 2
		if mid < cost {
			best, cost = StrategyFineSelection, mid
		}
	}
	return best, cost
}
