package selection

import (
	"math"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

func trendFixture(t *testing.T) *perfmatrix.Matrix {
	t.Helper()
	w := synth.NewWorld(42)
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, modelhub.NLPSpecs()[:3])
	if err != nil {
		t.Fatal(err)
	}
	var benches []*datahub.Dataset
	for _, spec := range datahub.NLPBenchmarks()[:8] {
		d, err := datahub.Generate(w, spec, datahub.Sizes{Train: 60, Val: 40, Test: 60})
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, d)
	}
	m, err := perfmatrix.Build(repo, benches, trainer.Default(datahub.TaskNLP), w.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrendsAtStage(t *testing.T) {
	m := trendFixture(t)
	trends, err := TrendsAtStage(m, m.Models[0], 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) == 0 || len(trends) > 3 {
		t.Fatalf("trend count %d", len(trends))
	}
	total := 0
	for i, tr := range trends {
		total += len(tr.Members)
		if i > 0 && trends[i-1].Val > tr.Val {
			t.Fatal("trends not sorted by val")
		}
		if tr.Val < 0 || tr.Val > 1 || tr.Test < 0 || tr.Test > 1 {
			t.Fatalf("trend stats out of range: %+v", tr)
		}
	}
	if total != len(m.Datasets) {
		t.Fatalf("trends cover %d datasets, want %d", total, len(m.Datasets))
	}
}

func TestTrendsStageOutOfRange(t *testing.T) {
	m := trendFixture(t)
	if _, err := TrendsAtStage(m, m.Models[0], 99, 3); err == nil {
		t.Fatal("stage out of range accepted")
	}
	if _, err := TrendsAtStage(m, "missing", 0, 3); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestMatchTrend(t *testing.T) {
	trends := []Trend{{Val: 0.3, Test: 0.4}, {Val: 0.6, Test: 0.7}, {Val: 0.9, Test: 0.95}}
	if got := MatchTrend(trends, 0.58); got != 1 {
		t.Fatalf("matched %d", got)
	}
	if got := MatchTrend(trends, 0.0); got != 0 {
		t.Fatalf("matched %d", got)
	}
	if got := MatchTrend(trends, 1.0); got != 2 {
		t.Fatalf("matched %d", got)
	}
	if MatchTrend(nil, 0.5) != -1 {
		t.Fatal("empty trends should return -1")
	}
}

func TestPredictFinalInRange(t *testing.T) {
	m := trendFixture(t)
	p, err := PredictFinal(m, m.Models[0], 0, 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 {
		t.Fatalf("prediction %v", p)
	}
}

func TestKMeans1DOrderedLabels(t *testing.T) {
	points := []float64{0.9, 0.1, 0.5, 0.11, 0.91, 0.52}
	assign := kmeans1D(points, 3)
	// labels must be ordered by value: low values get label 0
	for i, p := range points {
		for j, q := range points {
			if p < q && assign[i] > assign[j] {
				t.Fatalf("label order violated: %v->%d, %v->%d", p, assign[i], q, assign[j])
			}
		}
	}
	// natural groups must be recovered
	if assign[1] != assign[3] || assign[2] != assign[5] || assign[0] != assign[4] {
		t.Fatalf("1-D clusters wrong: %v", assign)
	}
}

func TestKMeans1DEdgeCases(t *testing.T) {
	if got := kmeans1D(nil, 3); got != nil {
		t.Fatal("nil input")
	}
	got := kmeans1D([]float64{0.5}, 4)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single point %v", got)
	}
	// identical points collapse into one cluster
	same := kmeans1D([]float64{0.5, 0.5, 0.5}, 2)
	for _, a := range same {
		if a != same[0] {
			t.Fatal("identical points split across clusters")
		}
	}
}

func TestKMeans1DDeterministic(t *testing.T) {
	points := []float64{0.2, 0.8, 0.5, 0.21, 0.79}
	a := kmeans1D(points, 2)
	b := kmeans1D(points, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("kmeans1D not deterministic")
		}
	}
}

func TestTrendPredictionTracksReality(t *testing.T) {
	// On the offline matrix itself, matching a benchmark's first-epoch
	// validation should predict its final test within a loose tolerance
	// (the paper's Fig. 6 claim).
	m := trendFixture(t)
	model := m.Models[0]
	vals, finals, err := m.ValCurves(model)
	if err != nil {
		t.Fatal(err)
	}
	var worse int
	for i := range vals {
		pred, err := PredictFinal(m, model, 0, vals[i][0], DefaultTrendClusters)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pred-finals[i]) > 0.25 {
			worse++
		}
	}
	if worse > len(vals)/2 {
		t.Fatalf("trend prediction off by >0.25 for %d/%d benchmarks", worse, len(vals))
	}
}
