// Package benchkit is the shared harness of the perf-regression smoke:
// it measures the training hot paths with testing.Benchmark so the same
// workload definition serves both `go test -bench` and cmd/benchsmoke's
// baseline gate. All workloads run at the bench-suite split sizes
// (60/40/48) so a smoke finishes in seconds.
package benchkit

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// Sizes are the split sizes every smoke workload runs at.
var Sizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

// Measurement is one benchmarked workload, flattened for JSON.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func fixture() (*modelhub.Model, *datahub.Dataset, trainer.Hyperparams, error) {
	w := synth.NewWorld(7)
	cat, err := datahub.NewTaskCatalog(w, datahub.TaskNLP, Sizes)
	if err != nil {
		return nil, nil, trainer.Hyperparams{}, err
	}
	repo, err := modelhub.NewTaskRepository(w, datahub.TaskNLP)
	if err != nil {
		return nil, nil, trainer.Hyperparams{}, err
	}
	return repo.Models()[0], cat.Targets()[0], trainer.Default(datahub.TaskNLP), nil
}

// TrainEpoch benchmarks the steady-state epoch (SGD pass + batched
// val/test eval) on a warm run. AllocsPerOp must be 0 — the -benchmem
// assertion of the smoke.
func TrainEpoch() (Measurement, error) {
	m, d, hp, err := fixture()
	if err != nil {
		return Measurement{}, err
	}
	run, err := trainer.NewRun(m, d, hp, 7, "benchkit")
	if err != nil {
		return Measurement{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run.TrainEpoch()
		}
	})
	return flatten(res), nil
}

// CandidateRun benchmarks what one fine-selection candidate costs end to
// end — NewRun against the warm feature cache plus the full epoch budget
// — and reports it per epoch (the paper's cost unit).
func CandidateRun() (Measurement, error) {
	m, d, hp, err := fixture()
	if err != nil {
		return Measurement{}, err
	}
	if _, err := trainer.NewRun(m, d, hp, 7, "benchkit"); err != nil { // prime cache
		return Measurement{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run, err := trainer.NewRun(m, d, hp, 7, "benchkit")
			if err != nil {
				b.Fatal(err)
			}
			for e := 0; e < hp.Epochs; e++ {
				run.TrainEpoch()
			}
		}
	})
	out := flatten(res)
	out.NsPerOp /= float64(hp.Epochs)
	return out, nil
}

// Calibration benchmarks a fixed latency-bound kernel (a serial dot
// product, the same dependency chain the training kernels are bound by).
// The smoke scales the baseline's thresholds by the calibration ratio so
// the 20%% gate compares machines, not wall clocks.
func Calibration() Measurement {
	rng := numeric.NewRNG(7)
	a, b := rng.NormVec(4096), rng.NormVec(4096)
	sink := 0.0
	res := testing.Benchmark(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			sink += numeric.Dot(a, b)
		}
	})
	if sink == -1 {
		fmt.Print("") // keep the accumulator observable
	}
	return flatten(res)
}

func flatten(r testing.BenchmarkResult) Measurement {
	return Measurement{NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
}

// MulFrameGFLOPS benchmarks the batched GEMM kernel on a frame large
// enough to clear the row-block parallel threshold (2048×96 against a
// 96×96 matrix ≈ 38M multiply-adds) and returns sustained GFLOP/s
// (2 flops per multiply-add). On a multi-core box the auto dispatcher
// engages the parallel path; the output is bit-identical regardless.
func MulFrameGFLOPS() float64 {
	const n, rows, cols = 2048, 96, 96
	rng := numeric.NewRNG(7)
	m := numeric.RandomMatrix(rng, rows, cols, 1.0)
	x := numeric.NewFrame(n, cols)
	for i := range x.Data {
		x.Data[i] = rng.Norm()
	}
	bias := rng.NormVec(rows)
	out := numeric.NewFrame(n, rows)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulFrameBias(x, bias, out)
		}
	})
	flops := 2 * float64(n) * float64(rows) * float64(cols)
	return flops / float64(res.NsPerOp())
}

// DefaultPrefilterK is the pre-filter width the smoke and the service
// bench measure agreement at: small enough that the filter is doing real
// pruning, large enough that the epoch strategy still has a field to run.
const DefaultPrefilterK = 4

// LSQSelect benchmarks one warm zero-epoch lsq selection end to end
// (closed-form ridge heads over the whole repository, feature cache hot)
// at the smoke world. This is the latency-critical serving number the
// strategy exists for, so the smoke gates it like the training kernels.
func LSQSelect() (Measurement, error) {
	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 7, Sizes: Sizes})
	if err != nil {
		return Measurement{}, err
	}
	return LSQSelectFW(fw)
}

// LSQSelectFW is LSQSelect on a caller-built framework (the service bench
// reuses its warm world instead of building another).
func LSQSelectFW(fw *core.Framework) (Measurement, error) {
	ctx := context.Background()
	target := fw.Catalog.Targets()[0]
	// One warmup primes the shared feature cache the way any earlier
	// request on this world would have.
	if _, err := fw.SelectWith(ctx, target, core.SelectOptions{Strategy: core.StrategyLSQ}); err != nil {
		return Measurement{}, err
	}
	// Best-of-3: a whole selection is a long op (milliseconds), so one
	// testing.Benchmark pass sees few iterations and scheduler noise
	// lands straight on the mean; the min is the stable envelope number.
	var best Measurement
	for rep := 0; rep < 3; rep++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fw.SelectWith(ctx, target, core.SelectOptions{Strategy: core.StrategyLSQ}); err != nil {
					b.Fatal(err)
				}
			}
		})
		if m := flatten(res); rep == 0 || m.NsPerOp < best.NsPerOp {
			best = m
		}
	}
	return best, nil
}

// PrefilterAgreement measures how often the lsq pre-filter preserves the
// two-phase winner: the fraction of the smoke world's targets whose
// prefiltered (top-DefaultPrefilterK) two-phase selection picks the same
// model as the unfiltered one. Deterministic at fixed seed and sizes, so
// the smoke gates it as an absolute floor, not a scaled ratio.
func PrefilterAgreement() (float64, error) {
	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 7, Sizes: Sizes})
	if err != nil {
		return 0, err
	}
	return PrefilterAgreementFW(fw, DefaultPrefilterK)
}

// PrefilterAgreementFW is PrefilterAgreement on a caller-built framework
// at a caller-chosen pre-filter width.
func PrefilterAgreementFW(fw *core.Framework, k int) (float64, error) {
	ctx := context.Background()
	targets := fw.Catalog.Targets()
	if len(targets) == 0 {
		return 0, fmt.Errorf("benchkit: catalog has no targets")
	}
	agree := 0
	for _, d := range targets {
		plain, err := fw.SelectWith(ctx, d, core.SelectOptions{Strategy: core.StrategyTwoPhase})
		if err != nil {
			return 0, err
		}
		filtered, err := fw.SelectWith(ctx, d, core.SelectOptions{Strategy: core.StrategyTwoPhase, PrefilterTopK: k})
		if err != nil {
			return 0, err
		}
		if plain.Outcome.Winner == filtered.Outcome.Winner {
			agree++
		}
	}
	return float64(agree) / float64(len(targets)), nil
}

// BuildMeasurement is the serial-vs-parallel offline build comparison.
type BuildMeasurement struct {
	SerialMillis   float64 `json:"build_ms_serial"`
	ParallelMillis float64 `json:"build_ms_parallel"`
	// Speedup is serial/parallel wall clock. ~1.0 on a single-core box;
	// CI runs the smoke with GOMAXPROCS=2 and asserts > 1.0.
	Speedup float64 `json:"build_speedup"`
}

// BuildPair times the full offline pipeline (world synthesis, perf
// matrix, clustering) at the smoke sizes with BuildWorkers=1 and with
// the full CPU budget, best-of-2 each, and verifies the two frameworks
// produced bit-identical performance matrices — the determinism contract
// the parallel build must keep. Serial runs first so the parallel pass
// cannot borrow its page-cache warmup advantage.
func BuildPair() (BuildMeasurement, error) {
	return BuildPairAt(core.Options{Task: datahub.TaskNLP, Seed: 7, Sizes: Sizes})
}

// BuildPairAt is BuildPair at caller-chosen build options; BuildWorkers
// in opts is overridden (that is the axis being measured).
func BuildPairAt(opts core.Options) (BuildMeasurement, error) {
	build := func(workers int) (*core.Framework, float64, error) {
		opts := opts
		opts.BuildWorkers = workers
		best := math.Inf(1)
		var fw *core.Framework
		for i := 0; i < 2; i++ {
			start := time.Now()
			f, err := core.Build(opts)
			if err != nil {
				return nil, 0, err
			}
			if ms := float64(time.Since(start).Microseconds()) / 1000; ms < best {
				best = ms
			}
			fw = f
		}
		return fw, best, nil
	}
	serialFW, serialMS, err := build(1)
	if err != nil {
		return BuildMeasurement{}, err
	}
	parallelFW, parallelMS, err := build(0)
	if err != nil {
		return BuildMeasurement{}, err
	}
	if err := matricesBitIdentical(serialFW, parallelFW); err != nil {
		return BuildMeasurement{}, err
	}
	out := BuildMeasurement{SerialMillis: serialMS, ParallelMillis: parallelMS}
	if parallelMS > 0 {
		out.Speedup = serialMS / parallelMS
	}
	return out, nil
}

// matricesBitIdentical compares every curve of two frameworks' perf
// matrices bit for bit; any drift means the parallel build broke the
// determinism rule and must fail the smoke, not just slow it down.
func matricesBitIdentical(a, b *core.Framework) error {
	am, bm := a.Matrix, b.Matrix
	if len(am.Entries) != len(bm.Entries) {
		return fmt.Errorf("benchkit: parallel build has %d matrix entries, serial %d", len(bm.Entries), len(am.Entries))
	}
	for k, ae := range am.Entries {
		be, ok := bm.Entries[k]
		if !ok {
			return fmt.Errorf("benchkit: parallel build missing matrix entry %q/%q", ae.Model, ae.Dataset)
		}
		if len(ae.Val) != len(be.Val) || len(ae.Test) != len(be.Test) {
			return fmt.Errorf("benchkit: curve lengths differ for %q/%q", ae.Model, ae.Dataset)
		}
		for i := range ae.Val {
			if math.Float64bits(ae.Val[i]) != math.Float64bits(be.Val[i]) {
				return fmt.Errorf("benchkit: val curve diverges for %q/%q at epoch %d", ae.Model, ae.Dataset, i)
			}
		}
		for i := range ae.Test {
			if math.Float64bits(ae.Test[i]) != math.Float64bits(be.Test[i]) {
				return fmt.Errorf("benchkit: test curve diverges for %q/%q at epoch %d", ae.Model, ae.Dataset, i)
			}
		}
	}
	return nil
}
