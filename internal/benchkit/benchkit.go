// Package benchkit is the shared harness of the perf-regression smoke:
// it measures the training hot paths with testing.Benchmark so the same
// workload definition serves both `go test -bench` and cmd/benchsmoke's
// baseline gate. All workloads run at the bench-suite split sizes
// (60/40/48) so a smoke finishes in seconds.
package benchkit

import (
	"fmt"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// Sizes are the split sizes every smoke workload runs at.
var Sizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

// Measurement is one benchmarked workload, flattened for JSON.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func fixture() (*modelhub.Model, *datahub.Dataset, trainer.Hyperparams, error) {
	w := synth.NewWorld(7)
	cat, err := datahub.NewTaskCatalog(w, datahub.TaskNLP, Sizes)
	if err != nil {
		return nil, nil, trainer.Hyperparams{}, err
	}
	repo, err := modelhub.NewTaskRepository(w, datahub.TaskNLP)
	if err != nil {
		return nil, nil, trainer.Hyperparams{}, err
	}
	return repo.Models()[0], cat.Targets()[0], trainer.Default(datahub.TaskNLP), nil
}

// TrainEpoch benchmarks the steady-state epoch (SGD pass + batched
// val/test eval) on a warm run. AllocsPerOp must be 0 — the -benchmem
// assertion of the smoke.
func TrainEpoch() (Measurement, error) {
	m, d, hp, err := fixture()
	if err != nil {
		return Measurement{}, err
	}
	run, err := trainer.NewRun(m, d, hp, 7, "benchkit")
	if err != nil {
		return Measurement{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run.TrainEpoch()
		}
	})
	return flatten(res), nil
}

// CandidateRun benchmarks what one fine-selection candidate costs end to
// end — NewRun against the warm feature cache plus the full epoch budget
// — and reports it per epoch (the paper's cost unit).
func CandidateRun() (Measurement, error) {
	m, d, hp, err := fixture()
	if err != nil {
		return Measurement{}, err
	}
	if _, err := trainer.NewRun(m, d, hp, 7, "benchkit"); err != nil { // prime cache
		return Measurement{}, err
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run, err := trainer.NewRun(m, d, hp, 7, "benchkit")
			if err != nil {
				b.Fatal(err)
			}
			for e := 0; e < hp.Epochs; e++ {
				run.TrainEpoch()
			}
		}
	})
	out := flatten(res)
	out.NsPerOp /= float64(hp.Epochs)
	return out, nil
}

// Calibration benchmarks a fixed latency-bound kernel (a serial dot
// product, the same dependency chain the training kernels are bound by).
// The smoke scales the baseline's thresholds by the calibration ratio so
// the 20%% gate compares machines, not wall clocks.
func Calibration() Measurement {
	rng := numeric.NewRNG(7)
	a, b := rng.NormVec(4096), rng.NormVec(4096)
	sink := 0.0
	res := testing.Benchmark(func(tb *testing.B) {
		for i := 0; i < tb.N; i++ {
			sink += numeric.Dot(a, b)
		}
	})
	if sink == -1 {
		fmt.Print("") // keep the accumulator observable
	}
	return flatten(res)
}

func flatten(r testing.BenchmarkResult) Measurement {
	return Measurement{NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp()}
}
