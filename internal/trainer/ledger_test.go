package trainer

import (
	"sync"
	"testing"
)

func TestSharedLedgerConcurrent(t *testing.T) {
	var s SharedLedger
	const goroutines = 16
	const perG = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.ChargeEpochs(1)
				s.ChargeInference(2)
				s.Add(Ledger{trainEpochs: 1, inferenceHalves: 0})
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if got, want := snap.TrainEpochs(), 2*goroutines*perG; got != want {
		t.Fatalf("train epochs %d, want %d", got, want)
	}
	wantTotal := float64(2*goroutines*perG) + 0.5*float64(2*goroutines*perG)
	if got := s.Total(); got != wantTotal {
		t.Fatalf("total %v, want %v", got, wantTotal)
	}
}

func TestSharedLedgerSnapshotIsCopy(t *testing.T) {
	var s SharedLedger
	s.ChargeEpochs(3)
	snap := s.Snapshot()
	snap.ChargeEpochs(10)
	if got := s.Total(); got != 3 {
		t.Fatalf("mutating a snapshot changed the shared ledger: %v", got)
	}
}
