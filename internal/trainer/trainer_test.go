package trainer

import (
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
	"twophase/internal/synth"
)

func fixture(t *testing.T) (*synth.World, *modelhub.Model, *datahub.Dataset) {
	t.Helper()
	w := synth.NewWorld(42)
	m, err := modelhub.Materialize(w, modelhub.Spec{
		Name: "trainer/model", Task: datahub.TaskNLP, Arch: "bert", Params: 110,
		Domains:    map[string]float64{datahub.DomainNLI: 1},
		Capability: 0.7, SourceClasses: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := datahub.Generate(w, datahub.Spec{
		Name: "trainer/ds", Task: datahub.TaskNLP,
		Domains: map[string]float64{datahub.DomainNLI: 1},
		Classes: 3, Separability: 2, Noise: 1.6,
	}, datahub.Sizes{Train: 200, Val: 100, Test: 150})
	if err != nil {
		t.Fatal(err)
	}
	return w, m, d
}

func TestDefaultHyperparams(t *testing.T) {
	if hp := Default(datahub.TaskNLP); hp.Epochs != 5 {
		t.Fatalf("NLP epochs %d, paper trains 5", hp.Epochs)
	}
	if hp := Default(datahub.TaskCV); hp.Epochs != 4 {
		t.Fatalf("CV epochs %d, paper trains 4", hp.Epochs)
	}
	if lo, hi := LowLR(datahub.TaskNLP).LearningRate, Default(datahub.TaskNLP).LearningRate; lo >= hi {
		t.Fatalf("LowLR %v not below default %v", lo, hi)
	}
}

func TestNewRunValidation(t *testing.T) {
	_, m, d := fixture(t)
	if _, err := NewRun(m, d, Hyperparams{}, 42, ""); err == nil {
		t.Fatal("zero hyperparams accepted")
	}
	w := synth.NewWorld(42)
	cvModel, err := modelhub.Materialize(w, modelhub.Spec{
		Name: "trainer/cv", Task: datahub.TaskCV, Arch: "vit", Params: 86,
		Capability: 0.5, SourceClasses: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRun(cvModel, d, Default(datahub.TaskCV), 42, ""); err == nil {
		t.Fatal("task mismatch accepted")
	}
}

func TestTrainingLearns(t *testing.T) {
	w, m, d := fixture(t)
	run, err := NewRun(m, d, Default(datahub.TaskNLP), w.Seed, "learn")
	if err != nil {
		t.Fatal(err)
	}
	before := run.ValAccuracy()
	for e := 0; e < 5; e++ {
		run.TrainEpoch()
	}
	after := run.Curve().FinalVal()
	maj := datahub.MajorityBaseline(d.Val)
	if after <= maj {
		t.Fatalf("trained val %v not above majority %v", after, maj)
	}
	if after <= before {
		t.Fatalf("val did not improve: %v -> %v", before, after)
	}
}

func TestCurveShape(t *testing.T) {
	w, m, d := fixture(t)
	curve, err := FineTune(m, d, Default(datahub.TaskNLP), w.Seed, "curve")
	if err != nil {
		t.Fatal(err)
	}
	if curve.Epochs() != 5 || len(curve.Test) != 5 {
		t.Fatalf("curve lengths %d/%d", len(curve.Val), len(curve.Test))
	}
	for _, v := range append(curve.Val, curve.Test...) {
		if v < 0 || v > 1 {
			t.Fatalf("accuracy %v outside [0,1]", v)
		}
	}
	if curve.FinalVal() != curve.Val[4] || curve.FinalTest() != curve.Test[4] {
		t.Fatal("Final accessors disagree with slices")
	}
}

func TestEmptyCurveAccessors(t *testing.T) {
	var c Curve
	if c.FinalVal() != 0 || c.FinalTest() != 0 || c.Epochs() != 0 {
		t.Fatal("empty curve accessors should be 0")
	}
}

func TestFineTuneDeterministic(t *testing.T) {
	w, m, d := fixture(t)
	a, err := FineTune(m, d, Default(datahub.TaskNLP), w.Seed, "det")
	if err != nil {
		t.Fatal(err)
	}
	b, err := FineTune(m, d, Default(datahub.TaskNLP), w.Seed, "det")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.Test[i] != b.Test[i] {
			t.Fatal("identical runs diverged")
		}
	}
}

func TestSaltSeparatesRuns(t *testing.T) {
	w, m, d := fixture(t)
	a, err := FineTune(m, d, Default(datahub.TaskNLP), w.Seed, "salt-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := FineTune(m, d, Default(datahub.TaskNLP), w.Seed, "salt-b")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct salts produced identical curves")
	}
}

func TestCurveCopyIsIndependent(t *testing.T) {
	w, m, d := fixture(t)
	run, err := NewRun(m, d, Default(datahub.TaskNLP), w.Seed, "copy")
	if err != nil {
		t.Fatal(err)
	}
	run.TrainEpoch()
	c := run.Curve()
	c.Val[0] = -99
	if run.Curve().Val[0] == -99 {
		t.Fatal("Curve() exposes internal slice")
	}
}

func TestStagedTrainingMatchesFineTune(t *testing.T) {
	w, m, d := fixture(t)
	hp := Default(datahub.TaskNLP)
	full, err := FineTune(m, d, hp, w.Seed, "staged")
	if err != nil {
		t.Fatal(err)
	}
	run, err := NewRun(m, d, hp, w.Seed, "staged")
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < hp.Epochs; e++ {
		run.TrainEpoch()
	}
	staged := run.Curve()
	for i := range full.Val {
		if full.Val[i] != staged.Val[i] {
			t.Fatal("staged training diverges from FineTune")
		}
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.ChargeEpochs(10)
	l.ChargeInference(4)
	if l.TrainEpochs() != 10 {
		t.Fatalf("train epochs %d", l.TrainEpochs())
	}
	if l.Total() != 12 {
		t.Fatalf("total %v (10 + 4*0.5)", l.Total())
	}
	var other Ledger
	other.ChargeEpochs(5)
	l.Add(other)
	if l.Total() != 17 {
		t.Fatalf("after Add total %v", l.Total())
	}
	if l.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestLedgerPanicsOnNegative(t *testing.T) {
	var l Ledger
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	l.ChargeEpochs(-1)
}

func TestProbsShapeAndSum(t *testing.T) {
	w, m, d := fixture(t)
	run, err := NewRun(m, d, Default(datahub.TaskNLP), w.Seed, "probs")
	if err != nil {
		t.Fatal(err)
	}
	run.TrainEpoch()
	for _, probs := range []*numeric.Frame{run.ValProbs(), run.TestProbs()} {
		if probs.D != d.Classes {
			t.Fatalf("prob width %d", probs.D)
		}
		for i := 0; i < probs.N; i++ {
			var sum float64
			for _, v := range probs.Row(i) {
				if v < 0 {
					t.Fatalf("negative probability %v", v)
				}
				sum += v
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("probabilities sum to %v", sum)
			}
		}
	}
	if run.ValProbs().N != d.Val.Len() || run.TestProbs().N != d.Test.Len() {
		t.Fatal("prob counts do not match splits")
	}
}

func TestProbsConsistentWithAccuracy(t *testing.T) {
	w, m, d := fixture(t)
	run, err := NewRun(m, d, Default(datahub.TaskNLP), w.Seed, "probs-acc")
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		run.TrainEpoch()
	}
	probs := run.TestProbs()
	correct := 0
	for i := 0; i < probs.N; i++ {
		p := probs.Row(i)
		best, bestV := 0, p[0]
		for c, v := range p {
			if v > bestV {
				best, bestV = c, v
			}
		}
		if best == d.Test.Y[i] {
			correct++
		}
	}
	want := run.TestAccuracy()
	got := float64(correct) / float64(probs.N)
	if got != want {
		t.Fatalf("argmax accuracy %v != TestAccuracy %v", got, want)
	}
}
