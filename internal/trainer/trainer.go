// Package trainer implements the fine-tuning substrate: real stochastic-
// gradient training of a softmax head ("linear probe") on a model's frozen
// features. It substitutes for the paper's full fine-tuning (DESIGN.md §2)
// while producing genuine optimization dynamics — per-epoch validation and
// test curves, convergence speed tied to feature separability, and
// sensitivity to the learning rate — which the fine-selection phase mines.
//
// Runtime accounting follows the paper: the unit of cost is one training
// epoch over the target dataset's training split.
package trainer

import (
	"fmt"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/numeric"
)

// Hyperparams controls one fine-tuning run.
type Hyperparams struct {
	// LearningRate of plain SGD on the softmax head. DefaultNLP/CV use
	// the paper's 3e-5 setting's analog; LowLR mirrors its 1e-5 ablation.
	LearningRate float64
	// BatchSize of each SGD minibatch.
	BatchSize int
	// Epochs is the full-convergence budget (5 NLP / 4 CV in the paper).
	Epochs int
	// L2 is the weight-decay coefficient.
	L2 float64
}

// Default returns the paper's training setting for a task family:
// 5 epochs for NLP, 4 for CV (§V.A), at the standard learning rate.
func Default(task string) Hyperparams {
	hp := Hyperparams{LearningRate: 0.35, BatchSize: 24, Epochs: 5, L2: 1e-4}
	if task == datahub.TaskCV {
		hp.Epochs = 4
	}
	return hp
}

// LowLR returns the appendix-A alternative setting (the 1e-5 analog of
// Fig. 8), used to check robustness to hyperparameters.
func LowLR(task string) Hyperparams {
	hp := Default(task)
	hp.LearningRate = 0.12
	return hp
}

// Curve holds the per-epoch validation and test accuracy of one run.
// Curve[t] is measured after epoch t+1 of training.
type Curve struct {
	Val  []float64
	Test []float64
}

// Epochs returns the number of completed epochs.
func (c Curve) Epochs() int { return len(c.Val) }

// FinalVal returns the last validation accuracy (0 if untrained).
func (c Curve) FinalVal() float64 {
	if len(c.Val) == 0 {
		return 0
	}
	return c.Val[len(c.Val)-1]
}

// FinalTest returns the last test accuracy (0 if untrained).
func (c Curve) FinalTest() float64 {
	if len(c.Test) == 0 {
		return 0
	}
	return c.Test[len(c.Test)-1]
}

// Run is an in-progress fine-tuning of one model on one dataset. It
// supports the staged training that successive halving needs: train one
// epoch, look at validation accuracy, decide whether to continue.
type Run struct {
	Model   *modelhub.Model
	Dataset *datahub.Dataset
	HP      Hyperparams

	weights numeric.Matrix // classes x FeatureDim
	bias    []float64

	// Frozen feature frames, shared read-only with the model's
	// extraction cache — never written through.
	featTrain, featVal, featTest *numeric.Frame
	rng                          numeric.RNG
	curve                        Curve

	// scratch buffers reused across steps and epochs. All float64
	// scratch (weights, bias, logits, probs, both eval-logit frames and
	// the curve) is carved from one backing slab — see NewRun.
	logits, probs        []float64
	valLogits, tstLogits numeric.Frame // per-split eval logits
	perm                 []int         // epoch shuffle order
}

// NewRun extracts the frozen features once and initializes a fresh head.
// All stochasticity (head init, batch shuffles) derives from the world-
// style triple (seed, model name, dataset name) plus the salt, so distinct
// hyperparameter settings can request distinct streams.
func NewRun(m *modelhub.Model, d *datahub.Dataset, hp Hyperparams, seed uint64, salt string) (*Run, error) {
	if hp.Epochs <= 0 || hp.BatchSize <= 0 || hp.LearningRate <= 0 {
		return nil, fmt.Errorf("trainer: invalid hyperparams %+v", hp)
	}
	if m.Task != d.Task {
		return nil, fmt.Errorf("trainer: model %q task %q does not match dataset %q task %q", m.Name, m.Task, d.Name, d.Task)
	}
	classes := d.Classes
	valN, tstN := d.Val.Len(), d.Test.Len()
	// Every float64 buffer the run owns comes out of one backing slab —
	// weights, bias, per-example logit/prob scratch, both eval-logit
	// frames and the accuracy curve (capacity for the full epoch budget,
	// so in-budget appends never reallocate). One allocation instead of
	// eight keeps a candidate run at a handful of allocs total; see
	// BenchmarkCandidateRun. Each carve is capacity-limited so an
	// overflowing append can never silently bleed into its neighbor.
	slab := make([]float64, classes*(modelhub.FeatureDim+3+valN+tstN)+2*hp.Epochs)
	carve := func(n int) []float64 {
		s := slab[:n:n]
		slab = slab[n:]
		return s
	}
	r := &Run{
		Model:     m,
		Dataset:   d,
		HP:        hp,
		weights:   numeric.Matrix{Rows: classes, Cols: modelhub.FeatureDim, Data: carve(classes * modelhub.FeatureDim)},
		bias:      carve(classes),
		rng:       numeric.NamedRNG(seed, "finetune", m.Name, d.Name, salt),
		logits:    carve(classes),
		probs:     carve(classes),
		valLogits: numeric.Frame{N: valN, D: classes, Data: carve(valN * classes)},
		tstLogits: numeric.Frame{N: tstN, D: classes, Data: carve(tstN * classes)},
		perm:      make([]int, d.Train.Len()),
	}
	r.curve.Val = carve(hp.Epochs)[:0]
	r.curve.Test = carve(hp.Epochs)[:0]
	for i := range r.weights.Data {
		r.weights.Data[i] = r.rng.Norm() * 0.01
	}
	// Frozen features come from the model's shared extraction cache:
	// every run over the same split reuses one contiguous frame.
	r.featTrain = m.FeatureFrame(d.Train.X)
	r.featVal = m.FeatureFrame(d.Val.X)
	r.featTest = m.FeatureFrame(d.Test.X)
	return r, nil
}

// Epoch returns the number of completed training epochs.
func (r *Run) Epoch() int { return r.curve.Epochs() }

// Curve returns a copy of the accuracy curve so far.
func (r *Run) Curve() Curve {
	return Curve{Val: numeric.Clone(r.curve.Val), Test: numeric.Clone(r.curve.Test)}
}

// TrainEpoch performs one SGD pass over the training split, then records
// and returns the validation accuracy. Test accuracy is recorded alongside
// (the paper plots both), but selection algorithms must only consult
// validation — tests enforce this separation.
func (r *Run) TrainEpoch() float64 {
	n := r.featTrain.N
	order := r.rng.PermInto(r.perm)
	for start := 0; start < n; start += r.HP.BatchSize {
		end := start + r.HP.BatchSize
		if end > n {
			end = n
		}
		r.stepBatch(order[start:end])
	}
	val := r.evaluate(r.featVal, &r.valLogits, r.Dataset.Val.Y)
	test := r.evaluate(r.featTest, &r.tstLogits, r.Dataset.Test.Y)
	r.curve.Val = append(r.curve.Val, val)
	r.curve.Test = append(r.curve.Test, test)
	return val
}

// stepBatch applies one cross-entropy SGD update over the given examples.
// SGD is inherently sequential — the weights an example sees depend on
// every example before it — so this stays a per-example loop; the wins
// come from the contiguous feature frame and the reused scratch buffers.
func (r *Run) stepBatch(idx []int) {
	lr := r.HP.LearningRate / float64(len(idx))
	for _, i := range idx {
		x := r.featTrain.Row(i)
		y := r.Dataset.Train.Y[i]
		r.weights.MulVec(x, r.logits)
		for c := range r.logits {
			r.logits[c] += r.bias[c]
		}
		numeric.Softmax(r.logits, r.probs)
		for c := range r.probs {
			g := r.probs[c]
			if c == y {
				g -= 1
			}
			row := r.weights.Row(c)
			for j, xv := range x {
				row[j] -= lr * (g*xv + r.HP.L2*row[j])
			}
			r.bias[c] -= lr * g
		}
	}
}

// evaluate returns classification accuracy of the current head, computing
// all logits in one batched bias-fused kernel over the split's frame.
// logits is the split's preallocated scratch frame.
func (r *Run) evaluate(feats, logits *numeric.Frame, ys []int) float64 {
	if feats.N == 0 {
		return 0
	}
	r.weights.MulFrameBias(feats, r.bias, logits)
	correct := 0
	for i := range ys {
		if numeric.ArgMax(logits.Row(i)) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(feats.N)
}

// ValAccuracy returns the current validation accuracy without training
// (useful before the first epoch).
func (r *Run) ValAccuracy() float64 { return r.evaluate(r.featVal, &r.valLogits, r.Dataset.Val.Y) }

// ValProbs returns the current head's class-probability predictions for
// every validation example (rows sum to 1), one example per frame row.
// Used by ensemble selection. The caller owns the returned frame.
func (r *Run) ValProbs() *numeric.Frame { return r.probabilities(r.featVal) }

// TestProbs returns the current head's class-probability predictions for
// every test example. The caller owns the returned frame.
func (r *Run) TestProbs() *numeric.Frame { return r.probabilities(r.featTest) }

func (r *Run) probabilities(feats *numeric.Frame) *numeric.Frame {
	out := numeric.NewFrame(feats.N, r.Dataset.Classes)
	r.weights.MulFrameBiasSoftmax(feats, r.bias, out)
	return out
}

// TestAccuracy returns the current held-out test accuracy.
func (r *Run) TestAccuracy() float64 { return r.evaluate(r.featTest, &r.tstLogits, r.Dataset.Test.Y) }

// FineTune trains to the full epoch budget and returns the curve.
func FineTune(m *modelhub.Model, d *datahub.Dataset, hp Hyperparams, seed uint64, salt string) (Curve, error) {
	run, err := NewRun(m, d, hp, seed, salt)
	if err != nil {
		return Curve{}, err
	}
	for e := 0; e < hp.Epochs; e++ {
		run.TrainEpoch()
	}
	return run.Curve(), nil
}
