package trainer

import (
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/synth"
)

// benchWorld builds one (model, dataset) pair at the given split sizes.
func benchWorld(b *testing.B, sizes datahub.Sizes) (*modelhub.Model, *datahub.Dataset) {
	b.Helper()
	w := synth.NewWorld(7)
	cat, err := datahub.NewTaskCatalog(w, datahub.TaskNLP, sizes)
	if err != nil {
		b.Fatal(err)
	}
	repo, err := modelhub.NewTaskRepository(w, datahub.TaskNLP)
	if err != nil {
		b.Fatal(err)
	}
	return repo.Models()[0], cat.Targets()[0]
}

// BenchmarkTrainEpoch measures the steady-state cost of one training
// epoch (SGD pass + batched val/test evaluation) on a warm run. This is
// the unit the paper's cost model charges, and the hot loop every
// selection strategy spins; allocs/op must stay at zero.
func BenchmarkTrainEpoch(b *testing.B) {
	m, d := benchWorld(b, datahub.Sizes{})
	run, err := NewRun(m, d, Default(datahub.TaskNLP), 7, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run.TrainEpoch()
		// Keep the recorded curve from growing without bound (and from
		// dominating allocations): the kernel cost is per-epoch, not
		// per-history.
		if len(run.curve.Val) >= 64 {
			run.curve.Val = run.curve.Val[:0]
			run.curve.Test = run.curve.Test[:0]
		}
	}
}

// BenchmarkCandidateRun measures what one fine-selection candidate
// actually costs end to end — NewRun (head init + cached feature
// lookup) plus the full epoch budget — and reports per-epoch throughput.
// Before the shared feature cache, NewRun re-extracted every split and
// dominated this number.
func BenchmarkCandidateRun(b *testing.B) {
	m, d := benchWorld(b, datahub.Sizes{})
	hp := Default(datahub.TaskNLP)
	// Warm the shared feature cache once, as any earlier run (proxy
	// scoring, a previous strategy, a previous round) would have.
	if _, err := NewRun(m, d, hp, 7, "bench"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := NewRun(m, d, hp, 7, "bench")
		if err != nil {
			b.Fatal(err)
		}
		for e := 0; e < hp.Epochs; e++ {
			run.TrainEpoch()
		}
	}
	b.ReportMetric(float64(b.N*hp.Epochs)/b.Elapsed().Seconds(), "epochs/sec")
}
