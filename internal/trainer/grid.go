package trainer

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
)

// FineTuneGrid fine-tunes every (model, dataset) cell of the grid and
// returns the curves in row-major order: curves[mi*len(datasets)+di] is
// models[mi] trained on datasets[di]. Cells train concurrently under the
// given worker budget (<= 0 means GOMAXPROCS), but the output is fully
// order-independent:
//
//   - each cell owns an independent RNG stream (seed, model, dataset,
//     salt), so training order cannot perturb any other cell;
//   - results land in preassigned slots, never a shared map;
//   - on failure the error reported is the first in *index* order, not
//     whichever worker lost the race.
//
// This makes FineTuneGrid(workers=1) bit-identical to FineTuneGrid(
// workers=N) for every N — the property the offline-build determinism
// suites pin. Workers observe ctx between cell pickups, so a canceled
// build stops scheduling new cells and returns ctx.Err().
func FineTuneGrid(ctx context.Context, models []*modelhub.Model, datasets []*datahub.Dataset, hp Hyperparams, seed uint64, salt string, workers int) ([]Curve, error) {
	nCells := len(models) * len(datasets)
	curves := make([]Curve, nCells)
	if nCells == 0 {
		return curves, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nCells {
		workers = nCells
	}

	errs := make([]error, nCells)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= nCells {
					return
				}
				mi, di := i/len(datasets), i%len(datasets)
				curves[i], errs[i] = fineTuneCell(models[mi], datasets[di], hp, seed, salt)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return curves, nil
}

// fineTuneCell trains one grid cell, converting a panic in the training
// kernel into that cell's error: the grid workers run on bare goroutines,
// where an unrecovered panic would kill the whole process instead of
// failing the one offline build that hit it.
func fineTuneCell(m *modelhub.Model, d *datahub.Dataset, hp Hyperparams, seed uint64, salt string) (c Curve, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("trainer: fine-tune %s/%s panicked: %v\n%s", m.Name, d.Name, rec, debug.Stack())
			c, err = Curve{}, fmt.Errorf("trainer: fine-tune %s/%s panicked: %v", m.Name, d.Name, rec)
		}
	}()
	return FineTune(m, d, hp, seed, salt)
}
