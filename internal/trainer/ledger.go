package trainer

import (
	"fmt"
	"sync"
)

// Ledger accumulates the training-epoch cost of a selection procedure,
// the paper's runtime metric ("runtime is total training epoch number",
// Table V). Proxy-score inference is charged at half an epoch per scored
// model because it needs no backward pass (§V.D).
type Ledger struct {
	trainEpochs     int
	inferenceHalves int
}

// ChargeEpochs records n full training epochs.
func (l *Ledger) ChargeEpochs(n int) {
	if n < 0 {
		panic("trainer: negative epoch charge")
	}
	l.trainEpochs += n
}

// ChargeInference records proxy-score inference over n models
// (0.5 epoch each).
func (l *Ledger) ChargeInference(nModels int) {
	if nModels < 0 {
		panic("trainer: negative inference charge")
	}
	l.inferenceHalves += nModels
}

// TrainEpochs returns the pure fine-tuning cost.
func (l *Ledger) TrainEpochs() int { return l.trainEpochs }

// Total returns the combined cost in epochs, rounding the inference
// half-epochs up (matching the paper's 0.5*|MC| accounting).
func (l *Ledger) Total() float64 {
	return float64(l.trainEpochs) + 0.5*float64(l.inferenceHalves)
}

// Add merges another ledger into this one.
func (l *Ledger) Add(other Ledger) {
	l.trainEpochs += other.trainEpochs
	l.inferenceHalves += other.inferenceHalves
}

// String renders the ledger for logs.
func (l *Ledger) String() string {
	return fmt.Sprintf("%.1f epochs (%d train + %d proxy inferences)", l.Total(), l.trainEpochs, l.inferenceHalves)
}

// SharedLedger is a Ledger that many goroutines may charge concurrently —
// the serving layer's shared cost budget. The zero value is ready to use.
type SharedLedger struct {
	mu sync.Mutex
	l  Ledger
}

// ChargeEpochs records n full training epochs.
func (s *SharedLedger) ChargeEpochs(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.l.ChargeEpochs(n)
}

// ChargeInference records proxy-score inference over n models.
func (s *SharedLedger) ChargeInference(nModels int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.l.ChargeInference(nModels)
}

// Add merges a finished request's ledger into the shared total.
func (s *SharedLedger) Add(other Ledger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.l.Add(other)
}

// Snapshot returns a copy of the accumulated ledger.
func (s *SharedLedger) Snapshot() Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l
}

// Total returns the combined cost in epochs accumulated so far.
func (s *SharedLedger) Total() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Total()
}
