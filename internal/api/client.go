package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is the HTTP implementation of the API contract. Errors decoded
// from ErrorResponse bodies are rebuilt around the package sentinels, so
// errors.Is(err, api.ErrUnknownTarget) holds across the wire exactly as it
// does in process.
type Client struct {
	base string
	hc   *http.Client
	// attemptTimeout bounds each individual HTTP attempt, distinct from
	// the context deadline that bounds the whole request. See
	// WithAttemptTimeout.
	attemptTimeout time.Duration
}

// NewClient points a client at a server base URL (e.g.
// "http://127.0.0.1:8080"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// WithAttemptTimeout returns a copy of the client that bounds every
// individual HTTP attempt by d (0 = unbounded). The limit is distinct
// from the caller's context deadline: when an attempt times out while
// the overall request is still alive, the error is a *retryable*
// unavailability, not a cancellation — so one hung backend can't consume
// the entire deadline_ms before failover gets a turn.
func (c *Client) WithAttemptTimeout(d time.Duration) *Client {
	cp := *c
	cp.attemptTimeout = d
	return &cp
}

// Select implements API. The request is validated locally with the same
// gate the server applies, so a malformed request fails fast without a
// round trip — and fails identically to the in-process path.
func (c *Client) Select(ctx context.Context, req *SelectRequest) (*SelectResponse, error) {
	if req == nil {
		return nil, errBadRequest("nil request")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("api: marshal request: %w", err)
	}
	var resp SelectResponse
	if err := c.do(ctx, http.MethodPost, "/v1/select", bytes.NewReader(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SelectRetry is Select with bounded retries of transient refusals. It
// consults the contract's Retryable predicate — rate_limited, overloaded,
// unavailable — rather than any status-class heuristic, sleeps the
// server's Retry-After hint when one rides the refusal (a small linear
// backoff otherwise), and gives up after `attempts` tries, returning the
// last refusal. Deterministic rejections and cancellations are never
// retried. A request carrying deadline_ms also bounds the *cumulative*
// retry wait by that budget: once the next sleep would push total waiting
// past deadline_ms, the client stops retrying and returns the last
// refusal — the server would have truncated the work at that instant
// anyway, so sleeping past it can only return a stale answer late.
func (c *Client) SelectRetry(ctx context.Context, req *SelectRequest, attempts int) (*SelectResponse, error) {
	if attempts < 1 {
		attempts = 1
	}
	var budget time.Duration
	if req != nil && req.DeadlineMS > 0 {
		budget = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	var slept time.Duration
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := c.Select(ctx, req)
		if err == nil || !Retryable(err) {
			return resp, err
		}
		lastErr = err
		if i == attempts-1 {
			break
		}
		wait := RetryAfter(err)
		if wait <= 0 {
			wait = time.Duration(i+1) * 50 * time.Millisecond
		}
		if budget > 0 && slept+wait > budget {
			break
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
			slept += wait
		case <-ctx.Done():
			t.Stop()
			return nil, classify(ctx.Err())
		}
	}
	return nil, lastErr
}

// Targets implements API.
func (c *Client) Targets(ctx context.Context, task string) (*TargetsResponse, error) {
	var resp TargetsResponse
	path := "/v1/tasks/" + url.PathEscape(task) + "/targets"
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats implements API.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var resp Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// maxArtifactBytes caps how much of an artifact response body
// FetchArtifact will buffer. A misbehaving peer must not be able to
// balloon the fetching backend's memory before the codec's checksum
// verification ever sees the bytes; real artifacts at production sizes
// are tens of megabytes, so 1 GiB is generous headroom.
const maxArtifactBytes = 1 << 30

// FetchArtifact downloads one binary artifact document from the
// server's /v1/artifacts endpoint. kind is the store kind ("matrices",
// "recalls", "frames"); name is the store key (e.g. "nlp-seed42"). A
// non-empty etag (a prior fingerprint formatted "%016x") rides
// If-None-Match; a 304 returns notModified=true with nil data. Bodies
// larger than maxArtifactBytes fail the fetch so the ring can fall
// through to the next owner. The returned bytes are the verbatim codec
// document — the caller verifies the embedded checksums before trusting
// them.
func (c *Client) FetchArtifact(ctx context.Context, kind, name, etag string) (data []byte, notModified bool, err error) {
	path := "/v1/artifacts/" + url.PathEscape(kind) + "/" + url.PathEscape(name)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, false, fmt.Errorf("api: build request: %w", err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", fmt.Sprintf("%q", etag))
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return nil, false, classify(err)
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusNotModified {
		return nil, true, nil
	}
	if res.ContentLength > maxArtifactBytes {
		return nil, false, fmt.Errorf("api: artifact %s/%s: %d bytes exceeds cap %d", kind, name, res.ContentLength, maxArtifactBytes)
	}
	body, err := io.ReadAll(io.LimitReader(res.Body, maxArtifactBytes+1))
	if err != nil {
		return nil, false, fmt.Errorf("api: read artifact: %w", err)
	}
	if len(body) > maxArtifactBytes {
		return nil, false, fmt.Errorf("api: artifact %s/%s exceeds cap %d bytes", kind, name, maxArtifactBytes)
	}
	if res.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, false, errFromCode(e.Code, e.Error, time.Duration(e.RetryAfterMS)*time.Millisecond)
		}
		return nil, false, fmt.Errorf("api: GET %s: unexpected status %d: %s", path, res.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, false, nil
}

// Health checks the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.Healthz(ctx)
	return err
}

// Healthz fetches the server's health document, including its instance
// id. An unready server (503 "warming") is an error.
func (c *Client) Healthz(ctx context.Context) (*Health, error) {
	var resp Health
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// instanceCaptureKey carries the capture destination of
// WithInstanceCapture through a request context.
type instanceCaptureKey struct{}

// WithInstanceCapture makes client calls under the returned context
// record each response's X-Instance-Id header into *dst. The sharding
// gateway uses it to learn which backend served a forwarded request; dst
// must not be shared across concurrent calls.
func WithInstanceCapture(ctx context.Context, dst *string) context.Context {
	return context.WithValue(ctx, instanceCaptureKey{}, dst)
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out interface{}) error {
	reqCtx := ctx
	if c.attemptTimeout > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(ctx, c.attemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(reqCtx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("api: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.hc.Do(req)
	if err != nil {
		if reqCtx != ctx && reqCtx.Err() != nil && ctx.Err() == nil {
			// The per-attempt timeout fired while the overall request was
			// still alive: this attempt is dead, the request is not.
			// Surface retryable unavailability so failover gets a turn
			// instead of a terminal cancellation.
			return &Error{Code: CodeUnavailable,
				Message: fmt.Sprintf("api: attempt %s %s timed out after %v", method, path, c.attemptTimeout)}
		}
		return classify(err)
	}
	defer res.Body.Close()
	if dst, ok := ctx.Value(instanceCaptureKey{}).(*string); ok {
		*dst = res.Header.Get(InstanceHeader)
	}
	data, err := io.ReadAll(res.Body)
	if err != nil {
		return fmt.Errorf("api: read response: %w", err)
	}
	if res.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" && sentinelOf(e.Code) != nil {
			return errFromCode(e.Code, e.Error, time.Duration(e.RetryAfterMS)*time.Millisecond)
		}
		// A non-contract failure body (a crashed proxy's HTML page, an
		// injected raw 500) still surfaces as a *typed* internal error:
		// the contract promises every refusal satisfies errors.Is.
		return &Error{Code: CodeInternal,
			Message: fmt.Sprintf("api: %s %s: unexpected status %d: %s", method, path, res.StatusCode, strings.TrimSpace(string(data)))}
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("api: decode response: %w", err)
	}
	return nil
}
