package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/service"
)

var tinySizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

func newTestDispatcher(t *testing.T) (*Dispatcher, *service.Service) {
	t.Helper()
	svc, err := service.New(service.Options{Base: core.Options{Seed: 42, Sizes: tinySizes}})
	if err != nil {
		t.Fatal(err)
	}
	return NewDispatcher(svc, 42), svc
}

func TestDispatcherValidation(t *testing.T) {
	d, _ := newTestDispatcher(t)
	ctx := context.Background()
	cases := []struct {
		name string
		req  *SelectRequest
	}{
		{"nil request", nil},
		{"missing task", &SelectRequest{Targets: []string{"x"}}},
		{"no targets", &SelectRequest{Task: datahub.TaskNLP}},
		{"empty target", &SelectRequest{Task: datahub.TaskNLP, Targets: []string{""}}},
		{"bad strategy", &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, SelectOptions: SelectOptions{Strategy: "zigzag"}}},
		{"negative workers", &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, SelectOptions: SelectOptions{Workers: -1}}},
	}
	for _, tc := range cases {
		_, err := d.Select(ctx, tc.req)
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", tc.name, err)
		}
		if HTTPStatus(err) != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, HTTPStatus(err))
		}
	}
}

func TestDispatcherNotFoundMapping(t *testing.T) {
	d, _ := newTestDispatcher(t)
	ctx := context.Background()

	_, err := d.Select(ctx, &SelectRequest{Task: "audio", Targets: []string{"x"}})
	if !errors.Is(err, ErrUnknownTask) || HTTPStatus(err) != http.StatusNotFound {
		t.Fatalf("unknown task: err %v status %d, want ErrUnknownTask / 404", err, HTTPStatus(err))
	}
	if _, err := d.Targets(ctx, "audio"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("targets unknown task: %v", err)
	}

	// Single-target form is an RPC: the one failure is the request error.
	_, err = d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"no-such"}})
	if !errors.Is(err, ErrUnknownTarget) || HTTPStatus(err) != http.StatusNotFound {
		t.Fatalf("unknown target: err %v status %d, want ErrUnknownTarget / 404", err, HTTPStatus(err))
	}

	// Batch form reports the failure per result and keeps the request OK.
	resp, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval", "no-such"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 1 || resp.Results[1].ErrorCode != CodeUnknownTarget {
		t.Fatalf("batch partial failure misreported: %+v", resp)
	}
	if resp.Results[0].Winner == "" {
		t.Fatalf("healthy batch member has no winner: %+v", resp.Results[0])
	}
}

func TestStrategyDispatch(t *testing.T) {
	d, _ := newTestDispatcher(t)
	ctx := context.Background()
	target := []string{"tweet_eval"}

	two, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: target})
	if err != nil {
		t.Fatal(err)
	}
	if two.Strategy != string(core.StrategyTwoPhase) || two.Results[0].Recalled == 0 {
		t.Fatalf("two-phase response missing recall: %+v", two)
	}

	sh, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: target, SelectOptions: SelectOptions{Strategy: "sh"}})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Strategy != "sh" || sh.Results[0].Recalled != 0 || sh.Results[0].Winner == "" {
		t.Fatalf("sh response wrong: %+v", sh.Results[0])
	}

	bf, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: target, SelectOptions: SelectOptions{Strategy: "bf"}})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Results[0].Winner == "" || bf.TotalEpochs <= sh.TotalEpochs {
		t.Fatalf("bf must cost more than sh: bf=%v sh=%v", bf.TotalEpochs, sh.TotalEpochs)
	}

	ens, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: target, SelectOptions: SelectOptions{Strategy: "ensemble"}})
	if err != nil {
		t.Fatal(err)
	}
	r := ens.Results[0]
	if len(r.Members) != core.DefaultEnsembleK || r.Winner != r.Members[0] || r.Recalled == 0 {
		t.Fatalf("ensemble response wrong: %+v", r)
	}

	// Identical requests on a warm service report identical batch cost:
	// the response sums this request's ledgers, not the service total.
	again, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: target})
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalEpochs != two.TotalEpochs {
		t.Fatalf("warm-service batch cost drifted: %v vs %v", again.TotalEpochs, two.TotalEpochs)
	}
}

// TestSelectCanceled proves a dead client aborts an in-flight selection:
// the request comes back ErrCanceled and no selection epochs are charged.
func TestSelectCanceled(t *testing.T) {
	d, svc := newTestDispatcher(t)
	// Warm the framework so cancellation hits the selection, not the
	// build wait.
	if _, err := svc.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	costBefore := svc.Cost()
	before := costBefore.Total()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if HTTPStatus(err) != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d", HTTPStatus(err), StatusClientClosedRequest)
	}
	costAfter := svc.Cost()
	if after := costAfter.Total(); after != before {
		t.Fatalf("canceled request still charged %v epochs", after-before)
	}

	// Batch form: cancellation is a request-level failure too.
	_, err = d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval", "super_glue/boolq"}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("batch: got %v, want ErrCanceled", err)
	}
}

// TestHTTPRoundTrip runs the same requests through the in-process
// dispatcher and through a real server + client, asserting bit-identical
// results and sentinel preservation across the wire.
func TestHTTPRoundTrip(t *testing.T) {
	d, _ := newTestDispatcher(t)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	req := &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval", "super_glue/boolq"}}
	direct, err := d.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := c.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Results, wire.Results) {
		t.Fatalf("HTTP results differ from in-process:\n%+v\nvs\n%+v", direct.Results, wire.Results)
	}
	if wire.APIVersion != Version || wire.Seed != 42 {
		t.Fatalf("response header fields wrong: %+v", wire)
	}

	dt, err := d.Targets(ctx, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	wt, err := c.Targets(ctx, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dt, wt) {
		t.Fatalf("targets differ: %+v vs %+v", dt, wt)
	}

	// Typed errors survive the round trip.
	if _, err := c.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"no-such"}}); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("wire error lost its sentinel: %v", err)
	}
	if _, err := c.Targets(ctx, "audio"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("wire unknown-task lost its sentinel: %v", err)
	}
	if _, err := c.Select(ctx, &SelectRequest{Task: datahub.TaskNLP}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("wire bad-request lost its sentinel: %v", err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.OfflineBuilds != 1 || st.TotalEpochs <= 0 || st.PersistDegraded {
		t.Fatalf("stats wrong: %+v", st)
	}
}

func TestHandlerHTTPSurface(t *testing.T) {
	d, _ := newTestDispatcher(t)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	res, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var h Health
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %v %+v", err, h)
	}

	// Malformed JSON body → 400 with a machine-readable code.
	res, err = http.Post(ts.URL+"/v1/select", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d, want 400", res.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil || e.Code != CodeBadRequest {
		t.Fatalf("error body: %v %+v", err, e)
	}

	// Unknown task on the targets route → 404.
	res, err = http.Get(ts.URL + "/v1/tasks/audio/targets")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown task status %d, want 404", res.StatusCode)
	}
}
