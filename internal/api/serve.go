package api

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"
)

// ServeUntilShutdown serves handler on ln until ctx is canceled, then
// drains in-flight requests for the grace window; requests still running
// after it are aborted by closing their connections, which cancels their
// request contexts down into the per-round training loops. It returns
// nil on a clean drain, the listener error if serving fails first, or a
// drain-expiry error. Both cmd/apiserver and cmd/gateway route their
// serve-and-drain tail through here so the shutdown semantics cannot
// diverge.
func ServeUntilShutdown(ctx context.Context, ln net.Listener, handler http.Handler, grace time.Duration) error {
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("api: shutting down, draining for up to %s", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Grace expired with requests still burning epochs: close the
		// connections so their contexts cancel the per-round loops.
		srv.Close()
		return fmt.Errorf("drain window expired: %w", err)
	}
	return nil
}
