package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// maxBodyBytes bounds a /v1/select request body; selection requests are
// small JSON documents, so anything bigger is a client bug.
const maxBodyBytes = 1 << 20

// InstanceHeader is the response header naming the serving process. The
// sharding gateway reads it off backend responses to assert and report
// routing; multi-process tests assert routing stability through it.
const InstanceHeader = "X-Instance-Id"

// HandlerOptions tunes NewHandlerWith.
type HandlerOptions struct {
	// Ready gates /v1/healthz: until it reports true (e.g. while
	// configured framework warmup is still building), healthz answers
	// 503 {"status":"warming"} so load balancers hold traffic until the
	// first request can hit a resident framework. nil means always
	// ready. The selection endpoints are not gated — a request that
	// arrives early simply waits on the build.
	Ready func() bool
	// Instance, when non-empty, is stamped on every response as the
	// X-Instance-Id header and echoed in the healthz body.
	Instance string
}

// NewHandler mounts the v1 contract on an http.Handler:
//
//	POST /v1/select                  single or batch selection
//	GET  /v1/tasks/{task}/targets    target catalog of a task family
//	GET  /v1/healthz                 liveness + readiness
//	GET  /v1/stats                   builds, cache, cumulative cost
//
// Every response body is JSON; failures carry ErrorResponse with a
// machine-readable code and the status from HTTPStatus.
func NewHandler(a API) http.Handler { return NewHandlerWith(a, HandlerOptions{}) }

// NewReadyHandler is NewHandler with a readiness gate (see
// HandlerOptions.Ready).
func NewReadyHandler(a API, ready func() bool) http.Handler {
	return NewHandlerWith(a, HandlerOptions{Ready: ready})
}

// NewHandlerWith is NewHandler with the full option set.
func NewHandlerWith(a API, opts HandlerOptions) http.Handler {
	ready := opts.Ready
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/select", func(w http.ResponseWriter, r *http.Request) {
		var req SelectRequest
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, errBadRequest(fmt.Sprintf("read body: %v", err)))
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, errBadRequest(fmt.Sprintf("decode body: %v", err)))
			return
		}
		resp, err := a.Select(r.Context(), &req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/tasks/{task}/targets", func(w http.ResponseWriter, r *http.Request) {
		resp, err := a.Targets(r.Context(), r.PathValue("task"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil && !ready() {
			writeJSON(w, http.StatusServiceUnavailable, Health{Status: "warming", Instance: opts.Instance})
			return
		}
		writeJSON(w, http.StatusOK, Health{Status: "ok", Instance: opts.Instance})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		resp, err := a.Stats(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	if opts.Instance == "" {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(InstanceHeader, opts.Instance)
		mux.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; an encode failure here can only
	// be a broken connection, which the client sees anyway.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, HTTPStatus(err), ErrorResponse{Error: err.Error(), Code: Code(err)})
}
