package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"twophase/internal/admission"
	"twophase/internal/faultinject"
)

// maxBodyBytes bounds a /v1/select request body; selection requests are
// small JSON documents, so anything bigger is a client bug.
const maxBodyBytes = 1 << 20

// InstanceHeader is the response header naming the serving process. The
// sharding gateway reads it off backend responses to assert and report
// routing; multi-process tests assert routing stability through it.
const InstanceHeader = "X-Instance-Id"

// Admission request headers. ClientIDHeader names the client for
// per-client rate limiting (falls back to the remote address);
// PriorityHeader is an integer rank for queue ordering and shedding —
// higher survives longer (missing or unparsable means 0).
const (
	ClientIDHeader = "X-Client-Id"
	PriorityHeader = "X-Priority"
)

// HandlerOptions tunes NewHandlerWith.
type HandlerOptions struct {
	// Ready gates /v1/healthz: until it reports true (e.g. while
	// configured framework warmup is still building), healthz answers
	// 503 {"status":"warming"} so load balancers hold traffic until the
	// first request can hit a resident framework. nil means always
	// ready. The selection endpoints are not gated — a request that
	// arrives early simply waits on the build.
	Ready func() bool
	// Instance, when non-empty, is stamped on every response as the
	// X-Instance-Id header and echoed in the healthz body.
	Instance string
	// Admission, when non-nil, gates /v1/select: refused requests render
	// as typed rate_limited (429) / overloaded (503) errors carrying
	// Retry-After, and the controller's snapshot rides /v1/stats. The
	// other endpoints are never gated — health and stats must answer
	// precisely when the service is saturated.
	Admission *admission.Controller
	// Artifacts, when non-nil, mounts GET /v1/artifacts/{kind}/{name}:
	// the binary-artifact distribution endpoint ring peers use to fetch a
	// world instead of rebuilding it. Responses are raw artifact bytes
	// (the codec's header carries its own checksums) with the input
	// fingerprint as a strong ETag, so If-None-Match short-circuits
	// unchanged artifacts to 304.
	Artifacts ArtifactSource
}

// ArtifactSource serves verified binary artifact documents by kind and
// store key. *store.Store satisfies it; an absent artifact must surface
// as store.ErrNotFound so the handler can answer a typed 404.
type ArtifactSource interface {
	OpenArtifact(kind, name string) ([]byte, uint64, error)
}

// NewHandler mounts the v1 contract on an http.Handler:
//
//	POST /v1/select                  single or batch selection
//	GET  /v1/tasks/{task}/targets    target catalog of a task family
//	GET  /v1/healthz                 liveness + readiness
//	GET  /v1/stats                   builds, cache, cumulative cost
//
// Every response body is JSON; failures carry ErrorResponse with a
// machine-readable code and the status from HTTPStatus.
func NewHandler(a API) http.Handler { return NewHandlerWith(a, HandlerOptions{}) }

// NewReadyHandler is NewHandler with a readiness gate (see
// HandlerOptions.Ready).
func NewReadyHandler(a API, ready func() bool) http.Handler {
	return NewHandlerWith(a, HandlerOptions{Ready: ready})
}

// NewHandlerWith is NewHandler with the full option set.
func NewHandlerWith(a API, opts HandlerOptions) http.Handler {
	ready := opts.Ready
	var panics atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/select", func(w http.ResponseWriter, r *http.Request) {
		if f := faultinject.On(faultinject.SiteHandler); f != nil && f.Action == faultinject.ActPanic {
			panic(fmt.Sprintf("faultinject: %s panic n=%d", f.Site, f.N))
		}
		if opts.Admission != nil {
			release, retry, err := opts.Admission.Admit(r.Context(), clientID(r), priorityOf(r))
			if err != nil {
				writeError(w, admissionError(err, retry))
				return
			}
			defer release()
		}
		var req SelectRequest
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeError(w, errBadRequest(fmt.Sprintf("read body: %v", err)))
			return
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, errBadRequest(fmt.Sprintf("decode body: %v", err)))
			return
		}
		// Reject malformed requests at the transport edge with the same
		// gate the Dispatcher applies, before any framework resolution.
		if err := req.Validate(); err != nil {
			writeError(w, err)
			return
		}
		resp, err := a.Select(r.Context(), &req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/tasks/{task}/targets", func(w http.ResponseWriter, r *http.Request) {
		resp, err := a.Targets(r.Context(), r.PathValue("task"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil && !ready() {
			writeJSON(w, http.StatusServiceUnavailable, Health{Status: "warming", Instance: opts.Instance})
			return
		}
		writeJSON(w, http.StatusOK, Health{Status: "ok", Instance: opts.Instance})
	})
	if opts.Artifacts != nil {
		mux.HandleFunc("GET /v1/artifacts/{kind}/{name}", func(w http.ResponseWriter, r *http.Request) {
			kind, name := r.PathValue("kind"), r.PathValue("name")
			data, fp, err := opts.Artifacts.OpenArtifact(kind, name)
			if err != nil {
				writeError(w, classify(err))
				return
			}
			etag := fmt.Sprintf("%q", fmt.Sprintf("%016x", fp))
			w.Header().Set("ETag", etag)
			if etagMatches(r.Header.Get("If-None-Match"), etag) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			_, _ = w.Write(data)
		})
	}
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		resp, err := a.Stats(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		// Panics recovered by this process's middleware ride the stats
		// document on top of whatever the API reports (a gateway already
		// sums its backends' counters).
		resp.Panics += panics.Load()
		if fires := faultinject.Fires(); fires != nil {
			resp.FaultFires = fires
		}
		if opts.Admission != nil {
			st := opts.Admission.Stats()
			resp.Admission = &AdmissionStats{
				Admitted:    st.Admitted,
				RateLimited: st.RateLimited,
				Shed:        st.Shed,
				Queued:      st.Queued,
				Inflight:    st.Inflight,
				QueueLen:    st.QueueLen,
				Clients:     st.Clients,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	handler := http.Handler(mux)
	if opts.Instance != "" {
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(InstanceHeader, opts.Instance)
			mux.ServeHTTP(w, r)
		})
	}
	return recoverPanics(handler, &panics)
}

// recoverPanics is the outermost middleware on every mounted handler: a
// panic below it becomes a typed internal 500 (never a torn connection or
// an untyped error page) and the process keeps serving. The stack is
// logged and the count rides /v1/stats. http.ErrAbortHandler re-panics —
// it is net/http's sanctioned way to abort a response mid-write.
func recoverPanics(next http.Handler, panics *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			panics.Add(1)
			log.Printf("api: recovered panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// If the handler already wrote a status line this WriteHeader
			// is a no-op and the client sees a truncated body — the best
			// that can be done once bytes are on the wire.
			writeError(w, &Error{Code: CodeInternal,
				Message: fmt.Sprintf("internal error: recovered panic serving %s", r.URL.Path)})
		}()
		next.ServeHTTP(w, r)
	})
}

// etagMatches reports whether an If-None-Match header value matches the
// given quoted ETag, per RFC 9110: the header may carry "*", a single
// entity tag, or a comma-separated list, each optionally weak (W/
// prefix). Weak comparison is fine for a 304 on GET.
func etagMatches(header, etag string) bool {
	header = strings.TrimSpace(header)
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		candidate = strings.TrimPrefix(candidate, "W/")
		if candidate == etag {
			return true
		}
	}
	return false
}

// clientID names the requester for per-client rate limiting: the
// X-Client-Id header when present, else the remote host (every anonymous
// connection from one machine shares a bucket).
func clientID(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// priorityOf parses the X-Priority header (missing or malformed = 0).
func priorityOf(r *http.Request) int {
	p, err := strconv.Atoi(r.Header.Get(PriorityHeader))
	if err != nil {
		return 0
	}
	return p
}

// admissionError maps an admission refusal onto the wire contract:
// rate_limited → 429, overloaded → 503, both carrying the controller's
// Retry-After hint; a context error stays a cancellation.
func admissionError(err error, retry time.Duration) error {
	switch {
	case errors.Is(err, admission.ErrRateLimited):
		return &Error{Code: CodeRateLimited, Message: err.Error(), RetryAfter: retry}
	case errors.Is(err, admission.ErrShed):
		return &Error{Code: CodeOverloaded, Message: err.Error(), RetryAfter: retry}
	default:
		return classify(err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; an encode failure here can only
	// be a broken connection, which the client sees anyway.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	resp := ErrorResponse{Error: err.Error(), Code: Code(err)}
	if ra := RetryAfter(err); ra > 0 {
		resp.RetryAfterMS = ra.Milliseconds()
		// Retry-After speaks whole seconds; round up so a client honoring
		// only the header never retries before the hint.
		w.Header().Set("Retry-After", strconv.FormatInt(int64((ra+time.Second-1)/time.Second), 10))
	}
	writeJSON(w, HTTPStatus(err), resp)
}
