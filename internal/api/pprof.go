package api

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves the net/http/pprof endpoints (/debug/pprof/...) on a
// dedicated listener and returns its bound address. The profiler gets its
// own mux and port — never the public API mux — so production deployments
// can firewall it separately from traffic; an empty addr disables it and
// returns "". The goroutine serves until the process exits.
//
// Hot-path claims about the numeric core are checkable in prod with e.g.
//
//	go tool pprof http://HOST:PPROF_PORT/debug/pprof/profile?seconds=30
func StartPprof(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // serves until process exit
	return ln.Addr().String(), nil
}
