package api

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

func TestStartPprofDisabled(t *testing.T) {
	addr, err := StartPprof("")
	if err != nil || addr != "" {
		t.Fatalf("disabled pprof: addr %q err %v", addr, err)
	}
}

func TestStartPprofServesIndex(t *testing.T) {
	addr, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("empty pprof index")
	}
}

func TestStartPprofBadAddr(t *testing.T) {
	if _, err := StartPprof("256.256.256.256:99999"); err == nil {
		t.Fatal("expected listen error")
	}
}
