package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/service"
)

// TestSeedRejectedMapping: the admission policy's refusal maps to 403 with
// a machine-readable code, and the sentinel survives the HTTP round trip.
func TestSeedRejectedMapping(t *testing.T) {
	svc, err := service.New(service.Options{
		Base:  core.Options{Seed: 42, Sizes: tinySizes},
		Seeds: service.SeedPolicy{Fixed: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(svc, 42)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	seed := uint64(7)
	req := &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, SelectOptions: SelectOptions{Seed: &seed}}
	_, err = d.Select(ctx, req)
	if !errors.Is(err, ErrSeedRejected) {
		t.Fatalf("dispatcher: got %v, want ErrSeedRejected", err)
	}
	if HTTPStatus(err) != http.StatusForbidden || Code(err) != CodeSeedRejected {
		t.Fatalf("mapping: status %d code %q, want 403 / seed_rejected", HTTPStatus(err), Code(err))
	}
	if _, err := c.Select(ctx, req); !errors.Is(err, ErrSeedRejected) {
		t.Fatalf("wire: seed rejection lost its sentinel: %v", err)
	}
	// The rejection never built a world.
	if svc.Builds() != 0 {
		t.Fatalf("rejected seed executed %d builds", svc.Builds())
	}
}

// TestStatsReportsCache: /v1/stats carries the lifecycle cache's
// occupancy and hit/miss/eviction counters.
func TestStatsReportsCache(t *testing.T) {
	svc, err := service.New(service.Options{
		Base:      core.Options{Seed: 42, Sizes: tinySizes},
		CacheSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(svc, 42)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	if _, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}}); err != nil {
		t.Fatal(err)
	}
	seed := uint64(7)
	if _, err := d.Select(ctx, &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, SelectOptions: SelectOptions{Seed: &seed}}); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Cache
	if cs.Capacity != 1 || cs.Resident != 1 || cs.InUse != 0 {
		t.Fatalf("cache occupancy: %+v", cs)
	}
	if cs.Evictions != 1 || cs.Misses != 2 || cs.Builds != 2 {
		t.Fatalf("cache counters: %+v", cs)
	}
	if cs.BuildMillis <= 0 {
		t.Fatalf("build duration not reported: %+v", cs)
	}
}

// TestReadyHandlerGatesHealthz: while warmup is in flight, healthz answers
// 503 "warming"; afterwards 200 "ok". The selection endpoints stay open.
func TestReadyHandlerGatesHealthz(t *testing.T) {
	d, _ := newTestDispatcher(t)
	var ready atomic.Bool
	ts := httptest.NewServer(NewReadyHandler(d, ready.Load))
	defer ts.Close()

	get := func() (int, Health) {
		t.Helper()
		res, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var h Health
		if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, h
	}

	if status, h := get(); status != http.StatusServiceUnavailable || h.Status != "warming" {
		t.Fatalf("warming healthz: %d %+v", status, h)
	}
	// Selection is not gated: an early request waits on the build instead
	// of bouncing.
	c := NewClient(ts.URL, ts.Client())
	if _, err := c.Targets(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatalf("ungated endpoint failed while warming: %v", err)
	}
	ready.Store(true)
	if status, h := get(); status != http.StatusOK || h.Status != "ok" {
		t.Fatalf("ready healthz: %d %+v", status, h)
	}
}
