package api

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/selection"
)

func epochs(n int) *int { return &n }

// TestZeroBudgetBatchTruncation is the batch-ledger contract under
// truncation: a zero-epoch budget truncates every target, each target
// still reports a best-so-far winner, and the batch total_epochs sums the
// partial per-target ledgers — proxy inference during coarse recall is
// real spend, so the total is nonzero even though no epoch was trained.
func TestZeroBudgetBatchTruncation(t *testing.T) {
	d, _ := newTestDispatcher(t)
	resp, err := d.Select(context.Background(), &SelectRequest{
		Task:          datahub.TaskNLP,
		Targets:       []string{"tweet_eval", "super_glue/boolq"},
		SelectOptions: SelectOptions{MaxEpochs: epochs(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated != len(resp.Results) {
		t.Fatalf("truncated count %d, want every one of %d targets", resp.Truncated, len(resp.Results))
	}
	for _, r := range resp.Results {
		if !r.Truncated || r.Budget == nil {
			t.Fatalf("zero-budget target not marked truncated: %+v", r)
		}
		if r.Budget.TruncatedBy != selection.TruncatedByEpochs {
			t.Fatalf("truncated_by = %q, want %q", r.Budget.TruncatedBy, selection.TruncatedByEpochs)
		}
		if r.Budget.MaxEpochs == nil || *r.Budget.MaxEpochs != 0 {
			t.Fatalf("budget block lost the cap: %+v", r.Budget)
		}
		if r.Winner == "" {
			t.Fatalf("truncated target has no best-so-far winner: %+v", r)
		}
		if r.Epochs <= 0 {
			t.Fatalf("truncated target reports no spend (%v); partial ledgers must be counted", r.Epochs)
		}
	}
	if resp.TotalEpochs <= 0 {
		t.Fatalf("batch total_epochs = %v, want the nonzero sum of partial ledgers", resp.TotalEpochs)
	}
	want := 0.0
	for _, r := range resp.Results {
		want += r.Epochs
	}
	if resp.TotalEpochs != want {
		t.Fatalf("batch total %v != sum of per-target ledgers %v", resp.TotalEpochs, want)
	}
}

// TestBudgetHTTPRoundTrip proves the budget thread end to end: a fixed
// epoch budget produces bit-identical truncated results through the
// in-process dispatcher and through a real server + client, as HTTP 200 —
// truncation is a successful response, never an error.
func TestBudgetHTTPRoundTrip(t *testing.T) {
	d, _ := newTestDispatcher(t)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	req := &SelectRequest{
		Task:          datahub.TaskNLP,
		Targets:       []string{"tweet_eval", "super_glue/boolq"},
		SelectOptions: SelectOptions{Strategy: "sh", MaxEpochs: epochs(1)},
	}
	direct, err := d.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := c.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Results, wire.Results) {
		t.Fatalf("budgeted results differ across paths:\n%+v\nvs\n%+v", direct.Results, wire.Results)
	}
	if wire.Truncated != len(wire.Results) {
		t.Fatalf("1-epoch SH budget must truncate every target: %+v", wire)
	}
	for _, r := range wire.Results {
		if !r.Truncated || r.Winner == "" || r.Budget == nil {
			t.Fatalf("truncated wire result malformed: %+v", r)
		}
	}
}

// TestDeadlineHTTPReturns200 is the acceptance check for anytime
// selection over the wire: a tiny deadline_ms yields HTTP 200 with
// truncated: true and a best-so-far winner — never a 499 or an error.
// Brute force re-checks the budget before every epoch, so a 1ms deadline
// on a warm framework is always hit.
func TestDeadlineHTTPReturns200(t *testing.T) {
	d, svc := newTestDispatcher(t)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	if _, err := svc.Framework(ctx, datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Select(ctx, &SelectRequest{
		Task:          datahub.TaskNLP,
		Targets:       []string{"tweet_eval"},
		SelectOptions: SelectOptions{Strategy: "bf", DeadlineMS: 1},
	})
	if err != nil {
		t.Fatalf("deadline must truncate, not fail: %v", err)
	}
	r := resp.Results[0]
	if !r.Truncated || r.Winner == "" {
		t.Fatalf("deadline response not truncated-with-winner: %+v", r)
	}
	if r.Budget == nil || r.Budget.TruncatedBy != selection.TruncatedByDeadline {
		t.Fatalf("budget block wrong: %+v", r.Budget)
	}
	if r.Budget.DeadlineMS != 1 {
		t.Fatalf("budget block lost the deadline: %+v", r.Budget)
	}
}
