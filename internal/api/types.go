// Package api is the versioned serving contract of the two-phase
// selection system: request/response types shared bit-for-bit by the HTTP
// server, the Go client and the CLI, typed HTTP-mappable errors, an
// in-process dispatcher over service.Service, and the v1 net/http handler.
//
// The same API interface backs both transports, so a selection served
// over HTTP is byte-identical to one served in process for the same seed.
package api

import "twophase/internal/core"

// Version is the contract version stamped on every response.
const Version = "v1"

// SelectRequest asks for one or more target selections within a task
// family. The zero values of the optional fields mean "service default".
type SelectRequest struct {
	// Task is the task family ("nlp" or "cv").
	Task string `json:"task"`
	// Targets are the target dataset names; a single-element slice is the
	// single-selection form. A request with no targets is rejected with
	// ErrBadRequest.
	Targets []string `json:"targets"`
	// Strategy picks the selection procedure: "two-phase" (default),
	// "sh", "bf" or "ensemble".
	Strategy string `json:"strategy,omitempty"`
	// Seed optionally overrides the serving world seed; omitted or null
	// means the server's configured seed. Frameworks are cached per
	// (task, seed).
	Seed *uint64 `json:"seed,omitempty"`
	// Workers bounds per-stage training parallelism for this request
	// (0 = server default). Results are identical across settings.
	Workers int `json:"workers,omitempty"`
	// EnsembleK is the ensemble size for strategy "ensemble"
	// (0 = server default of 3).
	EnsembleK int `json:"ensemble_k,omitempty"`
}

// TargetResult is one target's selection outcome. Exactly one of
// Winner/Error is set; a batch reports per-target errors here instead of
// failing the whole request.
type TargetResult struct {
	Target   string   `json:"target"`
	Winner   string   `json:"winner,omitempty"`
	Members  []string `json:"members,omitempty"` // ensemble strategy only
	ValAcc   float64  `json:"val_acc,omitempty"`
	TestAcc  float64  `json:"test_acc,omitempty"`
	Epochs   float64  `json:"epochs,omitempty"`
	Recalled int      `json:"recalled,omitempty"` // two-phase/ensemble only
	Error    string   `json:"error,omitempty"`
	// ErrorCode is the machine-readable code for Error ("unknown_target",
	// "canceled", "internal", ...).
	ErrorCode string `json:"error_code,omitempty"`
	// Backend is the instance id of the backend that served this target,
	// set only by the sharding gateway (from the backend's X-Instance-Id
	// response header) so clients and tests can assert routing.
	Backend string `json:"backend,omitempty"`
}

// SelectResponse is the whole selection document.
type SelectResponse struct {
	APIVersion string         `json:"api_version"`
	Task       string         `json:"task"`
	Strategy   string         `json:"strategy"`
	Seed       uint64         `json:"seed"`
	Results    []TargetResult `json:"results"`
	// Failed counts the Results entries that carry an Error.
	Failed int `json:"failed"`
	// TotalEpochs is the summed cost of this request's per-target
	// ledgers — not the service's cumulative spend, so reusing a warm
	// service never overcounts a batch.
	TotalEpochs float64 `json:"total_epochs"`
	// OfflineBuilds is the serving process's lifetime offline-build
	// count (0 on every store hit).
	OfflineBuilds int   `json:"offline_builds"`
	WallMillis    int64 `json:"wall_ms"`
}

// TargetsResponse lists a task family's target datasets in catalog order.
type TargetsResponse struct {
	APIVersion string   `json:"api_version"`
	Task       string   `json:"task"`
	Targets    []string `json:"targets"`
}

// Stats is the serving process's observability snapshot.
type Stats struct {
	APIVersion string `json:"api_version"`
	// OfflineBuilds counts offline builds actually executed.
	OfflineBuilds int `json:"offline_builds"`
	// TotalEpochs / TrainEpochs are the cumulative cost of every
	// selection served so far.
	TotalEpochs float64 `json:"total_epochs"`
	TrainEpochs int     `json:"train_epochs"`
	// PersistDegraded reports that an artifact write failed and the
	// service is serving frameworks from memory only; PersistError
	// carries the most recent failure.
	PersistDegraded bool   `json:"persist_degraded"`
	PersistError    string `json:"persist_error,omitempty"`
	// Cache describes the framework lifecycle cache.
	Cache CacheStats `json:"cache"`
	// Gateway is set only on a sharding gateway's stats: ring shape,
	// routing counters and per-backend health + aggregated backend stats.
	// On a gateway, the top-level counters above are fleet-wide sums.
	Gateway *GatewayStats `json:"gateway,omitempty"`
}

// CacheStats is the framework lifecycle cache's observability snapshot.
type CacheStats struct {
	// Capacity is the configured bound on resident frameworks
	// (0 = unbounded).
	Capacity int `json:"capacity"`
	// Resident counts cached frameworks, including in-flight builds;
	// InUse counts those pinned by at least one in-flight request.
	Resident int `json:"resident"`
	InUse    int `json:"in_use"`
	// Hits/Misses count cache lookups; Evictions counts frameworks
	// removed by the capacity bound.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Builds/BuildFailures count completed framework resolutions (store
	// loads and offline builds alike); BuildMillis is their cumulative
	// wall time.
	Builds        int64 `json:"builds"`
	BuildFailures int64 `json:"build_failures"`
	BuildMillis   int64 `json:"build_ms"`
}

// GatewayStats is the sharding gateway's routing snapshot.
type GatewayStats struct {
	// Backends / VNodes / Replicas describe the consistent-hash ring:
	// backend count, virtual nodes per backend, and replica owners per
	// (task, seed) key.
	Backends int `json:"backends"`
	VNodes   int `json:"vnodes"`
	Replicas int `json:"replicas"`
	// Alive counts backends currently considered serving.
	Alive int `json:"alive"`
	// Failovers counts sub-requests retried on another replica after a
	// connection error or backend-side failure.
	Failovers int64 `json:"failovers"`
	// BackendStats describes each backend in configured order.
	BackendStats []BackendStats `json:"backend_stats"`
}

// BackendStats is one backend's view from the gateway.
type BackendStats struct {
	URL string `json:"url"`
	// Instance is the backend's self-reported instance id (empty until
	// the first successful health probe).
	Instance string `json:"instance,omitempty"`
	Alive    bool   `json:"alive"`
	// DownEvents counts up→down health transitions.
	DownEvents int64 `json:"down_events"`
	// Requests counts sub-requests the gateway routed to this backend;
	// Failures counts the ones that errored (before any failover).
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	// Stats is the backend's own /v1/stats snapshot, when reachable.
	Stats *Stats `json:"stats,omitempty"`
}

// Health is the /v1/healthz body.
type Health struct {
	Status string `json:"status"`
	// Instance identifies the serving process, mirroring the
	// X-Instance-Id response header; empty when the server has no
	// configured instance id.
	Instance string `json:"instance,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// parseStrategy validates a wire strategy name, mapping failures to
// ErrBadRequest.
func parseStrategy(s string) (core.Strategy, error) {
	strat, err := core.ParseStrategy(s)
	if err != nil {
		return "", errBadRequest(err.Error())
	}
	return strat, nil
}
