// Package api is the versioned serving contract of the two-phase
// selection system: request/response types shared bit-for-bit by the HTTP
// server, the Go client and the CLI, typed HTTP-mappable errors, an
// in-process dispatcher over service.Service, and the v1 net/http handler.
//
// The same API interface backs both transports, so a selection served
// over HTTP is byte-identical to one served in process for the same seed.
package api

import (
	"fmt"

	"twophase/internal/core"
)

// Version is the contract version stamped on every response.
// v1.1 adds the anytime-budget request fields (deadline_ms, max_epochs),
// the truncated/budget response block, and retryable wire errors
// (rate_limited, overloaded, retry_after_ms); every v1 document remains
// valid, so the path prefix stays /v1.
const Version = "v1.1"

// SelectOptions are the per-request tuning knobs shared by every serving
// path. The struct embeds flat into SelectRequest (the wire shape is
// unchanged from v1); Validate is the single gate the Dispatcher, the HTTP
// handler and the Client all route through, so the three paths cannot
// drift on what a well-formed request is.
type SelectOptions struct {
	// Strategy picks the selection procedure: "two-phase" (default),
	// "sh", "bf", "ensemble" or "lsq" (the zero-epoch closed-form
	// baseline).
	Strategy string `json:"strategy,omitempty"`
	// Seed optionally overrides the serving world seed; omitted or null
	// means the server's configured seed. Frameworks are cached per
	// (task, seed).
	Seed *uint64 `json:"seed,omitempty"`
	// Workers bounds per-stage training parallelism for this request
	// (0 = server default). Results are identical across settings.
	Workers int `json:"workers,omitempty"`
	// EnsembleK is the ensemble size for strategy "ensemble"
	// (0 = server default of 3).
	EnsembleK int `json:"ensemble_k,omitempty"`
	// DeadlineMS is the anytime budget in wall-clock milliseconds: the
	// fine phase stops at the last stage boundary inside the deadline and
	// the response reports truncated=true with the best-so-far winner —
	// a 200, never a 499 (which remains reserved for the client walking
	// away). 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxEpochs caps the training epochs per target. An explicit 0 is a
	// real budget (no training; the winner falls out of the untrained
	// heads deterministically); omitted/null means unbounded. Unlike
	// DeadlineMS, a fixed epoch cap truncates bit-identically on every
	// serving path. Strategy "lsq" never trains, so any cap — including
	// 0 — leaves it untruncated.
	MaxEpochs *int `json:"max_epochs,omitempty"`
	// PrefilterTopK, when positive, runs the zero-epoch lsq ranking over
	// the candidate pool first and hands only the top-k candidates to the
	// epoch-trained strategies (ignored by strategy "lsq" itself). The
	// ranking charges proxy-inference cost to the request's epoch total.
	// 0 (the default) disables the pre-filter: responses are byte-identical
	// to requests without the field.
	PrefilterTopK int `json:"prefilter_top_k,omitempty"`
}

// Validate rejects malformed tuning knobs with ErrBadRequest. It is
// transport-independent: the Dispatcher, the HTTP handler and the Client
// all call it, so a request rejected here is rejected identically on
// every path.
func (o *SelectOptions) Validate() error {
	if o.Workers < 0 || o.EnsembleK < 0 || o.PrefilterTopK < 0 {
		return errBadRequest(fmt.Sprintf("negative tuning field (workers=%d, ensemble_k=%d, prefilter_top_k=%d)", o.Workers, o.EnsembleK, o.PrefilterTopK))
	}
	if o.DeadlineMS < 0 {
		return errBadRequest(fmt.Sprintf("negative deadline_ms %d", o.DeadlineMS))
	}
	if o.MaxEpochs != nil && *o.MaxEpochs < 0 {
		return errBadRequest(fmt.Sprintf("negative max_epochs %d", *o.MaxEpochs))
	}
	_, err := parseStrategy(o.Strategy)
	return err
}

// Normalize validates the options and resolves the wire strategy name to
// its canonical core.Strategy (empty means two-phase).
func (o *SelectOptions) Normalize() (core.Strategy, error) {
	if err := o.Validate(); err != nil {
		return "", err
	}
	return parseStrategy(o.Strategy)
}

// SelectRequest asks for one or more target selections within a task
// family. The zero values of the optional fields mean "service default".
type SelectRequest struct {
	// Task is the task family ("nlp" or "cv").
	Task string `json:"task"`
	// Targets are the target dataset names; a single-element slice is the
	// single-selection form. A request with no targets is rejected with
	// ErrBadRequest.
	Targets []string `json:"targets"`
	// SelectOptions embeds the per-request tuning knobs; JSON marshals
	// them flat, so the wire shape is identical to v1.
	SelectOptions
}

// Validate rejects a malformed request with ErrBadRequest: the shape
// checks here plus the embedded SelectOptions.Validate.
func (r *SelectRequest) Validate() error {
	if r.Task == "" {
		return errBadRequest("missing task")
	}
	if len(r.Targets) == 0 {
		return errBadRequest("no targets")
	}
	for _, t := range r.Targets {
		if t == "" {
			return errBadRequest("empty target name")
		}
	}
	return r.SelectOptions.Validate()
}

// TargetResult is one target's selection outcome. Exactly one of
// Winner/Error is set; a batch reports per-target errors here instead of
// failing the whole request.
type TargetResult struct {
	Target   string   `json:"target"`
	Winner   string   `json:"winner,omitempty"`
	Members  []string `json:"members,omitempty"` // ensemble strategy only
	ValAcc   float64  `json:"val_acc,omitempty"`
	TestAcc  float64  `json:"test_acc,omitempty"`
	Epochs   float64  `json:"epochs,omitempty"`
	Recalled int      `json:"recalled,omitempty"` // two-phase/ensemble only
	// Truncated reports that this target's fine phase stopped at the
	// request budget and Winner is the best-so-far survivor; Budget then
	// carries the detail. Partial epochs spent before the stop still
	// count in Epochs and the response's TotalEpochs.
	Truncated bool          `json:"truncated,omitempty"`
	Budget    *BudgetStatus `json:"budget,omitempty"`
	Error     string        `json:"error,omitempty"`
	// ErrorCode is the machine-readable code for Error ("unknown_target",
	// "canceled", "internal", ...).
	ErrorCode string `json:"error_code,omitempty"`
	// Backend is the instance id of the backend that served this target,
	// set only by the sharding gateway (from the backend's X-Instance-Id
	// response header) so clients and tests can assert routing.
	Backend string `json:"backend,omitempty"`
	// Degraded reports that this target was served from a fingerprint-valid
	// older world snapshot because a rebuild or fetch failed: the winner is
	// real but may lag the freshest artifacts. The degraded_worlds gauge on
	// /v1/stats stays up until a clean rebuild succeeds.
	Degraded bool `json:"degraded,omitempty"`
}

// BudgetStatus is a truncated target's budget block: why the selection
// stopped and which request-level limits were in force.
type BudgetStatus struct {
	// TruncatedBy names the exhausted dimension: "max_epochs" or
	// "deadline" (the epoch cap wins when both are exhausted, because it
	// is the deterministic one).
	TruncatedBy string `json:"truncated_by"`
	// MaxEpochs / DeadlineMS echo the request's budget fields.
	MaxEpochs  *int  `json:"max_epochs,omitempty"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SelectResponse is the whole selection document.
type SelectResponse struct {
	APIVersion string         `json:"api_version"`
	Task       string         `json:"task"`
	Strategy   string         `json:"strategy"`
	Seed       uint64         `json:"seed"`
	Results    []TargetResult `json:"results"`
	// Failed counts the Results entries that carry an Error.
	Failed int `json:"failed"`
	// Truncated counts the Results entries whose selection stopped at the
	// request budget (their partial cost is still in TotalEpochs).
	Truncated int `json:"truncated,omitempty"`
	// Degraded counts the Results entries served from an older world
	// snapshot (see TargetResult.Degraded).
	Degraded int `json:"degraded,omitempty"`
	// TotalEpochs is the summed cost of this request's per-target
	// ledgers — not the service's cumulative spend, so reusing a warm
	// service never overcounts a batch.
	TotalEpochs float64 `json:"total_epochs"`
	// OfflineBuilds is the serving process's lifetime offline-build
	// count (0 on every store hit).
	OfflineBuilds int   `json:"offline_builds"`
	WallMillis    int64 `json:"wall_ms"`
}

// TargetsResponse lists a task family's target datasets in catalog order.
type TargetsResponse struct {
	APIVersion string   `json:"api_version"`
	Task       string   `json:"task"`
	Targets    []string `json:"targets"`
}

// Stats is the serving process's observability snapshot.
type Stats struct {
	APIVersion string `json:"api_version"`
	// OfflineBuilds counts offline builds actually executed.
	OfflineBuilds int `json:"offline_builds"`
	// TotalEpochs / TrainEpochs are the cumulative cost of every
	// selection served so far.
	TotalEpochs float64 `json:"total_epochs"`
	TrainEpochs int     `json:"train_epochs"`
	// PersistDegraded reports that an artifact write failed and the
	// service is serving frameworks from memory only; PersistError
	// carries the most recent failure.
	PersistDegraded bool   `json:"persist_degraded"`
	PersistError    string `json:"persist_error,omitempty"`
	// Panics counts handler and worker panics recovered by the process
	// (each one answered as a typed internal error while serving
	// continued). On a gateway the count includes backend panics.
	Panics int64 `json:"panics,omitempty"`
	// DegradedWorlds gauges (task, seed) worlds currently served from an
	// older snapshot because their latest rebuild or fetch failed;
	// DegradedServes counts selections answered from such snapshots.
	DegradedWorlds int   `json:"degraded_worlds,omitempty"`
	DegradedServes int64 `json:"degraded_serves,omitempty"`
	// FaultFires reports fired injected faults per "site:action" when this
	// process was started with -fault-schedule; absent in production.
	FaultFires map[string]int64 `json:"fault_fires,omitempty"`
	// Cache describes the framework lifecycle cache.
	Cache CacheStats `json:"cache"`
	// Gateway is set only on a sharding gateway's stats: ring shape,
	// routing counters and per-backend health + aggregated backend stats.
	// On a gateway, the top-level counters above are fleet-wide sums.
	Gateway *GatewayStats `json:"gateway,omitempty"`
	// Admission is set when the serving process fronts /v1/select with an
	// admission controller: rate-limit/shed counters and queue gauges.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Artifacts is set when the serving process has an artifact store:
	// counters for the binary-artifact warm/fetch/build paths. On a
	// gateway they are fleet-wide sums across backends.
	Artifacts *ArtifactStats `json:"artifacts,omitempty"`
}

// ArtifactStats is the binary-artifact subsystem's observability
// snapshot: how worlds came to be resident in this process.
type ArtifactStats struct {
	// Hits counts worlds assembled from artifacts already in the local
	// store (warm starts with zero training).
	Hits int64 `json:"artifact_hits"`
	// Fetches counts artifact documents fetched from ring peers and
	// verified (a world fetch counts its matrix and recall separately).
	Fetches int64 `json:"artifact_fetches"`
	// FetchFailures counts world fetches that failed end to end and fell
	// back to a local build.
	FetchFailures int64 `json:"fetch_failures"`
	// FallbackBuilds counts offline builds executed despite a configured
	// store — the world was absent locally and not fetchable.
	FallbackBuilds int64 `json:"fallback_builds"`
}

// AdmissionStats is the admission controller's observability snapshot.
type AdmissionStats struct {
	// Admitted counts requests through the gate; RateLimited and Shed
	// count the typed refusals (429s and 503s); Queued counts requests
	// that waited for a slot before admission.
	Admitted    int64 `json:"admitted"`
	RateLimited int64 `json:"rate_limited"`
	Shed        int64 `json:"shed"`
	Queued      int64 `json:"queued"`
	// Inflight / QueueLen are instantaneous gauges; Clients counts
	// tracked per-client rate buckets.
	Inflight int `json:"inflight"`
	QueueLen int `json:"queue_len"`
	Clients  int `json:"clients"`
}

// CacheStats is the framework lifecycle cache's observability snapshot.
type CacheStats struct {
	// Capacity is the configured bound on resident frameworks
	// (0 = unbounded).
	Capacity int `json:"capacity"`
	// Resident counts cached frameworks, including in-flight builds;
	// InUse counts those pinned by at least one in-flight request.
	Resident int `json:"resident"`
	InUse    int `json:"in_use"`
	// Hits/Misses count cache lookups; Evictions counts frameworks
	// removed by the capacity bound.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Builds/BuildFailures count completed framework resolutions (store
	// loads and offline builds alike); BuildMillis is their cumulative
	// wall time.
	Builds        int64 `json:"builds"`
	BuildFailures int64 `json:"build_failures"`
	BuildMillis   int64 `json:"build_ms"`
}

// GatewayStats is the sharding gateway's routing snapshot.
type GatewayStats struct {
	// Backends / VNodes / Replicas describe the consistent-hash ring:
	// backend count, virtual nodes per backend, and replica owners per
	// (task, seed) key.
	Backends int `json:"backends"`
	VNodes   int `json:"vnodes"`
	Replicas int `json:"replicas"`
	// Alive counts backends currently considered serving.
	Alive int `json:"alive"`
	// Failovers counts sub-requests retried on another replica after a
	// connection error or backend-side failure.
	Failovers int64 `json:"failovers"`
	// Hedges counts hedged sub-requests fired at a second replica after
	// the primary ran past the fleet's latency percentile; HedgeWins
	// counts the ones whose response was the one used. Hedge traffic is
	// not a failover.
	Hedges    int64 `json:"hedges,omitempty"`
	HedgeWins int64 `json:"hedge_wins,omitempty"`
	// BreakerSkips counts sub-request attempts not even sent because the
	// target backend's circuit breaker was open.
	BreakerSkips int64 `json:"breaker_skips,omitempty"`
	// BackendStats describes each backend in configured order.
	BackendStats []BackendStats `json:"backend_stats"`
}

// BackendStats is one backend's view from the gateway.
type BackendStats struct {
	URL string `json:"url"`
	// Instance is the backend's self-reported instance id (empty until
	// the first successful health probe).
	Instance string `json:"instance,omitempty"`
	Alive    bool   `json:"alive"`
	// DownEvents counts up→down health transitions.
	DownEvents int64 `json:"down_events"`
	// Breaker is this backend's circuit-breaker state as the gateway sees
	// it: "closed", "open" or "half-open".
	Breaker string `json:"breaker,omitempty"`
	// Requests counts sub-requests the gateway routed to this backend;
	// Failures counts the ones that errored (before any failover).
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
	// Stats is the backend's own /v1/stats snapshot, when reachable.
	Stats *Stats `json:"stats,omitempty"`
}

// Health is the /v1/healthz body.
type Health struct {
	Status string `json:"status"`
	// Instance identifies the serving process, mirroring the
	// X-Instance-Id response header; empty when the server has no
	// configured instance id.
	Instance string `json:"instance,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	// RetryAfterMS, when positive, tells the client when a retry may
	// succeed (rate_limited / overloaded / unavailable responses). The
	// same hint rides the Retry-After header, rounded up to seconds.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// parseStrategy validates a wire strategy name, mapping failures to
// ErrBadRequest.
func parseStrategy(s string) (core.Strategy, error) {
	strat, err := core.ParseStrategy(s)
	if err != nil {
		return "", errBadRequest(err.Error())
	}
	return strat, nil
}
