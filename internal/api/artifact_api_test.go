package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"twophase/internal/artifact"
	"twophase/internal/core"
	"twophase/internal/service"
)

// newStoreDispatcher builds a dispatcher over a store-backed service and
// serves one selection so the store holds real artifacts.
func newStoreDispatcher(t *testing.T) (*Dispatcher, *service.Service) {
	t.Helper()
	svc, err := service.New(service.Options{
		Base:     core.Options{Seed: 42, Sizes: tinySizes},
		StoreDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(svc, 42)
	if _, err := d.Select(context.Background(), &SelectRequest{Task: "nlp", Targets: []string{"tweet_eval"}}); err != nil {
		t.Fatal(err)
	}
	return d, svc
}

// TestArtifactEndpoint exercises the distribution endpoint end to end:
// a stored world's matrix document round-trips the wire verbatim, the
// fingerprint rides as a strong ETag, If-None-Match short-circuits to
// 304, and misses are typed unknown_artifact 404s.
func TestArtifactEndpoint(t *testing.T) {
	d, svc := newStoreDispatcher(t)
	ts := httptest.NewServer(NewHandlerWith(d, HandlerOptions{Artifacts: svc.Store()}))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	want, fp, err := svc.Store().OpenArtifact("matrices", "nlp-seed42")
	if err != nil {
		t.Fatalf("store has no matrix artifact: %v", err)
	}
	data, notMod, err := c.FetchArtifact(ctx, "matrices", "nlp-seed42", "")
	if err != nil || notMod {
		t.Fatalf("fetch: data=%d notMod=%v err=%v", len(data), notMod, err)
	}
	if !reflect.DeepEqual(data, want) {
		t.Fatal("fetched bytes differ from the store's document")
	}
	h, err := artifact.Verify(data)
	if err != nil {
		t.Fatalf("fetched bytes fail verification: %v", err)
	}
	if h.Fingerprint != fp {
		t.Fatalf("fingerprint %016x, want %016x", h.Fingerprint, fp)
	}
	if m, err := artifact.DecodeMatrix(data); err != nil || m == nil {
		t.Fatalf("fetched matrix does not decode: %v", err)
	}

	// A matching ETag answers 304 with no body.
	data, notMod, err = c.FetchArtifact(ctx, "matrices", "nlp-seed42", fmt.Sprintf("%016x", fp))
	if err != nil || !notMod || data != nil {
		t.Fatalf("conditional fetch: data=%d notMod=%v err=%v, want 304", len(data), notMod, err)
	}
	// A stale ETag re-sends the document.
	data, notMod, err = c.FetchArtifact(ctx, "matrices", "nlp-seed42", "0000000000000000")
	if err != nil || notMod || len(data) == 0 {
		t.Fatalf("stale-etag fetch: data=%d notMod=%v err=%v, want full body", len(data), notMod, err)
	}

	// The recall document is served too.
	if data, _, err := c.FetchArtifact(ctx, "recalls", "nlp-seed42", ""); err != nil {
		t.Fatalf("recall fetch: %v", err)
	} else if a, err := artifact.DecodeRecall(data); err != nil || a == nil {
		t.Fatalf("fetched recall does not decode: %v", err)
	}

	// Misses are typed 404s on every axis: unknown name, unknown kind.
	for _, tc := range [][2]string{{"matrices", "nlp-seed99"}, {"tables", "nlp-seed42"}} {
		_, _, err := c.FetchArtifact(ctx, tc[0], tc[1], "")
		if !errors.Is(err, ErrUnknownArtifact) {
			t.Errorf("fetch %s/%s: got %v, want ErrUnknownArtifact", tc[0], tc[1], err)
		}
		if HTTPStatus(err) != http.StatusNotFound || Code(err) != CodeUnknownArtifact {
			t.Errorf("fetch %s/%s: status %d code %s, want 404 unknown_artifact", tc[0], tc[1], HTTPStatus(err), Code(err))
		}
	}
}

// TestArtifactConditionalForms verifies If-None-Match is parsed per RFC
// 9110, not by exact string equality: a list of ETags containing the
// current one, a weak-prefixed form, and "*" all answer 304, while a
// list of stale tags re-sends the document.
func TestArtifactConditionalForms(t *testing.T) {
	d, svc := newStoreDispatcher(t)
	ts := httptest.NewServer(NewHandlerWith(d, HandlerOptions{Artifacts: svc.Store()}))
	defer ts.Close()
	_, fp, err := svc.Store().OpenArtifact("matrices", "nlp-seed42")
	if err != nil {
		t.Fatal(err)
	}
	cur := fmt.Sprintf("%q", fmt.Sprintf("%016x", fp))
	for _, tc := range []struct {
		header string
		want   int
	}{
		{cur, http.StatusNotModified},
		{`"0000000000000000", ` + cur, http.StatusNotModified},
		{"W/" + cur, http.StatusNotModified},
		{"*", http.StatusNotModified},
		{`"0000000000000000", "1111111111111111"`, http.StatusOK},
		{"", http.StatusOK},
	} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/artifacts/matrices/nlp-seed42", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.header != "" {
			req.Header.Set("If-None-Match", tc.header)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != tc.want {
			t.Errorf("If-None-Match %q: status %d, want %d", tc.header, res.StatusCode, tc.want)
		}
	}
}

// TestFetchArtifactCapsBody verifies the client refuses a response that
// advertises more than the artifact size cap instead of buffering it.
func TestFetchArtifactCapsBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "2147483648") // 2 GiB
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	_, _, err := NewClient(ts.URL, nil).FetchArtifact(context.Background(), "matrices", "nlp-seed42", "")
	if err == nil {
		t.Fatal("2 GiB artifact response accepted")
	}
}

// TestArtifactEndpointNotMounted verifies a handler with no artifact
// source 404s the route rather than panicking on a nil interface.
func TestArtifactEndpointNotMounted(t *testing.T) {
	d, _ := newTestDispatcher(t)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	res, err := http.Get(ts.URL + "/v1/artifacts/matrices/nlp-seed42")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", res.StatusCode)
	}
}

// TestArtifactStatsOnStats verifies the dispatcher surfaces artifact
// counters exactly when a store is configured.
func TestArtifactStatsOnStats(t *testing.T) {
	d, _ := newStoreDispatcher(t)
	st, err := d.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Artifacts == nil {
		t.Fatal("store-backed stats missing artifacts block")
	}
	if st.Artifacts.FallbackBuilds != 1 {
		t.Fatalf("fallback_builds = %d, want 1 (cold store forced one build)", st.Artifacts.FallbackBuilds)
	}

	plain, _ := newTestDispatcher(t)
	st, err = plain.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Artifacts != nil {
		t.Fatal("storeless stats should omit the artifacts block")
	}
}
