package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"twophase/internal/datahub"
	"twophase/internal/service"
)

// Typed, HTTP-mappable errors of the v1 contract. Every error the
// dispatcher or client returns wraps exactly one of these sentinels, so
// callers branch with errors.Is instead of string matching.
var (
	// ErrBadRequest marks a request the contract itself rejects: no
	// targets, an unknown strategy name, an unparsable body.
	ErrBadRequest = errors.New("api: bad request")
	// ErrUnknownTask marks a task family outside {"nlp", "cv"}.
	ErrUnknownTask = errors.New("api: unknown task")
	// ErrUnknownTarget marks a target dataset not in the task's catalog.
	ErrUnknownTarget = errors.New("api: unknown target")
	// ErrCanceled marks a request whose context was canceled or timed out
	// while the selection was in flight.
	ErrCanceled = errors.New("api: request canceled")
	// ErrSeedRejected marks a well-formed request whose seed override the
	// server's admission policy refuses — minting a new offline world is
	// a privilege, not a request parameter, on an open deployment.
	ErrSeedRejected = errors.New("api: seed rejected")
	// ErrUnavailable marks a request no backend could serve: the sharding
	// gateway exhausted every replica of the key's owner set (or none was
	// alive to begin with). Unlike the other sentinels it is transient —
	// clients may retry after backends recover.
	ErrUnavailable = errors.New("api: no backend available")
)

// StatusClientClosedRequest is nginx's nonstandard 499 "client closed
// request", the conventional status for work abandoned by the caller.
const StatusClientClosedRequest = 499

// classify maps lower-layer failures onto the contract's sentinels. An
// error that is already one of the sentinels passes through unchanged;
// anything unrecognized stays as-is and renders as an internal error.
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrBadRequest), errors.Is(err, ErrUnknownTask),
		errors.Is(err, ErrUnknownTarget), errors.Is(err, ErrCanceled),
		errors.Is(err, ErrSeedRejected), errors.Is(err, ErrUnavailable):
		return err
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	case errors.Is(err, service.ErrUnknownTask):
		return fmt.Errorf("%w: %v", ErrUnknownTask, err)
	case errors.Is(err, service.ErrSeedRejected):
		return fmt.Errorf("%w: %v", ErrSeedRejected, err)
	case errors.Is(err, datahub.ErrUnknownDataset):
		return fmt.Errorf("%w: %v", ErrUnknownTarget, err)
	default:
		return err
	}
}

// HTTPStatus maps a contract error to its response status.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownTask), errors.Is(err, ErrUnknownTarget):
		return http.StatusNotFound
	case errors.Is(err, ErrSeedRejected):
		return http.StatusForbidden
	case errors.Is(err, ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Error codes of the wire format. The client reconstructs the matching
// sentinel from the code, so errors.Is holds across the HTTP boundary.
const (
	CodeBadRequest    = "bad_request"
	CodeUnknownTask   = "unknown_task"
	CodeUnknownTarget = "unknown_target"
	CodeSeedRejected  = "seed_rejected"
	CodeCanceled      = "canceled"
	CodeUnavailable   = "unavailable"
	CodeInternal      = "internal"
)

// Code returns the wire code for a contract error.
func Code(err error) string {
	switch {
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	case errors.Is(err, ErrUnknownTask):
		return CodeUnknownTask
	case errors.Is(err, ErrUnknownTarget):
		return CodeUnknownTarget
	case errors.Is(err, ErrSeedRejected):
		return CodeSeedRejected
	case errors.Is(err, ErrCanceled):
		return CodeCanceled
	case errors.Is(err, ErrUnavailable):
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// errBadRequest wraps a validation message in ErrBadRequest.
func errBadRequest(msg string) error { return fmt.Errorf("%w: %s", ErrBadRequest, msg) }

// errFromCode rebuilds a sentinel-wrapped error from a wire code and
// message — the client-side inverse of Code.
func errFromCode(code, msg string) error {
	var sentinel error
	switch code {
	case CodeBadRequest:
		sentinel = ErrBadRequest
	case CodeUnknownTask:
		sentinel = ErrUnknownTask
	case CodeUnknownTarget:
		sentinel = ErrUnknownTarget
	case CodeSeedRejected:
		sentinel = ErrSeedRejected
	case CodeCanceled:
		sentinel = ErrCanceled
	case CodeUnavailable:
		sentinel = ErrUnavailable
	default:
		return errors.New(msg)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}
