package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"twophase/internal/datahub"
	"twophase/internal/service"
	"twophase/internal/store"
)

// Typed, HTTP-mappable errors of the v1 contract. Every error the
// dispatcher or client returns wraps exactly one of these sentinels, so
// callers branch with errors.Is instead of string matching.
var (
	// ErrBadRequest marks a request the contract itself rejects: no
	// targets, an unknown strategy name, an unparsable body.
	ErrBadRequest = errors.New("api: bad request")
	// ErrUnknownTask marks a task family outside {"nlp", "cv"}.
	ErrUnknownTask = errors.New("api: unknown task")
	// ErrUnknownTarget marks a target dataset not in the task's catalog.
	ErrUnknownTarget = errors.New("api: unknown target")
	// ErrCanceled marks a request whose context was canceled or timed out
	// while the selection was in flight.
	ErrCanceled = errors.New("api: request canceled")
	// ErrSeedRejected marks a well-formed request whose seed override the
	// server's admission policy refuses — minting a new offline world is
	// a privilege, not a request parameter, on an open deployment.
	ErrSeedRejected = errors.New("api: seed rejected")
	// ErrUnavailable marks a request no backend could serve: the sharding
	// gateway exhausted every replica of the key's owner set (or none was
	// alive to begin with). Unlike the other sentinels it is transient —
	// clients may retry after backends recover.
	ErrUnavailable = errors.New("api: no backend available")
	// ErrRateLimited marks a request refused by the admission tier's
	// per-client rate limit (HTTP 429). Transient: the paired Retry-After
	// hint says when the bucket refills.
	ErrRateLimited = errors.New("api: rate limited")
	// ErrOverloaded marks a request shed because the admission queue was
	// full (HTTP 503). Transient: retry after the Retry-After hint.
	ErrOverloaded = errors.New("api: overloaded")
	// ErrUnknownArtifact marks an artifact-distribution request for a
	// kind/name this backend does not hold (or a backend with no store at
	// all). The fetching peer falls back to its next replica or a local
	// build; it is a routine miss, not a failure.
	ErrUnknownArtifact = errors.New("api: unknown artifact")
	// ErrInternal marks a failure the server could not attribute to the
	// request: a recovered handler panic, an injected fault, an unexpected
	// backend 500. It is still a *typed* refusal — the chaos invariant is
	// that every error a client sees satisfies errors.Is against exactly
	// one sentinel, and this is the sentinel of last resort.
	ErrInternal = errors.New("api: internal error")
)

// Error is the structured wire error of the v1.1 contract: a machine
// code, a message, and an optional retry hint. It unwraps to the code's
// sentinel, so errors.Is(err, api.ErrRateLimited) holds whether the error
// was minted in process or decoded off an HTTP ErrorResponse.
type Error struct {
	// Code is the wire code (CodeRateLimited, CodeOverloaded, ...).
	Code string
	// Message is the human-readable description.
	Message string
	// RetryAfter, when positive, is the server's hint for when a retry
	// may succeed. Rendered as retry_after_ms in the body and as the
	// Retry-After header (rounded up to whole seconds).
	RetryAfter time.Duration
}

// Error implements error.
func (e *Error) Error() string { return e.Message }

// Unwrap ties the structured error to its code's sentinel.
func (e *Error) Unwrap() error { return sentinelOf(e.Code) }

// Retryable reports whether a failed request may succeed on retry without
// any change to the request itself: backend unavailability, rate limiting
// and load shedding qualify; contract rejections and cancellations do
// not. The Go Client and the shard Router consult this single predicate
// instead of hard-coding status classes, so a new transient code is
// retryable everywhere at once.
func Retryable(err error) bool {
	return errors.Is(err, ErrUnavailable) ||
		errors.Is(err, ErrRateLimited) ||
		errors.Is(err, ErrOverloaded)
}

// RetryAfter extracts the retry hint riding err, or 0 when it carries
// none. The hint survives the HTTP boundary via retry_after_ms.
func RetryAfter(err error) time.Duration {
	var e *Error
	if errors.As(err, &e) {
		return e.RetryAfter
	}
	return 0
}

// StatusClientClosedRequest is nginx's nonstandard 499 "client closed
// request", the conventional status for work abandoned by the caller.
const StatusClientClosedRequest = 499

// classify maps lower-layer failures onto the contract's sentinels. An
// error that is already one of the sentinels passes through unchanged;
// anything unrecognized stays as-is and renders as an internal error.
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrBadRequest), errors.Is(err, ErrUnknownTask),
		errors.Is(err, ErrUnknownTarget), errors.Is(err, ErrCanceled),
		errors.Is(err, ErrSeedRejected), errors.Is(err, ErrUnavailable),
		errors.Is(err, ErrRateLimited), errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrUnknownArtifact), errors.Is(err, ErrInternal):
		return err
	case errors.Is(err, store.ErrNotFound):
		return fmt.Errorf("%w: %v", ErrUnknownArtifact, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	case errors.Is(err, service.ErrUnknownTask):
		return fmt.Errorf("%w: %v", ErrUnknownTask, err)
	case errors.Is(err, service.ErrSeedRejected):
		return fmt.Errorf("%w: %v", ErrSeedRejected, err)
	case errors.Is(err, datahub.ErrUnknownDataset):
		return fmt.Errorf("%w: %v", ErrUnknownTarget, err)
	default:
		return err
	}
}

// HTTPStatus maps a contract error to its response status.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownTask), errors.Is(err, ErrUnknownTarget),
		errors.Is(err, ErrUnknownArtifact):
		return http.StatusNotFound
	case errors.Is(err, ErrSeedRejected):
		return http.StatusForbidden
	case errors.Is(err, ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnavailable), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Error codes of the wire format. The client reconstructs the matching
// sentinel from the code, so errors.Is holds across the HTTP boundary.
const (
	CodeBadRequest    = "bad_request"
	CodeUnknownTask   = "unknown_task"
	CodeUnknownTarget = "unknown_target"
	CodeSeedRejected  = "seed_rejected"
	CodeCanceled      = "canceled"
	CodeUnavailable   = "unavailable"
	CodeRateLimited   = "rate_limited"
	CodeOverloaded    = "overloaded"
	// CodeUnknownArtifact is the 404 of the artifact-distribution tier.
	CodeUnknownArtifact = "unknown_artifact"
	CodeInternal        = "internal"
)

// Code returns the wire code for a contract error.
func Code(err error) string {
	switch {
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	case errors.Is(err, ErrUnknownTask):
		return CodeUnknownTask
	case errors.Is(err, ErrUnknownTarget):
		return CodeUnknownTarget
	case errors.Is(err, ErrSeedRejected):
		return CodeSeedRejected
	case errors.Is(err, ErrCanceled):
		return CodeCanceled
	case errors.Is(err, ErrUnavailable):
		return CodeUnavailable
	case errors.Is(err, ErrRateLimited):
		return CodeRateLimited
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrUnknownArtifact):
		return CodeUnknownArtifact
	default:
		return CodeInternal
	}
}

// errBadRequest wraps a validation message in ErrBadRequest.
func errBadRequest(msg string) error { return fmt.Errorf("%w: %s", ErrBadRequest, msg) }

// sentinelOf maps a wire code back to its package sentinel (nil for
// unknown codes, which have none).
func sentinelOf(code string) error {
	switch code {
	case CodeBadRequest:
		return ErrBadRequest
	case CodeUnknownTask:
		return ErrUnknownTask
	case CodeUnknownTarget:
		return ErrUnknownTarget
	case CodeSeedRejected:
		return ErrSeedRejected
	case CodeCanceled:
		return ErrCanceled
	case CodeUnavailable:
		return ErrUnavailable
	case CodeRateLimited:
		return ErrRateLimited
	case CodeOverloaded:
		return ErrOverloaded
	case CodeUnknownArtifact:
		return ErrUnknownArtifact
	case CodeInternal:
		return ErrInternal
	default:
		return nil
	}
}

// errFromCode rebuilds a structured error from a wire code, message and
// retry hint — the client-side inverse of writeError. The result unwraps
// to the code's sentinel, so errors.Is holds across the HTTP boundary;
// even an "internal" error stays typed (ErrInternal), so no refusal a
// server emits ever reaches a caller untyped.
func errFromCode(code, msg string, retryAfter time.Duration) error {
	if sentinelOf(code) == nil {
		return errors.New(msg)
	}
	return &Error{Code: code, Message: msg, RetryAfter: retryAfter}
}
