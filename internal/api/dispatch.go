package api

import (
	"context"
	"time"

	"twophase/internal/service"
)

// API is the versioned selection contract. Dispatcher implements it in
// process; Client implements it over HTTP. The CLI and the server are both
// written against this interface, so the two paths cannot drift.
type API interface {
	// Select serves a selection request. A single-target request
	// surfaces that target's failure as the request error; a batch
	// reports per-target errors in Results and counts them in Failed.
	Select(ctx context.Context, req *SelectRequest) (*SelectResponse, error)
	// Targets lists a task family's target datasets.
	Targets(ctx context.Context, task string) (*TargetsResponse, error)
	// Stats snapshots the serving process's counters.
	Stats(ctx context.Context) (*Stats, error)
}

// Dispatcher is the in-process API implementation: it validates requests,
// routes every strategy through service.Do, and renders uniform responses.
type Dispatcher struct {
	svc *service.Service
	// baseSeed echoes the service's configured world seed in responses.
	baseSeed uint64
}

// NewDispatcher wraps a service in the v1 contract. baseSeed is the seed
// the service was configured with, echoed on responses that do not
// override it.
func NewDispatcher(svc *service.Service, baseSeed uint64) *Dispatcher {
	return &Dispatcher{svc: svc, baseSeed: baseSeed}
}

// Select implements API.
func (d *Dispatcher) Select(ctx context.Context, req *SelectRequest) (*SelectResponse, error) {
	if req == nil {
		return nil, errBadRequest("nil request")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	strat, err := req.Normalize()
	if err != nil {
		return nil, err
	}

	start := time.Now()
	sreq := service.Request{
		Task:          req.Task,
		Targets:       req.Targets,
		Strategy:      strat,
		Seed:          req.Seed,
		Workers:       req.Workers,
		EnsembleK:     req.EnsembleK,
		MaxEpochs:     req.MaxEpochs,
		PrefilterTopK: req.PrefilterTopK,
	}
	if req.DeadlineMS > 0 {
		// The budget deadline is resolved to an absolute instant here, at
		// admission — deliberately NOT via the request context: a context
		// deadline cancels the work (499), the budget deadline truncates
		// it (200 with best-so-far).
		sreq.Deadline = start.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	results, err := d.svc.Do(ctx, sreq)
	if err != nil {
		return nil, classify(err)
	}
	// A context canceled mid-batch leaves every unfinished target with a
	// context error; surface that as one request-level cancellation.
	if ctx.Err() != nil {
		return nil, classify(ctx.Err())
	}

	seed := d.baseSeed
	if req.Seed != nil {
		seed = *req.Seed
	}
	resp := &SelectResponse{
		APIVersion: Version,
		Task:       req.Task,
		Strategy:   string(strat),
		Seed:       seed,
		Results:    make([]TargetResult, len(results)),
	}
	for i, r := range results {
		tr := TargetResult{Target: r.Target}
		if r.Err != nil {
			err := classify(r.Err)
			tr.Error = err.Error()
			tr.ErrorCode = Code(err)
			resp.Failed++
		} else {
			tr.Winner = r.Report.Outcome.Winner
			tr.Members = r.Report.Members
			tr.ValAcc = r.Report.Outcome.WinnerVal
			tr.TestAcc = r.Report.Outcome.WinnerTest
			tr.Epochs = r.Report.TotalEpochs()
			if r.Report.Recall != nil {
				tr.Recalled = len(r.Report.Recall.Recalled)
			}
			if r.Report.Truncated {
				tr.Truncated = true
				tr.Budget = &BudgetStatus{
					TruncatedBy: r.Report.TruncatedBy,
					MaxEpochs:   req.MaxEpochs,
					DeadlineMS:  req.DeadlineMS,
				}
				resp.Truncated++
			}
			if r.Degraded {
				tr.Degraded = true
				resp.Degraded++
			}
			// Batch cost is the sum of this request's per-target
			// ledgers, never the service's cumulative spend.
			resp.TotalEpochs += r.Report.TotalEpochs()
		}
		resp.Results[i] = tr
	}
	if len(results) == 1 && results[0].Err != nil {
		// The single-selection form is an RPC: its one failure is the
		// request's failure, mapped to a proper HTTP status.
		return nil, classify(results[0].Err)
	}
	resp.OfflineBuilds = d.svc.Builds()
	resp.WallMillis = time.Since(start).Milliseconds()
	return resp, nil
}

// Targets implements API.
func (d *Dispatcher) Targets(ctx context.Context, task string) (*TargetsResponse, error) {
	if task == "" {
		return nil, errBadRequest("missing task")
	}
	names, err := d.svc.Targets(ctx, task)
	if err != nil {
		return nil, classify(err)
	}
	return &TargetsResponse{APIVersion: Version, Task: task, Targets: names}, nil
}

// Stats implements API.
func (d *Dispatcher) Stats(context.Context) (*Stats, error) {
	cost := d.svc.Cost()
	st := &Stats{
		APIVersion:    Version,
		OfflineBuilds: d.svc.Builds(),
		TotalEpochs:   cost.Total(),
		TrainEpochs:   cost.TrainEpochs(),
	}
	cache := d.svc.CacheStats()
	st.Cache = CacheStats{
		Capacity:      cache.Capacity,
		Resident:      cache.Resident,
		InUse:         cache.InUse,
		Hits:          cache.Hits,
		Misses:        cache.Misses,
		Evictions:     cache.Evictions,
		Builds:        cache.Builds,
		BuildFailures: cache.BuildFailures,
		BuildMillis:   cache.BuildTotal.Milliseconds(),
	}
	if err := d.svc.PersistErr(); err != nil {
		st.PersistDegraded = true
		st.PersistError = err.Error()
	}
	deg := d.svc.DegradedStats()
	st.DegradedWorlds = deg.Worlds
	st.DegradedServes = deg.Serves
	st.Panics = d.svc.Panics()
	if d.svc.Store() != nil {
		a := d.svc.ArtifactStats()
		st.Artifacts = &ArtifactStats{
			Hits:           a.Hits,
			Fetches:        a.Fetches,
			FetchFailures:  a.FetchFailures,
			FallbackBuilds: a.FallbackBuilds,
		}
	}
	return st, nil
}
