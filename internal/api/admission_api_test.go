package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twophase/internal/admission"
	"twophase/internal/datahub"
)

// errAPI is an API stub that fails every call with a fixed error.
type errAPI struct{ err error }

func (s errAPI) Select(context.Context, *SelectRequest) (*SelectResponse, error) {
	return nil, s.err
}
func (s errAPI) Targets(context.Context, string) (*TargetsResponse, error) { return nil, s.err }
func (s errAPI) Stats(context.Context) (*Stats, error)                     { return nil, s.err }

var validReq = &SelectRequest{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}}

// TestWireSentinelRegression pins errors.Is across the HTTP boundary for
// EVERY contract sentinel, including the admission pair, plus the
// Retry-After contract: the exact millisecond hint rides the body, the
// header carries it rounded up to whole seconds.
func TestWireSentinelRegression(t *testing.T) {
	cases := []struct {
		name     string
		served   error
		sentinel error
		status   int
		retry    time.Duration
	}{
		{"bad_request", errBadRequest("nope"), ErrBadRequest, http.StatusBadRequest, 0},
		{"unknown_task", ErrUnknownTask, ErrUnknownTask, http.StatusNotFound, 0},
		{"unknown_target", ErrUnknownTarget, ErrUnknownTarget, http.StatusNotFound, 0},
		{"seed_rejected", ErrSeedRejected, ErrSeedRejected, http.StatusForbidden, 0},
		{"canceled", ErrCanceled, ErrCanceled, StatusClientClosedRequest, 0},
		{"unavailable", ErrUnavailable, ErrUnavailable, http.StatusServiceUnavailable, 0},
		{"rate_limited", &Error{Code: CodeRateLimited, Message: "slow down", RetryAfter: 1500 * time.Millisecond},
			ErrRateLimited, http.StatusTooManyRequests, 1500 * time.Millisecond},
		{"overloaded", &Error{Code: CodeOverloaded, Message: "shed", RetryAfter: 250 * time.Millisecond},
			ErrOverloaded, http.StatusServiceUnavailable, 250 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(NewHandler(errAPI{err: tc.served}))
			defer ts.Close()

			_, err := NewClient(ts.URL, ts.Client()).Select(context.Background(), validReq)
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is lost across the wire: got %v", err)
			}
			if got := RetryAfter(err); got != tc.retry {
				t.Fatalf("RetryAfter = %v, want %v", got, tc.retry)
			}
			if tc.retry > 0 && !Retryable(err) {
				t.Fatalf("refusal with a retry hint must be Retryable: %v", err)
			}

			// The raw HTTP surface: status, body shape, Retry-After header.
			res, rerr := http.Post(ts.URL+"/v1/select", "application/json",
				strings.NewReader(`{"task":"nlp","targets":["tweet_eval"]}`))
			if rerr != nil {
				t.Fatal(rerr)
			}
			defer res.Body.Close()
			if res.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", res.StatusCode, tc.status)
			}
			var e ErrorResponse
			if err := json.NewDecoder(res.Body).Decode(&e); err != nil || e.Code != Code(tc.served) {
				t.Fatalf("error body: %v %+v", err, e)
			}
			if e.RetryAfterMS != tc.retry.Milliseconds() {
				t.Fatalf("retry_after_ms = %d, want %d", e.RetryAfterMS, tc.retry.Milliseconds())
			}
			header := res.Header.Get("Retry-After")
			if tc.retry <= 0 {
				if header != "" {
					t.Fatalf("unexpected Retry-After header %q", header)
				}
			} else {
				wantHeader := "1"
				if tc.retry > time.Second {
					wantHeader = "2" // rounded UP to whole seconds
				}
				if header != wantHeader {
					t.Fatalf("Retry-After header %q, want %q", header, wantHeader)
				}
			}
		})
	}
}

// okAPI is an API stub whose Select blocks until its gate closes (a nil
// gate answers immediately), so tests can hold a request in flight.
type okAPI struct{ gate chan struct{} }

func (s okAPI) Select(ctx context.Context, req *SelectRequest) (*SelectResponse, error) {
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, classify(ctx.Err())
		}
	}
	return &SelectResponse{APIVersion: Version, Task: req.Task,
		Results: []TargetResult{{Target: req.Targets[0], Winner: "w"}}}, nil
}
func (s okAPI) Targets(context.Context, string) (*TargetsResponse, error) {
	return &TargetsResponse{APIVersion: Version}, nil
}
func (s okAPI) Stats(context.Context) (*Stats, error) { return &Stats{APIVersion: Version}, nil }

// TestAdmissionMiddlewareRateLimit: the handler's admission gate refuses
// over-rate clients as well-formed 429s keyed by X-Client-Id, health and
// stats stay ungated, and the admission snapshot rides /v1/stats.
func TestAdmissionMiddlewareRateLimit(t *testing.T) {
	ctrl := admission.NewController(admission.Options{Rate: 0.001, Burst: 1})
	ts := httptest.NewServer(NewHandlerWith(okAPI{}, HandlerOptions{Admission: ctrl}))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	post := func(client string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/select",
			strings.NewReader(`{"task":"nlp","targets":["tweet_eval"]}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ClientIDHeader, client)
		res, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := post("alice")
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", res.StatusCode)
	}
	res = post("alice")
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: status %d, want 429", res.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil || e.Code != CodeRateLimited {
		t.Fatalf("429 body: %v %+v", err, e)
	}
	if e.RetryAfterMS <= 0 || res.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without a retry hint: %+v header %q", e, res.Header.Get("Retry-After"))
	}
	// Another client has its own bucket.
	res = post("bob")
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("bob limited by alice's bucket: status %d", res.StatusCode)
	}
	// Health and stats are never gated, and stats carries the snapshot.
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil || st.Admission.RateLimited != 1 || st.Admission.Admitted != 2 {
		t.Fatalf("stats admission block: %+v", st.Admission)
	}
}

// TestAdmissionMiddlewareShed: at the concurrency bound with no queue, an
// arrival sheds as a well-formed 503 overloaded carrying Retry-After.
func TestAdmissionMiddlewareShed(t *testing.T) {
	ctrl := admission.NewController(admission.Options{MaxInflight: 1})
	gate := make(chan struct{})
	ts := httptest.NewServer(NewHandlerWith(okAPI{gate: gate}, HandlerOptions{Admission: ctrl}))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	first := make(chan error, 1)
	go func() {
		_, err := c.Select(ctx, validReq)
		first <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for ctrl.Stats().Inflight == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	_, err := c.Select(ctx, validReq)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("arrival at the bound: %v, want ErrOverloaded", err)
	}
	if RetryAfter(err) != admission.DefaultShedRetryAfter {
		t.Fatalf("shed retry hint %v, want %v", RetryAfter(err), admission.DefaultShedRetryAfter)
	}
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
}

// rateLimitN is an API stub that refuses the first n Select calls as
// rate_limited with a tiny retry hint, then succeeds.
type rateLimitN struct {
	okAPI
	n     int
	calls int64
	// hint overrides the Retry-After carried on each refusal (default 5ms).
	hint time.Duration
}

func (s *rateLimitN) Select(ctx context.Context, req *SelectRequest) (*SelectResponse, error) {
	if atomic.AddInt64(&s.calls, 1) <= int64(s.n) {
		hint := s.hint
		if hint <= 0 {
			hint = 5 * time.Millisecond
		}
		return nil, &Error{Code: CodeRateLimited, Message: "not yet", RetryAfter: hint}
	}
	return s.okAPI.Select(ctx, req)
}

// TestSelectRetry: the client's retry loop consults Retryable and sleeps
// the server's hint; deterministic rejections are never retried.
func TestSelectRetry(t *testing.T) {
	stub := &rateLimitN{n: 2}
	ts := httptest.NewServer(NewHandler(stub))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	resp, err := c.SelectRetry(ctx, validReq, 3)
	if err != nil {
		t.Fatalf("retries exhausted: %v", err)
	}
	if resp.Results[0].Winner == "" || atomic.LoadInt64(&stub.calls) != 3 {
		t.Fatalf("resp %+v after %d calls", resp, stub.calls)
	}

	// Attempts exhausted → the last refusal comes back, sentinel intact.
	stub2 := &rateLimitN{n: 100}
	ts2 := httptest.NewServer(NewHandler(stub2))
	defer ts2.Close()
	if _, err := NewClient(ts2.URL, ts2.Client()).SelectRetry(ctx, validReq, 2); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("exhausted retry lost its refusal: %v", err)
	}
	if got := atomic.LoadInt64(&stub2.calls); got != 2 {
		t.Fatalf("made %d attempts, want 2", got)
	}

	// Deterministic rejections are not retried.
	stub3 := errAPI{err: ErrUnknownTarget}
	ts3 := httptest.NewServer(NewHandler(stub3))
	defer ts3.Close()
	if _, err := NewClient(ts3.URL, ts3.Client()).SelectRetry(ctx, validReq, 5); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("got %v, want ErrUnknownTarget", err)
	}
}

// TestSelectRetryHonorsBudgetDeadline: a request carrying deadline_ms
// bounds the cumulative retry wait by its own budget — the client must not
// back off past the instant the server would have truncated the work.
func TestSelectRetryHonorsBudgetDeadline(t *testing.T) {
	// Each refusal hints a 30ms wait; a 50ms budget fits exactly one sleep
	// (30ms), and stops before the second would overrun (30+30 > 50).
	stub := &rateLimitN{n: 100}
	ts := httptest.NewServer(NewHandler(stub))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	atomic.StoreInt64(&stub.calls, 0)
	stubHint := 30 * time.Millisecond
	stub.hint = stubHint

	req := *validReq
	req.DeadlineMS = 50
	start := time.Now()
	_, err := c.SelectRetry(context.Background(), &req, 10)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("budget-bounded retry lost its refusal: %v", err)
	}
	if got := atomic.LoadInt64(&stub.calls); got != 2 {
		t.Fatalf("made %d attempts, want 2 (one sleep fits the 50ms budget)", got)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v, should have stopped at the budget", elapsed)
	}

	// Boundary: a budget equal to the total wait is spent, not exceeded —
	// slept+wait == budget still sleeps (the server truncates AT the
	// deadline, so arriving exactly then is still useful).
	stub2 := &rateLimitN{n: 100, hint: 25 * time.Millisecond}
	ts2 := httptest.NewServer(NewHandler(stub2))
	defer ts2.Close()
	req2 := *validReq
	req2.DeadlineMS = 50 // fits exactly two 25ms sleeps
	if _, err := NewClient(ts2.URL, ts2.Client()).SelectRetry(context.Background(), &req2, 10); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("boundary retry lost its refusal: %v", err)
	}
	if got := atomic.LoadInt64(&stub2.calls); got != 3 {
		t.Fatalf("made %d attempts, want 3 (two exact-fit sleeps)", got)
	}

	// No deadline_ms → the budget bound is inert and attempts rule.
	stub3 := &rateLimitN{n: 100, hint: time.Millisecond}
	ts3 := httptest.NewServer(NewHandler(stub3))
	defer ts3.Close()
	if _, err := NewClient(ts3.URL, ts3.Client()).SelectRetry(context.Background(), validReq, 4); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("unbudgeted retry lost its refusal: %v", err)
	}
	if got := atomic.LoadInt64(&stub3.calls); got != 4 {
		t.Fatalf("made %d attempts, want 4", got)
	}
}

// TestAdmissionTruncationHammer mixes cancellation, zero-budget
// truncation and load shedding against a real dispatcher behind the
// admission gate. Whatever the interleaving, a request either succeeds
// (200, possibly truncated, with a winner) or fails with a typed
// transient refusal or its own cancellation — never an internal error.
// Run with -race.
func TestAdmissionTruncationHammer(t *testing.T) {
	d, svc := newTestDispatcher(t)
	if _, err := svc.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	ctrl := admission.NewController(admission.Options{MaxInflight: 2, MaxQueue: 2})
	ts := httptest.NewServer(NewHandlerWith(d, HandlerOptions{Admission: ctrl}))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				ctx, cancel := context.WithCancel(context.Background())
				if (i+j)%3 == 0 {
					cancel() // a dead client mid-storm
				}
				req := &SelectRequest{
					Task:          datahub.TaskNLP,
					Targets:       []string{"tweet_eval"},
					SelectOptions: SelectOptions{MaxEpochs: epochs(0)},
				}
				resp, err := c.Select(ctx, req)
				switch {
				case err == nil:
					if r := resp.Results[0]; !r.Truncated || r.Winner == "" {
						t.Errorf("zero-budget success not truncated-with-winner: %+v", r)
					}
				case Retryable(err), errors.Is(err, ErrCanceled):
					// Typed shed/limit or our own cancellation: both fine.
				default:
					t.Errorf("untyped failure under load: %v", err)
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if st := ctrl.Stats(); st.Inflight != 0 || st.QueueLen != 0 {
		t.Fatalf("admission state leaked after hammer: %+v", st)
	}
}
