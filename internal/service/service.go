// Package service is the concurrent selection-serving layer: the first
// piece of the architecture that turns the paper's two-phase pipeline into
// something that can sit behind traffic. A Service lazily builds (or loads
// from an artifact store) one core.Framework per task family behind a
// singleflight guard — N concurrent requests for the same family trigger
// exactly one offline build — and then serves online selections: single
// targets, explicit batches, or the whole target catalog, fanned out across
// a bounded concurrency budget.
//
// Every result is bit-identical to the sequential pipeline: per-round
// candidate training parallelizes via selection.Config.Workers (each run
// owns its RNG stream and stage results merge in fixed pool order), batch
// results come back in request order, and each request carries its own
// ledger while a shared concurrency-safe ledger accumulates the service's
// total spend.
package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/store"
	"twophase/internal/trainer"
)

// ErrUnknownTask is the sentinel for requests naming a task family the
// service cannot build, re-exported from core so API layers can map it to
// a not-found response without string matching.
var ErrUnknownTask = core.ErrUnknownTask

// Options configures a Service.
type Options struct {
	// Base supplies the per-family build options (seed, sizes,
	// hyperparameters, recall settings). Base.Task is ignored — the task
	// family is chosen per request — and Base.Workers is superseded by
	// Workers below.
	Base core.Options
	// StoreDir, when non-empty, persists offline artifacts (performance
	// matrices plus model/dataset specs) so later processes skip the
	// offline build entirely.
	StoreDir string
	// Workers bounds per-round candidate-training parallelism inside one
	// fine selection. 0 means one worker per CPU; 1 forces the
	// sequential path. Results are identical either way.
	Workers int
	// Concurrency bounds how many selections run at once in SelectAll.
	// 0 means one per CPU.
	Concurrency int
}

// flight is one singleflight cell: the first requester builds, everyone
// else waits on done and shares the result.
type flight struct {
	done chan struct{}
	fw   *core.Framework
	err  error
}

// Service serves two-phase model selections with cached frameworks.
type Service struct {
	opts Options
	st   *store.Store

	mu         sync.Mutex
	flights    map[string]*flight
	persistErr error // last failed artifact write, if any

	builds int64 // offline builds actually executed (atomic)
	cost   trainer.SharedLedger
}

// New creates a Service. The store directory, if configured, is created on
// the spot so a misconfigured path fails at construction, not mid-request.
func New(opts Options) (*Service, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	s := &Service{opts: opts, flights: make(map[string]*flight)}
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.st = st
	}
	return s, nil
}

// Framework returns the cached framework for a task family at the
// service's base seed, building or loading it on first use. Concurrent
// callers for the same family share a single build; a failed build is not
// cached, so the next caller retries. The context bounds only this
// caller's wait: the shared build itself is never canceled by one dead
// client, because its result serves every later request.
func (s *Service) Framework(ctx context.Context, task string) (*core.Framework, error) {
	return s.framework(ctx, task, s.opts.Base.Seed)
}

func (s *Service) framework(ctx context.Context, task string, seed uint64) (*core.Framework, error) {
	key := matrixKey(task, seed)
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.fw, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.fw, f.err = s.load(task, seed)
	if f.err != nil {
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
	}
	close(f.done)
	return f.fw, f.err
}

// matrixKey names the stored matrix for a (task, seed) pair; the seed is
// part of the key because the matrix encodes one synthetic world.
func matrixKey(task string, seed uint64) string {
	return fmt.Sprintf("%s-seed%d", task, seed)
}

// load resolves a framework: from the store when a matching matrix is
// persisted, otherwise by running the offline build (and persisting its
// artifacts for the next process).
func (s *Service) load(task string, seed uint64) (*core.Framework, error) {
	opts := s.opts.Base
	opts.Task = task
	opts.Seed = seed
	opts.Workers = s.opts.Workers
	if s.st != nil {
		if m, err := s.st.GetMatrix(matrixKey(task, seed)); err == nil {
			if fw, err := core.Assemble(opts, m); err == nil {
				return fw, nil
			}
			// Mismatched or stale artifact: fall through to a fresh
			// build, which overwrites it.
		}
	}
	fw, err := core.Build(opts)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&s.builds, 1)
	if s.st != nil {
		// Persistence is best-effort: the framework in memory is valid
		// regardless, and failing the request here would leave the
		// service permanently unable to serve on a full or read-only
		// store volume. The error stays visible via PersistErr.
		if err := s.persist(fw); err != nil {
			s.mu.Lock()
			s.persistErr = err
			s.mu.Unlock()
		}
	}
	return fw, nil
}

// PersistErr reports the most recent artifact-write failure, or nil.
// Frameworks still serve from memory when persistence fails; this is the
// observability hook for that degraded state.
func (s *Service) PersistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistErr
}

// persist writes the framework's offline artifacts to the store.
func (s *Service) persist(fw *core.Framework) error {
	if err := s.st.PutMatrix(matrixKey(fw.Task, fw.Seed), fw.Matrix); err != nil {
		return err
	}
	specs := make([]modelhub.Spec, 0, fw.Repo.Len())
	for _, m := range fw.Repo.Models() {
		specs = append(specs, m.Spec)
	}
	if err := s.st.SaveRepository(specs); err != nil {
		return err
	}
	dspecs := make([]datahub.Spec, 0, len(fw.Catalog.All()))
	for _, d := range fw.Catalog.All() {
		dspecs = append(dspecs, d.Spec)
	}
	return s.st.SaveCatalogSpecs(dspecs)
}

// Builds returns how many offline builds this service has executed — zero
// when every framework came out of the store, one per family otherwise.
func (s *Service) Builds() int { return int(atomic.LoadInt64(&s.builds)) }

// Cost returns a snapshot of the epochs spent by all selections served so
// far, across all goroutines.
func (s *Service) Cost() trainer.Ledger { return s.cost.Snapshot() }

// Targets lists the task family's target dataset names in catalog order.
func (s *Service) Targets(ctx context.Context, task string) ([]string, error) {
	fw, err := s.Framework(ctx, task)
	if err != nil {
		return nil, err
	}
	targets := fw.Catalog.Targets()
	names := make([]string, len(targets))
	for i, d := range targets {
		names[i] = d.Name
	}
	return names, nil
}

// Select serves one two-phase selection for a named target.
func (s *Service) Select(ctx context.Context, task, target string) (*core.Report, error) {
	results, err := s.Do(ctx, Request{Task: task, Targets: []string{target}})
	if err != nil {
		return nil, err
	}
	return results[0].Report, results[0].Err
}

// Result is one entry of a batched selection.
type Result struct {
	Target string
	Report *core.Report
	Err    error
}

// Request is the service-level selection request: one task family, one or
// more targets, and the strategy plus tuning knobs that apply to all of
// them. It is the single dispatch point every caller — CLI, HTTP, tests —
// routes through instead of hard-wiring individual Framework methods.
type Request struct {
	// Task is the task family ("nlp" or "cv").
	Task string
	// Targets are the target dataset names, served concurrently under the
	// service's concurrency budget.
	Targets []string
	// Strategy picks the selection procedure; empty means two-phase.
	Strategy core.Strategy
	// Seed optionally overrides the service's base world seed for this
	// request. Frameworks are cached per (task, seed), so distinct seeds
	// build (or load) distinct offline worlds. The cache has no eviction:
	// an open deployment should restrict or ignore client-supplied seeds
	// at the API boundary, or each new seed costs a full offline build
	// that stays resident.
	Seed *uint64
	// Workers overrides per-stage training parallelism for this request
	// (0 keeps the service default). Outcomes are identical either way.
	Workers int
	// EnsembleK is the ensemble size for the ensemble strategy
	// (0 means the default; ignored otherwise).
	EnsembleK int
}

// Do serves a selection request: it resolves the framework once, fans the
// targets out concurrently under the service's concurrency budget, and
// returns per-target results in request order. A per-target failure is
// recorded in its Result without aborting the rest of the batch; a
// request-level failure (unknown task, canceled context while waiting on
// the framework) is returned as the error.
func (s *Service) Do(ctx context.Context, req Request) ([]Result, error) {
	seed := s.opts.Base.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}
	fw, err := s.framework(ctx, req.Task, seed)
	if err != nil {
		return nil, err
	}
	opts := core.SelectOptions{Strategy: req.Strategy, Workers: req.Workers, EnsembleK: req.EnsembleK}
	results := make([]Result, len(req.Targets))
	sem := make(chan struct{}, s.opts.Concurrency)
	var wg sync.WaitGroup
	for i, name := range req.Targets {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			d, err := fw.Catalog.Get(name)
			if err != nil {
				results[i] = Result{Target: name, Err: err}
				return
			}
			report, err := fw.SelectWith(ctx, d, opts)
			if err != nil {
				results[i] = Result{Target: name, Err: err}
				return
			}
			s.cost.Add(report.Ledger)
			results[i] = Result{Target: name, Report: report}
		}(i, name)
	}
	wg.Wait()
	return results, nil
}

// SelectAll serves a batch of two-phase selections concurrently. Results
// come back in request order; the framework resolves once for the batch.
func (s *Service) SelectAll(ctx context.Context, task string, targets []string) ([]Result, error) {
	return s.Do(ctx, Request{Task: task, Targets: targets})
}

// SelectAllTargets serves every target in the task family's catalog.
func (s *Service) SelectAllTargets(ctx context.Context, task string) ([]Result, error) {
	targets, err := s.Targets(ctx, task)
	if err != nil {
		return nil, err
	}
	return s.SelectAll(ctx, task, targets)
}
