// Package service is the concurrent selection-serving layer: the first
// piece of the architecture that turns the paper's two-phase pipeline into
// something that can sit behind traffic. A Service lazily builds (or loads
// from an artifact store) one core.Framework per task family behind a
// singleflight guard — N concurrent requests for the same family trigger
// exactly one offline build — and then serves online selections: single
// targets, explicit batches, or the whole target catalog, fanned out across
// a bounded concurrency budget.
//
// Every result is bit-identical to the sequential pipeline: per-round
// candidate training parallelizes via selection.Config.Workers (each run
// owns its RNG stream and stage results merge in fixed pool order), batch
// results come back in request order, and each request carries its own
// ledger while a shared concurrency-safe ledger accumulates the service's
// total spend.
package service

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/store"
	"twophase/internal/trainer"
)

// Options configures a Service.
type Options struct {
	// Base supplies the per-family build options (seed, sizes,
	// hyperparameters, recall settings). Base.Task is ignored — the task
	// family is chosen per request — and Base.Workers is superseded by
	// Workers below.
	Base core.Options
	// StoreDir, when non-empty, persists offline artifacts (performance
	// matrices plus model/dataset specs) so later processes skip the
	// offline build entirely.
	StoreDir string
	// Workers bounds per-round candidate-training parallelism inside one
	// fine selection. 0 means one worker per CPU; 1 forces the
	// sequential path. Results are identical either way.
	Workers int
	// Concurrency bounds how many selections run at once in SelectAll.
	// 0 means one per CPU.
	Concurrency int
}

// flight is one singleflight cell: the first requester builds, everyone
// else waits on done and shares the result.
type flight struct {
	done chan struct{}
	fw   *core.Framework
	err  error
}

// Service serves two-phase model selections with cached frameworks.
type Service struct {
	opts Options
	st   *store.Store

	mu         sync.Mutex
	flights    map[string]*flight
	persistErr error // last failed artifact write, if any

	builds int64 // offline builds actually executed (atomic)
	cost   trainer.SharedLedger
}

// New creates a Service. The store directory, if configured, is created on
// the spot so a misconfigured path fails at construction, not mid-request.
func New(opts Options) (*Service, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	s := &Service{opts: opts, flights: make(map[string]*flight)}
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.st = st
	}
	return s, nil
}

// Framework returns the cached framework for a task family, building or
// loading it on first use. Concurrent callers for the same family share a
// single build; a failed build is not cached, so the next caller retries.
func (s *Service) Framework(task string) (*core.Framework, error) {
	s.mu.Lock()
	if f, ok := s.flights[task]; ok {
		s.mu.Unlock()
		<-f.done
		return f.fw, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[task] = f
	s.mu.Unlock()

	f.fw, f.err = s.load(task)
	if f.err != nil {
		s.mu.Lock()
		delete(s.flights, task)
		s.mu.Unlock()
	}
	close(f.done)
	return f.fw, f.err
}

// matrixKey names the stored matrix for a (task, seed) pair; the seed is
// part of the key because the matrix encodes one synthetic world.
func (s *Service) matrixKey(task string) string {
	return fmt.Sprintf("%s-seed%d", task, s.opts.Base.Seed)
}

// load resolves a framework: from the store when a matching matrix is
// persisted, otherwise by running the offline build (and persisting its
// artifacts for the next process).
func (s *Service) load(task string) (*core.Framework, error) {
	opts := s.opts.Base
	opts.Task = task
	opts.Workers = s.opts.Workers
	if s.st != nil {
		if m, err := s.st.GetMatrix(s.matrixKey(task)); err == nil {
			if fw, err := core.Assemble(opts, m); err == nil {
				return fw, nil
			}
			// Mismatched or stale artifact: fall through to a fresh
			// build, which overwrites it.
		}
	}
	atomic.AddInt64(&s.builds, 1)
	fw, err := core.Build(opts)
	if err != nil {
		return nil, err
	}
	if s.st != nil {
		// Persistence is best-effort: the framework in memory is valid
		// regardless, and failing the request here would leave the
		// service permanently unable to serve on a full or read-only
		// store volume. The error stays visible via PersistErr.
		if err := s.persist(fw); err != nil {
			s.mu.Lock()
			s.persistErr = err
			s.mu.Unlock()
		}
	}
	return fw, nil
}

// PersistErr reports the most recent artifact-write failure, or nil.
// Frameworks still serve from memory when persistence fails; this is the
// observability hook for that degraded state.
func (s *Service) PersistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistErr
}

// persist writes the framework's offline artifacts to the store.
func (s *Service) persist(fw *core.Framework) error {
	if err := s.st.PutMatrix(s.matrixKey(fw.Task), fw.Matrix); err != nil {
		return err
	}
	specs := make([]modelhub.Spec, 0, fw.Repo.Len())
	for _, m := range fw.Repo.Models() {
		specs = append(specs, m.Spec)
	}
	if err := s.st.SaveRepository(specs); err != nil {
		return err
	}
	dspecs := make([]datahub.Spec, 0, len(fw.Catalog.All()))
	for _, d := range fw.Catalog.All() {
		dspecs = append(dspecs, d.Spec)
	}
	return s.st.SaveCatalogSpecs(dspecs)
}

// Builds returns how many offline builds this service has executed — zero
// when every framework came out of the store, one per family otherwise.
func (s *Service) Builds() int { return int(atomic.LoadInt64(&s.builds)) }

// Cost returns a snapshot of the epochs spent by all selections served so
// far, across all goroutines.
func (s *Service) Cost() trainer.Ledger { return s.cost.Snapshot() }

// Targets lists the task family's target dataset names in catalog order.
func (s *Service) Targets(task string) ([]string, error) {
	fw, err := s.Framework(task)
	if err != nil {
		return nil, err
	}
	targets := fw.Catalog.Targets()
	names := make([]string, len(targets))
	for i, d := range targets {
		names[i] = d.Name
	}
	return names, nil
}

// Select serves one two-phase selection for a named target.
func (s *Service) Select(task, target string) (*core.Report, error) {
	fw, err := s.Framework(task)
	if err != nil {
		return nil, err
	}
	report, err := fw.SelectByName(target)
	if err != nil {
		return nil, err
	}
	s.cost.Add(report.Ledger)
	return report, nil
}

// Result is one entry of a batched selection.
type Result struct {
	Target string
	Report *core.Report
	Err    error
}

// SelectAll serves a batch of targets concurrently under the service's
// concurrency budget. Results come back in request order; a per-target
// failure is recorded in its Result without aborting the rest of the
// batch. The framework resolves once for the whole batch.
func (s *Service) SelectAll(task string, targets []string) ([]Result, error) {
	fw, err := s.Framework(task)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(targets))
	sem := make(chan struct{}, s.opts.Concurrency)
	var wg sync.WaitGroup
	for i, name := range targets {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			report, err := fw.SelectByName(name)
			if err != nil {
				results[i] = Result{Target: name, Err: err}
				return
			}
			s.cost.Add(report.Ledger)
			results[i] = Result{Target: name, Report: report}
		}(i, name)
	}
	wg.Wait()
	return results, nil
}

// SelectAllTargets serves every target in the task family's catalog.
func (s *Service) SelectAllTargets(task string) ([]Result, error) {
	targets, err := s.Targets(task)
	if err != nil {
		return nil, err
	}
	return s.SelectAll(task, targets)
}
