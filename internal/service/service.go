// Package service is the concurrent selection-serving layer: the first
// piece of the architecture that turns the paper's two-phase pipeline into
// something that can sit behind traffic. A Service resolves one
// core.Framework per (task, seed) world through a lifecycle manager — a
// capacity-bounded LRU cache with singleflight build coalescing and
// refcounted handles, so N concurrent requests for the same world trigger
// exactly one offline build and an eviction never tears a framework out
// from under an in-flight selection — and then serves online selections:
// single targets, explicit batches, or the whole target catalog, fanned
// out across a bounded concurrency budget.
//
// The offline phase is a staged pipeline whose expensive stages persist
// independently through the artifact store: the performance matrix and the
// clustering artifact both round-trip, so a warm start loads them and
// recomputes nothing — core.AssembleArtifacts rebuilds only the stages
// whose inputs changed.
//
// Every result is bit-identical to the sequential pipeline: per-round
// candidate training parallelizes via selection.Config.Workers (each run
// owns its RNG stream and stage results merge in fixed pool order), batch
// results come back in request order, and each request carries its own
// ledger while a shared concurrency-safe ledger accumulates the service's
// total spend.
package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"twophase/internal/artifact"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/faultinject"
	"twophase/internal/lifecycle"
	"twophase/internal/modelhub"
	"twophase/internal/store"
	"twophase/internal/trainer"
)

// ErrUnknownTask is the sentinel for requests naming a task family the
// service cannot build, re-exported from core so API layers can map it to
// a not-found response without string matching.
var ErrUnknownTask = core.ErrUnknownTask

// Options configures a Service.
type Options struct {
	// Base supplies the per-family build options (seed, sizes,
	// hyperparameters, recall settings). Base.Task is ignored — the task
	// family is chosen per request — and Base.Workers is superseded by
	// Workers below.
	Base core.Options
	// StoreDir, when non-empty, persists offline artifacts (performance
	// matrices, clustering artifacts, model/dataset specs) so later
	// processes skip the offline build entirely.
	StoreDir string
	// Workers bounds per-round candidate-training parallelism inside one
	// fine selection. 0 means one worker per CPU; 1 forces the
	// sequential path. Results are identical either way.
	Workers int
	// BuildWorkers bounds offline-build parallelism (perf-matrix cells,
	// recall vectors, clustering distances — see core.Options) and, via
	// Warm, how many worlds build at once. 0 means one worker per CPU;
	// 1 forces serial builds. Built frameworks are bit-identical at any
	// setting.
	BuildWorkers int
	// Concurrency bounds how many selections run at once in SelectAll.
	// 0 means one per CPU.
	Concurrency int
	// CacheSize bounds how many built frameworks stay resident (LRU
	// eviction; in-flight selections keep using an evicted framework
	// until they finish). 0 means unbounded, which is safe only when
	// Seeds bounds the distinct worlds clients can request.
	CacheSize int
	// Seeds is the admission policy for per-request seed overrides; the
	// zero value admits any seed.
	Seeds SeedPolicy
	// Fetch, when non-nil, resolves a world's binary artifacts from the
	// fleet (typically the world's ring owners) when the local store
	// misses, before the service falls back to an offline build. Only
	// consulted when StoreDir is configured: fetched artifacts persist
	// locally so this node serves them onward.
	Fetch ArtifactFetcher
}

// ArtifactFetcher fetches the binary encoding of one artifact (kind is a
// store kind directory: "matrices", "recalls", "frames"; name is the
// world key, e.g. "nlp-seed42") from a fleet peer. The returned bytes are
// checksum-verified by the service before anything trusts them.
type ArtifactFetcher func(ctx context.Context, kind, name string) ([]byte, error)

// ErrNoPeers is returned (wrapped) by an ArtifactFetcher when the named
// world has no remote owner to fetch from — typically because this
// backend is the world's only replica. The service then builds locally
// without counting a fetch failure: nothing was reachable to fail.
var ErrNoPeers = errors.New("service: no remote artifact owners")

// ArtifactStats counts the artifact-resolution outcomes of Service.load:
// local binary/JSON store hits, worlds fetched from ring peers, failed
// fetch attempts, and offline builds that ran because both tiers missed.
type ArtifactStats struct {
	// Hits counts worlds assembled from the local artifact store.
	Hits int64
	// Fetches counts artifact documents fetched and verified from peers.
	Fetches int64
	// FetchFailures counts worlds whose peer fetch failed (the service
	// then built locally).
	FetchFailures int64
	// FallbackBuilds counts offline builds executed with a store
	// configured — i.e. cold builds the artifact tiers could not avoid.
	FallbackBuilds int64
}

// Service serves two-phase model selections with lifecycle-managed
// frameworks.
type Service struct {
	opts Options
	st   *store.Store
	mgr  *lifecycle.Manager

	mu         sync.Mutex
	persistErr error                     // last failed artifact write, if any
	admitted   map[uint64]*seedAdmission // distinct seeds admitted under MaxDistinct

	builds int64 // offline builds actually executed (atomic)
	cost   trainer.SharedLedger

	// Artifact-resolution counters (atomic); see ArtifactStats.
	artifactHits   int64
	artifactFetch  int64
	fetchFailures  int64
	fallbackBuilds int64

	// Degraded-serving state: the last good framework per world, served
	// with Degraded=true when a rebuild or fetch fails, so transient
	// storage faults degrade answers instead of refusing them.
	snapMu         sync.Mutex
	snaps          map[lifecycle.Key]*core.Framework
	snapOrder      []lifecycle.Key
	degraded       map[lifecycle.Key]bool
	degradedServes int64 // atomic
	panics         int64 // selection-worker panics recovered (atomic)
}

// New creates a Service. The store directory, if configured, is created on
// the spot so a misconfigured path fails at construction, not mid-request.
func New(opts Options) (*Service, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.BuildWorkers <= 0 {
		opts.BuildWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize < 0 {
		return nil, fmt.Errorf("service: negative cache size %d", opts.CacheSize)
	}
	s := &Service{
		opts:     opts,
		admitted: make(map[uint64]*seedAdmission),
		snaps:    make(map[lifecycle.Key]*core.Framework),
		degraded: make(map[lifecycle.Key]bool),
	}
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.st = st
	}
	mgr, err := lifecycle.New(lifecycle.Options{
		Capacity: opts.CacheSize,
		Build: func(ctx context.Context, key lifecycle.Key) (*core.Framework, error) {
			return s.load(ctx, key.Task, key.Seed)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s.mgr = mgr
	return s, nil
}

// Framework returns the cached framework for a task family at the
// service's base seed, building or loading it on first use. Concurrent
// callers for the same family share a single build; a failed build is not
// cached, so the next caller retries. The context bounds only this
// caller's wait: the shared build itself is never canceled by one dead
// client, because its result serves every later request.
//
// The returned framework is not leased: it stays valid for the caller (it
// is immutable), but the cache may evict it at any time. Request paths go
// through acquire instead so eviction can account for in-flight use.
func (s *Service) Framework(ctx context.Context, task string) (*core.Framework, error) {
	h, err := s.acquire(ctx, task, s.opts.Base.Seed)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	return h.Framework(), nil
}

// acquire admits the seed and leases the framework for one world. The
// admission is settled with the outcome: a seed whose every resolution
// failed returns its MaxDistinct quota slot. A waiter dying on its own
// context settles false, which is safe — the shared build's own acquire
// is still pending and settles true if it succeeds.
func (s *Service) acquire(ctx context.Context, task string, seed uint64) (*lifecycle.Handle, error) {
	settle, err := s.admitSeed(seed)
	if err != nil {
		return nil, err
	}
	h, err := s.mgr.Get(ctx, lifecycle.Key{Task: task, Seed: seed})
	settle(err == nil)
	return h, err
}

// matrixKey names the stored artifacts for a (task, seed) pair; the seed
// is part of the key because the artifacts encode one synthetic world.
func matrixKey(task string, seed uint64) string {
	return lifecycle.Key{Task: task, Seed: seed}.String()
}

// load resolves a framework via loadWorld and layers degraded serving on
// top: every clean resolution snapshots the framework as the world's last
// known good state, and a failed resolution with a snapshot at hand
// serves a copy marked Degraded=true instead of refusing — a transient
// storage or build fault costs freshness, not availability. Degraded
// frameworks are never cached by the lifecycle manager, so the next
// request retries a clean rebuild; the first clean success clears the
// world's degraded mark, which is how the fleet reconverges after a
// fault schedule drains.
func (s *Service) load(ctx context.Context, task string, seed uint64) (*core.Framework, error) {
	key := lifecycle.Key{Task: task, Seed: seed}
	fw, err := s.loadWorld(ctx, task, seed)
	if err == nil {
		s.saveSnapshot(key, fw)
		return fw, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		// The caller walked away; nothing is wrong with the world.
		return nil, err
	}
	s.snapMu.Lock()
	snap := s.snaps[key]
	if snap != nil {
		s.degraded[key] = true
	}
	s.snapMu.Unlock()
	if snap == nil {
		return nil, err
	}
	atomic.AddInt64(&s.degradedServes, 1)
	log.Printf("service: serving %s degraded from older snapshot (load failed: %v)", key, err)
	// Shallow copy: the framework is immutable, only the flag differs.
	deg := *snap
	deg.Degraded = true
	return &deg, nil
}

// saveSnapshot records a world's last known good framework (bounded FIFO
// so degraded serving can't pin unbounded memory) and clears its degraded
// mark — the world is healthy again.
func (s *Service) saveSnapshot(key lifecycle.Key, fw *core.Framework) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	delete(s.degraded, key)
	if _, ok := s.snaps[key]; !ok {
		s.snapOrder = append(s.snapOrder, key)
	}
	s.snaps[key] = fw
	// Keep snapshots for a few more worlds than the lifecycle cache holds:
	// an evicted-then-failing world can still serve degraded. Unbounded
	// caches (CacheSize 0) keep every snapshot — the world set is already
	// bounded by the seed policy there.
	bound := 2 * s.opts.CacheSize
	if s.opts.CacheSize > 0 && bound < 8 {
		bound = 8
	}
	if bound > 0 {
		for len(s.snapOrder) > bound {
			old := s.snapOrder[0]
			s.snapOrder = s.snapOrder[1:]
			delete(s.snaps, old)
			delete(s.degraded, old)
		}
	}
}

// DegradedStats reports the degraded-serving state: how many worlds are
// currently being served from older snapshots, and how many selections
// have been answered that way since the process started.
type DegradedStats struct {
	Worlds int
	Serves int64
}

// DegradedStats snapshots the degraded-serving gauges.
func (s *Service) DegradedStats() DegradedStats {
	s.snapMu.Lock()
	worlds := len(s.degraded)
	s.snapMu.Unlock()
	return DegradedStats{Worlds: worlds, Serves: atomic.LoadInt64(&s.degradedServes)}
}

// Panics counts selection-worker panics recovered by the service.
func (s *Service) Panics() int64 { return atomic.LoadInt64(&s.panics) }

// loadWorld resolves a framework through the artifact tiers: the local
// store first (binary artifacts, with JSON fallback inside the store),
// then — when a fetcher is configured — the world's fleet peers, and only
// then the offline build (whose artifacts persist for the next process).
// With both the matrix and the clustering artifact at hand, a warm start
// recomputes neither — zero fine-tuning runs and zero clustering passes.
//
// The store's typed errors drive the fallback: only a truly absent
// artifact (ErrNotFound) consults peers, a corrupt one rebuilds locally
// (the rewrite heals the store), and any other read failure — a transient
// I/O or permission error — propagates instead of silently paying a
// rebuild.
func (s *Service) loadWorld(ctx context.Context, task string, seed uint64) (*core.Framework, error) {
	opts := s.opts.Base
	opts.Task = task
	opts.Seed = seed
	opts.Workers = s.opts.Workers
	opts.BuildWorkers = s.opts.BuildWorkers
	key := matrixKey(task, seed)
	if s.st != nil {
		m, err := s.st.GetMatrix(key)
		switch {
		case err == nil:
			art := core.Artifacts{Matrix: m}
			if ra, rerr := s.st.GetRecall(key); rerr == nil {
				art.Recall = ra
			}
			if fw, aerr := core.AssembleArtifacts(opts, art); aerr == nil {
				atomic.AddInt64(&s.artifactHits, 1)
				if !fw.Stages.RecallLoaded {
					// The clustering artifact was missing or stale; the
					// assembly recomputed it, so persist the fresh one
					// for the next process (best-effort, like persist).
					if perr := s.st.PutRecall(key, fw.RecallArtifact()); perr != nil {
						s.setPersistErr(perr)
					}
				}
				return fw, nil
			}
			// Mismatched or stale matrix: fall through to a fresh build,
			// which overwrites every stage artifact.
		case errors.Is(err, store.ErrNotFound):
			if s.opts.Fetch != nil {
				fw, ferr := s.fetchWorld(ctx, opts, key)
				if ferr == nil {
					return fw, nil
				}
				// A world with no remote owners (this backend is the
				// world's only replica) was never fetchable — building
				// it is the plan, not a distribution failure.
				if !errors.Is(ferr, ErrNoPeers) {
					atomic.AddInt64(&s.fetchFailures, 1)
				}
			}
		case errors.Is(err, store.ErrCorrupt):
			// Rebuild below; the persisted rewrite heals the store.
		default:
			return nil, err
		}
		atomic.AddInt64(&s.fallbackBuilds, 1)
	}
	if f := faultinject.On(faultinject.SiteBuild); f != nil {
		if f.Action == faultinject.ActHang {
			f.Sleep(ctx.Done())
		} else {
			return nil, fmt.Errorf("service: build %s: %w", key, f.Err())
		}
	}
	fw, err := core.Build(opts)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&s.builds, 1)
	if s.st != nil {
		// Persistence is best-effort: the framework in memory is valid
		// regardless, and failing the request here would leave the
		// service permanently unable to serve on a full or read-only
		// store volume. The error stays visible via PersistErr.
		if err := s.persist(fw); err != nil {
			s.setPersistErr(err)
		}
	}
	return fw, nil
}

// fetchWorld resolves one world's artifacts from fleet peers: fetch the
// binary matrix (mandatory) and recall artifact (best-effort — a miss
// just recomputes the cheap clustering stage), verify both checksums,
// assemble, and persist the fetched bytes verbatim so this node serves
// them onward to later peers. Assembly failure is a fetch failure: a
// peer's artifact that doesn't match this server's world provenance must
// never steer selection.
func (s *Service) fetchWorld(ctx context.Context, opts core.Options, key string) (*core.Framework, error) {
	data, err := s.opts.Fetch(ctx, "matrices", key)
	if err != nil {
		return nil, err
	}
	m, err := artifact.DecodeMatrix(data)
	if err != nil {
		return nil, fmt.Errorf("service: fetched matrix %s: %w", key, err)
	}
	art := core.Artifacts{Matrix: m}
	var recallBytes []byte
	if rd, rerr := s.opts.Fetch(ctx, "recalls", key); rerr == nil {
		if ra, derr := artifact.DecodeRecall(rd); derr == nil {
			art.Recall = ra
			recallBytes = rd
		}
	}
	fw, err := core.AssembleArtifacts(opts, art)
	if err != nil {
		return nil, fmt.Errorf("service: fetched artifacts for %s do not assemble: %w", key, err)
	}
	atomic.AddInt64(&s.artifactFetch, 1)
	if err := s.st.PutVerified("matrices", key, data); err != nil {
		s.setPersistErr(err)
	}
	if recallBytes != nil {
		atomic.AddInt64(&s.artifactFetch, 1)
		if err := s.st.PutVerified("recalls", key, recallBytes); err != nil {
			s.setPersistErr(err)
		}
	} else if !fw.Stages.RecallLoaded {
		if err := s.st.PutRecall(key, fw.RecallArtifact()); err != nil {
			s.setPersistErr(err)
		}
	}
	return fw, nil
}

func (s *Service) setPersistErr(err error) {
	s.mu.Lock()
	s.persistErr = err
	s.mu.Unlock()
}

// PersistErr reports the most recent artifact-write failure, or nil.
// Frameworks still serve from memory when persistence fails; this is the
// observability hook for that degraded state.
func (s *Service) PersistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistErr
}

// persist writes the framework's offline stage artifacts to the store:
// the performance matrix (stage 2), the clustering artifact (stage 3),
// and the world's model/dataset specs (stage 1's queryable form).
func (s *Service) persist(fw *core.Framework) error {
	key := matrixKey(fw.Task, fw.Seed)
	if err := s.st.PutMatrix(key, fw.Matrix); err != nil {
		return err
	}
	if err := s.st.PutRecall(key, fw.RecallArtifact()); err != nil {
		return err
	}
	specs := make([]modelhub.Spec, 0, fw.Repo.Len())
	for _, m := range fw.Repo.Models() {
		specs = append(specs, m.Spec)
	}
	if err := s.st.SaveRepository(specs); err != nil {
		return err
	}
	dspecs := make([]datahub.Spec, 0, len(fw.Catalog.All()))
	for _, d := range fw.Catalog.All() {
		dspecs = append(dspecs, d.Spec)
	}
	return s.st.SaveCatalogSpecs(dspecs)
}

// Builds returns how many offline builds this service has executed — zero
// when every framework came out of the store, one per world otherwise.
func (s *Service) Builds() int { return int(atomic.LoadInt64(&s.builds)) }

// ArtifactStats snapshots the artifact-resolution counters.
func (s *Service) ArtifactStats() ArtifactStats {
	return ArtifactStats{
		Hits:           atomic.LoadInt64(&s.artifactHits),
		Fetches:        atomic.LoadInt64(&s.artifactFetch),
		FetchFailures:  atomic.LoadInt64(&s.fetchFailures),
		FallbackBuilds: atomic.LoadInt64(&s.fallbackBuilds),
	}
}

// Store exposes the service's artifact store (nil when persistence is not
// configured) so the serving layer can mount the artifact-distribution
// endpoint over it.
func (s *Service) Store() *store.Store { return s.st }

// Cost returns a snapshot of the epochs spent by all selections served so
// far, across all goroutines.
func (s *Service) Cost() trainer.Ledger { return s.cost.Snapshot() }

// CacheStats snapshots the lifecycle cache: occupancy, hit/miss/eviction
// counts and cumulative build time.
func (s *Service) CacheStats() lifecycle.Stats { return s.mgr.Stats() }

// CacheEntries snapshots the resident frameworks, most recently used
// first.
func (s *Service) CacheEntries() []lifecycle.EntryStats { return s.mgr.Entries() }

// WarmResult records the outcome of warming one world: how long this
// caller waited for the framework (the build duration on a cold cache,
// near zero when another waiter already built it) and the error, if any.
type WarmResult struct {
	Key      lifecycle.Key
	Duration time.Duration
	Err      error
}

// Warm pre-builds the given worlds concurrently so the first real
// request hits a resident framework; servers call it before reporting
// ready. Each world goes through the same admission-and-settle path as a
// request, so a failed warm build returns its seed-quota slot exactly
// like a failed request does.
func (s *Service) Warm(ctx context.Context, keys []lifecycle.Key) error {
	_, err := s.WarmResults(ctx, keys)
	return err
}

// WarmResults is Warm returning the per-world timings in keys order, so
// serving binaries can log each world's build duration. Worlds warm
// concurrently, but no more than the BuildWorkers budget at once — each
// build already fans its pipeline stages out under the same budget, so
// an unbounded warm of W worlds would oversubscribe the box W-fold right
// at startup. The joined error aggregates every failed world.
func (s *Service) WarmResults(ctx context.Context, keys []lifecycle.Key) ([]WarmResult, error) {
	results := make([]WarmResult, len(keys))
	errs := make([]error, len(keys))
	sem := make(chan struct{}, s.opts.BuildWorkers)
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k lifecycle.Key) {
			defer wg.Done()
			results[i].Key = k
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i].Err = ctx.Err()
				errs[i] = fmt.Errorf("warm %s: %w", k, ctx.Err())
				return
			}
			defer func() { <-sem }()
			start := time.Now()
			h, err := s.acquire(ctx, k.Task, k.Seed)
			results[i].Duration = time.Since(start)
			if err != nil {
				results[i].Err = err
				errs[i] = fmt.Errorf("warm %s: %w", k, err)
				return
			}
			h.Release()
		}(i, k)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// Targets lists the task family's target dataset names in catalog order.
func (s *Service) Targets(ctx context.Context, task string) ([]string, error) {
	fw, err := s.Framework(ctx, task)
	if err != nil {
		return nil, err
	}
	targets := fw.Catalog.Targets()
	names := make([]string, len(targets))
	for i, d := range targets {
		names[i] = d.Name
	}
	return names, nil
}

// Select serves one two-phase selection for a named target.
func (s *Service) Select(ctx context.Context, task, target string) (*core.Report, error) {
	results, err := s.Do(ctx, Request{Task: task, Targets: []string{target}})
	if err != nil {
		return nil, err
	}
	return results[0].Report, results[0].Err
}

// Result is one entry of a batched selection.
type Result struct {
	Target string
	Report *core.Report
	Err    error
	// Degraded reports that this target was served from an older world
	// snapshot because the latest rebuild or fetch failed.
	Degraded bool
}

// Request is the service-level selection request: one task family, one or
// more targets, and the strategy plus tuning knobs that apply to all of
// them. It is the single dispatch point every caller — CLI, HTTP, tests —
// routes through instead of hard-wiring individual Framework methods.
type Request struct {
	// Task is the task family ("nlp" or "cv").
	Task string
	// Targets are the target dataset names, served concurrently under the
	// service's concurrency budget.
	Targets []string
	// Strategy picks the selection procedure; empty means two-phase.
	Strategy core.Strategy
	// Seed optionally overrides the service's base world seed for this
	// request. Frameworks are cached per (task, seed) under the
	// lifecycle cache's capacity bound, and the seed must pass the
	// service's admission policy — an open deployment caps resident
	// worlds with Options.CacheSize and restricts client seeds with
	// Options.Seeds so untrusted requests cannot force unbounded builds.
	Seed *uint64
	// Workers overrides per-stage training parallelism for this request
	// (0 keeps the service default). Outcomes are identical either way.
	Workers int
	// EnsembleK is the ensemble size for the ensemble strategy
	// (0 means the default; ignored otherwise).
	EnsembleK int
	// MaxEpochs, when non-nil, caps each target's fine-phase training
	// epochs; the selection then reports Truncated with its best-so-far
	// winner. 0 is a real zero budget; nil is unbounded.
	MaxEpochs *int
	// Deadline, when nonzero, is each target's anytime wall-clock bound.
	// Unlike a context deadline it truncates (a result) rather than
	// cancels (an error). Every target of a batch shares the same
	// absolute instant.
	Deadline time.Time
	// PrefilterTopK, when positive, lsq-ranks each target's candidate
	// pool and hands only the top-k to the epoch-trained strategies
	// (0 disables; ignored by the lsq strategy itself).
	PrefilterTopK int
}

// Do serves a selection request: it resolves the framework once, fans the
// targets out concurrently under the service's concurrency budget, and
// returns per-target results in request order. A per-target failure is
// recorded in its Result without aborting the rest of the batch; a
// request-level failure (unknown task, rejected seed, canceled context
// while waiting on the framework) is returned as the error. A context
// canceled mid-batch skips every queued target, recording ctx.Err() in
// its Result instead of running the selection. The framework lease is
// held until the whole batch finishes, so a concurrent eviction can never
// invalidate it mid-request.
func (s *Service) Do(ctx context.Context, req Request) ([]Result, error) {
	seed := s.opts.Base.Seed
	if req.Seed != nil {
		seed = *req.Seed
	}
	h, err := s.acquire(ctx, req.Task, seed)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	fw := h.Framework()
	opts := core.SelectOptions{
		Strategy: req.Strategy, Workers: req.Workers, EnsembleK: req.EnsembleK,
		MaxEpochs: req.MaxEpochs, Deadline: req.Deadline,
		PrefilterTopK: req.PrefilterTopK,
	}
	results := make([]Result, len(req.Targets))
	sem := make(chan struct{}, s.opts.Concurrency)
	var wg sync.WaitGroup
	for i, name := range req.Targets {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			// A canceled batch must not keep queueing work: give up the
			// wait for a slot and record why this target was skipped.
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = Result{Target: name, Err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			report, err := func() (report *core.Report, err error) {
				// A panicking selection (a malformed world, a bug in a
				// strategy) must cost one target, not the process: recover
				// here so the batch's other targets and every future
				// request keep serving, and the failure surfaces as a
				// typed internal error.
				defer func() {
					if rec := recover(); rec != nil {
						atomic.AddInt64(&s.panics, 1)
						log.Printf("service: selection for %q panicked: %v\n%s", name, rec, debug.Stack())
						err = fmt.Errorf("service: selection for %q panicked: %v", name, rec)
					}
				}()
				d, err := fw.Catalog.Get(name)
				if err != nil {
					return nil, err
				}
				return fw.SelectWith(ctx, d, opts)
			}()
			if err != nil {
				results[i] = Result{Target: name, Err: err}
				return
			}
			s.cost.Add(report.Ledger)
			results[i] = Result{Target: name, Report: report, Degraded: fw.Degraded}
		}(i, name)
	}
	wg.Wait()
	return results, nil
}

// SelectAll serves a batch of two-phase selections concurrently. Results
// come back in request order; the framework resolves once for the batch.
func (s *Service) SelectAll(ctx context.Context, task string, targets []string) ([]Result, error) {
	return s.Do(ctx, Request{Task: task, Targets: targets})
}

// SelectAllTargets serves every target in the task family's catalog.
func (s *Service) SelectAllTargets(ctx context.Context, task string) ([]Result, error) {
	targets, err := s.Targets(ctx, task)
	if err != nil {
		return nil, err
	}
	return s.SelectAll(ctx, task, targets)
}
