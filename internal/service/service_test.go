package service

import (
	"context"
	"os"
	"path/filepath"

	"reflect"
	"sync"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/trainer"
)

// tinySizes keeps offline builds fast enough to run several per test
// binary (including under -race) while preserving the full 40x24 matrix
// shape.
var tinySizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.Base.Seed == 0 {
		opts.Base.Seed = 42
	}
	if opts.Base.Sizes == (datahub.Sizes{}) {
		opts.Base.Sizes = tinySizes
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFrameworkSingleflight(t *testing.T) {
	s := newTestService(t, Options{})
	const callers = 8
	fws := make([]*core.Framework, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fw, err := s.Framework(context.Background(), datahub.TaskNLP)
			if err != nil {
				t.Error(err)
				return
			}
			fws[i] = fw
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if fws[i] != fws[0] {
			t.Fatalf("caller %d got a different framework instance", i)
		}
	}
	if got := s.Builds(); got != 1 {
		t.Fatalf("%d offline builds for %d concurrent callers, want 1", got, callers)
	}
	// A later call still hits the cache.
	if _, err := s.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	if got := s.Builds(); got != 1 {
		t.Fatalf("%d builds after cache hit, want 1", got)
	}
}

func TestFrameworkBadTaskNotCached(t *testing.T) {
	s := newTestService(t, Options{})
	if _, err := s.Framework(context.Background(), "audio"); err == nil {
		t.Fatal("unknown task accepted")
	}
	// The failed flight must not poison the cell: a valid family still
	// builds, and the bad one still errors.
	if _, err := s.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Framework(context.Background(), "audio"); err == nil {
		t.Fatal("unknown task accepted on retry")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	first := newTestService(t, Options{StoreDir: dir})
	reportA, err := first.Select(context.Background(), datahub.TaskNLP, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	if first.Builds() != 1 {
		t.Fatalf("first service ran %d builds, want 1", first.Builds())
	}

	// A second process over the same store must serve without rebuilding
	// and return the identical report.
	second := newTestService(t, Options{StoreDir: dir})
	reportB, err := second.Select(context.Background(), datahub.TaskNLP, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	if second.Builds() != 0 {
		t.Fatalf("second service ran %d builds, want 0 (store hit)", second.Builds())
	}
	if !reflect.DeepEqual(reportA, reportB) {
		t.Fatalf("store-served report differs from fresh build:\n%+v\nvs\n%+v", reportA, reportB)
	}
}

func TestStoreMismatchRebuilds(t *testing.T) {
	dir := t.TempDir()
	first := newTestService(t, Options{StoreDir: dir, Base: core.Options{Seed: 42, Sizes: tinySizes}})
	if _, err := first.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	// Same store, different world seed: the persisted matrix describes a
	// different world, so the service must rebuild rather than serve it.
	other := newTestService(t, Options{StoreDir: dir, Base: core.Options{Seed: 7, Sizes: tinySizes}})
	if _, err := other.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	if other.Builds() != 1 {
		t.Fatalf("mismatched store served without rebuild (%d builds)", other.Builds())
	}
}

func TestStoreHyperparamMismatchRebuilds(t *testing.T) {
	dir := t.TempDir()
	first := newTestService(t, Options{StoreDir: dir, Base: core.Options{Seed: 42, Sizes: tinySizes}})
	if _, err := first.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	// Same store, same seed, different learning rate: model and dataset
	// name sets are identical (they come from static registries), so only
	// the matrix's recorded provenance can catch this — convergence
	// curves trained at the default LR must not steer selection at the
	// low LR.
	low := newTestService(t, Options{StoreDir: dir, Base: core.Options{
		Seed:  42,
		Sizes: tinySizes,
		HP:    trainer.LowLR(datahub.TaskNLP),
	}})
	if _, err := low.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	if low.Builds() != 1 {
		t.Fatalf("hyperparam-mismatched store served without rebuild (%d builds)", low.Builds())
	}
	// Different benchmark split sizes with identical seed and HP must
	// also rebuild.
	sized := newTestService(t, Options{StoreDir: dir, Base: core.Options{
		Seed:  42,
		Sizes: datahub.Sizes{Train: 80, Val: 40, Test: 48},
	}})
	if _, err := sized.Framework(context.Background(), datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	if sized.Builds() != 1 {
		t.Fatalf("size-mismatched store served without rebuild (%d builds)", sized.Builds())
	}
}

// TestParallelMatchesSequential is the golden identity check: worker-pool
// parallel fine selection must produce reports deeply identical to the
// sequential path — winners, stage pools, accuracies and ledgers.
func TestParallelMatchesSequential(t *testing.T) {
	seq := newTestService(t, Options{Workers: 1, Concurrency: 1})
	par := newTestService(t, Options{Workers: 4, Concurrency: 4})
	targets, err := seq.Targets(context.Background(), datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	got, err := par.SelectAll(context.Background(), datahub.TaskNLP, targets)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.SelectAll(context.Background(), datahub.TaskNLP, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range targets {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("target %s errored: parallel=%v sequential=%v", targets[i], got[i].Err, want[i].Err)
		}
		if !reflect.DeepEqual(got[i].Report, want[i].Report) {
			t.Fatalf("parallel report for %s differs from sequential:\n%+v\nvs\n%+v",
				targets[i], got[i].Report, want[i].Report)
		}
	}
}

func TestSelectAllDeterministicAndOrdered(t *testing.T) {
	s := newTestService(t, Options{})
	targets, err := s.Targets(context.Background(), datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.SelectAll(context.Background(), datahub.TaskNLP, targets)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SelectAll(context.Background(), datahub.TaskNLP, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(targets) {
		t.Fatalf("%d results for %d targets", len(a), len(targets))
	}
	for i := range a {
		if a[i].Target != targets[i] {
			t.Fatalf("result %d is %q, want request order %q", i, a[i].Target, targets[i])
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("batch not deterministic at %s", targets[i])
		}
	}
}

func TestSelectAllPartialFailure(t *testing.T) {
	s := newTestService(t, Options{})
	results, err := s.SelectAll(context.Background(), datahub.TaskNLP, []string{"tweet_eval", "no-such-dataset"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Report == nil {
		t.Fatalf("valid target failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("unknown target in batch did not error")
	}
}

func TestSharedCostLedger(t *testing.T) {
	s := newTestService(t, Options{})
	results, err := s.SelectAllTargets(context.Background(), datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want += r.Report.TotalEpochs()
	}
	cost := s.Cost()
	if got := cost.Total(); got != want {
		t.Fatalf("shared ledger %v epochs, want sum of per-request ledgers %v", got, want)
	}
}

// TestStoreCorruptArtifactRebuilds covers the fallback path end to end: a
// corrupt persisted matrix must not fail the service — it triggers a
// fresh offline build whose artifacts overwrite the bad file, healing the
// store for the next process.
func TestStoreCorruptArtifactRebuilds(t *testing.T) {
	dir := t.TempDir()
	first := newTestService(t, Options{StoreDir: dir})
	reportA, err := first.Select(context.Background(), datahub.TaskNLP, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "matrices", "nlp-seed42.bin")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("expected persisted matrix at %s: %v", path, err)
	}
	// Garbage that fails the binary format's checksum — the store must
	// surface it as corrupt (not absent), and the service must rebuild.
	if err := os.WriteFile(path, []byte("{definitely not a matrix"), 0o644); err != nil {
		t.Fatal(err)
	}

	second := newTestService(t, Options{StoreDir: dir})
	reportB, err := second.Select(context.Background(), datahub.TaskNLP, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	if second.Builds() != 1 {
		t.Fatalf("corrupt artifact served without rebuild (%d builds)", second.Builds())
	}
	if err := second.PersistErr(); err != nil {
		t.Fatalf("rebuild failed to overwrite the corrupt artifact: %v", err)
	}
	if !reflect.DeepEqual(reportA, reportB) {
		t.Fatalf("rebuilt selection differs from original:\n%+v\nvs\n%+v", reportA, reportB)
	}

	// The overwrite healed the store: a third process serves from it.
	third := newTestService(t, Options{StoreDir: dir})
	reportC, err := third.Select(context.Background(), datahub.TaskNLP, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	if third.Builds() != 0 {
		t.Fatalf("healed store not served (%d builds)", third.Builds())
	}
	if !reflect.DeepEqual(reportB, reportC) {
		t.Fatalf("store-served selection differs from rebuild:\n%+v\nvs\n%+v", reportB, reportC)
	}
}

// TestStorePersistDegradation covers the read-only/broken store volume:
// persistence fails, the framework still serves from memory, and the
// failure stays observable through PersistErr.
func TestStorePersistDegradation(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Options{StoreDir: dir})
	// Break the matrices directory by replacing it with a regular file —
	// unlike permission bits, this fails writes even when tests run as
	// root.
	if err := os.RemoveAll(filepath.Join(dir, "matrices")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "matrices"), []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}

	report, err := s.Select(context.Background(), datahub.TaskNLP, "tweet_eval")
	if err != nil {
		t.Fatalf("degraded store must still serve from memory: %v", err)
	}
	if report == nil || report.Outcome.Winner == "" {
		t.Fatalf("incomplete report from degraded service: %+v", report)
	}
	if s.PersistErr() == nil {
		t.Fatal("persist failure not surfaced via PersistErr")
	}
	// Serving keeps working after the failed persist (framework cached).
	if _, err := s.Select(context.Background(), datahub.TaskNLP, "super_glue/boolq"); err != nil {
		t.Fatal(err)
	}
}

// TestDoSeedOverride: a per-request seed builds (and caches) a distinct
// framework world instead of silently reusing the base seed's.
func TestDoSeedOverride(t *testing.T) {
	s := newTestService(t, Options{})
	ctx := context.Background()
	if _, err := s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}}); err != nil {
		t.Fatal(err)
	}
	if s.Builds() != 1 {
		t.Fatalf("%d builds after base-seed request, want 1", s.Builds())
	}
	seed := uint64(7)
	results, err := s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if s.Builds() != 2 {
		t.Fatalf("%d builds after seed-override request, want 2 (distinct world)", s.Builds())
	}
	// Same override again hits the (task, seed) cache.
	if _, err := s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	if s.Builds() != 2 {
		t.Fatalf("%d builds after repeat, want 2 (cache hit)", s.Builds())
	}
}
