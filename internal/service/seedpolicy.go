package service

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"twophase/internal/datahub"
	"twophase/internal/lifecycle"
)

// ErrSeedRejected is the sentinel for per-request seeds the service's
// admission policy refuses. API layers map it to a forbidden response:
// the request was well-formed, the deployment just does not let untrusted
// callers mint new offline worlds.
var ErrSeedRejected = errors.New("service: seed rejected by admission policy")

// SeedPolicy is the admission policy for per-request seed overrides. The
// offline build behind a fresh seed costs minutes of fine-tuning and a
// resident framework, so an open deployment must bound what clients can
// request. The zero value admits any seed (suitable for trusted callers
// only); the base seed is always admitted.
type SeedPolicy struct {
	// Fixed admits only the service's base seed.
	Fixed bool
	// Allow, when non-empty, admits exactly these seeds (plus the base
	// seed). Ignored when Fixed is set.
	Allow []uint64
	// MaxDistinct, when > 0, admits at most this many distinct non-base
	// seeds over the service's lifetime, first come first admitted.
	// Composes with Allow.
	MaxDistinct int
}

// String renders the policy in the -seed-policy flag syntax.
func (p SeedPolicy) String() string {
	switch {
	case p.Fixed:
		return "fixed"
	case len(p.Allow) > 0:
		parts := make([]string, len(p.Allow))
		for i, s := range p.Allow {
			parts[i] = strconv.FormatUint(s, 10)
		}
		out := "allow=" + strings.Join(parts, ",")
		if p.MaxDistinct > 0 {
			out += fmt.Sprintf(",max=%d", p.MaxDistinct)
		}
		return out
	case p.MaxDistinct > 0:
		return fmt.Sprintf("max=%d", p.MaxDistinct)
	default:
		return "any"
	}
}

// ParseSeedPolicy parses the -seed-policy flag syntax:
//
//	any              admit every seed (the default)
//	fixed            admit only the server's base seed
//	allow=1,7,42     admit exactly these seeds (plus the base seed)
//	max=8            admit at most 8 distinct non-base seeds, first come
//
// allow and max compose: "allow=1,7,max=1" admits at most one of {1, 7}.
func ParseSeedPolicy(s string) (SeedPolicy, error) {
	switch s {
	case "", "any":
		return SeedPolicy{}, nil
	case "fixed":
		return SeedPolicy{Fixed: true}, nil
	}
	var p SeedPolicy
	rest := s
	for rest != "" {
		var clause string
		switch {
		case strings.HasPrefix(rest, "allow="):
			// allow's value is itself comma-separated; it extends until
			// the next clause keyword or the end.
			clause = rest
			if i := strings.Index(rest, ",max="); i >= 0 {
				clause, rest = rest[:i], rest[i+1:]
			} else {
				rest = ""
			}
			for _, f := range strings.Split(strings.TrimPrefix(clause, "allow="), ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					continue
				}
				seed, err := strconv.ParseUint(f, 10, 64)
				if err != nil {
					return SeedPolicy{}, fmt.Errorf("service: seed policy: bad seed %q in %q", f, s)
				}
				p.Allow = append(p.Allow, seed)
			}
			if len(p.Allow) == 0 {
				return SeedPolicy{}, fmt.Errorf("service: seed policy: empty allow list in %q", s)
			}
			sort.Slice(p.Allow, func(i, j int) bool { return p.Allow[i] < p.Allow[j] })
		case strings.HasPrefix(rest, "max="):
			clause = rest
			if i := strings.IndexByte(rest, ','); i >= 0 {
				clause, rest = rest[:i], rest[i+1:]
			} else {
				rest = ""
			}
			n, err := strconv.Atoi(strings.TrimPrefix(clause, "max="))
			if err != nil || n <= 0 {
				return SeedPolicy{}, fmt.Errorf("service: seed policy: bad max in %q", s)
			}
			p.MaxDistinct = n
		default:
			return SeedPolicy{}, fmt.Errorf("service: unknown seed policy %q (want any, fixed, allow=..., or max=N)", s)
		}
	}
	return p, nil
}

// seedAdmission tracks one distinct seed's MaxDistinct quota slot:
// pending counts in-flight framework resolutions under the admission,
// granted becomes sticky once any of them produces a usable framework.
// A slot whose every resolution failed is returned to the quota.
type seedAdmission struct {
	pending int
	granted bool
}

// admitSeed enforces the seed policy for one resolution attempt. The
// base seed always passes. For MaxDistinct it holds a quota slot for the
// duration of the attempt; the caller must invoke settle exactly once
// with whether the resolution yielded a framework. The slot is freed
// only when no attempt is still pending and none ever succeeded — so
// malformed requests (unknown task + fresh seed) cannot exhaust the
// quota, while a concurrent success on the same seed keeps the slot
// consumed even if a sibling attempt fails.
func (s *Service) admitSeed(seed uint64) (settle func(granted bool), err error) {
	noop := func(bool) {}
	if seed == s.opts.Base.Seed {
		return noop, nil
	}
	p := s.opts.Seeds
	if p.Fixed {
		return nil, fmt.Errorf("%w: policy is fixed to seed %d (got %d)", ErrSeedRejected, s.opts.Base.Seed, seed)
	}
	if len(p.Allow) > 0 {
		i := sort.Search(len(p.Allow), func(i int) bool { return p.Allow[i] >= seed })
		if i == len(p.Allow) || p.Allow[i] != seed {
			return nil, fmt.Errorf("%w: seed %d is not in the allowlist", ErrSeedRejected, seed)
		}
	}
	if p.MaxDistinct <= 0 {
		return noop, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.admitted[seed]
	if st == nil {
		if len(s.admitted) >= p.MaxDistinct {
			return nil, fmt.Errorf("%w: %d distinct seeds already admitted (max %d)", ErrSeedRejected, len(s.admitted), p.MaxDistinct)
		}
		st = &seedAdmission{}
		s.admitted[seed] = st
	}
	st.pending++
	return func(granted bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		st.pending--
		if granted {
			st.granted = true
		}
		if st.pending == 0 && !st.granted {
			delete(s.admitted, seed)
		}
	}, nil
}

// ValidateWarmCapacity rejects a warm set the lifecycle cache cannot
// hold: warming more distinct worlds than -cache-size would silently
// evict the earliest ones and then report ready, handing the first
// request for an evicted world exactly the cold-start latency the
// warmup gate exists to hide. cacheSize 0 (unbounded) always fits.
func ValidateWarmCapacity(keys []lifecycle.Key, cacheSize int) error {
	if cacheSize <= 0 {
		return nil
	}
	distinct := make(map[lifecycle.Key]bool, len(keys))
	for _, k := range keys {
		distinct[k] = true
	}
	if len(distinct) > cacheSize {
		return fmt.Errorf("service: warm spec lists %d distinct worlds but the cache holds %d; raise -cache-size or trim -warm", len(distinct), cacheSize)
	}
	return nil
}

// ParseWarmSpec parses the -warm flag syntax: a comma-separated list of
// worlds to pre-build, each "task" (at the server's base seed) or
// "task:seed" — e.g. "nlp,cv:7". An empty spec warms nothing.
func ParseWarmSpec(spec string, baseSeed uint64) ([]lifecycle.Key, error) {
	var keys []lifecycle.Key
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		key := lifecycle.Key{Seed: baseSeed}
		if task, seedStr, ok := strings.Cut(f, ":"); ok {
			seed, err := strconv.ParseUint(seedStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("service: warm spec: bad seed in %q", f)
			}
			key.Task, key.Seed = task, seed
		} else {
			key.Task = f
		}
		if key.Task != datahub.TaskNLP && key.Task != datahub.TaskCV {
			return nil, fmt.Errorf("service: warm spec: unknown task %q (want %q or %q)", key.Task, datahub.TaskNLP, datahub.TaskCV)
		}
		keys = append(keys, key)
	}
	return keys, nil
}
