package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

// TestDoRaceHammer hammers Service.Do's batch fan-out under the nastiest
// concurrent regime the serving layer supports: a size-1 LRU so every
// other request evicts the other seed's world mid-use, several goroutines
// alternating seeds (constant churn), and one goroutine canceling its
// batch mid-flight. Run under -race in CI; the assertions are that no
// request fails for any reason other than its own cancellation, results
// stay in request order, and successful reports are bit-identical across
// all the churn.
func TestDoRaceHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer test (two offline builds + concurrent churn)")
	}
	// The store keeps re-resolving an evicted world cheap (artifact load,
	// not a retrain), so the hammer spends its wall clock on contention —
	// the thing under test — instead of offline fine-tuning.
	s := newTestService(t, Options{CacheSize: 1, Workers: 2, Concurrency: 2, StoreDir: t.TempDir()})
	ctx := context.Background()
	targets := []string{"tweet_eval", "super_glue/boolq", "tweet_eval", "super_glue/multirc"}
	seeds := []uint64{42, 7}

	// Golden reports per (seed, target), served before the churn starts.
	golden := make(map[uint64]map[string]*core.Report, len(seeds))
	for _, seed := range seeds {
		seed := seed
		golden[seed] = make(map[string]*core.Report)
		results, err := s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: targets, Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("golden %d/%s: %v", seed, r.Target, r.Err)
			}
			golden[seed][targets[i]] = r.Report
		}
	}

	const (
		hammers = 4
		rounds  = 6
	)
	var canceledBatches atomic.Int64
	var wg sync.WaitGroup
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				seed := seeds[(h+round)%len(seeds)] // alternate seeds: size-1 cache churns
				cctx, cancel := context.WithCancel(ctx)
				canceler := h == hammers-1
				var cwg sync.WaitGroup
				if canceler {
					// Cancel mid-batch: after the first target lands, the
					// rest of the batch must drain as canceled, never as
					// wrong answers.
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						cancel()
					}()
				}
				results, err := s.Do(cctx, Request{Task: datahub.TaskNLP, Targets: targets, Seed: &seed})
				cwg.Wait()
				cancel()
				if err != nil {
					// Do only fails request-level when the framework lease
					// itself was cut short — legal only for the canceler.
					if canceler && errors.Is(err, context.Canceled) {
						canceledBatches.Add(1)
						continue
					}
					t.Errorf("hammer %d round %d: %v", h, round, err)
					continue
				}
				if len(results) != len(targets) {
					t.Errorf("hammer %d round %d: %d results", h, round, len(results))
					continue
				}
				sawCancel := false
				for i, r := range results {
					if r.Target != targets[i] {
						t.Errorf("hammer %d round %d: result %d out of order (%s)", h, round, i, r.Target)
					}
					if r.Err != nil {
						if !errors.Is(r.Err, context.Canceled) {
							t.Errorf("hammer %d round %d target %s: non-cancellation failure %v", h, round, r.Target, r.Err)
						} else if !canceler {
							t.Errorf("hammer %d round %d target %s: canceled without a canceler", h, round, r.Target)
						} else {
							sawCancel = true
						}
						continue
					}
					// Every answer that survives the churn is bit-identical
					// to the golden run: eviction and cancellation can slow
					// serving down but never change it.
					want := golden[seed][targets[i]]
					if r.Report.Outcome.Winner != want.Outcome.Winner ||
						r.Report.Outcome.WinnerTest != want.Outcome.WinnerTest ||
						r.Report.TotalEpochs() != want.TotalEpochs() {
						t.Errorf("hammer %d round %d target %s: report drifted under churn", h, round, r.Target)
					}
				}
				if sawCancel {
					canceledBatches.Add(1)
				}
			}
		}(h)
	}
	wg.Wait()

	// The churn must have actually churned: a size-1 cache cycling two
	// seeds has to evict, and the canceler usually lands at least once.
	if st := s.CacheStats(); st.Evictions == 0 {
		t.Fatalf("no evictions under size-1 seed churn: %+v", st)
	}
	// A batch issued on an already-dead context drains every target as
	// canceled (or fails the lease the same way) without touching the
	// cache's health.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	results, err := s.Do(cctx, Request{Task: datahub.TaskNLP, Targets: targets})
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("dead-context batch failed with %v", err)
		}
	} else {
		for _, r := range results {
			if r.Err == nil || !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("dead-context target %s: %v", r.Target, r.Err)
			}
		}
	}
	t.Logf("hammer done: %d batches observed cancellation, cache stats %+v",
		canceledBatches.Load(), s.CacheStats())
}
