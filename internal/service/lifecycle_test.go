package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"twophase/internal/cluster"
	"twophase/internal/datahub"
	"twophase/internal/lifecycle"
)

// removeRecallArtifact deletes the persisted clustering artifact for a
// store key, simulating a store written before the staged pipeline.
func removeRecallArtifact(dir, key string) error {
	return os.Remove(filepath.Join(dir, "recalls", key+".bin"))
}

// TestWarmStartSkipsRecallRecompute is the acceptance check for the staged
// pipeline: with both the matrix and the clustering artifact persisted, a
// second process assembles without a single offline build or clustering
// pass, and its selections are bit-identical to the cold process's.
func TestWarmStartSkipsRecallRecompute(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cold := newTestService(t, Options{StoreDir: dir})
	reportA, err := cold.Select(ctx, datahub.TaskNLP, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Builds() != 1 {
		t.Fatalf("cold service ran %d builds, want 1", cold.Builds())
	}

	warm := newTestService(t, Options{StoreDir: dir})
	before := cluster.Passes()
	reportB, err := warm.Select(ctx, datahub.TaskNLP, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	if got := cluster.Passes() - before; got != 0 {
		t.Fatalf("warm start ran %d clustering passes, want 0", got)
	}
	if warm.Builds() != 0 {
		t.Fatalf("warm service ran %d builds, want 0", warm.Builds())
	}
	if !reflect.DeepEqual(reportA, reportB) {
		t.Fatalf("warm-start selection differs from cold:\n%+v\nvs\n%+v", reportA, reportB)
	}

	fw, err := warm.Framework(ctx, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	if !fw.Stages.MatrixLoaded || !fw.Stages.RecallLoaded {
		t.Fatalf("warm framework stages: %+v", fw.Stages)
	}
}

// TestRecallArtifactHealing: a store holding only the matrix (e.g. written
// by an older process) serves without a rebuild, recomputes just the
// clustering stage, and persists it so the third process loads both.
func TestRecallArtifactHealing(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	first := newTestService(t, Options{StoreDir: dir})
	if _, err := first.Framework(ctx, datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	// Drop the clustering artifact, keep the matrix.
	if names, err := first.st.ListRecalls(); err != nil || len(names) != 1 {
		t.Fatalf("recalls = %v, %v", names, err)
	}
	key := matrixKey(datahub.TaskNLP, 42)
	if err := removeRecallArtifact(dir, key); err != nil {
		t.Fatal(err)
	}

	second := newTestService(t, Options{StoreDir: dir})
	before := cluster.Passes()
	fw, err := second.Framework(ctx, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	if second.Builds() != 0 {
		t.Fatalf("matrix-only store forced %d builds, want 0", second.Builds())
	}
	if got := cluster.Passes() - before; got != 1 {
		t.Fatalf("matrix-only start ran %d clustering passes, want exactly 1", got)
	}
	if !fw.Stages.MatrixLoaded || fw.Stages.RecallLoaded {
		t.Fatalf("matrix-only stages: %+v", fw.Stages)
	}

	// The recompute healed the store: the next process loads both stages.
	third := newTestService(t, Options{StoreDir: dir})
	before = cluster.Passes()
	fw3, err := third.Framework(ctx, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	if got := cluster.Passes() - before; got != 0 {
		t.Fatalf("healed store still ran %d clustering passes", got)
	}
	if !fw3.Stages.RecallLoaded {
		t.Fatalf("healed stages: %+v", fw3.Stages)
	}
}

// TestCacheEvictionUnderSeedChurn is the acceptance check for the bounded
// cache: more distinct seeds than capacity evict (visible in stats)
// without failing any request, and re-requesting an evicted world serves
// correctly again.
func TestCacheEvictionUnderSeedChurn(t *testing.T) {
	s := newTestService(t, Options{CacheSize: 1})
	ctx := context.Background()
	sel := func(seed *uint64) {
		t.Helper()
		res, err := s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Err != nil {
			t.Fatal(res[0].Err)
		}
	}
	sel(nil)
	seed := uint64(7)
	sel(&seed)
	st := s.CacheStats()
	if st.Capacity != 1 || st.Resident != 1 {
		t.Fatalf("cache stats after churn: %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("%d evictions for 2 worlds in a size-1 cache, want 1", st.Evictions)
	}
	// The evicted base world serves again — at the cost of a rebuild.
	sel(nil)
	if s.Builds() != 3 {
		t.Fatalf("%d builds, want 3 (base, seed 7, base again)", s.Builds())
	}
	if st := s.CacheStats(); st.InUse != 0 {
		t.Fatalf("leaked leases: %+v", st)
	}
	entries := s.CacheEntries()
	if len(entries) != 1 || entries[0].Key.Seed != s.opts.Base.Seed || entries[0].BuildDuration <= 0 {
		t.Fatalf("cache entries after churn: %+v", entries)
	}
}

// TestEvictionDoesNotBreakInFlightSelection: requests pin their framework
// through a lease, so a concurrent eviction (smaller cache than active
// worlds) never invalidates an in-flight selection and both results stay
// bit-identical to a quiet run.
func TestEvictionDoesNotBreakInFlightSelection(t *testing.T) {
	quiet := newTestService(t, Options{})
	ctx := context.Background()
	seed7 := uint64(7)
	wantBase, err := quiet.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}})
	if err != nil {
		t.Fatal(err)
	}
	want7, err := quiet.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &seed7})
	if err != nil {
		t.Fatal(err)
	}

	s := newTestService(t, Options{CacheSize: 1})
	var wg sync.WaitGroup
	var gotBase, got7 []Result
	var errBase, err7 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		gotBase, errBase = s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval", "super_glue/boolq"}})
	}()
	go func() {
		defer wg.Done()
		got7, err7 = s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &seed7})
	}()
	wg.Wait()
	if errBase != nil || err7 != nil {
		t.Fatal(errBase, err7)
	}
	for _, r := range append(append([]Result{}, gotBase...), got7...) {
		if r.Err != nil {
			t.Fatalf("in-flight selection failed under eviction pressure: %s: %v", r.Target, r.Err)
		}
	}
	if !reflect.DeepEqual(gotBase[0].Report, wantBase[0].Report) {
		t.Fatal("base-world report differs under eviction pressure")
	}
	if !reflect.DeepEqual(got7[0].Report, want7[0].Report) {
		t.Fatal("seed-7 report differs under eviction pressure")
	}
	if st := s.CacheStats(); st.Resident > 1 || st.InUse != 0 {
		t.Fatalf("cache state after concurrent worlds: %+v", st)
	}
}

// TestDoCanceledSkipsQueuedTargets: a canceled batch must not queue and
// run its remaining selections — every target reports the context error.
func TestDoCanceledSkipsQueuedTargets(t *testing.T) {
	s := newTestService(t, Options{Concurrency: 1})
	ctx := context.Background()
	// Warm the framework so cancellation hits the fan-out, not the build.
	if _, err := s.Framework(ctx, datahub.TaskNLP); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	targets, err := s.Targets(ctx, datahub.TaskNLP)
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Do(canceled, Request{Task: datahub.TaskNLP, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(targets) {
		t.Fatalf("%d results for %d targets", len(results), len(targets))
	}
	for _, r := range results {
		if r.Report != nil {
			t.Fatalf("canceled batch still ran %s", r.Target)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("skipped %s records %v, want context.Canceled", r.Target, r.Err)
		}
	}
	cost := s.Cost()
	if total := cost.Total(); total != 0 {
		t.Fatalf("canceled batch burned %v epochs", total)
	}
}

// TestSeedPolicyAdmission covers the three policy shapes end to end: the
// rejection is typed, costs no build, and admitted seeds still serve.
func TestSeedPolicyAdmission(t *testing.T) {
	ctx := context.Background()
	seed7, seed8, seed9 := uint64(7), uint64(8), uint64(9)

	fixed := newTestService(t, Options{Seeds: SeedPolicy{Fixed: true}})
	if _, err := fixed.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &seed7}); !errors.Is(err, ErrSeedRejected) {
		t.Fatalf("fixed policy: err = %v, want ErrSeedRejected", err)
	}
	if fixed.Builds() != 0 {
		t.Fatalf("rejected seed still built %d worlds", fixed.Builds())
	}
	// The base seed always passes (sent explicitly here).
	base := uint64(42)
	if _, err := fixed.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &base}); err != nil {
		t.Fatal(err)
	}

	allow := newTestService(t, Options{Seeds: SeedPolicy{Allow: []uint64{7}}})
	if _, err := allow.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &seed8}); !errors.Is(err, ErrSeedRejected) {
		t.Fatalf("allowlist: err = %v, want ErrSeedRejected", err)
	}
	if _, err := allow.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &seed7}); err != nil {
		t.Fatalf("allowlisted seed rejected: %v", err)
	}

	capped := newTestService(t, Options{Seeds: SeedPolicy{MaxDistinct: 1}})
	if _, err := capped.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &seed8}); err != nil {
		t.Fatalf("first distinct seed rejected: %v", err)
	}
	// The same seed is still admitted; a second distinct one is not.
	settle, err := capped.admitSeed(seed8)
	if err != nil {
		t.Fatalf("already-admitted seed rejected: %v", err)
	}
	settle(true)
	if _, err := capped.admitSeed(seed9); !errors.Is(err, ErrSeedRejected) {
		t.Fatalf("over-cap seed: err = %v, want ErrSeedRejected", err)
	}
}

// TestSeedQuotaNotConsumedByFailedBuilds: a request that is admitted but
// whose framework resolution fails (unknown task) must return its
// MaxDistinct slot — otherwise malformed untrusted requests exhaust the
// quota without building anything.
func TestSeedQuotaNotConsumedByFailedBuilds(t *testing.T) {
	s := newTestService(t, Options{Seeds: SeedPolicy{MaxDistinct: 1}})
	ctx := context.Background()
	bogus1, bogus2, good := uint64(101), uint64(102), uint64(7)
	if _, err := s.Do(ctx, Request{Task: "audio", Targets: []string{"x"}, Seed: &bogus1}); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("bogus task: %v", err)
	}
	if _, err := s.Do(ctx, Request{Task: "audio", Targets: []string{"x"}, Seed: &bogus2}); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("second bogus task hit the quota instead of the task check: %v", err)
	}
	// The quota is still free for a legitimate override.
	res, err := s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &good})
	if err != nil {
		t.Fatalf("legitimate seed rejected after failed builds: %v", err)
	}
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	// Once a seed's world was granted, a later failed resolution for the
	// same seed must NOT free its slot — otherwise pairing each new seed
	// with a bogus request would mint unbounded worlds past the quota.
	if _, err := s.Do(ctx, Request{Task: "audio", Targets: []string{"x"}, Seed: &good}); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("bogus task on granted seed: %v", err)
	}
	other := uint64(8)
	if _, err := s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &other}); !errors.Is(err, ErrSeedRejected) {
		t.Fatalf("quota freed by failed sibling of a granted seed: %v", err)
	}
}

// TestWarmFailureReturnsSeedQuota: Warm settles admissions like requests
// do, so a failed warm build frees its MaxDistinct slot.
func TestWarmFailureReturnsSeedQuota(t *testing.T) {
	s := newTestService(t, Options{Seeds: SeedPolicy{MaxDistinct: 1}})
	ctx := context.Background()
	if err := s.Warm(ctx, []lifecycle.Key{{Task: "audio", Seed: 55}}); err == nil {
		t.Fatal("warm of unknown task succeeded")
	}
	good := uint64(7)
	if _, err := s.Do(ctx, Request{Task: datahub.TaskNLP, Targets: []string{"tweet_eval"}, Seed: &good}); err != nil {
		t.Fatalf("failed warm consumed the seed quota: %v", err)
	}
}

// TestServiceWarm: warming pre-builds the configured worlds under the
// admission policy, and a warmed world serves without further builds.
func TestServiceWarm(t *testing.T) {
	s := newTestService(t, Options{Seeds: SeedPolicy{Fixed: true}})
	ctx := context.Background()
	if err := s.Warm(ctx, []lifecycle.Key{{Task: datahub.TaskNLP, Seed: 42}}); err != nil {
		t.Fatal(err)
	}
	if s.Builds() != 1 {
		t.Fatalf("warm ran %d builds, want 1", s.Builds())
	}
	if _, err := s.Select(ctx, datahub.TaskNLP, "tweet_eval"); err != nil {
		t.Fatal(err)
	}
	if s.Builds() != 1 {
		t.Fatalf("request after warm rebuilt (%d builds)", s.Builds())
	}
	// Warm keys are subject to the same admission policy as requests.
	if err := s.Warm(ctx, []lifecycle.Key{{Task: datahub.TaskNLP, Seed: 9}}); !errors.Is(err, ErrSeedRejected) {
		t.Fatalf("warm bypassed the seed policy: %v", err)
	}
}

// TestWarmResultsPerWorldTimings: WarmResults warms concurrently under
// the BuildWorkers budget and reports one timed result per key, in keys
// order, with failures isolated to their own world.
func TestWarmResultsPerWorldTimings(t *testing.T) {
	s := newTestService(t, Options{BuildWorkers: 2})
	ctx := context.Background()
	keys := []lifecycle.Key{
		{Task: datahub.TaskNLP, Seed: 42},
		{Task: datahub.TaskCV, Seed: 42},
	}
	results, err := s.WarmResults(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(keys) {
		t.Fatalf("got %d results for %d keys", len(results), len(keys))
	}
	for i, r := range results {
		if r.Key != keys[i] {
			t.Fatalf("result %d is for %v, want %v — keys order lost", i, r.Key, keys[i])
		}
		if r.Err != nil {
			t.Fatalf("warm %v: %v", r.Key, r.Err)
		}
		if r.Duration <= 0 {
			t.Fatalf("warm %v reported no duration", r.Key)
		}
	}
	if s.Builds() != 2 {
		t.Fatalf("warm ran %d builds, want 2", s.Builds())
	}

	// A bad world fails its own slot without poisoning the good one.
	mixed, err := s.WarmResults(ctx, []lifecycle.Key{
		{Task: "audio", Seed: 42},
		{Task: datahub.TaskNLP, Seed: 42},
	})
	if err == nil {
		t.Fatal("warm of unknown task succeeded")
	}
	if mixed[0].Err == nil {
		t.Fatal("unknown task warmed without error")
	}
	if mixed[1].Err != nil {
		t.Fatalf("healthy world poisoned by failing sibling: %v", mixed[1].Err)
	}
}

func TestParseSeedPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SeedPolicy
	}{
		{"", SeedPolicy{}},
		{"any", SeedPolicy{}},
		{"fixed", SeedPolicy{Fixed: true}},
		{"allow=7", SeedPolicy{Allow: []uint64{7}}},
		{"allow=9,7,42", SeedPolicy{Allow: []uint64{7, 9, 42}}},
		{"max=8", SeedPolicy{MaxDistinct: 8}},
		{"allow=1,2,max=1", SeedPolicy{Allow: []uint64{1, 2}, MaxDistinct: 1}},
	}
	for _, c := range cases {
		got, err := ParseSeedPolicy(c.in)
		if err != nil {
			t.Errorf("ParseSeedPolicy(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSeedPolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// String renders back to something that reparses identically.
		back, err := ParseSeedPolicy(got.String())
		if err != nil || !reflect.DeepEqual(back, got) {
			t.Errorf("round-trip %q -> %q -> %+v (%v)", c.in, got.String(), back, err)
		}
	}
	for _, bad := range []string{"nope", "allow=", "allow=x", "max=0", "max=-1", "max=x", "fixed,max=2"} {
		if _, err := ParseSeedPolicy(bad); err == nil {
			t.Errorf("ParseSeedPolicy(%q) accepted", bad)
		}
	}
}

func TestParseWarmSpec(t *testing.T) {
	keys, err := ParseWarmSpec("nlp,cv:7, nlp:9 ,", 42)
	if err != nil {
		t.Fatal(err)
	}
	want := []lifecycle.Key{
		{Task: "nlp", Seed: 42},
		{Task: "cv", Seed: 7},
		{Task: "nlp", Seed: 9},
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys = %+v, want %+v", keys, want)
	}
	if keys, err := ParseWarmSpec("", 42); err != nil || keys != nil {
		t.Fatalf("empty spec: %v, %v", keys, err)
	}
	for _, bad := range []string{"audio", "nlp:x", "nlp:-1"} {
		if _, err := ParseWarmSpec(bad, 42); err == nil {
			t.Errorf("ParseWarmSpec(%q) accepted", bad)
		}
	}
}
