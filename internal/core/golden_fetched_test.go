package core_test

// Golden bit-identity for the FETCHED artifact path: a world whose stage
// artifacts round-tripped through the binary codec — exactly what a ring
// peer receives over GET /v1/artifacts — must select byte-for-byte like
// the locally built world. This pins the fleet-distribution invariant
// (fetched == built) against the same fixtures the build path answers to,
// without any HTTP in the loop.

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"twophase/internal/artifact"
	"twophase/internal/core"
	"twophase/internal/datahub"
)

func TestGoldenSelectReportsFromFetchedArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite builds full frameworks")
	}
	strategies := []core.Strategy{core.StrategyTwoPhase, core.StrategySH, core.StrategyBF, core.StrategyEnsemble, core.StrategyLSQ}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		for _, seed := range []uint64{0, 7} {
			opts := core.Options{Task: task, Seed: seed, Sizes: goldenSizes}
			built, err := core.Build(opts)
			if err != nil {
				t.Fatalf("build %s/%d: %v", task, seed, err)
			}

			// Encode the built world's stage artifacts and decode them
			// back — the wire round trip, minus the wire.
			matrixDoc, err := artifact.EncodeMatrix(built.Matrix)
			if err != nil {
				t.Fatalf("encode matrix %s/%d: %v", task, seed, err)
			}
			recallDoc, err := artifact.EncodeRecall(built.RecallArtifact())
			if err != nil {
				t.Fatalf("encode recall %s/%d: %v", task, seed, err)
			}
			m, err := artifact.DecodeMatrix(matrixDoc)
			if err != nil {
				t.Fatalf("decode matrix %s/%d: %v", task, seed, err)
			}
			rec, err := artifact.DecodeRecall(recallDoc)
			if err != nil {
				t.Fatalf("decode recall %s/%d: %v", task, seed, err)
			}
			fetched, err := core.AssembleArtifacts(opts, core.Artifacts{Matrix: m, Recall: rec})
			if err != nil {
				t.Fatalf("assemble %s/%d: %v", task, seed, err)
			}
			if !fetched.Stages.RecallLoaded {
				t.Fatalf("%s/%d: decoded recall artifact was rebuilt, not loaded", task, seed)
			}

			target := fetched.Catalog.Targets()[0]
			for _, strat := range strategies {
				report, err := fetched.SelectWith(context.Background(), target, core.SelectOptions{Strategy: strat})
				if err != nil {
					t.Fatalf("select %s/%d/%s: %v", task, seed, strat, err)
				}
				got, err := json.MarshalIndent(renderGolden(report), "", " ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				want, err := os.ReadFile(goldenPath(task, seed, strat))
				if err != nil {
					t.Fatalf("missing golden fixture (record with -update-golden on TestGoldenSelectReports): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("%s/%d/%s: fetched-artifact report diverges from the built-world fixture\n%s",
						task, seed, strat, firstDiff(string(want), string(got)))
				}
			}
		}
	}
}
