package core_test

// Golden bit-identity suite for the numeric core. The fixtures under
// testdata/ were recorded from the historical slice-of-slices feature
// path (per-example [][]float64 extraction and per-example MulVec
// train/eval) BEFORE the contiguous numeric.Frame kernels landed; every
// run since must reproduce them byte-for-byte. Any change to the hot
// numeric loops that alters even the last ULP of any report field —
// accuracies, recall scores, proxy scores, cluster assignment, ledger —
// fails this test.
//
// Regenerate (only when an intentional semantic change is made, with a
// clear changelog entry) with:
//
//	go test ./internal/core -run TestGoldenSelectReports -update-golden

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/trainer"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden selection reports")

var goldenSizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

// goldenReport flattens a core.Report into a fully exported, deterministic
// form. Floats marshal via Go's shortest-round-trip encoding, so byte
// equality of the JSON implies bit equality of every float64.
type goldenReport struct {
	Target       string             `json:"target"`
	Strategy     string             `json:"strategy"`
	Winner       string             `json:"winner"`
	WinnerVal    float64            `json:"winner_val"`
	WinnerTest   float64            `json:"winner_test"`
	Members      []string           `json:"members,omitempty"`
	Stages       [][]string         `json:"stages"`
	TrainEpochs  int                `json:"train_epochs"`
	TotalEpochs  float64            `json:"total_epochs"`
	Recalled     []string           `json:"recalled,omitempty"`
	RecallScores map[string]float64 `json:"recall_scores,omitempty"`
	ProxyScores  map[string]float64 `json:"proxy_scores,omitempty"`
	ClusterK     int                `json:"cluster_k,omitempty"`
	Assign       []int              `json:"assign,omitempty"`
	Reps         map[string]string  `json:"representatives,omitempty"`
}

func renderGolden(r *core.Report) goldenReport {
	g := goldenReport{
		Target:      r.Target,
		Strategy:    string(r.Strategy),
		Winner:      r.Outcome.Winner,
		WinnerVal:   r.Outcome.WinnerVal,
		WinnerTest:  r.Outcome.WinnerTest,
		Members:     r.Members,
		Stages:      r.Outcome.Stages,
		TrainEpochs: r.Ledger.TrainEpochs(),
		TotalEpochs: r.TotalEpochs(),
	}
	if r.Recall != nil {
		g.Recalled = r.Recall.Recalled
		g.RecallScores = r.Recall.RecallScores
		g.ProxyScores = r.Recall.ProxyScores
		g.ClusterK = r.Recall.Clustering.K
		g.Assign = r.Recall.Clustering.Assign
		g.Reps = make(map[string]string, len(r.Recall.Representatives))
		for cid, name := range r.Recall.Representatives {
			g.Reps[fmt.Sprint(cid)] = name
		}
	}
	return g
}

func goldenPath(task string, seed uint64, strategy core.Strategy) string {
	return filepath.Join("testdata", fmt.Sprintf("golden_%s_seed%d_%s.json", task, seed, strategy))
}

func TestGoldenSelectReports(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite builds full frameworks")
	}
	strategies := []core.Strategy{core.StrategyTwoPhase, core.StrategySH, core.StrategyBF, core.StrategyEnsemble, core.StrategyLSQ}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		for _, seed := range []uint64{0, 7} {
			fw, err := core.Build(core.Options{Task: task, Seed: seed, Sizes: goldenSizes})
			if err != nil {
				t.Fatalf("build %s/%d: %v", task, seed, err)
			}
			target := fw.Catalog.Targets()[0]
			for _, strat := range strategies {
				report, err := fw.SelectWith(context.Background(), target, core.SelectOptions{Strategy: strat})
				if err != nil {
					t.Fatalf("select %s/%d/%s: %v", task, seed, strat, err)
				}
				got, err := json.MarshalIndent(renderGolden(report), "", " ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				path := goldenPath(task, seed, strat)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden fixture %s (record with -update-golden): %v", path, err)
				}
				if string(got) != string(want) {
					t.Errorf("%s/%d/%s: report diverges from the recorded slice-of-slices path\n%s",
						task, seed, strat, firstDiff(string(want), string(got)))
				}
			}
		}
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n want: %s\n got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(wl), len(gl))
}

// TestGoldenLedgerAccounting pins the cost accounting of the golden runs:
// the ledger totals inside the fixtures must stay internally consistent
// (total = train + 0.5*inference) so a kernel change can never silently
// shift cost attribution between phases.
func TestGoldenLedgerAccounting(t *testing.T) {
	var l trainer.Ledger
	l.ChargeEpochs(3)
	l.ChargeInference(4)
	if l.Total() != 5 {
		t.Fatalf("ledger total %v, want 5", l.Total())
	}
}
