package core

import (
	"context"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
)

// TestFeatureExtractionOncePerBuild proves the shared feature-extraction
// cache end to end: serving one target through every strategy — two-phase
// (proxy recall + fine selection), SH and BF over the whole repository,
// and the ensemble extension — extracts each (model, split) exactly once,
// and a second full pass over all strategies extracts nothing at all.
// This is the counter-proof analogue of the clustering stage's
// cluster.Passes() test.
func TestFeatureExtractionOncePerBuild(t *testing.T) {
	fw, err := Build(Options{Task: datahub.TaskNLP, Seed: 11, Sizes: datahub.Sizes{Train: 60, Val: 40, Test: 48}})
	if err != nil {
		t.Fatal(err)
	}
	target := fw.Catalog.Targets()[0]
	strategies := []Strategy{StrategyTwoPhase, StrategySH, StrategyBF, StrategyEnsemble, StrategyLSQ}

	runAll := func() {
		t.Helper()
		for _, s := range strategies {
			if _, err := fw.SelectWith(context.Background(), target, SelectOptions{Strategy: s}); err != nil {
				t.Fatalf("%s: %v", s, err)
			}
		}
	}

	before := modelhub.Extractions()
	runAll()
	// SH and BF train every repository model, so every model extracts the
	// target's train/val/test splits exactly once; two-phase and ensemble
	// (which run first and share the cache) add nothing on top.
	want := int64(fw.Repo.Len() * 3)
	if got := modelhub.Extractions() - before; got != want {
		t.Fatalf("first multi-strategy pass ran %d extraction passes, want %d (models x 3 splits)", got, want)
	}

	// Every later round, strategy, and repeated request reuses the cached
	// frames: zero further extractions.
	before = modelhub.Extractions()
	runAll()
	if got := modelhub.Extractions() - before; got != 0 {
		t.Fatalf("second multi-strategy pass ran %d extraction passes, want 0", got)
	}
}
