package core_test

// Semantics of the zero-epoch lsq strategy and the lsq pre-filter, pinned
// at the SelectWith layer: budgets never truncate lsq, a disabled
// pre-filter is byte-identical to no pre-filter, and both are
// bit-reproducible across worker counts.

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

func buildLSQTest(t *testing.T, workers int) *core.Framework {
	t.Helper()
	fw, err := core.Build(core.Options{
		Task: datahub.TaskNLP, Seed: 7, Sizes: goldenSizes,
		Workers: workers, BuildWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// TestLSQZeroBudgetNeverTruncates: lsq never trains, so an explicit
// max_epochs of 0 — a real zero budget that truncates every epoch-trained
// strategy — returns truncated=false, zero train epochs, and a nonzero
// ledger (the proxy-inference cost of scoring the repository).
func TestLSQZeroBudgetNeverTruncates(t *testing.T) {
	fw := buildLSQTest(t, 0)
	target := fw.Catalog.Targets()[0]
	zero := 0
	report, err := fw.SelectWith(context.Background(), target, core.SelectOptions{
		Strategy: core.StrategyLSQ, MaxEpochs: &zero,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Truncated || report.TruncatedBy != "" {
		t.Fatalf("zero-budget lsq reported truncated=%v by %q, want untruncated", report.Truncated, report.TruncatedBy)
	}
	if got := report.Ledger.TrainEpochs(); got != 0 {
		t.Fatalf("lsq charged %d training epochs, want 0", got)
	}
	if want := 0.5 * float64(fw.Repo.Len()); report.Ledger.Total() != want {
		t.Fatalf("lsq ledger total %v, want %v (0.5 per repository model)", report.Ledger.Total(), want)
	}
	if report.Outcome.Winner == "" || report.Outcome.WinnerVal <= 0 {
		t.Fatalf("lsq outcome %+v lacks a winner", report.Outcome)
	}
	if len(report.Outcome.Stages) != 1 || len(report.Outcome.Stages[0]) != fw.Repo.Len() {
		t.Fatalf("lsq stages %v, want one stage listing the whole pool", report.Outcome.Stages)
	}
}

// TestLSQBitIdenticalAcrossWorkers pins the acceptance criterion that lsq
// reports are bit-identical across Workers/BuildWorkers in {1, 4}, both
// via the framework default and a per-request override.
func TestLSQBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full frameworks")
	}
	render := func(fw *core.Framework, reqWorkers int) string {
		t.Helper()
		target := fw.Catalog.Targets()[0]
		report, err := fw.SelectWith(context.Background(), target, core.SelectOptions{
			Strategy: core.StrategyLSQ, Workers: reqWorkers,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(renderGolden(report))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	fw1 := buildLSQTest(t, 1)
	fw4 := buildLSQTest(t, 4)
	base := render(fw1, 0)
	for _, got := range []string{render(fw4, 0), render(fw1, 4), render(fw4, 1)} {
		if got != base {
			t.Fatalf("lsq report diverged across worker counts:\n base: %s\n got:  %s", base, got)
		}
	}
}

// TestPrefilterDisabledIsByteIdentical: prefilter_top_k=0 must leave every
// strategy's report byte-for-byte what it is without the option.
func TestPrefilterDisabledIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full frameworks")
	}
	fw := buildLSQTest(t, 0)
	target := fw.Catalog.Targets()[0]
	for _, strat := range []core.Strategy{core.StrategyTwoPhase, core.StrategySH, core.StrategyEnsemble} {
		plain, err := fw.SelectWith(context.Background(), target, core.SelectOptions{Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		zeroed, err := fw.SelectWith(context.Background(), target, core.SelectOptions{Strategy: strat, PrefilterTopK: 0})
		if err != nil {
			t.Fatal(err)
		}
		pb, _ := json.Marshal(renderGolden(plain))
		zb, _ := json.Marshal(renderGolden(zeroed))
		if string(pb) != string(zb) {
			t.Fatalf("%s: prefilter_top_k=0 changed the report\n plain: %s\n zeroed: %s", strat, pb, zb)
		}
	}
}

// TestPrefilterBoundsPool: a positive prefilter_top_k caps the pool the
// epoch strategies train (stage 0 of the outcome), keeps original pool
// order, and charges the lsq pass to the ledger.
func TestPrefilterBoundsPool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full frameworks")
	}
	fw := buildLSQTest(t, 0)
	target := fw.Catalog.Targets()[0]
	const k = 4

	plain, err := fw.SelectWith(context.Background(), target, core.SelectOptions{Strategy: core.StrategySH})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := fw.SelectWith(context.Background(), target, core.SelectOptions{Strategy: core.StrategySH, PrefilterTopK: k})
	if err != nil {
		t.Fatal(err)
	}
	pool := filtered.Outcome.Stages[0]
	if len(pool) != k {
		t.Fatalf("prefiltered SH pool has %d models, want %d", len(pool), k)
	}
	// Survivors must appear in the same relative order as the full pool.
	pos := map[string]int{}
	for i, name := range plain.Outcome.Stages[0] {
		pos[name] = i
	}
	last := -1
	for _, name := range pool {
		p, ok := pos[name]
		if !ok {
			t.Fatalf("prefiltered pool member %q not in the repository pool", name)
		}
		if p <= last {
			t.Fatalf("prefiltered pool %v not in original pool order", pool)
		}
		last = p
	}
	// The lsq pass charges 0.5 per repository model on top of SH's spend
	// over the reduced pool.
	lsqCost := 0.5 * float64(fw.Repo.Len())
	if got := filtered.Ledger.Total() - filtered.Outcome.Ledger.Total(); math.Abs(got-lsqCost) > 1e-12 {
		t.Fatalf("prefilter charged %v, want %v", got, lsqCost)
	}
	if filtered.Ledger.Total() >= plain.Ledger.Total() {
		t.Fatalf("prefiltered SH cost %v did not undercut plain SH %v", filtered.Ledger.Total(), plain.Ledger.Total())
	}
}

// TestPrefilterIgnoredByLSQ: composing the pre-filter with the lsq
// strategy itself is a no-op, not a double charge.
func TestPrefilterIgnoredByLSQ(t *testing.T) {
	fw := buildLSQTest(t, 0)
	target := fw.Catalog.Targets()[0]
	plain, err := fw.SelectWith(context.Background(), target, core.SelectOptions{Strategy: core.StrategyLSQ})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := fw.SelectWith(context.Background(), target, core.SelectOptions{Strategy: core.StrategyLSQ, PrefilterTopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := json.Marshal(renderGolden(plain))
	cb, _ := json.Marshal(renderGolden(composed))
	if string(pb) != string(cb) {
		t.Fatalf("prefilter_top_k changed the lsq strategy's report")
	}
}
