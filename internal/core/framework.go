// Package core is the paper's two-phase model-selection framework: an
// offline phase that builds the performance matrix and model clustering
// once, and an online phase that, for each new target task, coarse-recalls
// a small candidate set via clustered proxy scoring and fine-selects the
// final model via convergence-trend-guided successive halving (§II.B).
//
// Typical use:
//
//	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 42})
//	report, err := fw.SelectByName(ctx, "tweet_eval")
//	fmt.Println(report.Outcome.Winner, report.TotalEpochs())
package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"twophase/internal/datahub"
	"twophase/internal/lsq"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
	"twophase/internal/selection"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// ErrUnknownTask is the sentinel for task families outside {"nlp", "cv"},
// re-exported from datahub so serving layers can map it to a not-found
// response without importing the data layer.
var ErrUnknownTask = datahub.ErrUnknownTask

// Options configures the offline build.
type Options struct {
	// Task selects the repository/dataset family ("nlp" or "cv").
	Task string
	// Seed drives every stochastic choice of the synthetic world.
	Seed uint64
	// Sizes optionally overrides split sizes (zero means defaults).
	Sizes datahub.Sizes
	// HP optionally overrides training hyperparameters (zero means the
	// paper's per-task defaults).
	HP trainer.Hyperparams
	// Recall optionally overrides coarse-recall options (zero-value
	// fields fall back to the paper's defaults).
	Recall recall.Options
	// Workers bounds per-stage training parallelism of the online fine
	// selection (see selection.Config.Workers): 0 or 1 is sequential,
	// negative uses one worker per CPU. Results are identical across
	// settings.
	Workers int
	// BuildWorkers bounds the parallelism of the offline build itself:
	// perf-matrix cells, per-model recall vectors and the clustering
	// distance precompute all fan out under this budget. 0 (the default)
	// uses one worker per CPU; 1 forces a serial build. The built
	// framework is bit-identical for every setting — parallel stages
	// write preassigned cells and never reassociate a reduction.
	BuildWorkers int
}

// Framework bundles the offline artifacts needed to serve online
// selections for new target tasks.
type Framework struct {
	Task    string
	World   *synth.World
	Catalog *datahub.Catalog
	Repo    *modelhub.Repository
	Matrix  *perfmatrix.Matrix
	HP      trainer.Hyperparams
	Recall  recall.Options
	Seed    uint64
	Workers int
	// BuildWorkers is the resolved offline-parallelism budget this
	// framework was built with (>= 1); bulk experiment utilities such as
	// OracleAccuracies reuse it.
	BuildWorkers int

	// Stages records, per offline stage, whether this framework loaded a
	// persisted artifact or recomputed the stage.
	Stages Stages

	// Degraded marks a framework served from an older snapshot because the
	// world's latest rebuild or fetch failed. The serving layer sets it on
	// a copy, surfaces it per response, and never caches a degraded
	// framework — the next request retries a clean resolution.
	Degraded bool

	// offline caches the target-independent coarse-recall artifacts
	// (performance vectors, clustering, representatives) so serving many
	// targets does not re-cluster the repository per request.
	offline *recall.Offline
}

// Stages reports the provenance of each offline-pipeline stage of one
// framework build. World synthesis (stage 1) is always recomputed — it is
// deterministic and cheap; the expensive stages are the performance
// matrix (stage 2) and the clustering/representative artifacts (stage 3).
type Stages struct {
	// MatrixLoaded is true when the performance matrix came from a
	// persisted artifact instead of offline fine-tuning.
	MatrixLoaded bool
	// RecallLoaded is true when the clustering stage was rehydrated from
	// a persisted artifact instead of re-clustering the repository.
	RecallLoaded bool
}

// Artifacts carries persisted stage outputs into AssembleArtifacts. A nil
// field means "recompute that stage". Stage inputs are validated
// independently: a stale Recall artifact silently rebuilds only stage 3,
// while a mismatched Matrix fails the assembly (rebuilding it means
// redoing the whole offline phase, which is the caller's decision).
type Artifacts struct {
	Matrix *perfmatrix.Matrix
	Recall *recall.Artifact
}

// Build runs the offline phase: materialize the world, fine-tune every
// repository model on every benchmark dataset, and keep the performance
// matrix plus convergence records for online use.
func Build(opts Options) (*Framework, error) { return build(opts, Artifacts{}) }

// AssembleArtifacts constructs a Framework from whatever persisted stage
// artifacts are available — typically loaded from a store — recomputing
// only the stages whose artifact is missing or no longer matches its
// inputs. A provided matrix must describe exactly the world the options
// would build (same task, model set, benchmark set and epoch budget); a
// mismatch returns an error so callers can fall back to Build, which
// recomputes and overwrites every stage. The result is bit-identical to
// a cold Build for the same options.
func AssembleArtifacts(opts Options, art Artifacts) (*Framework, error) {
	return build(opts, art)
}

// build is the staged offline pipeline:
//
//	stage 1  world synthesis     — catalog + repository from the seed
//	stage 2  performance matrix  — offline fine-tuning (or artifact)
//	stage 3  recall artifacts    — clustering + representatives (or artifact)
//	stage 4  framework assembly
func build(opts Options, art Artifacts) (*Framework, error) {
	if opts.Task == "" {
		opts.Task = datahub.TaskNLP
	}
	// Stage 1: world synthesis. Deterministic in the seed and cheap next
	// to training, so it always recomputes; its persisted form is the
	// model/dataset spec sets the store keeps for querying.
	w := synth.NewWorld(opts.Seed)
	cat, err := datahub.NewTaskCatalog(w, opts.Task, opts.Sizes)
	if err != nil {
		return nil, fmt.Errorf("core: catalog: %w", err)
	}
	repo, err := modelhub.NewTaskRepository(w, opts.Task)
	if err != nil {
		return nil, fmt.Errorf("core: repository: %w", err)
	}
	hp := opts.HP
	if hp == (trainer.Hyperparams{}) {
		hp = trainer.Default(opts.Task)
	}
	buildWorkers := opts.BuildWorkers
	if buildWorkers <= 0 {
		buildWorkers = runtime.GOMAXPROCS(0)
	}

	// Stage 2: performance matrix.
	var stages Stages
	var m *perfmatrix.Matrix
	if art.Matrix != nil {
		if err := matrixMatches(art.Matrix, opts.Task, opts.Seed, repo, cat.Benchmarks(), hp); err != nil {
			return nil, fmt.Errorf("core: assemble: %w", err)
		}
		m = art.Matrix
		stages.MatrixLoaded = true
	} else {
		m, err = perfmatrix.Build(repo, cat.Benchmarks(), hp, opts.Seed, buildWorkers)
		if err != nil {
			return nil, fmt.Errorf("core: performance matrix: %w", err)
		}
	}

	// Stage 3: target-independent recall artifacts.
	ro := fillRecallOptions(opts.Task, opts.Recall)
	var off *recall.Offline
	if art.Recall != nil {
		if o, err := recall.Rehydrate(m, ro, art.Recall); err == nil {
			off = o
			stages.RecallLoaded = true
		}
		// A stale clustering artifact (options changed, foreign matrix)
		// only invalidates this stage; fall through and recompute it.
	}
	if off == nil {
		off, err = recall.PrepareOfflineWith(m, ro, buildWorkers)
		if err != nil {
			return nil, fmt.Errorf("core: offline recall artifacts: %w", err)
		}
	}

	// Stage 4: assembly.
	return &Framework{
		Task:         opts.Task,
		World:        w,
		Catalog:      cat,
		Repo:         repo,
		Matrix:       m,
		HP:           hp,
		Recall:       ro,
		Seed:         opts.Seed,
		Workers:      opts.Workers,
		BuildWorkers: buildWorkers,
		Stages:       stages,
		offline:      off,
	}, nil
}

// fillRecallOptions resolves the per-task recall defaults the framework
// builds with; the filled options are part of the stage-3 artifact's
// fingerprint.
func fillRecallOptions(task string, ro recall.Options) recall.Options {
	def := recall.DefaultOptions()
	if ro.K <= 0 {
		ro.K = def.K
	}
	if ro.SimilarityK <= 0 {
		ro.SimilarityK = def.SimilarityK
	}
	if ro.Threshold <= 0 {
		// CV performance vectors span only 10 benchmarks, so their Eq. 1
		// distances are tighter; a finer cut keeps the cluster structure
		// (6 non-singleton clusters in the paper's Table II) visible.
		if task == datahub.TaskCV {
			ro.Threshold = 0.06
		} else {
			ro.Threshold = def.Threshold
		}
	}
	if ro.Scorer == nil {
		ro.Scorer = def.Scorer
	}
	return ro
}

// RecallArtifact exports the framework's stage-3 clustering artifact for
// persistence, stamped with the matrix's provenance.
func (f *Framework) RecallArtifact() *recall.Artifact {
	return f.offline.Artifact(f.Task, f.Seed)
}

// matrixMatches verifies that a pre-built matrix was produced by exactly
// the world the framework expects — same task, seed, hyperparameters,
// benchmark split sizes, model set and benchmark set — so a stale or
// foreign store artifact can never silently steer online selection. Model
// and dataset name sets alone cannot discriminate (they come from static
// per-task registries), which is why the matrix records its provenance.
func matrixMatches(m *perfmatrix.Matrix, task string, seed uint64, repo *modelhub.Repository, benchmarks []*datahub.Dataset, hp trainer.Hyperparams) error {
	if m.Task != task {
		return fmt.Errorf("matrix task %q, want %q", m.Task, task)
	}
	if m.Seed != seed {
		return fmt.Errorf("matrix seed %d, want %d", m.Seed, seed)
	}
	if m.HP != hp {
		return fmt.Errorf("matrix hyperparams %+v, want %+v", m.HP, hp)
	}
	if m.Epochs != hp.Epochs {
		return fmt.Errorf("matrix epochs %d, want %d", m.Epochs, hp.Epochs)
	}
	if len(benchmarks) > 0 {
		sizes := datahub.Sizes{
			Train: benchmarks[0].Train.Len(),
			Val:   benchmarks[0].Val.Len(),
			Test:  benchmarks[0].Test.Len(),
		}
		if m.Sizes != sizes {
			return fmt.Errorf("matrix split sizes %+v, want %+v", m.Sizes, sizes)
		}
	}
	wantModels := make([]string, 0, repo.Len())
	for _, mod := range repo.Models() {
		wantModels = append(wantModels, mod.Name)
	}
	if err := sameNames(m.Models, wantModels); err != nil {
		return fmt.Errorf("matrix models: %w", err)
	}
	wantDatasets := make([]string, 0, len(benchmarks))
	for _, d := range benchmarks {
		wantDatasets = append(wantDatasets, d.Name)
	}
	if err := sameNames(m.Datasets, wantDatasets); err != nil {
		return fmt.Errorf("matrix datasets: %w", err)
	}
	return nil
}

func sameNames(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d names, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("name %d is %q, want %q", i, got[i], want[i])
		}
	}
	return nil
}

// Strategy names an online selection procedure the framework can serve.
// It is the wire-level strategy identifier of the versioned selection API.
type Strategy string

const (
	// StrategyTwoPhase is the paper's pipeline: coarse recall, then
	// convergence-trend-guided fine selection. The default.
	StrategyTwoPhase Strategy = "two-phase"
	// StrategySH is successive halving over the whole repository.
	StrategySH Strategy = "sh"
	// StrategyBF is the brute-force baseline over the whole repository.
	StrategyBF Strategy = "bf"
	// StrategyEnsemble recalls candidates and soft-votes the top-k
	// fine-selection survivors.
	StrategyEnsemble Strategy = "ensemble"
	// StrategyLSQ is the zero-epoch closed-form baseline: a ridge
	// least-squares head fit on every repository model's cached feature
	// frame. It charges proxy-inference cost only and never trains, so
	// epoch and deadline budgets cannot truncate it.
	StrategyLSQ Strategy = "lsq"
)

// DefaultEnsembleK is the ensemble size used when a request leaves it
// unset (the k=3 configuration of the §VII extension experiments).
const DefaultEnsembleK = 3

// StrategyNames lists every valid wire name, default first. It is the
// single source of truth for usage strings and validation errors — new
// strategies are added here and in ParseStrategy, nowhere else.
func StrategyNames() []string {
	return []string{
		string(StrategyTwoPhase),
		string(StrategySH),
		string(StrategyBF),
		string(StrategyEnsemble),
		string(StrategyLSQ),
	}
}

// ParseStrategy maps a wire name to a Strategy; the empty string means
// StrategyTwoPhase. Unknown names return an error naming the valid set.
// Every layer that accepts a strategy string (API validation, CLI flags,
// the experiments harness) must parse through here so a name is either
// valid everywhere or a typed bad_request everywhere.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "", StrategyTwoPhase:
		return StrategyTwoPhase, nil
	case StrategySH, StrategyBF, StrategyEnsemble, StrategyLSQ:
		return Strategy(s), nil
	default:
		return "", fmt.Errorf("core: unknown strategy %q (want one of %s)",
			s, strings.Join(StrategyNames(), ", "))
	}
}

// SelectOptions tunes one online selection request.
type SelectOptions struct {
	// Strategy picks the procedure; empty means StrategyTwoPhase.
	Strategy Strategy
	// Workers overrides the framework's per-stage training parallelism
	// for this request (0 keeps the framework default). Outcomes are
	// bit-identical across worker counts.
	Workers int
	// EnsembleK is the ensemble size for StrategyEnsemble
	// (0 means DefaultEnsembleK; ignored by the other strategies).
	EnsembleK int
	// MaxEpochs, when non-nil, caps the training epochs the fine phase may
	// spend before returning its best-so-far winner (Truncated on the
	// Report). 0 is a real zero budget; nil means unbounded. Deterministic:
	// a fixed cap truncates at the same stage on every serving path.
	MaxEpochs *int
	// Deadline, when nonzero, is the anytime wall-clock bound for the fine
	// phase. Passing it truncates the selection (a 200 with best-so-far),
	// unlike a context deadline, which cancels it (an error).
	Deadline time.Time
	// PrefilterTopK, when positive, ranks the candidate pool by the
	// closed-form lsq score and hands only the top-k (in original pool
	// order) to the epoch-trained strategies. 0 disables the pre-filter
	// entirely: the pool, the ledger, and the report are exactly what
	// they are today. Ignored by StrategyLSQ, which already is the
	// ranking. The lsq pass charges its proxy-inference cost (0.5 per
	// scored candidate) to the request ledger.
	PrefilterTopK int
}

// Report is the result of one end-to-end online selection.
type Report struct {
	// Target is the target dataset's name.
	Target string
	// Strategy is the procedure that produced this report.
	Strategy Strategy
	// Recall is the coarse-recall phase result (nil for the sh and bf
	// strategies, which search the whole repository).
	Recall *recall.Result
	// Outcome is the fine-selection phase result. For StrategyEnsemble it
	// carries the soft-voting ensemble's accuracies and the best member
	// as Winner.
	Outcome *selection.Outcome
	// Members are the ensembled model names, best validation first
	// (StrategyEnsemble only).
	Members []string
	// Ledger is the combined cost of all phases.
	Ledger trainer.Ledger
	// Truncated reports that the fine phase stopped at its request budget
	// and Outcome carries the best-so-far winner; TruncatedBy names the
	// exhausted dimension (selection.TruncatedByEpochs or
	// selection.TruncatedByDeadline).
	Truncated   bool
	TruncatedBy string
}

// TotalEpochs returns the end-to-end cost in epochs (proxy inference
// charged at 0.5 per scored model, as in Table VI).
func (r *Report) TotalEpochs() float64 { return r.Ledger.Total() }

// Select runs the full online pipeline (coarse recall, then fine
// selection) for a target dataset. A canceled context aborts the
// selection mid-round with ctx.Err().
func (f *Framework) Select(ctx context.Context, target *datahub.Dataset) (*Report, error) {
	return f.SelectWith(ctx, target, SelectOptions{})
}

// SelectWith is the single dispatch point for every online selection
// strategy: it routes the request to the paper's two-phase pipeline, the
// SH or BF baselines, or the ensemble extension, and renders each as a
// uniform Report. Callers should route through here rather than
// hard-wiring individual Framework methods.
func (f *Framework) SelectWith(ctx context.Context, target *datahub.Dataset, opts SelectOptions) (*Report, error) {
	// Refuse dead requests before the recall phase too — proxy-scoring
	// the repository is cheap per model but not free across a batch.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	strat := opts.Strategy
	if strat == "" {
		strat = StrategyTwoPhase
	}
	workers := opts.Workers
	if workers == 0 {
		workers = f.Workers
	}
	// base is the per-request training config shared by every strategy;
	// the budget fields make the fine phase anytime (see selection.Config).
	base := func(salt string) selection.Config {
		return selection.Config{
			HP: f.HP, Seed: f.Seed, Salt: salt, Workers: workers,
			MaxEpochs: opts.MaxEpochs, Deadline: opts.Deadline,
		}
	}
	// prefilter applies the optional lsq pre-filter to an epoch-trained
	// strategy's candidate pool. PrefilterTopK <= 0 returns the pool
	// untouched and charges nothing — disabled means byte-identical to a
	// request without the field.
	prefilter := func(models []*modelhub.Model, ledger *trainer.Ledger) ([]*modelhub.Model, error) {
		k := opts.PrefilterTopK
		if k <= 0 || len(models) == 0 {
			return models, nil
		}
		res, err := lsq.Rank(ctx, models, target, lsq.Options{Workers: workers}, ledger)
		if err != nil {
			return nil, fmt.Errorf("core: lsq pre-filter on %s: %w", target.Name, err)
		}
		keep := make(map[string]bool, k)
		for _, name := range res.TopK(k) {
			keep[name] = true
		}
		out := make([]*modelhub.Model, 0, len(keep))
		for _, m := range models {
			if keep[m.Name] {
				out = append(out, m)
			}
		}
		return out, nil
	}
	switch strat {
	case StrategyTwoPhase:
		var ledger trainer.Ledger
		rr, err := f.offline.Recall(f.Repo, target, &ledger)
		if err != nil {
			return nil, fmt.Errorf("core: coarse recall on %s: %w", target.Name, err)
		}
		candidates, err := f.Repo.Subset(rr.Recalled)
		if err != nil {
			return nil, err
		}
		pool, err := prefilter(candidates.Models(), &ledger)
		if err != nil {
			return nil, err
		}
		out, err := selection.FineSelect(ctx, pool, target, selection.FineSelectOptions{
			Config: base("two-phase"),
			Matrix: f.Matrix,
		})
		if err != nil {
			return nil, fmt.Errorf("core: fine selection on %s: %w", target.Name, err)
		}
		ledger.Add(out.Ledger)
		return &Report{
			Target: target.Name, Strategy: strat, Recall: rr, Outcome: out, Ledger: ledger,
			Truncated: out.Truncated, TruncatedBy: out.TruncatedBy,
		}, nil
	case StrategySH:
		var ledger trainer.Ledger
		pool, err := prefilter(f.Repo.Models(), &ledger)
		if err != nil {
			return nil, err
		}
		out, err := selection.SuccessiveHalving(ctx, pool, target, base("successive-halving"))
		if err != nil {
			return nil, err
		}
		ledger.Add(out.Ledger)
		return &Report{
			Target: target.Name, Strategy: strat, Outcome: out, Ledger: ledger,
			Truncated: out.Truncated, TruncatedBy: out.TruncatedBy,
		}, nil
	case StrategyBF:
		var ledger trainer.Ledger
		pool, err := prefilter(f.Repo.Models(), &ledger)
		if err != nil {
			return nil, err
		}
		out, err := selection.BruteForce(ctx, pool, target, base("brute-force"))
		if err != nil {
			return nil, err
		}
		ledger.Add(out.Ledger)
		return &Report{
			Target: target.Name, Strategy: strat, Outcome: out, Ledger: ledger,
			Truncated: out.Truncated, TruncatedBy: out.TruncatedBy,
		}, nil
	case StrategyLSQ:
		// Zero-epoch path: rank the whole repository by closed-form head
		// quality and report the best, rendered as a uniform Report. The
		// request's budget fields never truncate it — there is no training
		// to cut short — so max_epochs: 0 yields truncated: false with the
		// proxy-inference cost on the ledger.
		var ledger trainer.Ledger
		res, err := lsq.Rank(ctx, f.Repo.Models(), target, lsq.Options{Workers: workers}, &ledger)
		if err != nil {
			return nil, fmt.Errorf("core: lsq selection on %s: %w", target.Name, err)
		}
		best := res.Best()
		return &Report{
			Target:   target.Name,
			Strategy: strat,
			Outcome: &selection.Outcome{
				Winner:     res.Names[best],
				WinnerVal:  res.Val[best],
				WinnerTest: res.Test[best],
				Ledger:     ledger,
				Stages:     [][]string{append([]string(nil), res.Names...)},
			},
			Ledger: ledger,
		}, nil
	case StrategyEnsemble:
		k := opts.EnsembleK
		if k <= 0 {
			k = DefaultEnsembleK
		}
		var ledger trainer.Ledger
		rr, err := f.offline.Recall(f.Repo, target, &ledger)
		if err != nil {
			return nil, fmt.Errorf("core: coarse recall on %s: %w", target.Name, err)
		}
		candidates, err := f.Repo.Subset(rr.Recalled)
		if err != nil {
			return nil, err
		}
		pool, err := prefilter(candidates.Models(), &ledger)
		if err != nil {
			return nil, err
		}
		ens, err := selection.EnsembleSelect(ctx, pool, target, selection.FineSelectOptions{
			Config: base("two-phase"),
			Matrix: f.Matrix,
		}, k)
		if err != nil {
			return nil, fmt.Errorf("core: ensemble selection on %s: %w", target.Name, err)
		}
		ledger.Add(ens.Ledger)
		return &Report{
			Target:   target.Name,
			Strategy: strat,
			Recall:   rr,
			Outcome: &selection.Outcome{
				Winner:      ens.Members[0],
				WinnerVal:   ens.EnsembleVal,
				WinnerTest:  ens.EnsembleTest,
				Ledger:      ens.Ledger,
				Stages:      ens.Stages,
				Truncated:   ens.Truncated,
				TruncatedBy: ens.TruncatedBy,
			},
			Members:     ens.Members,
			Ledger:      ledger,
			Truncated:   ens.Truncated,
			TruncatedBy: ens.TruncatedBy,
		}, nil
	default:
		if _, err := ParseStrategy(string(strat)); err != nil {
			return nil, err
		}
		panic("unreachable")
	}
}

// SelectByName resolves the target from the framework's catalog and runs
// Select.
func (f *Framework) SelectByName(ctx context.Context, name string) (*Report, error) {
	d, err := f.Catalog.Get(name)
	if err != nil {
		return nil, err
	}
	return f.Select(ctx, d)
}

// BruteForce runs the brute-force baseline over the whole repository for
// a target (Table VI's BF row).
func (f *Framework) BruteForce(ctx context.Context, target *datahub.Dataset) (*selection.Outcome, error) {
	return selection.BruteForce(ctx, f.Repo.Models(), target, selection.Config{HP: f.HP, Seed: f.Seed, Salt: "brute-force"})
}

// SuccessiveHalving runs the SH baseline over the whole repository for a
// target (Table VI's SH row).
func (f *Framework) SuccessiveHalving(ctx context.Context, target *datahub.Dataset) (*selection.Outcome, error) {
	return selection.SuccessiveHalving(ctx, f.Repo.Models(), target, selection.Config{HP: f.HP, Seed: f.Seed, Salt: "successive-halving"})
}

// OracleAccuracies brute-force fine-tunes every repository model on the
// target and returns each model's final test accuracy — the ground truth
// used by the evaluation (Fig. 1, Fig. 5, Table VII). It is an
// experiment-support utility, not part of the selection pipeline. Runs
// fan out under the framework's BuildWorkers budget; each run owns an
// independent RNG stream, so the accuracies are identical at any width.
func (f *Framework) OracleAccuracies(ctx context.Context, target *datahub.Dataset) (map[string]float64, error) {
	models := f.Repo.Models()
	curves, err := trainer.FineTuneGrid(ctx, models, []*datahub.Dataset{target}, f.HP, f.Seed, "oracle", f.BuildWorkers)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(models))
	for i, m := range models {
		out[m.Name] = curves[i].FinalTest()
	}
	return out, nil
}
