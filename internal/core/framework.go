// Package core is the paper's two-phase model-selection framework: an
// offline phase that builds the performance matrix and model clustering
// once, and an online phase that, for each new target task, coarse-recalls
// a small candidate set via clustered proxy scoring and fine-selects the
// final model via convergence-trend-guided successive halving (§II.B).
//
// Typical use:
//
//	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 42})
//	report, err := fw.SelectByName("tweet_eval")
//	fmt.Println(report.Outcome.Winner, report.TotalEpochs())
package core

import (
	"fmt"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
	"twophase/internal/selection"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// Options configures the offline build.
type Options struct {
	// Task selects the repository/dataset family ("nlp" or "cv").
	Task string
	// Seed drives every stochastic choice of the synthetic world.
	Seed uint64
	// Sizes optionally overrides split sizes (zero means defaults).
	Sizes datahub.Sizes
	// HP optionally overrides training hyperparameters (zero means the
	// paper's per-task defaults).
	HP trainer.Hyperparams
	// Recall optionally overrides coarse-recall options (zero-value
	// fields fall back to the paper's defaults).
	Recall recall.Options
	// Workers bounds per-stage training parallelism of the online fine
	// selection (see selection.Config.Workers): 0 or 1 is sequential,
	// negative uses one worker per CPU. Results are identical across
	// settings.
	Workers int
}

// Framework bundles the offline artifacts needed to serve online
// selections for new target tasks.
type Framework struct {
	Task    string
	World   *synth.World
	Catalog *datahub.Catalog
	Repo    *modelhub.Repository
	Matrix  *perfmatrix.Matrix
	HP      trainer.Hyperparams
	Recall  recall.Options
	Seed    uint64
	Workers int

	// offline caches the target-independent coarse-recall artifacts
	// (performance vectors, clustering, representatives) so serving many
	// targets does not re-cluster the repository per request.
	offline *recall.Offline
}

// Build runs the offline phase: materialize the world, fine-tune every
// repository model on every benchmark dataset, and keep the performance
// matrix plus convergence records for online use.
func Build(opts Options) (*Framework, error) { return build(opts, nil) }

// Assemble constructs a Framework around an already-built performance
// matrix — typically one loaded from a store — skipping the expensive
// offline fine-tuning. The matrix must describe exactly the world the
// options would build (same task, model set, benchmark set and epoch
// budget); a mismatch returns an error so callers can fall back to Build.
func Assemble(opts Options, m *perfmatrix.Matrix) (*Framework, error) {
	if m == nil {
		return nil, fmt.Errorf("core: assemble: nil matrix")
	}
	return build(opts, m)
}

func build(opts Options, pre *perfmatrix.Matrix) (*Framework, error) {
	if opts.Task == "" {
		opts.Task = datahub.TaskNLP
	}
	w := synth.NewWorld(opts.Seed)
	cat, err := datahub.NewTaskCatalog(w, opts.Task, opts.Sizes)
	if err != nil {
		return nil, fmt.Errorf("core: catalog: %w", err)
	}
	repo, err := modelhub.NewTaskRepository(w, opts.Task)
	if err != nil {
		return nil, fmt.Errorf("core: repository: %w", err)
	}
	hp := opts.HP
	if hp == (trainer.Hyperparams{}) {
		hp = trainer.Default(opts.Task)
	}
	var m *perfmatrix.Matrix
	if pre != nil {
		if err := matrixMatches(pre, opts.Task, opts.Seed, repo, cat.Benchmarks(), hp); err != nil {
			return nil, fmt.Errorf("core: assemble: %w", err)
		}
		m = pre
	} else {
		m, err = perfmatrix.Build(repo, cat.Benchmarks(), hp, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: performance matrix: %w", err)
		}
	}
	ro := opts.Recall
	def := recall.DefaultOptions()
	if ro.K <= 0 {
		ro.K = def.K
	}
	if ro.SimilarityK <= 0 {
		ro.SimilarityK = def.SimilarityK
	}
	if ro.Threshold <= 0 {
		// CV performance vectors span only 10 benchmarks, so their Eq. 1
		// distances are tighter; a finer cut keeps the cluster structure
		// (6 non-singleton clusters in the paper's Table II) visible.
		if opts.Task == datahub.TaskCV {
			ro.Threshold = 0.06
		} else {
			ro.Threshold = def.Threshold
		}
	}
	if ro.Scorer == nil {
		ro.Scorer = def.Scorer
	}
	off, err := recall.PrepareOffline(m, ro)
	if err != nil {
		return nil, fmt.Errorf("core: offline recall artifacts: %w", err)
	}
	return &Framework{
		Task:    opts.Task,
		World:   w,
		Catalog: cat,
		Repo:    repo,
		Matrix:  m,
		HP:      hp,
		Recall:  ro,
		Seed:    opts.Seed,
		Workers: opts.Workers,
		offline: off,
	}, nil
}

// matrixMatches verifies that a pre-built matrix was produced by exactly
// the world the framework expects — same task, seed, hyperparameters,
// benchmark split sizes, model set and benchmark set — so a stale or
// foreign store artifact can never silently steer online selection. Model
// and dataset name sets alone cannot discriminate (they come from static
// per-task registries), which is why the matrix records its provenance.
func matrixMatches(m *perfmatrix.Matrix, task string, seed uint64, repo *modelhub.Repository, benchmarks []*datahub.Dataset, hp trainer.Hyperparams) error {
	if m.Task != task {
		return fmt.Errorf("matrix task %q, want %q", m.Task, task)
	}
	if m.Seed != seed {
		return fmt.Errorf("matrix seed %d, want %d", m.Seed, seed)
	}
	if m.HP != hp {
		return fmt.Errorf("matrix hyperparams %+v, want %+v", m.HP, hp)
	}
	if m.Epochs != hp.Epochs {
		return fmt.Errorf("matrix epochs %d, want %d", m.Epochs, hp.Epochs)
	}
	if len(benchmarks) > 0 {
		sizes := datahub.Sizes{
			Train: benchmarks[0].Train.Len(),
			Val:   benchmarks[0].Val.Len(),
			Test:  benchmarks[0].Test.Len(),
		}
		if m.Sizes != sizes {
			return fmt.Errorf("matrix split sizes %+v, want %+v", m.Sizes, sizes)
		}
	}
	wantModels := make([]string, 0, repo.Len())
	for _, mod := range repo.Models() {
		wantModels = append(wantModels, mod.Name)
	}
	if err := sameNames(m.Models, wantModels); err != nil {
		return fmt.Errorf("matrix models: %w", err)
	}
	wantDatasets := make([]string, 0, len(benchmarks))
	for _, d := range benchmarks {
		wantDatasets = append(wantDatasets, d.Name)
	}
	if err := sameNames(m.Datasets, wantDatasets); err != nil {
		return fmt.Errorf("matrix datasets: %w", err)
	}
	return nil
}

func sameNames(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d names, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("name %d is %q, want %q", i, got[i], want[i])
		}
	}
	return nil
}

// Report is the result of one end-to-end two-phase selection.
type Report struct {
	// Target is the target dataset's name.
	Target string
	// Recall is the coarse-recall phase result.
	Recall *recall.Result
	// Outcome is the fine-selection phase result.
	Outcome *selection.Outcome
	// Ledger is the combined cost of both phases.
	Ledger trainer.Ledger
}

// TotalEpochs returns the end-to-end cost in epochs (proxy inference
// charged at 0.5 per scored model, as in Table VI).
func (r *Report) TotalEpochs() float64 { return r.Ledger.Total() }

// Select runs the full online pipeline (coarse recall, then fine
// selection) for a target dataset.
func (f *Framework) Select(target *datahub.Dataset) (*Report, error) {
	var ledger trainer.Ledger
	rr, err := f.offline.Recall(f.Repo, target, &ledger)
	if err != nil {
		return nil, fmt.Errorf("core: coarse recall on %s: %w", target.Name, err)
	}
	candidates, err := f.Repo.Subset(rr.Recalled)
	if err != nil {
		return nil, err
	}
	out, err := selection.FineSelect(candidates.Models(), target, selection.FineSelectOptions{
		Config: selection.Config{HP: f.HP, Seed: f.Seed, Salt: "two-phase", Workers: f.Workers},
		Matrix: f.Matrix,
	})
	if err != nil {
		return nil, fmt.Errorf("core: fine selection on %s: %w", target.Name, err)
	}
	ledger.Add(out.Ledger)
	return &Report{Target: target.Name, Recall: rr, Outcome: out, Ledger: ledger}, nil
}

// SelectByName resolves the target from the framework's catalog and runs
// Select.
func (f *Framework) SelectByName(name string) (*Report, error) {
	d, err := f.Catalog.Get(name)
	if err != nil {
		return nil, err
	}
	return f.Select(d)
}

// BruteForce runs the brute-force baseline over the whole repository for
// a target (Table VI's BF row).
func (f *Framework) BruteForce(target *datahub.Dataset) (*selection.Outcome, error) {
	return selection.BruteForce(f.Repo.Models(), target, selection.Config{HP: f.HP, Seed: f.Seed, Salt: "brute-force"})
}

// SuccessiveHalving runs the SH baseline over the whole repository for a
// target (Table VI's SH row).
func (f *Framework) SuccessiveHalving(target *datahub.Dataset) (*selection.Outcome, error) {
	return selection.SuccessiveHalving(f.Repo.Models(), target, selection.Config{HP: f.HP, Seed: f.Seed, Salt: "successive-halving"})
}

// OracleAccuracies brute-force fine-tunes every repository model on the
// target and returns each model's final test accuracy — the ground truth
// used by the evaluation (Fig. 1, Fig. 5, Table VII). It is an
// experiment-support utility, not part of the selection pipeline.
func (f *Framework) OracleAccuracies(target *datahub.Dataset) (map[string]float64, error) {
	out := make(map[string]float64, f.Repo.Len())
	for _, m := range f.Repo.Models() {
		curve, err := trainer.FineTune(m, target, f.HP, f.Seed, "oracle")
		if err != nil {
			return nil, err
		}
		out[m.Name] = curve.FinalTest()
	}
	return out, nil
}
