package core_test

// Parallel-build determinism suite: the BuildWorkers knob may only change
// wall-clock time, never a single output bit. Both tests compare against
// the recorded golden fixtures (the slice-of-slices ground truth), so a
// reduction reorder anywhere in the parallel perf-matrix, clustering or
// kernel paths fails against the same oracle as the serial path. The
// hammer test additionally runs builds concurrently and is the -race
// target of CI.

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

// goldenTwoPhaseJSON builds a framework with the given worker budget and
// renders the two-phase selection report for the first target in the
// fixture JSON form (byte equality implies bit equality of every float).
func goldenTwoPhaseJSON(t *testing.T, task string, seed uint64, workers int) []byte {
	t.Helper()
	fw, err := core.Build(core.Options{Task: task, Seed: seed, Sizes: goldenSizes, BuildWorkers: workers})
	if err != nil {
		t.Fatalf("build %s/%d workers=%d: %v", task, seed, workers, err)
	}
	if fw.BuildWorkers < 1 {
		t.Fatalf("framework resolved BuildWorkers=%d, want >= 1", fw.BuildWorkers)
	}
	target := fw.Catalog.Targets()[0]
	report, err := fw.SelectWith(context.Background(), target, core.SelectOptions{Strategy: core.StrategyTwoPhase})
	if err != nil {
		t.Fatalf("select %s/%d workers=%d: %v", task, seed, workers, err)
	}
	got, err := json.MarshalIndent(renderGolden(report), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(got, '\n')
}

// TestBuildWorkersBitIdentical pins serial and parallel offline builds to
// the recorded fixtures: BuildWorkers ∈ {1, 4} must both reproduce the
// golden two-phase report byte for byte.
func TestBuildWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full frameworks")
	}
	for _, task := range []string{datahub.TaskNLP, datahub.TaskCV} {
		for _, workers := range []int{1, 4} {
			got := goldenTwoPhaseJSON(t, task, 7, workers)
			want, err := os.ReadFile(goldenPath(task, 7, core.StrategyTwoPhase))
			if err != nil {
				t.Fatalf("missing golden fixture (record with -update-golden on TestGoldenSelectReports): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s/7 workers=%d diverges from golden fixture\n%s",
					task, workers, firstDiff(string(want), string(got)))
			}
		}
	}
}

// TestConcurrentBuildsHammer runs several full offline builds at once,
// each with BuildWorkers > 1, so the kernel helper budget, the shared
// feature cache and the perf-matrix fan-out all contend — the -race
// workload of CI. Every concurrently built framework must still match
// the golden fixture exactly.
func TestConcurrentBuildsHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full frameworks")
	}
	want, err := os.ReadFile(goldenPath(datahub.TaskNLP, 7, core.StrategyTwoPhase))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	const builds = 3
	reports := make([][]byte, builds)
	var wg sync.WaitGroup
	for i := 0; i < builds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 7, Sizes: goldenSizes, BuildWorkers: 4})
			if err != nil {
				t.Errorf("concurrent build %d: %v", i, err)
				return
			}
			report, err := fw.SelectWith(context.Background(), fw.Catalog.Targets()[0], core.SelectOptions{Strategy: core.StrategyTwoPhase})
			if err != nil {
				t.Errorf("concurrent select %d: %v", i, err)
				return
			}
			got, err := json.MarshalIndent(renderGolden(report), "", " ")
			if err != nil {
				t.Errorf("concurrent render %d: %v", i, err)
				return
			}
			reports[i] = append(got, '\n')
		}(i)
	}
	wg.Wait()
	for i, got := range reports {
		if got == nil {
			continue // already reported
		}
		if string(got) != string(want) {
			t.Errorf("concurrent build %d diverges from golden fixture\n%s", i, firstDiff(string(want), string(got)))
		}
	}
}
