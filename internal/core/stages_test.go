package core

import (
	"context"
	"reflect"
	"testing"

	"twophase/internal/cluster"
	"twophase/internal/datahub"
)

// TestAssembleArtifactsStages: the staged pipeline must reuse exactly the
// artifacts it is given, report their provenance in Stages, skip
// re-clustering when the recall artifact holds, and still produce
// selections bit-identical to a cold build.
func TestAssembleArtifactsStages(t *testing.T) {
	opts := Options{Task: datahub.TaskNLP, Seed: 42, Sizes: datahub.Sizes{Train: 60, Val: 40, Test: 48}}
	cold, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stages != (Stages{}) {
		t.Fatalf("cold build reports loaded stages: %+v", cold.Stages)
	}

	// Matrix only: stage 2 loads, stage 3 recomputes (one clustering pass).
	before := cluster.Passes()
	matOnly, err := AssembleArtifacts(opts, Artifacts{Matrix: cold.Matrix})
	if err != nil {
		t.Fatal(err)
	}
	if !matOnly.Stages.MatrixLoaded || matOnly.Stages.RecallLoaded {
		t.Fatalf("matrix-only stages: %+v", matOnly.Stages)
	}
	if got := cluster.Passes() - before; got != 1 {
		t.Fatalf("matrix-only assembly ran %d clustering passes, want 1", got)
	}

	// Matrix + recall artifact: both stages load, zero clustering passes.
	before = cluster.Passes()
	warm, err := AssembleArtifacts(opts, Artifacts{Matrix: cold.Matrix, Recall: cold.RecallArtifact()})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stages.MatrixLoaded || !warm.Stages.RecallLoaded {
		t.Fatalf("warm stages: %+v", warm.Stages)
	}
	if got := cluster.Passes() - before; got != 0 {
		t.Fatalf("warm assembly ran %d clustering passes, want 0", got)
	}

	// A stale recall artifact invalidates only stage 3.
	stale := *cold.RecallArtifact()
	stale.Threshold *= 2
	partial, err := AssembleArtifacts(opts, Artifacts{Matrix: cold.Matrix, Recall: &stale})
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Stages.MatrixLoaded || partial.Stages.RecallLoaded {
		t.Fatalf("stale-recall stages: %+v", partial.Stages)
	}

	// Selections are bit-identical across cold and warm assembly.
	ctx := context.Background()
	want, err := cold.SelectByName(ctx, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.SelectByName(ctx, "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm selection differs from cold:\n%+v\nvs\n%+v", got, want)
	}
}
