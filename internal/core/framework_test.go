package core

import (
	"context"

	"sync"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/trainer"
)

var (
	fwOnce sync.Once
	fwNLP  *Framework
	fwErr  error
)

// sharedNLP builds the full NLP framework once per test binary (~2s) and
// shares it across tests, which only read from it.
func sharedNLP(t *testing.T) *Framework {
	t.Helper()
	fwOnce.Do(func() {
		fwNLP, fwErr = Build(Options{Task: datahub.TaskNLP, Seed: 42})
	})
	if fwErr != nil {
		t.Fatal(fwErr)
	}
	return fwNLP
}

func TestBuildShape(t *testing.T) {
	fw := sharedNLP(t)
	if fw.Repo.Len() != 40 {
		t.Fatalf("repo %d models", fw.Repo.Len())
	}
	if len(fw.Matrix.Models) != 40 || len(fw.Matrix.Datasets) != 24 {
		t.Fatalf("matrix %dx%d, paper builds 40x24", len(fw.Matrix.Models), len(fw.Matrix.Datasets))
	}
	if fw.HP.Epochs != 5 {
		t.Fatalf("NLP epochs %d", fw.HP.Epochs)
	}
	if fw.Recall.K != 10 || fw.Recall.SimilarityK != 5 {
		t.Fatalf("recall defaults %+v", fw.Recall)
	}
}

func TestBuildUnknownTask(t *testing.T) {
	if _, err := Build(Options{Task: "audio", Seed: 1}); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestBuildDefaultTask(t *testing.T) {
	// empty task falls back to NLP; use tiny sizes to keep it cheap
	fw, err := Build(Options{Seed: 7, Sizes: datahub.Sizes{Train: 30, Val: 20, Test: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Task != datahub.TaskNLP {
		t.Fatalf("default task %q", fw.Task)
	}
}

func TestSelectEndToEnd(t *testing.T) {
	fw := sharedNLP(t)
	report, err := fw.SelectByName(context.Background(), "tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Recall.Recalled) != 10 {
		t.Fatalf("recalled %d", len(report.Recall.Recalled))
	}
	// winner must come from the recalled set
	found := false
	for _, n := range report.Recall.Recalled {
		if n == report.Outcome.Winner {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %s not among recalled models", report.Outcome.Winner)
	}
	if report.Outcome.WinnerTest <= 0 || report.Outcome.WinnerTest > 1 {
		t.Fatalf("winner test %v", report.Outcome.WinnerTest)
	}
	// end-to-end cost must be far below brute force (200 epochs)
	if report.TotalEpochs() >= 60 {
		t.Fatalf("two-phase cost %v epochs, expected well under brute force", report.TotalEpochs())
	}
	// ledger composition: recall inference + fine-selection training
	wantTotal := 0.5*float64(report.Recall.ScoredModels) + float64(report.Outcome.Ledger.TrainEpochs())
	if report.TotalEpochs() != wantTotal {
		t.Fatalf("ledger total %v != recall+selection %v", report.TotalEpochs(), wantTotal)
	}
}

func TestSelectDeterministic(t *testing.T) {
	fw := sharedNLP(t)
	a, err := fw.SelectByName(context.Background(), "super_glue/boolq")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw.SelectByName(context.Background(), "super_glue/boolq")
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome.Winner != b.Outcome.Winner || a.TotalEpochs() != b.TotalEpochs() {
		t.Fatal("selection not deterministic")
	}
}

func TestSelectUnknownTarget(t *testing.T) {
	fw := sharedNLP(t)
	if _, err := fw.SelectByName(context.Background(), "no-such-dataset"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestBaselinesBeatNothing(t *testing.T) {
	fw := sharedNLP(t)
	d, err := fw.Catalog.Get("tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	bf, err := fw.BruteForce(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := fw.SuccessiveHalving(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Ledger.TrainEpochs() != 200 {
		t.Fatalf("BF cost %d, want 40 models x 5 epochs", bf.Ledger.TrainEpochs())
	}
	if sh.Ledger.TrainEpochs() != 77 {
		t.Fatalf("SH cost %d, paper reports 77 for 40 models", sh.Ledger.TrainEpochs())
	}
	report, err := fw.Select(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalEpochs() >= float64(sh.Ledger.TrainEpochs()) {
		t.Fatalf("two-phase %v not below SH %d", report.TotalEpochs(), sh.Ledger.TrainEpochs())
	}
}

func TestSelectedModelNearBruteForce(t *testing.T) {
	fw := sharedNLP(t)
	d, err := fw.Catalog.Get("LysandreJik/glue-mnli-train")
	if err != nil {
		t.Fatal(err)
	}
	report, err := fw.Select(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := fw.OracleAccuracies(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, a := range oracle {
		if a > best {
			best = a
		}
	}
	if report.Outcome.WinnerTest < best-0.10 {
		t.Fatalf("two-phase winner %.3f more than 0.10 below oracle best %.3f",
			report.Outcome.WinnerTest, best)
	}
}

func TestOracleAccuracies(t *testing.T) {
	fw := sharedNLP(t)
	d, err := fw.Catalog.Get("tweet_eval")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := fw.OracleAccuracies(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) != fw.Repo.Len() {
		t.Fatalf("oracle covers %d models", len(oracle))
	}
	for n, a := range oracle {
		if a <= 0 || a > 1 {
			t.Fatalf("oracle acc %v for %s", a, n)
		}
	}
}

func TestCustomHyperparams(t *testing.T) {
	hp := trainer.Hyperparams{LearningRate: 0.2, BatchSize: 16, Epochs: 2, L2: 0}
	fw, err := Build(Options{Task: datahub.TaskNLP, Seed: 9, HP: hp,
		Sizes: datahub.Sizes{Train: 30, Val: 20, Test: 30}})
	if err != nil {
		t.Fatal(err)
	}
	if fw.HP != hp {
		t.Fatal("custom hyperparams not applied")
	}
	if fw.Matrix.Epochs != 2 {
		t.Fatalf("matrix epochs %d", fw.Matrix.Epochs)
	}
}
