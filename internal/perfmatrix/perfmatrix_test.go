package perfmatrix

import (
	"math"
	"path/filepath"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

// smallFixture builds a 4-model x 3-benchmark matrix quickly.
func smallFixture(t *testing.T) (*modelhub.Repository, []*datahub.Dataset, *Matrix) {
	t.Helper()
	w := synth.NewWorld(42)
	specs := modelhub.NLPSpecs()[:4]
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, specs)
	if err != nil {
		t.Fatal(err)
	}
	var benches []*datahub.Dataset
	for _, spec := range datahub.NLPBenchmarks()[:3] {
		d, err := datahub.Generate(w, spec, datahub.Sizes{Train: 60, Val: 40, Test: 60})
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, d)
	}
	m, err := Build(repo, benches, trainer.Default(datahub.TaskNLP), w.Seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	return repo, benches, m
}

func TestBuildComplete(t *testing.T) {
	repo, benches, m := smallFixture(t)
	if len(m.Models) != repo.Len() || len(m.Datasets) != len(benches) {
		t.Fatalf("matrix shape %dx%d", len(m.Models), len(m.Datasets))
	}
	if len(m.Entries) != repo.Len()*len(benches) {
		t.Fatalf("entries %d", len(m.Entries))
	}
	for _, model := range m.Models {
		for _, ds := range m.Datasets {
			e, err := m.Entry(model, ds)
			if err != nil {
				t.Fatal(err)
			}
			if len(e.Val) != m.Epochs || len(e.Test) != m.Epochs {
				t.Fatalf("curve lengths %d/%d", len(e.Val), len(e.Test))
			}
			p, err := m.Perf(model, ds)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 || p > 1 {
				t.Fatalf("perf %v", p)
			}
		}
	}
}

func TestBuildRejectsTargets(t *testing.T) {
	w := synth.NewWorld(42)
	repo, err := modelhub.NewRepository(w, datahub.TaskNLP, modelhub.NLPSpecs()[:2])
	if err != nil {
		t.Fatal(err)
	}
	target, err := datahub.Generate(w, datahub.NLPTargets()[0], datahub.Sizes{Train: 20, Val: 10, Test: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(repo, []*datahub.Dataset{target}, trainer.Default(datahub.TaskNLP), 42, 0); err == nil {
		t.Fatal("target dataset accepted as benchmark")
	}
	if _, err := Build(repo, nil, trainer.Default(datahub.TaskNLP), 42, 0); err == nil {
		t.Fatal("empty benchmark list accepted")
	}
}

func TestBuildDeterministicDespiteParallelism(t *testing.T) {
	_, _, a := smallFixture(t)
	_, _, b := smallFixture(t)
	for k, ea := range a.Entries {
		eb := b.Entries[k]
		for i := range ea.Val {
			if ea.Val[i] != eb.Val[i] {
				t.Fatal("parallel builds diverged")
			}
		}
	}
}

// TestBuildWorkerCountInvariant pins the BuildWorkers contract at the
// matrix level: serial (1) and oversubscribed (3 workers for 12 cells)
// builds must agree bit for bit on every curve point with the default-
// budget fixture.
func TestBuildWorkerCountInvariant(t *testing.T) {
	repo, benches, base := smallFixture(t)
	for _, workers := range []int{1, 3} {
		m, err := Build(repo, benches, trainer.Default(datahub.TaskNLP), 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		for k, eb := range base.Entries {
			em, ok := m.Entries[k]
			if !ok {
				t.Fatalf("workers=%d: missing entry %q", workers, k)
			}
			for i := range eb.Val {
				if math.Float64bits(eb.Val[i]) != math.Float64bits(em.Val[i]) ||
					math.Float64bits(eb.Test[i]) != math.Float64bits(em.Test[i]) {
					t.Fatalf("workers=%d: curve %q diverges at epoch %d", workers, k, i)
				}
			}
		}
	}
}

func TestVectorAndAvgAcc(t *testing.T) {
	_, _, m := smallFixture(t)
	v, err := m.Vector(m.Models[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != len(m.Datasets) {
		t.Fatalf("vector len %d", len(v))
	}
	avg, err := m.AvgAcc(m.Models[0])
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, x := range v {
		want += x
	}
	want /= float64(len(v))
	if avg != want {
		t.Fatalf("avg %v != %v", avg, want)
	}
	if _, err := m.Vector("missing"); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestValCurves(t *testing.T) {
	_, _, m := smallFixture(t)
	vals, finals, err := m.ValCurves(m.Models[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(m.Datasets) || len(finals) != len(m.Datasets) {
		t.Fatal("ValCurves lengths wrong")
	}
	for i, ds := range m.Datasets {
		e, err := m.Entry(m.Models[1], ds)
		if err != nil {
			t.Fatal(err)
		}
		if finals[i] != e.FinalTest() {
			t.Fatal("final mismatch")
		}
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	_, _, m := smallFixture(t)
	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Models) != len(m.Models) || len(loaded.Entries) != len(m.Entries) {
		t.Fatal("roundtrip lost data")
	}
	a, err := m.Perf(m.Models[0], m.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Perf(m.Models[0], m.Datasets[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("perf changed across roundtrip")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEntryFinalTestEmpty(t *testing.T) {
	e := &Entry{}
	if e.FinalTest() != 0 {
		t.Fatal("empty entry final should be 0")
	}
}
