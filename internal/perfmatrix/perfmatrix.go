// Package perfmatrix builds and stores the paper's offline artifacts: the
// performance matrix Matrix(D, M) — final test accuracy of every model
// fine-tuned on every benchmark dataset — together with the full per-epoch
// validation/test curves that the fine-selection phase mines for
// convergence trends (§II.B "Offline").
package perfmatrix

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"twophase/internal/datahub"
	"twophase/internal/modelhub"
	"twophase/internal/trainer"
)

// Entry records one offline fine-tuning run of a model on a benchmark
// dataset.
type Entry struct {
	Model   string    `json:"model"`
	Dataset string    `json:"dataset"`
	Val     []float64 `json:"val"`  // per-epoch validation accuracy
	Test    []float64 `json:"test"` // per-epoch test accuracy
}

// FinalTest returns the end-of-training test accuracy.
func (e *Entry) FinalTest() float64 {
	if len(e.Test) == 0 {
		return 0
	}
	return e.Test[len(e.Test)-1]
}

// Matrix is the performance matrix plus convergence records for one task
// family. Model and dataset orders are fixed at build time so performance
// vectors are comparable. Seed, HP and Sizes record the provenance of the
// runs — the world seed, training hyperparameters and benchmark split
// sizes — so a persisted matrix can be checked against the world a loader
// expects instead of silently steering selection with foreign curves.
type Matrix struct {
	Task     string              `json:"task"`
	Models   []string            `json:"models"`
	Datasets []string            `json:"datasets"`
	Epochs   int                 `json:"epochs"`
	Seed     uint64              `json:"seed"`
	HP       trainer.Hyperparams `json:"hp"`
	Sizes    datahub.Sizes       `json:"sizes"`
	Entries  map[string]*Entry   `json:"entries"` // keyed by model + "\x00" + dataset
	modelIdx map[string]int      // lazily rebuilt
	dsIdx    map[string]int
	once     sync.Once
}

func key(model, dataset string) string { return model + "\x00" + dataset }

// Build fine-tunes every model in the repository on every benchmark
// dataset with the given hyperparameters. Cells train concurrently under
// the workers budget (<= 0 means GOMAXPROCS) via trainer.FineTuneGrid,
// which preassigns every result to its (model, dataset) cell and reports
// the first error in index order — the matrix, and any build failure, is
// bit-identical for every worker count.
func Build(repo *modelhub.Repository, benchmarks []*datahub.Dataset, hp trainer.Hyperparams, seed uint64, workers int) (*Matrix, error) {
	if len(benchmarks) == 0 {
		return nil, fmt.Errorf("perfmatrix: no benchmark datasets")
	}
	m := &Matrix{
		Task:   repo.Task,
		Epochs: hp.Epochs,
		Seed:   seed,
		HP:     hp,
		Sizes: datahub.Sizes{
			Train: benchmarks[0].Train.Len(),
			Val:   benchmarks[0].Val.Len(),
			Test:  benchmarks[0].Test.Len(),
		},
		Entries: make(map[string]*Entry, repo.Len()*len(benchmarks)),
	}
	models := repo.Models()
	for _, mod := range models {
		m.Models = append(m.Models, mod.Name)
	}
	for _, d := range benchmarks {
		if !d.Benchmark {
			return nil, fmt.Errorf("perfmatrix: dataset %q is not a benchmark dataset", d.Name)
		}
		m.Datasets = append(m.Datasets, d.Name)
	}

	curves, err := trainer.FineTuneGrid(context.Background(), models, benchmarks, hp, seed, "offline-matrix", workers)
	if err != nil {
		return nil, err
	}
	for mi, mod := range models {
		for di, d := range benchmarks {
			curve := curves[mi*len(benchmarks)+di]
			m.Entries[key(mod.Name, d.Name)] = &Entry{
				Model:   mod.Name,
				Dataset: d.Name,
				Val:     curve.Val,
				Test:    curve.Test,
			}
		}
	}
	return m, nil
}

func (m *Matrix) buildIndex() {
	m.once.Do(func() {
		m.modelIdx = make(map[string]int, len(m.Models))
		for i, name := range m.Models {
			m.modelIdx[name] = i
		}
		m.dsIdx = make(map[string]int, len(m.Datasets))
		for i, name := range m.Datasets {
			m.dsIdx[name] = i
		}
	})
}

// Entry returns the run record for (model, dataset).
func (m *Matrix) Entry(model, dataset string) (*Entry, error) {
	e, ok := m.Entries[key(model, dataset)]
	if !ok {
		return nil, fmt.Errorf("perfmatrix: no entry for model %q on dataset %q", model, dataset)
	}
	return e, nil
}

// Perf returns p(dataset | model): the final test accuracy of the model
// fine-tuned on the benchmark dataset.
func (m *Matrix) Perf(model, dataset string) (float64, error) {
	e, err := m.Entry(model, dataset)
	if err != nil {
		return 0, err
	}
	return e.FinalTest(), nil
}

// Vector returns the model's |D|-dimensional performance vector in the
// matrix's dataset order (vec(m_j) of §III.A).
func (m *Matrix) Vector(model string) ([]float64, error) {
	m.buildIndex()
	if _, ok := m.modelIdx[model]; !ok {
		return nil, fmt.Errorf("perfmatrix: unknown model %q", model)
	}
	v := make([]float64, len(m.Datasets))
	for i, d := range m.Datasets {
		p, err := m.Perf(model, d)
		if err != nil {
			return nil, err
		}
		v[i] = p
	}
	return v, nil
}

// AvgAcc returns acc(m_j): the model's mean final test accuracy across all
// benchmark datasets (the prior-capability term of Eq. 2).
func (m *Matrix) AvgAcc(model string) (float64, error) {
	v, err := m.Vector(model)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v)), nil
}

// ValCurves returns, for one model, the per-benchmark validation curves
// and final test accuracies — the raw material of convergence-trend
// mining. Curves are returned in the matrix's dataset order.
func (m *Matrix) ValCurves(model string) (val [][]float64, finalTest []float64, err error) {
	for _, d := range m.Datasets {
		e, err := m.Entry(model, d)
		if err != nil {
			return nil, nil, err
		}
		val = append(val, e.Val)
		finalTest = append(finalTest, e.FinalTest())
	}
	return val, finalTest, nil
}

// Save writes the matrix as JSON to path.
func (m *Matrix) Save(path string) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("perfmatrix: marshal: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("perfmatrix: write %s: %w", path, err)
	}
	return nil
}

// Load reads a matrix previously written by Save.
func Load(path string) (*Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perfmatrix: read %s: %w", path, err)
	}
	var m Matrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("perfmatrix: parse %s: %w", path, err)
	}
	return &m, nil
}
