package artifact

import (
	"hash/crc64"
	"math/rand"
	"testing"

	"twophase/internal/numeric"
	"twophase/internal/recall"
)

// FuzzArtifactDecode throws arbitrary bytes at every decoder. The
// contract under fuzz: no input panics, nothing decodes without passing
// both checksums, and anything Verify accepts is internally consistent
// (the body checksum it reports really is the checksum of the body it
// carries).
func FuzzArtifactDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(6))
	if data, err := EncodeMatrix(testMatrix(rng, 2, 2, 3)); err == nil {
		f.Add(data)
		// Seed a few systematic corruptions so coverage starts past the
		// magic check even before the fuzzer mutates.
		trunc := data[:len(data)/2]
		f.Add(trunc)
		flip := append([]byte(nil), data...)
		flip[HeaderSize/2] ^= 0xff
		f.Add(flip)
	}
	if data, err := EncodeRecall(&recall.Artifact{Task: "nlp", Models: []string{"m"}, Assign: []int{0}, Clusters: 1}); err == nil {
		f.Add(data)
	}
	if data, err := EncodeFrame(numeric.NewFrame(2, 3)); err == nil {
		f.Add(data)
	}
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, verr := Verify(data)
		if verr == nil {
			if got := crc64.Checksum(data[HeaderSize:], crcTable); got != h.BodyCRC {
				t.Fatalf("Verify accepted a body whose checksum %016x != header %016x", got, h.BodyCRC)
			}
		}
		if m, err := DecodeMatrix(data); err == nil {
			if verr != nil {
				t.Fatalf("matrix decoded from bytes Verify rejects: %v", verr)
			}
			if m == nil {
				t.Fatal("nil matrix with nil error")
			}
		}
		if a, err := DecodeRecall(data); err == nil {
			if verr != nil {
				t.Fatalf("recall decoded from bytes Verify rejects: %v", verr)
			}
			if a == nil {
				t.Fatal("nil recall with nil error")
			}
		}
		if fr, err := DecodeFrame(data); err == nil {
			if verr != nil {
				t.Fatalf("frame decoded from bytes Verify rejects: %v", verr)
			}
			if fr == nil {
				t.Fatal("nil frame with nil error")
			}
		}
	})
}
