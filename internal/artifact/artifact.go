// Package artifact is the binary, versioned, checksummed encoding of the
// offline world artifacts — performance matrices, recall (clustering)
// artifacts and numeric feature frames. It exists because cold start is
// dominated by JSON decode: the expensive payloads are large float64
// matrices, and this format stores them as raw row-major little-endian
// words behind a fixed header, so a warm start is an open + map +
// fingerprint check instead of a reflective parse.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "TPAF"
//	4       2     format version (1)
//	6       2     kind (1 = matrix, 2 = recall, 3 = frame)
//	8       8     input fingerprint (CRC-64/ECMA of kind + meta JSON)
//	16      8     body length in bytes
//	24      8     body checksum (CRC-64/ECMA)
//	32      8     header checksum (CRC-64/ECMA of bytes 0..32)
//	40      -     body
//
// The body is a 4-byte meta length, a small JSON meta section carrying
// names and scalar provenance (task, seed, hyperparameters, split sizes),
// zero padding to the next 8-byte boundary, then the raw numeric payload:
// float64 curves for matrices (model-major, dataset-minor, epoch-
// innermost; validation section then test section), int64 cluster
// assignments for recall artifacts, row-major float64 data for frames.
// The fingerprint hashes only the provenance, so it doubles as an HTTP
// ETag: two backends that built the same deterministic world advertise
// the same fingerprint.
//
// Decoding is strict and total: every length is bounds-checked against
// the real input before any allocation sized from it, and no input —
// truncated, bit-flipped, or adversarial — panics or decodes without
// passing both checksums. Corruption surfaces as ErrCorrupt.
package artifact

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"math"

	"twophase/internal/datahub"
	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
	"twophase/internal/trainer"
)

// Kind identifies which world artifact a file encodes.
type Kind uint16

// The three artifact kinds of the offline pipeline.
const (
	KindMatrix Kind = 1
	KindRecall Kind = 2
	KindFrame  Kind = 3
)

// String names the kind for errors and logs.
func (k Kind) String() string {
	switch k {
	case KindMatrix:
		return "matrix"
	case KindRecall:
		return "recall"
	case KindFrame:
		return "frame"
	default:
		return fmt.Sprintf("kind(%d)", uint16(k))
	}
}

const (
	magic = "TPAF"
	// FormatVersion is the on-disk format revision; a reader refuses
	// newer revisions rather than misparse them.
	FormatVersion = 1
	// HeaderSize is the fixed byte length of the header.
	HeaderSize = 40
)

// ErrCorrupt marks bytes that are not a valid artifact of the expected
// revision: bad magic, a failed checksum, a truncated body, or internal
// lengths that disagree with the data. Callers treat it as "rebuild",
// never as "absent".
var ErrCorrupt = errors.New("artifact: corrupt")

// crcTable is the CRC-64/ECMA table shared by every checksum here.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Header is the decoded fixed header.
type Header struct {
	Version     uint16
	Kind        Kind
	Fingerprint uint64
	BodyLen     uint64
	BodyCRC     uint64
}

// ParseHeader decodes and validates the fixed header: magic, version and
// the header's own checksum. It does not touch the body.
func ParseHeader(data []byte) (Header, error) {
	if len(data) < HeaderSize {
		return Header{}, fmt.Errorf("%w: %d bytes, header needs %d", ErrCorrupt, len(data), HeaderSize)
	}
	if string(data[0:4]) != magic {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[0:4])
	}
	if got, want := binary.LittleEndian.Uint64(data[32:40]), crc64.Checksum(data[0:32], crcTable); got != want {
		return Header{}, fmt.Errorf("%w: header checksum %016x, want %016x", ErrCorrupt, got, want)
	}
	h := Header{
		Version:     binary.LittleEndian.Uint16(data[4:6]),
		Kind:        Kind(binary.LittleEndian.Uint16(data[6:8])),
		Fingerprint: binary.LittleEndian.Uint64(data[8:16]),
		BodyLen:     binary.LittleEndian.Uint64(data[16:24]),
		BodyCRC:     binary.LittleEndian.Uint64(data[24:32]),
	}
	if h.Version != FormatVersion {
		return Header{}, fmt.Errorf("%w: format version %d, reader speaks %d", ErrCorrupt, h.Version, FormatVersion)
	}
	return h, nil
}

// Verify validates the whole encoding — header, body length and body
// checksum — and returns the header. It is the gate every decode and
// every fetched-over-the-wire artifact passes before any content is
// trusted.
func Verify(data []byte) (Header, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return Header{}, err
	}
	if h.BodyLen != uint64(len(data)-HeaderSize) {
		return Header{}, fmt.Errorf("%w: body length %d, have %d bytes", ErrCorrupt, h.BodyLen, len(data)-HeaderSize)
	}
	if got := crc64.Checksum(data[HeaderSize:], crcTable); got != h.BodyCRC {
		return Header{}, fmt.Errorf("%w: body checksum %016x, want %016x", ErrCorrupt, got, h.BodyCRC)
	}
	return h, nil
}

// pad8 rounds n up to the next multiple of 8 so the numeric payload is
// 8-byte aligned relative to the body start.
func pad8(n int) int { return (n + 7) &^ 7 }

// encode assembles header + meta + payload. payloadWords is the number of
// 8-byte words the fill callback will write.
func encode(kind Kind, meta interface{}, payloadWords int, fill func(payload []byte)) ([]byte, error) {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("artifact: marshal %s meta: %w", kind, err)
	}
	payloadOff := pad8(4 + len(metaJSON))
	body := make([]byte, payloadOff+payloadWords*8)
	binary.LittleEndian.PutUint32(body[0:4], uint32(len(metaJSON)))
	copy(body[4:], metaJSON)
	fill(body[payloadOff:])

	data := make([]byte, HeaderSize+len(body))
	copy(data[0:4], magic)
	binary.LittleEndian.PutUint16(data[4:6], FormatVersion)
	binary.LittleEndian.PutUint16(data[6:8], uint16(kind))
	fp := crc64.Checksum(append([]byte{byte(kind), byte(kind >> 8)}, metaJSON...), crcTable)
	binary.LittleEndian.PutUint64(data[8:16], fp)
	binary.LittleEndian.PutUint64(data[16:24], uint64(len(body)))
	binary.LittleEndian.PutUint64(data[24:32], crc64.Checksum(body, crcTable))
	binary.LittleEndian.PutUint64(data[32:40], crc64.Checksum(data[0:32], crcTable))
	copy(data[HeaderSize:], body)
	return data, nil
}

// decodeBody verifies data, checks the kind, unmarshals the meta section
// and returns the aligned numeric payload.
func decodeBody(data []byte, want Kind, meta interface{}) ([]byte, Header, error) {
	h, err := Verify(data)
	if err != nil {
		return nil, Header{}, err
	}
	if h.Kind != want {
		return nil, Header{}, fmt.Errorf("%w: kind %s, want %s", ErrCorrupt, h.Kind, want)
	}
	body := data[HeaderSize:]
	if len(body) < 4 {
		return nil, Header{}, fmt.Errorf("%w: body too short for meta length", ErrCorrupt)
	}
	metaLen := int(binary.LittleEndian.Uint32(body[0:4]))
	if metaLen < 0 || metaLen > len(body)-4 {
		return nil, Header{}, fmt.Errorf("%w: meta length %d exceeds body %d", ErrCorrupt, metaLen, len(body))
	}
	if err := json.Unmarshal(body[4:4+metaLen], meta); err != nil {
		return nil, Header{}, fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
	}
	payloadOff := pad8(4 + metaLen)
	if payloadOff > len(body) {
		return nil, Header{}, fmt.Errorf("%w: meta padding exceeds body", ErrCorrupt)
	}
	return body[payloadOff:], h, nil
}

// putFloats writes src as little-endian float64 words into dst.
func putFloats(dst []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// getFloats reads n little-endian float64 words from src. Zero-length
// curves decode to nil, matching what a JSON round trip of a nil slice
// yields — the two paths must produce DeepEqual artifacts.
func getFloats(src []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return out
}

// matrixMeta is the provenance half of a matrix encoding; the curves
// themselves live in the numeric payload.
type matrixMeta struct {
	Task     string              `json:"task"`
	Models   []string            `json:"models"`
	Datasets []string            `json:"datasets"`
	Epochs   int                 `json:"epochs"`
	Seed     uint64              `json:"seed"`
	HP       trainer.Hyperparams `json:"hp"`
	Sizes    datahub.Sizes       `json:"sizes"`
}

// EncodeMatrix encodes a performance matrix. It requires the matrix to be
// rectangular — an entry for every (model, dataset) pair, every curve of
// length Epochs — which every matrix the offline pipeline builds is; a
// ragged matrix errors so the caller can fall back to JSON.
func EncodeMatrix(m *perfmatrix.Matrix) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("artifact: nil matrix")
	}
	nM, nD, ep := len(m.Models), len(m.Datasets), m.Epochs
	if ep < 0 {
		return nil, fmt.Errorf("artifact: negative epochs %d", ep)
	}
	cells := nM * nD
	for _, model := range m.Models {
		for _, ds := range m.Datasets {
			e, err := m.Entry(model, ds)
			if err != nil {
				return nil, fmt.Errorf("artifact: ragged matrix: %w", err)
			}
			if len(e.Val) != ep || len(e.Test) != ep {
				return nil, fmt.Errorf("artifact: ragged matrix: %s/%s curves %d/%d, want %d",
					model, ds, len(e.Val), len(e.Test), ep)
			}
		}
	}
	meta := matrixMeta{
		Task: m.Task, Models: m.Models, Datasets: m.Datasets,
		Epochs: m.Epochs, Seed: m.Seed, HP: m.HP, Sizes: m.Sizes,
	}
	return encode(KindMatrix, meta, cells*ep*2, func(payload []byte) {
		testOff := cells * ep * 8
		for i, model := range m.Models {
			for j, ds := range m.Datasets {
				e, _ := m.Entry(model, ds)
				off := (i*nD + j) * ep * 8
				putFloats(payload[off:], e.Val)
				putFloats(payload[testOff+off:], e.Test)
			}
		}
	})
}

// DecodeMatrix verifies and decodes a matrix encoding. The result is
// bit-identical to the matrix that was encoded: float64 words round-trip
// exactly.
func DecodeMatrix(data []byte) (*perfmatrix.Matrix, error) {
	var meta matrixMeta
	payload, _, err := decodeBody(data, KindMatrix, &meta)
	if err != nil {
		return nil, err
	}
	nM, nD, ep := len(meta.Models), len(meta.Datasets), meta.Epochs
	// Bound each dimension before multiplying so a hostile meta section
	// cannot overflow the size check into a giant allocation: with every
	// dimension <= 2^20 the element count is <= 2^61 and cannot wrap.
	if ep < 0 || ep > 1<<20 || nM > 1<<20 || nD > 1<<20 {
		return nil, fmt.Errorf("%w: implausible matrix shape %dx%dx%d", ErrCorrupt, nM, nD, ep)
	}
	// Compare element counts, never byte products: the payload length is
	// ground truth, so a forged meta section can only fail the check.
	words := uint64(nM) * uint64(nD) * uint64(ep) * 2
	if len(payload)%8 != 0 || words != uint64(len(payload))/8 {
		return nil, fmt.Errorf("%w: matrix payload %d bytes, shape %dx%dx%d needs %d words",
			ErrCorrupt, len(payload), nM, nD, ep, words)
	}
	m := &perfmatrix.Matrix{
		Task: meta.Task, Models: meta.Models, Datasets: meta.Datasets,
		Epochs: meta.Epochs, Seed: meta.Seed, HP: meta.HP, Sizes: meta.Sizes,
		Entries: make(map[string]*perfmatrix.Entry, nM*nD),
	}
	testOff := nM * nD * ep * 8
	for i, model := range meta.Models {
		for j, ds := range meta.Datasets {
			off := (i*nD + j) * ep * 8
			m.Entries[model+"\x00"+ds] = &perfmatrix.Entry{
				Model: model, Dataset: ds,
				Val:  getFloats(payload[off:], ep),
				Test: getFloats(payload[testOff+off:], ep),
			}
		}
	}
	return m, nil
}

// recallMeta is the provenance half of a recall encoding; the cluster
// assignment vector lives in the numeric payload.
type recallMeta struct {
	Task        string   `json:"task"`
	Seed        uint64   `json:"seed"`
	SimilarityK int      `json:"similarity_k"`
	Threshold   float64  `json:"threshold"`
	Scorer      string   `json:"scorer"`
	Models      []string `json:"models"`
	Clusters    int      `json:"clusters"`
	AssignLen   int      `json:"assign_len"`
}

// EncodeRecall encodes a clustering-stage artifact.
func EncodeRecall(a *recall.Artifact) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("artifact: nil recall artifact")
	}
	meta := recallMeta{
		Task: a.Task, Seed: a.Seed, SimilarityK: a.SimilarityK,
		Threshold: a.Threshold, Scorer: a.Scorer, Models: a.Models,
		Clusters: a.Clusters, AssignLen: len(a.Assign),
	}
	return encode(KindRecall, meta, len(a.Assign), func(payload []byte) {
		for i, v := range a.Assign {
			binary.LittleEndian.PutUint64(payload[i*8:], uint64(int64(v)))
		}
	})
}

// DecodeRecall verifies and decodes a recall encoding.
func DecodeRecall(data []byte) (*recall.Artifact, error) {
	var meta recallMeta
	payload, _, err := decodeBody(data, KindRecall, &meta)
	if err != nil {
		return nil, err
	}
	// Compare element counts, never byte products: uint64(AssignLen)*8
	// wraps for AssignLen >= 2^61, letting a checksum-valid forged meta
	// drive a giant allocation. len(payload)/8 cannot be forged.
	if meta.AssignLen < 0 || len(payload)%8 != 0 || uint64(meta.AssignLen) != uint64(len(payload))/8 {
		return nil, fmt.Errorf("%w: recall payload %d bytes, assign length %d",
			ErrCorrupt, len(payload), meta.AssignLen)
	}
	var assign []int
	if meta.AssignLen > 0 {
		assign = make([]int, meta.AssignLen)
		for i := range assign {
			assign[i] = int(int64(binary.LittleEndian.Uint64(payload[i*8:])))
		}
	}
	return &recall.Artifact{
		Task: meta.Task, Seed: meta.Seed, SimilarityK: meta.SimilarityK,
		Threshold: meta.Threshold, Scorer: meta.Scorer, Models: meta.Models,
		Assign: assign, Clusters: meta.Clusters,
	}, nil
}

// frameMeta is the shape of a frame encoding; Data is the payload.
type frameMeta struct {
	N int `json:"n"`
	D int `json:"d"`
}

// EncodeFrame encodes a numeric frame: the payload is the frame's
// row-major data verbatim, so the encoding is exactly mmap-shaped.
func EncodeFrame(f *numeric.Frame) ([]byte, error) {
	if f == nil {
		return nil, fmt.Errorf("artifact: nil frame")
	}
	if len(f.Data) != f.N*f.D {
		return nil, fmt.Errorf("artifact: frame data %d, shape %dx%d", len(f.Data), f.N, f.D)
	}
	return encode(KindFrame, frameMeta{N: f.N, D: f.D}, len(f.Data), func(payload []byte) {
		putFloats(payload, f.Data)
	})
}

// DecodeFrame verifies and decodes a frame encoding.
func DecodeFrame(data []byte) (*numeric.Frame, error) {
	var meta frameMeta
	payload, _, err := decodeBody(data, KindFrame, &meta)
	if err != nil {
		return nil, err
	}
	// Bound dimensions so the element count cannot wrap (2^26 * 2^26 =
	// 2^52), then compare element counts against the real payload length.
	if meta.N < 0 || meta.D < 0 || meta.N > 1<<26 || meta.D > 1<<26 ||
		len(payload)%8 != 0 || uint64(meta.N)*uint64(meta.D) != uint64(len(payload))/8 {
		return nil, fmt.Errorf("%w: frame payload %d bytes, shape %dx%d", ErrCorrupt, len(payload), meta.N, meta.D)
	}
	return &numeric.Frame{N: meta.N, D: meta.D, Data: getFloats(payload, meta.N*meta.D)}, nil
}
