package artifact

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"twophase/internal/datahub"
	"twophase/internal/numeric"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
	"twophase/internal/trainer"
)

// testMatrix builds a small deterministic matrix with awkward float
// values (denormals, negatives, values that lose digits in decimal).
func testMatrix(rng *rand.Rand, nM, nD, ep int) *perfmatrix.Matrix {
	m := &perfmatrix.Matrix{
		Task:    "nlp",
		Epochs:  ep,
		Seed:    42,
		HP:      trainer.Hyperparams{LearningRate: 0.1, BatchSize: 8, Epochs: ep, L2: 1e-4},
		Sizes:   datahub.Sizes{Train: 60, Val: 40, Test: 48},
		Entries: map[string]*perfmatrix.Entry{},
	}
	for i := 0; i < nM; i++ {
		m.Models = append(m.Models, "model_"+string(rune('a'+i)))
	}
	for j := 0; j < nD; j++ {
		m.Datasets = append(m.Datasets, "data/"+string(rune('a'+j)))
	}
	for _, model := range m.Models {
		for _, ds := range m.Datasets {
			e := &perfmatrix.Entry{Model: model, Dataset: ds}
			for k := 0; k < ep; k++ {
				e.Val = append(e.Val, rng.Float64()/3)
				e.Test = append(e.Test, rng.NormFloat64()*1e-300)
			}
			m.Entries[model+"\x00"+ds] = e
		}
	}
	return m
}

// TestMatrixRoundTrip is the property test against the JSON path: the
// binary codec must reproduce exactly the matrix a JSON round trip
// reproduces, bit for bit, across random shapes and values.
func TestMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		m := testMatrix(rng, 1+rng.Intn(5), 1+rng.Intn(5), rng.Intn(6))
		data, err := EncodeMatrix(m)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		got, err := DecodeMatrix(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		jdata, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON perfmatrix.Matrix
		if err := json.Unmarshal(jdata, &viaJSON); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, &viaJSON) {
			t.Fatalf("trial %d: binary and JSON round trips disagree:\n%+v\nvs\n%+v", trial, got, &viaJSON)
		}
		for _, model := range m.Models {
			for _, ds := range m.Datasets {
				want, _ := m.Entry(model, ds)
				have, err := got.Entry(model, ds)
				if err != nil {
					t.Fatal(err)
				}
				for k := range want.Val {
					if math.Float64bits(want.Val[k]) != math.Float64bits(have.Val[k]) ||
						math.Float64bits(want.Test[k]) != math.Float64bits(have.Test[k]) {
						t.Fatalf("trial %d: %s/%s epoch %d not bit-identical", trial, model, ds, k)
					}
				}
			}
		}
	}
}

func TestRecallRoundTrip(t *testing.T) {
	a := &recall.Artifact{
		Task: "cv", Seed: 7, SimilarityK: 5, Threshold: 0.08,
		Scorer: "calibrated-leep", Models: []string{"m1", "m2", "m3"},
		Assign: []int{0, -1, 2}, Clusters: 3,
	}
	data, err := EncodeRecall(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecall(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("recall round trip drifted:\n%+v\nvs\n%+v", got, a)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := numeric.NewFrame(3, 4)
	for i := range f.Data {
		f.Data[i] = float64(i) * 0.1
	}
	data, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("frame round trip drifted: %+v vs %+v", got, f)
	}
}

// TestFingerprintIsProvenance pins the fingerprint contract: same
// provenance, same fingerprint — across separate encodes — and changed
// provenance changes it. The fleet uses it as an HTTP ETag.
func TestFingerprintIsProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := testMatrix(rng, 3, 2, 4)
	a, _ := EncodeMatrix(m)
	b, _ := EncodeMatrix(m)
	ha, err := Verify(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := Verify(b)
	if ha.Fingerprint != hb.Fingerprint {
		t.Fatal("same matrix encoded twice changed fingerprint")
	}
	m2 := testMatrix(rng, 3, 2, 4)
	m2.Seed = 43
	c, _ := EncodeMatrix(m2)
	hc, _ := Verify(c)
	if hc.Fingerprint == ha.Fingerprint {
		t.Fatal("different seed kept the fingerprint")
	}
}

// TestEncodeMatrixRejectsRagged: matrices with missing entries or
// short curves must refuse binary encoding (the store falls back to
// JSON) rather than silently drop data.
func TestEncodeMatrixRejectsRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testMatrix(rng, 2, 2, 3)
	delete(m.Entries, m.Models[0]+"\x00"+m.Datasets[1])
	if _, err := EncodeMatrix(m); err == nil {
		t.Fatal("matrix with missing entry encoded")
	}
	m = testMatrix(rng, 2, 2, 3)
	m.Entries[m.Models[0]+"\x00"+m.Datasets[0]].Val = []float64{1}
	if _, err := EncodeMatrix(m); err == nil {
		t.Fatal("matrix with short curve encoded")
	}
}

// TestCorruptionNeverPassesChecksum flips every byte of a valid encoding
// (one at a time) and truncates it at every length: Verify must fail each
// time, and every decode must error instead of returning data.
func TestCorruptionNeverPassesChecksum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := testMatrix(rng, 2, 2, 2)
	data, err := EncodeMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Verify(mut); err == nil {
			t.Fatalf("bit flip at byte %d passed Verify", i)
		}
		if _, err := DecodeMatrix(mut); err == nil {
			t.Fatalf("bit flip at byte %d decoded", i)
		}
	}
	for n := 0; n < len(data); n++ {
		if _, err := Verify(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes passed Verify", n)
		}
		if _, err := DecodeMatrix(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
}

// TestForgedMetaNeverPanics is the regression suite for the uint64
// overflow class: a checksum-valid artifact whose meta section claims a
// shape whose byte size wraps uint64 (assign_len=2^61 so len*8 == 0,
// n=d=2^31 so n*d*8 == 0, a matrix whose nM*nD*ep*2*8 wraps) must decode
// to ErrCorrupt, never pass the size check and panic allocating. The
// fuzzer cannot reach these — mutations never produce valid CRC64s — so
// they are pinned here by crafting the encodings directly.
func TestForgedMetaNeverPanics(t *testing.T) {
	t.Run("recall/assign_len=2^61", func(t *testing.T) {
		data, err := encode(KindRecall, recallMeta{Task: "nlp", AssignLen: 1 << 61}, 0, func([]byte) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeRecall(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("forged assign_len decoded: %v", err)
		}
	})
	t.Run("frame/n=d=2^31", func(t *testing.T) {
		data, err := encode(KindFrame, frameMeta{N: 1 << 31, D: 1 << 31}, 0, func([]byte) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeFrame(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("forged frame shape decoded: %v", err)
		}
	})
	t.Run("frame/n*d!=payload", func(t *testing.T) {
		data, err := encode(KindFrame, frameMeta{N: 4, D: 4}, 2, func([]byte) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeFrame(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("undersized frame payload decoded: %v", err)
		}
	})
	t.Run("matrix/wrapping-shape", func(t *testing.T) {
		// 2^20 models × 2^20 datasets × 2^24 epochs: the old byte-product
		// check computed 2^20·2^20·2^24·2·8 ≡ 0 (mod 2^64) and accepted an
		// empty payload.
		meta := matrixMeta{
			Task:     "nlp",
			Models:   make([]string, 1<<20),
			Datasets: make([]string, 1<<20),
			Epochs:   1 << 24,
		}
		data, err := encode(KindMatrix, meta, 0, func([]byte) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeMatrix(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("wrapping matrix shape decoded: %v", err)
		}
	})
}

// TestDecodeWrongKind: a valid encoding of one kind must not decode as
// another.
func TestDecodeWrongKind(t *testing.T) {
	f := numeric.NewFrame(2, 2)
	data, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMatrix(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("frame decoded as matrix: %v", err)
	}
	if _, err := DecodeRecall(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("frame decoded as recall: %v", err)
	}
}

// TestMapFile exercises the mmap read path against a real file.
func TestMapFile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := testMatrix(rng, 2, 3, 4)
	data, err := EncodeMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, release, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	got, err := DecodeMatrix(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Entries, m.Entries) {
		t.Fatal("mmap-decoded matrix drifted")
	}
	if _, _, err := MapFile(filepath.Join(t.TempDir(), "absent.bin")); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v", err)
	}
}
