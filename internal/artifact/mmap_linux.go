//go:build linux

package artifact

import (
	"fmt"
	"os"
	"syscall"
)

// MapFile maps an artifact file read-only and returns its bytes plus an
// unmap closure. Decoding copies the numeric payload out, so callers hold
// the mapping only for the duration of a decode — the page cache then
// backs every process on the host with one copy of the artifact. Empty
// files (and platforms without mmap, via the fallback file) degrade to a
// plain read.
func MapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := info.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("artifact: %s: %d bytes exceeds address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support still serve reads.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return data, func() {}, nil
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
