//go:build !linux

package artifact

import "os"

// MapFile reads an artifact file whole on platforms without the mmap fast
// path; the contract (bytes + release closure) is identical.
func MapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}
