package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

// fakeBuilder counts builds per key and returns distinct fake frameworks
// stamped with their key, so tests can verify a handle never observes a
// framework built for another key.
type fakeBuilder struct {
	mu     sync.Mutex
	counts map[Key]int
	delay  time.Duration
	fail   func(Key) error // optional per-key failure injection
}

func newFakeBuilder() *fakeBuilder { return &fakeBuilder{counts: map[Key]int{}} }

func (b *fakeBuilder) build(_ context.Context, key Key) (*core.Framework, error) {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.mu.Lock()
	b.counts[key]++
	b.mu.Unlock()
	if b.fail != nil {
		if err := b.fail(key); err != nil {
			return nil, err
		}
	}
	return &core.Framework{Task: key.Task, Seed: key.Seed}, nil
}

func (b *fakeBuilder) count(key Key) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[key]
}

func newTestManager(t *testing.T, capacity int, b *fakeBuilder) *Manager {
	t.Helper()
	m, err := New(Options{Capacity: capacity, Build: b.build})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustGet(t *testing.T, m *Manager, key Key) *Handle {
	t.Helper()
	h, err := m.Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if h.Framework().Task != key.Task || h.Framework().Seed != key.Seed {
		t.Fatalf("handle for %v holds framework (%s, %d)", key, h.Framework().Task, h.Framework().Seed)
	}
	return h
}

var (
	keyA = Key{Task: datahub.TaskNLP, Seed: 1}
	keyB = Key{Task: datahub.TaskNLP, Seed: 2}
	keyC = Key{Task: datahub.TaskCV, Seed: 1}
)

// warmAll is the serving layer's warmup shape — one concurrent
// Get/Release lease per key — driven directly against the manager.
func warmAll(m *Manager, keys []Key) error {
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k Key) {
			defer wg.Done()
			h, err := m.Get(context.Background(), k)
			if err != nil {
				errs[i] = fmt.Errorf("warm %s: %w", k, err)
				return
			}
			h.Release()
		}(i, k)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func TestSingleflight(t *testing.T) {
	b := newFakeBuilder()
	b.delay = 5 * time.Millisecond
	m := newTestManager(t, 0, b)
	const callers = 16
	fws := make([]*core.Framework, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := m.Get(context.Background(), keyA)
			if err != nil {
				t.Error(err)
				return
			}
			fws[i] = h.Framework()
			h.Release()
		}(i)
	}
	wg.Wait()
	if got := b.count(keyA); got != 1 {
		t.Fatalf("%d builds for %d concurrent callers, want 1", got, callers)
	}
	for i := 1; i < callers; i++ {
		if fws[i] != fws[0] {
			t.Fatalf("caller %d got a different framework instance", i)
		}
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != callers-1 || st.Builds != 1 {
		t.Fatalf("stats after singleflight: %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	b := newFakeBuilder()
	m := newTestManager(t, 2, b)
	mustGet(t, m, keyA).Release()
	mustGet(t, m, keyB).Release()
	// Touch A so B becomes least recently used.
	mustGet(t, m, keyA).Release()
	// C overflows the capacity-2 cache: B (LRU) must go, A must stay.
	mustGet(t, m, keyC).Release()
	if st := m.Stats(); st.Resident != 2 || st.Evictions != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	mustGet(t, m, keyA).Release()
	if got := b.count(keyA); got != 1 {
		t.Fatalf("A was evicted (built %d times); LRU order ignored the touch", got)
	}
	mustGet(t, m, keyB).Release()
	if got := b.count(keyB); got != 2 {
		t.Fatalf("B built %d times, want 2 (evicted then rebuilt)", got)
	}
}

// TestEvictionKeepsInUseFrameworkAlive is the refcount guarantee: evicting
// an entry whose handle is still held must not invalidate that handle.
func TestEvictionKeepsInUseFrameworkAlive(t *testing.T) {
	b := newFakeBuilder()
	m := newTestManager(t, 1, b)
	hA := mustGet(t, m, keyA)
	fwA := hA.Framework()

	// B evicts A from the size-1 cache while A is in use.
	hB := mustGet(t, m, keyB)
	st := m.Stats()
	if st.Resident != 1 || st.Evictions != 1 {
		t.Fatalf("stats after in-use eviction: %+v", st)
	}
	if hA.Framework() != fwA || hA.Framework().Seed != keyA.Seed {
		t.Fatal("eviction tore the framework out from under an outstanding handle")
	}
	hA.Release()
	hA.Release() // idempotent
	hB.Release()

	// A fresh Get for A rebuilds it (the old entry is gone for good).
	mustGet(t, m, keyA).Release()
	if got := b.count(keyA); got != 2 {
		t.Fatalf("A built %d times, want 2", got)
	}
}

func TestBuildErrorNotCached(t *testing.T) {
	b := newFakeBuilder()
	boom := errors.New("boom")
	var failed atomic.Bool
	b.fail = func(Key) error {
		if failed.CompareAndSwap(false, true) {
			return boom
		}
		return nil
	}
	m := newTestManager(t, 0, b)
	if _, err := m.Get(context.Background(), keyA); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := m.Stats(); st.Resident != 0 || st.BuildFailures != 1 {
		t.Fatalf("failed build left residue: %+v", st)
	}
	mustGet(t, m, keyA).Release()
	if got := b.count(keyA); got != 2 {
		t.Fatalf("retry after failure built %d times total, want 2", got)
	}
}

// TestWaiterCancel: a waiter's dead context releases only that waiter; the
// build completes and serves everyone else.
func TestWaiterCancel(t *testing.T) {
	gate := make(chan struct{})
	m, err := New(Options{Build: func(_ context.Context, key Key) (*core.Framework, error) {
		<-gate
		return &core.Framework{Task: key.Task, Seed: key.Seed}, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan *Handle)
	go func() {
		h, err := m.Get(context.Background(), keyA)
		if err != nil {
			t.Error(err)
		}
		first <- h
	}()
	// Wait until the builder owns the cell, then join as a waiter with a
	// context we cancel mid-wait.
	for m.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error)
	go func() {
		_, err := m.Get(ctx, keyA)
		waiterErr <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v", err)
	}
	close(gate)
	h := <-first
	if h.Framework().Seed != keyA.Seed {
		t.Fatal("builder's handle corrupted by canceled waiter")
	}
	h.Release()
	if st := m.Stats(); st.InUse != 0 {
		t.Fatalf("refs leaked: %+v", st)
	}
}

// TestWarmCachedHitOnDeadContext: once an entry is built, a Get with an
// already-canceled context still serves it (the selection layer does its
// own cancellation checks) instead of flaking.
func TestWarmCachedHitOnDeadContext(t *testing.T) {
	m := newTestManager(t, 0, newFakeBuilder())
	mustGet(t, m, keyA).Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h, err := m.Get(ctx, keyA)
	if err != nil {
		t.Fatalf("warm hit failed on dead context: %v", err)
	}
	h.Release()
}

func TestWarm(t *testing.T) {
	b := newFakeBuilder()
	m := newTestManager(t, 2, b)
	keys := []Key{keyA, keyB, keyC}
	if err := warmAll(m, keys); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Builds != 3 {
		t.Fatalf("warm ran %d builds, want 3", st.Builds)
	}
	if st.Resident != 2 || st.Evictions != 1 {
		t.Fatalf("warming 3 keys into capacity 2: %+v", st)
	}
	if st.InUse != 0 {
		t.Fatalf("warm leaked handles: %+v", st)
	}

	b.fail = func(k Key) error {
		if k == keyC {
			return fmt.Errorf("no such world")
		}
		return nil
	}
	// keyC may or may not be resident; force a rebuild path by using a
	// fresh manager so the failure is observable.
	m2 := newTestManager(t, 2, b)
	if err := warmAll(m2, keys); err == nil {
		t.Fatal("warm swallowed a build failure")
	}
}

// TestConcurrencyHammerSize1 hammers a size-1 cache with concurrent
// Get/Release across three keys plus concurrent warmups — run under -race
// in CI. It proves (a) a handle always matches its key even when its entry
// is evicted mid-use, (b) no refs leak, and (c) the resident set stays
// within capacity.
func TestConcurrencyHammerSize1(t *testing.T) {
	b := newFakeBuilder()
	m := newTestManager(t, 1, b)
	keys := []Key{keyA, keyB, keyC}
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := keys[(w+i)%len(keys)]
				h, err := m.Get(context.Background(), key)
				if err != nil {
					t.Error(err)
					return
				}
				fw := h.Framework()
				if fw.Task != key.Task || fw.Seed != key.Seed {
					t.Errorf("handle for %v holds (%s, %d)", key, fw.Task, fw.Seed)
				}
				if i%7 == 0 {
					time.Sleep(time.Microsecond) // hold across evictions sometimes
				}
				h.Release()
			}
		}(w)
	}
	// Concurrent warmups compete with the workers for the single slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := warmAll(m, keys); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	st := m.Stats()
	if st.Resident > 1 {
		t.Fatalf("size-1 cache holds %d entries", st.Resident)
	}
	if st.InUse != 0 {
		t.Fatalf("refs leaked after hammer: %+v", st)
	}
	total := int64(workers*iters + 20*len(keys))
	if st.Hits+st.Misses != total {
		t.Fatalf("hits %d + misses %d != %d gets", st.Hits, st.Misses, total)
	}
	if st.Builds != st.Misses || st.BuildFailures != 0 {
		t.Fatalf("build accounting off: %+v", st)
	}
	for _, e := range m.Entries() {
		if e.Refs != 0 || !e.Built {
			t.Fatalf("entry %v left refs=%d built=%v", e.Key, e.Refs, e.Built)
		}
	}
}
