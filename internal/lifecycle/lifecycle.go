// Package lifecycle manages the resident set of built frameworks for the
// serving layer: a capacity-bounded LRU cache keyed by (task, seed) with
// singleflight build coalescing, refcounted handles so eviction can never
// tear a framework out from under an in-flight selection, and per-entry
// and aggregate hit/miss/evict/build-duration stats. The serving layer
// builds its warmup API on Get/Release, one admission-checked lease per
// configured world, before a server reports ready.
//
// Eviction is reclamation by reference counting: an evicted entry leaves
// the cache immediately (so the resident set stays bounded and future
// requests rebuild or reload it), but every Handle issued before the
// eviction keeps its framework fully usable until released — the paper's
// offline artifacts are immutable once built, so late users of an evicted
// framework still compute bit-identical selections.
package lifecycle

import (
	"container/list"
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"time"

	"twophase/internal/core"
)

// Key identifies one framework world: a task family built at a seed.
type Key struct {
	Task string
	Seed uint64
}

// String renders the key the way the artifact store names its files.
func (k Key) String() string { return fmt.Sprintf("%s-seed%d", k.Task, k.Seed) }

// BuildFunc resolves the framework for a key — typically by loading
// persisted stage artifacts and falling back to the offline build. The
// manager guarantees at most one concurrent call per key and never
// propagates a single caller's cancellation into the build (its result
// serves every later request), passing a context stripped of cancellation.
type BuildFunc func(ctx context.Context, key Key) (*core.Framework, error)

// Options configures a Manager.
type Options struct {
	// Capacity bounds how many frameworks stay resident; LRU entries are
	// evicted beyond it. 0 or negative means unbounded.
	Capacity int
	// Build resolves a missing entry. Required.
	Build BuildFunc
}

// entry is one cache cell. A cell is created in the "building" state with
// done open; the builder closes done exactly once with fw or err set.
// refs counts issued-but-unreleased handles plus waiters; all mutable
// fields besides fw/err/done are guarded by the manager's mutex.
type entry struct {
	key  Key
	done chan struct{}
	fw   *core.Framework
	err  error

	refs     int
	evicted  bool
	hits     int64
	buildDur time.Duration
	elem     *list.Element
}

func (e *entry) built() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Manager is the framework lifecycle manager. Safe for concurrent use.
type Manager struct {
	build    BuildFunc
	capacity int

	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // front = most recently used *entry

	hits, misses, evictions, builds, buildFailures int64
	buildTotal                                     time.Duration
}

// New creates a Manager.
func New(opts Options) (*Manager, error) {
	if opts.Build == nil {
		return nil, fmt.Errorf("lifecycle: nil build function")
	}
	return &Manager{
		build:    opts.Build,
		capacity: opts.Capacity,
		entries:  make(map[Key]*entry),
		lru:      list.New(),
	}, nil
}

// Handle is a leased reference to a built framework. The framework stays
// valid — even across an eviction — until Release, which is idempotent.
type Handle struct {
	mgr   *Manager
	entry *entry
	once  sync.Once
}

// Framework returns the leased framework.
func (h *Handle) Framework() *core.Framework { return h.entry.fw }

// Release returns the lease. After the last release of an evicted entry
// the framework is unreachable and reclaimed by the garbage collector.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.mgr.mu.Lock()
		h.entry.refs--
		h.mgr.mu.Unlock()
	})
}

// Get returns a handle on the framework for key, building it on first use.
// Concurrent callers for the same key share one build. The context bounds
// only this caller's wait on someone else's in-flight build; the build
// itself always runs to completion because its result serves every later
// request. A failed build is not cached — the next caller retries.
func (m *Manager) Get(ctx context.Context, key Key) (*Handle, error) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		e.refs++
		e.hits++
		m.hits++
		m.lru.MoveToFront(e.elem)
		m.mu.Unlock()
		// Prefer a completed build over an already-dead context so a warm
		// hit never flakes into a cancellation.
		select {
		case <-e.done:
		default:
			select {
			case <-e.done:
			case <-ctx.Done():
				m.release(e)
				return nil, ctx.Err()
			}
		}
		if e.err != nil {
			m.release(e)
			return nil, e.err
		}
		return &Handle{mgr: m, entry: e}, nil
	}
	e := &entry{key: key, done: make(chan struct{}), refs: 1}
	e.elem = m.lru.PushFront(e)
	m.entries[key] = e
	m.misses++
	m.mu.Unlock()

	start := time.Now()
	fw, err := m.runBuild(ctx, key)
	dur := time.Since(start)
	e.fw, e.err = fw, err

	m.mu.Lock()
	e.buildDur = dur
	m.buildTotal += dur
	if err != nil {
		m.buildFailures++
		// Remove the poisoned cell under the same lock waiters join
		// through, so no new waiter can attach; existing waiters wake on
		// close(done) below and observe the error.
		m.removeLocked(e)
		e.refs--
		m.mu.Unlock()
		close(e.done)
		return nil, err
	}
	m.builds++
	if fw.Degraded {
		// A degraded framework (served from an older snapshot because the
		// clean resolution failed) is valid for this request's waiters but
		// must not stick in the cache: the next Get has to retry a clean
		// rebuild, or the world would stay degraded forever.
		m.removeLocked(e)
	} else {
		m.evictOverflowLocked()
	}
	m.mu.Unlock()
	close(e.done)
	return &Handle{mgr: m, entry: e}, nil
}

// runBuild invokes the BuildFunc with cancellation stripped (the build's
// result serves every later request, not just the caller that started
// it) and converts a panicking build into an error: without the recover,
// the singleflight cell's done channel would never close and every waiter
// on the key would hang forever.
func (m *Manager) runBuild(ctx context.Context, key Key) (fw *core.Framework, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("lifecycle: build %s panicked: %v\n%s", key, rec, debug.Stack())
			fw, err = nil, fmt.Errorf("lifecycle: build %s panicked: %v", key, rec)
		}
	}()
	return m.build(context.WithoutCancel(ctx), key)
}

func (m *Manager) release(e *entry) {
	m.mu.Lock()
	e.refs--
	m.mu.Unlock()
}

// removeLocked detaches an entry from the map and LRU list.
func (m *Manager) removeLocked(e *entry) {
	if e.evicted {
		return
	}
	delete(m.entries, e.key)
	m.lru.Remove(e.elem)
	e.evicted = true
}

// evictOverflowLocked trims the cache back to capacity, oldest first.
// Entries still building are skipped — evicting one would strand the
// waiters sharing its singleflight cell — but in-use built entries are
// fair game: their handles stay valid, only the cache slot is reclaimed.
func (m *Manager) evictOverflowLocked() {
	if m.capacity <= 0 {
		return
	}
	for m.lru.Len() > m.capacity {
		var victim *entry
		for el := m.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*entry); e.built() {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything over capacity is still building
		}
		m.removeLocked(victim)
		m.evictions++
	}
}

// Stats is the manager's aggregate observability snapshot.
type Stats struct {
	// Capacity is the configured bound (0 = unbounded).
	Capacity int
	// Resident counts cached entries, including in-flight builds.
	Resident int
	// InUse counts resident entries with at least one outstanding handle.
	InUse int
	// Hits counts Gets served from a resident entry (including joins on an
	// in-flight build); Misses counts Gets that started a build.
	Hits, Misses int64
	// Evictions counts entries removed by the capacity bound.
	Evictions int64
	// Builds and BuildFailures count completed BuildFunc runs.
	Builds, BuildFailures int64
	// BuildTotal is the cumulative wall time spent in BuildFunc.
	BuildTotal time.Duration
}

// Stats snapshots the aggregate counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Capacity:      m.capacity,
		Resident:      m.lru.Len(),
		Hits:          m.hits,
		Misses:        m.misses,
		Evictions:     m.evictions,
		Builds:        m.builds,
		BuildFailures: m.buildFailures,
		BuildTotal:    m.buildTotal,
	}
	for el := m.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*entry).refs > 0 {
			s.InUse++
		}
	}
	return s
}

// EntryStats describes one resident cache entry.
type EntryStats struct {
	Key Key
	// Hits counts Gets served by this entry since it was created.
	Hits int64
	// Refs counts outstanding handles (and waiters) on the entry.
	Refs int
	// Built is false while the entry's offline build is still in flight.
	Built bool
	// BuildDuration is the wall time of the entry's build (zero until it
	// completes).
	BuildDuration time.Duration
}

// Entries snapshots the resident entries, most recently used first.
func (m *Manager) Entries() []EntryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]EntryStats, 0, m.lru.Len())
	for el := m.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, EntryStats{
			Key:           e.key,
			Hits:          e.hits,
			Refs:          e.refs,
			Built:         e.built(),
			BuildDuration: e.buildDur,
		})
	}
	return out
}

// Len reports how many entries are resident.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}
