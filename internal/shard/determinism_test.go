package shard_test

// Cross-path determinism: the same selection request must produce a
// bit-identical report no matter which serving path carries it — a direct
// Framework.SelectWith call, the in-process Dispatcher, a single-node
// HTTP server, or the sharding gateway. This is the property that makes
// the whole distributed tier safe: replicas can serve any key, failover
// is invisible, and a cache hit can never change an answer.

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"twophase/internal/api"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/service"
	"twophase/internal/shard"
)

var detSizes = datahub.Sizes{Train: 60, Val: 40, Test: 48}

// renderedReport is the serving outcome in wire form, comparable across
// every path.
type renderedReport struct {
	Winner      string
	Members     string
	ValAcc      float64
	TestAcc     float64
	Epochs      float64
	Recalled    int
	Truncated   bool
	TruncatedBy string
}

func renderResult(tr api.TargetResult) renderedReport {
	out := renderedReport{
		Winner:    tr.Winner,
		Members:   fmt.Sprint(tr.Members),
		ValAcc:    tr.ValAcc,
		TestAcc:   tr.TestAcc,
		Epochs:    tr.Epochs,
		Recalled:  tr.Recalled,
		Truncated: tr.Truncated,
	}
	if tr.Budget != nil {
		out.TruncatedBy = tr.Budget.TruncatedBy
	}
	return out
}

func renderReport(r *core.Report) renderedReport {
	out := renderedReport{
		Winner:      r.Outcome.Winner,
		Members:     fmt.Sprint(r.Members),
		ValAcc:      r.Outcome.WinnerVal,
		TestAcc:     r.Outcome.WinnerTest,
		Epochs:      r.TotalEpochs(),
		Truncated:   r.Truncated,
		TruncatedBy: r.TruncatedBy,
	}
	if r.Recall != nil {
		out.Recalled = len(r.Recall.Recalled)
	}
	return out
}

// TestBudgetedCrossPathDeterminism pins the anytime contract across the
// serving tier: for a FIXED epoch budget, the truncated best-so-far
// outcome is bit-identical through the direct framework call, the
// dispatcher, a single-node HTTP server and the sharding gateway — a
// truncated answer is as deterministic as a complete one, so replicas
// and failover stay invisible even under budgets.
func TestBudgetedCrossPathDeterminism(t *testing.T) {
	ctx := context.Background()
	const task, target = "nlp", "tweet_eval"
	const seed = uint64(0)

	svc, err := service.New(service.Options{Base: core.Options{Seed: seed, Sizes: detSizes}})
	if err != nil {
		t.Fatal(err)
	}
	disp := api.NewDispatcher(svc, seed)
	node := httptest.NewServer(api.NewHandlerWith(disp, api.HandlerOptions{Instance: "node"}))
	defer node.Close()
	nodeClient := api.NewClient(node.URL, nil)
	b2 := httptest.NewServer(api.NewHandlerWith(disp, api.HandlerOptions{Instance: "node2"}))
	defer b2.Close()
	router, err := shard.NewRouter(shard.RouterOptions{
		Backends:      []string{node.URL, b2.URL},
		Replicas:      2,
		Seed:          seed,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	router.Start(routerCtx)
	defer router.Close()

	fw, err := core.Build(core.Options{Task: task, Seed: seed, Sizes: detSizes})
	if err != nil {
		t.Fatal(err)
	}
	d, err := fw.Catalog.Get(target)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		strat  core.Strategy
		budget int
	}{
		{core.StrategyTwoPhase, 0},
		{core.StrategySH, 0},
		{core.StrategySH, 25}, // mid-run truncation at a stage boundary
	} {
		t.Run(fmt.Sprintf("%s/budget%d", tc.strat, tc.budget), func(t *testing.T) {
			budget := tc.budget
			report, err := fw.SelectWith(ctx, d, core.SelectOptions{Strategy: tc.strat, MaxEpochs: &budget})
			if err != nil {
				t.Fatal(err)
			}
			want := renderReport(report)
			if !want.Truncated || want.Winner == "" {
				t.Fatalf("budget %d did not truncate-with-winner: %+v", budget, want)
			}

			s := seed
			req := &api.SelectRequest{Task: task, Targets: []string{target},
				SelectOptions: api.SelectOptions{Strategy: string(tc.strat), Seed: &s, MaxEpochs: &budget}}
			for _, path := range []struct {
				name string
				api  api.API
			}{
				{"dispatcher", disp},
				{"http", nodeClient},
				{"gateway", router},
			} {
				resp, err := path.api.Select(ctx, req)
				if err != nil {
					t.Fatalf("%s: %v", path.name, err)
				}
				if resp.Failed != 0 || len(resp.Results) != 1 || resp.Truncated != 1 {
					t.Fatalf("%s: %+v", path.name, resp)
				}
				if got := renderResult(resp.Results[0]); got != want {
					t.Fatalf("%s diverged from direct call under budget:\n got %+v\nwant %+v", path.name, got, want)
				}
			}
		})
	}
}

// TestCrossPathDeterminism drives every strategy at two seeds through all
// four serving paths and requires bit-identical outcomes.
func TestCrossPathDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 5 strategies x 2 seeds x 4 serving paths")
	}
	ctx := context.Background()
	const task, target = "nlp", "tweet_eval"
	seeds := []uint64{0, 7}
	strategies := []core.Strategy{core.StrategyTwoPhase, core.StrategySH, core.StrategyBF, core.StrategyEnsemble, core.StrategyLSQ}

	// One shared service backs the dispatcher, the HTTP node and the
	// gateway's backends; the direct path rebuilds each framework from
	// scratch, so agreement is end-to-end, not cache reuse.
	svc, err := service.New(service.Options{Base: core.Options{Seed: seeds[0], Sizes: detSizes}})
	if err != nil {
		t.Fatal(err)
	}
	disp := api.NewDispatcher(svc, seeds[0])

	node := httptest.NewServer(api.NewHandlerWith(disp, api.HandlerOptions{Instance: "node"}))
	defer node.Close()
	nodeClient := api.NewClient(node.URL, nil)

	// The gateway fronts two "backends" (same service behind two URLs —
	// the scatter/merge and failover machinery is fully exercised; world
	// state is identical by construction, as it would be via the store).
	b2 := httptest.NewServer(api.NewHandlerWith(disp, api.HandlerOptions{Instance: "node2"}))
	defer b2.Close()
	router, err := shard.NewRouter(shard.RouterOptions{
		Backends:      []string{node.URL, b2.URL},
		Replicas:      2,
		Seed:          seeds[0],
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	router.Start(routerCtx)
	defer router.Close()

	directs := make(map[uint64]*core.Framework, len(seeds))
	for _, seed := range seeds {
		fw, err := core.Build(core.Options{Task: task, Seed: seed, Sizes: detSizes})
		if err != nil {
			t.Fatal(err)
		}
		directs[seed] = fw
	}

	for _, strat := range strategies {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", strat, seed), func(t *testing.T) {
				// Path 1: direct framework call.
				d, err := directs[seed].Catalog.Get(target)
				if err != nil {
					t.Fatal(err)
				}
				report, err := directs[seed].SelectWith(ctx, d, core.SelectOptions{Strategy: strat})
				if err != nil {
					t.Fatal(err)
				}
				want := renderReport(report)

				s := seed
				req := &api.SelectRequest{Task: task, Targets: []string{target}, SelectOptions: api.SelectOptions{Strategy: string(strat), Seed: &s}}
				for _, path := range []struct {
					name string
					api  api.API
				}{
					{"dispatcher", disp},
					{"http", nodeClient},
					{"gateway", router},
				} {
					resp, err := path.api.Select(ctx, req)
					if err != nil {
						t.Fatalf("%s: %v", path.name, err)
					}
					if resp.Failed != 0 || len(resp.Results) != 1 {
						t.Fatalf("%s: %+v", path.name, resp)
					}
					if got := renderResult(resp.Results[0]); got != want {
						t.Fatalf("%s diverged from direct call:\n got %+v\nwant %+v", path.name, got, want)
					}
					if resp.Seed != seed || resp.Strategy != string(strat) {
						t.Fatalf("%s response header drifted: %+v", path.name, resp)
					}
				}
			})
		}
	}
}

// TestPrefilterCrossPathDeterminism composes prefilter_top_k with each
// epoch-trained strategy and requires the filtered outcome to be
// bit-identical through all four serving paths — the pre-filter must not
// introduce any path-dependent state.
func TestPrefilterCrossPathDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 3 strategies x 4 serving paths")
	}
	ctx := context.Background()
	const task, target = "nlp", "tweet_eval"
	const seed = uint64(7)
	const topK = 4

	svc, err := service.New(service.Options{Base: core.Options{Seed: seed, Sizes: detSizes}})
	if err != nil {
		t.Fatal(err)
	}
	disp := api.NewDispatcher(svc, seed)
	node := httptest.NewServer(api.NewHandlerWith(disp, api.HandlerOptions{Instance: "node"}))
	defer node.Close()
	nodeClient := api.NewClient(node.URL, nil)
	b2 := httptest.NewServer(api.NewHandlerWith(disp, api.HandlerOptions{Instance: "node2"}))
	defer b2.Close()
	router, err := shard.NewRouter(shard.RouterOptions{
		Backends:      []string{node.URL, b2.URL},
		Replicas:      2,
		Seed:          seed,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	router.Start(routerCtx)
	defer router.Close()

	fw, err := core.Build(core.Options{Task: task, Seed: seed, Sizes: detSizes})
	if err != nil {
		t.Fatal(err)
	}
	d, err := fw.Catalog.Get(target)
	if err != nil {
		t.Fatal(err)
	}

	for _, strat := range []core.Strategy{core.StrategyTwoPhase, core.StrategySH, core.StrategyEnsemble} {
		t.Run(string(strat), func(t *testing.T) {
			report, err := fw.SelectWith(ctx, d, core.SelectOptions{Strategy: strat, PrefilterTopK: topK})
			if err != nil {
				t.Fatal(err)
			}
			want := renderReport(report)
			plain, err := fw.SelectWith(ctx, d, core.SelectOptions{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			if report.Ledger.Total() >= plain.Ledger.Total() {
				t.Fatalf("prefiltered %s cost %v did not undercut unfiltered %v", strat, report.Ledger.Total(), plain.Ledger.Total())
			}

			s := seed
			req := &api.SelectRequest{Task: task, Targets: []string{target},
				SelectOptions: api.SelectOptions{Strategy: string(strat), Seed: &s, PrefilterTopK: topK}}
			for _, path := range []struct {
				name string
				api  api.API
			}{
				{"dispatcher", disp},
				{"http", nodeClient},
				{"gateway", router},
			} {
				resp, err := path.api.Select(ctx, req)
				if err != nil {
					t.Fatalf("%s: %v", path.name, err)
				}
				if resp.Failed != 0 || len(resp.Results) != 1 {
					t.Fatalf("%s: %+v", path.name, resp)
				}
				if got := renderResult(resp.Results[0]); got != want {
					t.Fatalf("%s diverged from direct prefiltered call:\n got %+v\nwant %+v", path.name, got, want)
				}
			}
		})
	}
}

// TestUnknownStrategyTypedOnEveryPath is the strategy-parsing-drift
// regression: an unknown strategy must surface as the SAME typed
// bad_request on every serving path — direct call, dispatcher, HTTP node
// and gateway — never as an untyped 500. All four route through
// core.ParseStrategy, so a name is either valid everywhere or rejected
// everywhere.
func TestUnknownStrategyTypedOnEveryPath(t *testing.T) {
	ctx := context.Background()
	const task, target = "nlp", "tweet_eval"
	const seed = uint64(0)
	const bogus = "least-squares" // plausible but not a wire name

	svc, err := service.New(service.Options{Base: core.Options{Seed: seed, Sizes: detSizes}})
	if err != nil {
		t.Fatal(err)
	}
	disp := api.NewDispatcher(svc, seed)
	node := httptest.NewServer(api.NewHandlerWith(disp, api.HandlerOptions{Instance: "node"}))
	defer node.Close()
	b2 := httptest.NewServer(api.NewHandlerWith(disp, api.HandlerOptions{Instance: "node2"}))
	defer b2.Close()
	router, err := shard.NewRouter(shard.RouterOptions{
		Backends:      []string{node.URL, b2.URL},
		Replicas:      2,
		Seed:          seed,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	router.Start(routerCtx)
	defer router.Close()

	// Path 1: the direct framework call rejects before any phase runs.
	fw, err := core.Build(core.Options{Task: task, Seed: seed, Sizes: detSizes})
	if err != nil {
		t.Fatal(err)
	}
	d, err := fw.Catalog.Get(target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.SelectWith(ctx, d, core.SelectOptions{Strategy: core.Strategy(bogus)}); err == nil {
		t.Fatal("direct SelectWith accepted an unknown strategy")
	}

	// Paths 2-4: the wire layers reject with the typed 400.
	req := &api.SelectRequest{Task: task, Targets: []string{target},
		SelectOptions: api.SelectOptions{Strategy: bogus}}
	for _, path := range []struct {
		name string
		api  api.API
	}{
		{"dispatcher", disp},
		{"http", api.NewClient(node.URL, nil)},
		{"gateway", router},
	} {
		_, err := path.api.Select(ctx, req)
		if err == nil {
			t.Fatalf("%s accepted an unknown strategy", path.name)
		}
		if !errors.Is(err, api.ErrBadRequest) {
			t.Fatalf("%s: unknown strategy surfaced as %v, want ErrBadRequest", path.name, err)
		}
		if status := api.HTTPStatus(err); status != 400 {
			t.Fatalf("%s: unknown strategy mapped to HTTP %d, want 400", path.name, status)
		}
	}
}
