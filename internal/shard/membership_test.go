package shard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// flakyProbe is a scriptable ProbeFunc: each node answers from its queue
// of outcomes, repeating the last one forever.
type flakyProbe struct {
	mu       sync.Mutex
	outcomes map[string][]error
	instance map[string]string
}

func (p *flakyProbe) probe(_ context.Context, node string) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.outcomes[node]
	var err error
	if len(q) > 0 {
		err = q[0]
		if len(q) > 1 {
			p.outcomes[node] = q[1:]
		}
	}
	if err != nil {
		return "", err
	}
	return p.instance[node], nil
}

func (p *flakyProbe) set(node string, outcomes ...error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.outcomes[node] = outcomes
}

func newFlakyProbe() *flakyProbe {
	return &flakyProbe{outcomes: map[string][]error{}, instance: map[string]string{}}
}

func TestMembershipRejectsBadOptions(t *testing.T) {
	if _, err := NewMembership(MembershipOptions{Probe: func(context.Context, string) (string, error) { return "", nil }}); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := NewMembership(MembershipOptions{Nodes: []string{"a"}}); err == nil {
		t.Fatal("nil probe accepted")
	}
}

// TestMembershipDownAfterThresholdAndRecovery: a node goes down only
// after K consecutive failures, counts one down event per transition, and
// one success re-admits it.
func TestMembershipDownAfterThreshold(t *testing.T) {
	probe := newFlakyProbe()
	probe.instance["a"] = "inst-a"
	m, err := NewMembership(MembershipOptions{
		Nodes:     []string{"a"},
		Probe:     probe.probe,
		Interval:  time.Hour, // ticks never fire; we drive rounds by hand
		Threshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	probe.set("a", nil)
	m.probeAll(ctx)
	if !m.Alive("a") || m.AliveCount() != 1 {
		t.Fatal("healthy node not alive")
	}
	if s := m.Snapshot(); s[0].Instance != "inst-a" {
		t.Fatalf("instance not learned from probe: %+v", s[0])
	}

	boom := errors.New("connection refused")
	probe.set("a", boom)
	m.probeAll(ctx)
	if !m.Alive("a") {
		t.Fatal("one failure below threshold marked the node down")
	}
	m.probeAll(ctx)
	if m.Alive("a") {
		t.Fatal("threshold reached but node still alive")
	}
	m.probeAll(ctx) // further failures must not double-count the event
	s := m.Snapshot()[0]
	if s.DownEvents != 1 || s.Fails != 3 {
		t.Fatalf("after 3 failures: %+v", s)
	}

	probe.set("a", nil)
	m.probeAll(ctx)
	if !m.Alive("a") {
		t.Fatal("success did not re-admit the node")
	}
	if s := m.Snapshot()[0]; s.Fails != 0 || s.DownEvents != 1 {
		t.Fatalf("after recovery: %+v", s)
	}
	// Instance survives the outage; down events accumulate per transition.
	probe.set("a", boom)
	m.probeAll(ctx)
	m.probeAll(ctx)
	if s := m.Snapshot()[0]; s.DownEvents != 2 || s.Instance != "inst-a" {
		t.Fatalf("second outage: %+v", s)
	}
}

// TestMembershipReportFailure: request-path failures count against the
// same threshold as missed probes.
func TestMembershipReportFailure(t *testing.T) {
	probe := newFlakyProbe()
	m, err := NewMembership(MembershipOptions{
		Nodes: []string{"a", "b"}, Probe: probe.probe, Interval: time.Hour, Threshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.ReportFailure("a")
	m.ReportFailure("a")
	if m.Alive("a") {
		t.Fatal("request-path failures did not mark the node down")
	}
	if !m.Alive("b") {
		t.Fatal("unrelated node affected")
	}
	if m.AliveCount() != 1 {
		t.Fatalf("alive count = %d", m.AliveCount())
	}
}

// TestMembershipStartProbesAndCloses: the probe loop runs a first round
// promptly (WaitProbed) and Close terminates it.
func TestMembershipStartAndClose(t *testing.T) {
	probe := newFlakyProbe()
	probe.set("a", errors.New("down"))
	m, err := NewMembership(MembershipOptions{
		Nodes: []string{"a"}, Probe: probe.probe, Interval: 10 * time.Millisecond, Threshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Probed() {
		t.Fatal("membership claims a probe round before Start")
	}
	m.Start(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitProbed(ctx); err != nil {
		t.Fatalf("first probe round never completed: %v", err)
	}
	if !m.Probed() {
		t.Fatal("Probed false after WaitProbed returned")
	}
	deadline := time.After(5 * time.Second)
	for m.Alive("a") {
		select {
		case <-deadline:
			t.Fatal("failing node never marked down by the probe loop")
		case <-time.After(5 * time.Millisecond):
		}
	}
	m.Close() // must not hang or race
}
