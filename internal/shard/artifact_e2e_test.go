package shard_test

// Multi-process cold-start smoke for the binary-artifact tier: two
// backends with SEPARATE stores on one ring. Backend A warms a world;
// backend B — which never built anything — serves that world by fetching
// A's artifacts over /v1/artifacts, with zero local offline builds and a
// bit-identical report. This is the O(W×B) → O(W) fleet cold-start claim
// as an executable check.

import (
	"context"
	"fmt"
	"os/exec"
	"reflect"
	"strconv"
	"testing"
	"time"

	"twophase/internal/api"
	"twophase/internal/shard"
)

func TestEndToEndArtifactColdStart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e harness (builds binaries, spawns 2 processes)")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bins, err := buildBinaries()
	if err != nil {
		t.Fatal(err)
	}

	logDir := t.TempDir()
	sizeFlags := []string{"-train", "60", "-val", "40", "-test", "48"}
	const task, target = "nlp", "tweet_eval"

	// Reserve both ports up front: the ring hashes the full URL list, so
	// every process (and this test) must agree on it before boot.
	portA, portB := freePort(t), freePort(t)
	urlA := "http://127.0.0.1:" + strconv.Itoa(portA)
	urlB := "http://127.0.0.1:" + strconv.Itoa(portB)
	fleet := urlA + "," + urlB

	// Pick a seed owned by A under replicas=1, so the warm spec lands
	// entirely on A and B provably cannot have built the world itself.
	ring, err := shard.NewRing([]string{urlA, urlB}, shard.DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0)
	for ; seed < 64; seed++ {
		if ring.Owners(shard.RouteKey(task, seed), 1)[0] == urlA {
			break
		}
	}
	if seed == 64 {
		t.Fatal("no seed in 0..63 owned by backend A — ring is broken")
	}
	warm := fmt.Sprintf("%s:%d", task, seed)

	// Both backends get the SAME -warm spec; ring-aware filtering must
	// reduce it to "everything" on A and "nothing" on B.
	spawnBackend := func(name, addr, selfURL string) *proc {
		args := append([]string{
			"-addr", addr,
			"-instance", name,
			"-store", t.TempDir(), // private store: nothing shared via disk
			"-warm", warm,
			"-backends", fleet,
			"-self", selfURL,
			"-replicas", "1",
		}, sizeFlags...)
		p := spawn(t, name, bins["apiserver"], logDir, args...)
		p.url = selfURL
		return p
	}
	a := spawnBackend("backend-a", "127.0.0.1:"+strconv.Itoa(portA), urlA)
	b := spawnBackend("backend-b", "127.0.0.1:"+strconv.Itoa(portB), urlB)
	// A reports ready only after its warm build; B owns no warm keys and
	// must come up without building anything.
	waitHealthy(t, a.url, 120*time.Second)
	waitHealthy(t, b.url, 15*time.Second)

	ctx := context.Background()
	ca, cb := api.NewClient(a.url, nil), api.NewClient(b.url, nil)

	// B serves A's world: the artifacts arrive over the ring, not from a
	// local build, and the report is bit-identical to the owner's.
	fromB := selectOne(t, cb, task, target, seed)
	if fromB.OfflineBuilds != 0 {
		t.Fatalf("backend B built %d worlds; artifact fetch should have made it 0", fromB.OfflineBuilds)
	}
	fromA := selectOne(t, ca, task, target, seed)
	if !reflect.DeepEqual(stripRouting(fromA), stripRouting(fromB)) {
		t.Fatalf("fetched world diverges from built world:\n%+v\nvs\n%+v", fromB, fromA)
	}

	stA, err := ca.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := cb.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// A built its owned world exactly once (the ring-aware warmup),
	// fetched nothing, and logged no fetch failure — being a world's
	// only replica is not a distribution failure.
	if stA.OfflineBuilds != 1 || stA.Artifacts == nil || stA.Artifacts.Fetches != 0 {
		t.Fatalf("backend A stats: %+v artifacts %+v, want 1 build / 0 fetches", stA, stA.Artifacts)
	}
	if stA.Artifacts.FetchFailures != 0 {
		t.Fatalf("backend A logged %d fetch failures warming its own world, want 0", stA.Artifacts.FetchFailures)
	}
	// B built nothing, fetched the world's documents (matrix + recall),
	// and fell back to zero local builds.
	if stB.OfflineBuilds != 0 || stB.Artifacts == nil {
		t.Fatalf("backend B stats: %+v, want 0 builds + artifacts block", stB)
	}
	if stB.Artifacts.Fetches == 0 || stB.Artifacts.FallbackBuilds != 0 {
		t.Fatalf("backend B artifacts: %+v, want fetches > 0 and no fallback builds", stB.Artifacts)
	}

	// The fetched artifacts persisted into B's own store: a repeat
	// request is served resident (no new fetches), and B can now answer
	// /v1/artifacts for the world itself — distribution is transitive.
	again := selectOne(t, cb, task, target, seed)
	if !reflect.DeepEqual(stripRouting(again), stripRouting(fromB)) {
		t.Fatal("backend B drifted across identical requests")
	}
	stB2, err := cb.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stB2.Artifacts.Fetches != stB.Artifacts.Fetches {
		t.Fatalf("resident world re-fetched: %d -> %d", stB.Artifacts.Fetches, stB2.Artifacts.Fetches)
	}
	key := shard.RouteKey(task, seed)
	if data, _, err := cb.FetchArtifact(ctx, "matrices", key, ""); err != nil || len(data) == 0 {
		t.Fatalf("backend B cannot re-serve the fetched artifact: %v", err)
	}
	wantDoc, _, err := ca.FetchArtifact(ctx, "matrices", key, "")
	if err != nil {
		t.Fatal(err)
	}
	gotDoc, _, err := cb.FetchArtifact(ctx, "matrices", key, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantDoc, gotDoc) {
		t.Fatal("artifact bytes mutated in transit: A's and B's stored documents differ")
	}
}
