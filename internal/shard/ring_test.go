package shard

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingRejectsBadNodeSets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// TestRingDeterministic: two rings over the same node set route every key
// identically — the property that lets independent gateway processes
// agree on owners without coordination.
func TestRingDeterministic(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := NewRing(nodes, 32)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := RouteKey("nlp", uint64(i))
		if got, want := r1.Owners(key, 2), r2.Owners(key, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("rings disagree on %q: %v vs %v", key, got, want)
		}
	}
}

// TestRingOwnersDistinctAndClamped: the owner list never repeats a node
// and never exceeds the fleet size.
func TestRingOwnersDistinct(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	r, err := NewRing(nodes, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		owners := r.Owners(fmt.Sprintf("key-%d", i), 5)
		if len(owners) != len(nodes) {
			t.Fatalf("owners(%d, 5) over 3 nodes = %v", i, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner in %v", owners)
			}
			seen[o] = true
		}
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Fatalf("owners(k, 0) = %v, want primary only", got)
	}
	if r.Owner("k") != r.Owners("k", 1)[0] {
		t.Fatal("Owner disagrees with Owners")
	}
}

// TestRingBalance: with enough vnodes, every node owns a reasonable share
// of the key space (no node is starved or hot by more than ~3x).
func TestRingBalance(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := NewRing(nodes, 0) // DefaultVNodes
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("task-%d-seed%d", i%7, i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.25/3 || share > 0.25*3 {
			t.Fatalf("node %s owns %.1f%% of keys (counts %v)", n, 100*share, counts)
		}
	}
}

// TestRingStabilityUnderMembership: a key's surviving owners keep their
// relative priority when a node is removed from the fleet — the skip-dead
// lookup strategy depends on it.
func TestRingStabilityUnderRemoval(t *testing.T) {
	all := []string{"a", "b", "c", "d"}
	full, err := NewRing(all, 64)
	if err != nil {
		t.Fatal(err)
	}
	without := map[string]*Ring{}
	for _, dead := range all {
		var rest []string
		for _, n := range all {
			if n != dead {
				rest = append(rest, n)
			}
		}
		without[dead], err = NewRing(rest, 64)
		if err != nil {
			t.Fatal(err)
		}
	}
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		owner := full.Owner(key)
		for _, dead := range all {
			if dead == owner {
				continue
			}
			// Removing an unrelated node must not reroute this key.
			if got := without[dead].Owner(key); got != owner {
				moved++
			}
		}
	}
	if moved > 0 {
		t.Fatalf("%d/%d key-owner pairs moved when an unrelated node left the ring", moved, keys*3)
	}
}

func TestRouteKeyMatchesStoreKey(t *testing.T) {
	// The routing key and the artifact store key must stay one namespace:
	// the node that owns a world owns its artifacts' locality.
	if got := RouteKey("nlp", 42); got != "nlp-seed42" {
		t.Fatalf("RouteKey = %q", got)
	}
}
