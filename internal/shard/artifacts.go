package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"twophase/internal/api"
	"twophase/internal/artifact"
	"twophase/internal/breaker"
	"twophase/internal/faultinject"
	"twophase/internal/lifecycle"
	"twophase/internal/service"
)

// fetchAttemptTimeout bounds one artifact fetch from one ring peer. The
// fetcher runs under the lifecycle's uncancelable build context, so it
// must carry its own deadline or a wedged peer would hang the build
// forever instead of falling through to the next owner.
const fetchAttemptTimeout = 10 * time.Second

// OwnedKeys filters a warm list down to the worlds this backend owns on
// the ring: the keys whose replica owner set (of size replicas) includes
// self. With every backend warming only its owned keys, fleet cold start
// builds each world replicas times total instead of once per backend —
// the rest of the fleet fetches the finished artifacts over the ring.
// A nil ring (single-node deployment) owns everything.
func OwnedKeys(keys []lifecycle.Key, ring *Ring, self string, replicas int) []lifecycle.Key {
	if ring == nil {
		return keys
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	var owned []lifecycle.Key
	for _, k := range keys {
		for _, owner := range ring.Owners(RouteKey(k.Task, k.Seed), replicas) {
			if owner == self {
				owned = append(owned, k)
				break
			}
		}
	}
	return owned
}

// NewArtifactFetcher returns a service.ArtifactFetcher that resolves a
// world's ring owners and fetches the named artifact document from the
// first peer that has it. The store key ("task-seedN") IS the routing
// key, so artifact locality follows request routing: the owners tried
// here are exactly the backends whose ring-aware warmup built the world.
// Self is skipped (a local miss is why the fetcher ran), every document
// is checksum-verified before it is trusted, and each attempt carries
// its own timeout. A per-peer circuit breaker cuts off a hanging or
// corrupt-serving peer so repeated builds don't each re-pay its attempt
// timeout; a typed "unknown artifact" miss is a healthy answer and never
// trips it. An error means no live owner had a valid copy; the caller
// falls back to a local build.
func NewArtifactFetcher(ring *Ring, self string, replicas int, hc *http.Client) func(ctx context.Context, kind, name string) ([]byte, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if hc == nil {
		hc = &http.Client{}
	}
	var mu sync.Mutex
	clients := make(map[string]*api.Client)
	clientFor := func(node string) *api.Client {
		mu.Lock()
		defer mu.Unlock()
		c, ok := clients[node]
		if !ok {
			c = api.NewClient(node, hc)
			clients[node] = c
		}
		return c
	}
	breakers := breaker.NewSet(breaker.Options{})
	return func(ctx context.Context, kind, name string) ([]byte, error) {
		var lastErr error
		for _, owner := range ring.Owners(name, replicas) {
			if owner == self {
				continue
			}
			if !breakers.Allow(owner) {
				lastErr = fmt.Errorf("%s: %w: artifact fetch circuit open", owner, api.ErrUnavailable)
				continue
			}
			data, err := fetchOne(ctx, clientFor(owner), kind, name)
			if err != nil {
				// A typed miss is a healthy peer answering "I don't have
				// it" — only real failures (hangs, resets, corrupt bytes)
				// count against the circuit.
				if !errors.Is(err, api.ErrUnknownArtifact) {
					breakers.Failure(owner)
				}
				lastErr = fmt.Errorf("%s: %w", owner, err)
				continue
			}
			if _, err := artifact.Verify(data); err != nil {
				// A peer serving bytes that fail their own checksum is
				// broken, not just missing the key.
				breakers.Failure(owner)
				lastErr = fmt.Errorf("%s: %w", owner, err)
				continue
			}
			breakers.Success(owner)
			return data, nil
		}
		if lastErr != nil {
			return nil, fmt.Errorf("shard: fetch %s/%s: %w", kind, name, lastErr)
		}
		return nil, fmt.Errorf("shard: fetch %s/%s: %w", kind, name, service.ErrNoPeers)
	}
}

// fetchOne performs one bounded fetch attempt against one peer, applying
// the fetch.request and fetch.body fault sites: a request fault hangs or
// fails the attempt before any byte moves; a body fault corrupts the
// received document (the checksum gate must catch it) or drops it
// mid-transfer after the request itself succeeded.
func fetchOne(ctx context.Context, c *api.Client, kind, name string) ([]byte, error) {
	attempt, cancel := context.WithTimeout(ctx, fetchAttemptTimeout)
	defer cancel()
	if f := faultinject.On(faultinject.SiteFetchRequest); f != nil {
		if f.Action == faultinject.ActHang {
			f.Sleep(attempt.Done())
			if err := attempt.Err(); err != nil {
				return nil, fmt.Errorf("shard: fetch request: %w: %w", f.Err(), err)
			}
		} else {
			return nil, fmt.Errorf("shard: fetch request: %w", f.Err())
		}
	}
	data, _, err := c.FetchArtifact(attempt, kind, name, "")
	if err != nil {
		return nil, err
	}
	if f := faultinject.On(faultinject.SiteFetchBody); f != nil {
		switch f.Action {
		case faultinject.ActCorrupt:
			data = f.Corrupt(data)
		case faultinject.ActHang:
			f.Sleep(attempt.Done())
		default:
			return nil, fmt.Errorf("shard: fetch body: %w: disconnected after %d bytes", f.Err(), f.Prefix(len(data)))
		}
	}
	return data, nil
}
