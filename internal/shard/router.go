package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"twophase/internal/admission"
	"twophase/internal/api"
	"twophase/internal/breaker"
	"twophase/internal/core"
)

// Hedging defaults: the latency window size and how many samples must
// accumulate before hedging arms (an unwarmed percentile would hedge on
// noise).
const (
	DefaultHedgeWindow     = 256
	DefaultHedgeMinSamples = 20
)

// DefaultReplicas is the owner-set size per (task, seed) key when
// RouterOptions leaves it unset: a primary plus one failover replica.
const DefaultReplicas = 2

// statsTimeout bounds how long a gateway stats scrape waits on each
// backend's /v1/stats. Stats are cheap counters server-side; a backend
// that cannot answer within this is wedged and reported without a
// stats document rather than stalling the scrape.
const statsTimeout = 5 * time.Second

// RouterOptions configures a Router.
type RouterOptions struct {
	// Backends are the backend base URLs (e.g. "http://10.0.0.3:8080").
	// Required, and fixed for the router's lifetime.
	Backends []string
	// Replicas is the owner-set size per key (0 = DefaultReplicas,
	// clamped to the backend count). Failover never leaves the owner set:
	// a key's worlds are only ever built on its replicas.
	Replicas int
	// VNodes is the virtual-node count per backend on the ring
	// (0 = DefaultVNodes).
	VNodes int
	// Seed is the routing seed for requests that do not override one. It
	// must match the backends' -seed so the gateway routes a defaulted
	// request to the world the backend will actually serve.
	Seed uint64
	// ProbeInterval / ProbeThreshold tune health-check membership
	// (0 = package defaults).
	ProbeInterval  time.Duration
	ProbeThreshold int
	// HTTPClient is shared by all backend clients (nil =
	// http.DefaultClient). It must not impose a global timeout shorter
	// than a cold offline build.
	HTTPClient *http.Client
	// HedgePercentile arms hedged sub-requests: a select sub-request
	// still in flight past the fleet's recent p-th latency percentile is
	// raced against the next replica owner, first success wins. Safe
	// because replicas are bit-identical for the same request (the
	// determinism suite proves it). 0 disables hedging.
	HedgePercentile float64
	// HedgeMinSamples is how many latency samples must accumulate before
	// hedging arms (0 = DefaultHedgeMinSamples).
	HedgeMinSamples int
	// AttemptTimeout bounds each individual forwarded HTTP attempt,
	// distinct from the request's own deadline: a hung backend costs one
	// attempt timeout and a failover, not the whole deadline_ms. 0 leaves
	// attempts bounded only by the caller's context.
	AttemptTimeout time.Duration
	// Breaker tunes the per-backend circuit breakers (zero value =
	// package defaults). A backend whose breaker is open is skipped by
	// scatter and failover until its cooldown admits probes again; health
	// probe successes also close it directly.
	Breaker breaker.Options
}

// backendCounters is one backend's routing ledger (atomics).
type backendCounters struct {
	requests int64
	failures int64
}

// Router routes v1 selection traffic across a fixed backend fleet: each
// (task, seed) world hashes to a stable replica owner set on a
// consistent-hash ring, batch requests scatter across the world's live
// owners and gather back in request order, and a sub-request that hits a
// dead or failing backend fails over to the next replica. Router
// implements api.API, so the gateway serves the exact v1 contract of a
// single backend — clients cannot tell the difference (except for the
// per-target "backend" field reporting who served them).
type Router struct {
	ring    *Ring
	members *Membership
	clients map[string]*api.Client
	opts    RouterOptions

	counters     map[string]*backendCounters
	breakers     *breaker.Set
	failovers    int64 // atomic
	breakerSkips int64 // atomic: candidates skipped by an open breaker
	hedges       int64 // atomic: hedged sub-requests fired
	hedgeWins    int64 // atomic: hedges whose response was the one used
	latency      *admission.Window
}

// NewRouter builds a router over a fixed backend set. Start begins health
// probing; until then every backend is optimistically alive.
func NewRouter(opts RouterOptions) (*Router, error) {
	if opts.Replicas <= 0 {
		opts.Replicas = DefaultReplicas
	}
	if opts.Replicas > len(opts.Backends) {
		opts.Replicas = len(opts.Backends)
	}
	ring, err := NewRing(opts.Backends, opts.VNodes)
	if err != nil {
		return nil, err
	}
	if opts.HedgeMinSamples <= 0 {
		opts.HedgeMinSamples = DefaultHedgeMinSamples
	}
	r := &Router{
		ring:     ring,
		clients:  make(map[string]*api.Client, len(opts.Backends)),
		counters: make(map[string]*backendCounters, len(opts.Backends)),
		breakers: breaker.NewSet(opts.Breaker),
		opts:     opts,
		latency:  admission.NewWindow(DefaultHedgeWindow),
	}
	for _, b := range opts.Backends {
		c := api.NewClient(b, opts.HTTPClient)
		if opts.AttemptTimeout > 0 {
			c = c.WithAttemptTimeout(opts.AttemptTimeout)
		}
		r.clients[b] = c
		r.counters[b] = &backendCounters{}
	}
	r.members, err = NewMembership(MembershipOptions{
		Nodes:     opts.Backends,
		Interval:  opts.ProbeInterval,
		Threshold: opts.ProbeThreshold,
		Probe: func(ctx context.Context, node string) (string, error) {
			h, err := r.clients[node].Healthz(ctx)
			if err != nil {
				// A failed probe counts against the breaker too, so a
				// backend that died between requests opens its circuit
				// without costing live traffic the discovery.
				r.breakers.Failure(node)
				return "", err
			}
			// A healthy probe closes the circuit directly — the probe loop
			// is the re-admission path after a schedule drains.
			r.breakers.Success(node)
			return h.Instance, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Start launches health probing until ctx is canceled or Close is called.
func (r *Router) Start(ctx context.Context) { r.members.Start(ctx) }

// Close stops health probing.
func (r *Router) Close() { r.members.Close() }

// Membership exposes the health tracker (for readiness gates and tests).
func (r *Router) Membership() *Membership { return r.members }

// Breakers exposes the per-backend circuit breakers (for stats and the
// chaos harness's reconvergence poll).
func (r *Router) Breakers() *breaker.Set { return r.breakers }

// admitted filters a candidate list through the circuit breakers,
// counting skips. An all-open candidate set returns empty; callers
// surface that as a typed unavailability — the cooldown plus the probe
// loop re-admit the peers, so the refusal is transient by construction.
func (r *Router) admitted(candidates []string) []string {
	out := make([]string, 0, len(candidates))
	for _, node := range candidates {
		if r.breakers.Allow(node) {
			out = append(out, node)
		} else {
			atomic.AddInt64(&r.breakerSkips, 1)
		}
	}
	return out
}

// Owners returns the replica owner set for one world, in ring priority
// order — the routing decision as a pure function, for tests and ops.
func (r *Router) Owners(task string, seed uint64) []string {
	return r.ring.Owners(RouteKey(task, seed), r.opts.Replicas)
}

// routeSeed resolves the seed a request routes by.
func (r *Router) routeSeed(req *api.SelectRequest) uint64 {
	if req.Seed != nil {
		return *req.Seed
	}
	return r.opts.Seed
}

// liveFirst reorders an owner set so alive backends come first, keeping
// ring priority order within each class, and reports how many lead the
// list. Scatter spreads work over the alive prefix only (a known-down
// backend must not cost every batch an inline failover), while failover
// still walks the whole list: probe state can be stale, and trying a
// "dead" owner last is the only way a recovered backend gets traffic
// before its next probe. A fully-dead owner set is returned as-is with
// alive = len(owners), for the same reason.
func (r *Router) liveFirst(owners []string) (ordered []string, alive int) {
	ordered = make([]string, 0, len(owners))
	for _, o := range owners {
		if r.members.Alive(o) {
			ordered = append(ordered, o)
		}
	}
	alive = len(ordered)
	if alive == 0 {
		return owners, len(owners)
	}
	for _, o := range owners {
		if !r.members.Alive(o) {
			ordered = append(ordered, o)
		}
	}
	return ordered, alive
}

// retryable reports whether a backend failure may succeed on another
// replica. The contract's own predicate decides for typed errors
// (unavailable, rate-limited, overloaded are transient; contract
// rejections and cancellations fail identically everywhere); an untyped
// failure — a connection error, a 5xx — is node-local and worth a
// failover.
func retryable(err error) bool {
	return api.Retryable(err) || api.Code(err) == api.CodeInternal
}

// forward sends one sub-request down a candidate list, failing over on
// retryable errors. It returns the first success — the serving backend's
// node URL plus its self-reported instance id — or the terminal error.
func (r *Router) forward(ctx context.Context, candidates []string, send func(ctx context.Context, c *api.Client) error) (node, instance string, err error) {
	open := len(candidates)
	candidates = r.admitted(candidates)
	open -= len(candidates)
	if len(candidates) == 0 {
		return "", "", fmt.Errorf("%w: all %d candidate backends have open circuit breakers", api.ErrUnavailable, open)
	}
	var lastErr error
	for attempt, node := range candidates {
		if attempt > 0 {
			atomic.AddInt64(&r.failovers, 1)
		}
		atomic.AddInt64(&r.counters[node].requests, 1)
		var instance string
		err := send(api.WithInstanceCapture(ctx, &instance), r.clients[node])
		if err == nil {
			r.breakers.Success(node)
			return node, instance, nil
		}
		if !retryable(err) || ctx.Err() != nil {
			// A deterministic rejection or the caller's own cancellation
			// is not a backend failure; the counter tracks backend health.
			return "", "", err
		}
		atomic.AddInt64(&r.counters[node].failures, 1)
		r.breakers.Failure(node)
		// Feed the failure into membership so the request path and the
		// probe loop converge on one health view — but only transport
		// failures: a decoded 5xx body came from a live, reachable
		// process (one broken target must not flap the whole node down).
		var ue *url.Error
		if errors.As(err, &ue) {
			r.members.ReportFailure(node)
		}
		lastErr = err
	}
	return "", "", fmt.Errorf("%w: all %d candidate backends failed, last: %v", api.ErrUnavailable, len(candidates), lastErr)
}

// attempt is one backend's answer to a select sub-request.
type attempt struct {
	node, instance string
	resp           *api.SelectResponse
	err            error
}

// attemptOne sends a select sub-request to one backend, recording its
// routing counters, its latency on success, and its health on transport
// failure. An error observed after the caller's context died (including a
// hedge race loser canceled by the winner) is not charged as a backend
// failure.
func (r *Router) attemptOne(ctx context.Context, node string, sub *api.SelectRequest) attempt {
	atomic.AddInt64(&r.counters[node].requests, 1)
	var instance string
	start := time.Now()
	resp, err := r.clients[node].Select(api.WithInstanceCapture(ctx, &instance), sub)
	if err == nil {
		r.latency.Observe(time.Since(start))
		r.breakers.Success(node)
		return attempt{node: node, instance: instance, resp: resp}
	}
	if retryable(err) && ctx.Err() == nil {
		atomic.AddInt64(&r.counters[node].failures, 1)
		r.breakers.Failure(node)
		// Feed the failure into membership so the request path and the
		// probe loop converge on one health view — but only transport
		// failures: a decoded 5xx body came from a live, reachable
		// process (one broken target must not flap the whole node down).
		var ue *url.Error
		if errors.As(err, &ue) {
			r.members.ReportFailure(node)
		}
	}
	return attempt{node: node, err: err}
}

// hedgeDelay reports the armed hedging trigger: the fleet's recent p-th
// latency percentile, once enough samples accumulated. ok is false while
// hedging is disabled or unwarmed.
func (r *Router) hedgeDelay() (time.Duration, bool) {
	if r.opts.HedgePercentile <= 0 || r.latency.Len() < r.opts.HedgeMinSamples {
		return 0, false
	}
	return r.latency.Percentile(r.opts.HedgePercentile)
}

// hedgedPair races primary against secondary: the secondary fires only
// when the primary is still in flight past `delay`. The first success
// wins and the loser's request is canceled, so the caller always gets
// exactly one report — replicas are bit-identical for the same request,
// which is what makes racing them safe. launched reports whether the
// hedge actually fired (the pair then consumed both candidates).
func (r *Router) hedgedPair(ctx context.Context, primary, secondary string, delay time.Duration, sub *api.SelectRequest) (res attempt, launched bool) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attempt, 2) // buffered: the loser must never block
	go func() { ch <- r.attemptOne(hctx, primary, sub) }()
	timer := time.NewTimer(delay)
	defer timer.Stop()

	var first attempt
	select {
	case first = <-ch:
	case <-timer.C:
		atomic.AddInt64(&r.hedges, 1)
		launched = true
		go func() { ch <- r.attemptOne(hctx, secondary, sub) }()
		first = <-ch
	}
	if first.err == nil {
		if launched && first.node == secondary {
			atomic.AddInt64(&r.hedgeWins, 1)
		}
		return first, launched
	}
	if launched {
		// The first finisher failed; the race's other leg may still win.
		if second := <-ch; second.err == nil {
			if second.node == secondary {
				atomic.AddInt64(&r.hedgeWins, 1)
			}
			return second, launched
		}
	}
	return first, launched
}

// forwardSelect drives one select sub-request down a candidate list:
// failover on retryable errors, plus hedged pairs when the latency
// window arms them. Hedge traffic is not a failover — the failover
// counter keeps meaning "a backend failed and another answered".
func (r *Router) forwardSelect(ctx context.Context, candidates []string, sub *api.SelectRequest) attempt {
	open := len(candidates)
	candidates = r.admitted(candidates)
	open -= len(candidates)
	if len(candidates) == 0 {
		return attempt{err: fmt.Errorf("%w: all %d candidate backends have open circuit breakers", api.ErrUnavailable, open)}
	}
	var lastErr error
	for i := 0; i < len(candidates); i++ {
		if i > 0 {
			atomic.AddInt64(&r.failovers, 1)
		}
		var res attempt
		if delay, ok := r.hedgeDelay(); ok && i+1 < len(candidates) {
			var launched bool
			res, launched = r.hedgedPair(ctx, candidates[i], candidates[i+1], delay, sub)
			if launched {
				i++ // the pair consumed the next candidate too
			}
		} else {
			res = r.attemptOne(ctx, candidates[i], sub)
		}
		if res.err == nil {
			return res
		}
		if !retryable(res.err) || ctx.Err() != nil {
			// A deterministic rejection or the caller's own cancellation
			// is not a backend failure.
			return attempt{err: res.err}
		}
		lastErr = res.err
	}
	return attempt{err: fmt.Errorf("%w: all %d candidate backends failed, last: %v", api.ErrUnavailable, len(candidates), lastErr)}
}

// subResult is one scattered sub-request's outcome.
type subResult struct {
	indices  []int // original target indices, in sub-request order
	resp     *api.SelectResponse
	node     string // serving backend URL (unique by ring construction)
	instance string // its self-reported instance id (may be empty)
	err      error
}

// Select implements api.API: it scatters the request's targets across the
// world's live replica owners, forwards each slice concurrently through
// the backend clients (with failover), and gathers the per-target results
// back in request order. A single-target request keeps its RPC semantics:
// its failure is the request's failure with the backend's status.
func (r *Router) Select(ctx context.Context, req *api.SelectRequest) (*api.SelectResponse, error) {
	if req == nil {
		return nil, fmt.Errorf("%w: nil request", api.ErrBadRequest)
	}
	// The contract's one validation gate, same as the dispatcher and the
	// HTTP handler: a malformed request dies here, not on a backend.
	if err := req.Validate(); err != nil {
		return nil, err
	}
	seed := r.routeSeed(req)
	owners, alive := r.liveFirst(r.Owners(req.Task, seed))

	// Scatter: slice the batch across the world's live owners. Every
	// owner holds (or will build) the same world, so spreading a batch
	// over the replica set parallelizes the online phase across machines
	// without costing any extra offline builds. Target order inside each
	// slice, and slice-to-owner assignment, are deterministic.
	fanout := alive
	if fanout > len(req.Targets) {
		fanout = len(req.Targets)
	}
	groups := make([]subResult, fanout)
	for i := range req.Targets {
		g := &groups[i%fanout]
		g.indices = append(g.indices, i)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for gi := range groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			g := &groups[gi]
			sub := *req
			sub.Targets = make([]string, len(g.indices))
			for j, idx := range g.indices {
				sub.Targets[j] = req.Targets[idx]
			}
			// Failover order: this slice's assigned owner first, then the
			// rest of the owner set in priority order.
			candidates := append([]string{owners[gi]}, deleteAt(owners, gi)...)
			res := r.forwardSelect(ctx, candidates, &sub)
			g.node, g.instance, g.resp, g.err = res.node, res.instance, res.resp, res.err
		}(gi)
	}
	wg.Wait()

	// Gather, preserving request order and per-target error codes.
	out := &api.SelectResponse{
		APIVersion: api.Version,
		Task:       req.Task,
		Seed:       seed,
		Results:    make([]api.TargetResult, len(req.Targets)),
	}
	builds := make(map[string]int, fanout) // per distinct backend, not per slice
	for gi := range groups {
		g := &groups[gi]
		// Never trust a remote process's response shape: a skewed or
		// broken backend answering 200 with the wrong result count must
		// degrade to a per-target error, not an index panic.
		if g.err == nil && (g.resp == nil || len(g.resp.Results) != len(g.indices)) {
			got := 0
			if g.resp != nil {
				got = len(g.resp.Results)
			}
			g.err = fmt.Errorf("backend %q returned %d results for %d targets", g.node, got, len(g.indices))
		}
		if g.err != nil {
			if len(req.Targets) == 1 {
				// RPC semantics pass through the gateway untouched.
				return nil, g.err
			}
			msg, code := g.err.Error(), api.Code(g.err)
			for _, idx := range g.indices {
				out.Results[idx] = api.TargetResult{Target: req.Targets[idx], Error: msg, ErrorCode: code}
				out.Failed++
			}
			continue
		}
		if out.Strategy == "" {
			out.Strategy = g.resp.Strategy
		}
		for j, idx := range g.indices {
			tr := g.resp.Results[j]
			if tr.Backend == "" {
				// Prefer the self-reported instance id; fall back to the
				// node URL so the serving backend is always identifiable.
				if tr.Backend = g.instance; tr.Backend == "" {
					tr.Backend = g.node
				}
			}
			out.Results[idx] = tr
			if tr.Error != "" {
				out.Failed++
			}
			if tr.Truncated {
				out.Truncated++
			}
		}
		out.TotalEpochs += g.resp.TotalEpochs
		// Dedupe the lifetime counter by node URL — unique by ring
		// construction, unlike instance ids a fleet may misconfigure to
		// collide (e.g. every backend defaulting to "[::]:8080").
		builds[g.node] = g.resp.OfflineBuilds
	}
	if out.Strategy == "" {
		// Every slice failed; render the strategy the backends would have.
		if strat, err := core.ParseStrategy(req.Strategy); err == nil {
			out.Strategy = string(strat)
		} else {
			out.Strategy = req.Strategy
		}
	}
	for _, b := range builds {
		out.OfflineBuilds += b
	}
	out.WallMillis = time.Since(start).Milliseconds()
	return out, nil
}

// deleteAt returns a copy of s without the element at i.
func deleteAt(s []string, i int) []string {
	out := make([]string, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// Targets implements api.API by forwarding to the task's owner set with
// failover: the catalog is deterministic in (task, seed), so any owner
// answers identically.
func (r *Router) Targets(ctx context.Context, task string) (*api.TargetsResponse, error) {
	if task == "" {
		return nil, fmt.Errorf("%w: missing task", api.ErrBadRequest)
	}
	var resp *api.TargetsResponse
	owners, _ := r.liveFirst(r.Owners(task, r.opts.Seed))
	_, _, err := r.forward(ctx, owners, func(ctx context.Context, c *api.Client) error {
		var err error
		resp, err = c.Targets(ctx, task)
		return err
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Stats implements api.API: fleet-wide sums at the top level plus the
// gateway's ring shape, routing counters and per-backend detail.
func (r *Router) Stats(ctx context.Context) (*api.Stats, error) {
	snap := r.members.Snapshot()
	breakers := r.breakers.Snapshot()
	g := &api.GatewayStats{
		Backends:     len(r.opts.Backends),
		VNodes:       r.ring.VNodes(),
		Replicas:     r.opts.Replicas,
		Failovers:    atomic.LoadInt64(&r.failovers),
		BreakerSkips: atomic.LoadInt64(&r.breakerSkips),
		Hedges:       atomic.LoadInt64(&r.hedges),
		HedgeWins:    atomic.LoadInt64(&r.hedgeWins),
		BackendStats: make([]api.BackendStats, len(snap)),
	}
	out := &api.Stats{APIVersion: api.Version, Gateway: g}

	// Fetch backend stats concurrently and under a deadline; a dead or
	// wedged backend contributes its routing counters but no stats
	// document — a monitoring scrape must never hang on one slow node.
	ctx, cancel := context.WithTimeout(ctx, statsTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i, ns := range snap {
		bs := &g.BackendStats[i]
		bs.URL = ns.Node
		bs.Instance = ns.Instance
		bs.Alive = ns.Alive
		bs.DownEvents = ns.DownEvents
		if st, ok := breakers[ns.Node]; ok {
			bs.Breaker = st
		} else {
			// No traffic has touched this backend's breaker yet; report
			// the state a fresh breaker would have.
			bs.Breaker = breaker.Closed.String()
		}
		bs.Requests = atomic.LoadInt64(&r.counters[ns.Node].requests)
		bs.Failures = atomic.LoadInt64(&r.counters[ns.Node].failures)
		if ns.Alive {
			g.Alive++
			wg.Add(1)
			go func(node string, bs *api.BackendStats) {
				defer wg.Done()
				if st, err := r.clients[node].Stats(ctx); err == nil {
					bs.Stats = st
				}
			}(ns.Node, bs)
		}
	}
	wg.Wait()
	for i := range g.BackendStats {
		st := g.BackendStats[i].Stats
		if st == nil {
			continue
		}
		out.OfflineBuilds += st.OfflineBuilds
		out.TotalEpochs += st.TotalEpochs
		out.TrainEpochs += st.TrainEpochs
		out.Cache.Capacity += st.Cache.Capacity
		out.Cache.Resident += st.Cache.Resident
		out.Cache.InUse += st.Cache.InUse
		out.Cache.Hits += st.Cache.Hits
		out.Cache.Misses += st.Cache.Misses
		out.Cache.Evictions += st.Cache.Evictions
		out.Cache.Builds += st.Cache.Builds
		out.Cache.BuildFailures += st.Cache.BuildFailures
		out.Cache.BuildMillis += st.Cache.BuildMillis
		if st.PersistDegraded && !out.PersistDegraded {
			out.PersistDegraded = true
			out.PersistError = st.PersistError
		}
		out.Panics += st.Panics
		out.DegradedWorlds += st.DegradedWorlds
		out.DegradedServes += st.DegradedServes
		if st.Artifacts != nil {
			if out.Artifacts == nil {
				out.Artifacts = &api.ArtifactStats{}
			}
			out.Artifacts.Hits += st.Artifacts.Hits
			out.Artifacts.Fetches += st.Artifacts.Fetches
			out.Artifacts.FetchFailures += st.Artifacts.FetchFailures
			out.Artifacts.FallbackBuilds += st.Artifacts.FallbackBuilds
		}
	}
	return out, nil
}
