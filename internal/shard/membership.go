package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// errRequestFailed marks a ReportFailure entry in the health ledger.
var errRequestFailed = errors.New("shard: request-path failure")

// ProbeFunc checks one backend's health, returning the backend's instance
// id (from the healthz body) on success. A backend that answers but
// reports itself unready (e.g. 503 while warming) is a probe failure:
// routing to it would only queue requests behind its offline build.
type ProbeFunc func(ctx context.Context, node string) (instance string, err error)

// DefaultProbeInterval is the health-check period when MembershipOptions
// leaves it unset.
const DefaultProbeInterval = time.Second

// DefaultProbeThreshold is how many consecutive probe failures mark a
// backend down when MembershipOptions leaves it unset. One failure is too
// twitchy (a single dropped probe under load would shed the node); two in
// a row means the node missed a full interval.
const DefaultProbeThreshold = 2

// MembershipOptions configures a Membership.
type MembershipOptions struct {
	// Nodes is the fixed backend set. Required.
	Nodes []string
	// Probe checks one node. Required.
	Probe ProbeFunc
	// Interval between probe rounds (0 = DefaultProbeInterval).
	Interval time.Duration
	// Threshold is the consecutive-failure count that marks a node down
	// (0 = DefaultProbeThreshold).
	Threshold int
}

// nodeState is one backend's health record, guarded by Membership.mu.
type nodeState struct {
	alive      bool
	fails      int   // consecutive probe failures
	downEvents int64 // up→down transitions
	instance   string
}

// Membership tracks which backends of a fixed set are serving, by probing
// each backend's health endpoint on an interval: a node is marked down
// after Threshold consecutive failures and re-admitted on the first
// success. Nodes start alive (optimistically — the router's inline
// failover covers the window before the first probe lands).
type Membership struct {
	opts MembershipOptions

	mu    sync.Mutex
	state map[string]*nodeState

	stop   context.CancelFunc
	probed chan struct{} // closed after the first full probe round
	done   chan struct{}
}

// NewMembership creates a Membership; Start begins probing.
func NewMembership(opts MembershipOptions) (*Membership, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("shard: membership needs at least one node")
	}
	if opts.Probe == nil {
		return nil, fmt.Errorf("shard: nil probe function")
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultProbeInterval
	}
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultProbeThreshold
	}
	m := &Membership{
		opts:   opts,
		state:  make(map[string]*nodeState, len(opts.Nodes)),
		probed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, n := range opts.Nodes {
		m.state[n] = &nodeState{alive: true}
	}
	return m, nil
}

// Start launches the probe loop until ctx is canceled or Close is called.
func (m *Membership) Start(ctx context.Context) {
	ctx, m.stop = context.WithCancel(ctx)
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(m.opts.Interval)
		defer ticker.Stop()
		m.probeAll(ctx)
		close(m.probed)
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				m.probeAll(ctx)
			}
		}
	}()
}

// Close stops the probe loop and waits for it to exit.
func (m *Membership) Close() {
	if m.stop != nil {
		m.stop()
		<-m.done
	}
}

// WaitProbed blocks until the first full probe round has completed (or
// ctx is done), so callers can start with real health state instead of
// the optimistic default.
func (m *Membership) WaitProbed(ctx context.Context) error {
	select {
	case <-m.probed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Probed reports whether the first full probe round has completed.
// Before that, Alive answers are the optimistic defaults, and a
// readiness gate should not trust them.
func (m *Membership) Probed() bool {
	select {
	case <-m.probed:
		return true
	default:
		return false
	}
}

// minProbeTimeout floors the per-round probe deadline: a tight probe
// interval is for fast failure *detection* and must not silently demand
// that healthy backends answer healthz equally fast (a GC pause or
// offline-build contention would flap them).
const minProbeTimeout = time.Second

// probeAll probes every node concurrently; one slow backend must not
// delay marking another down. A round slower than the interval delays
// the next tick rather than overlapping it.
func (m *Membership) probeAll(ctx context.Context) {
	timeout := m.opts.Interval
	if timeout < minProbeTimeout {
		timeout = minProbeTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, n := range m.opts.Nodes {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			instance, err := m.opts.Probe(ctx, n)
			m.record(n, instance, err)
		}(n)
	}
	wg.Wait()
}

// record folds one probe outcome into the node's state.
func (m *Membership) record(node, instance string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state[node]
	if err == nil {
		st.fails = 0
		st.alive = true
		if instance != "" {
			st.instance = instance
		}
		return
	}
	st.fails++
	if st.alive && st.fails >= m.opts.Threshold {
		st.alive = false
		st.downEvents++
	}
}

// ReportFailure feeds a request-path connection failure into the health
// state, so failover and probing converge on the same view: a backend the
// gateway cannot reach counts against the same consecutive-failure
// threshold as a missed probe.
func (m *Membership) ReportFailure(node string) {
	m.record(node, "", errRequestFailed)
}

// Alive reports whether a node is currently considered serving.
func (m *Membership) Alive(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.state[node]
	return ok && st.alive
}

// AliveCount returns how many nodes are currently considered serving.
func (m *Membership) AliveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.state {
		if st.alive {
			n++
		}
	}
	return n
}

// NodeStatus is one backend's health snapshot.
type NodeStatus struct {
	Node string
	// Instance is the backend's self-reported instance id, learned from
	// its healthz body (empty until the first successful probe).
	Instance string
	Alive    bool
	// Fails counts consecutive probe/request failures since the last
	// success.
	Fails int
	// DownEvents counts up→down transitions.
	DownEvents int64
}

// Snapshot returns every node's status in the configured node order.
func (m *Membership) Snapshot() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.opts.Nodes))
	for _, n := range m.opts.Nodes {
		st := m.state[n]
		out = append(out, NodeStatus{
			Node:       n,
			Instance:   st.instance,
			Alive:      st.alive,
			Fails:      st.fails,
			DownEvents: st.downEvents,
		})
	}
	return out
}
