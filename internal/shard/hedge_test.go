package shard

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"twophase/internal/api"
)

// TestHedgeFiresOnSlowPrimary: a sub-request stuck on a slow primary past
// the fleet's recent latency percentile is raced against the secondary
// replica, whose answer is used — one report, no failover charged, and
// the win shows up in the hedge counters.
func TestHedgeFiresOnSlowPrimary(t *testing.T) {
	r, backends := newStubFleet(t, 2, RouterOptions{
		Replicas: 2, Seed: 42, HedgePercentile: 90, HedgeMinSamples: 5,
	})
	if _, armed := r.hedgeDelay(); armed {
		t.Fatal("hedging armed before the latency window warmed")
	}
	ctx := context.Background()
	req := &api.SelectRequest{Task: "nlp", Targets: []string{"t0"}}
	for i := 0; i < 5; i++ {
		if _, err := r.Select(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if _, armed := r.hedgeDelay(); !armed {
		t.Fatalf("hedging not armed after %d samples", r.latency.Len())
	}

	owners := r.Owners("nlp", 42)
	primary, secondary := instanceOf(backends, owners[0]), instanceOf(backends, owners[1])
	atomic.StoreInt64(&primary.delayNS, int64(500*time.Millisecond))

	resp, err := r.Select(ctx, req)
	if err != nil {
		t.Fatalf("hedged request failed: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Winner != "winner-for-t0" {
		t.Fatalf("hedged response malformed: %+v", resp)
	}
	if resp.Results[0].Backend != secondary.instance {
		t.Fatalf("served by %q, want hedged secondary %q", resp.Results[0].Backend, secondary.instance)
	}
	if h, w := atomic.LoadInt64(&r.hedges), atomic.LoadInt64(&r.hedgeWins); h != 1 || w != 1 {
		t.Fatalf("hedges %d / wins %d, want 1 / 1", h, w)
	}
	// A hedge is not a failover, and the canceled loser is not a backend
	// failure — the health counters keep their meaning.
	if f := atomic.LoadInt64(&r.failovers); f != 0 {
		t.Fatalf("hedge counted as %d failovers", f)
	}
	for node, c := range r.counters {
		if f := atomic.LoadInt64(&c.failures); f != 0 {
			t.Fatalf("hedge loser charged as failure on %s (%d)", node, f)
		}
	}
	st, err := r.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gateway.Hedges != 1 || st.Gateway.HedgeWins != 1 {
		t.Fatalf("hedge counters missing from stats: %+v", st.Gateway)
	}
}

// TestHedgeBothLegsHealthyOneReport: the hedge fires against a healthy
// (merely slow) primary; when the primary then answers first, the caller
// gets exactly that one report — the launched secondary leg is discarded,
// never merged, and never counted as a win or a failover.
func TestHedgeBothLegsHealthyOneReport(t *testing.T) {
	r, backends := newStubFleet(t, 2, RouterOptions{
		Replicas: 2, Seed: 42, HedgePercentile: 50, HedgeMinSamples: 1,
	})
	ctx := context.Background()
	req := &api.SelectRequest{Task: "nlp", Targets: []string{"t0"}}
	if _, err := r.Select(ctx, req); err != nil {
		t.Fatal(err)
	}

	owners := r.Owners("nlp", 42)
	primary, secondary := instanceOf(backends, owners[0]), instanceOf(backends, owners[1])
	// Slow enough to trip the hedge, fast enough to beat the secondary:
	// both legs are in flight and would both succeed.
	atomic.StoreInt64(&primary.delayNS, int64(150*time.Millisecond))
	atomic.StoreInt64(&secondary.delayNS, int64(2*time.Second))

	resp, err := r.Select(ctx, req)
	if err != nil {
		t.Fatalf("hedged request failed: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Winner != "winner-for-t0" {
		t.Fatalf("want exactly one report: %+v", resp)
	}
	if resp.Results[0].Backend != primary.instance {
		t.Fatalf("served by %q, want primary %q", resp.Results[0].Backend, primary.instance)
	}
	if got := atomic.LoadInt64(&secondary.selects); got != 1 {
		t.Fatalf("secondary saw %d selects, want the 1 hedge leg", got)
	}
	if h, w := atomic.LoadInt64(&r.hedges), atomic.LoadInt64(&r.hedgeWins); h != 1 || w != 0 {
		t.Fatalf("hedges %d / wins %d, want 1 / 0", h, w)
	}
	if f := atomic.LoadInt64(&r.failovers); f != 0 {
		t.Fatalf("healthy hedge counted as %d failovers", f)
	}
}

// TestHedgeFallsBackOnPrimaryFailure: when the hedge is armed and the
// primary dies mid-race, the secondary's answer still serves the request.
func TestHedgeFallsBackOnPrimaryFailure(t *testing.T) {
	r, backends := newStubFleet(t, 2, RouterOptions{
		Replicas: 2, Seed: 42, HedgePercentile: 50, HedgeMinSamples: 1,
	})
	ctx := context.Background()
	req := &api.SelectRequest{Task: "nlp", Targets: []string{"t0"}}
	if _, err := r.Select(ctx, req); err != nil {
		t.Fatal(err)
	}
	owners := r.Owners("nlp", 42)
	primary, secondary := instanceOf(backends, owners[0]), instanceOf(backends, owners[1])
	atomic.StoreInt64(&primary.delayNS, int64(100*time.Millisecond))
	primary.fail.Store(failSlot{api.ErrUnavailable})

	resp, err := r.Select(ctx, req)
	if err != nil {
		t.Fatalf("hedge did not rescue the failed primary: %v", err)
	}
	if resp.Results[0].Backend != secondary.instance {
		t.Fatalf("served by %q, want secondary %q", resp.Results[0].Backend, secondary.instance)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("want exactly one report: %+v", resp)
	}
}
