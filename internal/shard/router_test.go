package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"twophase/internal/api"
)

// stubBackend is a scriptable api.API served over a real httptest server
// with an instance id, so router tests exercise the full HTTP path
// (client, error codes, instance header) without the selection engine.
// failSlot wraps the scripted error so clearing it is representable.
type failSlot struct{ err error }

type stubBackend struct {
	instance string
	srv      *httptest.Server
	selects  int64 // atomic
	// delayNS, when set, makes Select sleep before answering (canceled by
	// ctx) — a slow replica for hedging tests. Atomic nanoseconds.
	delayNS int64
	// fail, when set, makes Select return the slotted error. A slot is
	// used because atomic.Value cannot store nil: failSlot{} clears a
	// previously-set failure.
	fail atomic.Value // failSlot
	// truncate, when set, drops the last result from every Select
	// response — a version-skewed backend violating the shape contract.
	truncate atomic.Bool
	// epochsPerTarget is charged per served target.
	epochsPerTarget float64
	builds          int
}

func (b *stubBackend) Select(ctx context.Context, req *api.SelectRequest) (*api.SelectResponse, error) {
	atomic.AddInt64(&b.selects, 1)
	if d := time.Duration(atomic.LoadInt64(&b.delayNS)); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s, _ := b.fail.Load().(failSlot); s.err != nil {
		return nil, s.err
	}
	resp := &api.SelectResponse{
		APIVersion:    api.Version,
		Task:          req.Task,
		Strategy:      "two-phase",
		Results:       make([]api.TargetResult, len(req.Targets)),
		OfflineBuilds: b.builds,
	}
	if req.Seed != nil {
		resp.Seed = *req.Seed
	}
	for i, tgt := range req.Targets {
		if tgt == "missing" {
			if len(req.Targets) == 1 {
				return nil, fmt.Errorf("%w: %s", api.ErrUnknownTarget, tgt)
			}
			resp.Results[i] = api.TargetResult{Target: tgt, Error: "unknown target", ErrorCode: api.CodeUnknownTarget}
			resp.Failed++
			continue
		}
		resp.Results[i] = api.TargetResult{Target: tgt, Winner: "winner-for-" + tgt, Epochs: b.epochsPerTarget}
		resp.TotalEpochs += b.epochsPerTarget
	}
	if b.truncate.Load() && len(resp.Results) > 0 {
		resp.Results = resp.Results[:len(resp.Results)-1]
	}
	return resp, nil
}

func (b *stubBackend) Targets(ctx context.Context, task string) (*api.TargetsResponse, error) {
	return &api.TargetsResponse{APIVersion: api.Version, Task: task, Targets: []string{"t0", "t1"}}, nil
}

func (b *stubBackend) Stats(ctx context.Context) (*api.Stats, error) {
	return &api.Stats{
		APIVersion:    api.Version,
		OfflineBuilds: b.builds,
		TotalEpochs:   b.epochsPerTarget * float64(atomic.LoadInt64(&b.selects)),
		Cache:         api.CacheStats{Resident: 1, Hits: 3},
	}, nil
}

// newStubFleet boots n stub backends and a started router over them.
func newStubFleet(t *testing.T, n int, opts RouterOptions) (*Router, []*stubBackend) {
	t.Helper()
	backends := make([]*stubBackend, n)
	urls := make([]string, n)
	for i := range backends {
		b := &stubBackend{instance: fmt.Sprintf("inst-%d", i), epochsPerTarget: 2, builds: 1}
		b.srv = httptest.NewServer(api.NewHandlerWith(b, api.HandlerOptions{Instance: b.instance}))
		t.Cleanup(b.srv.Close)
		backends[i] = b
		urls[i] = b.srv.URL
	}
	opts.Backends = urls
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 20 * time.Millisecond
	}
	r, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	r.Start(ctx)
	t.Cleanup(r.Close)
	waitCtx, waitCancel := context.WithTimeout(ctx, 5*time.Second)
	defer waitCancel()
	if err := r.Membership().WaitProbed(waitCtx); err != nil {
		t.Fatal(err)
	}
	return r, backends
}

// instanceOf maps a backend URL to its stub.
func instanceOf(backends []*stubBackend, url string) *stubBackend {
	for _, b := range backends {
		if b.srv.URL == url {
			return b
		}
	}
	return nil
}

// TestRouterScatterGather: a batch is sliced across the world's replica
// owners, served concurrently, and merged back in request order with the
// serving backend recorded per target.
func TestRouterScatterGather(t *testing.T) {
	r, backends := newStubFleet(t, 3, RouterOptions{Replicas: 2, Seed: 42})
	targets := []string{"t0", "t1", "t2", "t3", "t4"}
	resp, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(targets) || resp.Failed != 0 {
		t.Fatalf("merged response: %+v", resp)
	}
	owners := r.Owners("nlp", 42)
	if len(owners) != 2 {
		t.Fatalf("owners = %v", owners)
	}
	ownerInstances := map[string]bool{}
	for _, o := range owners {
		ownerInstances[instanceOf(backends, o).instance] = true
	}
	seen := map[string]bool{}
	for i, tr := range resp.Results {
		if tr.Target != targets[i] {
			t.Fatalf("result %d out of order: %+v", i, tr)
		}
		if tr.Winner != "winner-for-"+targets[i] {
			t.Fatalf("result %d wrong winner: %+v", i, tr)
		}
		if !ownerInstances[tr.Backend] {
			t.Fatalf("target %s served by non-owner %q (owners %v)", tr.Target, tr.Backend, owners)
		}
		seen[tr.Backend] = true
	}
	// 5 targets over 2 owners: both replicas must have served slices.
	if len(seen) != 2 {
		t.Fatalf("batch did not scatter across replicas: %v", seen)
	}
	if resp.TotalEpochs != 10 {
		t.Fatalf("total epochs %v, want 10", resp.TotalEpochs)
	}
	// OfflineBuilds dedupes by backend, not by slice.
	if resp.OfflineBuilds != 2 {
		t.Fatalf("offline builds %d, want 2 (one per serving backend)", resp.OfflineBuilds)
	}
	// The non-owner backend must have seen no traffic.
	for _, b := range backends {
		if !ownerInstances[b.instance] && atomic.LoadInt64(&b.selects) != 0 {
			t.Fatalf("non-owner %s served %d selects", b.instance, b.selects)
		}
	}
}

// TestRouterRoutingStability: the same key routes to the same primary on
// every request; different seeds can route elsewhere but are stable too.
func TestRouterRoutingStability(t *testing.T) {
	r, _ := newStubFleet(t, 3, RouterOptions{Replicas: 1, Seed: 42})
	byKey := map[uint64]string{}
	for round := 0; round < 3; round++ {
		for seed := uint64(0); seed < 8; seed++ {
			s := seed
			resp, err := r.Select(context.Background(), &api.SelectRequest{
				Task: "nlp", Targets: []string{"t0"}, SelectOptions: api.SelectOptions{Seed: &s},
			})
			if err != nil {
				t.Fatal(err)
			}
			got := resp.Results[0].Backend
			if got == "" {
				t.Fatal("no backend recorded")
			}
			if prev, ok := byKey[seed]; ok && prev != got {
				t.Fatalf("seed %d moved from %s to %s", seed, prev, got)
			}
			byKey[seed] = got
		}
	}
}

// TestRouterFailover: killing a backend redirects its keys to the next
// replica with zero client-visible errors, counts the failover, and the
// probe loop marks the backend down (a down event) until it recovers.
func TestRouterFailover(t *testing.T) {
	r, backends := newStubFleet(t, 3, RouterOptions{Replicas: 2, Seed: 42, ProbeThreshold: 2})
	owners := r.Owners("nlp", 42)
	primary := instanceOf(backends, owners[0])
	secondary := instanceOf(backends, owners[1])

	// Kill the primary outright — connection refused, not a clean error.
	primary.srv.Close()

	resp, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0"}})
	if err != nil {
		t.Fatalf("failover not transparent: %v", err)
	}
	if resp.Results[0].Backend != secondary.instance {
		t.Fatalf("served by %q, want secondary %q", resp.Results[0].Backend, secondary.instance)
	}
	st, err := r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Gateway == nil || st.Gateway.Failovers < 1 {
		t.Fatalf("failover not counted: %+v", st.Gateway)
	}

	// The probe loop converges on the dead backend.
	deadline := time.After(5 * time.Second)
	for r.Membership().Alive(owners[0]) {
		select {
		case <-deadline:
			t.Fatal("dead backend never marked down")
		case <-time.After(10 * time.Millisecond):
		}
	}
	// Once down, requests skip it entirely: no new failover needed —
	// including batches, whose scatter must fan out over live owners
	// only instead of assigning the corpse a slice per request.
	before := atomic.LoadInt64(&r.failovers)
	if _, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0"}}); err != nil {
		t.Fatal(err)
	}
	batch, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0", "t1", "t2"}})
	if err != nil || batch.Failed != 0 {
		t.Fatalf("batch against a degraded owner set: %v, %+v", err, batch)
	}
	for _, tr := range batch.Results {
		if tr.Backend != secondary.instance {
			t.Fatalf("batch slice for %s went to %q, want live owner %q", tr.Target, tr.Backend, secondary.instance)
		}
	}
	if after := atomic.LoadInt64(&r.failovers); after != before {
		t.Fatalf("request to a known-down backend still paid a failover (%d -> %d)", before, after)
	}
	st, _ = r.Stats(context.Background())
	var downEvents int64
	for _, bs := range st.Gateway.BackendStats {
		downEvents += bs.DownEvents
	}
	if downEvents < 1 || st.Gateway.Alive != 2 {
		t.Fatalf("down not reported: %+v", st.Gateway)
	}
}

// TestRouterNonRetryableError: a deterministic rejection passes through
// without failover — retrying it on another replica would just fail again.
func TestRouterNonRetryable(t *testing.T) {
	r, _ := newStubFleet(t, 3, RouterOptions{Replicas: 2, Seed: 42})
	_, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"missing"}})
	if !errors.Is(err, api.ErrUnknownTarget) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt64(&r.failovers); n != 0 {
		t.Fatalf("deterministic error caused %d failovers", n)
	}
	// A client-side rejection is not a backend failure: the health
	// counters must stay clean.
	for node, c := range r.counters {
		if f := atomic.LoadInt64(&c.failures); f != 0 {
			t.Fatalf("deterministic error counted as backend failure on %s (%d)", node, f)
		}
	}
	// In a batch, the same failure is a per-target error, not a request
	// failure, and healthy targets still serve.
	resp, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0", "missing"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 1 || resp.Results[1].ErrorCode != api.CodeUnknownTarget || resp.Results[0].Winner == "" {
		t.Fatalf("batch with one bad target: %+v", resp)
	}
}

// TestRouterMalformedBackendResponse: a backend answering 200 with the
// wrong result count (version skew, broken impl) must degrade to errors,
// never panic the gateway or mis-index the merge.
func TestRouterMalformedBackendResponse(t *testing.T) {
	r, backends := newStubFleet(t, 1, RouterOptions{Replicas: 1, Seed: 42})
	backends[0].truncate.Store(true)
	// Batch: every target of the short slice reports an error in-body.
	resp, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0", "t1"}})
	if err != nil {
		t.Fatalf("malformed batch response escalated to request failure: %v", err)
	}
	if resp.Failed != 2 {
		t.Fatalf("short backend response not surfaced per target: %+v", resp)
	}
	// Single-target RPC: the shape violation is the request's failure.
	if _, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0"}}); err == nil {
		t.Fatal("empty single-target response accepted")
	}
}

// TestRouterAllReplicasDown: exhausting the owner set surfaces a typed
// unavailable error that maps to 503 and survives the wire.
func TestRouterAllReplicasDown(t *testing.T) {
	r, backends := newStubFleet(t, 2, RouterOptions{Replicas: 2, Seed: 42})
	for _, b := range backends {
		b.srv.Close()
	}
	_, err := r.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0"}})
	if !errors.Is(err, api.ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if api.HTTPStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", api.HTTPStatus(err))
	}
}

// TestRouterValidation: requests the contract rejects locally.
func TestRouterValidation(t *testing.T) {
	r, _ := newStubFleet(t, 1, RouterOptions{Seed: 42})
	for _, req := range []*api.SelectRequest{
		nil,
		{Targets: []string{"t0"}},
		{Task: "nlp"},
	} {
		if _, err := r.Select(context.Background(), req); !errors.Is(err, api.ErrBadRequest) {
			t.Fatalf("req %+v: err = %v", req, err)
		}
	}
	if _, err := r.Targets(context.Background(), ""); !errors.Is(err, api.ErrBadRequest) {
		t.Fatal("empty task accepted")
	}
}

// TestRouterTargetsAndStats: catalog proxying and fleet stat aggregation.
func TestRouterTargetsAndStats(t *testing.T) {
	r, backends := newStubFleet(t, 3, RouterOptions{Replicas: 2, Seed: 42})
	tg, err := r.Targets(context.Background(), "nlp")
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Targets) != 2 || tg.APIVersion != api.Version {
		t.Fatalf("targets: %+v", tg)
	}
	st, err := r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.OfflineBuilds != len(backends) { // 1 per stub
		t.Fatalf("fleet builds = %d", st.OfflineBuilds)
	}
	if st.Cache.Resident != 3 || st.Cache.Hits != 9 {
		t.Fatalf("fleet cache sums: %+v", st.Cache)
	}
	g := st.Gateway
	if g == nil || g.Backends != 3 || g.Replicas != 2 || g.VNodes != DefaultVNodes || g.Alive != 3 {
		t.Fatalf("gateway stats: %+v", g)
	}
	for _, bs := range g.BackendStats {
		if bs.Instance == "" || !bs.Alive || bs.Stats == nil {
			t.Fatalf("backend stat incomplete: %+v", bs)
		}
	}
}

// TestRouterOverHTTP: the router mounted behind the v1 handler serves the
// same contract as a single backend — a client cannot tell the
// difference, and typed errors survive the extra hop.
func TestRouterOverHTTP(t *testing.T) {
	r, _ := newStubFleet(t, 2, RouterOptions{Replicas: 2, Seed: 42})
	gw := httptest.NewServer(api.NewHandlerWith(r, api.HandlerOptions{
		Ready:    func() bool { return r.Membership().AliveCount() > 0 },
		Instance: "gw-test",
	}))
	defer gw.Close()
	c := api.NewClient(gw.URL, nil)
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Instance != "gw-test" {
		t.Fatalf("gateway instance = %q", h.Instance)
	}
	resp, err := c.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"t0", "t1"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != 0 || resp.Results[0].Backend == "" {
		t.Fatalf("gateway select over HTTP: %+v", resp)
	}
	if _, err := c.Select(context.Background(), &api.SelectRequest{Task: "nlp", Targets: []string{"missing"}}); !errors.Is(err, api.ErrUnknownTarget) {
		t.Fatalf("typed error lost through gateway hop: %v", err)
	}
}
