package shard

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"twophase/internal/api"
	"twophase/internal/artifact"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/lifecycle"
	"twophase/internal/service"
)

// TestOwnedKeys verifies ring-aware warm filtering: with replicas=1 the
// owned sets partition the key space (every key warmed exactly once
// fleet-wide); with replicas=R every key appears in exactly R sets.
func TestOwnedKeys(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	ring, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	var keys []lifecycle.Key
	for seed := uint64(0); seed < 16; seed++ {
		keys = append(keys, lifecycle.Key{Task: "nlp", Seed: seed}, lifecycle.Key{Task: "cv", Seed: seed})
	}
	for _, replicas := range []int{1, 2} {
		counts := make(map[lifecycle.Key]int)
		for _, n := range nodes {
			for _, k := range OwnedKeys(keys, ring, n, replicas) {
				counts[k]++
			}
		}
		for _, k := range keys {
			if counts[k] != replicas {
				t.Errorf("replicas=%d: key %v owned %d times, want %d", replicas, k, counts[k], replicas)
			}
		}
	}
	// A single-node deployment (nil ring) owns everything.
	if got := OwnedKeys(keys, nil, "self", 2); len(got) != len(keys) {
		t.Errorf("nil ring: %d keys, want all %d", len(got), len(keys))
	}
}

// TestOwnedKeysFollowRouting pins the invariant the whole artifact tier
// rests on: the warm owner set of a key is exactly the gateway's routing
// owner set, because both hash RouteKey(task, seed) == Key.String().
func TestOwnedKeysFollowRouting(t *testing.T) {
	ring, err := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := lifecycle.Key{Task: "nlp", Seed: 7}
	if k.String() != RouteKey(k.Task, k.Seed) {
		t.Fatalf("store key %q != routing key %q", k.String(), RouteKey(k.Task, k.Seed))
	}
	owners := ring.Owners(RouteKey(k.Task, k.Seed), 2)
	for _, n := range ring.Nodes() {
		owned := len(OwnedKeys([]lifecycle.Key{k}, ring, n, 2)) == 1
		routed := n == owners[0] || n == owners[1]
		if owned != routed {
			t.Errorf("node %s: owned=%v routed=%v — warm set diverges from routing", n, owned, routed)
		}
	}
}

// TestArtifactFetcher runs the fetcher against a live peer holding real
// artifacts, a corrupt peer, and a dead peer.
func TestArtifactFetcher(t *testing.T) {
	svc, err := service.New(service.Options{
		Base:     core.Options{Seed: 42, Sizes: datahub.Sizes{Train: 60, Val: 40, Test: 48}},
		StoreDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Do(context.Background(), service.Request{Task: "nlp", Targets: []string{"tweet_eval"}}); err != nil {
		t.Fatal(err)
	}
	good := httptest.NewServer(api.NewHandlerWith(api.NewDispatcher(svc, 42), api.HandlerOptions{Artifacts: svc.Store()}))
	defer good.Close()
	// A peer that answers 200 with bytes that fail the checksum.
	corrupt := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("not an artifact document"))
	}))
	defer corrupt.Close()
	dead := "http://127.0.0.1:1"
	self := "http://self.invalid"
	ctx := context.Background()

	// All four nodes own everything (replicas = ring size), so the
	// fetcher must skip self, survive the dead and corrupt peers, and
	// land on the good one no matter the owner order.
	ring, err := NewRing([]string{good.URL, corrupt.URL, dead, self}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fetch := NewArtifactFetcher(ring, self, 4, nil)
	data, err := fetch(ctx, "matrices", "nlp-seed42")
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if m, err := artifact.DecodeMatrix(data); err != nil || m == nil {
		t.Fatalf("fetched document does not decode: %v", err)
	}
	if _, err := fetch(ctx, "matrices", "nlp-seed99"); err == nil {
		t.Fatal("fetch of an absent world succeeded")
	}

	// With only self and unreachable peers, the fetch fails and names a
	// peer, so the caller's fallback-build log is actionable.
	lonely, err := NewRing([]string{dead, self}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fetch = NewArtifactFetcher(lonely, self, 2, nil)
	if _, err := fetch(ctx, "matrices", "nlp-seed42"); err == nil || !strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Fatalf("dead-fleet fetch: %v, want error naming the peer", err)
	}

	// A world whose every owner is self has no one to fetch from: the
	// typed ErrNoPeers lets the service build without logging a
	// distribution failure.
	solo, err := NewRing([]string{self}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fetch = NewArtifactFetcher(solo, self, 1, nil)
	if _, err := fetch(ctx, "matrices", "nlp-seed42"); !errors.Is(err, service.ErrNoPeers) {
		t.Fatalf("solo-owner fetch: %v, want ErrNoPeers", err)
	}
}
