package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"twophase/internal/api"
	"twophase/internal/artifact"
	"twophase/internal/breaker"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/faultinject"
	"twophase/internal/service"
)

// newUnprobedFleet boots stub backends and a router WITHOUT starting the
// probe loop, so breaker state moves only on request traffic — the
// deterministic setting the breaker lifecycle assertions need.
func newUnprobedFleet(t *testing.T, n int, opts RouterOptions) (*Router, []*stubBackend) {
	t.Helper()
	backends := make([]*stubBackend, n)
	urls := make([]string, n)
	for i := range backends {
		b := &stubBackend{instance: fmt.Sprintf("inst-%d", i), epochsPerTarget: 2, builds: 1}
		b.srv = httptest.NewServer(api.NewHandlerWith(b, api.HandlerOptions{Instance: b.instance}))
		t.Cleanup(b.srv.Close)
		backends[i] = b
		urls[i] = b.srv.URL
	}
	opts.Backends = urls
	r, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, backends
}

// TestRouterBreakerLifecycle drives one backend's breaker through its
// whole machine via real forwarded traffic: consecutive failures open
// it, open means skipped (the backend stops seeing requests while
// failover keeps serving), a fully-open owner set refuses with a typed
// unavailability, and the health probe loop re-admits recovered backends
// until every breaker is closed again.
func TestRouterBreakerLifecycle(t *testing.T) {
	const threshold = 3
	r, backends := newUnprobedFleet(t, 2, RouterOptions{
		Replicas: 2,
		Seed:     42,
		// The probe loop only runs in phase 4, after Start; until then
		// breaker state moves purely on request traffic.
		ProbeInterval: 20 * time.Millisecond,
		Breaker:       breaker.Options{FailureThreshold: threshold, Cooldown: time.Hour, Seed: 7},
	})
	defer r.Close()
	ctx := context.Background()
	owners := r.Owners("nlp", 42)
	primary, secondary := instanceOf(backends, owners[0]), instanceOf(backends, owners[1])
	req := func() *api.SelectRequest {
		return &api.SelectRequest{Task: "nlp", Targets: []string{"t0"}}
	}

	// Phase 1: the primary fails typed-retryably; each request fails over
	// to the secondary, and threshold consecutive failures open the
	// primary's breaker.
	primary.fail.Store(failSlot{fmt.Errorf("%w: injected", api.ErrUnavailable)})
	for i := 0; i < threshold; i++ {
		if _, err := r.Select(ctx, req()); err != nil {
			t.Fatalf("request %d: failover did not save the request: %v", i, err)
		}
	}
	if st := r.Breakers().For(owners[0]).State(); st != breaker.Open {
		t.Fatalf("primary breaker after %d failures: %v, want open", threshold, st)
	}

	// Phase 2: open means skipped — the primary sees no further traffic,
	// the skip counter moves, and requests still succeed.
	before := atomic.LoadInt64(&primary.selects)
	for i := 0; i < 3; i++ {
		if _, err := r.Select(ctx, req()); err != nil {
			t.Fatalf("request with open primary breaker failed: %v", err)
		}
	}
	if got := atomic.LoadInt64(&primary.selects); got != before {
		t.Errorf("open-breaker backend served %d more requests, want 0", got-before)
	}
	if atomic.LoadInt64(&r.breakerSkips) == 0 {
		t.Error("breakerSkips did not move while skipping an open breaker")
	}
	st, err := r.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gateway.BreakerSkips == 0 {
		t.Error("stats do not report breaker skips")
	}
	states := map[string]string{}
	for _, bs := range st.Gateway.BackendStats {
		states[bs.URL] = bs.Breaker
	}
	if states[owners[0]] != "open" || states[owners[1]] != "closed" {
		t.Errorf("per-backend breaker states = %v, want primary open / secondary closed", states)
	}

	// Phase 3: the secondary fails too; once both breakers are open the
	// request is refused with a typed, retryable unavailability — never an
	// untyped error.
	secondary.fail.Store(failSlot{fmt.Errorf("%w: injected", api.ErrUnavailable)})
	for i := 0; i < threshold; i++ {
		if _, err := r.Select(ctx, req()); err == nil {
			t.Fatalf("request %d with both backends failing succeeded", i)
		}
	}
	_, err = r.Select(ctx, req())
	if !errors.Is(err, api.ErrUnavailable) {
		t.Fatalf("all-open refusal = %v, want typed ErrUnavailable", err)
	}
	if !api.Retryable(err) {
		t.Fatalf("all-open refusal is not retryable: %v", err)
	}

	// Phase 4: both backends recover; the probe loop's successes close the
	// breakers directly — reconvergence without waiting out the cooldown.
	primary.fail.Store(failSlot{})
	secondary.fail.Store(failSlot{})
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.Start(pctx)
	deadline := time.Now().Add(5 * time.Second)
	for !r.Breakers().AllClosed() {
		if time.Now().After(deadline) {
			t.Fatalf("breakers never reconverged: %v", r.Breakers().Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := r.Select(ctx, req()); err != nil {
		t.Fatalf("post-recovery request failed: %v", err)
	}
}

// TestFetcherFaultSites drives the artifact fetcher through the
// fetch.request and fetch.body injection sites against a real peer: an
// injected request error fails that attempt, and an injected body
// corruption must die at the checksum gate — the fetcher never returns
// bytes that fail verification.
func TestFetcherFaultSites(t *testing.T) {
	svc, err := service.New(service.Options{
		Base:     core.Options{Seed: 42, Sizes: datahub.Sizes{Train: 60, Val: 40, Test: 48}},
		StoreDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Do(context.Background(), service.Request{Task: "nlp", Targets: []string{"tweet_eval"}}); err != nil {
		t.Fatal(err)
	}
	peer := httptest.NewServer(api.NewHandlerWith(api.NewDispatcher(svc, 42), api.HandlerOptions{Artifacts: svc.Store()}))
	defer peer.Close()
	self := "http://self.invalid"
	ring, err := NewRing([]string{peer.URL, self}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A capped request fault fails the first attempt; with the single
	// real peer exhausted, the fetch fails typed — and the next fetch
	// (schedule drained) succeeds.
	if err := faultinject.Enable("seed=1;fetch.request:err#1"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	fetch := NewArtifactFetcher(ring, self, 2, nil)
	if _, err := fetch(ctx, "matrices", "nlp-seed42"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("fetch under request fault = %v, want ErrInjected", err)
	}
	data, err := fetch(ctx, "matrices", "nlp-seed42")
	if err != nil {
		t.Fatalf("fetch after schedule drained: %v", err)
	}
	if _, err := artifact.Verify(data); err != nil {
		t.Fatalf("fetched document fails verification: %v", err)
	}

	// A corrupted body must never escape: the checksum gate rejects it,
	// the peer's breaker takes the failure, and no bytes are returned.
	if err := faultinject.Enable("seed=1;fetch.body:corrupt#1"); err != nil {
		t.Fatal(err)
	}
	fetch = NewArtifactFetcher(ring, self, 2, nil)
	if data, err := fetch(ctx, "matrices", "nlp-seed42"); err == nil {
		t.Fatalf("corrupted fetch returned %d bytes with nil error", len(data))
	}
	if data, err := fetch(ctx, "matrices", "nlp-seed42"); err != nil {
		t.Fatalf("fetch after corrupt fault drained: %v", err)
	} else if _, err := artifact.Verify(data); err != nil {
		t.Fatalf("post-drain document fails verification: %v", err)
	}
}
