// Package shard is the multi-node serving tier: a consistent-hash ring
// that assigns each (task, seed) world to a stable owner set of backends,
// health-check-driven membership that tracks which backends are serving,
// and a routing gateway that scatter-gathers selection batches across the
// owners with automatic failover.
//
// The two-phase economics make sharding by world the right cut: the
// offline build is the expensive part and is cached per (task, seed), so
// routing every request for one world to the same small owner set keeps
// the fleet-wide cache hit rate flat as backends are added. Selections
// are deterministic in the world, so any replica serves bit-identical
// reports — failover is invisible to clients.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"twophase/internal/lifecycle"
)

// DefaultVNodes is the virtual-node count per backend when Ring callers
// leave it unset. More vnodes smooth the key distribution at the price of
// a larger ring table; 64 keeps the imbalance under a few percent for
// small fleets.
const DefaultVNodes = 64

// RouteKey names the routing key of one framework world. It is exactly
// the artifact store's key for the same world, so the node that owns a
// key also owns its persisted artifacts' cache locality.
func RouteKey(task string, seed uint64) string {
	return lifecycle.Key{Task: task, Seed: seed}.String()
}

// Ring is an immutable consistent-hash ring over a fixed backend set.
// Membership changes (a backend going down) do not rebuild the ring:
// routing skips dead owners at lookup time, so a recovered backend gets
// its exact key range back — which is the property that preserves cache
// affinity across a bounce.
type Ring struct {
	vnodes int
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring with vnodes virtual points per node (0 means
// DefaultVNodes). Node names must be non-empty and distinct.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		vnodes: vnodes,
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("shard: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("shard: duplicate node %q", n)
		}
		seen[n] = true
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break so every process orders an (absurdly
		// unlikely) hash collision identically.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the ring's node set in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes returns the per-node virtual point count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owners returns the first n distinct nodes clockwise from the key's hash
// — the key's replica set in priority order. n is clamped to the node
// count. The walk is a pure function of (key, ring), so every gateway
// process computes the same owner list.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			owners = append(owners, p.node)
		}
	}
	return owners
}

// Owner returns the key's primary owner.
func (r *Ring) Owner(key string) string { return r.Owners(key, 1)[0] }

// hash64 is FNV-1a with a splitmix64 finalizer: fast, dependency-free
// and — critically — identical across processes and restarts, unlike
// hash/maphash's per-process seed. Raw FNV-1a distributes the short,
// near-identical vnode labels ("node#0", "node#1", …) poorly around the
// ring; the finalizer's avalanche evens the arc lengths out.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
