package shard_test

// The multi-process end-to-end harness: every future distributed change
// regression-tests against this file. It builds the real apiserver and
// gateway binaries, boots a 3-backend fleet plus a gateway as separate OS
// processes on ephemeral ports, and proves the sharding tier's contract:
//
//  1. routing stability — the same (task, seed) key lands on the same
//     backend process on every request, and on exactly the backend the
//     ring predicts in-process (cross-process determinism of the ring);
//  2. failover — after SIGKILLing a backend, its keys serve from the next
//     replica with zero client-visible errors and bit-identical reports;
//  3. observability — the gateway's /v1/stats shows the failover, the
//     down event, and aggregated per-backend counters.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"twophase/internal/api"
	"twophase/internal/shard"
)

// binDir holds the compiled binaries' temp directory so TestMain can
// reclaim it — sync.OnceValues outlives any per-test cleanup scope.
var binDir string

func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

// buildBinaries compiles the real server binaries once per test run.
var buildBinaries = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "twophase-e2e-bin-*")
	if err != nil {
		return nil, err
	}
	binDir = dir
	bins := make(map[string]string, 2)
	for _, cmd := range []string{"apiserver", "gateway"} {
		out := filepath.Join(dir, cmd)
		build := exec.Command("go", "build", "-o", out, "./cmd/"+cmd)
		build.Dir = repoRoot()
		if msg, err := build.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("go build ./cmd/%s: %v\n%s", cmd, err, msg)
		}
		bins[cmd] = out
	}
	return bins, nil
})

// repoRoot finds the module root from this package's directory.
func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/shard -> repo root
}

// freePort reserves an ephemeral port and releases it for the child
// process to bind. The classic race is acceptable in a test harness.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// proc is one spawned server process.
type proc struct {
	name string
	url  string
	cmd  *exec.Cmd
}

// spawn starts a binary and registers cleanup; logs go to the test log on
// failure via the per-process log file.
func spawn(t *testing.T, name, bin string, logDir string, args ...string) *proc {
	t.Helper()
	logf, err := os.Create(filepath.Join(logDir, name+".log"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	p := &proc{name: name, cmd: cmd}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
		logf.Close()
		if t.Failed() {
			if data, err := os.ReadFile(logf.Name()); err == nil {
				t.Logf("---- %s log ----\n%s", name, data)
			}
		}
	})
	return p
}

// waitHealthy polls a server's healthz until ok or the deadline.
func waitHealthy(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	c := api.NewClient(url, nil)
	deadline := time.After(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := c.Healthz(ctx)
		cancel()
		if err == nil {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("%s never became healthy: %v", url, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// selectOne issues a single-target request through the gateway.
func selectOne(t *testing.T, c *api.Client, task, target string, seed uint64) *api.SelectResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	s := seed
	resp, err := c.Select(ctx, &api.SelectRequest{Task: task, Targets: []string{target}, SelectOptions: api.SelectOptions{Seed: &s}})
	if err != nil {
		t.Fatalf("select %s/%s seed %d: %v", task, target, seed, err)
	}
	if resp.Failed != 0 || resp.Results[0].Error != "" {
		t.Fatalf("select %s/%s seed %d failed in-body: %+v", task, target, seed, resp.Results[0])
	}
	return resp
}

// stripRouting clears the fields that legitimately differ across serving
// backends (who served, wall time, lifetime build counters), leaving the
// selection outcome that must be bit-identical.
func stripRouting(resp *api.SelectResponse) api.SelectResponse {
	out := *resp
	out.Results = append([]api.TargetResult(nil), resp.Results...)
	for i := range out.Results {
		out.Results[i].Backend = ""
	}
	out.WallMillis = 0
	out.OfflineBuilds = 0
	return out
}

func TestEndToEndShardedFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e harness (builds binaries, spawns 4 processes)")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bins, err := buildBinaries()
	if err != nil {
		t.Fatal(err)
	}

	logDir := t.TempDir()
	storeDir := t.TempDir() // shared artifact store: failover reloads, never retrains
	const backendCount = 3
	sizeFlags := []string{"-train", "60", "-val", "40", "-test", "48"}

	// Boot the backend fleet.
	backends := make([]*proc, backendCount)
	urls := make([]string, backendCount)
	instances := make(map[string]string, backendCount) // url -> instance
	for i := range backends {
		port := freePort(t)
		name := fmt.Sprintf("backend-%d", i)
		args := append([]string{
			"-addr", "127.0.0.1:" + strconv.Itoa(port),
			"-instance", name,
			"-store", storeDir,
		}, sizeFlags...)
		backends[i] = spawn(t, name, bins["apiserver"], logDir, args...)
		backends[i].url = "http://127.0.0.1:" + strconv.Itoa(port)
		urls[i] = backends[i].url
		instances[backends[i].url] = name
	}
	for _, b := range backends {
		waitHealthy(t, b.url, 15*time.Second)
	}

	// Boot the gateway over the fleet.
	gwPort := freePort(t)
	gw := spawn(t, "gateway", bins["gateway"], logDir,
		"-addr", "127.0.0.1:"+strconv.Itoa(gwPort),
		"-backends", urls[0]+","+urls[1]+","+urls[2],
		"-replicas", "2",
		"-probe-interval", "100ms",
		"-probe-failures", "2",
		"-instance", "gw-e2e",
	)
	gw.url = "http://127.0.0.1:" + strconv.Itoa(gwPort)
	waitHealthy(t, gw.url, 15*time.Second)
	c := api.NewClient(gw.url, nil)

	// An in-process ring over the same URLs predicts the owners the
	// gateway process must pick: consistent hashing is deterministic
	// across processes or it is useless.
	ring, err := shard.NewRing(urls, shard.DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}

	// --- 1. Routing stability ---------------------------------------
	const task, target = "nlp", "tweet_eval"
	seeds := []uint64{0, 1, 2}
	baseline := make(map[uint64]*api.SelectResponse, len(seeds))
	for _, seed := range seeds {
		want := instances[ring.Owners(shard.RouteKey(task, seed), 2)[0]]
		for round := 0; round < 3; round++ {
			resp := selectOne(t, c, task, target, seed)
			got := resp.Results[0].Backend
			if got != want {
				t.Fatalf("seed %d round %d served by %q, ring predicts primary %q", seed, round, got, want)
			}
			if round == 0 {
				baseline[seed] = resp
			} else if !reflect.DeepEqual(stripRouting(resp), stripRouting(baseline[seed])) {
				t.Fatalf("seed %d drifted across identical requests:\n%+v\nvs\n%+v", seed, resp, baseline[seed])
			}
		}
	}

	// --- 2. Failover after SIGKILL ----------------------------------
	// Kill seed 0's primary owner outright (no drain, no goodbye).
	killSeed := seeds[0]
	owners := ring.Owners(shard.RouteKey(task, killSeed), 2)
	primary, secondary := instances[owners[0]], instances[owners[1]]
	var victim *proc
	for _, b := range backends {
		if instances[b.url] == primary {
			victim = b
		}
	}
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()

	// Every request must keep succeeding — the first ones pay an inline
	// failover (probes haven't noticed yet), later ones route around the
	// corpse. Reports stay bit-identical to the pre-kill baseline.
	for round := 0; round < 4; round++ {
		resp := selectOne(t, c, task, target, killSeed)
		if got := resp.Results[0].Backend; got != secondary {
			t.Fatalf("post-kill round %d served by %q, want secondary %q", round, got, secondary)
		}
		if !reflect.DeepEqual(stripRouting(resp), stripRouting(baseline[killSeed])) {
			t.Fatalf("failover changed the report:\n%+v\nvs baseline\n%+v", resp, baseline[killSeed])
		}
	}
	// Keys owned by surviving backends are untouched by the kill.
	for _, seed := range seeds[1:] {
		if instances[ring.Owners(shard.RouteKey(task, seed), 2)[0]] == primary {
			continue
		}
		resp := selectOne(t, c, task, target, seed)
		if !reflect.DeepEqual(stripRouting(resp), stripRouting(baseline[seed])) {
			t.Fatalf("seed %d disturbed by unrelated backend death", seed)
		}
	}

	// --- 3. Gateway observability -----------------------------------
	// Wait for the probe loop to register the death (100ms interval,
	// threshold 2), then assert the stats document tells the story.
	var st *api.Stats
	deadline := time.After(15 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		st, err = c.Stats(ctx)
		cancel()
		if err != nil {
			t.Fatalf("gateway stats: %v", err)
		}
		if st.Gateway != nil && st.Gateway.Alive == backendCount-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("gateway never marked the killed backend down: %+v", st.Gateway)
		case <-time.After(50 * time.Millisecond):
		}
	}
	g := st.Gateway
	if g.Failovers < 1 {
		t.Fatalf("no failover counted: %+v", g)
	}
	if g.Backends != backendCount || g.Replicas != 2 {
		t.Fatalf("ring shape: %+v", g)
	}
	var downEvents, requests int64
	aliveWithStats := 0
	for _, bs := range g.BackendStats {
		downEvents += bs.DownEvents
		requests += bs.Requests
		if bs.Instance != instances[bs.URL] && bs.Instance != "" {
			t.Fatalf("backend %s reported instance %q, want %q", bs.URL, bs.Instance, instances[bs.URL])
		}
		if bs.Alive && bs.Stats != nil {
			aliveWithStats++
		}
	}
	if downEvents < 1 {
		t.Fatalf("no down event recorded: %+v", g.BackendStats)
	}
	if requests == 0 {
		t.Fatal("per-backend request counters all zero")
	}
	if aliveWithStats != backendCount-1 {
		t.Fatalf("aggregated stats missing for live backends: %+v", g.BackendStats)
	}
	// The fleet-level sums aggregate the survivors' serving stats. (Not
	// OfflineBuilds: with a shared store the killed primary may have been
	// the only backend that executed a real build — survivors resolve
	// worlds by loading its artifacts, which counts as a cache build.)
	if st.Cache.Builds < 1 || st.TotalEpochs <= 0 {
		t.Fatalf("fleet sums empty: %+v", st)
	}
}
