package cluster

// AdjustedRandIndex measures the agreement of two clusterings of the same
// items, corrected for chance: 1 means identical partitions, ~0 means
// random agreement. Used to check that the model clustering is stable
// when the offline matrix is built from less training data (the §III.A
// claim that "a subset of training data with relative small size could be
// enough").
func AdjustedRandIndex(a, b Clustering) float64 {
	n := len(a.Assign)
	if n != len(b.Assign) {
		panic("cluster: AdjustedRandIndex length mismatch")
	}
	if n == 0 {
		return 1
	}
	// contingency table
	table := make(map[[2]int]int)
	rowSum := make(map[int]int)
	colSum := make(map[int]int)
	for i := 0; i < n; i++ {
		table[[2]int{a.Assign[i], b.Assign[i]}]++
		rowSum[a.Assign[i]]++
		colSum[b.Assign[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }

	var sumTable, sumRows, sumCols float64
	for _, v := range table {
		sumTable += choose2(v)
	}
	for _, v := range rowSum {
		sumRows += choose2(v)
	}
	for _, v := range colSum {
		sumCols += choose2(v)
	}
	total := choose2(n)
	if total == 0 {
		return 1
	}
	expected := sumRows * sumCols / total
	max := (sumRows + sumCols) / 2
	if max == expected {
		return 1 // both partitions are trivial in the same way
	}
	return (sumTable - expected) / (max - expected)
}
