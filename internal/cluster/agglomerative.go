package cluster

import (
	"math"
	"sort"
	"sync/atomic"

	"twophase/internal/numeric"
)

// agglomerativePasses counts Agglomerative invocations in this process.
// The offline pipeline persists its clustering as a stage artifact, and
// warm-start tests use this counter to prove a rehydrated framework never
// re-clusters the repository.
var agglomerativePasses atomic.Int64

// Passes reports how many agglomerative clustering passes this process
// has executed so far.
func Passes() int64 { return agglomerativePasses.Load() }

// Clustering is an assignment of n items to K clusters, with cluster ids
// in [0, K).
type Clustering struct {
	Assign []int
	K      int
}

// Groups returns, for each cluster id, the member indices in ascending
// order.
func (c Clustering) Groups() [][]int {
	groups := make([][]int, c.K)
	for i, a := range c.Assign {
		groups[a] = append(groups[a], i)
	}
	return groups
}

// NonSingletons returns the groups with more than one member.
func (c Clustering) NonSingletons() [][]int {
	var out [][]int
	for _, g := range c.Groups() {
		if len(g) > 1 {
			out = append(out, g)
		}
	}
	return out
}

// Singletons returns the indices of items alone in their cluster.
func (c Clustering) Singletons() []int {
	var out []int
	for _, g := range c.Groups() {
		if len(g) == 1 {
			out = append(out, g[0])
		}
	}
	sort.Ints(out)
	return out
}

// Agglomerative performs average-linkage hierarchical clustering, merging
// the closest pair of clusters while their linkage stays below threshold.
// Setting maxClusters > 0 additionally keeps merging (ignoring threshold)
// until at most maxClusters remain; pass 0 to rely on the threshold alone.
func Agglomerative(vecs [][]float64, dist Distance, threshold float64, maxClusters int) Clustering {
	return AgglomerativeWith(vecs, dist, threshold, maxClusters, 1)
}

// AgglomerativeWith is Agglomerative with the O(n²) pairwise-distance
// precompute fanned out across a worker budget (<= 0 means GOMAXPROCS).
// The merge loop itself stays serial — each merge decision depends on the
// previous one — but it only reads the precomputed matrix, so the
// clustering is bit-identical for every worker count.
func AgglomerativeWith(vecs [][]float64, dist Distance, threshold float64, maxClusters, workers int) Clustering {
	agglomerativePasses.Add(1)
	n := len(vecs)
	if n == 0 {
		return Clustering{}
	}
	d := MatrixWith(vecs, dist, workers)

	// active clusters as member lists
	members := make([][]int, n)
	for i := range members {
		members[i] = []int{i}
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	count := n

	linkage := func(a, b []int) float64 {
		var s float64
		for _, i := range a {
			for _, j := range b {
				s += d.At(i, j)
			}
		}
		return s / float64(len(a)*len(b))
	}

	for count > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if l := linkage(members[i], members[j]); l < best {
					bi, bj, best = i, j, l
				}
			}
		}
		overThreshold := best > threshold
		underCap := maxClusters <= 0 || count <= maxClusters
		if overThreshold && underCap {
			break
		}
		members[bi] = append(members[bi], members[bj]...)
		active[bj] = false
		count--
	}

	assign := make([]int, n)
	k := 0
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		for _, m := range members[i] {
			assign[m] = k
		}
		k++
	}
	return Clustering{Assign: assign, K: k}
}

// KMeans clusters vecs into k groups with Lloyd's algorithm and k-means++
// initialization. Distances are Euclidean (means only exist in L2). The
// rng makes initialization deterministic; iters bounds the Lloyd passes.
func KMeans(vecs [][]float64, k int, rng *numeric.RNG, iters int) Clustering {
	n := len(vecs)
	if n == 0 {
		return Clustering{}
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		k = 1
	}
	dim := len(vecs[0])

	// k-means++ seeding
	centers := make([][]float64, 0, k)
	centers = append(centers, numeric.Clone(vecs[rng.Intn(n)]))
	minDist := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, v := range vecs {
			best := math.Inf(1)
			for _, c := range centers {
				if d := numeric.EuclideanDistance(v, c); d < best {
					best = d
				}
			}
			minDist[i] = best * best
			total += minDist[i]
		}
		if total == 0 {
			// all remaining points coincide with existing centers
			centers = append(centers, numeric.Clone(vecs[rng.Intn(n)]))
			continue
		}
		u := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, w := range minDist {
			acc += w
			if u < acc {
				pick = i
				break
			}
		}
		centers = append(centers, numeric.Clone(vecs[pick]))
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c, center := range centers {
				if d := numeric.EuclideanDistance(v, center); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// recompute centers
		counts := make([]int, k)
		for c := range centers {
			for j := 0; j < dim; j++ {
				centers[c][j] = 0
			}
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			numeric.AddScaled(centers[c], 1, v)
		}
		for c := range centers {
			if counts[c] == 0 {
				// re-seed an empty cluster at a random point
				copy(centers[c], vecs[rng.Intn(n)])
				continue
			}
			numeric.Scale(centers[c], 1/float64(counts[c]))
		}
		if !changed && it > 0 {
			break
		}
	}

	// compact cluster ids (drop empties)
	remap := map[int]int{}
	for _, a := range assign {
		if _, ok := remap[a]; !ok {
			remap[a] = len(remap)
		}
	}
	for i, a := range assign {
		assign[i] = remap[a]
	}
	return Clustering{Assign: assign, K: len(remap)}
}
