// Package cluster implements the model-clustering machinery of the
// coarse-recall phase: the paper's top-k performance-difference similarity
// (Eq. 1), average-linkage agglomerative clustering, k-means, and the
// silhouette coefficient used to compare clusterings (§III.A, §V.B).
package cluster

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"twophase/internal/numeric"
)

// Distance maps two equal-length vectors to a non-negative dissimilarity.
type Distance func(a, b []float64) float64

// TopKDistance returns the paper's Eq. 1 dissimilarity: the mean of the k
// largest absolute coordinate differences between two performance vectors
// (so similarity sim = 1 - distance). Using only the k most-different
// benchmarks filters the noise of benchmarks where every model performs
// alike, while keeping the signal of the ones that discriminate.
func TopKDistance(k int) Distance {
	if k <= 0 {
		panic("cluster: TopKDistance needs k > 0")
	}
	return func(a, b []float64) float64 {
		if len(a) != len(b) {
			panic("cluster: distance length mismatch")
		}
		diffs := make([]float64, len(a))
		for i := range a {
			diffs[i] = math.Abs(a[i] - b[i])
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(diffs)))
		kk := k
		if kk > len(diffs) {
			kk = len(diffs)
		}
		return numeric.Mean(diffs[:kk])
	}
}

// TopKSimilarity returns Eq. 1 directly: 1 - TopKDistance.
func TopKSimilarity(k int, a, b []float64) float64 {
	return 1 - TopKDistance(k)(a, b)
}

// Euclidean is the plain L2 distance (the ablation baseline for Eq. 1).
func Euclidean(a, b []float64) float64 { return numeric.EuclideanDistance(a, b) }

// Cosine is 1 - cosine similarity, used for text-embedding vectors.
func Cosine(a, b []float64) float64 { return 1 - numeric.CosineSimilarity(a, b) }

// Matrix precomputes the pairwise distances of vecs under dist.
func Matrix(vecs [][]float64, dist Distance) *numeric.Matrix {
	return MatrixWith(vecs, dist, 1)
}

// MatrixWith is Matrix with the rows fanned out across a worker budget
// (<= 0 means GOMAXPROCS). Each (i, j) pair is computed exactly once by
// the worker that owns row i, which writes the two mirror cells — no two
// workers ever touch the same cell, and dist must be pure, so the matrix
// is identical for every worker count.
func MatrixWith(vecs [][]float64, dist Distance, workers int) *numeric.Matrix {
	n := len(vecs)
	m := numeric.NewMatrix(n, n)
	fillRow := func(i int) {
		for j := i + 1; j < n; j++ {
			d := dist(vecs[i], vecs[j])
			m.Set(i, j, d)
			m.Set(j, i, d)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fillRow(i)
		}
		return m
	}
	// Row i holds n-i-1 pairs, so rows are claimed dynamically to keep
	// late (cheap) rows from idling workers that drew early (long) ones.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fillRow(i)
			}
		}()
	}
	wg.Wait()
	return m
}
