package cluster

import "twophase/internal/numeric"

// Silhouette returns the mean silhouette coefficient of the clustering
// under dist (Rousseeuw 1987), the metric the paper uses to compare
// clustering quality (Table I, Fig. 6, appendix Table X).
//
// Items in singleton clusters contribute 0, matching the standard
// convention; if every cluster is a singleton the score is 0.
func Silhouette(vecs [][]float64, c Clustering, dist Distance) float64 {
	n := len(vecs)
	if n == 0 || c.K <= 1 {
		return 0
	}
	d := Matrix(vecs, dist)
	groups := c.Groups()

	scores := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		own := groups[c.Assign[i]]
		if len(own) <= 1 {
			scores = append(scores, 0)
			continue
		}
		// a(i): mean intra-cluster distance (excluding self)
		var a float64
		for _, j := range own {
			if j != i {
				a += d.At(i, j)
			}
		}
		a /= float64(len(own) - 1)

		// b(i): smallest mean distance to another cluster
		b := -1.0
		for g, members := range groups {
			if g == c.Assign[i] || len(members) == 0 {
				continue
			}
			var s float64
			for _, j := range members {
				s += d.At(i, j)
			}
			s /= float64(len(members))
			if b < 0 || s < b {
				b = s
			}
		}
		if b < 0 {
			scores = append(scores, 0)
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den == 0 {
			scores = append(scores, 0)
			continue
		}
		scores = append(scores, (b-a)/den)
	}
	return numeric.Mean(scores)
}

// RandomClustering assigns n items uniformly at random to k clusters —
// the baseline of Fig. 6's clustering-quality comparison.
func RandomClustering(n, k int, rng *numeric.RNG) Clustering {
	if k < 1 {
		k = 1
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(k)
	}
	// compact ids in case some cluster drew no members
	remap := map[int]int{}
	for _, a := range assign {
		if _, ok := remap[a]; !ok {
			remap[a] = len(remap)
		}
	}
	for i, a := range assign {
		assign[i] = remap[a]
	}
	return Clustering{Assign: assign, K: len(remap)}
}
