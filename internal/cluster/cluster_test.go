package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"twophase/internal/numeric"
)

// blobs generates three well-separated 2-D clusters of n points each.
func blobs(n int) ([][]float64, []int) {
	rng := numeric.NewNamedRNG(42, "blobs")
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	var vecs [][]float64
	var labels []int
	for c, center := range centers {
		for i := 0; i < n; i++ {
			vecs = append(vecs, []float64{
				center[0] + rng.Norm()*0.5,
				center[1] + rng.Norm()*0.5,
			})
			labels = append(labels, c)
		}
	}
	return vecs, labels
}

// agree checks that a clustering matches reference labels up to renaming.
func agree(assign, labels []int) bool {
	mapping := map[int]int{}
	for i, a := range assign {
		if want, ok := mapping[a]; ok {
			if want != labels[i] {
				return false
			}
		} else {
			mapping[a] = labels[i]
		}
	}
	// mapping must be injective
	seen := map[int]bool{}
	for _, v := range mapping {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestTopKDistanceBasics(t *testing.T) {
	d := TopKDistance(2)
	a := []float64{0.9, 0.5, 0.5, 0.5}
	b := []float64{0.5, 0.5, 0.5, 0.3}
	// diffs: 0.4, 0, 0, 0.2 -> top2 mean = 0.3
	if got := d(a, b); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("top-2 distance %v", got)
	}
	if d(a, a) != 0 {
		t.Fatal("self distance not 0")
	}
	if got := TopKSimilarity(2, a, b); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("similarity %v", got)
	}
}

func TestTopKDistanceOversizedK(t *testing.T) {
	d := TopKDistance(99)
	a, b := []float64{1, 0}, []float64{0, 0}
	if got := d(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("oversized k distance %v", got)
	}
}

func TestTopKDistanceProperties(t *testing.T) {
	d := TopKDistance(3)
	f := func(a, b [6]float64) bool {
		x, y := clip(a[:]), clip(b[:])
		dd := d(x, y)
		return dd >= 0 && math.Abs(dd-d(y, x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clip(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 1)
	}
	return out
}

func TestTopKDistancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k<=0")
		}
	}()
	TopKDistance(0)
}

func TestAgglomerativeRecoversBlobs(t *testing.T) {
	vecs, labels := blobs(10)
	cl := Agglomerative(vecs, Euclidean, 3.0, 0)
	if cl.K != 3 {
		t.Fatalf("found %d clusters, want 3", cl.K)
	}
	if !agree(cl.Assign, labels) {
		t.Fatal("clusters do not match blobs")
	}
}

func TestAgglomerativeThresholdMonotone(t *testing.T) {
	vecs, _ := blobs(8)
	prev := len(vecs) + 1
	for _, th := range []float64{0.1, 1, 5, 50} {
		cl := Agglomerative(vecs, Euclidean, th, 0)
		if cl.K > prev {
			t.Fatalf("cluster count increased as threshold grew")
		}
		prev = cl.K
	}
}

func TestAgglomerativeMaxClusters(t *testing.T) {
	vecs, _ := blobs(5)
	cl := Agglomerative(vecs, Euclidean, 0, 2)
	if cl.K != 2 {
		t.Fatalf("maxClusters not honoured: K=%d", cl.K)
	}
}

func TestAgglomerativeEmptyAndSingle(t *testing.T) {
	if cl := Agglomerative(nil, Euclidean, 1, 0); cl.K != 0 {
		t.Fatal("empty input should give empty clustering")
	}
	cl := Agglomerative([][]float64{{1, 2}}, Euclidean, 1, 0)
	if cl.K != 1 || cl.Assign[0] != 0 {
		t.Fatal("single input should give one cluster")
	}
}

func TestClusteringGroupsAndSingletons(t *testing.T) {
	cl := Clustering{Assign: []int{0, 1, 0, 2}, K: 3}
	groups := cl.Groups()
	if len(groups) != 3 || len(groups[0]) != 2 {
		t.Fatalf("groups %v", groups)
	}
	ns := cl.NonSingletons()
	if len(ns) != 1 || ns[0][0] != 0 || ns[0][1] != 2 {
		t.Fatalf("non-singletons %v", ns)
	}
	s := cl.Singletons()
	if len(s) != 2 || s[0] != 1 || s[1] != 3 {
		t.Fatalf("singletons %v", s)
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	vecs, labels := blobs(10)
	cl := KMeans(vecs, 3, numeric.NewNamedRNG(42, "kmeans"), 100)
	if cl.K != 3 {
		t.Fatalf("kmeans K=%d", cl.K)
	}
	if !agree(cl.Assign, labels) {
		t.Fatal("kmeans did not recover blobs")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if cl := KMeans(nil, 3, numeric.NewNamedRNG(1, "a"), 10); cl.K != 0 {
		t.Fatal("empty input")
	}
	vecs := [][]float64{{1}, {1}, {1}}
	cl := KMeans(vecs, 5, numeric.NewNamedRNG(1, "b"), 10)
	if cl.K < 1 {
		t.Fatal("identical points should still cluster")
	}
	for _, a := range cl.Assign {
		if a < 0 || a >= cl.K {
			t.Fatalf("assignment %d outside [0,%d)", a, cl.K)
		}
	}
}

func TestKMeansDeterministicGivenRNG(t *testing.T) {
	vecs, _ := blobs(6)
	a := KMeans(vecs, 3, numeric.NewNamedRNG(7, "det"), 50)
	b := KMeans(vecs, 3, numeric.NewNamedRNG(7, "det"), 50)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same RNG stream produced different clusterings")
		}
	}
}

func TestSilhouetteSeparatedVsRandom(t *testing.T) {
	vecs, labels := blobs(10)
	good := Clustering{Assign: labels, K: 3}
	sGood := Silhouette(vecs, good, Euclidean)
	if sGood < 0.8 {
		t.Fatalf("well-separated silhouette %v too low", sGood)
	}
	rng := numeric.NewNamedRNG(42, "sil-random")
	sRand := Silhouette(vecs, RandomClustering(len(vecs), 3, rng), Euclidean)
	if sGood <= sRand {
		t.Fatalf("good %v not above random %v", sGood, sRand)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	vecs, _ := blobs(3)
	if s := Silhouette(vecs, Clustering{Assign: make([]int, len(vecs)), K: 1}, Euclidean); s != 0 {
		t.Fatalf("single-cluster silhouette %v", s)
	}
	if s := Silhouette(nil, Clustering{}, Euclidean); s != 0 {
		t.Fatal("empty silhouette")
	}
	// all singletons -> all zero contributions
	assign := []int{0, 1, 2}
	if s := Silhouette(vecs[:3], Clustering{Assign: assign, K: 3}, Euclidean); s != 0 {
		t.Fatalf("all-singleton silhouette %v", s)
	}
}

func TestSilhouetteBounds(t *testing.T) {
	vecs, labels := blobs(6)
	s := Silhouette(vecs, Clustering{Assign: labels, K: 3}, Euclidean)
	if s < -1 || s > 1 {
		t.Fatalf("silhouette %v outside [-1,1]", s)
	}
}

func TestRandomClusteringValid(t *testing.T) {
	rng := numeric.NewNamedRNG(1, "rc")
	cl := RandomClustering(20, 4, rng)
	if len(cl.Assign) != 20 {
		t.Fatal("wrong length")
	}
	for _, a := range cl.Assign {
		if a < 0 || a >= cl.K {
			t.Fatalf("assignment %d outside [0,%d)", a, cl.K)
		}
	}
}

func TestMatrixSymmetric(t *testing.T) {
	vecs, _ := blobs(4)
	m := Matrix(vecs, Euclidean)
	for i := 0; i < m.Rows; i++ {
		if m.At(i, i) != 0 {
			t.Fatal("diagonal not zero")
		}
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatal("matrix not symmetric")
			}
		}
	}
}

func TestCosineDistance(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got) > 1e-12 {
		t.Fatalf("identical cosine distance %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{-1, 0}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("opposite cosine distance %v", got)
	}
}

func TestAdjustedRandIndexIdentical(t *testing.T) {
	a := Clustering{Assign: []int{0, 0, 1, 1, 2}, K: 3}
	if got := AdjustedRandIndex(a, a); got != 1 {
		t.Fatalf("self ARI = %v", got)
	}
	// identical up to relabeling
	b := Clustering{Assign: []int{2, 2, 0, 0, 1}, K: 3}
	if got := AdjustedRandIndex(a, b); got != 1 {
		t.Fatalf("relabel ARI = %v", got)
	}
}

func TestAdjustedRandIndexRandomNearZero(t *testing.T) {
	rng := numeric.NewNamedRNG(1, "ari")
	n := 2000
	a := RandomClustering(n, 4, rng)
	b := RandomClustering(n, 4, rng)
	if got := AdjustedRandIndex(a, b); math.Abs(got) > 0.05 {
		t.Fatalf("independent random clusterings ARI = %v", got)
	}
}

func TestAdjustedRandIndexPartial(t *testing.T) {
	a := Clustering{Assign: []int{0, 0, 0, 1, 1, 1}, K: 2}
	b := Clustering{Assign: []int{0, 0, 1, 1, 1, 1}, K: 2}
	got := AdjustedRandIndex(a, b)
	if got <= 0 || got >= 1 {
		t.Fatalf("partial agreement ARI = %v, want strictly between 0 and 1", got)
	}
}

func TestAdjustedRandIndexMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	AdjustedRandIndex(Clustering{Assign: []int{0}}, Clustering{Assign: []int{0, 1}})
}

func TestAdjustedRandIndexEmpty(t *testing.T) {
	if AdjustedRandIndex(Clustering{}, Clustering{}) != 1 {
		t.Fatal("empty clusterings should agree")
	}
}
