package cluster_test

import (
	"fmt"

	"twophase/internal/cluster"
)

// Example demonstrates Eq. 1: the similarity of two models is judged only
// by the benchmarks where they differ most, ignoring benchmarks where
// every model performs alike.
func ExampleTopKSimilarity() {
	a := []float64{0.90, 0.85, 0.50, 0.51}
	b := []float64{0.88, 0.84, 0.52, 0.90}
	// top-2 absolute differences: |0.51-0.90|=0.39 and |0.50-0.52|=0.02
	fmt.Printf("%.3f\n", cluster.TopKSimilarity(2, a, b))
	// Output: 0.795
}

func ExampleAgglomerative() {
	vecs := [][]float64{
		{0.9, 0.9}, {0.91, 0.89}, // strong pair
		{0.5, 0.5}, {0.52, 0.51}, // weak pair
	}
	cl := cluster.Agglomerative(vecs, cluster.Euclidean, 0.1, 0)
	fmt.Println(cl.K, cl.Assign)
	// Output: 2 [0 0 1 1]
}

func ExampleClustering_NonSingletons() {
	cl := cluster.Clustering{Assign: []int{0, 1, 0, 2}, K: 3}
	fmt.Println(cl.NonSingletons(), cl.Singletons())
	// Output: [[0 2]] [1 3]
}
