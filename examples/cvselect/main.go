// CV scenario with a domain shift: select a vision model for chest X-ray
// classification — a medical domain no repository model was trained on —
// demonstrating the framework's out-of-domain behaviour (§V.E): the prior
// accuracy term and generic-capability models carry the recall, and fine
// selection still lands near the brute-force choice.
//
//	go run ./examples/cvselect
package main

import (
	"context"

	"fmt"
	"log"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

func main() {
	fw, err := core.Build(core.Options{Task: datahub.TaskCV, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	target, err := fw.Catalog.Get("trpakov/chest-xray-classification")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target: %s — %s (%d classes)\n", target.Name, target.Description, target.Classes)
	fmt.Println("no repository model was pre-trained on medical imaging")

	report, err := fw.Select(context.Background(), target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecalled candidates (out-of-domain recall rides on prior accuracy):")
	for i, name := range report.Recall.Recalled {
		fmt.Printf("  %2d. %s\n", i+1, name)
	}
	fmt.Println("\nfine-selection stages:")
	for stage, pool := range report.Outcome.Stages {
		fmt.Printf("  epoch %d: %d models in training\n", stage+1, len(pool))
	}
	fmt.Printf("\nselected: %s (test %.3f) in %.1f epochs\n",
		report.Outcome.Winner, report.Outcome.WinnerTest, report.TotalEpochs())

	bf, err := fw.BruteForce(context.Background(), target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute force: %s (test %.3f) in %d epochs — %.2fx slower\n",
		bf.Winner, bf.WinnerTest, bf.Ledger.TrainEpochs(),
		float64(bf.Ledger.TrainEpochs())/report.TotalEpochs())
}
