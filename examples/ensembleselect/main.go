// Ensemble selection (§VII / the Palette line of work the paper cites):
// instead of keeping a single winner, fine-selection can stop filtering
// at k survivors, train them all to budget, and combine their predictions
// by soft voting — trading a few extra epochs for accuracy above any
// single model.
//
//	go run ./examples/ensembleselect
package main

import (
	"context"

	"fmt"
	"log"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/recall"
	"twophase/internal/selection"
)

func main() {
	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	target, err := fw.Catalog.Get("LysandreJik/glue-mnli-train")
	if err != nil {
		log.Fatal(err)
	}

	rr, err := recall.CoarseRecall(fw.Matrix, fw.Repo, target, fw.Recall, nil)
	if err != nil {
		log.Fatal(err)
	}
	cand, err := fw.Repo.Subset(rr.Recalled)
	if err != nil {
		log.Fatal(err)
	}
	opts := selection.FineSelectOptions{
		Config: selection.Config{HP: fw.HP, Seed: fw.Seed, Salt: "two-phase"},
		Matrix: fw.Matrix,
	}

	single, err := selection.FineSelect(context.Background(), cand.Models(), target, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single selection: %s (test %.3f) in %d epochs\n",
		single.Winner, single.WinnerTest, single.Ledger.TrainEpochs())

	for _, k := range []int{2, 3, 5} {
		ens, err := selection.EnsembleSelect(context.Background(), cand.Models(), target, opts, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d ensemble: test %.3f (best member %.3f) in %d epochs, members:\n",
			k, ens.EnsembleTest, ens.BestSingleTest, ens.Ledger.TrainEpochs())
		for _, m := range ens.Members {
			fmt.Printf("   - %s\n", m)
		}
	}
}
