// Quickstart: build the offline phase once, then select a model for a new
// target task in a handful of training epochs.
//
//	go run ./examples/quickstart
package main

import (
	"context"

	"fmt"
	"log"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

func main() {
	// Offline phase: materialize the 40-model NLP repository, fine-tune
	// every model on the 24 benchmark datasets, and keep the performance
	// matrix plus convergence records. In production this runs once and
	// is persisted (see the twophase CLI's -store flag).
	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d models x %d benchmarks fine-tuned (%d epochs each)\n",
		len(fw.Matrix.Models), len(fw.Matrix.Datasets), fw.HP.Epochs)

	// Online phase: a new task arrives — Twitter sentiment. Coarse
	// recall scores only the cluster representatives against it, then
	// fine selection trains the 10 recalled models with trend-guided
	// early filtering.
	report, err := fw.SelectByName(context.Background(), "tweet_eval")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recalled %d candidates with %d proxy inferences\n",
		len(report.Recall.Recalled), report.Recall.ScoredModels)
	fmt.Printf("selected: %s\n", report.Outcome.Winner)
	fmt.Printf("held-out test accuracy: %.3f\n", report.Outcome.WinnerTest)
	fmt.Printf("total cost: %s (brute force would cost %d epochs)\n",
		report.Ledger.String(), fw.Repo.Len()*fw.HP.Epochs)
}
