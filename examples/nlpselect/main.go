// NLP scenario: the paper's motivating workload — pick a pre-trained
// language model for an MNLI-style inference task from a 40-model
// repository, and compare the two-phase pipeline against brute force and
// successive halving on both selection quality and epoch cost.
//
//	go run ./examples/nlpselect
package main

import (
	"context"

	"fmt"
	"log"
	"sort"

	"twophase/internal/core"
	"twophase/internal/datahub"
)

func main() {
	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	target, err := fw.Catalog.Get("LysandreJik/glue-mnli-train")
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth for context: what would every model achieve?
	oracle, err := fw.OracleAccuracies(context.Background(), target)
	if err != nil {
		log.Fatal(err)
	}
	type mv struct {
		name string
		acc  float64
	}
	var all []mv
	for n, a := range oracle {
		all = append(all, mv{n, a})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].acc > all[j].acc })
	fmt.Println("ground truth (top 5 of the repository):")
	for _, m := range all[:5] {
		fmt.Printf("  %.3f  %s\n", m.acc, m.name)
	}
	fmt.Printf("repository spread: best %.3f, median %.3f, worst %.3f\n\n",
		all[0].acc, all[len(all)/2].acc, all[len(all)-1].acc)

	// Two-phase selection.
	report, err := fw.Select(context.Background(), target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-phase: winner %s (test %.3f) in %.1f epochs\n",
		report.Outcome.Winner, report.Outcome.WinnerTest, report.TotalEpochs())

	// Baselines.
	bf, err := fw.BruteForce(context.Background(), target)
	if err != nil {
		log.Fatal(err)
	}
	sh, err := fw.SuccessiveHalving(context.Background(), target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute force: winner %s (test %.3f) in %d epochs\n",
		bf.Winner, bf.WinnerTest, bf.Ledger.TrainEpochs())
	fmt.Printf("succ. halving: winner %s (test %.3f) in %d epochs\n",
		sh.Winner, sh.WinnerTest, sh.Ledger.TrainEpochs())
	fmt.Printf("\nspeedup: %.2fx vs BF, %.2fx vs SH at comparable accuracy\n",
		float64(bf.Ledger.TrainEpochs())/report.TotalEpochs(),
		float64(sh.Ledger.TrainEpochs())/report.TotalEpochs())
}
