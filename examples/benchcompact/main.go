// Benchmark compaction (§VII future work): find a small subset of
// benchmark datasets whose performance vectors preserve the full matrix's
// model-similarity structure, so the offline matrix can be maintained more
// cheaply as the repository grows.
//
// The example greedily adds the benchmark that best restores the pairwise
// model-distance ordering of the full 24-benchmark matrix, and reports how
// few benchmarks already suffice.
//
//	go run ./examples/benchcompact
package main

import (
	"fmt"
	"log"

	"twophase/internal/cluster"
	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/numeric"
)

func main() {
	fw, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	names := fw.Matrix.Models
	full := make([][]float64, len(names))
	for i, n := range names {
		full[i], err = fw.Matrix.Vector(n)
		if err != nil {
			log.Fatal(err)
		}
	}
	dist := cluster.TopKDistance(fw.Recall.SimilarityK)
	ref := pairwise(full, dist)

	nBench := len(fw.Matrix.Datasets)
	var chosen []int
	remaining := map[int]bool{}
	for i := 0; i < nBench; i++ {
		remaining[i] = true
	}

	fmt.Printf("full matrix: %d benchmarks; greedy compaction by distance-structure correlation\n\n", nBench)
	for len(chosen) < 12 {
		bestIdx, bestCorr := -1, -2.0
		for cand := range remaining {
			cols := append(append([]int{}, chosen...), cand)
			sub := project(full, cols)
			// Eq. 1 distance with k capped by the subset width.
			k := fw.Recall.SimilarityK
			if k > len(cols) {
				k = len(cols)
			}
			corr := numeric.PearsonCorrelation(ref, pairwise(sub, cluster.TopKDistance(k)))
			if corr > bestCorr {
				bestIdx, bestCorr = cand, corr
			}
		}
		chosen = append(chosen, bestIdx)
		delete(remaining, bestIdx)
		fmt.Printf("  %2d benchmarks: corr %.3f  (+ %s)\n", len(chosen), bestCorr, fw.Matrix.Datasets[bestIdx])
		if bestCorr > 0.95 {
			fmt.Printf("\n%d of %d benchmarks already reproduce the model-similarity structure (corr > 0.95)\n",
				len(chosen), nBench)
			break
		}
	}
}

// pairwise flattens the upper-triangular pairwise distances of vecs.
func pairwise(vecs [][]float64, dist cluster.Distance) []float64 {
	var out []float64
	for i := range vecs {
		for j := i + 1; j < len(vecs); j++ {
			out = append(out, dist(vecs[i], vecs[j]))
		}
	}
	return out
}

// project keeps only the given columns of each vector.
func project(vecs [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(vecs))
	for i, v := range vecs {
		p := make([]float64, len(cols))
		for j, c := range cols {
			p[j] = v[c]
		}
		out[i] = p
	}
	return out
}
