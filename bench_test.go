// Package twophase_bench regenerates every table and figure of the paper
// as a testing.B benchmark (deliverable d of DESIGN.md). Each benchmark
// reports two custom metrics alongside time/allocs where meaningful:
// epochs/op for selection cost and acc for selected-model quality — the
// two quantities the paper's evaluation tracks.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The shared environment (both frameworks plus oracle caches) builds once
// per binary; individual benchmarks then measure their experiment's online
// portion.
package twophase_bench

import (
	"context"

	"sync"
	"testing"

	"twophase/internal/core"
	"twophase/internal/datahub"
	"twophase/internal/experiments"
	"twophase/internal/modelhub"
	"twophase/internal/perfmatrix"
	"twophase/internal/recall"
	"twophase/internal/selection"
	"twophase/internal/service"
	"twophase/internal/synth"
	"twophase/internal/trainer"
)

var (
	envOnce sync.Once
	env     *experiments.Env
)

func sharedEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		env = experiments.NewEnv(experiments.DefaultSeed)
	})
	return env
}

// benchExperiment runs one experiment id per iteration.
func benchExperiment(b *testing.B, id string) {
	e := sharedEnv(b)
	ex, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// prime caches (framework build, oracles) outside the timer
	if _, err := ex.Run(e); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Run(e); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact (DESIGN.md §4) ---

func BenchmarkFig1ModelSpread(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkTable1Clustering(b *testing.B)       { benchExperiment(b, "tab1") }
func BenchmarkTable2Memberships(b *testing.B)      { benchExperiment(b, "tab2") }
func BenchmarkTable3Singleton(b *testing.B)        { benchExperiment(b, "tab3") }
func BenchmarkFig3Curves(b *testing.B)             { benchExperiment(b, "fig3") }
func BenchmarkFig4ConvergenceGroups(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5Recall(b *testing.B)             { benchExperiment(b, "fig5") }
func BenchmarkFig6TrendQuality(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkTable4Threshold(b *testing.B)        { benchExperiment(b, "tab4") }
func BenchmarkFig7SHvsFS(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkTable5Runtime(b *testing.B)          { benchExperiment(b, "tab5") }
func BenchmarkTable6EndToEnd(b *testing.B)         { benchExperiment(b, "tab6") }
func BenchmarkTable7CaseStudy(b *testing.B)        { benchExperiment(b, "tab7") }
func BenchmarkFig8LRSensitivity(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkTableXParamK(b *testing.B)           { benchExperiment(b, "tabX") }
func BenchmarkAblationTopK(b *testing.B)           { benchExperiment(b, "ablTopK") }
func BenchmarkAblationRepresentative(b *testing.B) { benchExperiment(b, "ablRep") }
func BenchmarkAblationTrendFilter(b *testing.B)    { benchExperiment(b, "ablTrend") }
func BenchmarkAblationProxy(b *testing.B)          { benchExperiment(b, "ablProxy") }

// --- end-to-end pipeline benchmarks with epoch/accuracy metrics ---

func frameworks(b *testing.B) (*core.Framework, *core.Framework) {
	b.Helper()
	e := sharedEnv(b)
	nlp, err := e.Framework(datahub.TaskNLP)
	if err != nil {
		b.Fatal(err)
	}
	cv, err := e.Framework(datahub.TaskCV)
	if err != nil {
		b.Fatal(err)
	}
	return nlp, cv
}

func benchSelect(b *testing.B, fw *core.Framework, target string) {
	d, err := fw.Catalog.Get(target)
	if err != nil {
		b.Fatal(err)
	}
	var epochs, acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := fw.Select(context.Background(), d)
		if err != nil {
			b.Fatal(err)
		}
		epochs += report.TotalEpochs()
		acc += report.Outcome.WinnerTest
	}
	b.ReportMetric(epochs/float64(b.N), "epochs/op")
	b.ReportMetric(acc/float64(b.N), "acc")
}

func BenchmarkSelectNLPTweet(b *testing.B) {
	nlp, _ := frameworks(b)
	benchSelect(b, nlp, "tweet_eval")
}

func BenchmarkSelectNLPMNLI(b *testing.B) {
	nlp, _ := frameworks(b)
	benchSelect(b, nlp, "LysandreJik/glue-mnli-train")
}

func BenchmarkSelectCVXRay(b *testing.B) {
	_, cv := frameworks(b)
	benchSelect(b, cv, "trpakov/chest-xray-classification")
}

func BenchmarkSelectCVBeans(b *testing.B) {
	_, cv := frameworks(b)
	benchSelect(b, cv, "beans")
}

func BenchmarkBruteForceNLP(b *testing.B) {
	nlp, _ := frameworks(b)
	d, err := nlp.Catalog.Get("tweet_eval")
	if err != nil {
		b.Fatal(err)
	}
	var epochs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := nlp.BruteForce(context.Background(), d)
		if err != nil {
			b.Fatal(err)
		}
		epochs += float64(out.Ledger.TrainEpochs())
	}
	b.ReportMetric(epochs/float64(b.N), "epochs/op")
}

func BenchmarkSuccessiveHalvingNLP(b *testing.B) {
	nlp, _ := frameworks(b)
	d, err := nlp.Catalog.Get("tweet_eval")
	if err != nil {
		b.Fatal(err)
	}
	var epochs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := nlp.SuccessiveHalving(context.Background(), d)
		if err != nil {
			b.Fatal(err)
		}
		epochs += float64(out.Ledger.TrainEpochs())
	}
	b.ReportMetric(epochs/float64(b.N), "epochs/op")
}

// --- component micro-benchmarks ---

// BenchmarkBuildFramework measures the full offline phase (world
// synthesis, performance matrix, clustering, assembly) at the bench-suite
// split sizes — the number the flat-buffer numeric core and the batched
// trainer kernels exist to shrink.
func BenchmarkBuildFramework(b *testing.B) {
	sizes := datahub.Sizes{Train: 60, Val: 40, Test: 48}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(core.Options{Task: datahub.TaskNLP, Seed: 7, Sizes: sizes}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineMatrixBuild(b *testing.B) {
	// The full offline phase: 40 models x 24 benchmarks x 5 epochs.
	w := synth.NewWorld(7)
	cat, err := datahub.NewTaskCatalog(w, datahub.TaskNLP, datahub.Sizes{})
	if err != nil {
		b.Fatal(err)
	}
	repo, err := modelhub.NewTaskRepository(w, datahub.TaskNLP)
	if err != nil {
		b.Fatal(err)
	}
	hp := trainer.Default(datahub.TaskNLP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perfmatrix.Build(repo, cat.Benchmarks(), hp, w.Seed, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFineTuneOneModel(b *testing.B) {
	nlp, _ := frameworks(b)
	d, err := nlp.Catalog.Get("tweet_eval")
	if err != nil {
		b.Fatal(err)
	}
	m := nlp.Repo.Models()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.FineTune(m, d, nlp.HP, nlp.Seed, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoarseRecallOnly(b *testing.B) {
	nlp, _ := frameworks(b)
	d, err := nlp.Catalog.Get("tweet_eval")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recall.CoarseRecall(nlp.Matrix, nlp.Repo, d, nlp.Recall, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFineSelectOnly(b *testing.B) {
	nlp, _ := frameworks(b)
	d, err := nlp.Catalog.Get("tweet_eval")
	if err != nil {
		b.Fatal(err)
	}
	rr, err := recall.CoarseRecall(nlp.Matrix, nlp.Repo, d, nlp.Recall, nil)
	if err != nil {
		b.Fatal(err)
	}
	cand, err := nlp.Repo.Subset(rr.Recalled)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := selection.FineSelect(context.Background(), cand.Models(), d, selection.FineSelectOptions{
			Config: selection.Config{HP: nlp.HP, Seed: nlp.Seed, Salt: "two-phase"},
			Matrix: nlp.Matrix,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving-layer benchmarks ---

// benchServiceBatch measures one whole-catalog NLP batch per iteration
// through the selection service. The framework builds once outside the
// timer, so the measurement is pure online serving.
func benchServiceBatch(b *testing.B, workers, concurrency int) {
	b.Helper()
	svc, err := service.New(service.Options{
		Base:        core.Options{Seed: experiments.DefaultSeed},
		Workers:     workers,
		Concurrency: concurrency,
	})
	if err != nil {
		b.Fatal(err)
	}
	targets, err := svc.Targets(context.Background(), datahub.TaskNLP) // also primes the framework cache
	if err != nil {
		b.Fatal(err)
	}
	var epochs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := svc.SelectAll(context.Background(), datahub.TaskNLP, targets)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			epochs += r.Report.TotalEpochs()
		}
	}
	b.ReportMetric(epochs/float64(b.N), "epochs/op")
}

// BenchmarkServiceSequentialSelect is the baseline: one selection at a
// time, one candidate trained at a time.
func BenchmarkServiceSequentialSelect(b *testing.B) { benchServiceBatch(b, 1, 1) }

// BenchmarkServiceParallelSelect fans selections and per-round candidate
// training across all CPUs; on 4+ cores wall-clock should improve >= 2x
// over BenchmarkServiceSequentialSelect while the reported epochs/op (and
// every selection result) stay identical.
func BenchmarkServiceParallelSelect(b *testing.B) { benchServiceBatch(b, 0, 0) }

func BenchmarkExtensionEnsemble(b *testing.B) { benchExperiment(b, "extEnsemble") }

func BenchmarkEnsembleSelectK3(b *testing.B) {
	nlp, _ := frameworks(b)
	d, err := nlp.Catalog.Get("LysandreJik/glue-mnli-train")
	if err != nil {
		b.Fatal(err)
	}
	rr, err := recall.CoarseRecall(nlp.Matrix, nlp.Repo, d, nlp.Recall, nil)
	if err != nil {
		b.Fatal(err)
	}
	cand, err := nlp.Repo.Subset(rr.Recalled)
	if err != nil {
		b.Fatal(err)
	}
	opts := selection.FineSelectOptions{
		Config: selection.Config{HP: nlp.HP, Seed: nlp.Seed, Salt: "two-phase"},
		Matrix: nlp.Matrix,
	}
	var acc, epochs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := selection.EnsembleSelect(context.Background(), cand.Models(), d, opts, 3)
		if err != nil {
			b.Fatal(err)
		}
		acc += out.EnsembleTest
		epochs += float64(out.Ledger.TrainEpochs())
	}
	b.ReportMetric(acc/float64(b.N), "acc")
	b.ReportMetric(epochs/float64(b.N), "epochs/op")
}
